package heterogen

import (
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
)

// Unit is a parsed C/HLS-C translation unit.
type Unit = cast.Unit

// parse wraps the internal parser.
func parse(src string) (*Unit, error) {
	return cparser.Parse(src)
}

// Parse parses C/HLS-C source into a Unit (useful with Validate and for
// inspecting programs programmatically).
func Parse(src string) (*Unit, error) { return parse(src) }

// PrintUnit renders a unit back to C/HLS-C source.
func PrintUnit(u *Unit) string { return cast.Print(u) }
