package heterogen_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/hetero/heterogen"
)

func TestPublicTranspile(t *testing.T) {
	src := `
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`
	res, err := heterogen.Transpile(src, heterogen.Options{
		Kernel: "top",
		Fuzz:   heterogen.FuzzOptions{Seed: 1, MaxExecs: 120, Plateau: 50, TypedMutation: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compatible || !res.BehaviorOK {
		t.Fatalf("transpile failed: %v", res.Repair.Remaining)
	}
	if !strings.Contains(res.Source, "fpga_float") {
		t.Errorf("source:\n%s", res.Source)
	}
}

func TestPublicCheck(t *testing.T) {
	rep, err := heterogen.Check(`void k(int n) { int a[n]; a[0] = 1; }`, heterogen.Options{Kernel: "k"})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("VLA must be diagnosed")
	}
	if !rep.HasClass(heterogen.ClassDynamicData) {
		t.Errorf("diagnostics: %v", rep.Diags)
	}
}

func TestPublicTranspileContext(t *testing.T) {
	src := `
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`
	opts := heterogen.Options{
		Kernel: "top",
		Fuzz:   heterogen.FuzzOptions{Seed: 1, MaxExecs: 120, Plateau: 50, TypedMutation: true},
	}
	res, err := heterogen.TranspileContext(context.Background(), src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compatible {
		t.Fatalf("transpile failed: %v", res.Repair.Remaining)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := heterogen.TranspileContext(ctx, src, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want one wrapping context.Canceled", err)
	}
	if partial.Source == "" {
		t.Error("cancelled transpile must return the best-so-far source")
	}
}

func TestPublicSimulate(t *testing.T) {
	rep, err := heterogen.Simulate(`int top(int a) { return a * 2 + 1; }`, "top")
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Report.OK {
		t.Fatalf("checker diagnostics: %v", rep.Report.Diags)
	}
	if !rep.Fits || len(rep.Over) != 0 {
		t.Errorf("trivial kernel must fit the device: over=%v", rep.Over)
	}
	if r := rep.Resources; r.LUT+r.FF+r.DSP+r.BRAM <= 0 {
		t.Errorf("resource estimate missing: %+v", r)
	}
}

func TestPublicRepairStage(t *testing.T) {
	src := `
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`
	cache, err := heterogen.NewCache(heterogen.CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	opts := heterogen.Options{Kernel: "top", Cache: cache}
	res, err := heterogen.Repair(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compatible {
		t.Fatalf("repair failed: %v", res.Remaining)
	}
	again, err := heterogen.Repair(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	if heterogen.PrintUnit(res.Unit) != heterogen.PrintUnit(again.Unit) {
		t.Error("cached repair diverged from the cold run")
	}
	if cache.Stats().Hits() == 0 {
		t.Errorf("second repair never hit the cache: %s", cache.Stats())
	}
}

func TestPublicGenerateTests(t *testing.T) {
	camp, err := heterogen.GenerateTests(`
int kernel(int x) {
    if (x > 10) { return 1; }
    return 0;
}`, "kernel", heterogen.FuzzOptions{Seed: 1, MaxExecs: 200, Plateau: 80, TypedMutation: true})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Coverage < 1.0 {
		t.Errorf("coverage %.2f", camp.Coverage)
	}
}

func TestPublicGenerateTestsContext(t *testing.T) {
	src := `
int kernel(int x) {
    if (x > 10) { return 1; }
    return 0;
}`
	opts := heterogen.FuzzOptions{Seed: 1, MaxExecs: 200, Plateau: 80, TypedMutation: true}
	camp, err := heterogen.GenerateTestsContext(context.Background(), src, "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	if camp.Coverage < 1.0 {
		t.Errorf("coverage %.2f", camp.Coverage)
	}

	// Cancellation stops the campaign at a commit point; the partial
	// corpus is a usable suite, so the error stays nil.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	partial, err := heterogen.GenerateTestsContext(ctx, src, "kernel", opts)
	if err != nil {
		t.Fatal(err)
	}
	if partial.Execs >= camp.Execs {
		t.Errorf("cancelled campaign ran %d execs, complete one %d", partial.Execs, camp.Execs)
	}

	if _, err := heterogen.GenerateTestsContext(context.Background(), "int f(", "f", opts); err == nil {
		t.Error("parse error must surface")
	}
}

func TestPublicGuard(t *testing.T) {
	src := `
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`
	g := heterogen.NewGuard(heterogen.GuardOptions{})
	opts := heterogen.Options{
		Kernel: "top",
		Fuzz:   heterogen.FuzzOptions{Seed: 1, MaxExecs: 120, Plateau: 50, TypedMutation: true},
		Guard:  g,
	}
	res, err := heterogen.Transpile(src, opts)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := heterogen.Transpile(src, heterogen.Options{
		Kernel: "top",
		Fuzz:   heterogen.FuzzOptions{Seed: 1, MaxExecs: 120, Plateau: 50, TypedMutation: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Source != plain.Source {
		t.Error("a guard without injection must not change the output")
	}
	var sf *heterogen.StageFailure
	if errors.As(err, &sf) {
		t.Error("clean run classified a StageFailure")
	}
}

func TestPublicParseAndPrint(t *testing.T) {
	u, err := heterogen.Parse(`int f(int a) { return a + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	out := heterogen.PrintUnit(u)
	if !strings.Contains(out, "return a + 1;") {
		t.Errorf("print: %q", out)
	}
	if _, err := heterogen.Parse("int f("); err == nil {
		t.Error("parse error must surface")
	}
}
