package heterogen_test

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen"
)

func TestPublicTranspile(t *testing.T) {
	src := `
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`
	res, err := heterogen.Transpile(src, heterogen.Options{
		Kernel: "top",
		Fuzz:   heterogen.FuzzOptions{Seed: 1, MaxExecs: 120, Plateau: 50, TypedMutation: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compatible || !res.BehaviorOK {
		t.Fatalf("transpile failed: %v", res.Repair.Remaining)
	}
	if !strings.Contains(res.Source, "fpga_float") {
		t.Errorf("source:\n%s", res.Source)
	}
}

func TestPublicCheck(t *testing.T) {
	rep, err := heterogen.Check(`void k(int n) { int a[n]; a[0] = 1; }`, "k")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK {
		t.Fatal("VLA must be diagnosed")
	}
	if !rep.HasClass(heterogen.ClassDynamicData) {
		t.Errorf("diagnostics: %v", rep.Diags)
	}
}

func TestPublicGenerateTests(t *testing.T) {
	camp, err := heterogen.GenerateTests(`
int kernel(int x) {
    if (x > 10) { return 1; }
    return 0;
}`, "kernel", heterogen.FuzzOptions{Seed: 1, MaxExecs: 200, Plateau: 80, TypedMutation: true})
	if err != nil {
		t.Fatal(err)
	}
	if camp.Coverage < 1.0 {
		t.Errorf("coverage %.2f", camp.Coverage)
	}
}

func TestPublicParseAndPrint(t *testing.T) {
	u, err := heterogen.Parse(`int f(int a) { return a + 1; }`)
	if err != nil {
		t.Fatal(err)
	}
	out := heterogen.PrintUnit(u)
	if !strings.Contains(out, "return a + 1;") {
		t.Errorf("print: %q", out)
	}
	if _, err := heterogen.Parse("int f("); err == nil {
		t.Error("parse error must surface")
	}
}
