// Package heterogen is the public API of the HeteroGen reproduction: a
// C-to-HLS-C transpiler with automated test generation and search-based
// program repair (Zhang, Wang, Xu, Kim — ASPLOS 2022).
//
// The one-call entry point is Transpile:
//
//	res, err := heterogen.Transpile(cSource, heterogen.Options{Kernel: "kernel"})
//	if err != nil { ... }
//	fmt.Println(res.Source)       // the repaired HLS-C program
//	fmt.Println(res.Summary())    // compat/perf verdict, coverage, ΔLOC
//
// Behind it sit the subsystems the paper describes, all implemented in
// this module: a C frontend (internal/cparser), a CPU interpreter with
// coverage and value profiling (internal/interp), a simulated HLS
// toolchain — synthesizability checker, lightweight style checker, and a
// pragma-aware FPGA simulator (internal/hls/...) — a coverage-guided
// kernel fuzzer (internal/fuzz), bitwidth finitization
// (internal/profile), and the dependence-guided repair search
// (internal/repair).
//
// Every entry point has a Context variant (TranspileContext,
// RepairContext, GenerateTestsContext, ConformContext) with cooperative
// cancellation at commit points and best-so-far partial results, and
// every run can share an evaluation Cache (Options.Cache) and a
// failure-containment Guard (Options.Guard). For a long-running
// multi-client deployment, NewServer wraps the same pipeline in an
// HTTP+JSON job service with admission control — the cmd/hgserve
// daemon; see docs/OPERATIONS.md.
package heterogen

import (
	"context"

	"github.com/hetero/heterogen/internal/conform"
	"github.com/hetero/heterogen/internal/core"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/sim"
	"github.com/hetero/heterogen/internal/repair"
	"github.com/hetero/heterogen/internal/serve"
)

// Options configures a transpilation. The zero value plus a Kernel name
// is a complete configuration.
type Options = core.Options

// Result is the transpilation outcome: the repaired HLS-C source, the
// fuzzing campaign, the repair log, and the simulated performance
// comparison.
type Result = core.Result

// FuzzOptions configures test generation (Options.Fuzz).
type FuzzOptions = fuzz.Options

// TestCase is one generated kernel input vector.
type TestCase = fuzz.TestCase

// Report is an HLS toolchain report (diagnostics + pass/fail).
type Report = hls.Report

// Diagnostic is one Vivado-style toolchain message.
type Diagnostic = hls.Diagnostic

// ErrorClass is one of the six HLS compatibility error classes (§5.1).
type ErrorClass = hls.ErrorClass

// The six error classes.
const (
	ClassDynamicData     = hls.ClassDynamicData
	ClassUnsupportedType = hls.ClassUnsupportedType
	ClassDataflow        = hls.ClassDataflow
	ClassLoopParallel    = hls.ClassLoopParallel
	ClassStructUnion     = hls.ClassStructUnion
	ClassTopFunction     = hls.ClassTopFunction
)

// Target names one (backend, device) pair a design should be built
// for, e.g. {Backend: "vivado_hls", Device: "zc706"}. Set
// Options.Targets to search for a program that fits a whole target set
// at once; an empty set keeps the legacy single-target behavior (the
// default evaluation platform) byte-identical.
type Target = hls.Target

// TargetVerdict is one target's verdict on the final program — a row of
// Result.PerTarget and of the Markdown report's per-device table.
type TargetVerdict = repair.TargetVerdict

// ParetoPoint is one non-dominated program of a multi-target repair:
// its source, per-device verdicts, and resource estimate
// (Result.Pareto).
type ParetoPoint = repair.ParetoPoint

// DeviceProfile describes one synthesizable part a backend ships:
// short name, vendor part, capacity envelope, and kernel clock.
type DeviceProfile = hls.DeviceProfile

// ParseTarget parses "backend:device", a bare device or backend name,
// or a legacy full part name into a Target, with explicit errors for
// unknown names.
func ParseTarget(s string) (Target, error) { return hls.ParseTarget(s) }

// ParseTargets parses a target-spec list, dropping duplicates.
func ParseTargets(specs []string) ([]Target, error) { return hls.ParseTargets(specs) }

// Backends lists the registered backend names.
func Backends() []string { return hls.BackendNames() }

// Targets enumerates every shipped (backend, device) pair.
func Targets() []Target { return hls.AllTargets() }

// RepairResult is the outcome of the standalone repair stage (Repair):
// the best program version found, its compatibility and behaviour
// verdicts, the search statistics, and — for multi-target runs — the
// per-device verdict table and Pareto archive.
type RepairResult = repair.Result

// RepairOptions configures the repair search (Options.Repair).
type RepairOptions = repair.Options

// SimReport is the outcome of the standalone simulation stage
// (Simulate): resource estimate, device fit, and checker verdict.
type SimReport = core.SimReport

// Resources is a fabric utilization estimate (LUT/FF/DSP/BRAM).
type Resources = sim.Resources

// Cache is the content-addressed evaluation cache: it memoizes the
// expensive toolchain verdicts (synthesizability checks, resource
// estimates, differential tests, whole fuzzing campaigns) on
// fingerprints of canonical program text and configuration. Share one
// cache across calls — and, with CacheOptions.Dir, across processes —
// to skip re-evaluating candidates already seen. Cached runs produce
// byte-identical Results and traces (bar Result.CacheStats); only real
// wall-clock changes.
type Cache = evalcache.Cache

// CacheOptions configures NewCache.
type CacheOptions = evalcache.Options

// CacheStats is a snapshot of cache activity (Result.CacheStats,
// Cache.Stats).
type CacheStats = evalcache.Stats

// NewCache opens an evaluation cache. Close it when done if it is
// persistent, so statistics and buffered entries flush to disk.
func NewCache(opts CacheOptions) (*Cache, error) {
	return evalcache.New(opts)
}

// Transpile runs the full pipeline — test generation, bitwidth profiling,
// and iterative repair — over a C/C++ source text and returns the HLS-C
// result. It never returns an error for repair failure; inspect
// Result.Compatible and Result.BehaviorOK (a failed search still returns
// the best version found plus its generated tests, mirroring the paper's
// "incomplete version with generated tests" outcome).
func Transpile(src string, opts Options) (Result, error) {
	return core.Run(src, opts)
}

// TranspileContext is Transpile with cooperative cancellation. The
// context is checked at commit points — between fuzz executions,
// between candidate evaluations, and at phase boundaries, never
// mid-verdict — so cancellation returns promptly with the best-so-far
// partial Result (the corpus gathered, the most advanced program
// version reached, its repair log) and an error wrapping ctx.Err().
// Use errors.Is(err, context.Canceled) to distinguish cancellation
// from real failures; the partial Result is valid either way.
func TranspileContext(ctx context.Context, src string, opts Options) (Result, error) {
	return core.RunContext(ctx, src, opts)
}

// Check runs only the synthesizability-checker stage over a source
// text, reporting the HLS compatibility errors the target's toolchain
// would (the reference Vivado-style dialect when Options.Targets is
// empty; Targets[0]'s dialect otherwise). It takes the same option
// struct as the other entry points: Options.Kernel names the top
// function; Targets, Obs, and Cache are honoured; the remaining fields
// are ignored. Use CheckTargets for the per-target report vector.
func Check(src string, opts Options) (Report, error) {
	return core.CheckWith(src, opts)
}

// TargetReport pairs one target with its checker verdict.
type TargetReport = core.TargetReport

// CheckTargets runs the synthesizability checker once per target in
// opts.Targets (the default target when empty), each under its own
// config, diagnostic dialect, and cache key.
func CheckTargets(src string, opts Options) ([]TargetReport, error) {
	return core.CheckSet(src, opts)
}

// Simulate runs only the FPGA-simulator stage: estimate the design's
// fabric resources and gate them against the evaluation device (the
// paper's XCVU9P part). Latency is not reported here — it requires a
// test suite; use Transpile or Repair with tests for that.
func Simulate(src, top string) (SimReport, error) {
	return core.Simulate(src, Options{Kernel: top})
}

// SimulateWith is Simulate taking the full option struct: Targets
// selects the device profiles the estimate is gated against (the
// per-target verdicts land in SimReport.PerTarget), and unknown
// profile names fail with an explicit error instead of silently
// falling back to the default part.
func SimulateWith(src string, opts Options) (SimReport, error) {
	return core.Simulate(src, opts)
}

// Repair runs only the repair stage: bitwidth-profile the program
// (unless Options.SkipProfile) and search for a compatible HLS version
// against the original as behaviour oracle, using Options.ExtraTests
// as the test suite — the pipeline minus test generation, for callers
// that bring their own tests.
func Repair(src string, opts Options) (RepairResult, error) {
	return core.RepairStage(src, opts)
}

// RepairContext is Repair with cooperative cancellation. The context
// is checked between candidate evaluations, never mid-verdict; a
// cancelled search returns the best version reached so far (the
// RepairResult is always valid) alongside an error wrapping ctx.Err().
func RepairContext(ctx context.Context, src string, opts Options) (RepairResult, error) {
	return core.RepairStageContext(ctx, src, opts)
}

// GenerateTests runs only the coverage-guided test generator against the
// kernel of the given source.
func GenerateTests(src, kernel string, opts FuzzOptions) (fuzz.Campaign, error) {
	u, err := parse(src)
	if err != nil {
		return fuzz.Campaign{}, err
	}
	return fuzz.Run(u, kernel, opts)
}

// GenerateTestsContext is GenerateTests with cooperative cancellation.
// The context is checked between executions, never mid-run, so
// cancellation returns promptly with the corpus gathered so far — a
// partial campaign is still a usable test suite, so the error stays nil
// for cancellation; callers that must distinguish inspect ctx.Err.
func GenerateTestsContext(ctx context.Context, src, kernel string, opts FuzzOptions) (fuzz.Campaign, error) {
	u, err := parse(src)
	if err != nil {
		return fuzz.Campaign{}, err
	}
	return fuzz.RunContext(ctx, u, kernel, opts)
}

// Guard is the failure-containment layer: it wraps every expensive
// stage call (parsing, printing, style checking, the synthesizability
// checker, resource estimation, differential testing, interpreter
// executions) so that a panic, hang, or corrupted output inside one
// stage becomes a typed StageFailure instead of a crashed process.
// Attach one via Options.Guard; a nil guard still contains panics but
// applies no deadlines, fault injection, or quarantine.
type Guard = guard.Guard

// GuardOptions configures NewGuard: per-stage deadlines, interpreter
// step budgets, transient-failure retries, the quarantine directory for
// minimized reproducers, and (for testing) a deterministic fault
// injector.
type GuardOptions = guard.Options

// StageFailure is one contained stage failure: which stage failed, how
// (panic, deadline, corrupt output, transient), and — when quarantine
// is enabled — the path of the minimized reproducer written for it.
// Failed stage calls return it as their error; errors.As extracts it.
type StageFailure = guard.StageFailure

// NewGuard builds a failure-containment guard to share across calls via
// Options.Guard. The zero GuardOptions value is valid: containment
// only, no deadlines or quarantine.
func NewGuard(opts GuardOptions) *Guard {
	return guard.New(opts)
}

// ConformOptions configures a conformance run (Conform).
type ConformOptions = conform.Options

// ConformReport is the outcome of a conformance run; its Summary is
// deterministic for fixed options.
type ConformReport = conform.Report

// ConformFailure is one minimized conformance failure.
type ConformFailure = conform.Failure

// Conform runs the seeded program-generation conformance harness:
// generate ConformOptions.Count random kernels with known planted HLS
// violations, and assert per program that the checker flags every
// planted violation class, the repair search converges, the repaired
// HLS-C agrees with the CPU interpreter on a fuzzed corpus, and the
// evaluation cache and trace are bit-parity invariant. Failures come
// back minimized by an AST-level delta-debugging reducer, ready to
// commit as regression reproducers. The error reports harness-level
// problems only; assertion failures live in ConformReport.Failures.
func Conform(opts ConformOptions) (ConformReport, error) {
	return conform.Run(opts)
}

// ConformContext is Conform with cooperative cancellation between
// generated programs; the partial report is valid alongside the error.
func ConformContext(ctx context.Context, opts ConformOptions) (ConformReport, error) {
	return conform.RunContext(ctx, opts)
}

// Server is the transpilation service: jobs (transpile | check |
// repair | fuzz) submitted over HTTP+JSON run on a bounded worker pool
// behind admission control, with per-job budgets clamped by server
// limits, streamed observability events, and cooperative cancellation
// that keeps best-so-far partial results. It is what cmd/hgserve
// serves; embed it in another process via NewServer + Server.Handler.
type Server = serve.Server

// ServerOptions configures NewServer: pool size, queue depth,
// per-client caps, budget limits and defaults, the shared evaluation
// cache, and the failure-containment knobs.
type ServerOptions = serve.Options

// JobRequest is one job submission (the POST /v1/jobs body).
type JobRequest = serve.Request

// JobStatus is a job's API representation: lifecycle state, effective
// budget, and the kind-specific result once terminal.
type JobStatus = serve.Status

// JobBudget bounds one job's resources; zero fields take server
// defaults and every field is clamped by server limits.
type JobBudget = serve.Budget

// NewServer starts a transpilation service (its worker pool runs until
// Close). Expose it with Server.Handler; see docs/OPERATIONS.md for
// the HTTP API and operational guidance.
func NewServer(opts ServerOptions) *Server {
	return serve.New(opts)
}
