// Package heterogen is the public API of the HeteroGen reproduction: a
// C-to-HLS-C transpiler with automated test generation and search-based
// program repair (Zhang, Wang, Xu, Kim — ASPLOS 2022).
//
// The one-call entry point is Transpile:
//
//	res, err := heterogen.Transpile(cSource, heterogen.Options{Kernel: "kernel"})
//	if err != nil { ... }
//	fmt.Println(res.Source)       // the repaired HLS-C program
//	fmt.Println(res.Summary())    // compat/perf verdict, coverage, ΔLOC
//
// Behind it sit the subsystems the paper describes, all implemented in
// this module: a C frontend (internal/cparser), a CPU interpreter with
// coverage and value profiling (internal/interp), a simulated HLS
// toolchain — synthesizability checker, lightweight style checker, and a
// pragma-aware FPGA simulator (internal/hls/...) — a coverage-guided
// kernel fuzzer (internal/fuzz), bitwidth finitization
// (internal/profile), and the dependence-guided repair search
// (internal/repair).
package heterogen

import (
	"github.com/hetero/heterogen/internal/core"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
)

// Options configures a transpilation. The zero value plus a Kernel name
// is a complete configuration.
type Options = core.Options

// Result is the transpilation outcome: the repaired HLS-C source, the
// fuzzing campaign, the repair log, and the simulated performance
// comparison.
type Result = core.Result

// FuzzOptions configures test generation (Options.Fuzz).
type FuzzOptions = fuzz.Options

// TestCase is one generated kernel input vector.
type TestCase = fuzz.TestCase

// Report is an HLS toolchain report (diagnostics + pass/fail).
type Report = hls.Report

// Diagnostic is one Vivado-style toolchain message.
type Diagnostic = hls.Diagnostic

// ErrorClass is one of the six HLS compatibility error classes (§5.1).
type ErrorClass = hls.ErrorClass

// The six error classes.
const (
	ClassDynamicData     = hls.ClassDynamicData
	ClassUnsupportedType = hls.ClassUnsupportedType
	ClassDataflow        = hls.ClassDataflow
	ClassLoopParallel    = hls.ClassLoopParallel
	ClassStructUnion     = hls.ClassStructUnion
	ClassTopFunction     = hls.ClassTopFunction
)

// Transpile runs the full pipeline — test generation, bitwidth profiling,
// and iterative repair — over a C/C++ source text and returns the HLS-C
// result. It never returns an error for repair failure; inspect
// Result.Compatible and Result.BehaviorOK (a failed search still returns
// the best version found plus its generated tests, mirroring the paper's
// "incomplete version with generated tests" outcome).
func Transpile(src string, opts Options) (Result, error) {
	return core.Run(src, opts)
}

// Check runs only the synthesizability checker over a source text,
// reporting the HLS compatibility errors a Vivado-style toolchain would.
func Check(src, top string) (Report, error) {
	return core.Check(src, top)
}

// GenerateTests runs only the coverage-guided test generator against the
// kernel of the given source.
func GenerateTests(src, kernel string, opts FuzzOptions) (fuzz.Campaign, error) {
	u, err := parse(src)
	if err != nil {
		return fuzz.Campaign{}, err
	}
	return fuzz.Run(u, kernel, opts)
}
