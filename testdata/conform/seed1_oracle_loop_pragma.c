// hgconform reproducer: regenerate with `hgconform -seed 1 -n 1`
// seed=1 stage=oracle kind=loop_pragma subject=a
// nodes=11/88 detail: minimized oracle witness for the Loop Parallelization class
int kernel(int a[64], int s, int out[64]) {
    for (int i1 = 0; i1; i1++) {
        #pragma HLS array_partition variable=a cyclic factor=3
    }
}
