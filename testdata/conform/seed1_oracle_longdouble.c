// hgconform reproducer: regenerate with `hgconform -seed 1 -n 1`
// seed=1 stage=oracle kind=longdouble subject=lacc
// nodes=5/112 detail: minimized oracle witness for the Unsupported Data Types class
int kernel(int a[64], int s, int out[64]) {
    long double lacc = 3.5;
}
