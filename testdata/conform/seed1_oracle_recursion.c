// hgconform reproducer: regenerate with `hgconform -seed 1 -n 1`
// seed=1 stage=oracle kind=recursion subject=rec_add
// nodes=9/121 detail: minimized oracle witness for the Dynamic Data Structures class
static void rec_add(int a[64], int out[64], int ri) {
    rec_add(a, out, ri);
}
