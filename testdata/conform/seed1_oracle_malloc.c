// hgconform reproducer: regenerate with `hgconform -seed 1 -n 1`
// seed=1 stage=oracle kind=malloc subject=malloc
// nodes=8/119 detail: minimized oracle witness for the Dynamic Data Structures class
int kernel(int a[64], int s, int out[64]) {
    struct Pack *pk = (struct Pack *)malloc(sizeof(struct Pack));
}
