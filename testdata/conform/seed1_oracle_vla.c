// hgconform reproducer: regenerate with `hgconform -seed 1 -n 1`
// seed=1 stage=oracle kind=vla subject=vbuf
// nodes=4/121 detail: minimized oracle witness for the Dynamic Data Structures class
int kernel(int a[64], int s, int out[64]) {
    int vbuf[vn];
}
