// hgconform reproducer: regenerate with `hgconform -seed 1 -n 1`
// seed=1 stage=oracle kind=top_pragma subject=main_entry
// nodes=4/88 detail: minimized oracle witness for the Top Function class
int kernel(int a[64], int s, int out[64]) {
    #pragma HLS top name=main_entry
}
