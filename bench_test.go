// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§6). Heavy targets run the quick configuration so a
// full `go test -bench=. -benchmem` completes on a laptop; the hgeval
// command runs the same harness at full effort.
//
// Reported custom metrics carry the reproduction data: compat/10 and
// improved/10 for Table 3, coverage and test counts for Table 4, speedup
// factors for Table 5 and Figure 9.
package heterogen_test

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/baselines"
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/eval"
	"github.com/hetero/heterogen/internal/forum"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
	"github.com/hetero/heterogen/internal/interp"
	"github.com/hetero/heterogen/internal/repair"
	"github.com/hetero/heterogen/internal/subjects"
)

// ---------------------------------------------------------------------------
// Figure 3 — forum study

func BenchmarkFigure3ForumStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := forum.Study(forum.Corpus(1000, 1))
		if res.Accuracy < 0.9 {
			b.Fatalf("classifier degraded: %.2f", res.Accuracy)
		}
		b.ReportMetric(res.Percent[hls.ClassUnsupportedType], "types%")
		b.ReportMetric(res.Percent[hls.ClassDynamicData], "dynamic%")
	}
}

// ---------------------------------------------------------------------------
// Table 1 — error catalog: the checker produces each canonical diagnostic

func BenchmarkTable1ErrorCatalog(b *testing.B) {
	snippets := map[hls.ErrorClass]string{
		hls.ClassDynamicData: `
void kernel(int cols) { int line_buf_a[cols]; line_buf_a[0] = 1; }`,
		hls.ClassUnsupportedType: `
int kernel(int x) { long double d = x; return (int)d; }`,
		hls.ClassDataflow: `
void my_func(char d[128], char o[128]) { for (int i = 0; i < 128; i++) { o[i] = d[i]; } }
void kernel(char data[128], char a[128], char b[128]) {
#pragma HLS dataflow
    my_func(data, a);
    my_func(data, b);
}`,
		hls.ClassLoopParallel: `
void kernel(int a[100]) {
#pragma HLS dataflow
    for (int i = 0; i < 100; i++) {
#pragma HLS unroll factor=50
        a[i] = i;
    }
}`,
		hls.ClassStructUnion: `
struct If2 {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    void do1() { out.write(in.read()); }
};
void kernel(hls::stream<unsigned> &in, hls::stream<unsigned> &out) {
#pragma HLS dataflow
    hls::stream<unsigned> tmp;
    If2{ in, tmp }.do1();
    If2{ tmp, out }.do1();
}`,
		hls.ClassTopFunction: `
void other() { }`,
	}
	for i := 0; i < b.N; i++ {
		for class, src := range snippets {
			u := cparser.MustParse(src)
			rep := check.Run(u, hls.DefaultConfig("kernel"))
			if !rep.HasClass(class) {
				b.Fatalf("catalog miss: %s not diagnosed", class)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Table 2 / Figure 7c — edit catalog and dependence structure

func BenchmarkTable2EditCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reg := repair.Registry()
		perClass := map[hls.ErrorClass]int{}
		for _, t := range reg {
			perClass[t.Class]++
		}
		for _, c := range hls.AllClasses() {
			if perClass[c] == 0 {
				b.Fatalf("no templates for class %s", c)
			}
		}
		// Figure 7c edges.
		for _, pair := range [][2]string{
			{"stream_static", "constructor"},
			{"inst_update", "flatten"},
			{"pointer", "insert"},
			{"type_casting", "type_trans"},
		} {
			t, ok := repair.TemplateByID(pair[0])
			if !ok || len(t.Requires) == 0 || t.Requires[0] != pair[1] {
				b.Fatalf("dependence edge %s -> %s missing", pair[0], pair[1])
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Table 3 — conversion effectiveness (full pipeline per subject)

func BenchmarkTable3Conversion(b *testing.B) {
	cfg := eval.QuickConfig()
	for _, s := range subjects.All() {
		s := s
		b.Run(s.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := eval.RunSubject(s, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(boolMetric(run.Compatible && run.BehaviorOK), "compat")
				b.ReportMetric(boolMetric(run.Improved), "improved")
				b.ReportMetric(float64(run.DeltaLOC), "ΔLOC")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 4 — test generation

func BenchmarkTable4TestGen(b *testing.B) {
	for _, s := range subjects.All() {
		s := s
		b.Run(s.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := fuzz.DefaultOptions()
				opts.MaxExecs = 400
				opts.Plateau = 150
				camp, err := fuzz.Run(s.MustParse(), s.Kernel, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*camp.Coverage, "cov%")
				b.ReportMetric(float64(camp.Execs), "tests")
				if s.ExistingTests != nil {
					cov, err := fuzz.Replay(s.MustParse(), s.Kernel, s.ExistingTests())
					if err != nil {
						b.Fatal(err)
					}
					if camp.Coverage < cov {
						b.Fatalf("%s: generated %.2f below existing %.2f", s.ID, camp.Coverage, cov)
					}
					b.ReportMetric(100*cov, "existing_cov%")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 5 — manual and HeteroRefactor comparison

func BenchmarkTable5Comparison(b *testing.B) {
	cfg := eval.QuickConfig()
	for _, id := range []string{"P1", "P3", "P6", "P8"} {
		s, err := subjects.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := eval.RunSubject(s, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if run.HRSucceeded != s.HRSupported {
					b.Fatalf("%s: HR=%v want %v", id, run.HRSucceeded, s.HRSupported)
				}
				if run.RuntimeHGMS > 0 {
					b.ReportMetric(run.RuntimeOriginMS/run.RuntimeHGMS, "speedupHG")
				}
				if run.RuntimeManualMS > 0 {
					b.ReportMetric(run.RuntimeOriginMS/run.RuntimeManualMS, "speedupManual")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 9 — ablations (dependence guidance and the style checker)

func BenchmarkFigure9Ablation(b *testing.B) {
	cfg := eval.QuickConfig()
	for _, id := range []string{"P1", "P3", "P5", "P8"} {
		s, err := subjects.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				abl, err := eval.RunAblation(s, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if abl.WithoutDepOK && abl.HGMinutes > 0 {
					b.ReportMetric(abl.WithoutDepMinutes/abl.HGMinutes, "dep_speedup")
				}
				b.ReportMetric(abl.HGInvokePct, "hg_invoke%")
				b.ReportMetric(abl.WithoutCheckerPct, "nochecker_invoke%")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Design-choice ablations beyond the paper's figures

// BenchmarkAblationTypedMutation measures the coverage effect of the
// type-validity filter on a narrow-typed kernel (§4's second insight).
func BenchmarkAblationTypedMutation(b *testing.B) {
	src := `
int kernel(fpga_uint<7> x, fpga_uint<7> y) {
    int r = 0;
    if (x > 100) { r += 1; }
    if (y > 100) { r += 2; }
    if (x + y == 200) { r += 4; }
    return r;
}`
	u := cparser.MustParse(src)
	for i := 0; i < b.N; i++ {
		typed := fuzz.DefaultOptions()
		typed.MaxExecs = 500
		campT, err := fuzz.Run(u, "kernel", typed)
		if err != nil {
			b.Fatal(err)
		}
		untyped := typed
		untyped.TypedMutation = false
		campU, err := fuzz.Run(u, "kernel", untyped)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*campT.Coverage, "typed_cov%")
		b.ReportMetric(100*campU.Coverage, "untyped_cov%")
	}
}

// BenchmarkAblationSeedCapture measures kernel-entry seeding vs random
// seeding (§4's first insight).
func BenchmarkAblationSeedCapture(b *testing.B) {
	src := `
int gate(int a, int b) { return a * 1000 + b; }
int kernel(int secret) {
    if (secret == gate(31, 337)) { return 1; }
    return 0;
}
int host() { return kernel(gate(31, 337)); }`
	u := cparser.MustParse(src)
	for i := 0; i < b.N; i++ {
		blind := fuzz.DefaultOptions()
		blind.MaxExecs = 600
		campB, err := fuzz.Run(u, "kernel", blind)
		if err != nil {
			b.Fatal(err)
		}
		seeded := blind
		seeded.HostMain = "host"
		campS, err := fuzz.Run(u, "kernel", seeded)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*campB.Coverage, "blind_cov%")
		b.ReportMetric(100*campS.Coverage, "seeded_cov%")
		if campS.Coverage < campB.Coverage {
			b.Fatal("seed capture should never lose coverage")
		}
	}
}

// BenchmarkAblationBitwidth measures the resource effect of bitwidth
// finitization (the HeteroRefactor-inherited optimization): the FF saving
// of the profiled initial version over the declared C widths.
func BenchmarkAblationBitwidth(b *testing.B) {
	s, err := subjects.ByID("P3")
	if err != nil {
		b.Fatal(err)
	}
	opts := fuzz.DefaultOptions()
	opts.MaxExecs = 300
	camp, err := fuzz.Run(s.MustParse(), s.Kernel, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(searchWithProfile(b, s, camp.Tests), "ff_saving%")
	}
}

func searchWithProfile(b *testing.B, s subjects.Subject, tests []fuzz.TestCase) float64 {
	b.Helper()
	orig := s.MustParse()
	prof, err := profileGenerate(orig, s.Kernel, tests)
	if err != nil {
		b.Fatal(err)
	}
	base := estimateFF(orig)
	narrowed := estimateFF(prof)
	if base == 0 {
		return 0
	}
	return 100 * float64(base-narrowed) / float64(base)
}

// ---------------------------------------------------------------------------
// Parallel candidate evaluation — sequential vs Workers=4 repair search

// repairInputs builds deterministic repair-search inputs for a subject:
// a small fuzzing campaign supplies the differential-test suite, capped
// so one search stays benchmark-sized.
func repairInputs(tb testing.TB, id string) (orig *cast.Unit, kernel string, tests []fuzz.TestCase) {
	tb.Helper()
	s, err := subjects.ByID(id)
	if err != nil {
		tb.Fatal(err)
	}
	fopts := fuzz.DefaultOptions()
	fopts.MaxExecs = 150
	fopts.Plateau = 60
	camp, err := fuzz.Run(s.MustParse(), s.Kernel, fopts)
	if err != nil {
		tb.Fatal(err)
	}
	suite := camp.Tests
	if len(suite) > 8 {
		suite = suite[:8]
	}
	return s.MustParse(), s.Kernel, suite
}

// BenchmarkParallelRepair times the repair search sequentially and with
// four workers on every subject. Results are bit-identical by
// construction (see internal/repair/parallel.go); the interesting
// number is wall-clock. On a single-CPU machine the in-process searches
// are compute-bound, so the workers=4 rows mostly measure pool
// overhead; BenchmarkParallelToolchainOverlap shows the speedup the
// pool exists for.
func BenchmarkParallelRepair(b *testing.B) {
	for _, s := range subjects.All() {
		s := s
		orig, kernel, tests := repairInputs(b, s.ID)
		for _, workers := range []int{1, 4} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers%d", s.ID, workers), func(b *testing.B) {
				opts := repair.DefaultOptions()
				opts.Workers = workers
				for i := 0; i < b.N; i++ {
					res := repair.Search(orig, cast.CloneUnit(orig), kernel, tests, opts)
					b.ReportMetric(float64(res.Stats.CandidatesTried), "cands")
					b.ReportMetric(float64(res.Stats.VirtualSeconds), "virt_s")
				}
			})
		}
	}
}

// overlapKernel is the paper's Figure 2 working example — the dynamic
// tree with malloc, pointer links, recursion, and a global — carrying
// several error classes at once. It is the overlap benchmark's subject
// because its random-mode search tries tens of candidates per accepted
// edit, so there are enough blocking evaluations to overlap; the
// dependence-guided search converges in single-digit evaluations and
// leaves a worker pool nothing to hide.
const overlapKernel = `
struct Node {
    int val;
    struct Node *left;
    struct Node *right;
};
int total;
void traverse(struct Node *curr) {
    if (curr == 0) { return; }
    total = total + curr->val;
    traverse(curr->left);
    traverse(curr->right);
}
int kernel(int n) {
    if (n < 0) { n = -n; }
    if (n > 24) { n = 24; }
    struct Node *root = 0;
    for (int i = 0; i < n; i++) {
        int v = (i * 37) % 101;
        struct Node *nn = (struct Node *)malloc(sizeof(struct Node));
        nn->val = v;
        nn->left = 0;
        nn->right = 0;
        if (root == 0) { root = nn; }
        else {
            struct Node *p = root;
            while (1) {
                if (v < p->val) {
                    if (p->left == 0) { p->left = nn; break; }
                    p = p->left;
                } else {
                    if (p->right == 0) { p->right = nn; break; }
                    p = p->right;
                }
            }
        }
    }
    total = 0;
    traverse(root);
    return total;
}`

func overlapInputs() (*cast.Unit, []fuzz.TestCase) {
	var tests []fuzz.TestCase
	for _, n := range []int64{0, 1, 3, 8, 24, 17} {
		tests = append(tests, fuzz.TestCase{
			Args: []fuzz.Arg{{Scalar: true, Ints: []int64{n}, Width: 32}},
		})
	}
	return cparser.MustParse(overlapKernel), tests
}

// overlapOptions is the shared configuration of the overlap benchmark
// and the bench_parallel.json writer: random-mode search (many
// candidates per acceptance) with a 20ms EvalDelay emulating the
// blocking external toolchain invocation each full evaluation pays in
// production.
func overlapOptions(workers int) repair.Options {
	opts := repair.DefaultOptions()
	opts.UseDependence = false
	opts.Budget = 12 * 3600
	opts.MaxIterations = 96
	opts.Workers = workers
	opts.EvalDelay = 20 * time.Millisecond
	return opts
}

// BenchmarkParallelToolchainOverlap measures what the worker pool is
// for: in production each full candidate evaluation blocks on an
// external HLS toolchain invocation, emulated here by EvalDelay. Those
// waits overlap across workers (the virtual clock still models one
// serialized license, so reported budgets are unchanged), which is
// where the wall-clock speedup comes from even on one CPU.
func BenchmarkParallelToolchainOverlap(b *testing.B) {
	orig, tests := overlapInputs()
	for _, workers := range []int{1, 2, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers%d", workers), func(b *testing.B) {
			opts := overlapOptions(workers)
			for i := 0; i < b.N; i++ {
				res := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
				if !res.Compatible {
					b.Fatal("overlap subject must repair")
				}
			}
		})
	}
}

// TestWriteParallelBenchReport regenerates bench_parallel.json, the
// committed record of the toolchain-overlap speedup. Guarded by an env
// var so normal test runs stay fast:
//
//	WRITE_BENCH=1 go test -run TestWriteParallelBenchReport -v
func TestWriteParallelBenchReport(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 to regenerate bench_parallel.json")
	}
	type row struct {
		Subject      string  `json:"subject"`
		Workers      int     `json:"workers"`
		EvalDelayMS  float64 `json:"eval_delay_ms"`
		WallMS       float64 `json:"wall_ms"`
		VirtualSec   float64 `json:"virtual_seconds"`
		Candidates   int     `json:"candidates_tried"`
		EditLogEqual bool    `json:"edit_log_equal_to_sequential"`
	}
	report := struct {
		Note      string  `json:"note"`
		GOMAXPROC int     `json:"gomaxprocs"`
		Speedup   float64 `json:"speedup_workers4_over_workers1"`
		Rows      []row   `json:"rows"`
	}{
		Note: "Subject is the paper's Figure 2 working example (multi-error: " +
			"dynamic tree with malloc, pointers, recursion, a global) searched in " +
			"random mode, where tens of candidates are evaluated per accepted " +
			"edit. EvalDelay emulates the blocking external HLS-toolchain " +
			"invocation each full candidate evaluation pays in production; the " +
			"worker pool overlaps those waits, so the speedup holds even at " +
			"GOMAXPROCS=1. Virtual-clock numbers (the paper's budget) are " +
			"identical across worker counts by construction.",
		GOMAXPROC: runtime.GOMAXPROCS(0),
	}
	orig, tests := overlapInputs()
	var seqRes, parRes repair.Result
	var seqMS, parMS float64
	for _, workers := range []int{1, 4} {
		opts := overlapOptions(workers)
		start := time.Now()
		res := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
		wall := time.Since(start)
		if workers == 1 {
			seqRes, seqMS = res, float64(wall.Milliseconds())
		} else {
			parRes, parMS = res, float64(wall.Milliseconds())
		}
		report.Rows = append(report.Rows, row{
			Subject:     "figure2-tree",
			Workers:     workers,
			EvalDelayMS: float64(opts.EvalDelay.Milliseconds()),
			WallMS:      float64(wall.Milliseconds()),
			VirtualSec:  float64(res.Stats.VirtualSeconds),
			Candidates:  res.Stats.CandidatesTried,
		})
	}
	equal := reflect.DeepEqual(seqRes.Stats, parRes.Stats) &&
		cast.Print(seqRes.Unit) == cast.Print(parRes.Unit)
	for i := range report.Rows {
		report.Rows[i].EditLogEqual = equal
	}
	if !equal {
		t.Fatal("parallel search diverged from sequential; not writing report")
	}
	report.Speedup = seqMS / parMS
	if report.Speedup < 2 {
		t.Errorf("speedup %.2fx below the 2x target", report.Speedup)
	}
	// Merge into the committed file so sections owned by other writers
	// (candidate_throughput from TestWriteRepairBenchReport) survive.
	data, err := json.Marshal(report)
	if err != nil {
		t.Fatal(err)
	}
	var mine map[string]json.RawMessage
	if err := json.Unmarshal(data, &mine); err != nil {
		t.Fatal(err)
	}
	sections := readBenchSections(t)
	for k, v := range mine {
		sections[k] = v
	}
	writeBenchSections(t, sections)
	t.Logf("speedup %.2fx (%.0fms -> %.0fms), results identical", report.Speedup, seqMS, parMS)
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrates

func BenchmarkParser(b *testing.B) {
	s, _ := subjects.ByID("P9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cparser.Parse(s.Source); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreter(b *testing.B) {
	u := cparser.MustParse(`
int kernel(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i * i % 7; }
    return s;
}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in, err := interp.New(u, interp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.CallKernel("kernel", []interp.Value{interp.IntValue(1000)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecker(b *testing.B) {
	s, _ := subjects.ByID("P9")
	u := cparser.MustParse(s.Source)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		check.Run(u, hls.DefaultConfig(s.Kernel))
	}
}

func BenchmarkCloneUnit(b *testing.B) {
	s, _ := subjects.ByID("P9")
	u := cparser.MustParse(s.Source)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cast.CloneUnit(u)
	}
}

func BenchmarkHeteroRefactorBaseline(b *testing.B) {
	s, _ := subjects.ByID("P3")
	for i := 0; i < b.N; i++ {
		res := baselines.HeteroRefactor(s.MustParse(), s.Kernel, s.ExistingTests())
		if !res.Compatible {
			b.Fatal("HR must repair P3")
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
