// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation (§6). Heavy targets run the quick configuration so a
// full `go test -bench=. -benchmem` completes on a laptop; the hgeval
// command runs the same harness at full effort.
//
// Reported custom metrics carry the reproduction data: compat/10 and
// improved/10 for Table 3, coverage and test counts for Table 4, speedup
// factors for Table 5 and Figure 9.
package heterogen_test

import (
	"testing"

	"github.com/hetero/heterogen/internal/baselines"
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/eval"
	"github.com/hetero/heterogen/internal/forum"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
	"github.com/hetero/heterogen/internal/interp"
	"github.com/hetero/heterogen/internal/repair"
	"github.com/hetero/heterogen/internal/subjects"
)

// ---------------------------------------------------------------------------
// Figure 3 — forum study

func BenchmarkFigure3ForumStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := forum.Study(forum.Corpus(1000, 1))
		if res.Accuracy < 0.9 {
			b.Fatalf("classifier degraded: %.2f", res.Accuracy)
		}
		b.ReportMetric(res.Percent[hls.ClassUnsupportedType], "types%")
		b.ReportMetric(res.Percent[hls.ClassDynamicData], "dynamic%")
	}
}

// ---------------------------------------------------------------------------
// Table 1 — error catalog: the checker produces each canonical diagnostic

func BenchmarkTable1ErrorCatalog(b *testing.B) {
	snippets := map[hls.ErrorClass]string{
		hls.ClassDynamicData: `
void kernel(int cols) { int line_buf_a[cols]; line_buf_a[0] = 1; }`,
		hls.ClassUnsupportedType: `
int kernel(int x) { long double d = x; return (int)d; }`,
		hls.ClassDataflow: `
void my_func(char d[128], char o[128]) { for (int i = 0; i < 128; i++) { o[i] = d[i]; } }
void kernel(char data[128], char a[128], char b[128]) {
#pragma HLS dataflow
    my_func(data, a);
    my_func(data, b);
}`,
		hls.ClassLoopParallel: `
void kernel(int a[100]) {
#pragma HLS dataflow
    for (int i = 0; i < 100; i++) {
#pragma HLS unroll factor=50
        a[i] = i;
    }
}`,
		hls.ClassStructUnion: `
struct If2 {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    void do1() { out.write(in.read()); }
};
void kernel(hls::stream<unsigned> &in, hls::stream<unsigned> &out) {
#pragma HLS dataflow
    hls::stream<unsigned> tmp;
    If2{ in, tmp }.do1();
    If2{ tmp, out }.do1();
}`,
		hls.ClassTopFunction: `
void other() { }`,
	}
	for i := 0; i < b.N; i++ {
		for class, src := range snippets {
			u := cparser.MustParse(src)
			rep := check.Run(u, hls.DefaultConfig("kernel"))
			if !rep.HasClass(class) {
				b.Fatalf("catalog miss: %s not diagnosed", class)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Table 2 / Figure 7c — edit catalog and dependence structure

func BenchmarkTable2EditCatalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		reg := repair.Registry()
		perClass := map[hls.ErrorClass]int{}
		for _, t := range reg {
			perClass[t.Class]++
		}
		for _, c := range hls.AllClasses() {
			if perClass[c] == 0 {
				b.Fatalf("no templates for class %s", c)
			}
		}
		// Figure 7c edges.
		for _, pair := range [][2]string{
			{"stream_static", "constructor"},
			{"inst_update", "flatten"},
			{"pointer", "insert"},
			{"type_casting", "type_trans"},
		} {
			t, ok := repair.TemplateByID(pair[0])
			if !ok || len(t.Requires) == 0 || t.Requires[0] != pair[1] {
				b.Fatalf("dependence edge %s -> %s missing", pair[0], pair[1])
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Table 3 — conversion effectiveness (full pipeline per subject)

func BenchmarkTable3Conversion(b *testing.B) {
	cfg := eval.QuickConfig()
	for _, s := range subjects.All() {
		s := s
		b.Run(s.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := eval.RunSubject(s, cfg)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(boolMetric(run.Compatible && run.BehaviorOK), "compat")
				b.ReportMetric(boolMetric(run.Improved), "improved")
				b.ReportMetric(float64(run.DeltaLOC), "ΔLOC")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 4 — test generation

func BenchmarkTable4TestGen(b *testing.B) {
	for _, s := range subjects.All() {
		s := s
		b.Run(s.ID, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := fuzz.DefaultOptions()
				opts.MaxExecs = 400
				opts.Plateau = 150
				camp, err := fuzz.Run(s.MustParse(), s.Kernel, opts)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(100*camp.Coverage, "cov%")
				b.ReportMetric(float64(camp.Execs), "tests")
				if s.ExistingTests != nil {
					cov, err := fuzz.Replay(s.MustParse(), s.Kernel, s.ExistingTests())
					if err != nil {
						b.Fatal(err)
					}
					if camp.Coverage < cov {
						b.Fatalf("%s: generated %.2f below existing %.2f", s.ID, camp.Coverage, cov)
					}
					b.ReportMetric(100*cov, "existing_cov%")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Table 5 — manual and HeteroRefactor comparison

func BenchmarkTable5Comparison(b *testing.B) {
	cfg := eval.QuickConfig()
	for _, id := range []string{"P1", "P3", "P6", "P8"} {
		s, err := subjects.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				run, err := eval.RunSubject(s, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if run.HRSucceeded != s.HRSupported {
					b.Fatalf("%s: HR=%v want %v", id, run.HRSucceeded, s.HRSupported)
				}
				if run.RuntimeHGMS > 0 {
					b.ReportMetric(run.RuntimeOriginMS/run.RuntimeHGMS, "speedupHG")
				}
				if run.RuntimeManualMS > 0 {
					b.ReportMetric(run.RuntimeOriginMS/run.RuntimeManualMS, "speedupManual")
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Figure 9 — ablations (dependence guidance and the style checker)

func BenchmarkFigure9Ablation(b *testing.B) {
	cfg := eval.QuickConfig()
	for _, id := range []string{"P1", "P3", "P5", "P8"} {
		s, err := subjects.ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				abl, err := eval.RunAblation(s, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if abl.WithoutDepOK && abl.HGMinutes > 0 {
					b.ReportMetric(abl.WithoutDepMinutes/abl.HGMinutes, "dep_speedup")
				}
				b.ReportMetric(abl.HGInvokePct, "hg_invoke%")
				b.ReportMetric(abl.WithoutCheckerPct, "nochecker_invoke%")
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Design-choice ablations beyond the paper's figures

// BenchmarkAblationTypedMutation measures the coverage effect of the
// type-validity filter on a narrow-typed kernel (§4's second insight).
func BenchmarkAblationTypedMutation(b *testing.B) {
	src := `
int kernel(fpga_uint<7> x, fpga_uint<7> y) {
    int r = 0;
    if (x > 100) { r += 1; }
    if (y > 100) { r += 2; }
    if (x + y == 200) { r += 4; }
    return r;
}`
	u := cparser.MustParse(src)
	for i := 0; i < b.N; i++ {
		typed := fuzz.DefaultOptions()
		typed.MaxExecs = 500
		campT, err := fuzz.Run(u, "kernel", typed)
		if err != nil {
			b.Fatal(err)
		}
		untyped := typed
		untyped.TypedMutation = false
		campU, err := fuzz.Run(u, "kernel", untyped)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*campT.Coverage, "typed_cov%")
		b.ReportMetric(100*campU.Coverage, "untyped_cov%")
	}
}

// BenchmarkAblationSeedCapture measures kernel-entry seeding vs random
// seeding (§4's first insight).
func BenchmarkAblationSeedCapture(b *testing.B) {
	src := `
int gate(int a, int b) { return a * 1000 + b; }
int kernel(int secret) {
    if (secret == gate(31, 337)) { return 1; }
    return 0;
}
int host() { return kernel(gate(31, 337)); }`
	u := cparser.MustParse(src)
	for i := 0; i < b.N; i++ {
		blind := fuzz.DefaultOptions()
		blind.MaxExecs = 600
		campB, err := fuzz.Run(u, "kernel", blind)
		if err != nil {
			b.Fatal(err)
		}
		seeded := blind
		seeded.HostMain = "host"
		campS, err := fuzz.Run(u, "kernel", seeded)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*campB.Coverage, "blind_cov%")
		b.ReportMetric(100*campS.Coverage, "seeded_cov%")
		if campS.Coverage < campB.Coverage {
			b.Fatal("seed capture should never lose coverage")
		}
	}
}

// BenchmarkAblationBitwidth measures the resource effect of bitwidth
// finitization (the HeteroRefactor-inherited optimization): the FF saving
// of the profiled initial version over the declared C widths.
func BenchmarkAblationBitwidth(b *testing.B) {
	s, err := subjects.ByID("P3")
	if err != nil {
		b.Fatal(err)
	}
	opts := fuzz.DefaultOptions()
	opts.MaxExecs = 300
	camp, err := fuzz.Run(s.MustParse(), s.Kernel, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.ReportMetric(searchWithProfile(b, s, camp.Tests), "ff_saving%")
	}
}

func searchWithProfile(b *testing.B, s subjects.Subject, tests []fuzz.TestCase) float64 {
	b.Helper()
	orig := s.MustParse()
	prof, err := profileGenerate(orig, s.Kernel, tests)
	if err != nil {
		b.Fatal(err)
	}
	base := estimateFF(orig)
	narrowed := estimateFF(prof)
	if base == 0 {
		return 0
	}
	return 100 * float64(base-narrowed) / float64(base)
}

// ---------------------------------------------------------------------------
// Micro-benchmarks of the substrates

func BenchmarkParser(b *testing.B) {
	s, _ := subjects.ByID("P9")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cparser.Parse(s.Source); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInterpreter(b *testing.B) {
	u := cparser.MustParse(`
int kernel(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) { s += i * i % 7; }
    return s;
}`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in, err := interp.New(u, interp.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := in.CallKernel("kernel", []interp.Value{interp.IntValue(1000)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChecker(b *testing.B) {
	s, _ := subjects.ByID("P9")
	u := cparser.MustParse(s.Source)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		check.Run(u, hls.DefaultConfig(s.Kernel))
	}
}

func BenchmarkCloneUnit(b *testing.B) {
	s, _ := subjects.ByID("P9")
	u := cparser.MustParse(s.Source)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cast.CloneUnit(u)
	}
}

func BenchmarkHeteroRefactorBaseline(b *testing.B) {
	s, _ := subjects.ByID("P3")
	for i := 0; i < b.N; i++ {
		res := baselines.HeteroRefactor(s.MustParse(), s.Kernel, s.ExistingTests())
		if !res.Compatible {
			b.Fatal("HR must repair P3")
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
