// Multi-target acceptance on the paper's Figure 2 working example: the
// repair search over two device profiles must return a latency/resource
// Pareto set whose every point is compatible on every device, with a
// per-target verdict table whose latencies reflect each profile's
// clock. This is the api_redesign acceptance criterion run as a normal
// test (the env-gated target-smoke exercises the same contract through
// the real binaries).
package heterogen_test

import (
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/repair"
)

func TestFigure2MultiTargetPareto(t *testing.T) {
	orig, tests := overlapInputs()
	targets, err := hls.ParseTargets([]string{"vivado_hls:xcvu9p", "vivado_hls:zc706"})
	if err != nil {
		t.Fatal(err)
	}
	opts := overlapOptions(4)
	opts.EvalDelay = 0 // the toolchain-wait emulation only slows the test down
	opts.Targets = targets

	res := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
	if !res.Compatible || !res.BehaviorOK {
		t.Fatalf("Figure 2 subject must repair on both profiles: %v", res.Remaining)
	}
	if len(res.PerTarget) != 2 {
		t.Fatalf("verdict table has %d entries, want 2", len(res.PerTarget))
	}
	for i, v := range res.PerTarget {
		if v.Target != targets[i].String() {
			t.Errorf("verdict %d is for %q, want %q", i, v.Target, targets[i])
		}
		if !v.Compatible || !v.BehaviorOK || !v.Fits {
			t.Errorf("verdict %s: compatible=%v behaviorOK=%v fits=%v (over %v)",
				v.Target, v.Compatible, v.BehaviorOK, v.Fits, v.Over)
		}
		if v.LatencyMS <= 0 {
			t.Errorf("verdict %s: no latency", v.Target)
		}
		if v.Utilization == "" {
			t.Errorf("verdict %s: no utilization rendering", v.Target)
		}
	}
	// zc706 runs the same cycle count at 100 MHz against the 250 MHz
	// reference part, so its latency must be strictly worse.
	if fast, slow := res.PerTarget[0].LatencyMS, res.PerTarget[1].LatencyMS; slow <= fast {
		t.Errorf("zc706 latency %.4fms should exceed xcvu9p's %.4fms", slow, fast)
	}
	if len(res.Pareto) == 0 {
		t.Fatal("multi-target search returned no Pareto set")
	}
	seen := map[string]bool{}
	for _, pt := range res.Pareto {
		if pt.Source == "" {
			t.Fatal("Pareto point without source text")
		}
		if seen[pt.Source] {
			t.Error("duplicate program in the Pareto set")
		}
		seen[pt.Source] = true
		if len(pt.PerTarget) != 2 {
			t.Fatalf("Pareto point has %d verdicts, want 2", len(pt.PerTarget))
		}
		for _, v := range pt.PerTarget {
			if !v.Compatible || !v.Fits {
				t.Errorf("Pareto point is not feasible on %s", v.Target)
			}
		}
	}
}
