// Quickstart: transpile a small C kernel with an unsupported type to
// HLS-C in one call, and print the repaired source plus the verdict.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/hetero/heterogen"
)

// The Figure 4 shape: a long double intermediate is not synthesizable.
const src = `
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`

func main() {
	// Before: show what the HLS toolchain rejects.
	rep, err := heterogen.Check(src, heterogen.Options{Kernel: "top"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== diagnostics before repair ==")
	for _, d := range rep.Diags {
		fmt.Println(" ", d.Error())
	}

	// Transpile: test generation, bitwidth profiling, repair.
	res, err := heterogen.Transpile(src, heterogen.Options{
		Kernel: "top",
		Fuzz:   heterogen.FuzzOptions{Seed: 1, MaxExecs: 300, Plateau: 100, TypedMutation: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== repaired HLS-C ==")
	fmt.Print(res.Source)
	fmt.Println("\n== verdict ==")
	fmt.Println(res.Summary())
	for _, e := range res.Repair.Stats.EditLog {
		fmt.Println("edit:", e)
	}
}
