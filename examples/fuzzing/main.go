// Fuzzing: test generation in isolation (the paper's Algorithm 1). The
// kernel hides a branch behind an equality constant and another behind a
// host-staged magic value; the example shows coverage-guided, type-valid
// mutation plus kernel-entry seed capture finding both.
//
// Run with:
//
//	go run ./examples/fuzzing
package main

import (
	"fmt"
	"log"

	"github.com/hetero/heterogen"
)

// The secret gate value is computed, never spelled as a literal, so
// neither blind mutation nor the constant dictionary can reach it — only
// capturing the host program's kernel-entry state does.
const src = `
int gate(int a, int b) { return a * 1000 + b; }
int kernel(fpga_uint<7> knob, int secret) {
    int score = 0;
    if (knob > 100) { score += 1; }
    if (knob == 77) { score += 10; }
    if (secret == gate(424, 242)) { score += 100; }
    for (int i = 0; i < knob % 8; i++) { score += i; }
    return score;
}
int host() {
    int staged = gate(424, 242);
    return kernel(42, staged);
}`

func main() {
	// Without host seeding: the computed secret is out of reach.
	blind, err := heterogen.GenerateTests(src, "kernel", heterogen.FuzzOptions{
		Seed: 1, MaxExecs: 1500, Plateau: 500, TypedMutation: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blind fuzzing   : %s\n", blind.Summary())

	// With host seeding (Algorithm 1's getKernelSeed): the staged value
	// arrives as the seed and the branch is covered immediately.
	seeded, err := heterogen.GenerateTests(src, "kernel", heterogen.FuzzOptions{
		Seed: 1, MaxExecs: 1500, Plateau: 500, TypedMutation: true, HostMain: "host",
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host-seeded     : %s (seeded=%v)\n", seeded.Summary(), seeded.SeededFromHost)

	fmt.Println("\nretained corpus (host-seeded):")
	for i, tc := range seeded.Tests {
		if i >= 10 {
			break
		}
		fmt.Printf("  test[%d] = %s\n", i, tc)
	}
	fmt.Println("\nall inputs above are type-valid for fpga_uint<7>: no generated")
	fmt.Println("knob value exceeds 127, so every execution reaches kernel logic.")
}
