// Extension: the paper's extensibility story (§5.2) — "for a new HLS
// error type, a user can add a new corresponding repair localization
// module." This example registers a custom classifier and repair template
// for a design-rule error the built-in catalog does not know (a missing
// interface pragma on the top function), then shows a parsed real-world
// Vivado log flowing through the same classification machinery.
//
// Run with:
//
//	go run ./examples/extension
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/repair"
)

func main() {
	// 1. A custom classifier: our team's lint message becomes a
	//    TopFunction-class error.
	repair.RegisterClassifier(func(msg string) hls.ErrorClass {
		if strings.Contains(msg, "missing AXI interface") {
			return hls.ClassTopFunction
		}
		return hls.ClassNone
	})

	// 2. A custom template that repairs it.
	err := repair.RegisterTemplate(repair.Template{
		ID:    "axi_interface",
		Class: hls.ClassTopFunction,
		Instantiate: func(u *cast.Unit, d hls.Diagnostic, st *repair.State) []repair.Edit {
			fn := u.Func(d.Subject)
			if fn == nil {
				return nil
			}
			name := d.Subject
			return []repair.Edit{{
				Template: "axi_interface",
				Class:    hls.ClassTopFunction,
				Target:   name,
				Note:     "insert m_axi interface pragma",
				Apply: func(u *cast.Unit) error {
					fn := u.Func(name)
					fn.Pragmas = append(fn.Pragmas,
						&cast.Pragma{Text: "HLS interface mode=m_axi port=return"})
					return nil
				},
			}}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== active template catalog (Table 2 + extension) ==")
	fmt.Print(repair.DescribeRegistry())

	// 3. Drive the extension: classify our lint message, instantiate the
	//    template, apply it.
	u := cparser.MustParse(`
void kernel(int a[16], int b[16]) {
    for (int i = 0; i < 16; i++) { b[i] = a[i] + 1; }
}`)
	diag := hls.Diagnostic{
		Message: "missing AXI interface on the top function 'kernel'",
		Subject: "kernel",
	}
	fmt.Printf("\nclassified as: %s\n", repair.ClassifyMessage(diag.Message))
	cands := repair.CandidatesFor(u, diag, repair.NewState())
	for _, c := range cands {
		if c.Edits[0].Template == "axi_interface" {
			fmt.Println("applied:", c.Describe())
			fmt.Println()
			fmt.Print(cast.Print(c.Unit))
		}
	}

	// 4. A real Vivado log parses into the same diagnostic shape the
	//    search consumes — the migration path off the simulator.
	vivado := `
ERROR: [XFORM 202-876] Synthesizability check failed: recursive functions are not supported ('walk')
ERROR: [SYNCHK 200-31] dynamic memory allocation/deallocation is not supported
`
	fmt.Println("\n== parsed Vivado log ==")
	for _, d := range hls.ParseVivadoLog(vivado) {
		fmt.Printf("  [%s] subject=%q class=%s\n",
			d.Code, d.Subject, repair.ClassifyMessage(d.Message))
	}
}
