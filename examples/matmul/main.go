// Matmul: the performance story. A clean (already-synthesizable, modulo
// one bad pragma) matrix multiplication gets its loop pragmas explored
// automatically; the example prints the simulated CPU-vs-FPGA latency
// before and after, showing where the paper's 1.63x mean speedup comes
// from.
//
// Run with:
//
//	go run ./examples/matmul
package main

import (
	"fmt"
	"log"

	"github.com/hetero/heterogen"
)

const src = `
void matmul(int a[1024], int b[1024], int c[1024]) {
    for (int i = 0; i < 32; i++) {
        for (int j = 0; j < 32; j++) {
#pragma HLS unroll factor=3
            int acc = 0;
            for (int k = 0; k < 32; k++) {
                acc += a[i * 32 + k] * b[k * 32 + j];
            }
            c[i * 32 + j] = acc;
        }
    }
}`

func main() {
	rep, err := heterogen.Check(src, heterogen.Options{Kernel: "matmul"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== before ==")
	for _, d := range rep.Diags {
		fmt.Println(" ", d.Error())
	}

	res, err := heterogen.Transpile(src, heterogen.Options{
		Kernel: "matmul",
		Fuzz:   heterogen.FuzzOptions{Seed: 1, MaxExecs: 200, Plateau: 80, TypedMutation: true},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== repaired + tuned ==")
	fmt.Print(res.Source)
	fmt.Println("\n== performance ==")
	fmt.Printf("original on CPU : %.4f ms\n", res.CPUMeanMS)
	fmt.Printf("HLS on FPGA sim : %.4f ms\n", res.FPGAMeanMS)
	if res.Improved {
		fmt.Printf("speedup         : %.2fx\n", res.CPUMeanMS/res.FPGAMeanMS)
	}
	fmt.Printf("resource estimate: %s\n", res.Resources)
}
