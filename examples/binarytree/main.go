// Binary tree: the paper's Figure 2 working example. A kernel that builds
// a binary search tree with malloc/pointers and sums it with a recursive
// traversal — three error classes deep (dynamic allocation, pointers,
// recursion). HeteroGen converts it to a pool-indexed, stack-machine
// version and validates behaviour differentially.
//
// Run with:
//
//	go run ./examples/binarytree
package main

import (
	"fmt"
	"log"

	"github.com/hetero/heterogen"
)

const src = `
struct Node {
    int val;
    struct Node *left;
    struct Node *right;
};
int total;
void traverse(struct Node *curr) {
    if (curr == 0) { return; }
    total = total + curr->val;
    traverse(curr->left);
    traverse(curr->right);
}
int kernel(int n) {
    if (n < 0) { n = -n; }
    if (n > 24) { n = 24; }
    struct Node *root = 0;
    for (int i = 0; i < n; i++) {
        int v = (i * 37) % 101;
        struct Node *nn = (struct Node *)malloc(sizeof(struct Node));
        nn->val = v;
        nn->left = 0;
        nn->right = 0;
        if (root == 0) { root = nn; }
        else {
            struct Node *p = root;
            while (1) {
                if (v < p->val) {
                    if (p->left == 0) { p->left = nn; break; }
                    p = p->left;
                } else {
                    if (p->right == 0) { p->right = nn; break; }
                    p = p->right;
                }
            }
        }
    }
    total = 0;
    traverse(root);
    return total;
}`

func main() {
	rep, err := heterogen.Check(src, heterogen.Options{Kernel: "kernel"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("== %d diagnostics before repair ==\n", len(rep.Diags))
	for class, diags := range rep.ByClass() {
		fmt.Printf("  %s: %d\n", class, len(diags))
	}

	res, err := heterogen.Transpile(src, heterogen.Options{
		Kernel: "kernel",
		Fuzz:   heterogen.FuzzOptions{Seed: 7, MaxExecs: 600, Plateau: 200, TypedMutation: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== repair log ==")
	for _, e := range res.Repair.Stats.EditLog {
		fmt.Println(" ", e)
	}
	fmt.Printf("\n== verdict: %s ==\n", res.Summary())
	fmt.Printf("virtual repair time: %.0f minutes, %d HLS invocations (%d style-rejected candidates)\n",
		res.Repair.Stats.VirtualMinutes(), res.Repair.Stats.HLSInvocations,
		res.Repair.Stats.StyleRejections)

	fmt.Println("\n== converted traversal (excerpt) ==")
	printFrom(res.Source, "struct traverse_ctx", 24)
}

// printFrom prints up to n lines of src starting at the line containing
// the marker.
func printFrom(src, marker string, n int) {
	lines := splitLines(src)
	start := 0
	for i, l := range lines {
		if contains(l, marker) {
			start = i
			break
		}
	}
	for i := start; i < len(lines) && i < start+n; i++ {
		fmt.Println(lines[i])
	}
}

func splitLines(s string) []string {
	var out []string
	cur := ""
	for _, r := range s {
		if r == '\n' {
			out = append(out, cur)
			cur = ""
			continue
		}
		cur += string(r)
	}
	return append(out, cur)
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
