// Cold-vs-warm benchmark of the evaluation cache on the repair search.
// The subject, inputs, and search configuration are shared with the
// parallel-overlap benchmark (bench_test.go): the paper's Figure 2
// working example searched in random mode with a 20ms EvalDelay
// emulating the blocking external HLS-toolchain invocation. A warm
// cache answers every checker, simulator, and differential-test query
// from memory — skipping the toolchain wait entirely — which is the
// whole point of content-addressed memoization: a re-run over an
// already-seen program costs parse time, not toolchain time.
package heterogen_test

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/repair"
)

// BenchmarkCacheWarmRepair times one repair search against a
// pre-warmed cache; compare with BenchmarkParallelToolchainOverlap's
// workers1 row for the cold cost of the same search.
func BenchmarkCacheWarmRepair(b *testing.B) {
	orig, tests := overlapInputs()
	opts := overlapOptions(1)
	cache, err := evalcache.New(evalcache.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts.Cache = cache
	// Warm-up populates the cache; the timed loop replays it.
	repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
		if !res.Compatible {
			b.Fatal("overlap subject must repair")
		}
	}
}

// TestWriteCacheBenchReport regenerates bench_cache.json, the committed
// record of the cold-vs-warm speedup. Guarded by an env var so normal
// test runs stay fast:
//
//	WRITE_BENCH=1 go test -run TestWriteCacheBenchReport -v
func TestWriteCacheBenchReport(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 to regenerate bench_cache.json")
	}
	type stageRow struct {
		Stage  string `json:"stage"`
		Hits   int64  `json:"hits"`
		Misses int64  `json:"misses"`
	}
	type multiRow struct {
		Targets         []string `json:"targets"`
		ColdWallMS      float64  `json:"cold_wall_ms"`
		WarmWallMS      float64  `json:"warm_wall_ms"`
		Speedup         float64  `json:"speedup_warm_over_cold"`
		WarmHitRate     float64  `json:"warm_hit_rate"`
		ParetoSize      int      `json:"pareto_size"`
		CrossDeviceHits int64    `json:"cross_device_hits"`
	}
	report := struct {
		Note             string     `json:"note"`
		Subject          string     `json:"subject"`
		EvalDelayMS      float64    `json:"eval_delay_ms"`
		ColdWallMS       float64    `json:"cold_wall_ms"`
		WarmWallMS       float64    `json:"warm_wall_ms"`
		Speedup          float64    `json:"speedup_warm_over_cold"`
		WarmHitRate      float64    `json:"warm_hit_rate"`
		WarmStages       []stageRow `json:"warm_stages"`
		Candidates       int        `json:"candidates_tried"`
		VirtualSec       float64    `json:"virtual_seconds"`
		ResultsIdentical bool       `json:"results_identical"`
		MultiTarget      multiRow   `json:"multi_target"`
	}{
		Note: "Subject is the paper's Figure 2 working example searched in " +
			"random mode with a 20ms EvalDelay emulating the blocking external " +
			"HLS-toolchain invocation (shared with bench_parallel.json). The " +
			"warm run re-executes the identical search against the cache " +
			"populated by the cold run: every checker, resource-estimate, and " +
			"differential-test verdict is a content-addressed hit, so no " +
			"toolchain wait is paid. Edit log, Stats, and the virtual clock " +
			"are bit-identical between the two runs by construction.",
		Subject: "figure2-tree",
	}
	orig, tests := overlapInputs()
	opts := overlapOptions(1)
	report.EvalDelayMS = float64(opts.EvalDelay.Milliseconds())
	cache, err := evalcache.New(evalcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cache

	start := time.Now()
	cold := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
	report.ColdWallMS = float64(time.Since(start).Milliseconds())

	before := cache.Stats()
	start = time.Now()
	warm := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
	report.WarmWallMS = float64(time.Since(start).Milliseconds())
	delta := cache.Stats().Sub(before)

	report.ResultsIdentical = reflect.DeepEqual(cold.Stats, warm.Stats) &&
		cast.Print(cold.Unit) == cast.Print(warm.Unit)
	if !report.ResultsIdentical {
		t.Fatal("warm search diverged from cold; not writing report")
	}
	if delta.Hits() == 0 {
		t.Fatal("warm run never hit the cache; not writing report")
	}
	report.WarmHitRate = float64(delta.Hits()) / float64(delta.Hits()+delta.Misses())
	for _, stage := range evalcache.Stages() {
		st := delta.Stages[stage]
		if st.Hits+st.Misses == 0 {
			continue
		}
		report.WarmStages = append(report.WarmStages, stageRow{string(stage), st.Hits, st.Misses})
	}
	report.Candidates = warm.Stats.CandidatesTried
	report.VirtualSec = warm.Stats.VirtualSeconds
	if report.WarmWallMS <= 0 {
		report.WarmWallMS = 1 // sub-millisecond warm run; avoid a zero divide
	}
	report.Speedup = report.ColdWallMS / report.WarmWallMS
	if report.Speedup < 2 {
		t.Errorf("warm speedup %.2fx below the 2x target", report.Speedup)
	}

	// Multi-target row: the same search over two device profiles on a
	// fresh cache. Cache fingerprints incorporate the target, so the
	// warm replay hits for every device while a search targeted at a
	// device the cache has never seen starts cold — cross_device_hits
	// counts what a zc706-only search salvages from an xcvu9p-only
	// warm-up beyond a fresh-cache run of itself, and only the
	// target-free resource estimates may carry over.
	targets, err := hls.ParseTargets([]string{"vivado_hls:xcvu9p", "vivado_hls:zc706"})
	if err != nil {
		t.Fatal(err)
	}
	for _, tg := range targets {
		report.MultiTarget.Targets = append(report.MultiTarget.Targets, tg.String())
	}
	mcache, err := evalcache.New(evalcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	mopts := overlapOptions(1)
	mopts.Cache = mcache
	mopts.Targets = targets
	start = time.Now()
	mcold := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, mopts)
	report.MultiTarget.ColdWallMS = float64(time.Since(start).Milliseconds())
	if len(mcold.PerTarget) != len(targets) || len(mcold.Pareto) == 0 {
		t.Fatalf("multi-target search returned %d verdicts and %d pareto points",
			len(mcold.PerTarget), len(mcold.Pareto))
	}
	report.MultiTarget.ParetoSize = len(mcold.Pareto)
	mbefore := mcache.Stats()
	start = time.Now()
	mwarm := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, mopts)
	report.MultiTarget.WarmWallMS = float64(time.Since(start).Milliseconds())
	mdelta := mcache.Stats().Sub(mbefore)
	if !reflect.DeepEqual(mcold.Stats, mwarm.Stats) || cast.Print(mcold.Unit) != cast.Print(mwarm.Unit) {
		t.Fatal("warm multi-target search diverged from cold; not writing report")
	}
	report.MultiTarget.WarmHitRate = float64(mdelta.Hits()) / float64(mdelta.Hits()+mdelta.Misses())
	if report.MultiTarget.WarmWallMS <= 0 {
		report.MultiTarget.WarmWallMS = 1
	}
	report.MultiTarget.Speedup = report.MultiTarget.ColdWallMS / report.MultiTarget.WarmWallMS

	// Warm one device, search another: target-keyed verdicts must not
	// leak across devices. Carryover is measured against a fresh-cache
	// baseline of the same search (a run hits its own stores when the
	// mutator revisits a candidate, so raw hit counts overcount); the
	// only entries allowed to cross are StageSim resource estimates,
	// which are target-free by design (evalcache.ResourceKey).
	xdev := func(warmup []hls.Target) int64 {
		c, err := evalcache.New(evalcache.Options{})
		if err != nil {
			t.Fatal(err)
		}
		o := overlapOptions(1)
		o.Cache = c
		if warmup != nil {
			o.Targets = warmup
			repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, o)
		}
		o.Targets = targets[1:2]
		before := c.Stats()
		repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, o)
		d := c.Stats().Sub(before)
		if st := d.Stages[evalcache.StageCheck]; warmup != nil && st.Misses == 0 {
			t.Fatal("cross-device search never missed the check stage; device keying is broken")
		}
		return d.Hits()
	}
	solo := xdev(nil)
	report.MultiTarget.CrossDeviceHits = xdev(targets[:1]) - solo

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("bench_cache.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("speedup %.2fx (%.0fms -> %.0fms), hit rate %.0f%%, results identical",
		report.Speedup, report.ColdWallMS, report.WarmWallMS, 100*report.WarmHitRate)
}
