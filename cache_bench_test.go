// Cold-vs-warm benchmark of the evaluation cache on the repair search.
// The subject, inputs, and search configuration are shared with the
// parallel-overlap benchmark (bench_test.go): the paper's Figure 2
// working example searched in random mode with a 20ms EvalDelay
// emulating the blocking external HLS-toolchain invocation. A warm
// cache answers every checker, simulator, and differential-test query
// from memory — skipping the toolchain wait entirely — which is the
// whole point of content-addressed memoization: a re-run over an
// already-seen program costs parse time, not toolchain time.
package heterogen_test

import (
	"encoding/json"
	"os"
	"reflect"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/repair"
)

// BenchmarkCacheWarmRepair times one repair search against a
// pre-warmed cache; compare with BenchmarkParallelToolchainOverlap's
// workers1 row for the cold cost of the same search.
func BenchmarkCacheWarmRepair(b *testing.B) {
	orig, tests := overlapInputs()
	opts := overlapOptions(1)
	cache, err := evalcache.New(evalcache.Options{})
	if err != nil {
		b.Fatal(err)
	}
	opts.Cache = cache
	// Warm-up populates the cache; the timed loop replays it.
	repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
		if !res.Compatible {
			b.Fatal("overlap subject must repair")
		}
	}
}

// TestWriteCacheBenchReport regenerates bench_cache.json, the committed
// record of the cold-vs-warm speedup. Guarded by an env var so normal
// test runs stay fast:
//
//	WRITE_BENCH=1 go test -run TestWriteCacheBenchReport -v
func TestWriteCacheBenchReport(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 to regenerate bench_cache.json")
	}
	type stageRow struct {
		Stage  string `json:"stage"`
		Hits   int64  `json:"hits"`
		Misses int64  `json:"misses"`
	}
	report := struct {
		Note             string     `json:"note"`
		Subject          string     `json:"subject"`
		EvalDelayMS      float64    `json:"eval_delay_ms"`
		ColdWallMS       float64    `json:"cold_wall_ms"`
		WarmWallMS       float64    `json:"warm_wall_ms"`
		Speedup          float64    `json:"speedup_warm_over_cold"`
		WarmHitRate      float64    `json:"warm_hit_rate"`
		WarmStages       []stageRow `json:"warm_stages"`
		Candidates       int        `json:"candidates_tried"`
		VirtualSec       float64    `json:"virtual_seconds"`
		ResultsIdentical bool       `json:"results_identical"`
	}{
		Note: "Subject is the paper's Figure 2 working example searched in " +
			"random mode with a 20ms EvalDelay emulating the blocking external " +
			"HLS-toolchain invocation (shared with bench_parallel.json). The " +
			"warm run re-executes the identical search against the cache " +
			"populated by the cold run: every checker, resource-estimate, and " +
			"differential-test verdict is a content-addressed hit, so no " +
			"toolchain wait is paid. Edit log, Stats, and the virtual clock " +
			"are bit-identical between the two runs by construction.",
		Subject: "figure2-tree",
	}
	orig, tests := overlapInputs()
	opts := overlapOptions(1)
	report.EvalDelayMS = float64(opts.EvalDelay.Milliseconds())
	cache, err := evalcache.New(evalcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cache

	start := time.Now()
	cold := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
	report.ColdWallMS = float64(time.Since(start).Milliseconds())

	before := cache.Stats()
	start = time.Now()
	warm := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
	report.WarmWallMS = float64(time.Since(start).Milliseconds())
	delta := cache.Stats().Sub(before)

	report.ResultsIdentical = reflect.DeepEqual(cold.Stats, warm.Stats) &&
		cast.Print(cold.Unit) == cast.Print(warm.Unit)
	if !report.ResultsIdentical {
		t.Fatal("warm search diverged from cold; not writing report")
	}
	if delta.Hits() == 0 {
		t.Fatal("warm run never hit the cache; not writing report")
	}
	report.WarmHitRate = float64(delta.Hits()) / float64(delta.Hits()+delta.Misses())
	for _, stage := range evalcache.Stages() {
		st := delta.Stages[stage]
		if st.Hits+st.Misses == 0 {
			continue
		}
		report.WarmStages = append(report.WarmStages, stageRow{string(stage), st.Hits, st.Misses})
	}
	report.Candidates = warm.Stats.CandidatesTried
	report.VirtualSec = warm.Stats.VirtualSeconds
	if report.WarmWallMS <= 0 {
		report.WarmWallMS = 1 // sub-millisecond warm run; avoid a zero divide
	}
	report.Speedup = report.ColdWallMS / report.WarmWallMS
	if report.Speedup < 2 {
		t.Errorf("warm speedup %.2fx below the 2x target", report.Speedup)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("bench_cache.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("speedup %.2fx (%.0fms -> %.0fms), hit rate %.0f%%, results identical",
		report.Speedup, report.ColdWallMS, report.WarmWallMS, 100*report.WarmHitRate)
}
