// Observability-overhead benchmark: the same Figure 2 repair search
// with the full trace stack off and on. "On" means the production
// hgserve sink — a JSONL TraceWriter plus the metrics registry — so the
// measured delta is what a deployment actually pays for tracing.
// EvalDelay is zero here (unlike the overlap benchmark): the search is
// pure compute, which makes the comparison as unforgiving as possible;
// any emulated toolchain wait would only dilute the overhead.
package heterogen_test

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/repair"
)

// obsBenchOptions is overlapOptions without the toolchain-wait
// emulation.
func obsBenchOptions(traced bool) (repair.Options, func() error) {
	opts := overlapOptions(1)
	opts.EvalDelay = 0
	if !traced {
		return opts, func() error { return nil }
	}
	tw := obs.NewTraceWriter(io.Discard)
	opts.Obs = obs.Multi(tw, obs.NewRegistry())
	return opts, tw.Flush
}

func runObsSearch(tb testing.TB, traced bool) time.Duration {
	tb.Helper()
	orig, tests := overlapInputs()
	opts, flush := obsBenchOptions(traced)
	start := time.Now()
	res := repair.Search(orig, cast.CloneUnit(orig), "kernel", tests, opts)
	wall := time.Since(start)
	if !res.Compatible {
		tb.Fatal("overlap subject must repair")
	}
	if err := flush(); err != nil {
		tb.Fatal(err)
	}
	return wall
}

func BenchmarkObsOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		traced := traced
		name := "trace-off"
		if traced {
			name = "trace-on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runObsSearch(b, traced)
			}
		})
	}
}

// TestWriteObsBenchReport regenerates bench_obs.json, the committed
// record of the tracing overhead. Guarded like the other bench writers:
//
//	WRITE_BENCH=1 go test -run TestWriteObsBenchReport -v
func TestWriteObsBenchReport(t *testing.T) {
	if os.Getenv("WRITE_BENCH") == "" {
		t.Skip("set WRITE_BENCH=1 to regenerate bench_obs.json")
	}
	const rounds = 7
	// Interleave the two configurations so ambient machine noise hits
	// both equally, and compare medians.
	var off, on []float64
	for i := 0; i < rounds; i++ {
		off = append(off, float64(runObsSearch(t, false).Microseconds())/1000)
		on = append(on, float64(runObsSearch(t, true).Microseconds())/1000)
	}
	med := func(xs []float64) float64 {
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		return s[len(s)/2]
	}
	offMed, onMed := med(off), med(on)
	overheadPct := 100 * (onMed - offMed) / offMed

	report := struct {
		Note        string    `json:"note"`
		GOMAXPROC   int       `json:"gomaxprocs"`
		Rounds      int       `json:"rounds"`
		OffMS       []float64 `json:"trace_off_ms"`
		OnMS        []float64 `json:"trace_on_ms"`
		OffMedianMS float64   `json:"trace_off_median_ms"`
		OnMedianMS  float64   `json:"trace_on_median_ms"`
		OverheadPct float64   `json:"overhead_pct"`
	}{
		Note: "Figure 2 subject (random-mode repair search, EvalDelay=0, pure " +
			"compute) run with tracing off vs the full hgserve sink (JSONL " +
			"TraceWriter + metrics registry). Medians over interleaved rounds. " +
			"The budget gate is 5% overhead; production jobs additionally block " +
			"on external toolchain invocations, so their relative overhead is " +
			"lower still.",
		GOMAXPROC:   runtime.GOMAXPROCS(0),
		Rounds:      rounds,
		OffMS:       off,
		OnMS:        on,
		OffMedianMS: offMed,
		OnMedianMS:  onMed,
		OverheadPct: overheadPct,
	}
	if overheadPct >= 5 {
		t.Errorf("tracing overhead %.2f%% exceeds the 5%% budget (off=%.1fms on=%.1fms)",
			overheadPct, offMed, onMed)
	}
	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("bench_obs.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Log(fmt.Sprintf("tracing overhead %.2f%% (off=%.1fms, on=%.1fms)", overheadPct, offMed, onMed))
}
