package heterogen_test

import (
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls/sim"
	"github.com/hetero/heterogen/internal/profile"
)

// profileGenerate runs the bitwidth profiler and returns the narrowed
// initial version.
func profileGenerate(u *cast.Unit, kernel string, tests []fuzz.TestCase) (*cast.Unit, error) {
	res, err := profile.Generate(u, kernel, tests)
	if err != nil {
		return nil, err
	}
	return res.Unit, nil
}

// estimateFF returns the flip-flop component of the resource estimate.
func estimateFF(u *cast.Unit) int {
	return sim.Estimate(u).FF
}
