// Command heterogen transpiles a C program to HLS-C: it generates tests,
// profiles bitwidths, and runs the dependence-guided repair search,
// writing the repaired HLS-C source and a report.
//
// Usage:
//
//	heterogen -kernel <top-function> [-host <fn>] [-out out.c] [-quick] [-workers n] [-trace t.jsonl] [-metrics] [-cache-dir d] [-no-cache] [-backend b] [-device d] [-target b:d ...] input.c
//
// -backend/-device (or one fully-spelled -target backend:device) pick
// the HLS toolchain dialect and device profile the repair targets;
// repeating -target with two or more specs turns on multi-target mode,
// where the search returns a latency/resource Pareto set with a
// per-device verdict table (see internal/hls's backend registry for
// the shipped profiles). No target flags keep the classic
// single-default-target behavior.
//
// -workers bounds how many repair candidates are evaluated concurrently;
// the transpilation result is bit-identical for any value (see
// repair.Options.Workers), so the flag only trades machine load for
// wall-clock.
//
// -trace writes a JSONL structured-event trace of the whole run — one
// event per fuzz execution and repair-candidate trial, byte-identical
// for any -workers value. Feed it to hgtrace for Figure 2-style repair
// trajectories, coverage curves, and the virtual-budget breakdown.
// -metrics prints aggregated counters and duration histograms to stderr.
//
// Toolchain verdicts (synthesizability checks, resource estimates,
// differential tests, fuzz campaigns) are memoized in an in-process
// evaluation cache by default; -cache-dir persists it across runs so a
// repeated transpilation is near-instant, and -no-cache disables it.
// The result and trace are byte-identical either way.
//
// Stage calls run inside a failure-containment guard. -stage-deadline
// bounds each call's wall time, -interp-steps bounds interpreter
// executions, -quarantine-dir collects minimized reproducers for
// contained failures, and -chaos/-chaos-seed drive the deterministic
// fault injector for soak testing (see internal/guard, internal/chaos).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/hetero/heterogen"
	"github.com/hetero/heterogen/internal/chaos"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/targetflag"
)

func main() {
	kernel := flag.String("kernel", "", "top/kernel function to transpile (required)")
	host := flag.String("host", "", "optional host entry point for seed capture")
	out := flag.String("out", "", "output file for the HLS-C source (default stdout)")
	report := flag.String("report", "", "write a markdown transpilation report to this file")
	quick := flag.Bool("quick", false, "small fuzzing budget (fast, lower coverage)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"concurrent candidate evaluations in the repair search (results are identical for any value)")
	verbose := flag.Bool("v", false, "print the edit log and diagnostics")
	trace := flag.String("trace", "", "write a JSONL structured-event trace to this file (read it with hgtrace)")
	metrics := flag.Bool("metrics", false, "print aggregated run metrics to stderr")
	cacheDir := flag.String("cache-dir", "", "persist the evaluation cache in this directory (reused across runs)")
	noCache := flag.Bool("no-cache", false, "disable the evaluation cache (results are identical either way)")
	var cf chaos.Flags
	cf.Register(flag.CommandLine)
	var tf targetflag.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if *kernel == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: heterogen -kernel <fn> [-host <fn>] [-out file] [-quick] [-workers n] [-trace t.jsonl] [-metrics] [-cache-dir d] [-no-cache] [-backend b] [-device d] [-target b:d ...] input.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	targets, err := tf.Targets()
	if err != nil {
		fatal(err)
	}

	opts := heterogen.Options{Kernel: *kernel, HostMain: *host, Workers: *workers, Targets: targets}
	if *quick {
		opts.Fuzz.Seed = 1
		opts.Fuzz.MaxExecs = 250
		opts.Fuzz.Plateau = 100
		opts.Fuzz.TypedMutation = true
	}
	var sinks []obs.Observer
	var tw *obs.TraceWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tw = obs.NewTraceWriter(f)
		sinks = append(sinks, tw)
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		sinks = append(sinks, reg)
	}
	opts.Obs = obs.Multi(sinks...)
	if len(targets) > 0 {
		// Stamp the target set on every trace event at this configuration
		// edge; untargeted runs keep byte-identical traces.
		opts.Obs = obs.TagTarget(opts.Obs, hls.TargetSetString(targets))
	}
	opts.Guard = cf.Build(reg, func(msg string) {
		fmt.Fprintln(os.Stderr, "heterogen:", msg)
	})
	if !*noCache {
		cache, err := heterogen.NewCache(heterogen.CacheOptions{Dir: *cacheDir, Metrics: reg})
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := cache.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "heterogen: cache:", err)
			}
		}()
		opts.Cache = cache
	}

	res, err := heterogen.Transpile(string(src), opts)
	if tw != nil {
		if ferr := tw.Flush(); ferr != nil {
			fmt.Fprintln(os.Stderr, "heterogen: trace:", ferr)
		}
	}
	if err != nil {
		fatal(err)
	}
	if res.Campaign.Plateaued {
		fmt.Fprintf(os.Stderr, "heterogen: warning: fuzz campaign plateaued at %d executions before its budget; coverage may be low (%.0f%%)\n",
			res.Campaign.Execs, 100*res.Campaign.Coverage)
	}
	if reg != nil {
		fmt.Fprint(os.Stderr, reg.Text())
	}

	fmt.Fprintf(os.Stderr, "heterogen: %s\n", res.Summary())
	for _, v := range res.PerTarget {
		verdict := "ok"
		switch {
		case !v.Compatible:
			verdict = fmt.Sprintf("incompatible (%d diagnostics)", v.Errors)
		case !v.BehaviorOK:
			verdict = "behavior divergence"
		}
		fmt.Fprintf(os.Stderr, "heterogen: target %s: %s, %.4f ms, %s\n",
			v.Target, verdict, v.LatencyMS, v.Utilization)
	}
	if len(res.PerTarget) > 1 {
		fmt.Fprintf(os.Stderr, "heterogen: pareto set: %d non-dominated version(s)\n", len(res.Pareto))
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "tests: %s\n", res.Campaign.Summary())
		for _, e := range res.Repair.Stats.EditLog {
			fmt.Fprintf(os.Stderr, "edit: %s\n", e)
		}
		for _, d := range res.Repair.Remaining {
			fmt.Fprintf(os.Stderr, "remaining: %s\n", d.Error())
		}
	}
	if !res.Compatible || !res.BehaviorOK {
		fmt.Fprintln(os.Stderr, "heterogen: repair incomplete; emitting best-effort version")
	}
	if *report != "" {
		if err := os.WriteFile(*report, []byte(res.Markdown(*kernel)), 0o644); err != nil {
			fatal(err)
		}
	}

	if *out == "" {
		fmt.Print(res.Source)
		return
	}
	if err := os.WriteFile(*out, []byte(res.Source), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "heterogen:", err)
	os.Exit(1)
}
