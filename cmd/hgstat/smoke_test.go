package main

// The obs-smoke gate (`make obs-smoke`, OBS_SMOKE=1): run a small
// traced hgconform sweep in-process, then drive the real hgstat binary
// over the retained traces and assert the fleet report and the priors
// artifact are byte-identical across two ingestion orders. This is the
// end-to-end determinism contract: trace capture -> warehouse ->
// operator report, order-free.

import (
	"bytes"
	"context"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"github.com/hetero/heterogen"
)

func TestObsSmoke(t *testing.T) {
	if os.Getenv("OBS_SMOKE") == "" {
		t.Skip("set OBS_SMOKE=1 (make obs-smoke) to run")
	}

	// A small sweep with tracing on: enough seeds that several reach the
	// pipeline stage and leave traces.
	sweep := t.TempDir()
	rep, err := heterogen.ConformContext(context.Background(), heterogen.ConformOptions{
		Seed: 1, Count: 6, FuzzExecs: 60, MaxIterations: 16,
		ParityEvery: -1, TraceDir: sweep,
	})
	if err != nil {
		t.Fatal(err)
	}
	traces, err := filepath.Glob(filepath.Join(sweep, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) < 2 {
		t.Fatalf("sweep left %d traces (report: %s), need at least 2", len(traces), rep.Summary())
	}

	// Split the traces across two directories so swapping the directory
	// arguments swaps the ingestion order.
	dirA, dirB := t.TempDir(), t.TempDir()
	for i, src := range traces {
		dst := dirA
		if i%2 == 1 {
			dst = dirB
		}
		b, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, filepath.Base(src)), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	bin := filepath.Join(t.TempDir(), "hgstat")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	run := func(args ...string) []byte {
		t.Helper()
		cmd := exec.Command(bin, args...)
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("hgstat %v: %v", args, err)
		}
		return out
	}

	priors1 := filepath.Join(t.TempDir(), "priors-1.json")
	priors2 := filepath.Join(t.TempDir(), "priors-2.json")
	report1 := run("-priors", priors1, dirA, dirB)
	report2 := run("-priors", priors2, dirB, dirA)
	if !bytes.Equal(report1, report2) {
		t.Fatalf("fleet report depends on ingestion order\n--- A,B\n%s\n--- B,A\n%s", report1, report2)
	}
	p1, err := os.ReadFile(priors1)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := os.ReadFile(priors2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p1, p2) {
		t.Fatalf("priors artifact depends on ingestion order\n--- A,B\n%s\n--- B,A\n%s", p1, p2)
	}
	if !bytes.Contains(report1, []byte("convergence funnel")) {
		t.Errorf("report missing convergence funnel:\n%s", report1)
	}

	// The artifact must survive its own integrity check.
	verify := run("-verify", priors1)
	if !bytes.Contains(verify, []byte("OK")) {
		t.Errorf("verify output: %s", verify)
	}

	// JSON mode is equally order-free.
	j1 := run("-json", dirA, dirB)
	j2 := run("-json", dirB, dirA)
	if !bytes.Equal(j1, j2) {
		t.Fatal("JSON fleet aggregate depends on ingestion order")
	}

	// The span view renders a tree and a critical path for one trace.
	spanOut := run("-span", traces[0])
	if !bytes.HasPrefix(spanOut, []byte("== ")) || !bytes.Contains(spanOut, []byte("critical path:")) {
		t.Errorf("span view:\n%s", spanOut)
	}
}
