// Command hgstat is the fleet-scale trace analytics tool: it ingests
// directories of HeteroGen trace files (hgconform sweeps, hgserve job
// retention dirs, hgtrace captures) into a content-addressed warehouse
// and reports per-stage latency and virtual-cost percentiles, repair
// convergence funnels, cache-hit attribution, and an evidence table of
// (error class × fix template) outcomes.
//
// Usage:
//
//	hgstat [-json] [-priors out.json] dir [dir...]
//	hgstat -span trace.jsonl [-top n]
//	hgstat -verify priors.json
//
// Traces are keyed by content hash, every aggregate is computed on the
// sorted sample multiset, and the report is rendered in canonical
// order — the output is byte-identical for any ingestion order of the
// same trace set, and identical trace files are counted once.
//
// The -priors artifact is a versioned, content-hashed JSON table
// (format "heterogen-priors") that downstream candidate reordering can
// consume; -verify recomputes its hash and fails on any tampering.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/obs/agg"
	"github.com/hetero/heterogen/internal/obs/span"
	"github.com/hetero/heterogen/internal/targetflag"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the fleet aggregate as JSON instead of the text report")
	priorsOut := flag.String("priors", "", "write the (error class x fix template) priors artifact to this path")
	spanTrace := flag.String("span", "", "render one trace file as a span tree with its critical path, then exit")
	top := flag.Int("top", 8, "max child spans shown per level in the -span view")
	verifyPath := flag.String("verify", "", "verify a priors artifact's integrity, then exit")
	var tf targetflag.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()
	filter, err := tf.Targets()
	if err != nil {
		fail(err)
	}

	switch {
	case *verifyPath != "":
		if flag.NArg() != 0 || *spanTrace != "" {
			fail(fmt.Errorf("-verify takes no other inputs"))
		}
		t, err := agg.LoadPriors(*verifyPath)
		if err != nil {
			fail(err)
		}
		fmt.Printf("hgstat: %s: format %s v%d, %d entries from %d traces, hash %s OK\n",
			*verifyPath, t.Format, t.Version, len(t.Entries), t.Traces, short(t.Hash))
		return
	case *spanTrace != "":
		if flag.NArg() != 0 {
			fail(fmt.Errorf("-span takes no directory arguments"))
		}
		if err := renderSpans(*spanTrace, *top); err != nil {
			fail(err)
		}
		return
	}

	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: hgstat [-json] [-priors out.json] dir [dir...] (see -h)")
		os.Exit(2)
	}
	in := agg.NewIngestor()
	total := 0
	for _, dir := range flag.Args() {
		n, err := in.IngestDir(dir)
		if err != nil {
			fail(err)
		}
		total += n
	}
	if total == 0 {
		fail(fmt.Errorf("no trace files (*.jsonl) under %s", strings.Join(flag.Args(), ", ")))
	}
	fleet := in.Snapshot()
	if len(filter) > 0 {
		// The flags narrow the per-target breakdown to stamps containing
		// a requested target; the rest of the report is unaffected.
		wanted := map[string]bool{}
		for _, t := range filter {
			wanted[t.String()] = true
		}
		var kept []agg.TargetStat
		for _, ts := range fleet.Targets {
			for _, part := range strings.Split(ts.Target, "+") {
				if wanted[part] {
					kept = append(kept, ts)
					break
				}
			}
		}
		fleet.Targets = kept
	}

	if *priorsOut != "" {
		if err := fleet.Priors.WriteFile(*priorsOut); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "hgstat: wrote %d priors entries (hash %s) to %s\n",
			len(fleet.Priors.Entries), short(fleet.Priors.Hash), *priorsOut)
	}

	if *jsonOut {
		b, err := json.MarshalIndent(fleet, "", "  ")
		if err != nil {
			fail(err)
		}
		os.Stdout.Write(append(b, '\n'))
		return
	}
	fmt.Print(fleet.Text())
}

// renderSpans prints the span tree of every run in one trace file;
// Run.Text includes the run's critical path.
func renderSpans(path string, top int) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	events, err := obs.ParseTrace(f)
	if err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	runs := span.Build(events)
	if len(runs) == 0 {
		return fmt.Errorf("%s: no runs in trace", path)
	}
	// A sidecar written by hgserve retention enriches the tree with the
	// job envelope and cache attribution when present.
	if meta := sidecarFor(path); meta != nil && len(runs) == 1 {
		span.Attach(runs[0], meta)
	}
	for i, r := range runs {
		if i > 0 {
			fmt.Println()
		}
		fmt.Print(r.Text(top))
	}
	return nil
}

// sidecarFor loads <base>.meta.json next to a trace, if any.
func sidecarFor(tracePath string) *span.RunMeta {
	base := strings.TrimSuffix(tracePath, filepath.Ext(tracePath))
	b, err := os.ReadFile(base + ".meta.json")
	if err != nil {
		return nil
	}
	var m span.RunMeta
	if json.Unmarshal(b, &m) != nil {
		return nil
	}
	return &m
}

func short(hash string) string {
	if len(hash) > 12 {
		return hash[:12]
	}
	return hash
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "hgstat:", err)
	os.Exit(1)
}
