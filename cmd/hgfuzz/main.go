// Command hgfuzz runs HeteroGen's coverage-guided test generator against
// a kernel function and reports the campaign: tests retained, branch
// coverage, and a sample of the generated inputs.
//
// Usage:
//
//	hgfuzz -kernel <fn> [-host <fn>] [-execs N] file.c
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hetero/heterogen"
)

func main() {
	kernel := flag.String("kernel", "", "kernel function (required)")
	host := flag.String("host", "", "host entry point for seed capture")
	execs := flag.Int("execs", 2000, "maximum kernel executions")
	seed := flag.Int64("seed", 1, "mutation RNG seed")
	flag.Parse()
	if *kernel == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hgfuzz -kernel <fn> [-execs N] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgfuzz:", err)
		os.Exit(1)
	}
	opts := heterogen.FuzzOptions{
		Seed:          *seed,
		MaxExecs:      *execs,
		Plateau:       *execs / 5,
		TypedMutation: true,
		HostMain:      *host,
	}
	camp, err := heterogen.GenerateTests(string(src), *kernel, opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgfuzz:", err)
		os.Exit(1)
	}
	fmt.Printf("campaign: %s\n", camp.Summary())
	fmt.Printf("executions: %d, retained corpus: %d, outcomes: %d/%d\n",
		camp.Execs, len(camp.Tests), camp.CoveredOutcomes, camp.TotalOutcomes)
	if camp.SeededFromHost {
		fmt.Println("seeded from host-program kernel-entry capture")
	}
	max := len(camp.Tests)
	if max > 8 {
		max = 8
	}
	for i := 0; i < max; i++ {
		fmt.Printf("test[%d] = %s\n", i, camp.Tests[i])
	}
}
