// Command hgfuzz runs HeteroGen's coverage-guided test generator against
// a kernel function and reports the campaign: tests retained, branch
// coverage, and a sample of the generated inputs.
//
// Usage:
//
//	hgfuzz -kernel <fn> [-host <fn>] [-execs N] [-trace t.jsonl] [-metrics] [-cache-dir d] [-no-cache] file.c
//
// -trace writes one JSONL event per execution (read it with hgtrace for
// the coverage-over-iterations curve); -metrics prints aggregated
// counters to stderr. A campaign that plateaus — no new coverage for the
// plateau window before the execution budget is spent — is flagged in
// the output.
//
// Whole campaigns are memoized in the evaluation cache: with -cache-dir
// a repeated run over the same kernel, seed, and budget replays the
// recorded campaign (identical tests, coverage, and trace) instead of
// re-executing; -no-cache disables the cache.
//
// Executions run inside a failure-containment guard: -interp-steps
// bounds each execution's step count, -stage-deadline its wall time,
// -quarantine-dir collects minimized reproducers for contained
// failures, and -chaos/-chaos-seed drive the deterministic fault
// injector (see internal/guard, internal/chaos).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hetero/heterogen"
	"github.com/hetero/heterogen/internal/chaos"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/targetflag"
)

func main() {
	kernel := flag.String("kernel", "", "kernel function (required)")
	host := flag.String("host", "", "host entry point for seed capture")
	execs := flag.Int("execs", 2000, "maximum kernel executions")
	seed := flag.Int64("seed", 1, "mutation RNG seed")
	trace := flag.String("trace", "", "write a JSONL structured-event trace to this file (read it with hgtrace)")
	metrics := flag.Bool("metrics", false, "print aggregated run metrics to stderr")
	cacheDir := flag.String("cache-dir", "", "persist the evaluation cache in this directory (reused across runs)")
	noCache := flag.Bool("no-cache", false, "disable the evaluation cache (results are identical either way)")
	var cf chaos.Flags
	cf.Register(flag.CommandLine)
	var tf targetflag.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()
	if *kernel == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hgfuzz -kernel <fn> [-execs N] [-trace t.jsonl] [-metrics] [-cache-dir d] [-no-cache] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgfuzz:", err)
		os.Exit(1)
	}
	// Test generation is target-independent; the flags are accepted for
	// a uniform CLI surface, validated, and stamped on the trace.
	targets, err := tf.Targets()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgfuzz:", err)
		os.Exit(1)
	}
	var sinks []obs.Observer
	var tw *obs.TraceWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hgfuzz:", err)
			os.Exit(1)
		}
		defer f.Close()
		tw = obs.NewTraceWriter(f)
		sinks = append(sinks, tw)
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		sinks = append(sinks, reg)
	}
	opts := heterogen.FuzzOptions{
		Seed:          *seed,
		MaxExecs:      *execs,
		Plateau:       *execs / 5,
		TypedMutation: true,
		HostMain:      *host,
		Obs:           obs.Multi(sinks...),
	}
	if len(targets) > 0 {
		opts.Obs = obs.TagTarget(opts.Obs, hls.TargetSetString(targets))
	}
	opts.Guard = cf.Build(reg, func(msg string) {
		fmt.Fprintln(os.Stderr, "hgfuzz:", msg)
	})
	if s := opts.Guard.InterpSteps(); s != 0 {
		opts.MaxStepsPerExec = s
	}
	if !*noCache {
		cache, err := heterogen.NewCache(heterogen.CacheOptions{Dir: *cacheDir, Metrics: reg})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hgfuzz:", err)
			os.Exit(1)
		}
		defer func() {
			if err := cache.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hgfuzz: cache:", err)
			}
		}()
		opts.Cache = cache
	}
	camp, err := heterogen.GenerateTests(string(src), *kernel, opts)
	if tw != nil {
		if ferr := tw.Flush(); ferr != nil {
			fmt.Fprintln(os.Stderr, "hgfuzz: trace:", ferr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgfuzz:", err)
		os.Exit(1)
	}
	fmt.Printf("campaign: %s\n", camp.Summary())
	fmt.Printf("executions: %d, retained corpus: %d, outcomes: %d/%d\n",
		camp.Execs, len(camp.Tests), camp.CoveredOutcomes, camp.TotalOutcomes)
	if camp.Plateaued {
		fmt.Printf("warning: campaign plateaued — no new coverage for %d consecutive executions, stopped at %d/%d execs\n",
			opts.Plateau, camp.Execs, opts.MaxExecs)
	}
	if camp.SeededFromHost {
		fmt.Println("seeded from host-program kernel-entry capture")
	}
	max := len(camp.Tests)
	if max > 8 {
		max = 8
	}
	for i := 0; i < max; i++ {
		fmt.Printf("test[%d] = %s\n", i, camp.Tests[i])
	}
	if reg != nil {
		fmt.Fprint(os.Stderr, reg.Text())
	}
}
