// Command hgeval regenerates the paper's evaluation: Table 3 (conversion
// effectiveness), Table 4 (test generation), Table 5 (manual /
// HeteroRefactor comparison), Figure 9 (ablations), and Figure 3 (the
// forum study), plus the §6 headline summary.
//
// Usage:
//
//	hgeval [-quick] [-workers n] [-subject P3] [-table3] [-table4] [-table5] [-fig9] [-fig3] [-summary] [-trace t.jsonl] [-metrics] [-cache-dir d] [-no-cache]
//
// With no selection flags, everything runs.
//
// Toolchain verdicts are memoized in an evaluation cache shared across
// subjects; -cache-dir persists it so a repeated sweep over P1-P10 is
// near-instant, and -no-cache disables it. All reported numbers are
// bit-identical either way.
//
// -trace writes a JSONL structured-event trace of every subject's
// fuzzing campaign and repair search, each event tagged with its subject
// id (read it with hgtrace). Single-subject traces (-subject) are
// byte-deterministic; full runs interleave subjects in scheduler order.
// -metrics prints aggregated counters and histograms to stderr.
//
// Stage calls run inside a failure-containment guard; -stage-deadline,
// -interp-steps, -quarantine-dir, and -chaos/-chaos-seed configure the
// budgets and the deterministic fault injector (see internal/guard).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"github.com/hetero/heterogen/internal/chaos"
	"github.com/hetero/heterogen/internal/eval"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/repair"
	"github.com/hetero/heterogen/internal/subjects"
	"github.com/hetero/heterogen/internal/targetflag"
)

func main() {
	quick := flag.Bool("quick", false, "CI-sized budgets")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0),
		"concurrent candidate evaluations per repair search (all numbers are identical for any value)")
	subject := flag.String("subject", "", "run a single subject (e.g. P3)")
	t3 := flag.Bool("table3", false, "Table 3: conversion effectiveness")
	t4 := flag.Bool("table4", false, "Table 4: test generation")
	t5 := flag.Bool("table5", false, "Table 5: manual/HR comparison")
	f9 := flag.Bool("fig9", false, "Figure 9: ablation study")
	f3 := flag.Bool("fig3", false, "Figure 3: forum study")
	summary := flag.Bool("summary", false, "§6 headline summary")
	deps := flag.Bool("deps", false, "print the Table 2 template catalog with its Figure 7c dependences")
	trace := flag.String("trace", "", "write a JSONL structured-event trace to this file (read it with hgtrace)")
	metrics := flag.Bool("metrics", false, "print aggregated run metrics to stderr")
	cacheDir := flag.String("cache-dir", "", "persist the evaluation cache in this directory (reused across runs)")
	noCache := flag.Bool("no-cache", false, "disable the evaluation cache (all numbers are identical either way)")
	var cf chaos.Flags
	cf.Register(flag.CommandLine)
	var tf targetflag.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if *deps {
		fmt.Print(repair.DescribeRegistry())
		return
	}

	targets, err := tf.Targets()
	if err != nil {
		fatal(err)
	}

	cfg := eval.DefaultConfig()
	if *quick {
		cfg = eval.QuickConfig()
	}
	cfg.Workers = *workers
	cfg.Targets = targets

	var sinks []obs.Observer
	var tw *obs.TraceWriter
	if *trace != "" {
		f, err := os.Create(*trace)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		tw = obs.NewTraceWriter(f)
		defer func() {
			if err := tw.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "hgeval: trace:", err)
			}
		}()
		sinks = append(sinks, tw)
	}
	var reg *obs.Registry
	if *metrics {
		reg = obs.NewRegistry()
		defer func() { fmt.Fprint(os.Stderr, reg.Text()) }()
	}
	if reg != nil {
		sinks = append(sinks, reg)
	}
	cfg.Obs = obs.Multi(sinks...)
	if len(targets) > 0 {
		cfg.Obs = obs.TagTarget(cfg.Obs, hls.TargetSetString(targets))
	}
	cfg.Guard = cf.Build(reg, func(msg string) {
		fmt.Fprintln(os.Stderr, "hgeval:", msg)
	})
	if !*noCache {
		cache, err := evalcache.New(evalcache.Options{Dir: *cacheDir, Metrics: reg})
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := cache.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "hgeval: cache:", err)
			}
		}()
		cfg.Cache = cache
	}
	all := !*t3 && !*t4 && !*t5 && !*f9 && !*f3 && !*summary

	if *f3 || all {
		fmt.Print(eval.FormatFigure3(eval.Figure3(cfg)))
		fmt.Println()
	}

	var runs []eval.SubjectRun
	needRuns := *t3 || *t4 || *t5 || *summary || all
	if needRuns {
		if *subject != "" {
			s, err := subjects.ByID(*subject)
			if err != nil {
				fatal(err)
			}
			r, err := eval.RunSubject(s, cfg)
			if err != nil {
				fatal(err)
			}
			runs = []eval.SubjectRun{r}
		} else {
			var err error
			runs, err = eval.RunAll(cfg)
			if err != nil {
				fatal(err)
			}
		}
	}
	if *t3 || all {
		fmt.Print(eval.FormatTable3(runs))
		fmt.Println()
	}
	if *t4 || all {
		fmt.Print(eval.FormatTable4(runs))
		fmt.Println()
	}
	if *t5 || all {
		fmt.Print(eval.FormatTable5(runs))
		fmt.Println()
	}
	if *summary || all {
		printSummary(runs)
		fmt.Println()
	}
	if *f9 || all {
		var abls []eval.AblationRun
		if *subject != "" {
			s, err := subjects.ByID(*subject)
			if err != nil {
				fatal(err)
			}
			a, err := eval.RunAblation(s, cfg)
			if err != nil {
				fatal(err)
			}
			abls = []eval.AblationRun{a}
		} else {
			var err error
			abls, err = eval.RunAllAblations(cfg)
			if err != nil {
				fatal(err)
			}
		}
		fmt.Print(eval.FormatFigure9(abls))
	}
}

func printSummary(runs []eval.SubjectRun) {
	compat, improved := 0, 0
	var deltaSum int
	var speedup float64
	var covSum float64
	nPerf := 0
	for _, r := range runs {
		if r.Compatible && r.BehaviorOK {
			compat++
		}
		if r.Improved {
			improved++
		}
		deltaSum += r.DeltaLOC
		covSum += r.Coverage
		if r.RuntimeHGMS > 0 && r.RuntimeOriginMS > 0 {
			speedup += r.RuntimeOriginMS / r.RuntimeHGMS
			nPerf++
		}
	}
	n := len(runs)
	if n == 0 {
		return
	}
	fmt.Printf("§6 headline: %d/%d HLS-compatible, %d/%d faster than the original;\n",
		compat, n, improved, n)
	if nPerf > 0 {
		fmt.Printf("mean simulated speedup %.2fx; mean ΔLOC %d; mean branch coverage %.0f%%\n",
			speedup/float64(nPerf), deltaSum/n, 100*covSum/float64(n))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgeval:", err)
	os.Exit(1)
}
