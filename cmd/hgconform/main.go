// Command hgconform runs the seeded program-generation conformance
// harness: it generates a batch of random C kernels with known planted
// HLS violations (internal/progen) and asserts, per program, that the
// synthesizability checker flags every planted violation class, the
// repair search converges, the repaired HLS-C differentially matches
// the CPU interpreter, and cache/trace parity invariants hold.
//
// Usage:
//
//	hgconform [-seed s] [-n count] [-check-only] [-parity-every k]
//	          [-fuzz-execs n] [-max-iterations n] [-out dir]
//	          [-trace-dir d] [-v]
//
// The run is fully deterministic: the same flags produce a
// byte-identical summary line. Any failed assertion is delta-debugged
// to a minimal reproducer and, with -out, written as
// `seed<N>_<stage>.c` for committing under testdata/conform/. Exit
// status is 0 on a clean batch, 1 on conformance failures, 2 on usage
// errors.
//
// Pipeline stages run inside a failure-containment guard;
// -stage-deadline, -interp-steps, -quarantine-dir, and
// -chaos/-chaos-seed configure the budgets and the deterministic fault
// injector (see internal/guard).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"

	"github.com/hetero/heterogen"
	"github.com/hetero/heterogen/internal/chaos"
	"github.com/hetero/heterogen/internal/targetflag"
)

func main() {
	seed := flag.Int64("seed", 1, "first generator seed")
	n := flag.Int("n", 100, "number of consecutive seeds to check")
	checkOnly := flag.Bool("check-only", false, "stop after the checker-oracle stage (no repair, difftest, or parity)")
	maxViolations := flag.Int("max-violations", 0, "max planted violation kinds per program (0 = generator default)")
	parityEvery := flag.Int("parity-every", 10, "run the cache/trace parity stage on every k-th seed (0 = default, <0 disables)")
	fuzzExecs := flag.Int("fuzz-execs", 0, "fuzzing budget per program (0 = harness default)")
	maxIter := flag.Int("max-iterations", 0, "repair iteration budget per program (0 = harness default)")
	out := flag.String("out", "", "write minimized reproducers for failures into this directory")
	traceDir := flag.String("trace-dir", "", "retain each seed's pipeline trace as seed-<n>.jsonl in this directory (hgstat ingests it)")
	verbose := flag.Bool("v", false, "print each failure's minimized source")
	var cf chaos.Flags
	cf.Register(flag.CommandLine)
	var tf targetflag.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hgconform [-seed s] [-n count] [-check-only] [-parity-every k] [-fuzz-execs n] [-max-iterations n] [-out dir] [-v]")
		os.Exit(2)
	}
	targets, err := tf.Targets()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgconform:", err)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	rep, err := heterogen.ConformContext(ctx, heterogen.ConformOptions{
		Seed:          *seed,
		Count:         *n,
		CheckOnly:     *checkOnly,
		MaxViolations: *maxViolations,
		ParityEvery:   *parityEvery,
		FuzzExecs:     *fuzzExecs,
		MaxIterations: *maxIter,
		OutDir:        *out,
		TraceDir:      *traceDir,
		Targets:       targets,
		Guard: cf.Build(nil, func(msg string) {
			fmt.Fprintln(os.Stderr, "hgconform:", msg)
		}),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgconform:", err)
	}
	fmt.Println(rep.Summary())
	for _, f := range rep.Failures {
		fmt.Printf("FAIL seed=%d stage=%s", f.Seed, f.Stage)
		if f.Kind != "" {
			fmt.Printf(" kind=%s subject=%s", f.Kind, f.Subject)
		}
		fmt.Printf(" nodes=%d/%d: %s\n", f.ReducedNodes, f.OriginalNodes, f.Detail)
		if f.Path != "" {
			fmt.Printf("  reproducer: %s\n", f.Path)
		}
		if *verbose && f.Source != "" {
			fmt.Println("  minimized source:")
			fmt.Println(indent(f.Source))
		}
	}
	if err != nil || !rep.OK() {
		os.Exit(1)
	}
}

func indent(s string) string {
	out := "    "
	for _, r := range s {
		out += string(r)
		if r == '\n' {
			out += "    "
		}
	}
	return out
}
