// Command hgtrace renders a JSONL structured-event trace (written by
// heterogen/hgfuzz/hgeval with -trace) as the paper's run artifacts: the
// Figure 2-style repair trajectory, the coverage-over-iterations curve,
// a fix-pattern frequency table, and the virtual-budget breakdown by
// pipeline phase and cost component.
//
// Usage:
//
//	hgtrace [-check] [-json] [-cache-dir d] [-backend b] [-device d] [-target b:d ...] [trace.jsonl]
//
// -backend/-device/-target restrict the report to events stamped with
// a matching HLS target (traces from targeted runs carry the target
// set on every event; see internal/obs.TagTarget). Events from
// untargeted runs carry no stamp and are dropped by any filter. With
// no target flags every event is reported, as before.
//
// With no file argument the trace is read from stdin. -check
// cross-validates the event stream against the run's final summary
// events (candidate counts, accepted-edit chain, virtual-time totals)
// and exits non-zero on any mismatch — the trace must reproduce the run
// exactly. -json dumps the structured report instead of text.
//
// -cache-dir appends an evaluation-cache section summarizing the given
// persistent cache directory: entries and bytes per stage, plus the
// cumulative hit/miss statistics recorded across runs. Cache activity
// lives in this on-disk summary and in -metrics counters, never in the
// trace itself — traces stay byte-identical whether or not a cache was
// used. With -cache-dir and no trace argument, hgtrace skips the trace
// entirely and reports only the cache.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/targetflag"
)

func main() {
	check := flag.Bool("check", false, "cross-validate events against the run's summary; exit 1 on mismatch")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	cacheDir := flag.String("cache-dir", "", "summarize this persistent evaluation-cache directory alongside the report")
	var tf targetflag.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()

	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: hgtrace [-check] [-json] [-cache-dir d] [-backend b] [-device d] [-target b:d ...] [trace.jsonl]")
		os.Exit(2)
	}
	filter, err := tf.Targets()
	if err != nil {
		fatal(err)
	}

	var cacheSum *evalcache.DirSummary
	if *cacheDir != "" {
		sum, err := evalcache.SummarizeDir(*cacheDir)
		if err != nil {
			fatal(err)
		}
		cacheSum = &sum
	}

	// -cache-dir with no trace argument: report only the cache rather
	// than blocking on stdin.
	if cacheSum != nil && flag.NArg() == 0 {
		emit(nil, cacheSum, *asJSON)
		return
	}

	var r io.Reader = os.Stdin
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	events, err := obs.ParseTrace(r)
	if err != nil {
		fatal(err)
	}
	if len(filter) > 0 {
		events = filterByTarget(events, filter)
		if len(events) == 0 {
			fatal(fmt.Errorf("no events match the target filter (targeted traces stamp every event; untargeted ones carry no stamp)"))
		}
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("trace is empty"))
	}
	rep := obs.BuildReport(events)
	emit(rep, cacheSum, *asJSON)

	if *check {
		if problems := rep.Check(); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "hgtrace: check:", p)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "hgtrace: check: trace is consistent with the run summary")
	}
}

// emit renders the trace report and/or the cache summary. In JSON mode
// the bare report keeps its historical shape; the cache, when requested,
// rides alongside it in a wrapper object.
func emit(rep *obs.Report, cache *evalcache.DirSummary, asJSON bool) {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		var v any
		switch {
		case rep != nil && cache != nil:
			v = struct {
				Report *obs.Report           `json:"report"`
				Cache  *evalcache.DirSummary `json:"cache"`
			}{rep, cache}
		case cache != nil:
			v = cache
		default:
			v = rep
		}
		if err := enc.Encode(v); err != nil {
			fatal(err)
		}
		return
	}
	if rep != nil {
		fmt.Print(rep.Text())
	}
	if cache != nil {
		if rep != nil {
			fmt.Println()
		}
		fmt.Print(cache.Text())
	}
}

// filterByTarget keeps events stamped with any of the wanted targets.
// A targeted run stamps its full "+"-joined set string on every event,
// so an event matches when any component of its stamp is wanted.
func filterByTarget(events []obs.Event, want []hls.Target) []obs.Event {
	wanted := map[string]bool{}
	for _, t := range want {
		wanted[t.String()] = true
	}
	var out []obs.Event
	for _, e := range events {
		for _, part := range strings.Split(e.Target, "+") {
			if wanted[part] {
				out = append(out, e)
				break
			}
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgtrace:", err)
	os.Exit(1)
}
