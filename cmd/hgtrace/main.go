// Command hgtrace renders a JSONL structured-event trace (written by
// heterogen/hgfuzz/hgeval with -trace) as the paper's run artifacts: the
// Figure 2-style repair trajectory, the coverage-over-iterations curve,
// a fix-pattern frequency table, and the virtual-budget breakdown by
// pipeline phase and cost component.
//
// Usage:
//
//	hgtrace [-check] [-json] [trace.jsonl]
//
// With no file argument the trace is read from stdin. -check
// cross-validates the event stream against the run's final summary
// events (candidate counts, accepted-edit chain, virtual-time totals)
// and exits non-zero on any mismatch — the trace must reproduce the run
// exactly. -json dumps the structured report instead of text.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/hetero/heterogen/internal/obs"
)

func main() {
	check := flag.Bool("check", false, "cross-validate events against the run's summary; exit 1 on mismatch")
	asJSON := flag.Bool("json", false, "emit the report as JSON instead of text")
	flag.Parse()

	var r io.Reader = os.Stdin
	if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: hgtrace [-check] [-json] [trace.jsonl]")
		os.Exit(2)
	}
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}

	events, err := obs.ParseTrace(r)
	if err != nil {
		fatal(err)
	}
	if len(events) == 0 {
		fatal(fmt.Errorf("trace is empty"))
	}
	rep := obs.BuildReport(events)

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	} else {
		fmt.Print(rep.Text())
	}

	if *check {
		if problems := rep.Check(); len(problems) > 0 {
			for _, p := range problems {
				fmt.Fprintln(os.Stderr, "hgtrace: check:", p)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "hgtrace: check: trace is consistent with the run summary")
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgtrace:", err)
	os.Exit(1)
}
