// Command hgserve is the HeteroGen transpilation service: a
// long-running HTTP+JSON daemon that runs transpile / check / repair /
// fuzz jobs on a bounded worker pool with admission control, per-job
// budgets, streamed observability events, and cooperative cancellation.
//
// Usage:
//
//	hgserve [-addr host:port] [-pool n] [-queue n] [-per-client n]
//	        [-state-dir d] [-drain-timeout d]
//	        [-cache-dir d] [-cache-shards n] [-cache-capacity n] [-no-cache]
//	        [-cache-compact-bytes n] [-cache-compact-garbage f]
//	        [-quarantine-dir d] [-chaos rate] [-chaos-seed n]
//	        [-max-stage-deadline d] [-max-interp-steps n]
//	        [-max-fuzz-execs n] [-max-iterations n] [-max-workers n]
//	        [-trace-dir d] [-log json|text|off] [-queue-wait-slo d]
//	        [-pprof-addr host:port]
//
// The HTTP API:
//
//	POST   /v1/jobs             submit {"kind","source","kernel",...}
//	GET    /v1/jobs/{id}        status + result once terminal
//	GET    /v1/jobs/{id}/events NDJSON stream of the job's trace events
//	DELETE /v1/jobs/{id}        cancel; the job keeps its partial result
//	GET    /metrics             counters + histograms (?format=text or
//	                            ?format=prometheus for scrape exposition)
//	GET    /healthz             liveness and pool gauges
//	GET    /readyz              readiness; 503 while replaying the
//	                            journal, draining, or closed
//
// See docs/OPERATIONS.md for the full operator's manual: budget
// clamps, capacity planning, the metrics catalog, and quarantine
// triage.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/hetero/heterogen/internal/chaos"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/serve"
	"github.com/hetero/heterogen/internal/targetflag"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	pool := flag.Int("pool", 0, "concurrently running jobs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "admission queue depth; a full queue answers 429 (0 = 4*pool)")
	perClient := flag.Int("per-client", 8, "max queued+running jobs per client, by X-Client-ID header or remote host (negative disables)")
	stateDir := flag.String("state-dir", "", "durable state directory: write-ahead job journal + repair checkpoints, replayed on restart (empty disables durability)")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "on SIGTERM/SIGINT, wait this long for in-flight jobs before checkpoint-stopping them")
	cacheDir := flag.String("cache-dir", "", "persist the shared evaluation cache in this directory (reused across restarts)")
	cacheShards := flag.Int("cache-shards", 8, "evaluation-cache shard count (concurrent jobs contend per shard, not globally)")
	cacheCapacity := flag.Int("cache-capacity", 0, "in-memory cache entry bound across all shards (0 = package default)")
	cacheCompactBytes := flag.Int64("cache-compact-bytes", 0, "compact the persistent cache on open once its files reach this size (0 disables compaction)")
	cacheCompactGarbage := flag.Float64("cache-compact-garbage", 0.5, "garbage fraction that must also be exceeded before an on-open compaction runs")
	noCache := flag.Bool("no-cache", false, "disable the shared evaluation cache")
	quarantineDir := flag.String("quarantine-dir", "", "directory for minimized reproducers of contained stage failures (empty disables)")
	chaosRate := flag.Float64("chaos", 0, "deterministic fault-injection rate in [0,1] (0 disables; testing only)")
	chaosSeed := flag.Int64("chaos-seed", 1, "seed for the chaos injection schedule")
	maxStageDeadline := flag.Duration("max-stage-deadline", 60*time.Second, "ceiling on a job's per-stage deadline budget")
	maxInterpSteps := flag.Int64("max-interp-steps", 50_000_000, "ceiling on a job's interpreter step budget")
	maxFuzzExecs := flag.Int("max-fuzz-execs", 20_000, "ceiling on a job's fuzz execution budget")
	maxIterations := flag.Int("max-iterations", 256, "ceiling on a job's repair iteration budget")
	maxWorkers := flag.Int("max-workers", 0, "ceiling on a job's internal parallelism (0 = GOMAXPROCS)")
	traceDir := flag.String("trace-dir", "", "retain each terminal job's trace as <id>.jsonl + <id>.meta.json here (the directory hgstat ingests; empty disables)")
	logMode := flag.String("log", "off", "structured job log on stderr: json | text | off")
	queueWaitSLO := flag.Duration("queue-wait-slo", 0, "queue-wait objective; longer waits count into serve.slo.queue_wait_violations (0 disables)")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this address (separate listener; empty disables)")
	var tf targetflag.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: hgserve [flags] (see -h)")
		os.Exit(2)
	}
	// The target flags set the daemon-wide default target set applied to
	// jobs that omit the request's targets field.
	defaultTargets, err := tf.Targets()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgserve:", err)
		os.Exit(2)
	}

	warn := func(msg string) { fmt.Fprintln(os.Stderr, "hgserve:", msg) }
	metrics := obs.NewRegistry()

	var logger *slog.Logger
	switch *logMode {
	case "json":
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	case "text":
		logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	case "off":
	default:
		fmt.Fprintf(os.Stderr, "hgserve: -log %q (want json, text, or off)\n", *logMode)
		os.Exit(2)
	}

	if *traceDir != "" {
		if err := os.MkdirAll(*traceDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, "hgserve:", err)
			os.Exit(1)
		}
	}

	if *pprofAddr != "" {
		// pprof rides a dedicated listener so profiling exposure is an
		// explicit operator decision, never part of the public API surface.
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hgserve: pprof:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "hgserve: pprof on http://%s/debug/pprof/\n", pln.Addr())
		go func() {
			// DefaultServeMux carries the net/http/pprof registrations.
			if perr := http.Serve(pln, nil); perr != nil {
				fmt.Fprintln(os.Stderr, "hgserve: pprof:", perr)
			}
		}()
	}

	var cache *evalcache.Cache
	if !*noCache {
		var err error
		cache, err = evalcache.New(evalcache.Options{
			Dir:             *cacheDir,
			Shards:          *cacheShards,
			Capacity:        *cacheCapacity,
			CompactMinBytes: *cacheCompactBytes,
			CompactGarbage:  *cacheCompactGarbage,
			Metrics:         metrics,
			Warn:            warn,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hgserve:", err)
			os.Exit(1)
		}
	}

	var injector guard.Injector
	if *chaosRate > 0 {
		injector = chaos.New(chaos.Options{Seed: *chaosSeed, Rate: *chaosRate})
	}

	srv := serve.New(serve.Options{
		Pool:       *pool,
		QueueDepth: *queue,
		PerClient:  *perClient,
		StateDir:   *stateDir,
		Limits: serve.Budget{
			StageDeadlineMS: maxStageDeadline.Milliseconds(),
			InterpSteps:     *maxInterpSteps,
			FuzzExecs:       *maxFuzzExecs,
			MaxIterations:   *maxIterations,
			Workers:         *maxWorkers,
		},
		DefaultTargets: defaultTargets,
		Cache:          cache,
		Metrics:        metrics,
		QuarantineDir:  *quarantineDir,
		Injector:       injector,
		Warn:           warn,
		Logger:         logger,
		TraceDir:       *traceDir,
		QueueWaitSLO:   *queueWaitSLO,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hgserve:", err)
		os.Exit(1)
	}
	// The resolved address on stdout is the startup contract scripts
	// (and make serve-smoke) parse; keep the format stable.
	fmt.Printf("hgserve: listening on http://%s\n", ln.Addr())

	hs := newHTTPServer(srv.Handler())
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		fmt.Fprintln(os.Stderr, "hgserve:", err)
		os.Exit(1)
	case <-sig:
	}

	// Graceful drain: stop admission, let in-flight jobs finish (or
	// checkpoint-stop them at the deadline), then shut the listener down
	// and flush everything durable. The order matters — Drain quiesces
	// the pool and closes the journal before the HTTP server stops
	// answering status polls.
	fmt.Fprintln(os.Stderr, "hgserve: draining")
	if stopped := srv.Drain(*drainTimeout); stopped > 0 {
		fmt.Fprintf(os.Stderr, "hgserve: checkpoint-stopped %d job(s) at drain deadline\n", stopped)
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutCtx)
	srv.Close()
	if cache != nil {
		if cerr := cache.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "hgserve: cache:", cerr)
		}
	}
	fmt.Fprint(os.Stderr, metrics.Text())
}
