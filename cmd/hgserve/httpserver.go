package main

import (
	"net/http"
	"time"
)

// HTTP server hardening knobs. ReadHeaderTimeout bounds how long a
// connection may dribble request headers (slowloris); IdleTimeout
// reaps keep-alive connections between requests. WriteTimeout must
// stay 0: /v1/jobs/{id}/events is a long-lived NDJSON stream that a
// write deadline would sever mid-job.
const (
	readHeaderTimeout = 10 * time.Second
	idleTimeout       = 120 * time.Second
)

// newHTTPServer wraps the service handler in an http.Server with the
// hardening timeouts applied.
func newHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: readHeaderTimeout,
		IdleTimeout:       idleTimeout,
	}
}
