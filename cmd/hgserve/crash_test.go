package main

// The crash-smoke gate (`make crash-smoke`, CRASH_SMOKE=1): a
// kill matrix over the real binary. Each scenario arms one injected
// crash point via the HETEROGEN_CRASHPOINT env var, lets the daemon
// SIGKILL itself mid-write, restarts it on the same -state-dir, and
// asserts the recovery invariants:
//
//   - the journal always reloads (torn tails are healed, never fatal);
//   - every job a client saw a 202 for is findable after restart;
//   - an interrupted repair job resumes to a result AND event trace
//     byte-identical to an undisturbed control run;
//   - terminal jobs are re-reported with their original payload;
//   - SIGTERM drains and exits 0.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/crashpoint"
)

// crashJobBody is the fixed repair job every scenario runs: the long
// double in smokeSource forces a rewrite search, which is what
// exercises checkpoint appends and eval-cache writes.
var crashJobBody = fmt.Sprintf(
	`{"kind":"repair","kernel":"top","source":%q,"budget":{"max_iterations":32,"workers":1}}`,
	smokeSource)

// daemon is one hgserve process under test.
type daemon struct {
	cmd  *exec.Cmd
	base string
}

// startDaemon launches the built binary on a free port with durability
// on. arm, when non-empty, is a HETEROGEN_CRASHPOINT spec.
func startDaemon(t *testing.T, bin, stateDir, cacheDir, arm string) *daemon {
	t.Helper()
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0",
		"-state-dir", stateDir, "-cache-dir", cacheDir,
		"-drain-timeout", "2s", "-log", "text")
	cmd.Env = os.Environ()
	if arm != "" {
		cmd.Env = append(cmd.Env, crashpoint.EnvVar+"="+arm)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("reading startup line: %v", err)
	}
	base, ok := strings.CutPrefix(strings.TrimSpace(line), "hgserve: listening on ")
	if !ok {
		t.Fatalf("unexpected startup line %q", line)
	}
	go io.Copy(io.Discard, stdout)
	return &daemon{cmd: cmd, base: base}
}

// waitDeath waits for the daemon process to exit and reports whether
// it died by SIGKILL (the armed crash point firing).
func (d *daemon) waitDeath(t *testing.T, within time.Duration) bool {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
		return d.cmd.ProcessState.ExitCode() == -1
	case <-time.After(within):
		d.cmd.Process.Kill()
		<-done
		t.Fatalf("daemon still alive after %v; armed crash point never fired", within)
		return false
	}
}

// sigterm drains the daemon and asserts the documented exit code 0.
func (d *daemon) sigterm(t *testing.T) {
	t.Helper()
	_ = d.cmd.Process.Signal(os.Interrupt)
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case <-done:
		if code := d.cmd.ProcessState.ExitCode(); code != 0 {
			t.Errorf("drain exited %d, want 0", code)
		}
	case <-time.After(30 * time.Second):
		d.cmd.Process.Kill()
		<-done
		t.Error("daemon did not drain within 30s")
	}
}

type crashStatus struct {
	ID      string          `json:"id"`
	State   string          `json:"state"`
	Resumed bool            `json:"resumed"`
	Result  json.RawMessage `json:"result"`
}

// submitJob posts the fixed repair job; losing the connection mid-POST
// (an armed journal-append kill) returns ok=false.
func submitJob(t *testing.T, base string) (crashStatus, bool) {
	t.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(crashJobBody))
	if err != nil {
		return crashStatus{}, false
	}
	defer resp.Body.Close()
	var st crashStatus
	if resp.StatusCode != http.StatusAccepted || json.NewDecoder(resp.Body).Decode(&st) != nil {
		return crashStatus{}, false
	}
	return st, true
}

// awaitDone polls a job to the done state and returns its status.
func awaitDone(t *testing.T, base, id string) crashStatus {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		var st crashStatus
		err = json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("poll %s: %v", id, err)
		}
		switch st.State {
		case "done":
			return st
		case "failed", "cancelled":
			t.Fatalf("job %s ended %s", id, st.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 2m", id, st.State)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// jobEvents fetches a terminal job's full NDJSON event stream.
func jobEvents(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCrashSmoke(t *testing.T) {
	if os.Getenv("CRASH_SMOKE") == "" {
		t.Skip("set CRASH_SMOKE=1 (make crash-smoke) to run")
	}

	bin := filepath.Join(t.TempDir(), "hgserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	// Control: one undisturbed run establishes the expected result and
	// event trace for the fixed job, plus the SIGTERM exit-0 contract.
	var wantResult, wantEvents []byte
	t.Run("control", func(t *testing.T) {
		d := startDaemon(t, bin, filepath.Join(t.TempDir(), "state"), filepath.Join(t.TempDir(), "cache"), "")
		st, ok := submitJob(t, d.base)
		if !ok {
			t.Fatal("control submit failed")
		}
		final := awaitDone(t, d.base, st.ID)
		wantResult = append([]byte(nil), final.Result...)
		wantEvents = jobEvents(t, d.base, st.ID)
		if len(wantResult) == 0 || len(wantEvents) == 0 {
			t.Fatal("control run produced no result or events")
		}
		d.sigterm(t)
	})
	if t.Failed() {
		t.Fatal("control run failed; kill matrix aborted")
	}

	// assertParity restarts on stateDir and checks the job recovers to
	// the control result and trace, byte for byte.
	assertParity := func(t *testing.T, stateDir, cacheDir, id string) {
		d := startDaemon(t, bin, stateDir, cacheDir, "")
		final := awaitDone(t, d.base, id)
		if !bytes.Equal(final.Result, wantResult) {
			t.Errorf("recovered result differs from control:\n got %s\nwant %s", final.Result, wantResult)
		}
		if got := jobEvents(t, d.base, id); !bytes.Equal(got, wantEvents) {
			t.Errorf("recovered event trace differs from control (%d vs %d bytes)", len(got), len(wantEvents))
		}
		d.sigterm(t)
	}

	// Mid-journal-append: the accepted record tears before the client
	// ever sees 202, so after restart the store is healed and empty —
	// no job was promised, none is owed.
	t.Run("kill-mid-journal-append", func(t *testing.T) {
		stateDir, cacheDir := filepath.Join(t.TempDir(), "state"), filepath.Join(t.TempDir(), "cache")
		d := startDaemon(t, bin, stateDir, cacheDir, "serve.journal.append:1")
		if _, ok := submitJob(t, d.base); ok {
			t.Fatal("submit returned 202 despite dying mid-journal-append")
		}
		if !d.waitDeath(t, 30*time.Second) {
			t.Fatal("daemon exited normally; crash point never fired")
		}
		d2 := startDaemon(t, bin, stateDir, cacheDir, "")
		resp, err := http.Get(d2.base + "/v1/jobs/j-000001")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unacknowledged job resurrected: GET = %d, want 404", resp.StatusCode)
		}
		// The healed store accepts and completes fresh work with parity.
		st, ok := submitJob(t, d2.base)
		if !ok {
			t.Fatal("submit after recovery failed")
		}
		final := awaitDone(t, d2.base, st.ID)
		if !bytes.Equal(final.Result, wantResult) {
			t.Errorf("post-recovery result differs from control")
		}
		d2.sigterm(t)
	})

	// Mid-checkpoint-append: the job dies while persisting a repair
	// commit; restart resumes it from the checkpoint to a byte-identical
	// result and trace. N varies the interrupt depth.
	for _, n := range []int{1, 3} {
		t.Run(fmt.Sprintf("kill-mid-checkpoint-append-%d", n), func(t *testing.T) {
			stateDir, cacheDir := filepath.Join(t.TempDir(), "state"), filepath.Join(t.TempDir(), "cache")
			d := startDaemon(t, bin, stateDir, cacheDir, fmt.Sprintf("repair.checkpoint.append:%d", n))
			st, ok := submitJob(t, d.base)
			if !ok {
				t.Fatal("submit failed")
			}
			if !d.waitDeath(t, 60*time.Second) {
				t.Fatal("daemon exited normally; crash point never fired")
			}
			assertParity(t, stateDir, cacheDir, st.ID)
		})
	}

	// Mid-cache-write: the job dies mid-append to the persistent eval
	// cache, leaving a torn cache line the loader must skip; the
	// requeued job still recovers with parity.
	t.Run("kill-mid-cache-write", func(t *testing.T) {
		stateDir, cacheDir := filepath.Join(t.TempDir(), "state"), filepath.Join(t.TempDir(), "cache")
		d := startDaemon(t, bin, stateDir, cacheDir, "evalcache.append:1")
		st, ok := submitJob(t, d.base)
		if !ok {
			t.Fatal("submit failed")
		}
		if !d.waitDeath(t, 60*time.Second) {
			t.Fatal("daemon exited normally; crash point never fired")
		}
		assertParity(t, stateDir, cacheDir, st.ID)
	})

	// Mid-drain: SIGTERM starts the drain and the process is killed at
	// the drain's journal-flush boundary; the finished job's terminal
	// record was already durable and is re-reported after restart.
	t.Run("kill-mid-drain", func(t *testing.T) {
		stateDir, cacheDir := filepath.Join(t.TempDir(), "state"), filepath.Join(t.TempDir(), "cache")
		d := startDaemon(t, bin, stateDir, cacheDir, "serve.drain:1")
		st, ok := submitJob(t, d.base)
		if !ok {
			t.Fatal("submit failed")
		}
		awaitDone(t, d.base, st.ID)
		_ = d.cmd.Process.Signal(os.Interrupt)
		if !d.waitDeath(t, 30*time.Second) {
			t.Fatal("daemon exited normally; drain crash point never fired")
		}
		d2 := startDaemon(t, bin, stateDir, cacheDir, "")
		final := awaitDone(t, d2.base, st.ID)
		if !final.Resumed {
			t.Error("re-reported terminal job not marked resumed")
		}
		if !bytes.Equal(final.Result, wantResult) {
			t.Errorf("re-reported result differs from control")
		}
		d2.sigterm(t)
	})

	// Hard kill after terminal: no crash point, just SIGKILL once the
	// job is done — the baseline durability promise.
	t.Run("hard-kill-after-terminal", func(t *testing.T) {
		stateDir, cacheDir := filepath.Join(t.TempDir(), "state"), filepath.Join(t.TempDir(), "cache")
		d := startDaemon(t, bin, stateDir, cacheDir, "")
		st, ok := submitJob(t, d.base)
		if !ok {
			t.Fatal("submit failed")
		}
		awaitDone(t, d.base, st.ID)
		_ = d.cmd.Process.Kill()
		_ = d.cmd.Wait()
		d2 := startDaemon(t, bin, stateDir, cacheDir, "")
		final := awaitDone(t, d2.base, st.ID)
		if !bytes.Equal(final.Result, wantResult) {
			t.Errorf("re-reported result differs from control")
		}
		d2.sigterm(t)
	})
}
