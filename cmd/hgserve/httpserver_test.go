package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/serve"
)

// TestHTTPServerHardening pins the http.Server timeout contract: the
// slowloris knobs are set, and the deadlines that would sever NDJSON
// event streams or large request bodies stay off.
func TestHTTPServerHardening(t *testing.T) {
	hs := newHTTPServer(nil)
	if hs.ReadHeaderTimeout <= 0 {
		t.Error("ReadHeaderTimeout unset: slow-header connections are never reaped")
	}
	if hs.IdleTimeout <= 0 {
		t.Error("IdleTimeout unset: idle keep-alive connections are never reaped")
	}
	if hs.WriteTimeout != 0 {
		t.Errorf("WriteTimeout = %v, must be 0: a write deadline severs long NDJSON event streams", hs.WriteTimeout)
	}
	if hs.ReadTimeout != 0 {
		t.Errorf("ReadTimeout = %v, must be 0: it would also cap streamed responses on the same connection", hs.ReadTimeout)
	}
}

// TestTimeoutsKeepEventStreamsAlive runs a job through the hardened
// server and holds its /events stream open from submission to
// completion — the regression a misapplied write deadline breaks.
func TestTimeoutsKeepEventStreamsAlive(t *testing.T) {
	srv := serve.New(serve.Options{})
	defer srv.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := newHTTPServer(srv.Handler())
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	body := fmt.Sprintf(`{"kind":"fuzz","kernel":"top","source":%q,
		"budget":{"fuzz_execs":500}}`, smokeSource)
	resp, err := http.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d, want 202", resp.StatusCode)
	}

	// Attach immediately, while the job is still queued or running: the
	// stream must survive until the job finishes and then close cleanly.
	stream, err := (&http.Client{Timeout: 2 * time.Minute}).Get(base + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Body.Close()
	sc := bufio.NewScanner(stream.Body)
	sc.Buffer(make([]byte, 64*1024), 16<<20)
	lines := 0
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		if !json.Valid([]byte(sc.Text())) {
			t.Fatalf("event line %d is not JSON: %q", lines, sc.Text())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("event stream severed after %d lines: %v", lines, err)
	}
	if lines == 0 {
		t.Error("event stream delivered no events")
	}
}
