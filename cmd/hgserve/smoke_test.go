package main

// The serve-smoke gate (`make serve-smoke`, SERVE_SMOKE=1): build the
// real binary, start it on a free port, run one job of every kind over
// HTTP, and assert the /metrics and /healthz contracts. This is the
// only test that exercises the daemon as a process — flag parsing, the
// startup line, signal shutdown — rather than through httptest; the
// API behaviour itself is covered by internal/serve.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

const smokeSource = `
int top(int in) {
    long double x = in;
    for (int i = 0; i < 4; i++) {
        if (in > i) { x = x + i; }
    }
    return (int)x;
}
`

func TestServeSmoke(t *testing.T) {
	if os.Getenv("SERVE_SMOKE") == "" {
		t.Skip("set SERVE_SMOKE=1 (make serve-smoke) to run")
	}

	bin := filepath.Join(t.TempDir(), "hgserve")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	traceDir := filepath.Join(t.TempDir(), "traces")
	cmd := exec.Command(bin, "-addr", "127.0.0.1:0",
		"-cache-dir", filepath.Join(t.TempDir(), "cache"),
		"-state-dir", filepath.Join(t.TempDir(), "state"),
		"-trace-dir", traceDir, "-log", "json", "-pprof-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start: %v", err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { _ = cmd.Wait(); close(done) }()
		select {
		case <-done:
			// A drained shutdown with no in-flight work exits 0; anything
			// else means the drain path broke.
			if code := cmd.ProcessState.ExitCode(); code != 0 {
				t.Errorf("SIGINT drain exited %d, want 0", code)
			}
		case <-time.After(15 * time.Second):
			_ = cmd.Process.Kill()
			<-done
			t.Error("daemon did not drain within 15s of SIGINT")
		}
	})

	// The startup line is a documented contract:
	// "hgserve: listening on http://<addr>".
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("reading startup line: %v", err)
	}
	base, ok := strings.CutPrefix(strings.TrimSpace(line), "hgserve: listening on ")
	if !ok {
		t.Fatalf("unexpected startup line %q", line)
	}
	go io.Copy(io.Discard, stdout)

	client := &http.Client{Timeout: 30 * time.Second}

	// Startup-line emission follows journal replay, so readiness must
	// already hold: /readyz answers 200 once the daemon accepts work.
	resp0, err := client.Get(base + "/readyz")
	if err != nil {
		t.Fatalf("readyz: %v", err)
	}
	var ready struct {
		Ready  bool   `json:"ready"`
		Reason string `json:"reason"`
	}
	if err := json.NewDecoder(resp0.Body).Decode(&ready); err != nil {
		t.Fatalf("decoding readyz: %v", err)
	}
	resp0.Body.Close()
	if resp0.StatusCode != http.StatusOK || !ready.Ready {
		t.Fatalf("readyz = %d %+v, want 200 ready", resp0.StatusCode, ready)
	}

	for _, kind := range []string{"transpile", "check", "repair", "fuzz"} {
		body := fmt.Sprintf(`{"kind":%q,"kernel":"top","source":%q,
			"budget":{"fuzz_execs":150,"max_iterations":16}}`, kind, smokeSource)
		resp, err := client.Post(base+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("%s: submit: %v", kind, err)
		}
		var st struct {
			ID    string `json:"id"`
			State string `json:"state"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("%s: decoding submit response: %v", kind, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted || st.ID == "" {
			t.Fatalf("%s: submit = %d %+v, want 202 with id", kind, resp.StatusCode, st)
		}

		deadline := time.Now().Add(2 * time.Minute)
		for {
			resp, err := client.Get(base + "/v1/jobs/" + st.ID)
			if err != nil {
				t.Fatalf("%s: poll: %v", kind, err)
			}
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatalf("%s: decoding status: %v", kind, err)
			}
			resp.Body.Close()
			if st.State == "done" {
				break
			}
			if st.State == "failed" || st.State == "cancelled" {
				t.Fatalf("%s: job %s ended %s", kind, st.ID, st.State)
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: job %s still %s after 2m", kind, st.ID, st.State)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}

	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var metrics struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatalf("decoding metrics: %v", err)
	}
	resp.Body.Close()
	if metrics.Counters["serve.jobs.submitted"] != 4 || metrics.Counters["serve.jobs.done"] != 4 {
		t.Errorf("metrics: submitted=%d done=%d, want 4/4",
			metrics.Counters["serve.jobs.submitted"], metrics.Counters["serve.jobs.done"])
	}

	resp, err = client.Get(base + "/metrics?format=text")
	if err != nil {
		t.Fatalf("metrics text: %v", err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(text, []byte("serve_jobs_submitted_total")) {
		t.Errorf("text metrics missing serve_jobs_submitted_total:\n%s", text)
	}
	if !bytes.Contains(text, []byte("# TYPE serve_queue_depth gauge")) {
		t.Errorf("text metrics missing queue depth gauge:\n%s", text)
	}

	// Every terminal job left a retained trace + sidecar.
	jsonls, err := filepath.Glob(filepath.Join(traceDir, "*.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	metas, err := filepath.Glob(filepath.Join(traceDir, "*.meta.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(jsonls) != 4 || len(metas) != 4 {
		t.Errorf("retention: %d traces + %d sidecars, want 4 + 4", len(jsonls), len(metas))
	}

	resp, err = client.Get(base + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health struct {
		OK      bool  `json:"ok"`
		Running int64 `json:"running"`
		Pool    int   `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("decoding healthz: %v", err)
	}
	resp.Body.Close()
	if !health.OK || health.Pool < 1 || health.Running != 0 {
		t.Errorf("healthz = %+v, want ok with idle pool", health)
	}
}
