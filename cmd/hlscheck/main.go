// Command hlscheck runs the simulated HLS synthesizability checker over a
// C/HLS-C source file and prints Vivado-style diagnostics, grouped by the
// six error classes of the paper's §5.1.
//
// Usage:
//
//	hlscheck -top <function> [-cache-dir d] [-no-cache] [-backend b] [-device d] [-target b:d ...] file.c
//
// -backend/-device/-target select which HLS toolchain dialect(s) the
// diagnostics are reported in; with two or more targets the report is
// printed once per target. No target flags keep the classic
// vivado_hls:xcvu9p behavior, byte-identical to earlier releases.
//
// With -cache-dir the checker verdict is memoized on the printed
// program text, so re-checking an unchanged file (a CI gate's common
// case) is a cache hit; -no-cache disables the cache. Diagnostics are
// identical either way.
//
// The check runs inside a failure-containment guard; -stage-deadline,
// -quarantine-dir, and -chaos/-chaos-seed configure its budget and the
// deterministic fault injector (see internal/guard).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hetero/heterogen"
	"github.com/hetero/heterogen/internal/chaos"
	"github.com/hetero/heterogen/internal/targetflag"
)

func main() {
	top := flag.String("top", "", "top function of the design (required)")
	cacheDir := flag.String("cache-dir", "", "persist the evaluation cache in this directory (reused across runs)")
	noCache := flag.Bool("no-cache", false, "disable the evaluation cache (diagnostics are identical either way)")
	var cf chaos.Flags
	cf.Register(flag.CommandLine)
	var tf targetflag.Flags
	tf.Register(flag.CommandLine)
	flag.Parse()
	if *top == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hlscheck -top <fn> [-cache-dir d] [-no-cache] [-backend b] [-device d] [-target b:d ...] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hlscheck:", err)
		os.Exit(1)
	}
	targets, err := tf.Targets()
	if err != nil {
		fmt.Fprintln(os.Stderr, "hlscheck:", err)
		os.Exit(1)
	}
	opts := heterogen.Options{Kernel: *top, Targets: targets}
	opts.Guard = cf.Build(nil, func(msg string) {
		fmt.Fprintln(os.Stderr, "hlscheck:", msg)
	})
	if !*noCache {
		cache, err := heterogen.NewCache(heterogen.CacheOptions{Dir: *cacheDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hlscheck:", err)
			os.Exit(1)
		}
		opts.Cache = cache
	}
	if len(targets) > 1 {
		reps, err := heterogen.CheckTargets(string(src), opts)
		closeCache(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "hlscheck:", err)
			os.Exit(1)
		}
		code := 0
		for _, tr := range reps {
			if tr.Report.OK {
				fmt.Printf("[%s] Synthesizability check passed.\n", tr.Target)
				continue
			}
			code = 1
			fmt.Printf("[%s] %d diagnostic(s)\n", tr.Target, len(tr.Report.Diags))
			printDiags(tr.Report)
		}
		os.Exit(code)
	}
	rep, err := heterogen.Check(string(src), opts)
	closeCache(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hlscheck:", err)
		os.Exit(1)
	}
	if rep.OK {
		fmt.Println("Synthesizability check passed.")
		return
	}
	printDiags(rep)
	os.Exit(1)
}

// closeCache flushes the persistent cache, if one was configured.
func closeCache(opts heterogen.Options) {
	if opts.Cache == nil {
		return
	}
	if cerr := opts.Cache.Close(); cerr != nil {
		fmt.Fprintln(os.Stderr, "hlscheck: cache:", cerr)
	}
}

// printDiags renders one report's diagnostics grouped by error class.
func printDiags(rep heterogen.Report) {
	by := rep.ByClass()
	for _, class := range []heterogen.ErrorClass{
		heterogen.ClassDynamicData, heterogen.ClassUnsupportedType,
		heterogen.ClassDataflow, heterogen.ClassLoopParallel,
		heterogen.ClassStructUnion, heterogen.ClassTopFunction,
	} {
		diags := by[class]
		if len(diags) == 0 {
			continue
		}
		fmt.Printf("-- %s (%d)\n", class, len(diags))
		for _, d := range diags {
			fmt.Println("  " + d.Error())
		}
	}
}
