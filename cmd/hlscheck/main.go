// Command hlscheck runs the simulated HLS synthesizability checker over a
// C/HLS-C source file and prints Vivado-style diagnostics, grouped by the
// six error classes of the paper's §5.1.
//
// Usage:
//
//	hlscheck -top <function> file.c
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hetero/heterogen"
)

func main() {
	top := flag.String("top", "", "top function of the design (required)")
	flag.Parse()
	if *top == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hlscheck -top <fn> file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hlscheck:", err)
		os.Exit(1)
	}
	rep, err := heterogen.Check(string(src), *top)
	if err != nil {
		fmt.Fprintln(os.Stderr, "hlscheck:", err)
		os.Exit(1)
	}
	if rep.OK {
		fmt.Println("Synthesizability check passed.")
		return
	}
	by := rep.ByClass()
	for _, class := range []heterogen.ErrorClass{
		heterogen.ClassDynamicData, heterogen.ClassUnsupportedType,
		heterogen.ClassDataflow, heterogen.ClassLoopParallel,
		heterogen.ClassStructUnion, heterogen.ClassTopFunction,
	} {
		diags := by[class]
		if len(diags) == 0 {
			continue
		}
		fmt.Printf("-- %s (%d)\n", class, len(diags))
		for _, d := range diags {
			fmt.Println("  " + d.Error())
		}
	}
	os.Exit(1)
}
