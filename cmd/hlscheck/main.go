// Command hlscheck runs the simulated HLS synthesizability checker over a
// C/HLS-C source file and prints Vivado-style diagnostics, grouped by the
// six error classes of the paper's §5.1.
//
// Usage:
//
//	hlscheck -top <function> [-cache-dir d] [-no-cache] file.c
//
// With -cache-dir the checker verdict is memoized on the printed
// program text, so re-checking an unchanged file (a CI gate's common
// case) is a cache hit; -no-cache disables the cache. Diagnostics are
// identical either way.
//
// The check runs inside a failure-containment guard; -stage-deadline,
// -quarantine-dir, and -chaos/-chaos-seed configure its budget and the
// deterministic fault injector (see internal/guard).
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/hetero/heterogen"
	"github.com/hetero/heterogen/internal/chaos"
)

func main() {
	top := flag.String("top", "", "top function of the design (required)")
	cacheDir := flag.String("cache-dir", "", "persist the evaluation cache in this directory (reused across runs)")
	noCache := flag.Bool("no-cache", false, "disable the evaluation cache (diagnostics are identical either way)")
	var cf chaos.Flags
	cf.Register(flag.CommandLine)
	flag.Parse()
	if *top == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hlscheck -top <fn> [-cache-dir d] [-no-cache] file.c")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "hlscheck:", err)
		os.Exit(1)
	}
	opts := heterogen.Options{Kernel: *top}
	opts.Guard = cf.Build(nil, func(msg string) {
		fmt.Fprintln(os.Stderr, "hlscheck:", msg)
	})
	if !*noCache {
		cache, err := heterogen.NewCache(heterogen.CacheOptions{Dir: *cacheDir})
		if err != nil {
			fmt.Fprintln(os.Stderr, "hlscheck:", err)
			os.Exit(1)
		}
		opts.Cache = cache
	}
	rep, err := heterogen.Check(string(src), opts)
	if opts.Cache != nil {
		if cerr := opts.Cache.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "hlscheck: cache:", cerr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hlscheck:", err)
		os.Exit(1)
	}
	if rep.OK {
		fmt.Println("Synthesizability check passed.")
		return
	}
	by := rep.ByClass()
	for _, class := range []heterogen.ErrorClass{
		heterogen.ClassDynamicData, heterogen.ClassUnsupportedType,
		heterogen.ClassDataflow, heterogen.ClassLoopParallel,
		heterogen.ClassStructUnion, heterogen.ClassTopFunction,
	} {
		diags := by[class]
		if len(diags) == 0 {
			continue
		}
		fmt.Printf("-- %s (%d)\n", class, len(diags))
		for _, d := range diags {
			fmt.Println("  " + d.Error())
		}
	}
	os.Exit(1)
}
