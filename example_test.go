package heterogen_test

import (
	"fmt"

	"github.com/hetero/heterogen"
)

// ExampleCheck runs only the synthesizability checker, the way a CI gate
// would.
func ExampleCheck() {
	rep, err := heterogen.Check(`
void kernel(int n) {
    int *p = (int *)malloc(n * sizeof(int));
    free(p);
}`, heterogen.Options{Kernel: "kernel"})
	if err != nil {
		panic(err)
	}
	for _, d := range rep.Diags {
		fmt.Println(d.Error())
	}
	// Output:
	// ERROR: [SYNCHK 200-31] dynamic memory allocation/deallocation is not supported: call to 'malloc'
	// ERROR: [SYNCHK 200-31] dynamic memory allocation/deallocation is not supported: call to 'free'
	// ERROR: [SYNCHK 200-41] pointer 'p' is not supported: pointers are only allowed on top-level interface ports
}

// ExampleTranspile repairs the paper's Figure 4 unsupported-type kernel.
func ExampleTranspile() {
	res, err := heterogen.Transpile(`
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`, heterogen.Options{
		Kernel: "top",
		Fuzz:   heterogen.FuzzOptions{Seed: 1, MaxExecs: 100, Plateau: 40, TypedMutation: true},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("compatible=%v behaviour=%v\n", res.Compatible, res.BehaviorOK)
	fmt.Print(res.Source)
	// Output:
	// compatible=true behaviour=true
	// int top(int in) {
	//     fpga_float<8,71> in_ld = in;
	//     in_ld = in_ld + 1;
	//     return (int)in_ld;
	// }
}

// ExampleGenerateTests shows Algorithm 1 in isolation.
func ExampleGenerateTests() {
	camp, err := heterogen.GenerateTests(`
int kernel(int x) {
    if (x == 42) { return 1; }
    return 0;
}`, "kernel", heterogen.FuzzOptions{Seed: 1, MaxExecs: 400, Plateau: 200, TypedMutation: true})
	if err != nil {
		panic(err)
	}
	fmt.Printf("coverage=%.0f%%\n", 100*camp.Coverage)
	// Output:
	// coverage=100%
}
