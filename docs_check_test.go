package heterogen

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocsFlagReference is the docs gate behind `make docs-check`: every
// flag any binary registers must appear in the README's consolidated CLI
// reference table (the region between the flag-reference markers). Flags
// are read from the source — flag.X(...) registrations in cmd/*/main.go
// plus the shared containment/chaos vocabulary a binary pulls in via
// chaos.Flags.Register — so adding a flag without documenting it fails
// the build, and the README can never silently drift from the CLIs.
func TestDocsFlagReference(t *testing.T) {
	readme, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	const startMark = "<!-- flag-reference:start -->"
	const endMark = "<!-- flag-reference:end -->"
	start := strings.Index(string(readme), startMark)
	end := strings.Index(string(readme), endMark)
	if start < 0 || end < 0 || end < start {
		t.Fatalf("README.md is missing the %s / %s markers", startMark, endMark)
	}
	table := string(readme[start:end])

	// The shared flag vocabularies pulled in via <pkg>.Flags.Register:
	// the containment/chaos flags and the backend/device target flags.
	shared := map[string][]string{
		"chaos.Flags":      sharedFlagNames(t, filepath.Join("internal", "chaos", "chaos.go")),
		"targetflag.Flags": sharedFlagNames(t, filepath.Join("internal", "targetflag", "targetflag.go")),
	}

	mains, err := filepath.Glob(filepath.Join("cmd", "*", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	if len(mains) == 0 {
		t.Fatal("no cmd/*/main.go files found")
	}

	flagRe := regexp.MustCompile(`flag\.[A-Za-z0-9]+\("([^"]+)"`)
	for _, main := range mains {
		src, err := os.ReadFile(main)
		if err != nil {
			t.Fatal(err)
		}
		names := []string{}
		for _, m := range flagRe.FindAllStringSubmatch(string(src), -1) {
			names = append(names, m[1])
		}
		for ident, flags := range shared {
			if strings.Contains(string(src), ident) {
				names = append(names, flags...)
			}
		}
		if len(names) == 0 {
			t.Errorf("%s: registers no flags; the extraction regexp is stale", main)
		}
		binary := filepath.Base(filepath.Dir(main))
		for _, name := range names {
			// Documented as `-name` or `-name <operand>`; require a
			// boundary after the name so -n can't hide behind -no-cache.
			entry := regexp.MustCompile("`-" + regexp.QuoteMeta(name) + "(`|[^a-z0-9-])")
			if !entry.MatchString(table) {
				t.Errorf("%s: flag -%s is not in the README CLI reference table", binary, name)
			}
		}
	}
}

// sharedFlagNames extracts the flag names a shared flag struct
// registers on a FlagSet (fs.StringVar/fs.Var/... calls).
func sharedFlagNames(t *testing.T, path string) []string {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`fs\.[A-Za-z0-9]*\([^,]+, "([^"]+)"`)
	var names []string
	for _, m := range re.FindAllStringSubmatch(string(src), -1) {
		names = append(names, m[1])
	}
	if len(names) == 0 {
		t.Fatalf("found no shared flags in %s; the extraction regexp is stale", path)
	}
	return names
}
