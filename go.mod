module github.com/hetero/heterogen

go 1.22
