package eval

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/subjects"
)

// TestTable3Shape runs the quick pipeline on every subject and verifies
// the headline result: HLS compatibility everywhere, performance
// improvement everywhere except P1.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline integration test")
	}
	cfg := QuickConfig()
	for _, s := range subjects.All() {
		s := s
		t.Run(s.ID, func(t *testing.T) {
			run, err := RunSubject(s, cfg)
			if err != nil {
				t.Fatalf("%s: %v", s.ID, err)
			}
			if !run.Compatible || !run.BehaviorOK {
				t.Errorf("%s: not repaired (compat=%v behavior=%v); edits: %v",
					s.ID, run.Compatible, run.BehaviorOK, run.EditLog)
			}
			if run.Improved != s.ExpectImproved {
				t.Errorf("%s: improved=%v, Table 3 expects %v (origin %.3fms vs fpga %.3fms)",
					s.ID, run.Improved, s.ExpectImproved,
					run.RuntimeOriginMS, run.RuntimeHGMS)
			}
			if run.DeltaLOC <= 0 {
				t.Errorf("%s: ΔLOC should be positive, got %d", s.ID, run.DeltaLOC)
			}
			if run.Coverage < 0.6 {
				t.Errorf("%s: coverage %.0f%% too low", s.ID, 100*run.Coverage)
			}
			if run.ExistingCoverage >= 0 && run.Coverage <= run.ExistingCoverage {
				t.Errorf("%s: generated coverage %.2f not above existing %.2f",
					s.ID, run.Coverage, run.ExistingCoverage)
			}
			if s.HRSupported != run.HRSucceeded {
				t.Errorf("%s: HR success=%v, Table 5 expects %v", s.ID, run.HRSucceeded, s.HRSupported)
			}
			log := strings.Join(run.EditLog, " ")
			for _, want := range s.ExpectedEdits {
				if !strings.Contains(log, want) {
					t.Errorf("%s: edit log missing template %q: %v", s.ID, want, run.EditLog)
				}
			}
		})
	}
}

func TestFigure3Study(t *testing.T) {
	res := Figure3(QuickConfig())
	if res.Total < 300 {
		t.Fatalf("corpus too small: %d", res.Total)
	}
	if res.Accuracy < 0.9 {
		t.Errorf("classifier accuracy %.2f too low", res.Accuracy)
	}
	// The measured distribution must rank the classes like Figure 3:
	// unsupported types most frequent, dynamic data least.
	if res.Percent[hls.ClassUnsupportedType] < res.Percent[hls.ClassTopFunction] {
		t.Errorf("unsupported types should dominate: %+v", res.Percent)
	}
	for c, p := range res.Percent {
		if c == hls.ClassDynamicData {
			continue
		}
		if res.Percent[hls.ClassDynamicData] > p {
			t.Errorf("dynamic data should be rarest: %s=%.1f vs dyn=%.1f",
				c, p, res.Percent[hls.ClassDynamicData])
		}
	}
	text := FormatFigure3(res)
	if !strings.Contains(text, "Figure 3") {
		t.Error("formatting broken")
	}
}

func TestFormatters(t *testing.T) {
	runs := []SubjectRun{{
		ID: "P1", Name: "signal transmission", OriginalLOC: 10,
		Compatible: true, BehaviorOK: true, Improved: false,
		TestsGenerated: 27, GenMinutes: 35, Coverage: 1.0,
		ExistingCoverage: -1, DeltaLOC: 9, ManualDeltaLOC: 12,
		RuntimeOriginMS: 0.21, RuntimeManualMS: 0.11, RuntimeHRMS: -1,
		RuntimeHGMS: 0.35,
	}}
	t3 := FormatTable3(runs)
	if !strings.Contains(t3, "P1") || !strings.Contains(t3, "✓") || !strings.Contains(t3, "✗") {
		t.Errorf("table 3 formatting:\n%s", t3)
	}
	t4 := FormatTable4(runs)
	if !strings.Contains(t4, "N/A") {
		t.Errorf("table 4 should show N/A for missing tests:\n%s", t4)
	}
	t5 := FormatTable5(runs)
	if !strings.Contains(t5, "0.350") {
		t.Errorf("table 5 formatting:\n%s", t5)
	}
	f9 := FormatFigure9([]AblationRun{{ID: "P1", HGMinutes: 2,
		WithoutDepMinutes: 70, WithoutDepOK: true, HGInvokePct: 40, WithoutCheckerPct: 100}})
	if !strings.Contains(f9, "35x") {
		t.Errorf("figure 9 speedup formatting:\n%s", f9)
	}
}

func TestCapSuite(t *testing.T) {
	mk := func(n int) []fuzz.TestCase {
		out := make([]fuzz.TestCase, n)
		for i := range out {
			out[i] = fuzz.TestCase{Args: []fuzz.Arg{
				{Scalar: true, Ints: []int64{int64(i)}, Width: 32}}}
		}
		return out
	}
	// Fewer tests than the cap: unchanged.
	small := mk(5)
	if got := capSuite(small, 10); len(got) != 5 {
		t.Errorf("small suite resized to %d", len(got))
	}
	// More tests: capped, spread across the suite (first element kept,
	// later elements sampled beyond the midpoint).
	big := capSuite(mk(100), 10)
	if len(big) != 10 {
		t.Fatalf("capped length %d", len(big))
	}
	if big[0].Args[0].Ints[0] != 0 {
		t.Error("first test should be kept")
	}
	if last := big[9].Args[0].Ints[0]; last < 50 {
		t.Errorf("sampling not spread: last picked index %d", last)
	}
	// Zero cap disables capping.
	if got := capSuite(mk(100), 0); len(got) != 100 {
		t.Errorf("zero cap should disable: %d", len(got))
	}
}

func TestRunAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation integration test")
	}
	s, err := subjects.ByID("P1")
	if err != nil {
		t.Fatal(err)
	}
	abl, err := RunAblation(s, QuickConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !abl.HGCompatible {
		t.Error("HG must repair P1")
	}
	if !abl.WithoutDepOK {
		t.Error("random order must also repair P1 (single edit)")
	}
	if !abl.WithoutCheckerCompat {
		t.Error("WithoutChecker must repair P1")
	}
	if abl.WithoutDepMinutes < abl.HGMinutes {
		t.Errorf("random order should not be faster: %v vs %v",
			abl.WithoutDepMinutes, abl.HGMinutes)
	}
}
