// Package eval is the benchmark harness that regenerates every table and
// figure of the paper's evaluation (§6): Table 3 (conversion
// effectiveness), Table 4 (test generation), Figure 9 (ablations), Table 5
// (manual / HeteroRefactor comparison), and Figure 3 (the forum study).
//
// Absolute numbers come from the simulated toolchain (virtual compile
// latency, modelled FPGA cycles), so they will not match the paper's
// testbed; the shapes — who wins, where performance improves, where the
// ablations blow up — are the reproduction targets.
package eval

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"

	"github.com/hetero/heterogen/internal/baselines"
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/difftest"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/forum"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/profile"
	"github.com/hetero/heterogen/internal/repair"
	"github.com/hetero/heterogen/internal/subjects"
)

// Config tunes harness effort.
type Config struct {
	// Quick shrinks fuzzing budgets for fast CI runs; the full
	// configuration approximates the paper's campaign sizes.
	Quick bool
	Seed  int64
	// ValidationCap bounds the number of tests used for repair fitness
	// evaluation (the virtual-time accounting still reflects the full
	// suite; this bounds real execution).
	ValidationCap int
	// Workers bounds concurrent candidate evaluation inside each repair
	// search (repair.Options.Workers). All reported numbers are
	// bit-identical for any value — it only changes real wall-clock.
	Workers int
	// Obs receives structured events from every subject's fuzzing
	// campaign and repair search, tagged with the subject id so
	// concurrently-run subjects stay separable in one trace (see
	// internal/obs.Tag). Single-subject runs produce byte-deterministic
	// traces; RunAll interleaves subjects in scheduler order.
	Obs obs.Observer
	// Cache, when non-nil, memoizes toolchain verdicts across subjects
	// and — with a persistent directory — across harness runs, so a
	// repeated sweep over P1-P10 is near-instant. Reported numbers are
	// bit-identical with or without it. Safe to share across the
	// concurrent subjects of RunAll.
	Cache *evalcache.Cache
	// Guard, when non-nil, contains stage failures (panics, deadline
	// overruns) inside each subject's fuzzing campaign and repair
	// search instead of crashing the harness. With injection disabled,
	// reported numbers are bit-identical with or without it. Safe to
	// share across the concurrent subjects of RunAll.
	Guard *guard.Guard
	// Targets, when set, runs every subject's repair search against this
	// HLS target set (repair.Options.Targets): fitness becomes a
	// per-device vector and the search keeps a latency/resource Pareto
	// archive. Empty keeps the classic single-default-target numbers.
	Targets []hls.Target
}

// DefaultConfig is the full-effort harness configuration.
func DefaultConfig() Config { return Config{Seed: 1, ValidationCap: 24} }

// QuickConfig is the CI-sized configuration.
func QuickConfig() Config { return Config{Quick: true, Seed: 1, ValidationCap: 12} }

func (c Config) fuzzOptions() fuzz.Options {
	o := fuzz.DefaultOptions()
	o.Seed = c.Seed
	if c.Quick {
		o.MaxExecs = 220
		o.Plateau = 90
	} else {
		o.MaxExecs = 2600
		o.Plateau = 450
	}
	return o
}

// SubjectRun aggregates everything the per-subject tables need.
type SubjectRun struct {
	ID, Name    string
	OriginalLOC int

	// Table 3.
	Compatible bool
	BehaviorOK bool
	Improved   bool

	// Table 4.
	TestsGenerated   int
	GenMinutes       float64
	Coverage         float64
	ExistingCount    int
	ExistingCoverage float64 // -1 when the subject ships without tests

	// Table 5.
	DeltaLOC        int
	ManualDeltaLOC  int
	HRSucceeded     bool
	HRDeltaLOC      int
	RuntimeOriginMS float64
	RuntimeManualMS float64
	RuntimeHRMS     float64 // -1 when HR failed
	RuntimeHGMS     float64

	// Figure 9 inputs for the main configuration.
	HGMinutes        float64
	HGInvocations    int
	HGCandidates     int
	HGStyleRejects   int
	EditLog          []string
	ValidationsTotal int
}

// RunSubject executes the full HeteroGen pipeline plus the Table 5
// comparisons for one subject.
func RunSubject(s subjects.Subject, cfg Config) (SubjectRun, error) {
	run := SubjectRun{ID: s.ID, Name: s.Name}
	orig := s.MustParse()
	run.OriginalLOC = cast.CountLines(orig)
	o := obs.Tag(cfg.Obs, s.ID)

	// --- Test generation (Table 4) -------------------------------------
	fopts := cfg.fuzzOptions()
	fopts.Obs = o
	fopts.Cache = cfg.Cache
	fopts.Guard = cfg.Guard
	camp, err := fuzz.Run(orig, s.Kernel, fopts)
	if err != nil {
		return run, fmt.Errorf("%s: fuzz: %w", s.ID, err)
	}
	run.TestsGenerated = camp.Execs
	run.GenMinutes = camp.VirtualMinutes()
	run.Coverage = camp.Coverage
	run.ExistingCoverage = -1
	if s.ExistingTests != nil {
		existing := s.ExistingTests()
		run.ExistingCount = len(existing)
		cov, err := fuzz.Replay(orig, s.Kernel, existing)
		if err == nil {
			run.ExistingCoverage = cov
		}
	}

	valSuite := validationSuite(orig, s.Kernel, camp.Tests, cfg)

	// --- Initial version + repair (Table 3) ----------------------------
	initial := cast.CloneUnit(orig)
	if prof, err := profile.Generate(orig, s.Kernel, valSuite); err == nil {
		initial = prof.Unit
	}
	ropts := repair.DefaultOptions()
	ropts.Seed = cfg.Seed
	ropts.Workers = cfg.Workers
	ropts.Obs = o
	ropts.Cache = cfg.Cache
	ropts.Guard = cfg.Guard
	ropts.InterpSteps = cfg.Guard.InterpSteps()
	ropts.Targets = cfg.Targets
	rr := repair.Search(orig, initial, s.Kernel, valSuite, ropts)
	// One counter serves every ΔLOC render of this run: the original is
	// printed and line-indexed once instead of per metric.
	origLines := repair.NewLineCounter(orig)
	run.Compatible = rr.Compatible
	run.BehaviorOK = rr.BehaviorOK
	run.Improved = rr.Improved
	run.DeltaLOC = origLines.EditedLines(rr.Unit)
	run.HGMinutes = rr.Stats.VirtualMinutes()
	run.HGInvocations = rr.Stats.HLSInvocations
	run.HGCandidates = rr.Stats.CandidatesTried
	run.HGStyleRejects = rr.Stats.StyleRejections
	run.EditLog = rr.Stats.EditLog
	run.ValidationsTotal = len(valSuite)

	cfgHLS := hls.DefaultConfig(s.Kernel)
	run.RuntimeOriginMS = rr.Report.CPUMeanMS()
	run.RuntimeHGMS = rr.Report.FPGAMeanMS()

	// --- Manual version (Table 5) --------------------------------------
	manual := s.MustParseManual()
	mrep := difftest.Run(orig, manual, s.Kernel, cfgHLS, valSuite)
	run.ManualDeltaLOC = manualDelta(orig, manual)
	if mrep.Total > 0 && mrep.AllPass() {
		run.RuntimeManualMS = mrep.FPGAMeanMS()
		if run.RuntimeOriginMS == 0 {
			run.RuntimeOriginMS = mrep.CPUMeanMS()
		}
	}

	// --- HeteroRefactor (Table 5) --------------------------------------
	var hrTests []fuzz.TestCase
	if s.ExistingTests != nil {
		hrTests = s.ExistingTests()
	}
	hrRes := baselines.HeteroRefactor(orig, s.Kernel, capSuite(hrTests, cfg.ValidationCap))
	run.HRSucceeded = hrRes.Compatible && hrRes.BehaviorOK && s.HRSupported
	run.RuntimeHRMS = -1
	run.HRDeltaLOC = -1
	if run.HRSucceeded {
		hrRep := difftest.Run(orig, hrRes.Unit, s.Kernel, cfgHLS, valSuite)
		if hrRep.AllPass() {
			run.RuntimeHRMS = hrRep.FPGAMeanMS()
			run.HRDeltaLOC = origLines.EditedLines(hrRes.Unit)
		} else {
			run.HRSucceeded = false
		}
	}
	return run, nil
}

// manualDelta counts lines changed between original and manual versions:
// the symmetric difference of their line multisets (a coarse but honest
// stand-in for the paper's added-line count).
func manualDelta(orig, manual *cast.Unit) int {
	a := lineSet(cast.Print(orig))
	b := lineSet(cast.Print(manual))
	delta := 0
	for line, n := range b {
		if m := a[line]; n > m {
			delta += n - m
		}
	}
	return delta
}

func lineSet(src string) map[string]int {
	out := map[string]int{}
	for _, l := range strings.Split(src, "\n") {
		l = strings.TrimSpace(l)
		if l != "" {
			out[l]++
		}
	}
	return out
}

// validationSuite builds the repair-fitness suite: the corpus minimized
// to a coverage set cover (so every behaviour class keeps a witness),
// topped up with an even spread of the remainder to the cap.
func validationSuite(orig *cast.Unit, kernel string, tests []fuzz.TestCase, cfg Config) []fuzz.TestCase {
	min, err := fuzz.Minimize(orig, kernel, tests)
	if err != nil || len(min) == 0 {
		return capSuite(tests, cfg.ValidationCap)
	}
	if len(min) >= cfg.ValidationCap && cfg.ValidationCap > 0 {
		return capSuite(min, cfg.ValidationCap)
	}
	// Top up with spread extras for value diversity beyond pure coverage.
	extra := capSuite(tests, cfg.ValidationCap-len(min))
	return append(min, extra...)
}

// capSuite bounds a test suite, keeping an even spread.
func capSuite(tests []fuzz.TestCase, cap int) []fuzz.TestCase {
	if cap <= 0 || len(tests) <= cap {
		return tests
	}
	out := make([]fuzz.TestCase, 0, cap)
	step := float64(len(tests)) / float64(cap)
	for i := 0; i < cap; i++ {
		out = append(out, tests[int(float64(i)*step)])
	}
	return out
}

// RunAll executes all ten subjects, fanning out across CPUs (each
// subject's pipeline is independent and deterministic for a given seed).
func RunAll(cfg Config) ([]SubjectRun, error) {
	subs := subjects.All()
	runs := make([]SubjectRun, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, s := range subs {
		wg.Add(1)
		go func(i int, s subjects.Subject) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			runs[i], errs[i] = RunSubject(s, cfg)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return runs, err
		}
	}
	return runs, nil
}

// ---------------------------------------------------------------------------
// Figure 3

// Figure3 synthesizes the forum corpus and reports the measured error-type
// distribution.
func Figure3(cfg Config) forum.StudyResult {
	n := 1000
	if cfg.Quick {
		n = 300
	}
	return forum.Study(forum.Corpus(n, cfg.Seed))
}

// FormatFigure3 renders the pie-chart data as text.
func FormatFigure3(res forum.StudyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 3: HLS compatibility error types (%d posts, %.0f%% classifier agreement)\n",
		res.Total, 100*res.Accuracy)
	type row struct {
		c   hls.ErrorClass
		pct float64
	}
	var rows []row
	for c, p := range res.Percent {
		rows = append(rows, row{c, p})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pct > rows[j].pct })
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-26s %5.1f%%  %s\n", r.c, r.pct, bar(r.pct))
	}
	return sb.String()
}

func bar(pct float64) string {
	n := int(pct / 2)
	return strings.Repeat("#", n)
}
