package eval

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"github.com/hetero/heterogen/internal/baselines"
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/profile"
	"github.com/hetero/heterogen/internal/repair"
	"github.com/hetero/heterogen/internal/subjects"
)

// ---------------------------------------------------------------------------
// Table 3 — subjects and overall results

// FormatTable3 renders Table 3.
func FormatTable3(runs []SubjectRun) string {
	var sb strings.Builder
	sb.WriteString("Table 3: Subjects and overall results\n")
	sb.WriteString(fmt.Sprintf("%-4s %-24s %-14s %s\n", "ID", "Subject", "HLS Compat.", "Improved Perf?"))
	for _, r := range runs {
		comp := mark(r.Compatible && r.BehaviorOK)
		perf := mark(r.Improved)
		sb.WriteString(fmt.Sprintf("%-4s %-24s %-14s %s\n", r.ID, r.Name, comp, perf))
	}
	return sb.String()
}

func mark(b bool) string {
	if b {
		return "✓"
	}
	return "✗"
}

// ---------------------------------------------------------------------------
// Table 4 — generated tests

// FormatTable4 renders Table 4.
func FormatTable4(runs []SubjectRun) string {
	var sb strings.Builder
	sb.WriteString("Table 4: Generated tests (HG) vs existing tests\n")
	sb.WriteString(fmt.Sprintf("%-4s %10s %8s %7s | %8s %7s\n",
		"ID", "# Tests", "Time(m)", "Cov.", "# Exist", "Cov."))
	var sumTests int
	var sumCov float64
	for _, r := range runs {
		exN, exC := "N/A", "N/A"
		if r.ExistingCoverage >= 0 {
			exN = fmt.Sprintf("%d", r.ExistingCount)
			exC = fmt.Sprintf("%.0f%%", 100*r.ExistingCoverage)
		}
		sb.WriteString(fmt.Sprintf("%-4s %10d %8.0f %6.0f%% | %8s %7s\n",
			r.ID, r.TestsGenerated, r.GenMinutes, 100*r.Coverage, exN, exC))
		sumTests += r.TestsGenerated
		sumCov += r.Coverage
	}
	if len(runs) > 0 {
		sb.WriteString(fmt.Sprintf("avg  %10d %*s %6.0f%%\n",
			sumTests/len(runs), 8, "", 100*sumCov/float64(len(runs))))
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Table 5 — comparison against manual edits and HeteroRefactor

// FormatTable5 renders Table 5.
func FormatTable5(runs []SubjectRun) string {
	var sb strings.Builder
	sb.WriteString("Table 5: Comparison against manual edits and HeteroRefactor\n")
	sb.WriteString(fmt.Sprintf("%-4s %6s | %7s %6s %6s | %9s %9s %9s %9s\n",
		"ID", "LOC", "ΔManual", "ΔHR", "ΔHG", "Origin ms", "Manual ms", "HR ms", "HG ms"))
	var speedupHG, speedupManual float64
	var nPerf int
	for _, r := range runs {
		hrD, hrMS := "✗", "✗"
		if r.HRSucceeded {
			hrD = fmt.Sprintf("%d", r.HRDeltaLOC)
			hrMS = fmt.Sprintf("%.4f", r.RuntimeHRMS)
		}
		sb.WriteString(fmt.Sprintf("%-4s %6d | %7d %6s %6d | %9.4f %9.4f %9s %9.4f\n",
			r.ID, r.OriginalLOC, r.ManualDeltaLOC, hrD, r.DeltaLOC,
			r.RuntimeOriginMS, r.RuntimeManualMS, hrMS, r.RuntimeHGMS))
		if r.RuntimeHGMS > 0 && r.RuntimeOriginMS > 0 {
			speedupHG += r.RuntimeOriginMS / r.RuntimeHGMS
			nPerf++
		}
		if r.RuntimeManualMS > 0 && r.RuntimeOriginMS > 0 {
			speedupManual += r.RuntimeOriginMS / r.RuntimeManualMS
		}
	}
	if nPerf > 0 {
		sb.WriteString(fmt.Sprintf("mean speedup vs origin: HG %.2fx, Manual %.2fx\n",
			speedupHG/float64(nPerf), speedupManual/float64(nPerf)))
	}
	return sb.String()
}

// ---------------------------------------------------------------------------
// Figure 9 — ablation study

// AblationRun compares HeteroGen with the two downgraded configurations
// on one subject.
type AblationRun struct {
	ID string
	// Wall-clock (virtual minutes) for the same repair task.
	HGMinutes         float64
	WithoutDepMinutes float64
	WithoutDepOK      bool // false = failed to reach compatibility in 12h
	// Percentage of repair attempts that invoked the full HLS toolchain.
	HGInvokePct          float64
	WithoutCheckerPct    float64
	WithoutCheckerMin    float64
	HGCompatible         bool
	WithoutCheckerCompat bool
}

// RunAblation executes the Figure 9 comparison for one subject.
func RunAblation(s subjects.Subject, cfg Config) (AblationRun, error) {
	out := AblationRun{ID: s.ID}
	orig := s.MustParse()
	fopts := cfg.fuzzOptions()
	fopts.Cache = cfg.Cache
	camp, err := fuzz.Run(orig, s.Kernel, fopts)
	if err != nil {
		return out, err
	}
	valSuite := capSuite(camp.Tests, cfg.ValidationCap)
	initialOf := func() *cast.Unit {
		u := cast.CloneUnit(orig)
		if prof, err := profile.Generate(orig, s.Kernel, valSuite); err == nil {
			u = prof.Unit
		}
		return u
	}

	withWorkers := func(o repair.Options) repair.Options {
		o.Workers = cfg.Workers
		o.Cache = cfg.Cache
		return o
	}
	hg := repair.Search(orig, initialOf(), s.Kernel, valSuite, withWorkers(repair.DefaultOptions()))
	out.HGMinutes = hg.Stats.SecondsToCompatible / 60
	out.HGCompatible = hg.Compatible && hg.BehaviorOK
	if !out.HGCompatible {
		out.HGMinutes = hg.Stats.VirtualMinutes()
	}
	if hg.Stats.CandidatesTried > 0 {
		out.HGInvokePct = 100 * float64(hg.Stats.HLSInvocations-1) / float64(hg.Stats.CandidatesTried)
	}

	wd := repair.Search(orig, initialOf(), s.Kernel, valSuite, withWorkers(baselines.WithoutDependenceOptions()))
	out.WithoutDepOK = wd.Compatible && wd.BehaviorOK
	out.WithoutDepMinutes = wd.Stats.SecondsToCompatible / 60
	if !out.WithoutDepOK {
		out.WithoutDepMinutes = wd.Stats.VirtualMinutes()
	}

	wc := repair.Search(orig, initialOf(), s.Kernel, valSuite, withWorkers(baselines.WithoutCheckerOptions()))
	out.WithoutCheckerCompat = wc.Compatible && wc.BehaviorOK
	out.WithoutCheckerMin = wc.Stats.VirtualMinutes()
	if wc.Stats.CandidatesTried > 0 {
		out.WithoutCheckerPct = 100 * float64(wc.Stats.HLSInvocations-1) / float64(wc.Stats.CandidatesTried)
	}
	return out, nil
}

// RunAllAblations covers all ten subjects, in parallel.
func RunAllAblations(cfg Config) ([]AblationRun, error) {
	subs := subjects.All()
	runs := make([]AblationRun, len(subs))
	errs := make([]error, len(subs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for i, s := range subs {
		wg.Add(1)
		go func(i int, s subjects.Subject) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			runs[i], errs[i] = RunAblation(s, cfg)
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return runs, err
		}
	}
	return runs, nil
}

// FormatFigure9 renders the ablation data.
func FormatFigure9(runs []AblationRun) string {
	var sb strings.Builder
	sb.WriteString("Figure 9: Repair time and HLS invocations\n")
	sb.WriteString(fmt.Sprintf("%-4s %10s %14s %8s | %11s %13s\n",
		"ID", "HG (min)", "WithoutDep(m)", "speedup", "HG invoke%", "NoChecker %"))
	for _, r := range runs {
		wd := fmt.Sprintf("%.0f", r.WithoutDepMinutes)
		sp := "-"
		if !r.WithoutDepOK {
			wd = ">720 (fail)"
		} else if r.HGMinutes > 0 {
			sp = fmt.Sprintf("%.0fx", r.WithoutDepMinutes/r.HGMinutes)
		}
		sb.WriteString(fmt.Sprintf("%-4s %10.0f %14s %8s | %10.0f%% %12.0f%%\n",
			r.ID, r.HGMinutes, wd, sp, r.HGInvokePct, r.WithoutCheckerPct))
	}
	return sb.String()
}
