package forum

import (
	"testing"

	"github.com/hetero/heterogen/internal/hls"
)

func TestCorpusSizeAndProportions(t *testing.T) {
	posts := Corpus(1000, 1)
	if len(posts) != 1000 {
		t.Fatalf("corpus size %d", len(posts))
	}
	counts := map[hls.ErrorClass]int{}
	for _, p := range posts {
		counts[p.Truth]++
	}
	for c, perMille := range Figure3Proportions {
		want := perMille // of 1000
		got := counts[c]
		if got < want-10 || got > want+10 {
			t.Errorf("%s: %d posts, want ~%d", c, got, want)
		}
	}
}

func TestCorpusDeterministic(t *testing.T) {
	a := Corpus(500, 7)
	b := Corpus(500, 7)
	for i := range a {
		if a[i].Body != b[i].Body || a[i].Truth != b[i].Truth {
			t.Fatalf("corpus not deterministic at %d", i)
		}
	}
	c := Corpus(500, 8)
	same := 0
	for i := range a {
		if a[i].Body == c[i].Body {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestCorpusContainsTable1Posts(t *testing.T) {
	posts := Corpus(300, 1)
	found := map[int]bool{}
	for _, p := range posts {
		found[p.ID] = true
	}
	for _, want := range Table1Posts {
		if !found[want.ID] {
			t.Errorf("Table 1 post %d missing from corpus", want.ID)
		}
	}
}

func TestStudyClassifierAgreement(t *testing.T) {
	res := Study(Corpus(1000, 1))
	if res.Total != 1000 {
		t.Fatalf("total %d", res.Total)
	}
	if res.Accuracy < 0.95 {
		t.Errorf("classifier agreement %.2f too low", res.Accuracy)
	}
	if res.Unmatched > 50 {
		t.Errorf("too many unmatched posts: %d", res.Unmatched)
	}
	// Percentages sum to ~100.
	sum := 0.0
	for _, p := range res.Percent {
		sum += p
	}
	if sum < 99 || sum > 101 {
		t.Errorf("percentages sum to %.1f", sum)
	}
}

func TestStudyRankingMatchesFigure3(t *testing.T) {
	res := Study(Corpus(1000, 1))
	order := []hls.ErrorClass{
		hls.ClassUnsupportedType, hls.ClassTopFunction,
		hls.ClassDataflow, hls.ClassStructUnion, hls.ClassDynamicData,
	}
	for i := 1; i < len(order); i++ {
		if res.Percent[order[i-1]] < res.Percent[order[i]]-0.5 {
			t.Errorf("ranking violated: %s (%.1f%%) should be >= %s (%.1f%%)",
				order[i-1], res.Percent[order[i-1]], order[i], res.Percent[order[i]])
		}
	}
}

func TestTable1PostsClassifyToTheirTruth(t *testing.T) {
	res := Study(Table1Posts)
	if res.Accuracy != 1.0 {
		t.Errorf("the six Table 1 exemplars must classify perfectly, got %.2f", res.Accuracy)
	}
}
