// Package forum reproduces the paper's §5.1 study of 1,000 Xilinx HLS
// Q&A posts. The original corpus is proprietary forum content, so this
// package synthesizes a corpus whose ground-truth category proportions
// match the published Figure 3 exactly (25.7% unsupported data types,
// 19.8% top function, 16.1% dataflow optimization, 16.1% loop
// parallelization, 14.1% struct and union, 8.2% dynamic data structures),
// with message text drawn from per-class symptom templates — including
// the six representative posts of Table 1. The study then runs the same
// keyword classifier the repair engine uses and reports the measured
// distribution, which is what Figure 3 plots.
package forum

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/repair"
)

// Post is one synthesized forum post.
type Post struct {
	ID    int
	Title string
	Body  string
	// Truth is the ground-truth category the post was generated from.
	Truth hls.ErrorClass
}

// Figure3Proportions is the published distribution (per mille).
var Figure3Proportions = map[hls.ErrorClass]int{
	hls.ClassUnsupportedType: 257,
	hls.ClassTopFunction:     198,
	hls.ClassDataflow:        161,
	hls.ClassLoopParallel:    161,
	hls.ClassStructUnion:     141,
	hls.ClassDynamicData:     82,
}

// Table1Posts are the six representative posts of Table 1.
var Table1Posts = []Post{
	{ID: 729976, Truth: hls.ClassDynamicData,
		Title: "dynamic memory allocation/deallocation is not supported",
		Body:  "Allocating line_buf_a[WIDTH][cols] with cols unknown at compile time fails: ERROR [SYNCHK-31] dynamic memory allocation/deallocation is not supported and ERROR [SYNCHK-61] unsupported memory access on variable line_buf_a."},
	{ID: 752508, Truth: hls.ClassUnsupportedType,
		Title: "Error with fixed point design in vivado HLS",
		Body:  "The long double variable leads to ERROR: Call of overloaded 'pow()' is ambiguous. Needs type transformation followed by explicit type casting and operator overloading."},
	{ID: 595161, Truth: hls.ClassDataflow,
		Title: "dataflow directive",
		Body:  "Inserting the dataflow pragma leads to ERROR: Argument 'data' failed dataflow checking because the same input is passed to two simultaneous invocations."},
	{ID: 721719, Truth: hls.ClassLoopParallel,
		Title: "Vivado HLS loop unrolling option region",
		Body:  "Inserting dataflow pragma and unroll pragma with factor 50 fails the pre-synthesis step: ERROR [HLS-70] Pre-synthesis failed. Setting an explicit trip count and exploring factors fixes it."},
	{ID: 1117215, Truth: hls.ClassStructUnion,
		Title: "Using streams in objects does not synthesize in HLS 2020.1",
		Body:  "Struct leads to ERROR: Argument 'this' has an unsynthesizable struct type. Insert an explicit constructor and make the connecting stream static."},
	{ID: 810885, Truth: hls.ClassTopFunction,
		Title: "Cannot find the top function",
		Body:  "Incorrect configuration leads to ERROR: Cannot find the top function in the design. The clock, device name, or top function name is wrong."},
}

// bodyTemplates provides per-class symptom phrasings used to synthesize
// the remaining posts.
var bodyTemplates = map[hls.ErrorClass][]string{
	hls.ClassDynamicData: {
		"ERROR [SYNCHK-31] dynamic memory allocation/deallocation is not supported on variable buffer_%d",
		"Synthesizability check failed: recursive functions are not supported ('walk_%d')",
		"unsupported memory access on variable 'buf_%d' which is (or contains) an array with unknown size at compile time",
	},
	hls.ClassUnsupportedType: {
		"The long double accumulator in kernel_%d makes the overloaded operator ambiguous",
		"pointer 'cursor_%d' is not supported: pointers are only allowed on top-level interface ports",
		"Call of overloaded 'pow()' is ambiguous for the long double argument in filter_%d",
	},
	hls.ClassDataflow: {
		"ERROR: Argument 'data_%d' failed dataflow checking when passed to two processes",
		"The dataflow region rejects buffer_%d: a PIO section can only be consumed once",
	},
	hls.ClassLoopParallel: {
		"ERROR [XFORM-711] Array 'A_%d' failed dataflow checking: size is not a multiple of the partition factor",
		"Pre-synthesis failed after inserting the unroll pragma with factor %d",
		"unroll factor %d exceeds the loop trip count",
	},
	hls.ClassStructUnion: {
		"Argument 'this' has an unsynthesizable struct type 'If%d'",
		"The connecting stream 'tmp_%d' between struct instances must be static",
		"union U%d does not synthesize without an explicit constructor",
	},
	hls.ClassTopFunction: {
		"Cannot find the top function 'kern_%d' in the design",
		"Cannot find the top function: the config names device %d with the wrong data path",
	},
}

// Corpus synthesizes n posts (n >= len(Table1Posts)) whose ground-truth
// proportions match Figure3Proportions. Deterministic for a given seed.
func Corpus(n int, seed int64) []Post {
	rng := rand.New(rand.NewSource(seed))
	posts := append([]Post{}, Table1Posts...)

	// Remaining quota per class.
	counts := map[hls.ErrorClass]int{}
	for _, p := range Table1Posts {
		counts[p.Truth]++
	}
	var classes []hls.ErrorClass
	for _, c := range hls.AllClasses() {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })

	id := 100000
	for _, c := range classes {
		want := Figure3Proportions[c] * n / 1000
		for counts[c] < want {
			tmpl := bodyTemplates[c][rng.Intn(len(bodyTemplates[c]))]
			posts = append(posts, Post{
				ID:    id,
				Title: fmt.Sprintf("high level synthesis error (%s)", c),
				Body:  fmt.Sprintf(tmpl, rng.Intn(900)+10),
				Truth: c,
			})
			counts[c]++
			id++
		}
	}
	// Top up to exactly n with the largest class.
	for len(posts) < n {
		tmpl := bodyTemplates[hls.ClassUnsupportedType][0]
		posts = append(posts, Post{
			ID:    id,
			Title: "C synthesis error",
			Body:  fmt.Sprintf(tmpl, rng.Intn(900)+10),
			Truth: hls.ClassUnsupportedType,
		})
		id++
	}
	rng.Shuffle(len(posts), func(i, j int) { posts[i], posts[j] = posts[j], posts[i] })
	return posts
}

// StudyResult is the measured classification of a corpus.
type StudyResult struct {
	Total      int
	ByClass    map[hls.ErrorClass]int
	Accuracy   float64 // classifier agreement with ground truth
	Unmatched  int     // posts the keyword classifier could not place
	Percent    map[hls.ErrorClass]float64
	TruthMatch map[hls.ErrorClass]int
}

// Study classifies every post with the keyword classifier and tallies the
// distribution — the computation behind Figure 3.
func Study(posts []Post) StudyResult {
	res := StudyResult{
		Total:      len(posts),
		ByClass:    map[hls.ErrorClass]int{},
		Percent:    map[hls.ErrorClass]float64{},
		TruthMatch: map[hls.ErrorClass]int{},
	}
	correct := 0
	for _, p := range posts {
		got := repair.ClassifyMessage(p.Title + " " + p.Body)
		if got == hls.ClassNone {
			res.Unmatched++
			continue
		}
		res.ByClass[got]++
		if got == p.Truth {
			correct++
			res.TruthMatch[got]++
		}
	}
	classified := res.Total - res.Unmatched
	for c, n := range res.ByClass {
		if classified > 0 {
			res.Percent[c] = 100 * float64(n) / float64(classified)
		}
	}
	if res.Total > 0 {
		res.Accuracy = float64(correct) / float64(res.Total)
	}
	return res
}
