// Injection-disabled parity over the paper's evaluation subjects: a
// guarded pipeline with no injector must reproduce the unguarded run
// byte for byte — Source and JSONL trace — on P1–P10 (the acceptance
// bar for "guarding does not perturb the reproduction").
package chaos_test

import (
	"bytes"
	"testing"

	"github.com/hetero/heterogen/internal/core"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/repair"
	"github.com/hetero/heterogen/internal/subjects"
)

func TestGuardedSubjectsByteIdentical(t *testing.T) {
	ids := []string{"P1", "P3", "P6"}
	if !testing.Short() {
		ids = []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			s, err := subjects.ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			run := func(g *guard.Guard) (core.Result, []byte) {
				var buf bytes.Buffer
				tw := obs.NewTraceWriter(&buf)
				ro := repair.DefaultOptions()
				ro.MaxIterations = 12
				res, err := core.RunUnit(s.MustParse(), core.Options{
					Kernel: s.Kernel,
					Fuzz:   fuzz.Options{Seed: 1, MaxExecs: 120, Plateau: 50, TypedMutation: true},
					Repair: ro,
					Obs:    tw,
					Guard:  g,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := tw.Flush(); err != nil {
					t.Fatal(err)
				}
				return res, buf.Bytes()
			}
			plain, plainTrace := run(nil)
			guarded, guardedTrace := run(guard.New(guard.Options{}))
			if plain.Source != guarded.Source {
				t.Errorf("%s: guarded source diverged", id)
			}
			if !bytes.Equal(plainTrace, guardedTrace) {
				t.Errorf("%s: guarded trace diverged", id)
			}
		})
	}
}
