// Package chaos is the deterministic fault injector behind the guard
// layer's test harness: it plants panics, deadline overruns, corrupted
// stage outputs, and transient faults at internal/guard hook points on
// a seed-driven schedule.
//
// Determinism contract: an injection decision is a pure hash of
// (seed, stage, invocation key) — invocation keys are content-derived
// (printed candidate text, rendered test case), never call counters —
// so the same program reaches the same faults regardless of worker
// scheduling, Workers value, or prior cache state. Running the same
// seed twice degrades the pipeline identically; running with Rate 0 (or
// no injector at all) is byte-identical to an unguarded run.
package chaos
