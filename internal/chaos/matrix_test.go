// The chaos matrix: for every (stage, fault class) cell, a full
// pipeline run under Rate-1 injection at that cell must come back as a
// structured result — no process panic — with the failure recorded in
// metrics and trace and a minimized reproducer quarantined; transient
// cells must be fully absorbed by the retry policy, byte-identical to
// the fault-free baseline. `make chaos-smoke` runs exactly this test.
package chaos_test

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/chaos"
	"github.com/hetero/heterogen/internal/core"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/hls/sim"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/repair"
)

// matrixKernel needs repair work (a long double) and enough control
// flow that fuzzing, profiling, and difftest all have something to do.
const matrixKernel = `
int top(int in) {
    long double acc = in;
    for (int i = 0; i < 4; i++) {
        if (in > i) { acc = acc + i; }
    }
    return (int)acc;
}`

func matrixOptions(g *guard.Guard, sink obs.Observer) core.Options {
	ro := repair.DefaultOptions()
	ro.MaxIterations = 8
	// The capacity gate makes resource estimation part of every
	// candidate evaluation, so the estimate row of the matrix flows
	// through the candidate-failure path like the other stages.
	ro.Device = sim.XCVU9P
	return core.Options{
		Kernel: "top",
		Fuzz:   fuzz.Options{Seed: 1, MaxExecs: 60, Plateau: 30, TypedMutation: true},
		Repair: ro,
		Obs:    sink,
		Guard:  g,
	}
}

// tracedRun is one pipeline run with a JSONL trace attached.
func tracedRun(t *testing.T, g *guard.Guard) (core.Result, []byte, error) {
	t.Helper()
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	res, err := core.Run(matrixKernel, matrixOptions(g, tw))
	if ferr := tw.Flush(); ferr != nil {
		t.Fatal(ferr)
	}
	return res, buf.Bytes(), err
}

func TestChaosMatrix(t *testing.T) {
	baseline, baseTrace, err := tracedRun(t, nil)
	if err != nil {
		t.Fatalf("fault-free baseline failed: %v", err)
	}

	// Unit-input stages: the pipeline degrades and still returns a
	// Result. Parse and print — whose failures are hard errors by design
	// — are covered by TestChaosMatrixParseAndPrint below.
	stages := []guard.Stage{guard.StageStyle, guard.StageCheck,
		guard.StageEstimate, guard.StageDifftest, guard.StageInterp}
	for _, stage := range stages {
		for _, class := range guard.Classes() {
			stage, class := stage, class
			t.Run(string(stage)+"/"+string(class), func(t *testing.T) {
				t.Parallel()
				reg := obs.NewRegistry()
				dir := t.TempDir()
				g := guard.New(guard.Options{
					Injector:      chaos.Always(stage, class),
					QuarantineDir: dir,
					ReduceTrials:  40,
					Metrics:       reg,
				})
				res, trace, err := tracedRun(t, g)
				if err != nil {
					t.Fatalf("pipeline must degrade, not fail: %v", err)
				}
				if res.Source == "" {
					t.Fatal("no best-effort source returned")
				}

				if class == guard.ClassTransient {
					// One injected transient failure per invocation, one
					// retry needed: the run must be indistinguishable from
					// the baseline apart from retry counters.
					if res.Source != baseline.Source {
						t.Errorf("transient faults changed the output:\n%s", res.Source)
					}
					if !bytes.Equal(trace, baseTrace) {
						t.Error("transient faults changed the trace")
					}
					if reg.Counter("guard.retries."+string(stage)) == 0 {
						t.Error("no retries recorded for absorbed transient faults")
					}
					if n := countQuarantined(t, dir); n != 0 {
						t.Errorf("transient faults quarantined %d files", n)
					}
					return
				}

				label := string(stage) + "/" + string(class)
				if n := reg.Counter("guard.failures." + string(stage) + "." + string(class)); n == 0 {
					t.Errorf("no guard.failures metric for %s", label)
				}
				if !strings.Contains(string(trace), `"failure":"`+label+`"`) {
					t.Errorf("trace carries no %s stage-failure event", label)
				}
				if n := countQuarantined(t, dir); n == 0 {
					t.Errorf("no quarantined reproducer for %s", label)
				} else if !hasReproducer(t, dir, fmt.Sprintf("%s-%s-", stage, class)) {
					t.Errorf("quarantine dir lacks a %s-%s-*.c reproducer pair", stage, class)
				}
			})
		}
	}
}

// TestChaosMatrixParseAndPrint covers the two stages whose failures are
// hard errors: without a parse there is no unit, without a print there
// is no HLS source. Both must surface as typed *guard.StageFailure
// errors, never as a process panic.
func TestChaosMatrixParseAndPrint(t *testing.T) {
	for _, stage := range []guard.Stage{guard.StageParse, guard.StagePrint} {
		for _, class := range []guard.Class{guard.ClassPanic, guard.ClassDeadline, guard.ClassCorrupt} {
			g := guard.New(guard.Options{Injector: chaos.Always(stage, class)})
			_, err := core.Run(matrixKernel, matrixOptions(g, nil))
			if err == nil {
				t.Fatalf("%s/%s: want a hard error", stage, class)
			}
			var sf *guard.StageFailure
			if !errors.As(err, &sf) {
				t.Fatalf("%s/%s: error is not a StageFailure: %v", stage, class, err)
			}
			if sf.Stage != stage || sf.Class != class || !sf.Injected {
				t.Errorf("%s/%s: classified as %+v", stage, class, sf)
			}
		}
	}
}

// TestGuardWithoutInjectionIsByteIdentical is the "do no harm" half of
// the acceptance bar: with injection disabled, a guarded run — nil
// guard, zero-options guard, or a Rate-0 injector — produces the same
// Source and the same trace bytes as the unguarded pipeline.
func TestGuardWithoutInjectionIsByteIdentical(t *testing.T) {
	baseline, baseTrace, err := tracedRun(t, nil)
	if err != nil {
		t.Fatal(err)
	}
	variants := map[string]*guard.Guard{
		"zero-options":    guard.New(guard.Options{}),
		"rate-0-injector": guard.New(guard.Options{Injector: chaos.New(chaos.Options{Seed: 1, Rate: 0})}),
	}
	for name, g := range variants {
		res, trace, err := tracedRun(t, g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Source != baseline.Source {
			t.Errorf("%s: source diverged from the unguarded run", name)
		}
		if !bytes.Equal(trace, baseTrace) {
			t.Errorf("%s: trace diverged from the unguarded run", name)
		}
	}
}

func countQuarantined(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}

func hasReproducer(t *testing.T, dir, prefix string) bool {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var c, sidecar bool
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), prefix) {
			if strings.HasSuffix(e.Name(), ".c") {
				c = true
			}
			if strings.HasSuffix(e.Name(), ".json") {
				sidecar = true
			}
		}
	}
	return c && sidecar
}
