package chaos

import (
	"flag"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/guard"
)

func TestScheduleIsDeterministic(t *testing.T) {
	a := New(Options{Seed: 7, Rate: 0.5})
	b := New(Options{Seed: 7, Rate: 0.5})
	keys := []string{"alpha", "beta", "gamma", "void kernel(int n) { }", ""}
	for _, stage := range guard.Stages() {
		for _, key := range keys {
			fa := a.Fault(stage, key, 1)
			fb := b.Fault(stage, key, 1)
			if fa != fb {
				t.Fatalf("%s/%q: two injectors with the same seed disagree: %+v vs %+v", stage, key, fa, fb)
			}
			if again := a.Fault(stage, key, 1); again != fa {
				t.Fatalf("%s/%q: same injector, same inputs, different fault", stage, key)
			}
		}
	}
}

func TestSeedChangesSchedule(t *testing.T) {
	a := New(Options{Seed: 1, Rate: 0.5})
	b := New(Options{Seed: 2, Rate: 0.5})
	diff := 0
	for i := 0; i < 64; i++ {
		key := string(rune('a' + i%26))
		for _, stage := range guard.Stages() {
			if a.Fault(stage, key+key, 1) != b.Fault(stage, key+key, 1) {
				diff++
			}
		}
	}
	if diff == 0 {
		t.Fatal("seeds 1 and 2 produced identical schedules over 448 decisions")
	}
}

func TestRateZeroAndNilInjectNothing(t *testing.T) {
	var nilInj *Injector
	for _, inj := range []*Injector{New(Options{Seed: 1, Rate: 0}), nilInj} {
		for _, stage := range guard.Stages() {
			if f := inj.Fault(stage, "key", 1); f.Class != "" {
				t.Fatalf("rate-0/nil injector planted %+v", f)
			}
		}
	}
}

func TestAlwaysInjectsItsCell(t *testing.T) {
	inj := Always(guard.StageCheck, guard.ClassCorrupt)
	for i := 0; i < 16; i++ {
		f := inj.Fault(guard.StageCheck, string(rune('a'+i)), 1)
		if f.Class != guard.ClassCorrupt {
			t.Fatalf("Always cell missed on key %d: %+v", i, f)
		}
	}
	if f := inj.Fault(guard.StageStyle, "x", 1); f.Class != "" {
		t.Fatalf("Always leaked outside its stage: %+v", f)
	}
}

func TestTransientRecoversAfterConfiguredAttempts(t *testing.T) {
	inj := New(Options{Rate: 1, Kinds: []guard.Class{guard.ClassTransient}, TransientFailures: 2})
	if f := inj.Fault(guard.StageCheck, "k", 1); f.Class != guard.ClassTransient {
		t.Fatalf("attempt 1: %+v", f)
	}
	if f := inj.Fault(guard.StageCheck, "k", 2); f.Class != guard.ClassTransient {
		t.Fatalf("attempt 2: %+v", f)
	}
	if f := inj.Fault(guard.StageCheck, "k", 3); f.Class != "" {
		t.Fatalf("attempt 3 should recover: %+v", f)
	}
}

func TestRateIsApproximatelyHonored(t *testing.T) {
	inj := New(Options{Seed: 3, Rate: 0.25})
	fired := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if f := inj.Fault(guard.StageInterp, string(rune(i))+"|"+string(rune(i*7)), 1); f.Class != "" {
			fired++
		}
	}
	got := float64(fired) / n
	if got < 0.18 || got > 0.32 {
		t.Fatalf("rate 0.25 fired %.3f of the time", got)
	}
}

func TestFlagsBuild(t *testing.T) {
	var f Flags
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if g := f.Build(nil, nil); g != nil {
		t.Fatal("all-default flags must build a nil guard")
	}
	if err := fs.Parse([]string{"-chaos", "0.5", "-chaos-seed", "9", "-stage-deadline", "2s"}); err != nil {
		t.Fatal(err)
	}
	g := f.Build(nil, nil)
	if g == nil {
		t.Fatal("configured flags built a nil guard")
	}
	if !g.Injecting() {
		t.Fatal("chaos rate did not install an injector")
	}
	if f.StageDeadline != 2*time.Second {
		t.Fatalf("StageDeadline = %s", f.StageDeadline)
	}
}
