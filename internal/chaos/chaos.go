package chaos

import (
	"flag"
	"fmt"
	"hash/fnv"
	"time"

	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/obs"
)

// Options configures an injector.
type Options struct {
	// Seed drives the schedule: same seed, same faults.
	Seed int64
	// Rate is the per-invocation fault probability in [0, 1].
	Rate float64
	// Stages restricts injection to the listed hook points (nil = all).
	Stages []guard.Stage
	// Kinds restricts the planted failure classes (nil = all).
	Kinds []guard.Class
	// TransientFailures is how many attempts an injected transient fault
	// fails before succeeding (default 1, so a guard with at least one
	// retry survives it).
	TransientFailures int
}

// Injector implements guard.Injector over a seeded hash schedule.
type Injector struct {
	opts   Options
	stages map[guard.Stage]bool // nil means every stage
	kinds  []guard.Class
}

// New builds an injector.
func New(opts Options) *Injector {
	inj := &Injector{opts: opts, kinds: opts.Kinds}
	if len(opts.Stages) > 0 {
		inj.stages = make(map[guard.Stage]bool, len(opts.Stages))
		for _, s := range opts.Stages {
			inj.stages[s] = true
		}
	}
	if len(inj.kinds) == 0 {
		inj.kinds = guard.Classes()
	}
	return inj
}

// Always injects the given class at the given stage on every invocation
// — the chaos matrix's (stage × class) cell.
func Always(stage guard.Stage, class guard.Class) *Injector {
	return New(Options{Rate: 1, Stages: []guard.Stage{stage}, Kinds: []guard.Class{class}})
}

// Fault implements guard.Injector.
func (i *Injector) Fault(stage guard.Stage, key string, attempt int) guard.Fault {
	if i == nil || i.opts.Rate <= 0 {
		return guard.Fault{}
	}
	if i.stages != nil && !i.stages[stage] {
		return guard.Fault{}
	}
	if i.opts.Rate < 1 {
		// Top 53 bits of the hash → uniform float in [0, 1).
		if float64(i.hash("fire", stage, key)>>11)/float64(1<<53) >= i.opts.Rate {
			return guard.Fault{}
		}
	}
	class := i.kinds[int(i.hash("kind", stage, key)%uint64(len(i.kinds)))]
	if class == guard.ClassTransient {
		n := i.opts.TransientFailures
		if n <= 0 {
			n = 1
		}
		if attempt > n {
			return guard.Fault{} // the "environment" recovered; the retry succeeds
		}
	}
	return guard.Fault{Class: class,
		Detail: fmt.Sprintf("chaos: injected %s at %s (seed %d)", class, stage, i.opts.Seed)}
}

// hash folds the schedule inputs into 64 bits. The purpose tag keeps
// the fire decision and the class pick independent.
func (i *Injector) hash(purpose string, stage guard.Stage, key string) uint64 {
	h := fnv.New64a()
	var b [8]byte
	for n := 0; n < 8; n++ {
		b[n] = byte(uint64(i.opts.Seed) >> (8 * n))
	}
	h.Write(b[:])
	h.Write([]byte(purpose))
	h.Write([]byte{0})
	h.Write([]byte(stage))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// Flags bundles the containment and chaos knobs the five CLIs expose,
// so each binary registers the same flag vocabulary with four lines.
type Flags struct {
	StageDeadline time.Duration
	InterpSteps   int64
	QuarantineDir string
	Rate          float64
	Seed          int64
}

// Register installs the shared flags on fs (normally flag.CommandLine).
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.DurationVar(&f.StageDeadline, "stage-deadline", 0,
		"wall-clock deadline per guarded stage invocation (0 disables)")
	fs.Int64Var(&f.InterpSteps, "interp-steps", 0,
		"interpreter step budget for execution stages (0 = package defaults)")
	fs.StringVar(&f.QuarantineDir, "quarantine-dir", "",
		"directory for minimized reproducers of contained stage failures (empty disables)")
	fs.Float64Var(&f.Rate, "chaos", 0,
		"deterministic fault-injection rate in [0,1] (0 disables; testing only)")
	fs.Int64Var(&f.Seed, "chaos-seed", 1,
		"seed for the chaos injection schedule")
}

// Build assembles the guard the flags describe, or nil when every knob
// is off (a nil guard still contains panics at the built-in backstops).
func (f *Flags) Build(metrics *obs.Registry, warn func(string)) *guard.Guard {
	if f.StageDeadline == 0 && f.InterpSteps == 0 && f.QuarantineDir == "" && f.Rate == 0 {
		return nil
	}
	opts := guard.Options{
		StageDeadline: f.StageDeadline,
		InterpSteps:   f.InterpSteps,
		QuarantineDir: f.QuarantineDir,
		Metrics:       metrics,
		Warn:          warn,
	}
	if f.Rate > 0 {
		opts.Injector = New(Options{Seed: f.Seed, Rate: f.Rate})
	}
	return guard.New(opts)
}
