// Package conform is the end-to-end conformance harness over generated
// programs (internal/progen): for each seed it builds a kernel with a
// known set of planted HLS violations and asserts, stage by stage, that
// the pipeline honours its contracts —
//
//  1. clean:     the violation-free twin passes the checker with zero
//     diagnostics (no false positives on the supported subset);
//  2. roundtrip: printing is stable (print → parse → print is identity);
//  3. oracle:    the checker flags every planted violation's class;
//  4. pipeline:  the repair search converges to a synthesizable
//     candidate whose behaviour matches the CPU interpreter on the
//     fuzzed corpus (differential testing);
//  5. parity:    disabled-vs-cold-vs-warm evaluation cache runs produce
//     byte-identical traces and verdicts (on a deterministic subset of
//     seeds — three full pipeline runs each).
//
// Any failed assertion is delta-debugged down to a minimal reproducer
// (progen.Reduce) and written, with its seed and stage, to a corpus
// directory (testdata/conform/) so escaped bugs become permanent
// regression tests — Replay re-asserts a committed reproducer.
package conform
