package conform

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
	"github.com/hetero/heterogen/internal/progen"
)

func smallCount(t *testing.T, full, short int) int {
	if testing.Short() {
		return short
	}
	return full
}

// A batch of generated programs passes every stage: clean twins are
// checker-clean, all planted violations are flagged, repair converges,
// and parity holds on the sampled seeds.
func TestRunPasses(t *testing.T) {
	n := smallCount(t, 15, 5)
	rep, err := Run(Options{Seed: 1, Count: n, ParityEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		for _, f := range rep.Failures {
			t.Errorf("seed %d stage %s: %s", f.Seed, f.Stage, f.Detail)
		}
		t.Fatalf("%d conformance failures", len(rep.Failures))
	}
	if rep.Programs != n || rep.CleanOK != n || rep.Converged != n {
		t.Fatalf("inconsistent counts: %s", rep.Summary())
	}
	if rep.Violations == 0 || rep.Flagged != rep.Violations {
		t.Fatalf("oracle counts wrong: %s", rep.Summary())
	}
	if want := (n + 4) / 5; rep.ParityOK != want {
		t.Fatalf("parity_ok = %d, want %d", rep.ParityOK, want)
	}
}

// Two identical runs produce byte-identical summaries — the acceptance
// criterion behind `hgconform -seed 1 -n 100` determinism.
func TestRunDeterministic(t *testing.T) {
	opts := Options{Seed: 40, Count: smallCount(t, 10, 4), ParityEvery: 5}
	a, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary() != b.Summary() {
		t.Fatalf("summaries differ:\n%s\n%s", a.Summary(), b.Summary())
	}
}

// CheckOnly stops after the oracle stage: no convergence or parity
// counts, much faster.
func TestCheckOnly(t *testing.T) {
	rep, err := Run(Options{Seed: 1, Count: 25, CheckOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("failures in check-only run: %s", rep.Summary())
	}
	if rep.Converged != 0 || rep.ParityOK != 0 {
		t.Fatalf("check-only ran later stages: %s", rep.Summary())
	}
	if rep.Flagged != rep.Violations || rep.Violations == 0 {
		t.Fatalf("oracle counts wrong: %s", rep.Summary())
	}
}

// Cancellation between seeds returns the partial report and an error.
func TestRunContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunContext(ctx, Options{Seed: 1, Count: 50, CheckOnly: true})
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if rep.Programs != 0 {
		t.Fatalf("pre-cancelled run processed %d programs", rep.Programs)
	}
}

// The failure path: minimization must bring the reproducer to at most
// 25% of the original AST node count, and the reproducer file must be
// written with a parseable metadata header. Exercised directly through
// the harness (generated programs currently pass all stages, so a
// synthetic predicate stands in for a checker bug).
func TestFailurePathWritesReducedReproducer(t *testing.T) {
	dir := t.TempDir()
	h := &harness{opts: Options{OutDir: dir}.withDefaults(), rep: &Report{}}
	p := progen.MustGenerate(progen.Options{Seed: 11, Kinds: []progen.Kind{progen.KindMalloc}})
	v := p.Planted[0]
	h.fail(11, p.Unit, Failure{
		Seed: 11, Stage: "oracle", Kind: v.Kind, Subject: v.Subject,
		Detail: "synthetic failure for the reducer path",
	}, 0, func(u *cast.Unit) bool {
		ru, ok := reparse(u)
		return ok && progen.Present(ru, v)
	})

	if len(h.rep.Failures) != 1 {
		t.Fatalf("recorded %d failures, want 1", len(h.rep.Failures))
	}
	f := h.rep.Failures[0]
	if f.ReducedNodes*4 > f.OriginalNodes {
		t.Fatalf("reduced to %d of %d nodes, want <= 25%%", f.ReducedNodes, f.OriginalNodes)
	}
	if f.Path == "" {
		t.Fatal("no reproducer path recorded")
	}
	data, err := os.ReadFile(f.Path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	for _, want := range []string{"seed=11", "stage=oracle", "kind=malloc", "hgconform reproducer"} {
		if !strings.Contains(text, want) {
			t.Errorf("reproducer header missing %q:\n%s", want, text)
		}
	}
	u, err := cparser.Parse(text)
	if err != nil {
		t.Fatalf("reproducer does not parse: %v", err)
	}
	if !progen.Present(u, v) {
		t.Fatal("reproducer lost the planted construct")
	}

	// The checker does flag malloc, so the recorded failure is "fixed"
	// from Replay's point of view: replaying must succeed.
	if err := Replay(f.Path); err != nil {
		t.Fatalf("Replay on a fixed failure: %v", err)
	}
}

// Replay catches a reproducer whose bug has come back: a clean-stage
// file containing a violation makes the checker report diagnostics.
func TestReplayDetectsRegression(t *testing.T) {
	p := progen.MustGenerate(progen.Options{Seed: 11, Kinds: []progen.Kind{progen.KindMalloc}})
	if check.Run(p.Unit, hls.DefaultConfig("kernel")).OK {
		t.Fatal("test premise broken: malloc program passes the checker")
	}
	path := filepath.Join(t.TempDir(), "seed11_clean.c")
	src := "// seed=11 stage=clean\n" + cast.Print(p.Unit)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := Replay(path); err == nil {
		t.Fatal("Replay accepted a clean-stage reproducer that still has diagnostics")
	}
}

// Replay rejects malformed reproducers instead of panicking.
func TestReplayMalformed(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"nostage.c":  "// seed=1\nint kernel(int a[4], int s, int out[4]) { return s; }\n",
		"badstage.c": "// seed=1 stage=bogus\nint kernel(int a[4], int s, int out[4]) { return s; }\n",
		"badkind.c":  "// seed=1 stage=oracle kind=bogus subject=x\nint kernel(int a[4], int s, int out[4]) { return s; }\n",
		"nosrc.c":    "// seed=1 stage=roundtrip\n%%% not c at all\n",
	}
	for name, content := range cases {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := Replay(path); err == nil {
			t.Errorf("%s: Replay accepted a malformed reproducer", name)
		}
	}
	if err := Replay(filepath.Join(dir, "absent.c")); err == nil {
		t.Error("Replay accepted a missing file")
	}
}

// The committed corpus stays green: every reproducer under
// testdata/conform must replay (its recorded bug must stay fixed).
func TestReplayCorpus(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "conform")
	if err := ReplayDir(dir); err != nil {
		t.Fatal(err)
	}
}
