package conform

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/core"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/progen"
	"github.com/hetero/heterogen/internal/repair"
)

// Options configures a conformance run. The zero value checks 100
// programs from seed 1 with default budgets.
type Options struct {
	// Seed is the first generator seed (default 1); Count is how many
	// consecutive seeds to check (default 100).
	Seed  int64
	Count int
	// MaxViolations bounds planted kinds per program (progen default).
	MaxViolations int
	// CheckOnly stops after the checker-oracle stage — no fuzzing,
	// repair, or parity (fast sweep mode).
	CheckOnly bool
	// ParityEvery runs the cache/trace-parity stage on every k-th seed
	// (default 10; < 0 disables). Parity costs three pipeline runs.
	ParityEvery int
	// FuzzExecs / MaxIterations are the per-program fuzz and repair
	// budgets (defaults 150 and 32 — small, since generated kernels
	// are a few dozen lines).
	FuzzExecs     int
	MaxIterations int
	// OutDir, when non-empty, receives a minimized reproducer file for
	// every failure.
	OutDir string
	// TraceDir, when non-empty, retains each seed's stage-4 pipeline
	// trace as seed-<n>.jsonl — deterministic JSONL that hgstat ingests.
	// Only seeds that reach the pipeline stage leave a trace.
	TraceDir string
	// ReduceTrials caps the reducer's predicate budget per failure
	// (progen default; pipeline-stage reductions use a tenth of it,
	// since each trial is a full pipeline run).
	ReduceTrials int
	// Guard, when non-nil, contains stage failures inside the pipeline
	// runs instead of crashing the harness. With injection disabled the
	// report is bit-identical with or without it.
	Guard *guard.Guard
	// Targets, when set, runs each seed's pipeline stage against this
	// HLS target set (core.Options.Targets), so conformance sweeps
	// exercise the multi-target fitness and Pareto paths too. Empty
	// keeps the classic single-default-target pipeline.
	Targets []hls.Target
}

func (o Options) withDefaults() Options {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Count <= 0 {
		o.Count = 100
	}
	if o.ParityEvery == 0 {
		o.ParityEvery = 10
	}
	if o.FuzzExecs <= 0 {
		o.FuzzExecs = 150
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 32
	}
	if o.ReduceTrials <= 0 {
		o.ReduceTrials = progen.DefaultMaxTrials
	}
	return o
}

// Failure is one failed assertion, minimized.
type Failure struct {
	Seed  int64
	Stage string // clean | roundtrip | oracle | pipeline | parity | generate | trace
	// Kind/Subject identify the planted violation for oracle failures
	// (empty otherwise).
	Kind    progen.Kind
	Subject string
	Detail  string
	// OriginalNodes/ReducedNodes measure the shrink (AST node counts).
	OriginalNodes int
	ReducedNodes  int
	// Source is the minimized reproducer; Path is where it was written
	// (empty when Options.OutDir is unset).
	Source string
	Path   string
}

// Report is the outcome of a conformance run. All fields are pure
// functions of Options — no wall-clock, no map order — so Summary is
// byte-identical across runs.
type Report struct {
	Seed  int64
	Count int
	// Programs is how many seeds were fully processed (== Count unless
	// the context was cancelled).
	Programs int
	// CleanOK counts violation-free twins the checker passed.
	CleanOK int
	// Violations / Flagged count planted violations and how many the
	// checker flagged with the right class.
	Violations int
	Flagged    int
	// Converged counts programs whose repair reached a compatible,
	// behaviour-preserving version (CheckOnly skips this stage).
	Converged int
	// ParityOK counts seeds whose three-way cache parity held.
	ParityOK int
	Failures []Failure
}

// OK reports a fully passing run.
func (r Report) OK() bool { return len(r.Failures) == 0 }

// Summary renders the deterministic one-line verdict.
func (r Report) Summary() string {
	return fmt.Sprintf(
		"hgconform seeds=[%d,%d] programs=%d clean_ok=%d violations=%d flagged=%d converged=%d parity_ok=%d failures=%d",
		r.Seed, r.Seed+int64(r.Count)-1, r.Programs, r.CleanOK,
		r.Violations, r.Flagged, r.Converged, r.ParityOK, len(r.Failures))
}

// Run executes the conformance harness.
func Run(opts Options) (Report, error) {
	return RunContext(context.Background(), opts)
}

// RunContext is Run with cooperative cancellation between seeds; the
// partial Report is valid alongside the ctx error.
func RunContext(ctx context.Context, opts Options) (Report, error) {
	o := opts.withDefaults()
	rep := Report{Seed: o.Seed, Count: o.Count}
	if o.TraceDir != "" {
		if err := os.MkdirAll(o.TraceDir, 0o755); err != nil {
			return rep, fmt.Errorf("conform: trace dir: %w", err)
		}
	}
	h := &harness{opts: o, rep: &rep}
	for i := 0; i < o.Count; i++ {
		if err := ctx.Err(); err != nil {
			return rep, fmt.Errorf("conform: cancelled after %d programs: %w", rep.Programs, err)
		}
		h.checkSeed(ctx, o.Seed+int64(i))
		rep.Programs++
	}
	return rep, nil
}

type harness struct {
	opts Options
	rep  *Report
}

func (h *harness) cfg() hls.Config { return hls.DefaultConfig("kernel") }

// pipeline runs the full five-stage pipeline with harness budgets.
func (h *harness) pipeline(ctx context.Context, u *cast.Unit, kernel string,
	o obs.Observer, c *evalcache.Cache) (core.Result, error) {
	fo := fuzz.DefaultOptions()
	fo.MaxExecs = h.opts.FuzzExecs
	fo.Plateau = h.opts.FuzzExecs / 2
	ro := repair.DefaultOptions()
	ro.MaxIterations = h.opts.MaxIterations
	return core.RunUnitContext(ctx, cast.CloneUnit(u), core.Options{
		Kernel: kernel, Fuzz: fo, Repair: ro, Obs: o, Cache: c,
		Guard: h.opts.Guard, Targets: h.opts.Targets,
	})
}

func (h *harness) checkSeed(ctx context.Context, seed int64) {
	// Stage 0: generation itself (a generator inconsistency is a bug).
	p, err := progen.Generate(progen.Options{Seed: seed, MaxViolations: h.opts.MaxViolations})
	if err != nil {
		h.rep.Failures = append(h.rep.Failures, Failure{
			Seed: seed, Stage: "generate", Detail: err.Error()})
		return
	}

	// Stage 1: the violation-free twin must be checker-clean.
	clean, err := progen.Generate(progen.Options{Seed: seed, Clean: true})
	if err != nil {
		h.rep.Failures = append(h.rep.Failures, Failure{
			Seed: seed, Stage: "generate", Detail: "clean twin: " + err.Error()})
	} else if crep := check.Run(clean.Unit, h.cfg()); !crep.OK {
		h.fail(seed, clean.Unit, Failure{
			Seed: seed, Stage: "clean",
			Detail: fmt.Sprintf("checker reports %d diagnostics on a violation-free program (first: %s)",
				len(crep.Diags), crep.Diags[0].Code),
		}, h.opts.ReduceTrials, func(u *cast.Unit) bool {
			ru, ok := reparse(u)
			return ok && !check.Run(ru, h.cfg()).OK
		})
	} else {
		h.rep.CleanOK++
	}

	// Stage 2: printing is stable.
	s1 := cast.Print(p.Unit)
	u2, perr := cparser.Parse(s1)
	if perr != nil || cast.Print(u2) != s1 {
		detail := "print -> parse -> print differs"
		if perr != nil {
			detail = "printed source does not re-parse: " + perr.Error()
		}
		h.fail(seed, p.Unit, Failure{Seed: seed, Stage: "roundtrip", Detail: detail},
			h.opts.ReduceTrials, func(u *cast.Unit) bool {
				s := cast.Print(u)
				ru, err := cparser.Parse(s)
				return err != nil || cast.Print(ru) != s
			})
		return
	}

	// Stage 3: the checker flags every planted violation's class.
	rep := check.Run(p.Unit, h.cfg())
	oracleOK := true
	for _, v := range p.Planted {
		h.rep.Violations++
		if rep.HasClass(v.Class) {
			h.rep.Flagged++
			continue
		}
		oracleOK = false
		v := v
		h.fail(seed, p.Unit, Failure{
			Seed: seed, Stage: "oracle", Kind: v.Kind, Subject: v.Subject,
			Detail: fmt.Sprintf("planted %s (%s) not flagged as %s", v.Kind, v.Subject, v.Class),
		}, h.opts.ReduceTrials, func(u *cast.Unit) bool {
			ru, ok := reparse(u)
			return ok && progen.Present(ru, v) && !check.Run(ru, h.cfg()).HasClass(v.Class)
		})
	}
	if h.opts.CheckOnly || !oracleOK {
		return
	}

	// Stage 4: the repair loop converges and the repaired HLS-C agrees
	// with the CPU interpreter on the fuzzed corpus. With TraceDir set
	// the run is traced; the trace is wall-free JSONL, so retention
	// changes no pipeline behaviour and the file is byte-deterministic.
	var tobs obs.Observer
	var tbuf bytes.Buffer
	var tw *obs.TraceWriter
	if h.opts.TraceDir != "" {
		tw = obs.NewTraceWriter(&tbuf)
		tobs = obs.Tag(tw, fmt.Sprintf("seed-%d", seed))
	}
	res, rerr := h.pipeline(ctx, p.Unit, p.Kernel, tobs, nil)
	if tw != nil {
		if err := tw.Flush(); err == nil {
			path := filepath.Join(h.opts.TraceDir, fmt.Sprintf("seed-%d.jsonl", seed))
			if werr := os.WriteFile(path, tbuf.Bytes(), 0o644); werr != nil {
				h.rep.Failures = append(h.rep.Failures, Failure{
					Seed: seed, Stage: "trace", Detail: "retention: " + werr.Error()})
			}
		}
	}
	if rerr != nil || !res.Compatible || !res.BehaviorOK {
		detail := fmt.Sprintf("compat=%v behavior=%v", res.Compatible, res.BehaviorOK)
		if rerr != nil {
			detail = "pipeline error: " + rerr.Error()
		} else if len(res.Repair.Remaining) > 0 {
			d := res.Repair.Remaining[0]
			detail += fmt.Sprintf(" first-remaining=[%s %s '%s']", d.Code, d.Class, d.Subject)
		}
		h.fail(seed, p.Unit, Failure{Seed: seed, Stage: "pipeline", Detail: detail},
			h.opts.ReduceTrials/10, func(u *cast.Unit) bool {
				ru, ok := reparse(u)
				if !ok || ru.Func(p.Kernel) == nil {
					return false
				}
				r, err := h.pipeline(ctx, ru, p.Kernel, nil, nil)
				return err != nil || !r.Compatible || !r.BehaviorOK
			})
		return
	}
	h.rep.Converged++

	// Stage 5: cache/trace parity on every k-th seed.
	if h.opts.ParityEvery > 0 && (seed-h.rep.Seed)%int64(h.opts.ParityEvery) == 0 {
		if detail := h.parityViolation(ctx, p.Unit, p.Kernel); detail != "" {
			h.fail(seed, p.Unit, Failure{Seed: seed, Stage: "parity", Detail: detail},
				h.opts.ReduceTrials/10, func(u *cast.Unit) bool {
					ru, ok := reparse(u)
					if !ok || ru.Func(p.Kernel) == nil {
						return false
					}
					return h.parityViolation(ctx, ru, p.Kernel) != ""
				})
		} else {
			h.rep.ParityOK++
		}
	}
}

// parityViolation runs the pipeline three ways — cache disabled, cold
// cache, warm cache — with tracing on, and reports the first parity
// break ("" when parity holds): traces must be byte-identical and
// verdict summaries identical bar cache statistics.
func (h *harness) parityViolation(ctx context.Context, u *cast.Unit, kernel string) string {
	run := func(c *evalcache.Cache) (string, string, error) {
		var buf bytes.Buffer
		tw := obs.NewTraceWriter(&buf)
		res, err := h.pipeline(ctx, u, kernel, tw, c)
		if err != nil {
			return "", "", err
		}
		if err := tw.Flush(); err != nil {
			return "", "", err
		}
		// Cache statistics are excluded from the parity contract.
		summary, _, _ := strings.Cut(res.Summary(), " cache=")
		return buf.String(), summary, nil
	}
	t0, s0, err := run(nil)
	if err != nil {
		return "uncached run: " + err.Error()
	}
	cache, err := evalcache.New(evalcache.Options{})
	if err != nil {
		return "cache: " + err.Error()
	}
	t1, s1, err := run(cache)
	if err != nil {
		return "cold-cache run: " + err.Error()
	}
	t2, s2, err := run(cache)
	if err != nil {
		return "warm-cache run: " + err.Error()
	}
	switch {
	case t0 != t1:
		return fmt.Sprintf("trace differs between disabled and cold cache (%d vs %d bytes)", len(t0), len(t1))
	case t1 != t2:
		return fmt.Sprintf("trace differs between cold and warm cache (%d vs %d bytes)", len(t1), len(t2))
	case s0 != s1:
		return fmt.Sprintf("summary differs between disabled and cold cache (%q vs %q)", s0, s1)
	case s1 != s2:
		return fmt.Sprintf("summary differs between cold and warm cache (%q vs %q)", s1, s2)
	}
	return ""
}

// fail minimizes a failing program under keep, records the Failure,
// and writes the reproducer to OutDir.
func (h *harness) fail(seed int64, u *cast.Unit, f Failure, trials int, keep func(*cast.Unit) bool) {
	if trials <= 0 {
		trials = 100
	}
	red := progen.Reduce(u, keep, progen.ReduceOptions{MaxTrials: trials})
	f.OriginalNodes = cast.CountNodes(u)
	f.ReducedNodes = cast.CountNodes(red)
	f.Source = cast.Print(red)
	if h.opts.OutDir != "" {
		if path, err := writeReproducer(h.opts.OutDir, f); err == nil {
			f.Path = path
		} else {
			f.Detail += " (reproducer not written: " + err.Error() + ")"
		}
	}
	h.rep.Failures = append(h.rep.Failures, f)
}

// writeReproducer persists a minimized failure with enough metadata for
// Replay to re-assert it.
func writeReproducer(dir string, f Failure) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	name := fmt.Sprintf("seed%d_%s", f.Seed, f.Stage)
	if f.Kind != "" {
		name += "_" + string(f.Kind)
	}
	path := filepath.Join(dir, name+".c")
	var b strings.Builder
	fmt.Fprintf(&b, "// hgconform reproducer: regenerate with `hgconform -seed %d -n 1`\n", f.Seed)
	fmt.Fprintf(&b, "// seed=%d stage=%s", f.Seed, f.Stage)
	if f.Kind != "" {
		fmt.Fprintf(&b, " kind=%s subject=%s", f.Kind, f.Subject)
	}
	fmt.Fprintf(&b, "\n// nodes=%d/%d detail: %s\n", f.ReducedNodes, f.OriginalNodes, f.Detail)
	b.WriteString(f.Source)
	return path, os.WriteFile(path, []byte(b.String()), 0o644)
}

// Replay re-asserts a committed reproducer: the failure its header
// records must no longer reproduce. Returns an error when the old bug
// is back (or the file is malformed).
func Replay(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	meta := map[string]string{}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "// ") {
			continue
		}
		for _, f := range strings.Fields(line[3:]) {
			if k, v, ok := strings.Cut(f, "="); ok {
				if _, dup := meta[k]; !dup {
					meta[k] = v
				}
			}
		}
	}
	stage := meta["stage"]
	if stage == "" {
		return fmt.Errorf("conform: %s: no stage= in reproducer header", path)
	}
	u, err := cparser.Parse(string(data))
	if err != nil {
		return fmt.Errorf("conform: %s: %w", path, err)
	}
	cfg := hls.DefaultConfig("kernel")
	switch stage {
	case "clean":
		if rep := check.Run(u, cfg); !rep.OK {
			return fmt.Errorf("conform: %s: checker still reports %d diagnostics on clean program (first: %s)",
				path, len(rep.Diags), rep.Diags[0].Code)
		}
	case "roundtrip":
		s1 := cast.Print(u)
		u2, err := cparser.Parse(s1)
		if err != nil {
			return fmt.Errorf("conform: %s: printed source does not re-parse: %w", path, err)
		}
		if s2 := cast.Print(u2); s1 != s2 {
			return fmt.Errorf("conform: %s: print -> parse -> print still differs", path)
		}
	case "oracle":
		kind := progen.Kind(meta["kind"])
		class := progen.ClassOf(kind)
		if class == hls.ClassNone {
			return fmt.Errorf("conform: %s: unknown violation kind %q", path, kind)
		}
		v := progen.Violation{Kind: kind, Class: class, Subject: meta["subject"]}
		if !progen.Present(u, v) {
			// The construct itself is gone: nothing to assert (the
			// reducer guarantees presence at write time, so flag it).
			return fmt.Errorf("conform: %s: planted construct %s no longer present", path, kind)
		}
		if !check.Run(u, cfg).HasClass(class) {
			return fmt.Errorf("conform: %s: %s still not flagged as %s", path, kind, class)
		}
	case "pipeline", "parity":
		if u.Func("kernel") == nil {
			return fmt.Errorf("conform: %s: no kernel function", path)
		}
		h := &harness{opts: Options{}.withDefaults()}
		if stage == "parity" {
			if d := h.parityViolation(context.Background(), u, "kernel"); d != "" {
				return fmt.Errorf("conform: %s: parity still broken: %s", path, d)
			}
			return nil
		}
		res, err := h.pipeline(context.Background(), u, "kernel", nil, nil)
		if err != nil {
			return fmt.Errorf("conform: %s: pipeline: %w", path, err)
		}
		if !res.Compatible || !res.BehaviorOK {
			return fmt.Errorf("conform: %s: pipeline still fails (compat=%v behavior=%v)",
				path, res.Compatible, res.BehaviorOK)
		}
	default:
		return fmt.Errorf("conform: %s: unknown stage %q", path, stage)
	}
	return nil
}

// ReplayDir replays every .c reproducer in a directory (sorted),
// returning the first error. A missing directory is not an error — the
// corpus starts empty.
func ReplayDir(dir string) error {
	matches, err := filepath.Glob(filepath.Join(dir, "*.c"))
	if err != nil {
		return err
	}
	for _, m := range matches {
		if err := Replay(m); err != nil {
			return err
		}
	}
	return nil
}

// reparse round-trips a unit through the printer and frontend, which
// both validates printability and renumbers branches for execution.
func reparse(u *cast.Unit) (*cast.Unit, bool) {
	ru, err := cparser.Parse(cast.Print(u))
	if err != nil {
		return nil, false
	}
	return ru, true
}
