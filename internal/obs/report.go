package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Report is everything cmd/hgtrace reconstructs from one JSONL trace:
// per-subject repair trajectories (Figure 2), coverage curves (§6 /
// Table 4), fix-pattern frequencies, and the virtual-budget breakdown.
// A trace without subject tags (a plain `heterogen -trace` run) yields
// one SubjectReport with an empty Subject.
type Report struct {
	Subjects []*SubjectReport
}

// SubjectReport is the reconstruction for one run.
type SubjectReport struct {
	Subject string

	// Trajectory is Figure 2: errors remaining / perf estimate vs.
	// virtual time, one point per accepted candidate plus the initial
	// evaluation.
	Trajectory []TrajPoint
	// Coverage is the coverage-over-iterations curve, one point per
	// committed fuzz execution.
	Coverage []CovPoint
	// Patterns is the fix-pattern frequency table over tried candidates.
	Patterns []PatternCount
	// Phases is the virtual-budget breakdown from phase_end events.
	Phases []PhaseCost
	// Budget is the repair-search cost split summed over candidate
	// events (style / compile / simulate).
	Budget BudgetSplit

	// FuzzDone / RepairDone are the summary events, when present.
	FuzzDone   *FuzzEvent
	RepairDone *DoneEvent
	Warnings   []string

	// Recomputed totals, for cross-checking against RepairDone.
	CandidateEvents int
	AcceptedEvents  int
	AcceptedEdits   []string
	LastVirtual     float64 // cumulative virtual clock on the last repair event
	SumDeltas       float64 // virtual deltas summed over init + candidates
}

// TrajPoint is one Figure 2 sample.
type TrajPoint struct {
	VirtualMin float64
	Errors     int
	PassRatio  float64
	LatencyMS  float64
	Label      string
}

// CovPoint is one coverage-curve sample.
type CovPoint struct {
	Exec    int
	Covered int
	Total   int
	Corpus  int
}

// PatternCount is one fix-pattern row: how often a template was part of
// a tried chain, and how often that chain was accepted.
type PatternCount struct {
	Template string
	Tried    int
	Accepted int
}

// PhaseCost is one virtual-budget row.
type PhaseCost struct {
	Name           string
	VirtualSeconds float64
}

// BudgetSplit decomposes the repair search's virtual spend.
type BudgetSplit struct {
	StyleSeconds   float64
	CompileSeconds float64
	SimSeconds     float64
}

// BuildReport reconstructs per-subject reports from a trace, preserving
// first-seen subject order.
func BuildReport(events []Event) *Report {
	rep := &Report{}
	byID := map[string]*SubjectReport{}
	get := func(id string) *SubjectReport {
		if s, ok := byID[id]; ok {
			return s
		}
		s := &SubjectReport{Subject: id}
		byID[id] = s
		rep.Subjects = append(rep.Subjects, s)
		return s
	}
	for _, e := range events {
		s := get(e.Subject)
		switch e.Type {
		case EvFuzzExec:
			if e.Fuzz != nil {
				s.Coverage = append(s.Coverage, CovPoint{
					Exec: e.Fuzz.Exec, Covered: e.Fuzz.Covered,
					Total: e.Fuzz.TotalOutcomes, Corpus: e.Fuzz.Corpus,
				})
			}
		case EvFuzzDone:
			if e.Fuzz != nil {
				f := *e.Fuzz
				s.FuzzDone = &f
			}
		case EvRepairInit:
			if e.Repair != nil {
				s.LastVirtual = e.Virtual
				s.SumDeltas += e.Repair.VirtualDelta
				s.Budget.add(e.Repair)
				s.Trajectory = append(s.Trajectory, TrajPoint{
					VirtualMin: e.Virtual / 60, Errors: e.Repair.Errors,
					PassRatio: e.Repair.PassRatio, LatencyMS: e.Repair.LatencyMS,
					Label: "initial version",
				})
			}
		case EvCandidate:
			if e.Repair != nil {
				s.CandidateEvents++
				s.LastVirtual = e.Virtual
				s.SumDeltas += e.Repair.VirtualDelta
				s.Budget.add(e.Repair)
				s.countPatterns(e.Repair)
				if e.Repair.Accepted {
					s.AcceptedEvents++
					s.AcceptedEdits = append(s.AcceptedEdits, e.Repair.Edits...)
					s.Trajectory = append(s.Trajectory, TrajPoint{
						VirtualMin: e.Virtual / 60, Errors: e.Repair.Errors,
						PassRatio: e.Repair.PassRatio, LatencyMS: e.Repair.LatencyMS,
						Label: strings.Join(e.Repair.Edits, " ; "),
					})
				}
			}
		case EvRepairDone:
			if e.Done != nil {
				d := *e.Done
				s.RepairDone = &d
			}
		case EvPhaseEnd:
			if e.Phase != nil {
				s.Phases = append(s.Phases, PhaseCost{
					Name: e.Phase.Name, VirtualSeconds: e.Phase.VirtualDelta,
				})
			}
		case EvWarning:
			s.Warnings = append(s.Warnings, e.Warn)
		}
	}
	for _, s := range rep.Subjects {
		sort.Slice(s.Patterns, func(i, j int) bool {
			if s.Patterns[i].Tried != s.Patterns[j].Tried {
				return s.Patterns[i].Tried > s.Patterns[j].Tried
			}
			return s.Patterns[i].Template < s.Patterns[j].Template
		})
	}
	return rep
}

func (b *BudgetSplit) add(r *RepairEvent) {
	b.StyleSeconds += r.CostStyle
	b.CompileSeconds += r.CostCompile
	b.SimSeconds += r.CostSim
}

// countPatterns tallies each edit's template name ("resize(buf, 2048)"
// -> "resize") into the pattern table.
func (s *SubjectReport) countPatterns(r *RepairEvent) {
	for _, edit := range r.Edits {
		name := edit
		if i := strings.IndexByte(edit, '('); i > 0 {
			name = edit[:i]
		}
		found := false
		for i := range s.Patterns {
			if s.Patterns[i].Template == name {
				s.Patterns[i].Tried++
				if r.Accepted {
					s.Patterns[i].Accepted++
				}
				found = true
				break
			}
		}
		if !found {
			p := PatternCount{Template: name, Tried: 1}
			if r.Accepted {
				p.Accepted = 1
			}
			s.Patterns = append(s.Patterns, p)
		}
	}
}

// Check verifies the trace's internal consistency: the event stream must
// reproduce exactly the totals the search reported in its repair_done
// snapshot, and the fuzz curve must match the campaign summary. It
// returns one message per violation (empty means the trace is sound).
func (r *Report) Check() []string {
	var problems []string
	for _, s := range r.Subjects {
		tag := ""
		if s.Subject != "" {
			tag = s.Subject + ": "
		}
		if s.RepairDone != nil {
			d := s.RepairDone
			if s.CandidateEvents != d.Attempts {
				problems = append(problems, fmt.Sprintf(
					"%scandidate events (%d) != reported attempts (%d)", tag, s.CandidateEvents, d.Attempts))
			}
			if s.AcceptedEvents != d.Accepted {
				problems = append(problems, fmt.Sprintf(
					"%saccepted events (%d) != reported accepted (%d)", tag, s.AcceptedEvents, d.Accepted))
			}
			if !equalStrings(s.AcceptedEdits, d.EditLog) {
				problems = append(problems, fmt.Sprintf(
					"%saccepted-edit chain diverges from reported edit log:\n  events: %v\n  stats:  %v",
					tag, s.AcceptedEdits, d.EditLog))
			}
			if s.LastVirtual != d.VirtualSeconds {
				problems = append(problems, fmt.Sprintf(
					"%slast event virtual clock (%.6f) != reported virtual seconds (%.6f)",
					tag, s.LastVirtual, d.VirtualSeconds))
			}
			// The deltas replay the same additions the search performed,
			// but summed in one shot — allow float round-off only.
			if math.Abs(s.SumDeltas-d.VirtualSeconds) > 1e-6*(1+d.VirtualSeconds) {
				problems = append(problems, fmt.Sprintf(
					"%ssummed virtual deltas (%.6f) do not reproduce virtual seconds (%.6f)",
					tag, s.SumDeltas, d.VirtualSeconds))
			}
		}
		if s.FuzzDone != nil && len(s.Coverage) > 0 {
			if got := s.Coverage[len(s.Coverage)-1].Exec; got != s.FuzzDone.Exec {
				problems = append(problems, fmt.Sprintf(
					"%slast fuzz_exec index (%d) != campaign executions (%d)", tag, got, s.FuzzDone.Exec))
			}
			if got := s.Coverage[len(s.Coverage)-1].Covered; got != s.FuzzDone.Covered {
				problems = append(problems, fmt.Sprintf(
					"%sfinal covered outcomes (%d) != campaign summary (%d)", tag, got, s.FuzzDone.Covered))
			}
		}
	}
	return problems
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Text renders the full report.
func (r *Report) Text() string {
	var sb strings.Builder
	for i, s := range r.Subjects {
		if i > 0 {
			sb.WriteString("\n")
		}
		s.write(&sb)
	}
	return sb.String()
}

func (s *SubjectReport) write(sb *strings.Builder) {
	head := "run"
	if s.Subject != "" {
		head = s.Subject
	}
	fmt.Fprintf(sb, "== %s ==\n", head)

	if d := s.RepairDone; d != nil {
		status := "incomplete"
		if d.Compatible && d.BehaviorOK {
			status = "compatible"
		}
		fmt.Fprintf(sb, "repair: %s — %d attempts (%d accepted, %d rejected, %d style-rejected), %d HLS invocations, %.1f virtual min\n",
			status, d.Attempts, d.Accepted, d.Rejected, d.StyleRejections,
			d.HLSInvocations, d.VirtualSeconds/60)
		if d.SecondsToCompatible > 0 {
			fmt.Fprintf(sb, "time-to-compatible: %.1f virtual min\n", d.SecondsToCompatible/60)
		}
		if len(d.EditLog) > 0 {
			fmt.Fprintf(sb, "accepted edits: %s\n", strings.Join(d.EditLog, " ; "))
		}
	}
	for _, w := range s.Warnings {
		fmt.Fprintf(sb, "warning: %s\n", w)
	}

	if len(s.Trajectory) > 0 {
		sb.WriteString("\nrepair trajectory (Figure 2: errors remaining / latency vs. virtual time):\n")
		fmt.Fprintf(sb, "  %10s  %6s  %5s  %10s  %s\n", "virt (min)", "errors", "pass", "lat (ms)", "event")
		for _, p := range s.Trajectory {
			lat := "-"
			if p.LatencyMS > 0 {
				lat = fmt.Sprintf("%.3f", p.LatencyMS)
			}
			fmt.Fprintf(sb, "  %10.1f  %6d  %5.2f  %10s  %s %s\n",
				p.VirtualMin, p.Errors, p.PassRatio, lat, bar(p.Errors, 20), p.Label)
		}
	}

	if len(s.Coverage) > 0 {
		sb.WriteString("\ncoverage over executions:\n")
		step := 1
		if len(s.Coverage) > 16 {
			step = len(s.Coverage) / 16
		}
		for i := 0; i < len(s.Coverage); i += step {
			writeCovRow(sb, s.Coverage[i])
		}
		if last := s.Coverage[len(s.Coverage)-1]; (len(s.Coverage)-1)%step != 0 {
			writeCovRow(sb, last)
		}
		if f := s.FuzzDone; f != nil {
			fmt.Fprintf(sb, "  campaign: %d execs, %d tests, %.0f%% coverage", f.Exec, f.Tests, 100*f.Coverage)
			if f.Plateaued {
				sb.WriteString(" (plateaued before budget)")
			}
			sb.WriteString("\n")
		}
	}

	if len(s.Patterns) > 0 {
		sb.WriteString("\nfix-pattern frequency:\n")
		fmt.Fprintf(sb, "  %-22s %6s %9s\n", "template", "tried", "accepted")
		for _, p := range s.Patterns {
			fmt.Fprintf(sb, "  %-22s %6d %9d\n", p.Template, p.Tried, p.Accepted)
		}
	}

	hasBudget := s.Budget.StyleSeconds+s.Budget.CompileSeconds+s.Budget.SimSeconds > 0
	if len(s.Phases) > 0 || hasBudget {
		sb.WriteString("\nvirtual budget breakdown:\n")
		for _, p := range s.Phases {
			fmt.Fprintf(sb, "  phase %-18s %10.1f s\n", p.Name, p.VirtualSeconds)
		}
		if hasBudget {
			fmt.Fprintf(sb, "  repair: style checks     %10.1f s\n", s.Budget.StyleSeconds)
			fmt.Fprintf(sb, "  repair: HLS compilation  %10.1f s\n", s.Budget.CompileSeconds)
			fmt.Fprintf(sb, "  repair: simulation       %10.1f s\n", s.Budget.SimSeconds)
		}
	}
}

func writeCovRow(sb *strings.Builder, c CovPoint) {
	pct := 0.0
	if c.Total > 0 {
		pct = 100 * float64(c.Covered) / float64(c.Total)
	}
	fmt.Fprintf(sb, "  exec %6d  %3d/%-3d outcomes (%5.1f%%)  corpus %3d  %s\n",
		c.Exec, c.Covered, c.Total, pct, c.Corpus, bar(int(pct/5), 20))
}

// bar renders n '#' marks capped at width.
func bar(n, width int) string {
	if n < 0 {
		n = 0
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}
