package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
)

// histBounds are the histogram bucket upper bounds (seconds for virtual
// costs, milliseconds for wall durations). A log scale covers both the
// sub-second style checks and the hours-long search totals.
var histBounds = []float64{0.01, 0.1, 1, 10, 60, 600, 3600, 36000}

// Histogram is a fixed-bucket duration histogram plus running moments.
type Histogram struct {
	Count   int64   `json:"count"`
	Sum     float64 `json:"sum"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
	Buckets []int64 `json:"buckets"` // counts per histBounds entry, +1 overflow
}

func newHistogram() *Histogram {
	return &Histogram{Buckets: make([]int64, len(histBounds)+1)}
}

func (h *Histogram) observe(v float64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if h.Count == 0 || v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	for i, b := range histBounds {
		if v <= b {
			h.Buckets[i]++
			return
		}
	}
	h.Buckets[len(histBounds)]++
}

// Mean is the running average (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Registry is the in-memory metrics sink: named counters and duration
// histograms aggregated over every event it observes, plus an explicit
// Add/Observe API for ad-hoc instrumentation. Safe for concurrent use.
type Registry struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{counters: map[string]int64{}, hists: map[string]*Histogram{}}
}

// Add increments a named counter.
func (r *Registry) Add(name string, n int64) {
	r.mu.Lock()
	r.counters[name] += n
	r.mu.Unlock()
}

// Counter reads one named counter's current value (0 when absent).
func (r *Registry) Counter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Observe records one duration sample into a named histogram.
func (r *Registry) Observe(name string, v float64) {
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = newHistogram()
		r.hists[name] = h
	}
	h.observe(v)
	r.mu.Unlock()
}

// Emit aggregates one event into the run's counters and histograms.
func (r *Registry) Emit(e Event) {
	switch e.Type {
	case EvFuzzExec:
		r.Add("fuzz.execs", 1)
		if e.Fuzz != nil {
			if e.Fuzz.Gained {
				r.Add("fuzz.gained", 1)
			}
			if e.Fuzz.Crashed {
				r.Add("fuzz.crashes", 1)
			}
			if e.Fuzz.Invalid {
				r.Add("fuzz.invalid", 1)
			}
			if e.Fuzz.Failure != "" {
				r.Add("fuzz.stage_failures", 1)
			}
		}
	case EvFuzzDone:
		r.Add("fuzz.campaigns", 1)
		r.Observe("fuzz.campaign_virtual_s", e.Virtual)
		if e.Fuzz != nil && e.Fuzz.Plateaued {
			r.Add("fuzz.plateaus", 1)
		}
	case EvRepairInit:
		r.Add("repair.searches", 1)
		r.Add("repair.hls_invocations", 1) // the initial version is always compiled
		if e.Repair != nil {
			r.Observe("repair.eval_virtual_s", e.Repair.VirtualDelta)
		}
	case EvCandidate:
		r.Add("repair.candidates", 1)
		if e.Repair != nil {
			if e.Repair.Accepted {
				r.Add("repair.accepted", 1)
			} else {
				r.Add("repair.rejected", 1)
			}
			if e.Repair.Style == "reject" {
				r.Add("repair.style_rejections", 1)
			}
			if e.Repair.Failure != "" {
				r.Add("repair.stage_failures", 1)
			}
			if e.Repair.Evaluated {
				r.Add("repair.hls_invocations", 1)
			}
			r.Observe("repair.eval_virtual_s", e.Repair.VirtualDelta)
		}
	case EvRepairDone:
		if e.Done != nil {
			r.Observe("repair.search_virtual_s", e.Done.VirtualSeconds)
			if e.Done.Compatible && e.Done.BehaviorOK {
				r.Add("repair.compatible", 1)
			}
		}
	case EvPhaseEnd:
		if e.Phase != nil {
			r.Observe("phase.virtual_s."+e.Phase.Name, e.Phase.VirtualDelta)
			if e.Phase.WallNS > 0 {
				r.Observe("phase.wall_ms."+e.Phase.Name, float64(e.Phase.WallNS)/1e6)
			}
		}
	case EvCheck:
		r.Add("check.runs", 1)
		if e.Check != nil {
			r.Add("check.errors", int64(e.Check.Errors))
		}
	case EvWarning:
		r.Add("warnings", 1)
	}
}

// snapshot copies the registry state under the lock.
func (r *Registry) snapshot() (map[string]int64, map[string]Histogram) {
	r.mu.Lock()
	defer r.mu.Unlock()
	cs := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		cs[k] = v
	}
	hs := make(map[string]Histogram, len(r.hists))
	for k, h := range r.hists {
		cp := *h
		cp.Buckets = append([]int64(nil), h.Buckets...)
		hs[k] = cp
	}
	return cs, hs
}

// Text renders the registry as a sorted, human-readable summary.
func (r *Registry) Text() string {
	cs, hs := r.snapshot()
	var sb strings.Builder
	sb.WriteString("== metrics ==\n")
	names := make([]string, 0, len(cs))
	for k := range cs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&sb, "%-28s %d\n", k, cs[k])
	}
	names = names[:0]
	for k := range hs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := hs[k]
		fmt.Fprintf(&sb, "%-28s n=%d sum=%.2f min=%.3f mean=%.3f max=%.3f p50=%.3f p95=%.3f p99=%.3f\n",
			k, h.Count, h.Sum, h.Min, h.Mean(), h.Max,
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99))
	}
	return sb.String()
}

// JSON renders the registry as a JSON document (counters + histograms).
func (r *Registry) JSON() ([]byte, error) {
	cs, hs := r.snapshot()
	return json.MarshalIndent(struct {
		Counters   map[string]int64     `json:"counters"`
		Histograms map[string]Histogram `json:"histograms"`
	}{cs, hs}, "", "  ")
}
