package obs

// BucketBounds returns the histogram bucket upper bounds shared by
// every Histogram (a copy; callers may not mutate the schedule).
func BucketBounds() []float64 {
	return append([]float64(nil), histBounds...)
}

// Quantile estimates the q-quantile (q in [0,1]) of the observed
// distribution from the bucket counts. Within a bucket the estimate
// interpolates linearly between the bucket's bounds, clamped to the
// exact Min/Max the histogram tracked — so a single-observation
// histogram reports that observation for every q, and q=0 / q=1 always
// return Min / Max. The overflow bucket interpolates between the last
// finite bound and Max. An empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	// Rank of the target observation (1-based, nearest-rank rounded up).
	rank := int64(q*float64(h.Count)) + 1
	if rank > h.Count {
		rank = h.Count
	}
	var cum int64
	for i, n := range h.Buckets {
		if n == 0 {
			continue
		}
		if cum+n < rank {
			cum += n
			continue
		}
		// The target falls in bucket i: interpolate by position.
		lo := h.Min
		if i > 0 {
			lo = histBounds[i-1]
		}
		hi := h.Max
		if i < len(histBounds) && histBounds[i] < hi {
			hi = histBounds[i]
		}
		if lo < h.Min {
			lo = h.Min
		}
		if hi < lo {
			hi = lo
		}
		frac := (float64(rank-cum) - 0.5) / float64(n)
		v := lo + frac*(hi-lo)
		if v < h.Min {
			v = h.Min
		}
		if v > h.Max {
			v = h.Max
		}
		return v
	}
	return h.Max
}
