package agg

import (
	"fmt"
	"sort"
)

// Dist summarizes one sample set with exact percentiles: samples are
// sorted and quantiles taken by nearest rank, so the summary is a pure
// function of the multiset — ingestion order cannot leak in.
type Dist struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// NewDist summarizes samples (the slice is sorted in place).
func NewDist(samples []float64) Dist {
	if len(samples) == 0 {
		return Dist{}
	}
	sort.Float64s(samples)
	d := Dist{
		Count: int64(len(samples)),
		Min:   samples[0],
		Max:   samples[len(samples)-1],
		P50:   rank(samples, 0.50),
		P90:   rank(samples, 0.90),
		P95:   rank(samples, 0.95),
		P99:   rank(samples, 0.99),
	}
	for _, v := range samples {
		d.Sum += v
	}
	return d
}

// rank is the nearest-rank quantile of a sorted sample set.
func rank(sorted []float64, q float64) float64 {
	i := int(q*float64(len(sorted))+0.999999) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// Mean is the running average (0 when empty).
func (d Dist) Mean() float64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}

// Row renders the distribution as one aligned report line.
func (d Dist) Row() string {
	return fmt.Sprintf("n=%-6d mean=%9.3f p50=%9.3f p90=%9.3f p95=%9.3f p99=%9.3f max=%9.3f",
		d.Count, d.Mean(), d.P50, d.P90, d.P95, d.P99, d.Max)
}
