package agg

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// PriorsFormat names the priors artifact; PriorsVersion is its schema
// revision. Consumers must reject other formats and newer versions.
const (
	PriorsFormat  = "heterogen-priors"
	PriorsVersion = 1
)

// PriorsTable is the evidence artifact the candidate-reordering search
// consumes: accumulated (error class × fix template) outcomes mined
// from traces. The table is content-hashed so a search run can record
// exactly which evidence it was conditioned on — reordering stays a
// deterministic function of (program, seed, priors hash), and an empty
// table reproduces the unconditioned order.
type PriorsTable struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Hash is the SHA-256 of the canonical entries encoding; it
	// identifies the evidence content independent of which trace files
	// carried it.
	Hash string `json:"hash"`
	// Traces is how many distinct traces were mined.
	Traces  int          `json:"traces"`
	Entries []PriorEntry `json:"entries"`
}

// PriorEntry is one (error class, fix template) row.
type PriorEntry struct {
	Class    string `json:"class"`
	Template string `json:"template"`
	Tried    int64  `json:"tried"`
	Accepted int64  `json:"accepted"`
	Rejected int64  `json:"rejected"`
}

// buildPriors sorts the mined counts into the canonical table and
// stamps its content hash.
func buildPriors(m map[priorKey]*counts, traces int) *PriorsTable {
	t := &PriorsTable{Format: PriorsFormat, Version: PriorsVersion, Traces: traces}
	keys := make([]priorKey, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].class != keys[j].class {
			return keys[i].class < keys[j].class
		}
		return keys[i].template < keys[j].template
	})
	for _, k := range keys {
		c := m[k]
		t.Entries = append(t.Entries, PriorEntry{
			Class: k.class, Template: k.template,
			Tried: c.tried, Accepted: c.accepted, Rejected: c.rejected,
		})
	}
	t.Hash = t.contentHash()
	return t
}

// contentHash hashes the canonical JSON encoding of the entries alone:
// the hash covers the evidence, not the envelope, so re-mining the
// same trace set always reproduces it.
func (t *PriorsTable) contentHash() string {
	b, err := json.Marshal(t.Entries)
	if err != nil {
		// Entries are plain structs; Marshal cannot fail in practice.
		return ""
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Verify recomputes the content hash and reports whether it matches
// the stamped one — the integrity check consumers run before trusting
// a priors file.
func (t *PriorsTable) Verify() error {
	if t.Format != PriorsFormat {
		return fmt.Errorf("priors: format %q, want %q", t.Format, PriorsFormat)
	}
	if t.Version > PriorsVersion {
		return fmt.Errorf("priors: version %d is newer than supported %d", t.Version, PriorsVersion)
	}
	if got := t.contentHash(); got != t.Hash {
		return fmt.Errorf("priors: content hash mismatch: stamped %s, computed %s", t.Hash, got)
	}
	return nil
}

// Encode renders the table as indented JSON with a trailing newline —
// the byte-stable artifact format.
func (t *PriorsTable) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// WriteFile atomically writes the encoded table to path.
func (t *PriorsTable) WriteFile(path string) error {
	b, err := t.Encode()
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// LoadPriors reads and verifies a priors artifact.
func LoadPriors(path string) (*PriorsTable, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var t PriorsTable
	if err := json.Unmarshal(b, &t); err != nil {
		return nil, fmt.Errorf("priors: %s: %w", path, err)
	}
	if err := t.Verify(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &t, nil
}
