package agg

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/obs"
)

// targetedTrace is traceBytes with every event stamped via TagTarget —
// the shape targeted CLI runs and serve jobs produce.
func targetedTrace(t *testing.T, subject, target string, accepted int) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	sink := obs.TagTarget(tw, target)
	emit := func(e obs.Event) {
		e.Subject = subject
		sink.Emit(e)
	}
	emit(obs.Event{Type: obs.EvRepairInit, Virtual: 60, Repair: &obs.RepairEvent{
		Step: "init", VirtualDelta: 60, CostCompile: 60}})
	virt := 60.0
	for i := 0; i < accepted; i++ {
		virt += 60.8
		emit(obs.Event{Type: obs.EvCandidate, Virtual: virt, Repair: &obs.RepairEvent{
			Step: "repair", Edits: []string{"resize(buf, 2048)"}, Class: "dynamic_data",
			Accepted: true, Reason: "accepted", Evaluated: true,
			VirtualDelta: 60.8, CostStyle: 0.8, CostCompile: 60}})
	}
	emit(obs.Event{Type: obs.EvRepairDone, Virtual: virt, Done: &obs.DoneEvent{
		Attempts: accepted, Accepted: accepted,
		VirtualSeconds: virt, Compatible: accepted > 0, BehaviorOK: accepted > 0}})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTargetBreakdown: targeted traces split the repair funnel and the
// candidate-evaluation latency per target-set stamp.
func TestTargetBreakdown(t *testing.T) {
	in := NewIngestor()
	for i, tr := range [][]byte{
		targetedTrace(t, "P1", "vivado_hls:xcvu9p", 2),
		targetedTrace(t, "P2", "vivado_hls:xcvu9p+vivado_hls:zc706", 3),
		targetedTrace(t, "P3", "vivado_hls:xcvu9p", 1),
	} {
		if err := in.Add(string(rune('a'+i))+".jsonl", tr, nil); err != nil {
			t.Fatal(err)
		}
	}
	f := in.Snapshot()
	if len(f.Targets) != 2 {
		t.Fatalf("fleet has %d target rows, want 2: %+v", len(f.Targets), f.Targets)
	}
	single, multi := f.Targets[0], f.Targets[1]
	if single.Target != "vivado_hls:xcvu9p" || multi.Target != "vivado_hls:xcvu9p+vivado_hls:zc706" {
		t.Fatalf("target rows out of canonical order: %q, %q", f.Targets[0].Target, f.Targets[1].Target)
	}
	if single.Attempts != 3 || single.Accepted != 3 || single.Converged != 2 {
		t.Errorf("single-target funnel = %d/%d/%d, want 3/3/2",
			single.Attempts, single.Accepted, single.Converged)
	}
	if multi.Attempts != 3 || multi.Converged != 1 {
		t.Errorf("multi-target funnel = %d attempts / %d converged, want 3/1", multi.Attempts, multi.Converged)
	}
	for _, ts := range f.Targets {
		if ts.EvalVirtual == nil || ts.EvalVirtual.Count != ts.Attempts {
			t.Errorf("%s: eval latency dist missing or short: %+v", ts.Target, ts.EvalVirtual)
		} else if ts.EvalVirtual.P95 != 60.8 {
			t.Errorf("%s: eval p95 = %g, want 60.8", ts.Target, ts.EvalVirtual.P95)
		}
	}
	if !strings.Contains(f.Text(), "per-target breakdown:") {
		t.Error("text report is missing the per-target section")
	}
}

// TestUntargetedReportUnchanged: classic untargeted trace sets must
// render without any per-target section — the byte-identity guarantee
// for pre-target fleets.
func TestUntargetedReportUnchanged(t *testing.T) {
	in := NewIngestor()
	if err := in.Add("a.jsonl", traceBytes(t, "P1", 2), nil); err != nil {
		t.Fatal(err)
	}
	f := in.Snapshot()
	if len(f.Targets) != 0 {
		t.Fatalf("untargeted trace produced target rows: %+v", f.Targets)
	}
	if strings.Contains(f.Text(), "per-target") {
		t.Error("untargeted report mentions targets")
	}
	if b, err := f.Priors.Encode(); err != nil || bytes.Contains(b, []byte("target")) {
		t.Errorf("priors artifact grew a target field (err %v)", err)
	}
}

// TestTargetOrderIndependence extends the warehouse's core byte-
// identity regression to targeted trace sets.
func TestTargetOrderIndependence(t *testing.T) {
	var names []string
	var data [][]byte
	stamps := []string{"", "vivado_hls:xcvu9p", "vitis:aws_f1", "vivado_hls:xcvu9p+vitis:aws_f1"}
	for i := 0; i < 8; i++ {
		names = append(names, string(rune('a'+i))+".jsonl")
		stamp := stamps[i%len(stamps)]
		if stamp == "" {
			data = append(data, traceBytes(t, "P"+string(rune('1'+i)), i%4))
		} else {
			data = append(data, targetedTrace(t, "P"+string(rune('1'+i)), stamp, i%4))
		}
	}
	baseline := NewIngestor()
	for i := range names {
		if err := baseline.Add(names[i], data[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	wantText, wantPriors := fleetBytes(t, baseline.Snapshot())
	if !bytes.Contains(wantText, []byte("per-target breakdown:")) {
		t.Fatal("mixed trace set did not render the per-target section")
	}

	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(names))
		in := NewIngestor()
		for _, i := range perm {
			if err := in.Add(names[i], data[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		gotText, gotPriors := fleetBytes(t, in.Snapshot())
		if !bytes.Equal(gotText, wantText) {
			t.Fatalf("permutation %v: report differs\n--- want\n%s\n--- got\n%s", perm, wantText, gotText)
		}
		if !bytes.Equal(gotPriors, wantPriors) {
			t.Fatalf("permutation %v: priors differ", perm)
		}
	}
}
