package agg

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/obs/span"
)

// traceBytes renders a run with the given subject and candidate mix as
// JSONL trace bytes.
func traceBytes(t *testing.T, subject string, accepted int) []byte {
	t.Helper()
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	emit := func(e obs.Event) {
		e.Subject = subject
		tw.Emit(e)
	}
	emit(obs.Event{Type: obs.EvPhaseStart, Phase: &obs.PhaseEvent{Name: "repair"}})
	emit(obs.Event{Type: obs.EvRepairInit, Virtual: 60, Repair: &obs.RepairEvent{
		Step: "init", VirtualDelta: 60, CostCompile: 60}})
	virt := 60.0
	for i := 0; i < accepted; i++ {
		virt += 60.8
		emit(obs.Event{Type: obs.EvCandidate, Virtual: virt, Repair: &obs.RepairEvent{
			Step: "repair", Edits: []string{"resize(buf, 2048)"}, Class: "dynamic_data",
			Accepted: true, Reason: "accepted", Evaluated: true,
			VirtualDelta: 60.8, CostStyle: 0.8, CostCompile: 60}})
	}
	virt += 0.8
	emit(obs.Event{Type: obs.EvCandidate, Virtual: virt, Repair: &obs.RepairEvent{
		Step: "repair", Edits: []string{"malloc_to_array(p)"}, Class: "dynamic_data",
		Style: "reject", Reason: "style-reject", VirtualDelta: 0.8, CostStyle: 0.8}})
	emit(obs.Event{Type: obs.EvRepairDone, Virtual: virt, Done: &obs.DoneEvent{
		Attempts: accepted + 1, Accepted: accepted, Rejected: 1,
		VirtualSeconds: virt, Compatible: accepted > 0, BehaviorOK: accepted > 0}})
	emit(obs.Event{Type: obs.EvPhaseEnd, Virtual: virt, Phase: &obs.PhaseEvent{Name: "repair", VirtualDelta: virt}})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func fleetBytes(t *testing.T, f *Fleet) ([]byte, []byte) {
	t.Helper()
	pb, err := f.Priors.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return []byte(f.Text()), pb
}

// TestIngestionOrderIndependence is the warehouse's core regression:
// any permutation of the same trace set yields byte-identical report
// and priors artifacts.
func TestIngestionOrderIndependence(t *testing.T) {
	var names []string
	var data [][]byte
	for i := 0; i < 8; i++ {
		names = append(names, string(rune('a'+i))+".jsonl")
		data = append(data, traceBytes(t, "P"+string(rune('1'+i)), i%4))
	}
	baseline := NewIngestor()
	for i := range names {
		if err := baseline.Add(names[i], data[i], nil); err != nil {
			t.Fatal(err)
		}
	}
	wantText, wantPriors := fleetBytes(t, baseline.Snapshot())

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(len(names))
		in := NewIngestor()
		for _, i := range perm {
			if err := in.Add(names[i], data[i], nil); err != nil {
				t.Fatal(err)
			}
		}
		gotText, gotPriors := fleetBytes(t, in.Snapshot())
		if !bytes.Equal(gotText, wantText) {
			t.Fatalf("permutation %v: report differs\n--- want\n%s\n--- got\n%s", perm, wantText, gotText)
		}
		if !bytes.Equal(gotPriors, wantPriors) {
			t.Fatalf("permutation %v: priors differ", perm)
		}
	}
}

func TestContentAddressedDedup(t *testing.T) {
	tr := traceBytes(t, "P1", 2)
	in := NewIngestor()
	if err := in.Add("a.jsonl", tr, nil); err != nil {
		t.Fatal(err)
	}
	if err := in.Add("copy-of-a.jsonl", tr, nil); err != nil {
		t.Fatal(err)
	}
	f := in.Snapshot()
	if f.Traces != 1 {
		t.Fatalf("identical traces counted %d times, want 1", f.Traces)
	}
	if f.Funnel.Attempts != 3 {
		t.Fatalf("attempts %d, want 3 (2 accepted + 1 rejected, counted once)", f.Funnel.Attempts)
	}
}

// TestDuplicateTraceSidecarsAccumulate covers the hgserve fleet shape:
// two jobs on the same input produce byte-identical traces (one trace
// after dedup) but distinct sidecars (two real jobs). Both sidecars
// must count, and the report must not depend on which copy arrived
// first.
func TestDuplicateTraceSidecarsAccumulate(t *testing.T) {
	tr := traceBytes(t, "P1", 2)
	metaA := &span.RunMeta{ID: "j-1", Kind: "transpile", State: "done", QueueWaitMS: 2, WallMS: 100,
		Cache: &evalcache.Stats{Stages: map[evalcache.Stage]evalcache.StageStats{
			evalcache.StageCheck: {Hits: 0, Misses: 7},
		}}}
	metaB := &span.RunMeta{ID: "j-2", Kind: "transpile", State: "done", QueueWaitMS: 5, WallMS: 40,
		Cache: &evalcache.Stats{Stages: map[evalcache.Stage]evalcache.StageStats{
			evalcache.StageCheck: {Hits: 7, Misses: 0},
		}}}

	var texts [][]byte
	for _, order := range [][]*span.RunMeta{{metaA, metaB}, {metaB, metaA}} {
		in := NewIngestor()
		for i, m := range order {
			name := []string{"z.jsonl", "a.jsonl"}[i] // names also swap
			if err := in.Add(name, tr, m); err != nil {
				t.Fatal(err)
			}
		}
		f := in.Snapshot()
		if f.Traces != 1 || f.Funnel.Attempts != 3 {
			t.Fatalf("dedup broke: traces=%d attempts=%d", f.Traces, f.Funnel.Attempts)
		}
		if len(f.Cache) != 1 || f.Cache[0].Hits != 7 || f.Cache[0].Misses != 7 {
			t.Fatalf("sidecars not accumulated: %+v", f.Cache)
		}
		if f.QueueWaitMS == nil || f.QueueWaitMS.Count != 2 {
			t.Fatalf("queue wait samples: %+v", f.QueueWaitMS)
		}
		if f.Index[0].Name != "a.jsonl" {
			t.Fatalf("index name %q depends on ingestion order, want a.jsonl", f.Index[0].Name)
		}
		text, _ := fleetBytes(t, f)
		texts = append(texts, text)
	}
	if !bytes.Equal(texts[0], texts[1]) {
		t.Fatalf("report depends on duplicate ingestion order\n--- order A\n%s\n--- order B\n%s", texts[0], texts[1])
	}
}

func TestIngestDirWithSidecars(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "j-1.jsonl"), traceBytes(t, "", 1), 0o644); err != nil {
		t.Fatal(err)
	}
	meta := span.RunMeta{
		ID: "j-1", CorrelationID: "req-42", Kind: "repair", State: "done",
		QueueWaitMS: 3, WallMS: 120, Events: 5,
		Cache: &evalcache.Stats{Stages: map[evalcache.Stage]evalcache.StageStats{
			evalcache.StageCheck: {Hits: 5, Misses: 2},
		}},
	}
	mb, _ := json.Marshal(meta)
	if err := os.WriteFile(filepath.Join(dir, "j-1.meta.json"), mb, 0o644); err != nil {
		t.Fatal(err)
	}
	// A stray non-trace file must be ignored.
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	in := NewIngestor()
	n, err := in.IngestDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("ingested %d files, want 1", n)
	}
	f := in.Snapshot()
	if len(f.Cache) != 1 || f.Cache[0].Hits != 5 || f.Cache[0].Misses != 2 {
		t.Fatalf("cache attribution: %+v", f.Cache)
	}
	if f.QueueWaitMS == nil || f.QueueWaitMS.Count != 1 {
		t.Fatalf("queue wait: %+v", f.QueueWaitMS)
	}
	if len(f.JobWallMS) != 1 || f.JobWallMS[0].Name != "repair" {
		t.Fatalf("job wall: %+v", f.JobWallMS)
	}
}

func TestPriorsRoundTripAndIntegrity(t *testing.T) {
	in := NewIngestor()
	if err := in.Add("a.jsonl", traceBytes(t, "P1", 2), nil); err != nil {
		t.Fatal(err)
	}
	f := in.Snapshot()
	if f.Priors.Hash == "" || len(f.Priors.Entries) == 0 {
		t.Fatalf("empty priors: %+v", f.Priors)
	}
	path := filepath.Join(t.TempDir(), "priors.json")
	if err := f.Priors.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPriors(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Hash != f.Priors.Hash || len(loaded.Entries) != len(f.Priors.Entries) {
		t.Fatalf("round trip changed the table: %+v vs %+v", loaded, f.Priors)
	}
	// Tampering with a count must fail verification.
	loaded.Entries[0].Accepted++
	if err := loaded.Verify(); err == nil {
		t.Fatal("tampered priors verified")
	}
	// An empty table is valid and hash-stable (it reproduces the
	// unconditioned candidate order by contract).
	empty := buildPriors(map[priorKey]*counts{}, 0)
	if err := empty.Verify(); err != nil {
		t.Fatal(err)
	}
	if empty.Hash != buildPriors(map[priorKey]*counts{}, 0).Hash {
		t.Fatal("empty-table hash unstable")
	}
}

func TestDistPercentiles(t *testing.T) {
	var samples []float64
	for i := 100; i >= 1; i-- {
		samples = append(samples, float64(i))
	}
	d := NewDist(samples)
	if d.Count != 100 || d.Min != 1 || d.Max != 100 {
		t.Fatalf("bounds: %+v", d)
	}
	if d.P50 != 50 || d.P90 != 90 || d.P95 != 95 || d.P99 != 99 {
		t.Fatalf("percentiles: %+v", d)
	}
	one := NewDist([]float64{7})
	if one.P50 != 7 || one.P99 != 7 || one.Min != 7 || one.Max != 7 {
		t.Fatalf("single sample: %+v", one)
	}
	zero := NewDist(nil)
	if zero.Count != 0 || zero.Mean() != 0 {
		t.Fatalf("empty: %+v", zero)
	}
}
