// Package agg is the fleet trace warehouse: it ingests directories of
// deterministic JSONL traces (hgconform sweeps, hgserve job retention
// dirs, CLI -trace runs) into a compact content-addressed index and
// derives fleet-level statistics — per-stage virtual-cost and wall
// latency percentiles, repair convergence funnels, cache-hit
// attribution from job sidecars, and the versioned priors table the
// candidate-reordering search consumes.
//
// The warehouse is deterministic by construction: traces are keyed by
// the SHA-256 of their bytes, every aggregate either commutes (counts,
// sums) or is computed after sorting (percentiles, table rows), and
// Snapshot renders trace summaries in hash order. Ingesting the same
// trace set in any order therefore yields byte-identical reports and
// priors tables; ingesting the same trace twice (same bytes, any file
// name) counts its events once, though each copy's job sidecar still
// contributes to the fleet's cache and latency aggregates.
package agg

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/obs/span"
)

// Ingestor accumulates traces; call Snapshot for the derived Fleet
// view. Not safe for concurrent use.
type Ingestor struct {
	traces map[string]*traceFacts // keyed by content hash
}

// NewIngestor returns an empty warehouse.
func NewIngestor() *Ingestor {
	return &Ingestor{traces: map[string]*traceFacts{}}
}

// traceFacts is the per-trace slice of the index: everything Snapshot
// needs, already mined from the events.
type traceFacts struct {
	hash   string
	name   string // first file name seen (informational only)
	events int
	runs   int

	phaseVirtual map[string][]float64
	phaseWall    map[string][]float64
	stageVirtual map[string][]float64

	funnel  Funnel
	priors  map[priorKey]*counts
	classes map[string]*counts
	// targets aggregates per target-set stamp (obs.Event.Target, set
	// only by targeted runs); empty for classic untargeted traces.
	targets map[string]*targetCounts

	// metas holds every job sidecar seen for this content hash: identical
	// traces from distinct jobs dedupe as traces but each job's wall /
	// queue / cache facts still count. Aggregation over metas is
	// order-independent (counts commute, samples are sorted by NewDist).
	metas []*span.RunMeta
}

type priorKey struct{ class, template string }

type counts struct{ tried, accepted, rejected int64 }

// targetCounts is one target-set stamp's activity within a trace.
type targetCounts struct {
	events    int64
	attempts  int64
	accepted  int64
	converged int64
	// virtual holds the virtual-cost deltas of the stamp's candidate
	// evaluations — the per-target slice of the stage-latency view.
	virtual []float64
}

func (t *targetCounts) add(o *targetCounts) {
	t.events += o.events
	t.attempts += o.attempts
	t.accepted += o.accepted
	t.converged += o.converged
	t.virtual = append(t.virtual, o.virtual...)
}

// Funnel is the repair convergence funnel over a trace set: how many
// runs entered repair, how many candidates were tried, how far they
// got, and how many runs converged.
type Funnel struct {
	Runs       int64 `json:"runs"`
	Repairs    int64 `json:"repairs"`
	Attempts   int64 `json:"attempts"`
	Evaluated  int64 `json:"evaluated"`
	Accepted   int64 `json:"accepted"`
	Converged  int64 `json:"converged"`
	FuzzRuns   int64 `json:"fuzz_campaigns"`
	StageFails int64 `json:"stage_failures"`
}

func (f *Funnel) add(o Funnel) {
	f.Runs += o.Runs
	f.Repairs += o.Repairs
	f.Attempts += o.Attempts
	f.Evaluated += o.Evaluated
	f.Accepted += o.Accepted
	f.Converged += o.Converged
	f.FuzzRuns += o.FuzzRuns
	f.StageFails += o.StageFails
}

// AddFile ingests one trace file plus its optional `<base>.meta.json`
// sidecar (written by hgserve's retention layer).
func (in *Ingestor) AddFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var meta *span.RunMeta
	metaPath := strings.TrimSuffix(path, filepath.Ext(path)) + ".meta.json"
	if mb, merr := os.ReadFile(metaPath); merr == nil {
		var m span.RunMeta
		if jerr := json.Unmarshal(mb, &m); jerr == nil {
			meta = &m
		}
	}
	return in.Add(filepath.Base(path), data, meta)
}

// IngestDir ingests every *.jsonl file directly inside dir (sidecar
// *.meta.json files are picked up alongside their trace, never
// ingested as traces). Returns how many trace files were read.
func (in *Ingestor) IngestDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".jsonl") {
			continue
		}
		if err := in.AddFile(filepath.Join(dir, e.Name())); err != nil {
			return n, fmt.Errorf("agg: %s: %w", e.Name(), err)
		}
		n++
	}
	return n, nil
}

// Add ingests one trace from bytes. A trace whose content hash is
// already present contributes no new events (the warehouse is
// content-addressed), but its sidecar is still accumulated — identical
// traces from distinct jobs are one trace and N jobs. The stored name
// is the lexicographically smallest seen, so the index never depends
// on ingestion order.
func (in *Ingestor) Add(name string, data []byte, meta *span.RunMeta) error {
	sum := sha256.Sum256(data)
	hash := hex.EncodeToString(sum[:])
	if prev, ok := in.traces[hash]; ok {
		if name < prev.name {
			prev.name = name
		}
		if meta != nil {
			prev.metas = append(prev.metas, meta)
		}
		return nil
	}
	events, err := obs.ParseTrace(strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	tf := mine(events)
	tf.hash = hash
	tf.name = name
	if meta != nil {
		tf.metas = append(tf.metas, meta)
	}
	in.traces[hash] = tf
	return nil
}

// mine derives one trace's facts from its event stream.
func mine(events []obs.Event) *traceFacts {
	tf := &traceFacts{
		phaseVirtual: map[string][]float64{},
		phaseWall:    map[string][]float64{},
		stageVirtual: map[string][]float64{},
		priors:       map[priorKey]*counts{},
		classes:      map[string]*counts{},
		targets:      map[string]*targetCounts{},
	}
	tf.events = len(events)
	subjects := map[string]bool{}
	prevFuzz := map[string]float64{}
	for _, e := range events {
		if !subjects[e.Subject] {
			subjects[e.Subject] = true
			tf.runs++
			tf.funnel.Runs++
		}
		var tc *targetCounts
		if e.Target != "" {
			tc = tf.targets[e.Target]
			if tc == nil {
				tc = &targetCounts{}
				tf.targets[e.Target] = tc
			}
			tc.events++
		}
		switch e.Type {
		case obs.EvPhaseEnd:
			if e.Phase == nil {
				continue
			}
			tf.phaseVirtual[e.Phase.Name] = append(tf.phaseVirtual[e.Phase.Name], e.Phase.VirtualDelta)
			if e.Phase.WallNS > 0 {
				tf.phaseWall[e.Phase.Name] = append(tf.phaseWall[e.Phase.Name], float64(e.Phase.WallNS)/1e6)
			}
		case obs.EvFuzzExec:
			d := e.Virtual - prevFuzz[e.Subject]
			if d < 0 {
				d = 0
			}
			prevFuzz[e.Subject] = e.Virtual
			tf.stageVirtual["fuzz.exec"] = append(tf.stageVirtual["fuzz.exec"], d)
		case obs.EvFuzzDone:
			tf.funnel.FuzzRuns++
			prevFuzz[e.Subject] = 0
		case obs.EvRepairInit:
			tf.funnel.Repairs++
			if e.Repair != nil {
				tf.stageVirtual["repair.init"] = append(tf.stageVirtual["repair.init"], e.Repair.VirtualDelta)
			}
		case obs.EvCandidate:
			if e.Repair == nil {
				continue
			}
			r := e.Repair
			tf.stageVirtual["repair."+r.Step] = append(tf.stageVirtual["repair."+r.Step], r.VirtualDelta)
			tf.funnel.Attempts++
			if tc != nil {
				tc.attempts++
				tc.virtual = append(tc.virtual, r.VirtualDelta)
				if r.Accepted {
					tc.accepted++
				}
			}
			if r.Evaluated {
				tf.funnel.Evaluated++
			}
			if r.Accepted {
				tf.funnel.Accepted++
			}
			if r.Failure != "" {
				tf.funnel.StageFails++
			}
			cc := tf.classes[r.Class]
			if cc == nil {
				cc = &counts{}
				tf.classes[r.Class] = cc
			}
			bump(cc, r.Accepted)
			for _, edit := range r.Edits {
				k := priorKey{class: r.Class, template: templateOf(edit)}
				c := tf.priors[k]
				if c == nil {
					c = &counts{}
					tf.priors[k] = c
				}
				bump(c, r.Accepted)
			}
		case obs.EvRepairDone:
			if e.Done != nil && e.Done.Compatible && e.Done.BehaviorOK {
				tf.funnel.Converged++
				if tc != nil {
					tc.converged++
				}
			}
		}
	}
	return tf
}

func bump(c *counts, accepted bool) {
	c.tried++
	if accepted {
		c.accepted++
	} else {
		c.rejected++
	}
}

// templateOf reduces an edit rendering ("resize(buf, 2048)") to its
// template name ("resize") — the same convention obs.Report uses.
func templateOf(edit string) string {
	if i := strings.IndexByte(edit, '('); i > 0 {
		return edit[:i]
	}
	return edit
}

// TraceInfo is one ingested trace's identity in the snapshot.
type TraceInfo struct {
	Hash   string `json:"hash"`
	Name   string `json:"name"`
	Events int    `json:"events"`
	Runs   int    `json:"runs"`
}

// StageStat is one named distribution in the fleet view.
type StageStat struct {
	Name string `json:"name"`
	Dist Dist   `json:"dist"`
}

// ClassStat is one error class's candidate outcome totals.
type ClassStat struct {
	Class    string `json:"class"`
	Tried    int64  `json:"tried"`
	Accepted int64  `json:"accepted"`
	Rejected int64  `json:"rejected"`
}

// TargetStat is one target-set stamp's fleet-wide activity: how many
// events carried the stamp, the repair attempts and acceptances under
// it, how many of its runs converged, and the virtual-cost
// distribution of its candidate evaluations (the per-target slice of
// the stage-latency view; nil when the stamp saw no evaluations).
type TargetStat struct {
	Target      string `json:"target"`
	Events      int64  `json:"events"`
	Attempts    int64  `json:"attempts"`
	Accepted    int64  `json:"accepted"`
	Converged   int64  `json:"converged"`
	EvalVirtual *Dist  `json:"eval_virtual_s,omitempty"`
}

// CacheStat attributes cache activity (from job sidecars) per stage.
type CacheStat struct {
	Stage  string `json:"stage"`
	Hits   int64  `json:"hits"`
	Misses int64  `json:"misses"`
}

// Fleet is the order-independent aggregate over every ingested trace.
type Fleet struct {
	Traces int         `json:"traces"`
	Runs   int         `json:"runs"`
	Events int         `json:"events"`
	Index  []TraceInfo `json:"index"`

	// PhaseVirtual / PhaseWall / StageVirtual are named percentile
	// distributions: virtual seconds per phase, wall milliseconds per
	// phase (only for traces recorded with wall clocks), and virtual
	// seconds per stage (repair.init / repair.repair / repair.perf /
	// fuzz.exec).
	PhaseVirtual []StageStat `json:"phase_virtual_s"`
	PhaseWall    []StageStat `json:"phase_wall_ms,omitempty"`
	StageVirtual []StageStat `json:"stage_virtual_s"`

	Funnel  Funnel      `json:"funnel"`
	Classes []ClassStat `json:"classes,omitempty"`

	// Targets breaks activity down per target-set stamp. Empty (and
	// absent from Text) for classic untargeted trace sets, so reports
	// over such sets are byte-identical to earlier releases.
	Targets []TargetStat `json:"targets,omitempty"`

	// Cache / QueueWaitMS / JobWallMS come from job sidecars and are
	// empty for bare trace sets.
	Cache       []CacheStat `json:"cache,omitempty"`
	QueueWaitMS *Dist       `json:"queue_wait_ms,omitempty"`
	JobWallMS   []StageStat `json:"job_wall_ms,omitempty"`

	Priors *PriorsTable `json:"priors"`
}

// Snapshot merges every ingested trace, in content-hash order, into
// the fleet view. Calling it twice without further ingestion yields
// identical values; ingestion order never matters.
func (in *Ingestor) Snapshot() *Fleet {
	hashes := make([]string, 0, len(in.traces))
	for h := range in.traces {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)

	f := &Fleet{Traces: len(hashes)}
	phaseV := map[string][]float64{}
	phaseW := map[string][]float64{}
	stageV := map[string][]float64{}
	classes := map[string]*counts{}
	priors := map[priorKey]*counts{}
	targets := map[string]*targetCounts{}
	cache := map[string]*CacheStat{}
	var queueWait []float64
	jobWall := map[string][]float64{}

	for _, h := range hashes {
		tf := in.traces[h]
		f.Index = append(f.Index, TraceInfo{Hash: tf.hash, Name: tf.name, Events: tf.events, Runs: tf.runs})
		f.Runs += tf.runs
		f.Events += tf.events
		f.Funnel.add(tf.funnel)
		for k, v := range tf.phaseVirtual {
			phaseV[k] = append(phaseV[k], v...)
		}
		for k, v := range tf.phaseWall {
			phaseW[k] = append(phaseW[k], v...)
		}
		for k, v := range tf.stageVirtual {
			stageV[k] = append(stageV[k], v...)
		}
		for k, c := range tf.classes {
			dst := classes[k]
			if dst == nil {
				dst = &counts{}
				classes[k] = dst
			}
			dst.tried += c.tried
			dst.accepted += c.accepted
			dst.rejected += c.rejected
		}
		for k, c := range tf.priors {
			dst := priors[k]
			if dst == nil {
				dst = &counts{}
				priors[k] = dst
			}
			dst.tried += c.tried
			dst.accepted += c.accepted
			dst.rejected += c.rejected
		}
		for k, c := range tf.targets {
			dst := targets[k]
			if dst == nil {
				dst = &targetCounts{}
				targets[k] = dst
			}
			dst.add(c)
		}
		for _, m := range tf.metas {
			if m.QueueWaitMS > 0 {
				queueWait = append(queueWait, m.QueueWaitMS)
			}
			if m.WallMS > 0 {
				jobWall[m.Kind] = append(jobWall[m.Kind], m.WallMS)
			}
			if m.Cache != nil {
				for stage, st := range m.Cache.Stages {
					cs := cache[string(stage)]
					if cs == nil {
						cs = &CacheStat{Stage: string(stage)}
						cache[string(stage)] = cs
					}
					cs.Hits += st.Hits
					cs.Misses += st.Misses
				}
			}
		}
	}

	f.PhaseVirtual = distTable(phaseV)
	f.PhaseWall = distTable(phaseW)
	f.StageVirtual = distTable(stageV)
	for _, k := range sortedKeys(classes) {
		c := classes[k]
		f.Classes = append(f.Classes, ClassStat{Class: k, Tried: c.tried, Accepted: c.accepted, Rejected: c.rejected})
	}
	for _, k := range sortedKeys(targets) {
		t := targets[k]
		ts := TargetStat{Target: k,
			Events: t.events, Attempts: t.attempts, Accepted: t.accepted, Converged: t.converged}
		if len(t.virtual) > 0 {
			d := NewDist(t.virtual)
			ts.EvalVirtual = &d
		}
		f.Targets = append(f.Targets, ts)
	}
	for _, k := range sortedKeys(cache) {
		f.Cache = append(f.Cache, *cache[k])
	}
	if len(queueWait) > 0 {
		d := NewDist(queueWait)
		f.QueueWaitMS = &d
	}
	f.JobWallMS = distTable(jobWall)
	f.Priors = buildPriors(priors, len(hashes))
	return f
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func distTable(m map[string][]float64) []StageStat {
	var out []StageStat
	for _, k := range sortedKeys(m) {
		out = append(out, StageStat{Name: k, Dist: NewDist(m[k])})
	}
	return out
}

// Text renders the fleet view as a deterministic operator report.
func (f *Fleet) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== fleet ==\ntraces=%d runs=%d events=%d\n", f.Traces, f.Runs, f.Events)
	fn := f.Funnel
	fmt.Fprintf(&sb, "\nconvergence funnel:\n")
	fmt.Fprintf(&sb, "  runs %d -> repairs %d -> attempts %d -> evaluated %d -> accepted %d -> converged %d\n",
		fn.Runs, fn.Repairs, fn.Attempts, fn.Evaluated, fn.Accepted, fn.Converged)
	if fn.StageFails > 0 {
		fmt.Fprintf(&sb, "  contained stage failures: %d\n", fn.StageFails)
	}
	writeDistSection(&sb, "phase virtual seconds", f.PhaseVirtual, "s")
	writeDistSection(&sb, "phase wall latency", f.PhaseWall, "ms")
	writeDistSection(&sb, "stage virtual seconds", f.StageVirtual, "s")
	if len(f.Classes) > 0 {
		sb.WriteString("\ncandidates by error class:\n")
		fmt.Fprintf(&sb, "  %-22s %8s %9s %9s\n", "class", "tried", "accepted", "rejected")
		for _, c := range f.Classes {
			fmt.Fprintf(&sb, "  %-22s %8d %9d %9d\n", c.Class, c.Tried, c.Accepted, c.Rejected)
		}
	}
	if len(f.Targets) > 0 {
		sb.WriteString("\nper-target breakdown:\n")
		fmt.Fprintf(&sb, "  %-36s %8s %9s %9s %10s %16s\n",
			"target set", "events", "attempts", "accepted", "converged", "eval mean/p95 s")
		for _, t := range f.Targets {
			lat := "-"
			if t.EvalVirtual != nil {
				lat = fmt.Sprintf("%.1f/%.1f", t.EvalVirtual.Mean(), t.EvalVirtual.P95)
			}
			fmt.Fprintf(&sb, "  %-36s %8d %9d %9d %10d %16s\n",
				t.Target, t.Events, t.Attempts, t.Accepted, t.Converged, lat)
		}
	}
	if len(f.Cache) > 0 {
		sb.WriteString("\ncache attribution (from job sidecars):\n")
		for _, c := range f.Cache {
			total := c.Hits + c.Misses
			rate := 0.0
			if total > 0 {
				rate = 100 * float64(c.Hits) / float64(total)
			}
			fmt.Fprintf(&sb, "  %-12s %6d hits / %6d misses (%5.1f%% hit rate)\n", c.Stage, c.Hits, c.Misses, rate)
		}
	}
	if f.QueueWaitMS != nil {
		sb.WriteString("\njob latency (from job sidecars):\n")
		fmt.Fprintf(&sb, "  %-22s %s\n", "queue_wait_ms", f.QueueWaitMS.Row())
		for _, s := range f.JobWallMS {
			fmt.Fprintf(&sb, "  %-22s %s\n", "wall_ms."+s.Name, s.Dist.Row())
		}
	}
	if f.Priors != nil && len(f.Priors.Entries) > 0 {
		fmt.Fprintf(&sb, "\npriors table (version %d, hash %s):\n", f.Priors.Version, f.Priors.Hash[:12])
		fmt.Fprintf(&sb, "  %-22s %-22s %8s %9s %9s\n", "class", "template", "tried", "accepted", "rejected")
		for _, e := range f.Priors.Entries {
			fmt.Fprintf(&sb, "  %-22s %-22s %8d %9d %9d\n", e.Class, e.Template, e.Tried, e.Accepted, e.Rejected)
		}
	}
	return sb.String()
}

func writeDistSection(sb *strings.Builder, title string, stats []StageStat, unit string) {
	if len(stats) == 0 {
		return
	}
	fmt.Fprintf(sb, "\n%s (%s):\n", title, unit)
	for _, s := range stats {
		fmt.Fprintf(sb, "  %-22s %s\n", s.Name, s.Dist.Row())
	}
}
