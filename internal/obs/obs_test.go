package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestNopAndEnabled(t *testing.T) {
	if Enabled(nil) || Enabled(Nop()) {
		t.Error("nil / nop observers must report disabled")
	}
	if !Enabled(NewRegistry()) {
		t.Error("a live sink must report enabled")
	}
	OrNop(nil).Emit(Event{Type: EvWarning}) // must not panic
	if o := OrNop(nil); Enabled(o) {
		t.Error("OrNop(nil) must normalize to the no-op observer")
	}
}

func TestMultiDropsDeadSinks(t *testing.T) {
	reg := NewRegistry()
	o := Multi(nil, Nop(), reg, nil)
	if o != Observer(reg) {
		t.Error("Multi with one live sink should collapse to that sink")
	}
	if Enabled(Multi(nil, Nop())) {
		t.Error("Multi with no live sinks must be the no-op observer")
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	both := Multi(reg, tw)
	both.Emit(Event{Type: EvWarning, Warn: "w"})
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	cs, _ := reg.snapshot()
	if cs["warnings"] != 1 {
		t.Errorf("registry missed the fanned-out event: %v", cs)
	}
	if !strings.Contains(buf.String(), `"warn":"w"`) {
		t.Errorf("trace missed the fanned-out event: %q", buf.String())
	}
}

func TestTagStampsSubject(t *testing.T) {
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	o := Tag(tw, "P7")
	o.Emit(Event{Type: EvWarning, Warn: "a"})
	o.Emit(Event{Type: EvWarning, Subject: "P1", Warn: "b"}) // pre-tagged wins
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if events[0].Subject != "P7" || events[1].Subject != "P1" {
		t.Errorf("subjects = %q, %q; want P7, P1", events[0].Subject, events[1].Subject)
	}
	if Enabled(Tag(nil, "P7")) {
		t.Error("tagging a dead observer must stay dead")
	}
}

func TestTraceWriterStripsWallClock(t *testing.T) {
	ev := Event{Type: EvPhaseEnd, Virtual: 5,
		Phase: &PhaseEvent{Name: "fuzz", VirtualDelta: 5, WallNS: 12345}}

	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	tw.Emit(ev)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "wall_ns") {
		t.Errorf("default trace must strip wall_ns: %s", buf.String())
	}
	if ev.Phase.WallNS != 12345 {
		t.Error("stripping must not mutate the caller's event")
	}

	buf.Reset()
	tw = NewTraceWriter(&buf)
	tw.IncludeWall = true
	tw.Emit(ev)
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"wall_ns":12345`) {
		t.Errorf("IncludeWall trace must keep wall_ns: %s", buf.String())
	}
}

func TestParseTraceRoundTrip(t *testing.T) {
	events := []Event{
		{Type: EvFuzzExec, Virtual: 0.9, Fuzz: &FuzzEvent{Exec: 1, Gained: true, Covered: 3, TotalOutcomes: 8, Corpus: 1, Tests: 1}},
		{Type: EvFuzzDone, Virtual: 1.8, Fuzz: &FuzzEvent{Exec: 2, Covered: 3, TotalOutcomes: 8, Coverage: 0.375, Plateaued: true}},
		{Type: EvWarning, Warn: "plateau"},
		{Type: EvCheck, Check: &CheckEvent{Top: "k", Errors: 2, ByClass: map[string]int{"pointer": 1, "malloc": 1}}},
	}
	var buf bytes.Buffer
	tw := NewTraceWriter(&buf)
	for _, e := range events {
		tw.Emit(e)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := ParseTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("parsed %d events, want %d", len(got), len(events))
	}
	if got[0].Fuzz == nil || !got[0].Fuzz.Gained || got[0].Virtual != 0.9 {
		t.Errorf("fuzz_exec did not round-trip: %+v", got[0])
	}
	if got[3].Check == nil || got[3].Check.ByClass["pointer"] != 1 {
		t.Errorf("hls_check did not round-trip: %+v", got[3])
	}
}

func TestParseTraceRejectsGarbage(t *testing.T) {
	_, err := ParseTrace(strings.NewReader("{\"type\":\"warning\"}\nnot json\n"))
	if err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("want a line-numbered parse error, got %v", err)
	}
}

func TestRegistryAggregation(t *testing.T) {
	r := NewRegistry()
	r.Emit(Event{Type: EvFuzzExec, Fuzz: &FuzzEvent{Gained: true}})
	r.Emit(Event{Type: EvFuzzExec, Fuzz: &FuzzEvent{Crashed: true}})
	r.Emit(Event{Type: EvFuzzDone, Virtual: 1.8, Fuzz: &FuzzEvent{Plateaued: true}})
	r.Emit(Event{Type: EvRepairInit, Repair: &RepairEvent{VirtualDelta: 50}})
	r.Emit(Event{Type: EvCandidate, Repair: &RepairEvent{Accepted: true, Evaluated: true, Style: "ok", VirtualDelta: 51}})
	r.Emit(Event{Type: EvCandidate, Repair: &RepairEvent{Style: "reject", VirtualDelta: 0.8}})
	r.Emit(Event{Type: EvRepairDone, Done: &DoneEvent{VirtualSeconds: 101.8, Compatible: true, BehaviorOK: true}})
	r.Emit(Event{Type: EvPhaseEnd, Phase: &PhaseEvent{Name: "repair", VirtualDelta: 101.8, WallNS: 2e6}})
	r.Emit(Event{Type: EvWarning, Warn: "w"})

	cs, hs := r.snapshot()
	for name, want := range map[string]int64{
		"fuzz.execs": 2, "fuzz.gained": 1, "fuzz.crashes": 1, "fuzz.plateaus": 1,
		"repair.searches": 1, "repair.candidates": 2, "repair.accepted": 1,
		"repair.rejected": 1, "repair.style_rejections": 1,
		"repair.hls_invocations": 2, "repair.compatible": 1, "warnings": 1,
	} {
		if cs[name] != want {
			t.Errorf("counter %s = %d, want %d", name, cs[name], want)
		}
	}
	if h := hs["repair.eval_virtual_s"]; h.Count != 3 || h.Sum != 101.8 {
		t.Errorf("eval histogram n=%d sum=%.1f, want n=3 sum=101.8", h.Count, h.Sum)
	}
	if h := hs["phase.wall_ms.repair"]; h.Count != 1 || h.Sum != 2 {
		t.Errorf("wall histogram n=%d sum=%.1f, want n=1 sum=2", h.Count, h.Sum)
	}
	text := r.Text()
	if !strings.Contains(text, "repair.candidates") || !strings.Contains(text, "phase.wall_ms.repair") {
		t.Errorf("Text() missing entries:\n%s", text)
	}
	if _, err := r.JSON(); err != nil {
		t.Fatal(err)
	}
}

// synthetic builds a consistent single-run event stream: an initial
// evaluation, one rejected and two accepted candidates, and a matching
// repair_done snapshot.
func synthetic() []Event {
	return []Event{
		{Type: EvRepairInit, Virtual: 60, Repair: &RepairEvent{
			Step: "init", Errors: 3, PassRatio: 0.5, VirtualDelta: 60, CostCompile: 60}},
		{Type: EvCandidate, Virtual: 120.8, Repair: &RepairEvent{
			Step: "repair", Edits: []string{"resize(buf, 2048)"}, Accepted: true, Evaluated: true,
			Errors: 1, PassRatio: 1, VirtualDelta: 60.8, CostStyle: 0.8, CostCompile: 60}},
		{Type: EvCandidate, Virtual: 121.6, Repair: &RepairEvent{
			Step: "repair", Edits: []string{"resize(other, 16)"}, Style: "reject",
			Reason: "style-reject", VirtualDelta: 0.8, CostStyle: 0.8}},
		{Type: EvCandidate, Virtual: 183.4, Repair: &RepairEvent{
			Step: "repair", Edits: []string{"malloc_to_array(p)"}, Accepted: true, Evaluated: true,
			Errors: 0, PassRatio: 1, LatencyMS: 0.4, VirtualDelta: 61.8, CostStyle: 0.8, CostCompile: 60, CostSim: 1}},
		{Type: EvRepairDone, Virtual: 183.4, Done: &DoneEvent{
			Attempts: 3, Accepted: 2, Rejected: 1, StyleRejections: 1, HLSInvocations: 3,
			VirtualSeconds: 183.4, EditLog: []string{"resize(buf, 2048)", "malloc_to_array(p)"},
			Compatible: true, BehaviorOK: true}},
	}
}

func TestBuildReportAndCheck(t *testing.T) {
	rep := BuildReport(synthetic())
	if len(rep.Subjects) != 1 {
		t.Fatalf("subjects = %d, want 1", len(rep.Subjects))
	}
	s := rep.Subjects[0]
	if len(s.Trajectory) != 3 { // init + 2 accepted
		t.Errorf("trajectory has %d points, want 3", len(s.Trajectory))
	}
	if s.CandidateEvents != 3 || s.AcceptedEvents != 2 {
		t.Errorf("candidates %d/%d, want 3/2", s.CandidateEvents, s.AcceptedEvents)
	}
	if len(s.Patterns) != 2 { // resize (tried twice), malloc_to_array
		t.Errorf("patterns %v, want resize + malloc_to_array", s.Patterns)
	}
	if s.Patterns[0].Template != "resize" || s.Patterns[0].Tried != 2 || s.Patterns[0].Accepted != 1 {
		t.Errorf("resize row = %+v", s.Patterns[0])
	}
	if got := s.Budget.StyleSeconds; math.Abs(got-2.4) > 1e-9 {
		t.Errorf("style seconds %.2f, want 2.4", got)
	}
	if problems := rep.Check(); len(problems) != 0 {
		t.Fatalf("consistent trace flagged: %v", problems)
	}
	text := rep.Text()
	for _, want := range []string{"Figure 2", "fix-pattern frequency", "malloc_to_array", "repair: compatible"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
}

func TestCheckFlagsInconsistentTrace(t *testing.T) {
	// Drop one accepted candidate: attempts, accepted count, the edit
	// chain, and the virtual clock all stop matching the summary.
	events := synthetic()
	broken := append(append([]Event{}, events[:3]...), events[4])
	problems := BuildReport(broken).Check()
	if len(problems) < 3 {
		t.Fatalf("expected multiple violations, got %v", problems)
	}
	for _, p := range problems {
		if strings.Contains(p, "attempts") {
			return
		}
	}
	t.Errorf("no attempts mismatch among: %v", problems)
}

func TestBuildReportGroupsBySubject(t *testing.T) {
	var events []Event
	for _, id := range []string{"P2", "P1", "P2"} {
		events = append(events, Event{Type: EvWarning, Subject: id, Warn: "w-" + id})
	}
	rep := BuildReport(events)
	if len(rep.Subjects) != 2 {
		t.Fatalf("subjects = %d, want 2", len(rep.Subjects))
	}
	// First-seen order, not sorted.
	if rep.Subjects[0].Subject != "P2" || rep.Subjects[1].Subject != "P1" {
		t.Errorf("order = %s, %s; want P2, P1", rep.Subjects[0].Subject, rep.Subjects[1].Subject)
	}
	if len(rep.Subjects[0].Warnings) != 2 {
		t.Errorf("P2 warnings = %d, want 2", len(rep.Subjects[0].Warnings))
	}
}
