package obs

// Type tags one structured event.
type Type string

// The event vocabulary. Each type maps to a paper artifact; see
// docs/ARCHITECTURE.md ("Observability") for the full table.
const (
	// EvPhaseStart / EvPhaseEnd bracket one pipeline phase (fuzz,
	// profile, repair). The end event carries the phase's virtual-time
	// delta and (outside deterministic traces) its wall duration.
	EvPhaseStart Type = "phase_start"
	EvPhaseEnd   Type = "phase_end"
	// EvFuzzExec is one committed fuzz execution: coverage state, corpus
	// size, and the retain/discard decision (§4's campaign loop; the
	// coverage-over-iterations curve).
	EvFuzzExec Type = "fuzz_exec"
	// EvFuzzDone summarizes a finished campaign (Table 4's row inputs).
	EvFuzzDone Type = "fuzz_done"
	// EvRepairInit is the fitness evaluation of the initial version
	// P_broken — the t=0 point of Figure 2's trajectory.
	EvRepairInit Type = "repair_init"
	// EvCandidate is one tried repair candidate: edit chain, error
	// class, style/HLS/difftest verdicts, accept/reject reason, and the
	// virtual-cost delta it was charged (Figure 2 / Table 3 attempts).
	EvCandidate Type = "repair_candidate"
	// EvRepairDone snapshots the final search Stats (Table 3's
	// attempts / virtual minutes / edit-chain columns).
	EvRepairDone Type = "repair_done"
	// EvCheck is one standalone synthesizability-checker run
	// (internal/hls/check) with its diagnostic counts by class.
	EvCheck Type = "hls_check"
	// EvWarning is an anomaly worth surfacing, e.g. a fuzz campaign
	// plateauing before its execution budget.
	EvWarning Type = "warning"
)

// Event is one structured record. Type selects which payload pointer is
// populated; all other payloads are nil. Virtual is the emitting
// subsystem's cumulative virtual clock (seconds) at emission — the fuzz
// campaign and the repair search each run their own clock, phases carry
// the pipeline-level total.
type Event struct {
	Type    Type   `json:"type"`
	Subject string `json:"subject,omitempty"` // eval subject id (P1..P10) when run under the harness
	// Target is the canonical target-set string ("backend:device", or
	// "+"-joined for multi-target runs) the emitting run was built for.
	// It is stamped only at configuration edges (CLI target flags, serve
	// job requests) via TagTarget, never by the library pipeline itself,
	// so untargeted traces stay byte-identical to pre-target-set runs.
	Target  string  `json:"target,omitempty"`
	Virtual float64 `json:"virtual"`

	Phase  *PhaseEvent  `json:"phase,omitempty"`
	Fuzz   *FuzzEvent   `json:"fuzz,omitempty"`
	Repair *RepairEvent `json:"repair,omitempty"`
	Done   *DoneEvent   `json:"done,omitempty"`
	Check  *CheckEvent  `json:"check,omitempty"`
	Warn   string       `json:"warn,omitempty"`
}

// PhaseEvent brackets one pipeline phase.
type PhaseEvent struct {
	Name string `json:"name"`
	// VirtualDelta is the virtual seconds the phase consumed (end only).
	VirtualDelta float64 `json:"virtual_delta,omitempty"`
	// WallNS is the real duration (end only). Nondeterministic: the
	// trace writer strips it unless IncludeWall is set; the metrics
	// registry aggregates it into a histogram.
	WallNS int64 `json:"wall_ns,omitempty"`
}

// FuzzEvent is one committed fuzz execution, or (for EvFuzzDone) the
// campaign summary.
type FuzzEvent struct {
	// Exec is the 1-based execution index (== Campaign.Execs after the
	// commit).
	Exec int `json:"exec,omitempty"`
	// Gained reports new branch-outcome coverage from this execution.
	Gained bool `json:"gained,omitempty"`
	// Crashed inputs contribute coverage but are never retained.
	Crashed bool `json:"crashed,omitempty"`
	// Invalid marks a type-invalid input executed under the untyped
	// ablation (it dies at the kernel entry).
	Invalid bool `json:"invalid,omitempty"`
	// Covered / TotalOutcomes is the cumulative branch-outcome coverage
	// after this execution.
	Covered       int `json:"covered"`
	TotalOutcomes int `json:"total_outcomes"`
	// BitmapBits is the size of the interpreter's coverage bitmap.
	BitmapBits int `json:"bitmap_bits,omitempty"`
	// Corpus is the retained mutation queue length; Tests the retained
	// test-suite length (they differ by seeds only).
	Corpus int `json:"corpus"`
	Tests  int `json:"tests"`
	// SinceGain is the plateau counter after this execution.
	SinceGain int `json:"since_gain"`
	// Failure labels a contained stage failure ("<stage>/<class>") when
	// the execution was swallowed by the guard layer instead of running.
	Failure string `json:"failure,omitempty"`
	// Campaign-summary fields (EvFuzzDone only).
	Coverage  float64 `json:"coverage,omitempty"`
	Plateaued bool    `json:"plateaued,omitempty"`
	// StageFailures is the campaign's contained-failure total (EvFuzzDone
	// only).
	StageFailures int `json:"stage_failures,omitempty"`
}

// RepairEvent is one tried repair candidate (EvCandidate) or the initial
// evaluation (EvRepairInit).
type RepairEvent struct {
	// Step is "init", "repair" (compatibility phase) or "perf"
	// (performance exploration).
	Step string `json:"step"`
	// Iter is the search iteration (Stats.Iterations at trial time).
	Iter int `json:"iter,omitempty"`
	// Edits is the candidate's edit chain, rendered like the paper:
	// template(target, note).
	Edits []string `json:"edits,omitempty"`
	// Class is the error class the chain targets.
	Class string `json:"class,omitempty"`
	// Style is the style-checker verdict: "ok", "reject", or "" when the
	// checker is disabled.
	Style string `json:"style,omitempty"`
	// Evaluated reports the full compile+test evaluation ran; the
	// verdict fields below are only meaningful when true.
	Evaluated bool `json:"evaluated,omitempty"`
	// Errors is the HLS diagnostic count of the candidate.
	Errors int `json:"errors"`
	// PassRatio / BehaviorOK are the differential-test verdict.
	PassRatio  float64 `json:"pass_ratio"`
	BehaviorOK bool    `json:"behavior_ok,omitempty"`
	// LatencyMS is the simulated FPGA latency (0 when the design never
	// reached simulation).
	LatencyMS float64 `json:"latency_ms,omitempty"`
	// Accepted / Reason is the search decision: "accepted",
	// "no-improvement", "style-reject", or "stage-failure".
	Accepted bool   `json:"accepted,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Failure labels the contained stage failure ("<stage>/<class>")
	// when Reason is "stage-failure".
	Failure string `json:"failure,omitempty"`
	// VirtualDelta is the total virtual cost charged for this trial,
	// split into its components (one toolchain license ⇒ these sum over
	// the trace to the search's VirtualSeconds).
	VirtualDelta float64 `json:"virtual_delta"`
	CostStyle    float64 `json:"cost_style,omitempty"`
	CostCompile  float64 `json:"cost_compile,omitempty"`
	CostSim      float64 `json:"cost_sim,omitempty"`
}

// DoneEvent snapshots the final repair Stats (EvRepairDone) — the
// Table 3 row for the run.
type DoneEvent struct {
	Attempts            int      `json:"attempts"`
	Accepted            int      `json:"accepted"`
	Rejected            int      `json:"rejected"`
	StyleChecks         int      `json:"style_checks"`
	StyleRejections     int      `json:"style_rejections"`
	HLSInvocations      int      `json:"hls_invocations"`
	Iterations          int      `json:"iterations"`
	VirtualSeconds      float64  `json:"virtual_seconds"`
	SecondsToCompatible float64  `json:"seconds_to_compatible,omitempty"`
	EditLog             []string `json:"edit_log,omitempty"`
	Compatible          bool     `json:"compatible"`
	BehaviorOK          bool     `json:"behavior_ok"`
	Improved            bool     `json:"improved,omitempty"`
	// StageFailures counts candidates rejected because a toolchain stage
	// crashed or overran its budget (contained by the guard layer).
	StageFailures int `json:"stage_failures,omitempty"`
	// Targets lists the canonical target names of a multi-target search,
	// and ParetoSize the number of non-dominated programs it archived.
	// Both are absent from legacy and single-target runs, whose traces
	// stay byte-identical to pre-target-set behavior.
	Targets    []string `json:"targets,omitempty"`
	ParetoSize int      `json:"pareto_size,omitempty"`
}

// CheckEvent is one standalone synthesizability-checker run.
type CheckEvent struct {
	Top     string         `json:"top"`
	Errors  int            `json:"errors"`
	ByClass map[string]int `json:"by_class,omitempty"`
}

// Observer receives structured events. Implementations must tolerate
// concurrent Emit calls: one trace can interleave independent runs (the
// eval harness fans subjects out across CPUs), even though any single
// run emits from one goroutine only.
type Observer interface {
	Emit(e Event)
}

// nop is the default observer: it drops everything.
type nop struct{}

func (nop) Emit(Event) {}

// Nop returns the no-op observer.
func Nop() Observer { return nop{} }

// OrNop normalizes a possibly-nil observer so call sites never branch.
func OrNop(o Observer) Observer {
	if o == nil {
		return nop{}
	}
	return o
}

// Enabled reports whether o actually records events — instrumentation on
// hot paths (one event per fuzz execution) checks it once to skip
// building event payloads for the no-op sink.
func Enabled(o Observer) bool {
	if o == nil {
		return false
	}
	_, isNop := o.(nop)
	return !isNop
}

// multi fans one event out to several sinks, in order.
type multi []Observer

func (m multi) Emit(e Event) {
	for _, o := range m {
		o.Emit(e)
	}
}

// Multi combines observers (nil and no-op entries are dropped). With
// zero live sinks it returns the no-op observer.
func Multi(os ...Observer) Observer {
	var live multi
	for _, o := range os {
		if Enabled(o) {
			live = append(live, o)
		}
	}
	switch len(live) {
	case 0:
		return nop{}
	case 1:
		return live[0]
	}
	return live
}

// tagged stamps a subject id on every event that does not carry one.
type tagged struct {
	inner   Observer
	subject string
}

func (t tagged) Emit(e Event) {
	if e.Subject == "" {
		e.Subject = t.subject
	}
	t.inner.Emit(e)
}

// Tag wraps o so events are attributed to one evaluation subject. The
// harness uses it to keep concurrently-traced subjects separable in a
// single trace file.
func Tag(o Observer, subject string) Observer {
	if !Enabled(o) {
		return nop{}
	}
	return tagged{inner: o, subject: subject}
}

// targetTagged stamps a target-set string on every event that does not
// carry one.
type targetTagged struct {
	inner  Observer
	target string
}

func (t targetTagged) Emit(e Event) {
	if e.Target == "" {
		e.Target = t.target
	}
	t.inner.Emit(e)
}

// TagTarget wraps o so events are attributed to one target set (the
// canonical hls.TargetSetString form). Stamping happens only at
// configuration edges — CLI target flags and serve job requests — which
// is what keeps library-level traces unchanged for untargeted runs.
func TagTarget(o Observer, target string) Observer {
	if !Enabled(o) {
		return nop{}
	}
	if target == "" {
		return o
	}
	return targetTagged{inner: o, target: target}
}
