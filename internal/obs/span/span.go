// Package span derives hierarchical spans from a flat obs event
// stream. It is a pure post-processing layer: Build is a deterministic
// function of the events, so two byte-identical traces always produce
// identical span trees — the layer adds no instrumentation, no
// wall-clock reads, and no allocation on the emitting path.
//
// The hierarchy mirrors the pipeline:
//
//	run (one per subject)
//	└── phase ("fuzz" | "profile" | "repair", from phase_start/end)
//	    └── stage (repair step: "init" | "repair" | "perf"; fuzz: "execs")
//	        └── candidate / exec (one tried repair candidate or one
//	            committed fuzz execution)
//	            └── cost ("style" | "compile" | "sim" components)
//
// Virtual cost attributes bottom-up: a span's Total is its Self cost
// plus its children's Totals. Wall time attaches only where the event
// stream carries it (phase_end events traced with IncludeWall); the
// default deterministic trace has none, and the span layer never
// invents it. Cache activity is likewise invisible in a deterministic
// trace (the cache-parity contract requires byte-identical traces with
// and without a cache), so cache hits attach at the run level from an
// optional metadata sidecar (RunMeta) written by the serving layer.
package span

import (
	"fmt"
	"strings"

	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/obs"
)

// Kind classifies one span.
type Kind string

const (
	KindRun       Kind = "run"
	KindPhase     Kind = "phase"
	KindStage     Kind = "stage"
	KindCandidate Kind = "candidate"
	KindExec      Kind = "exec"
	KindCheck     Kind = "check"
	KindCost      Kind = "cost"
)

// Span is one node of the derived tree.
type Span struct {
	Kind Kind   `json:"kind"`
	Name string `json:"name"`
	// Class is the targeted error class (candidate spans).
	Class string `json:"class,omitempty"`
	// Start / End bound the span on the emitting subsystem's virtual
	// clock (seconds). Phases run on the pipeline clock; candidates and
	// execs on their search/campaign clocks.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Self is the virtual cost attributed directly to this span; Total
	// adds every descendant's Self.
	Self  float64 `json:"self"`
	Total float64 `json:"total"`
	// WallNS is the real duration when the trace carried it (0 in
	// deterministic traces).
	WallNS int64 `json:"wall_ns,omitempty"`
	// Accepted / Reason describe a candidate span's verdict.
	Accepted bool   `json:"accepted,omitempty"`
	Reason   string `json:"reason,omitempty"`
	// Events counts the events folded into this span (self only).
	Events   int     `json:"events"`
	Children []*Span `json:"children,omitempty"`
}

// Run is the derived tree for one subject.
type Run struct {
	Subject string `json:"subject"`
	Root    *Span  `json:"root"`
	// Warnings collects warning-event payloads in emission order.
	Warnings []string `json:"warnings,omitempty"`
	// CacheHits / CacheMisses attribute cache activity to the run when
	// a metadata sidecar supplied it (zero otherwise — deterministic
	// traces cannot carry cache activity by contract).
	CacheHits   int64 `json:"cache_hits,omitempty"`
	CacheMisses int64 `json:"cache_misses,omitempty"`
}

// RunMeta is the nondeterministic operational sidecar a serving layer
// can persist next to a deterministic trace: correlation identity,
// wall-clock measurements, and cache attribution. Everything in it is
// additive — attaching a meta never changes the span tree derived from
// the trace itself.
type RunMeta struct {
	// ID / CorrelationID identify the job that produced the trace.
	ID            string `json:"id,omitempty"`
	CorrelationID string `json:"correlation_id,omitempty"`
	Kind          string `json:"kind,omitempty"`
	Client        string `json:"client,omitempty"`
	State         string `json:"state,omitempty"`
	Partial       bool   `json:"partial,omitempty"`
	// Resumed marks a job that ran (or re-ran) after a journal replay —
	// a recovery marker that rides in the sidecar, never in the trace,
	// so resumed traces stay byte-identical to uninterrupted ones.
	Resumed bool `json:"resumed,omitempty"`
	// QueueWaitMS / WallMS are the job's real queue wait and run time.
	QueueWaitMS float64 `json:"queue_wait_ms,omitempty"`
	WallMS      float64 `json:"wall_ms,omitempty"`
	// Events is the number of trace events the job emitted.
	Events int `json:"events,omitempty"`
	// Cache is the job-attributed evaluation-cache activity
	// (approximate when jobs share one cache concurrently).
	Cache *evalcache.Stats `json:"cache,omitempty"`
}

// Build derives one Run per subject from the event stream, preserving
// first-seen subject order. It is total: malformed streams (unpaired
// phase events, missing summaries) still yield a tree covering every
// event seen.
func Build(events []obs.Event) []*Run {
	var runs []*Run
	byID := map[string]*runBuilder{}
	order := []string{}
	get := func(id string) *runBuilder {
		if b, ok := byID[id]; ok {
			return b
		}
		b := newRunBuilder(id)
		byID[id] = b
		order = append(order, id)
		return b
	}
	for _, e := range events {
		get(e.Subject).add(e)
	}
	for _, id := range order {
		runs = append(runs, byID[id].finish())
	}
	return runs
}

// Attach folds a metadata sidecar into a derived run: wall time onto
// the root span, cache attribution onto the run. The span topology is
// untouched.
func Attach(r *Run, meta *RunMeta) {
	if r == nil || meta == nil {
		return
	}
	if meta.WallMS > 0 && r.Root.WallNS == 0 {
		r.Root.WallNS = int64(meta.WallMS * 1e6)
	}
	if meta.Cache != nil {
		r.CacheHits += meta.Cache.Hits()
		r.CacheMisses += meta.Cache.Misses()
	}
}

// runBuilder accumulates one subject's events into a tree.
type runBuilder struct {
	run *Run
	// open is the current phase span (nil between phases).
	open *Span
	// stage is the current stage span under the open phase, keyed by
	// its name so consecutive same-step candidates share one stage.
	stage *Span
	// prevFuzzVirtual tracks the fuzz campaign clock for per-exec
	// deltas (fuzz events carry cumulative virtual only).
	prevFuzzVirtual float64
}

func newRunBuilder(subject string) *runBuilder {
	name := "run"
	if subject != "" {
		name = subject
	}
	return &runBuilder{run: &Run{
		Subject: subject,
		Root:    &Span{Kind: KindRun, Name: name},
	}}
}

// parent returns the innermost open container for a leaf span.
func (b *runBuilder) parent() *Span {
	if b.stage != nil {
		return b.stage
	}
	if b.open != nil {
		return b.open
	}
	return b.run.Root
}

// container returns the span new stages hang from.
func (b *runBuilder) container() *Span {
	if b.open != nil {
		return b.open
	}
	return b.run.Root
}

// stageFor returns (creating on demand) the stage span named name under
// the open phase.
func (b *runBuilder) stageFor(name string) *Span {
	if b.stage != nil && b.stage.Name == name {
		return b.stage
	}
	c := b.container()
	for _, ch := range c.Children {
		if ch.Kind == KindStage && ch.Name == name {
			b.stage = ch
			return ch
		}
	}
	s := &Span{Kind: KindStage, Name: name}
	c.Children = append(c.Children, s)
	b.stage = s
	return s
}

func (b *runBuilder) add(e obs.Event) {
	switch e.Type {
	case obs.EvPhaseStart:
		if e.Phase == nil {
			return
		}
		p := &Span{Kind: KindPhase, Name: e.Phase.Name, Start: e.Virtual, End: e.Virtual, Events: 1}
		b.run.Root.Children = append(b.run.Root.Children, p)
		b.open = p
		b.stage = nil
		if e.Phase.Name == "fuzz" {
			b.prevFuzzVirtual = 0
		}
	case obs.EvPhaseEnd:
		if e.Phase == nil {
			return
		}
		p := b.open
		if p == nil || p.Name != e.Phase.Name {
			// Unpaired end: synthesize the phase so the event is kept.
			p = &Span{Kind: KindPhase, Name: e.Phase.Name, Start: e.Virtual - e.Phase.VirtualDelta}
			b.run.Root.Children = append(b.run.Root.Children, p)
		}
		p.End = e.Virtual
		p.Events++
		p.WallNS = e.Phase.WallNS
		// The phase's Self is whatever its children do not explain;
		// settle it in finish once the children are final.
		p.Total = e.Phase.VirtualDelta
		b.open = nil
		b.stage = nil
	case obs.EvFuzzExec:
		if e.Fuzz == nil {
			return
		}
		st := b.stageFor("execs")
		delta := e.Virtual - b.prevFuzzVirtual
		if delta < 0 {
			delta = 0
		}
		b.prevFuzzVirtual = e.Virtual
		leaf := &Span{
			Kind: KindExec, Name: fmt.Sprintf("exec %d", e.Fuzz.Exec),
			Start: e.Virtual - delta, End: e.Virtual,
			Self: delta, Events: 1,
		}
		if e.Fuzz.Failure != "" {
			leaf.Reason = e.Fuzz.Failure
		}
		st.Children = append(st.Children, leaf)
		if st.Start == 0 && len(st.Children) == 1 {
			st.Start = leaf.Start
		}
		st.End = e.Virtual
	case obs.EvFuzzDone:
		if st := b.stageFor("execs"); st != nil {
			st.End = e.Virtual
			st.Events++
		}
		b.stage = nil
	case obs.EvRepairInit, obs.EvCandidate:
		if e.Repair == nil {
			return
		}
		st := b.stageFor(e.Repair.Step)
		leaf := &Span{
			Kind:  KindCandidate,
			Name:  strings.Join(e.Repair.Edits, " ; "),
			Class: e.Repair.Class,
			Start: e.Virtual - e.Repair.VirtualDelta, End: e.Virtual,
			Accepted: e.Repair.Accepted, Reason: e.Repair.Reason,
			Events: 1,
		}
		if e.Type == obs.EvRepairInit {
			leaf.Name = "initial version"
		}
		explained := 0.0
		for _, c := range []struct {
			name string
			cost float64
		}{{"style", e.Repair.CostStyle}, {"compile", e.Repair.CostCompile}, {"sim", e.Repair.CostSim}} {
			if c.cost == 0 {
				continue
			}
			leaf.Children = append(leaf.Children, &Span{
				Kind: KindCost, Name: c.name, Self: c.cost, Total: c.cost,
			})
			explained += c.cost
		}
		// Any residue the cost split does not explain stays on the
		// candidate itself, so totals always reconcile with the clock.
		leaf.Self = e.Repair.VirtualDelta - explained
		if leaf.Self < 0 {
			leaf.Self = 0
		}
		st.Children = append(st.Children, leaf)
		if len(st.Children) == 1 {
			st.Start = leaf.Start
		}
		st.End = e.Virtual
	case obs.EvRepairDone:
		b.stage = nil
	case obs.EvCheck:
		p := b.parent()
		name := "check"
		if e.Check != nil {
			name = "check " + e.Check.Top
		}
		p.Children = append(p.Children, &Span{
			Kind: KindCheck, Name: name, Start: e.Virtual, End: e.Virtual, Events: 1,
		})
	case obs.EvWarning:
		b.run.Warnings = append(b.run.Warnings, e.Warn)
	}
}

// finish settles totals bottom-up and returns the run.
func (b *runBuilder) finish() *Run {
	settle(b.run.Root)
	return b.run
}

// settle computes Total = Self + sum(children Total), except where an
// authoritative phase delta was recorded: there the phase keeps its
// reported Total and absorbs the unexplained residue as Self.
func settle(s *Span) float64 {
	var kids float64
	for _, c := range s.Children {
		kids += settle(c)
	}
	if s.Kind == KindPhase && s.Total > 0 {
		if self := s.Total - kids; self > 0 {
			s.Self = self
		}
		return s.Total
	}
	s.Total = s.Self + kids
	return s.Total
}

// CriticalPath walks the tree from the root, at each level descending
// into the child with the largest Total (ties break toward the earlier
// child, keeping the path deterministic). The returned slice starts at
// the root and ends at a leaf; for a single-clock run this is the
// dominant cost chain — the place an optimizer should look first.
func (r *Run) CriticalPath() []*Span {
	var path []*Span
	cur := r.Root
	for cur != nil {
		path = append(path, cur)
		var next *Span
		for _, c := range cur.Children {
			if next == nil || c.Total > next.Total {
				next = c
			}
		}
		cur = next
	}
	return path
}

// Text renders the tree with per-span cost attribution, depth-first.
// Spans with many children (fuzz execs, candidate sweeps) elide the
// tail: the maxChildren highest-cost children are shown, the rest are
// summarized in one line. maxChildren <= 0 shows everything.
func (r *Run) Text(maxChildren int) string {
	var sb strings.Builder
	head := "run"
	if r.Subject != "" {
		head = r.Subject
	}
	fmt.Fprintf(&sb, "== %s ==\n", head)
	if r.CacheHits+r.CacheMisses > 0 {
		fmt.Fprintf(&sb, "cache: %d hits / %d misses\n", r.CacheHits, r.CacheMisses)
	}
	writeSpan(&sb, r.Root, 0, maxChildren)
	crit := r.CriticalPath()
	sb.WriteString("critical path:")
	for i, s := range crit {
		if i > 0 {
			sb.WriteString(" ->")
		}
		fmt.Fprintf(&sb, " %s", spanLabel(s))
	}
	sb.WriteString("\n")
	return sb.String()
}

func spanLabel(s *Span) string {
	if s.Name == "" {
		return string(s.Kind)
	}
	return fmt.Sprintf("%s[%s]", s.Kind, s.Name)
}

func writeSpan(sb *strings.Builder, s *Span, depth, maxChildren int) {
	fmt.Fprintf(sb, "%s%-10s %-32s total=%10.3fs self=%8.3fs",
		strings.Repeat("  ", depth), s.Kind, clip(s.Name, 32), s.Total, s.Self)
	if s.WallNS > 0 {
		fmt.Fprintf(sb, " wall=%.1fms", float64(s.WallNS)/1e6)
	}
	if s.Accepted {
		sb.WriteString(" accepted")
	} else if s.Reason != "" && s.Reason != "accepted" {
		fmt.Fprintf(sb, " %s", s.Reason)
	}
	sb.WriteString("\n")
	kids := s.Children
	if maxChildren > 0 && len(kids) > maxChildren {
		// Show the costliest children, keep original order among them.
		rs := make([]ranked, len(kids))
		for i, c := range kids {
			rs[i] = ranked{i, c}
		}
		// Selection by cost: simple partial sort is overkill here; a
		// full sort on a copy keeps the code obvious.
		sortRanked(rs)
		keep := map[int]bool{}
		for _, r := range rs[:maxChildren] {
			keep[r.idx] = true
		}
		var shown []*Span
		var elided int
		var elidedCost float64
		for i, c := range kids {
			if keep[i] {
				shown = append(shown, c)
			} else {
				elided++
				elidedCost += c.Total
			}
		}
		for _, c := range shown {
			writeSpan(sb, c, depth+1, maxChildren)
		}
		fmt.Fprintf(sb, "%s… %d more spans (total=%.3fs)\n",
			strings.Repeat("  ", depth+1), elided, elidedCost)
		return
	}
	for _, c := range kids {
		writeSpan(sb, c, depth+1, maxChildren)
	}
}

// sortRanked orders by descending Total, index ascending on ties
// (insertion sort: child lists are small once elision applies).
func sortRanked(rs []ranked) {
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0; j-- {
			a, b := rs[j-1], rs[j]
			if a.sp.Total > b.sp.Total || (a.sp.Total == b.sp.Total && a.idx < b.idx) {
				break
			}
			rs[j-1], rs[j] = b, a
		}
	}
}

type ranked struct {
	idx int
	sp  *Span
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
