package span

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/obs"
)

// stream builds a small but complete run: a fuzz phase with three
// executions, then a repair phase with an init evaluation and two
// candidates (one accepted).
func stream() []obs.Event {
	return []obs.Event{
		{Type: obs.EvPhaseStart, Virtual: 0, Phase: &obs.PhaseEvent{Name: "fuzz"}},
		{Type: obs.EvFuzzExec, Virtual: 0.5, Fuzz: &obs.FuzzEvent{Exec: 1, Covered: 1, TotalOutcomes: 4}},
		{Type: obs.EvFuzzExec, Virtual: 1.0, Fuzz: &obs.FuzzEvent{Exec: 2, Covered: 2, TotalOutcomes: 4}},
		{Type: obs.EvFuzzExec, Virtual: 1.2, Fuzz: &obs.FuzzEvent{Exec: 3, Covered: 2, TotalOutcomes: 4}},
		{Type: obs.EvFuzzDone, Virtual: 1.2, Fuzz: &obs.FuzzEvent{Exec: 3, Covered: 2, TotalOutcomes: 4, Coverage: 0.5}},
		{Type: obs.EvPhaseEnd, Virtual: 1.2, Phase: &obs.PhaseEvent{Name: "fuzz", VirtualDelta: 1.2}},
		{Type: obs.EvPhaseStart, Virtual: 1.2, Phase: &obs.PhaseEvent{Name: "repair"}},
		{Type: obs.EvRepairInit, Virtual: 60, Repair: &obs.RepairEvent{
			Step: "init", Errors: 2, VirtualDelta: 60, CostCompile: 60}},
		{Type: obs.EvCandidate, Virtual: 120.8, Repair: &obs.RepairEvent{
			Step: "repair", Edits: []string{"resize(buf, 2048)"}, Class: "dynamic_data",
			Accepted: true, Reason: "accepted", Evaluated: true,
			VirtualDelta: 60.8, CostStyle: 0.8, CostCompile: 60}},
		{Type: obs.EvCandidate, Virtual: 121.6, Repair: &obs.RepairEvent{
			Step: "repair", Edits: []string{"resize(other, 16)"}, Class: "dynamic_data",
			Style: "reject", Reason: "style-reject", VirtualDelta: 0.8, CostStyle: 0.8}},
		{Type: obs.EvRepairDone, Virtual: 121.6, Done: &obs.DoneEvent{
			Attempts: 2, Accepted: 1, Rejected: 1, VirtualSeconds: 121.6}},
		{Type: obs.EvPhaseEnd, Virtual: 122.8, Phase: &obs.PhaseEvent{Name: "repair", VirtualDelta: 121.6}},
		{Type: obs.EvWarning, Virtual: 122.8, Warn: "late plateau"},
	}
}

func TestBuildHierarchyAndTotals(t *testing.T) {
	runs := Build(stream())
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	r := runs[0]
	root := r.Root
	if root.Kind != KindRun || len(root.Children) != 2 {
		t.Fatalf("root has %d phases, want 2", len(root.Children))
	}
	fuzzPhase, repairPhase := root.Children[0], root.Children[1]
	if fuzzPhase.Name != "fuzz" || repairPhase.Name != "repair" {
		t.Fatalf("phase order: %q, %q", fuzzPhase.Name, repairPhase.Name)
	}
	// Fuzz: one "execs" stage with three exec leaves whose deltas sum
	// to the phase total.
	if len(fuzzPhase.Children) != 1 || fuzzPhase.Children[0].Name != "execs" {
		t.Fatalf("fuzz phase children: %+v", fuzzPhase.Children)
	}
	execs := fuzzPhase.Children[0]
	if len(execs.Children) != 3 {
		t.Fatalf("got %d exec spans, want 3", len(execs.Children))
	}
	if got := execs.Total; got != 1.2 {
		t.Errorf("execs total %.3f, want 1.2", got)
	}
	if fuzzPhase.Total != 1.2 {
		t.Errorf("fuzz phase total %.3f, want 1.2", fuzzPhase.Total)
	}
	// Repair: init + repair stages, candidates with cost-component
	// children, and the phase's authoritative delta preserved.
	if repairPhase.Total != 121.6 {
		t.Errorf("repair phase total %.3f, want 121.6", repairPhase.Total)
	}
	var stages []string
	for _, st := range repairPhase.Children {
		stages = append(stages, st.Name)
	}
	if strings.Join(stages, ",") != "init,repair" {
		t.Fatalf("repair stages: %v", stages)
	}
	repairStage := repairPhase.Children[1]
	if len(repairStage.Children) != 2 {
		t.Fatalf("got %d candidates, want 2", len(repairStage.Children))
	}
	acc := repairStage.Children[0]
	if !acc.Accepted || acc.Class != "dynamic_data" {
		t.Errorf("accepted candidate: %+v", acc)
	}
	// Cost split: style + compile children, totals reconcile.
	if len(acc.Children) != 2 {
		t.Fatalf("accepted candidate has %d cost spans, want 2", len(acc.Children))
	}
	if acc.Total != 60.8 {
		t.Errorf("candidate total %.3f, want 60.8", acc.Total)
	}
	if len(r.Warnings) != 1 || r.Warnings[0] != "late plateau" {
		t.Errorf("warnings: %v", r.Warnings)
	}
}

func TestBuildIsDeterministic(t *testing.T) {
	a := Build(stream())
	b := Build(stream())
	ta, tb := a[0].Text(0), b[0].Text(0)
	if ta != tb {
		t.Fatalf("two builds of the same stream render differently:\n%s\n---\n%s", ta, tb)
	}
}

func TestCriticalPathFollowsDominantCost(t *testing.T) {
	runs := Build(stream())
	path := runs[0].CriticalPath()
	var names []string
	for _, s := range path {
		names = append(names, string(s.Kind)+":"+s.Name)
	}
	got := strings.Join(names, " ")
	// The repair phase dominates (121.6 vs 1.2), within it the repair
	// stage, within that the accepted candidate, whose compile cost is
	// the largest component.
	want := "run:run phase:repair stage:repair candidate:resize(buf, 2048) cost:compile"
	if got != want {
		t.Fatalf("critical path:\n got %s\nwant %s", got, want)
	}
}

func TestBuildGroupsSubjects(t *testing.T) {
	var events []obs.Event
	for _, sub := range []string{"P1", "P2"} {
		for _, e := range stream() {
			e.Subject = sub
			events = append(events, e)
		}
	}
	runs := Build(events)
	if len(runs) != 2 || runs[0].Subject != "P1" || runs[1].Subject != "P2" {
		t.Fatalf("subject grouping: %+v", runs)
	}
}

func TestAttachMeta(t *testing.T) {
	runs := Build(stream())
	r := runs[0]
	Attach(r, &RunMeta{
		ID: "j-000001", WallMS: 12.5,
		Cache: &evalcache.Stats{Stages: map[evalcache.Stage]evalcache.StageStats{
			evalcache.StageCheck: {Hits: 3, Misses: 1},
		}},
	})
	if r.CacheHits != 3 || r.CacheMisses != 1 {
		t.Errorf("cache attribution: hits=%d misses=%d", r.CacheHits, r.CacheMisses)
	}
	if r.Root.WallNS != 12_500_000 {
		t.Errorf("root wall %d, want 12.5ms", r.Root.WallNS)
	}
	// Attach must not alter the derived topology.
	if got := len(r.Root.Children); got != 2 {
		t.Errorf("attach changed topology: %d phases", got)
	}
}

func TestUnpairedPhaseEndIsKept(t *testing.T) {
	runs := Build([]obs.Event{
		{Type: obs.EvPhaseEnd, Virtual: 5, Phase: &obs.PhaseEvent{Name: "repair", VirtualDelta: 5}},
	})
	if len(runs) != 1 || len(runs[0].Root.Children) != 1 {
		t.Fatalf("unpaired phase_end dropped: %+v", runs)
	}
	if runs[0].Root.Children[0].Total != 5 {
		t.Errorf("synthesized phase total %.1f, want 5", runs[0].Root.Children[0].Total)
	}
}

func TestTextElidesLargeChildLists(t *testing.T) {
	var events []obs.Event
	events = append(events, obs.Event{Type: obs.EvPhaseStart, Phase: &obs.PhaseEvent{Name: "fuzz"}})
	for i := 1; i <= 50; i++ {
		events = append(events, obs.Event{
			Type: obs.EvFuzzExec, Virtual: float64(i),
			Fuzz: &obs.FuzzEvent{Exec: i},
		})
	}
	events = append(events, obs.Event{Type: obs.EvPhaseEnd, Virtual: 50, Phase: &obs.PhaseEvent{Name: "fuzz", VirtualDelta: 50}})
	r := Build(events)[0]
	text := r.Text(5)
	if !strings.Contains(text, "45 more spans") {
		t.Fatalf("elision summary missing:\n%s", text)
	}
	full := r.Text(0)
	if strings.Contains(full, "more spans") {
		t.Fatal("maxChildren=0 must not elide")
	}
}
