package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceWriter renders events as JSONL: one JSON object per line, in
// emission order. Because every instrumented subsystem emits on its
// commit goroutine in enumeration order, a single-run trace is
// byte-identical for any Workers setting; the writer's own mutex only
// exists so independent runs (eval.RunAll) can share one file.
//
// Wall-clock fields are stripped by default — they are the one
// nondeterministic quantity an event can carry. Set IncludeWall before
// the first Emit to keep them.
type TraceWriter struct {
	// IncludeWall keeps PhaseEvent.WallNS in the output, trading
	// byte-determinism for real-latency visibility.
	IncludeWall bool

	mu  sync.Mutex
	w   *bufio.Writer
	err error
}

// NewTraceWriter wraps w in a buffered JSONL encoder. Call Flush (or
// Close the underlying file after Flush) before reading the trace back.
func NewTraceWriter(w io.Writer) *TraceWriter {
	return &TraceWriter{w: bufio.NewWriter(w)}
}

// Emit encodes one event as a JSON line. Encoding errors are sticky and
// reported by Flush.
func (t *TraceWriter) Emit(e Event) {
	if !t.IncludeWall && e.Phase != nil && e.Phase.WallNS != 0 {
		p := *e.Phase // events are shared with other sinks: copy, don't mutate
		p.WallNS = 0
		e.Phase = &p
	}
	b, err := json.Marshal(e)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if err != nil {
		t.err = err
		return
	}
	if _, err := t.w.Write(b); err != nil {
		t.err = err
		return
	}
	t.err = t.w.WriteByte('\n')
}

// Flush drains the buffer and returns the first error seen.
func (t *TraceWriter) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// ParseTrace reads a JSONL trace back into events, preserving order.
func ParseTrace(r io.Reader) ([]Event, error) {
	var events []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := sc.Bytes()
		if len(raw) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(raw, &e); err != nil {
			return events, fmt.Errorf("trace line %d: %w", line, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("trace line %d: %w", line, err)
	}
	return events, nil
}
