package obs

import (
	"encoding/json"
	"math"
	"testing"
)

func TestQuantileEmptyHistogram(t *testing.T) {
	h := newHistogram()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 {
			t.Errorf("empty Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := newHistogram()
	h.observe(3.7)
	if h.Min != h.Max || h.Min != 3.7 {
		t.Fatalf("Min/Max = %v/%v, want 3.7/3.7", h.Min, h.Max)
	}
	// Every quantile of a one-sample distribution is that sample.
	for _, q := range []float64{0, 0.01, 0.5, 0.95, 0.99, 1} {
		if got := h.Quantile(q); got != 3.7 {
			t.Errorf("Quantile(%v) = %v, want 3.7", q, got)
		}
	}
}

func TestQuantileBoundsAndMonotonicity(t *testing.T) {
	h := newHistogram()
	vals := []float64{0.004, 0.05, 0.5, 2, 8, 30, 120, 900, 5000}
	for _, v := range vals {
		h.observe(v)
	}
	if got := h.Quantile(0); got != 0.004 {
		t.Errorf("Quantile(0) = %v, want Min", got)
	}
	if got := h.Quantile(1); got != 5000 {
		t.Errorf("Quantile(1) = %v, want Max", got)
	}
	prev := math.Inf(-1)
	for q := 0.0; q <= 1.0; q += 0.05 {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("Quantile not monotone: q=%v gave %v after %v", q, v, prev)
		}
		if v < h.Min || v > h.Max {
			t.Fatalf("Quantile(%v) = %v outside [%v, %v]", q, v, h.Min, h.Max)
		}
		prev = v
	}
	// The median estimate must land in the median's bucket (0.5 ≤ v ≤ 10:
	// sample 2 sits in the (1,10] bucket).
	if med := h.Quantile(0.5); med < 1 || med > 10 {
		t.Errorf("median estimate %v not in the (1,10] bucket", med)
	}
}

// TestQuantileOverflowBucket: samples past the last finite bound are
// estimated between that bound and the tracked Max.
func TestQuantileOverflowBucket(t *testing.T) {
	h := newHistogram()
	bounds := BucketBounds()
	last := bounds[len(bounds)-1]
	for i := 0; i < 4; i++ {
		h.observe(last * 10)
	}
	h.observe(last * 100) // Max
	for _, q := range []float64{0.5, 0.9, 0.99} {
		v := h.Quantile(q)
		if v < last || v > last*100 {
			t.Errorf("overflow Quantile(%v) = %v, want within (%v, %v]", q, v, last, last*100)
		}
	}
	if got := h.Quantile(1); got != last*100 {
		t.Errorf("Quantile(1) = %v, want Max %v", got, last*100)
	}
}

func TestBucketBoundsIsACopy(t *testing.T) {
	b := BucketBounds()
	if len(b) == 0 {
		t.Fatal("no bucket bounds")
	}
	b[0] = -1
	if BucketBounds()[0] == -1 {
		t.Fatal("BucketBounds exposes the shared schedule")
	}
}

// TestEmptyRegistryRenders: JSON and Prometheus renderings of an empty
// registry are well-formed (no null maps, no stray output).
func TestEmptyRegistryRenders(t *testing.T) {
	r := NewRegistry()
	b, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64      `json:"counters"`
		Hists    map[string]*Histogram `json:"histograms"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("empty registry JSON does not parse: %v\n%s", err, b)
	}
	if len(doc.Counters) != 0 || len(doc.Hists) != 0 {
		t.Errorf("empty registry rendered data: %s", b)
	}
	if p := r.Prometheus(nil); p != "" {
		t.Errorf("empty registry Prometheus exposition: %q", p)
	}
}

// TestTextQuantiles: the human registry dump carries quantile columns.
func TestTextQuantiles(t *testing.T) {
	r := NewRegistry()
	r.Observe("stage.ms", 5)
	text := r.Text()
	for _, want := range []string{"p50=", "p95=", "p99="} {
		if !containsStr(text, want) {
			t.Errorf("Text() missing %s:\n%s", want, text)
		}
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
