package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// gaugeCounters names the registry counters that are semantically
// gauges — they are incremented and decremented to track a current
// level, so Prometheus must not treat them as monotonic counters.
var gaugeCounters = map[string]bool{
	"serve.queue.depth":  true,
	"serve.jobs.running": true,
}

// PromName sanitizes a registry metric name into a legal Prometheus
// metric name: every character outside [a-zA-Z0-9_:] becomes '_', and a
// leading digit is prefixed with '_'. The mapping is stable, so dotted
// registry names ("serve.jobs.submitted") always surface as the same
// series ("serve_jobs_submitted").
func PromName(name string) string {
	var sb strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if ok {
			sb.WriteRune(r)
		} else if r >= '0' && r <= '9' {
			sb.WriteString("_")
			sb.WriteRune(r)
		} else {
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// promFloat renders a sample value the way Prometheus expects.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4): one `# TYPE` line per metric
// family, sanitized names, counters with a `_total` suffix, gauges for
// the level-tracking counters, and full `_bucket`/`_sum`/`_count`
// series (cumulative, ending in le="+Inf") for every histogram. The
// extra map carries point-in-time gauges sampled by the caller at
// scrape time (runtime gauges); it may be nil. Families are emitted in
// sorted name order, so the exposition is deterministic for a given
// registry state.
func WritePrometheus(w io.Writer, r *Registry, extra map[string]float64) {
	cs, hs := r.snapshot()

	names := make([]string, 0, len(cs))
	for k := range cs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		if gaugeCounters[k] {
			n := PromName(k)
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", n, n, cs[k])
			continue
		}
		n := PromName(k) + "_total"
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, cs[k])
	}

	names = names[:0]
	for k := range hs {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := hs[k]
		n := PromName(k)
		fmt.Fprintf(w, "# TYPE %s histogram\n", n)
		var cum int64
		for i, bound := range histBounds {
			cum += h.Buckets[i]
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", n, promFloat(bound), cum)
		}
		cum += h.Buckets[len(histBounds)]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", n, cum)
		fmt.Fprintf(w, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(w, "%s_count %d\n", n, h.Count)
	}

	names = names[:0]
	for k := range extra {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		n := PromName(k)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", n, n, promFloat(extra[k]))
	}
}

// Prometheus renders WritePrometheus to a string.
func (r *Registry) Prometheus(extra map[string]float64) string {
	var sb strings.Builder
	WritePrometheus(&sb, r, extra)
	return sb.String()
}
