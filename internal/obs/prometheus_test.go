package obs

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	for in, want := range map[string]string{
		"serve.jobs.submitted":  "serve_jobs_submitted",
		"serve.job_wall_ms.fpg": "serve_job_wall_ms_fpg",
		"9lives":                "_9lives",
		"a:b":                   "a:b",
		"ok_name":               "ok_name",
		"héllo":                 "h_llo",
	} {
		if got := PromName(in); got != want {
			t.Errorf("PromName(%q) = %q, want %q", in, got, want)
		}
	}
}

// promSample is one parsed exposition sample.
type promSample struct {
	name   string
	labels string
	value  float64
}

// parsePromText is a minimal exposition-format parser: it validates the
// line grammar hgserve emits (# TYPE comments, name{labels} value) and
// returns the samples plus the declared family types.
func parsePromText(t *testing.T, text string) ([]promSample, map[string]string) {
	t.Helper()
	var samples []promSample
	types := map[string]string{}
	for ln, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("line %d: empty line in exposition", ln+1)
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("line %d: malformed TYPE line %q", ln+1, line)
			}
			switch parts[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown family type %q", ln+1, parts[3])
			}
			types[parts[2]] = parts[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", ln+1, line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("line %d: no value separator in %q", ln+1, line)
		}
		series, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			t.Fatalf("line %d: bad value %q: %v", ln+1, valStr, err)
		}
		s := promSample{name: series, value: val}
		if br := strings.IndexByte(series, '{'); br >= 0 {
			if !strings.HasSuffix(series, "}") {
				t.Fatalf("line %d: unterminated labels in %q", ln+1, series)
			}
			s.name = series[:br]
			s.labels = series[br+1 : len(series)-1]
		}
		for _, r := range s.name {
			if !(r == '_' || r == ':' || (r >= 'a' && r <= 'z') ||
				(r >= 'A' && r <= 'Z') || (r >= '0' && r <= '9')) {
				t.Fatalf("line %d: illegal metric name %q", ln+1, s.name)
			}
		}
		samples = append(samples, s)
	}
	return samples, types
}

// TestPrometheusParseBack renders a populated registry and parses the
// exposition back, checking family typing, histogram series shape, and
// value fidelity.
func TestPrometheusParseBack(t *testing.T) {
	r := NewRegistry()
	r.Add("serve.jobs.submitted", 3)
	r.Add("serve.queue.depth", 2)
	r.Add("serve.queue.depth", -1)
	r.Observe("serve.queue_wait_ms", 0.005)
	r.Observe("serve.queue_wait_ms", 5)
	r.Observe("serve.queue_wait_ms", 1e9) // overflow bucket

	text := r.Prometheus(map[string]float64{"runtime.goroutines": 12})
	samples, types := parsePromText(t, text)

	byName := map[string][]promSample{}
	for _, s := range samples {
		byName[s.name] = append(byName[s.name], s)
	}

	if types["serve_jobs_submitted_total"] != "counter" {
		t.Errorf("submitted family type %q", types["serve_jobs_submitted_total"])
	}
	if got := byName["serve_jobs_submitted_total"]; len(got) != 1 || got[0].value != 3 {
		t.Errorf("submitted samples: %+v", got)
	}
	if types["serve_queue_depth"] != "gauge" {
		t.Errorf("queue depth exported as %q, want gauge", types["serve_queue_depth"])
	}
	if got := byName["serve_queue_depth"]; len(got) != 1 || got[0].value != 1 {
		t.Errorf("queue depth samples: %+v", got)
	}
	if types["runtime_goroutines"] != "gauge" {
		t.Errorf("runtime gauge type %q", types["runtime_goroutines"])
	}

	if types["serve_queue_wait_ms"] != "histogram" {
		t.Fatalf("histogram family type %q", types["serve_queue_wait_ms"])
	}
	buckets := byName["serve_queue_wait_ms_bucket"]
	if len(buckets) != len(histBounds)+1 {
		t.Fatalf("%d bucket series, want %d", len(buckets), len(histBounds)+1)
	}
	// Bucket counts are cumulative and end at le="+Inf" == count.
	prev := int64(-1)
	for _, b := range buckets {
		if !strings.HasPrefix(b.labels, `le="`) {
			t.Fatalf("bucket labels %q", b.labels)
		}
		if int64(b.value) < prev {
			t.Fatalf("bucket series not cumulative: %+v", buckets)
		}
		prev = int64(b.value)
	}
	last := buckets[len(buckets)-1]
	if last.labels != `le="+Inf"` || last.value != 3 {
		t.Errorf("terminal bucket %+v, want le=\"+Inf\" value 3", last)
	}
	if got := byName["serve_queue_wait_ms_count"]; len(got) != 1 || got[0].value != 3 {
		t.Errorf("count series: %+v", got)
	}
	sum := byName["serve_queue_wait_ms_sum"]
	if len(sum) != 1 || math.Abs(sum[0].value-(0.005+5+1e9)) > 1e-6 {
		t.Errorf("sum series: %+v", sum)
	}

	// Every sample's family has a TYPE declaration.
	for _, s := range samples {
		base := s.name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if fam := strings.TrimSuffix(base, suf); fam != base && types[fam] == "histogram" {
				base = fam
				break
			}
		}
		if types[base] == "" {
			t.Errorf("sample %q has no TYPE declaration", s.name)
		}
	}

	// Rendering is deterministic.
	if again := r.Prometheus(map[string]float64{"runtime.goroutines": 12}); again != text {
		t.Error("exposition not deterministic for identical registry state")
	}
}
