// Package obs is the structured-observability layer of the HeteroGen
// pipeline: typed events for every phase of a run (fuzzing executions,
// repair-candidate trials, HLS checks, pipeline phases), an Observer
// interface the subsystems emit into, and three sinks — a no-op default,
// a JSONL trace writer, and an in-memory metrics registry.
//
// The layer is zero-dependency (standard library only) and designed so a
// trace is a faithful, replayable record of the paper's evaluation data:
// Figure 2's repair trajectory, Table 3's attempts and virtual minutes,
// and §6's coverage curves all reconstruct from one trace file (see
// cmd/hgtrace and this package's report.go).
//
// Determinism contract: the instrumented subsystems emit every event on
// their commit goroutine, in candidate/mutation enumeration order — the
// same commit-in-order design that makes the PR-1 worker pools
// bit-identical to sequential execution. Worker goroutines never emit;
// the data an event needs is buffered per worker inside the outcome
// structs (repair.evalOutcome, fuzz.execResult) and turned into events
// only at commit time. A JSONL trace is therefore byte-identical for any
// Workers value. The one inherently nondeterministic quantity, wall-clock
// duration, is stripped by the trace writer unless explicitly requested
// (TraceWriter.IncludeWall) and lives in the metrics registry instead.
package obs
