package difftest

import (
	"math"
	"testing"

	"github.com/hetero/heterogen/internal/interp"
)

// Float comparison under the differential-testing tolerance: edge
// cases a naive |a-b| <= tol*(1+max) formula gets wrong. A kernel that
// deterministically produces NaN or ±Inf on both machines is agreement;
// a non-finite value against anything else is divergence.
func TestFloatComparisonEdgeCases(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	tol := FloatTolerance
	cases := []struct {
		name string
		a, b float64
		want bool
	}{
		{"identical", 1.5, 1.5, true},
		{"both NaN", nan, nan, true},
		{"NaN vs number", nan, 1.0, false},
		{"number vs NaN", 0.0, nan, false},
		{"NaN vs +Inf", nan, inf, false},
		{"both +Inf", inf, inf, true},
		{"both -Inf", -inf, -inf, true},
		{"+Inf vs -Inf", inf, -inf, false},
		{"+Inf vs finite", inf, 1e308, false},
		{"-Inf vs finite", -inf, -1e308, false},
		{"finite vs +Inf", 42.0, inf, false},
		{"signed zero", math.Copysign(0, -1), 0.0, true},
		{"signed zero reversed", 0.0, math.Copysign(0, -1), true},
		{"negative zero vs tiny", math.Copysign(0, -1), tol / 2, true},

		// Tolerance boundary: the acceptance bound for values near zero
		// is diff <= tol*(1+mag). At mag ~ 0 that is tol itself.
		{"at tolerance", 0.0, tol, true},
		{"just past tolerance", 0.0, tol * (1 + tol) * 1.01, false},
		{"well past tolerance", 0.0, tol * 3, false},
		// Relative scaling: large magnitudes widen the bound.
		{"relative within", 1e6, 1e6 * (1 + tol/2), true},
		{"relative beyond", 1e6, 1e6 * (1 + 3*tol), false},
		// Symmetry.
		{"symmetric within", 1e6 * (1 + tol/2), 1e6, true},
		{"symmetric beyond", 1e6 * (1 + 3*tol), 1e6, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a, b := interp.FloatValue(tc.a), interp.FloatValue(tc.b)
			if got := interp.Equal(a, b, tol); got != tc.want {
				t.Errorf("Equal(%v, %v, %v) = %v, want %v", tc.a, tc.b, tol, got, tc.want)
			}
			if got := interp.Equal(b, a, tol); got != tc.want {
				t.Errorf("Equal(%v, %v, %v) = %v, want %v (asymmetric)", tc.b, tc.a, tol, got, tc.want)
			}
		})
	}
}

// Non-finite floats nested in structs follow the same rules: the
// recursive struct comparison must not re-introduce NaN != NaN.
func TestFloatComparisonInStructs(t *testing.T) {
	nan := interp.FloatValue(math.NaN())
	sa := interp.Value{Kind: interp.VStruct, Fields: []interp.Value{nan, interp.IntValue(3)}}
	sb := interp.Value{Kind: interp.VStruct, Fields: []interp.Value{nan, interp.IntValue(3)}}
	if !interp.Equal(sa, sb, FloatTolerance) {
		t.Error("structs with matching NaN fields compare unequal")
	}
	sc := interp.Value{Kind: interp.VStruct, Fields: []interp.Value{interp.FloatValue(0), interp.IntValue(3)}}
	if interp.Equal(sa, sc, FloatTolerance) {
		t.Error("NaN field compared equal to zero")
	}
}

// A float compared against an int goes through the float path (HLS
// type conversion changes value kinds, not behaviour).
func TestFloatIntMixedComparison(t *testing.T) {
	if !interp.Equal(interp.FloatValue(7), interp.IntValue(7), FloatTolerance) {
		t.Error("float 7 != int 7")
	}
	if interp.Equal(interp.FloatValue(math.Inf(1)), interp.IntValue(7), FloatTolerance) {
		t.Error("+Inf compared equal to int 7")
	}
}
