package difftest

import (
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
)

// printf output is part of observable behaviour: two kernels agreeing on
// return values but printing differently must disagree.
func TestPrintfOutputCompared(t *testing.T) {
	orig := cparser.MustParse(`
int kernel(int x) {
    printf("value=%d\n", x);
    return x;
}`)
	quiet := cparser.MustParse(`
int kernel(int x) {
    return x;
}`)
	tc := fuzz.TestCase{Args: []fuzz.Arg{{Scalar: true, Ints: []int64{5}, Width: 32}}}
	rep := Run(orig, quiet, "kernel", hls.DefaultConfig("kernel"), []fuzz.TestCase{tc})
	if rep.AllPass() {
		t.Error("differing printf output must fail differential testing")
	}
	same := cparser.MustParse(`
int kernel(int x) {
    printf("value=%d\n", x);
    return x;
}`)
	rep = Run(orig, same, "kernel", hls.DefaultConfig("kernel"), []fuzz.TestCase{tc})
	if !rep.AllPass() {
		t.Errorf("identical printf output must pass: %s", rep.FirstDiff)
	}
}
