package difftest

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
)

// loopy costs hundreds of interpreter steps per call, so a tiny
// InterpSteps budget exhausts on both sides.
const loopy = `
int kernel(int n) {
    if (n < 0) { n = -n; }
    int s = 0;
    for (int i = 0; i < n % 64 + 32; i++) { s = s + i; }
    return s;
}`

// TestBudgetExhaustionIsInconclusive is the oracle-integrity rule: a
// step-budget timeout says nothing about behavioural agreement, so it
// must surface as inconclusive(timeout) — never as a mismatch that
// would steer the repair search away from a correct candidate.
func TestBudgetExhaustionIsInconclusive(t *testing.T) {
	u := cparser.MustParse(loopy)
	cfg := hls.DefaultConfig("kernel")
	cfg.InterpSteps = 20
	tests := []fuzz.TestCase{intCase(5), intCase(40), intCase(-7)}
	rep := Run(u, cparser.MustParse(loopy), "kernel", cfg, tests)
	if rep.Inconclusive != len(tests) {
		t.Fatalf("Inconclusive = %d, want %d", rep.Inconclusive, len(tests))
	}
	if len(rep.Mismatches) != 0 {
		t.Fatalf("budget exhaustion reported as mismatches: %v", rep.Mismatches)
	}
	if !strings.Contains(rep.FirstDiff, "inconclusive(timeout)") {
		t.Errorf("FirstDiff = %q", rep.FirstDiff)
	}
	if len(rep.Timeouts) != len(tests) {
		t.Errorf("Timeouts = %v", rep.Timeouts)
	}
	if rep.AllPass() {
		t.Error("an inconclusive suite must not count as all-pass")
	}
	if rep.PassRatio() != 0 {
		t.Errorf("PassRatio = %v with zero conclusive passes", rep.PassRatio())
	}
}

// TestRealMismatchOutranksInconclusive: when a suite has both timeouts
// and a genuine disagreement, FirstDiff must explain the disagreement.
func TestRealMismatchOutranksInconclusive(t *testing.T) {
	orig := cparser.MustParse(`
int kernel(int n) {
    if (n < 0) { n = -n; }
    int s = 0;
    for (int i = 0; i < n % 64; i++) { s = s + i; }
    return s;
}`)
	// Same shape, different arithmetic: disagrees on every test cheap
	// enough to complete.
	broken := cparser.MustParse(`
int kernel(int n) {
    if (n < 0) { n = -n; }
    int s = 1;
    for (int i = 0; i < n % 64; i++) { s = s + i; }
    return s;
}`)
	cfg := hls.DefaultConfig("kernel")
	cfg.InterpSteps = 150 // small inputs finish, big ones time out
	tests := []fuzz.TestCase{intCase(63), intCase(1)}
	rep := Run(orig, broken, "kernel", cfg, tests)
	if rep.Inconclusive == 0 {
		t.Fatal("expected at least one timeout (budget choice too generous)")
	}
	if len(rep.Mismatches) == 0 {
		t.Fatal("expected at least one conclusive mismatch")
	}
	if strings.Contains(rep.FirstDiff, "inconclusive") {
		t.Errorf("a real mismatch must own FirstDiff, got %q", rep.FirstDiff)
	}
}

// TestDefaultBudgetUnchanged pins that InterpSteps == 0 keeps the
// interpreter's package default — the pre-guard behaviour.
func TestDefaultBudgetUnchanged(t *testing.T) {
	u := cparser.MustParse(loopy)
	cfg := hls.DefaultConfig("kernel")
	rep := Run(u, cparser.MustParse(loopy), "kernel", cfg, []fuzz.TestCase{intCase(12)})
	if !rep.AllPass() || rep.Inconclusive != 0 {
		t.Fatalf("identical programs under default budget: %+v", rep)
	}
}

// TestIsBudgetClassification pins the typed-error satellite: only
// step-limit RuntimeErrors classify as budget exhaustion.
func TestIsBudgetClassification(t *testing.T) {
	u := cparser.MustParse(loopy)
	in, err := interp.New(u, interp.Options{MaxSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	_, callErr := in.CallKernel("kernel", intCase(40).Values())
	if !interp.IsBudget(callErr) {
		t.Fatalf("step-limited run returned %v, want a budget RuntimeError", callErr)
	}
	if interp.IsBudget(nil) {
		t.Error("nil classifies as budget exhaustion")
	}
}
