package difftest

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
)

func intCase(vals ...int64) fuzz.TestCase {
	tc := fuzz.TestCase{}
	for _, v := range vals {
		tc.Args = append(tc.Args, fuzz.Arg{Scalar: true, Ints: []int64{v}, Width: 32})
	}
	return tc
}

func arrayCase(n int, scalar int64) fuzz.TestCase {
	in := fuzz.Arg{Ints: make([]int64, n), Width: 32}
	for i := range in.Ints {
		in.Ints[i] = int64(i * 3 % 17)
	}
	out := fuzz.Arg{Ints: make([]int64, n), Width: 32}
	return fuzz.TestCase{Args: []fuzz.Arg{in, out,
		{Scalar: true, Ints: []int64{scalar}, Width: 32}}}
}

func TestIdenticalProgramsAgree(t *testing.T) {
	src := `
void kernel(int in[8], int out[8], int k) {
    for (int i = 0; i < 8; i++) { out[i] = in[i] * k; }
}`
	u1 := cparser.MustParse(src)
	u2 := cparser.MustParse(src)
	rep := Run(u1, u2, "kernel", hls.DefaultConfig("kernel"),
		[]fuzz.TestCase{arrayCase(8, 3), arrayCase(8, -2)})
	if !rep.AllPass() {
		t.Errorf("identical programs must agree: %+v %s", rep, rep.FirstDiff)
	}
	if rep.CPUMeanCost <= 0 || rep.FPGAMeanCycles <= 0 {
		t.Error("cost measurement missing")
	}
}

func TestBehaviourDivergenceDetected(t *testing.T) {
	orig := cparser.MustParse(`
int kernel(int x) { return x * 2; }`)
	broken := cparser.MustParse(`
int kernel(int x) { return x * 2 + 1; }`)
	rep := Run(orig, broken, "kernel", hls.DefaultConfig("kernel"),
		[]fuzz.TestCase{intCase(5), intCase(0)})
	if rep.AllPass() {
		t.Fatal("divergent programs must not all-pass")
	}
	if rep.Passed != 0 {
		t.Errorf("both tests diverge, passed=%d", rep.Passed)
	}
	if !strings.Contains(rep.FirstDiff, "return") {
		t.Errorf("diff description %q", rep.FirstDiff)
	}
}

func TestOutputArrayDivergenceDetected(t *testing.T) {
	orig := cparser.MustParse(`
void kernel(int in[8], int out[8], int k) {
    for (int i = 0; i < 8; i++) { out[i] = in[i] + k; }
}`)
	broken := cparser.MustParse(`
void kernel(int in[8], int out[8], int k) {
    for (int i = 0; i < 7; i++) { out[i] = in[i] + k; }
}`)
	rep := Run(orig, broken, "kernel", hls.DefaultConfig("kernel"),
		[]fuzz.TestCase{arrayCase(8, 5)})
	if rep.AllPass() {
		t.Error("last-element divergence must be caught")
	}
}

// The paper's P3 story: an undersized stack silently truncates results on
// FPGA; more tests expose it.
func TestUndersizedBufferCaughtByLargerTests(t *testing.T) {
	orig := cparser.MustParse(`
int kernel(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) { total += i; }
    return total;
}`)
	undersized := cparser.MustParse(`
int buf[16];
int kernel(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) {
        buf[i] = i;
        total += buf[i];
    }
    return total;
}`)
	cfg := hls.DefaultConfig("kernel")
	smallOnly := Run(orig, undersized, "kernel", cfg, []fuzz.TestCase{intCase(8)})
	if !smallOnly.AllPass() {
		t.Fatalf("small input should pass: %s", smallOnly.FirstDiff)
	}
	withLarge := Run(orig, undersized, "kernel", cfg,
		[]fuzz.TestCase{intCase(8), intCase(40)})
	if withLarge.AllPass() {
		t.Error("overflowing input must expose the undersized buffer")
	}
}

func TestFloatToleranceAcceptsNarrowedPrecision(t *testing.T) {
	orig := cparser.MustParse(`
float kernel(float x) { return x * 0.333333; }`)
	same := cparser.MustParse(`
float kernel(float x) { return x * 0.333333; }`)
	tc := fuzz.TestCase{Args: []fuzz.Arg{{Scalar: true, IsFloat: true, Floats: []float64{7.5}}}}
	rep := Run(orig, same, "kernel", hls.DefaultConfig("kernel"), []fuzz.TestCase{tc})
	if !rep.AllPass() {
		t.Errorf("float kernels should agree within tolerance: %s", rep.FirstDiff)
	}
}

func TestAgreeSemantics(t *testing.T) {
	a := Outcome{Ret: interp.IntValue(5)}
	b := Outcome{Ret: interp.IntValue(5)}
	if !Agree(a, b) {
		t.Error("equal outcomes agree")
	}
	c := Outcome{Ret: interp.IntValue(6)}
	if Agree(a, c) {
		t.Error("different returns disagree")
	}
	e1 := Outcome{Err: errFake("x")}
	e2 := Outcome{Err: errFake("y")}
	if !Agree(e1, e2) {
		t.Error("two faulting executions agree (no observable behaviour)")
	}
	if Agree(a, e1) {
		t.Error("fault vs success disagree")
	}
}

type errFake string

func (e errFake) Error() string { return string(e) }

func TestPassRatio(t *testing.T) {
	r := Report{Total: 4, Passed: 3}
	if r.PassRatio() != 0.75 {
		t.Errorf("ratio %f", r.PassRatio())
	}
	empty := Report{}
	if empty.PassRatio() != 1 {
		t.Error("empty suite ratio should be 1")
	}
}
