// Package difftest implements HeteroGen's behaviour-preservation oracle:
// differential testing between the original C program executing with CPU
// semantics and a candidate HLS version executing on the FPGA simulator.
//
// A test passes when the kernel return value and the post-call contents
// of every output array agree (floats within tolerance — HLS type
// conversion legitimately narrows precision). The pass ratio is the hard
// component of the repair fitness function; the latency comparison is the
// soft (performance) component.
package difftest

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/sim"
	"github.com/hetero/heterogen/internal/interp"
)

// FloatTolerance is the relative tolerance for float comparison.
const FloatTolerance = 1e-4

// Outcome is one kernel execution's observable behaviour.
type Outcome struct {
	Ret    interp.Value
	Arrays [][]interp.Value // post-call contents of array arguments
	Output string           // printf output, compared verbatim
	Err    error
	Cost   int64
}

// RunCPU executes the kernel of u on the CPU interpreter for one test.
func RunCPU(u *cast.Unit, kernel string, tc fuzz.TestCase) Outcome {
	return runCPU(u, kernel, tc, 0)
}

// runCPU is RunCPU with an explicit step budget (0 = interpreter
// default).
func runCPU(u *cast.Unit, kernel string, tc fuzz.TestCase, maxSteps int64) Outcome {
	in, err := interp.New(u, interp.Options{MaxSteps: maxSteps})
	if err != nil {
		return Outcome{Err: err}
	}
	return runWith(tc, func(args []interp.Value) (interp.Value, int64, string, error) {
		res, err := in.CallKernel(kernel, args)
		return res.Ret, res.Cost, res.Output, err
	})
}

// RunFPGA executes the kernel of u on the FPGA simulator for one test.
func RunFPGA(u *cast.Unit, cfg hls.Config, tc fuzz.TestCase) Outcome {
	s, err := sim.New(u, cfg)
	if err != nil {
		return Outcome{Err: err}
	}
	return runWith(tc, func(args []interp.Value) (interp.Value, int64, string, error) {
		res, err := s.Run(args)
		return res.Ret, res.Cycles, res.Output, err
	})
}

func runWith(tc fuzz.TestCase, call func([]interp.Value) (interp.Value, int64, string, error)) Outcome {
	args := tc.Values()
	ret, cost, text, err := call(args)
	out := Outcome{Ret: ret, Err: err, Cost: cost, Output: text}
	for _, a := range args {
		if a.Kind == interp.VPtr && a.Obj != nil {
			snap := make([]interp.Value, len(a.Obj.Elems))
			for i, e := range a.Obj.Elems {
				snap[i] = e.DeepCopy()
			}
			out.Arrays = append(out.Arrays, snap)
		}
	}
	return out
}

// Agree reports whether two outcomes are behaviourally identical.
func Agree(a, b Outcome) bool {
	if (a.Err == nil) != (b.Err == nil) {
		return false
	}
	if a.Err != nil {
		return true // both failed: neither produced observable behaviour
	}
	if !interp.Equal(a.Ret, b.Ret, FloatTolerance) {
		return false
	}
	if a.Output != b.Output {
		return false
	}
	if len(a.Arrays) != len(b.Arrays) {
		return false
	}
	for i := range a.Arrays {
		if len(a.Arrays[i]) != len(b.Arrays[i]) {
			return false
		}
		for j := range a.Arrays[i] {
			if !interp.Equal(a.Arrays[i][j], b.Arrays[i][j], FloatTolerance) {
				return false
			}
		}
	}
	return true
}

// Report is the outcome of differential testing a candidate against the
// original over a test suite.
type Report struct {
	Total, Passed int
	// Mismatches lists the indexes of disagreeing tests (capped).
	Mismatches []int
	// Inconclusive counts tests where either side exhausted its
	// interpreter step budget. A budget exhaustion says nothing about
	// behavioural agreement, so these are neither passes nor mismatches.
	Inconclusive int
	// Timeouts lists the indexes of inconclusive tests (capped).
	Timeouts []int
	// FirstDiff explains the first mismatch (or, when there are no
	// mismatches, the first inconclusive test).
	FirstDiff string
	// CPUMeanCost / FPGAMeanCycles average the per-test execution costs
	// over tests where both sides succeeded.
	CPUMeanCost    float64
	FPGAMeanCycles float64
}

// PassRatio is Passed/Total (1.0 for an empty suite).
func (r Report) PassRatio() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Passed) / float64(r.Total)
}

// AllPass reports whether every test agreed.
func (r Report) AllPass() bool { return r.Passed == r.Total }

// CPUMeanMS / FPGAMeanMS convert mean costs to milliseconds.
func (r Report) CPUMeanMS() float64  { return interp.CPUTimeMS(int64(r.CPUMeanCost)) }
func (r Report) FPGAMeanMS() float64 { return interp.FPGATimeMS(int64(r.FPGAMeanCycles)) }

// Run differential-tests candidate against original over the suite.
func Run(original, candidate *cast.Unit, kernel string, cfg hls.Config, tests []fuzz.TestCase) Report {
	rep := Report{Total: len(tests)}
	var cpuSum, fpgaSum float64
	measured := 0
	for i, tc := range tests {
		ref := runCPU(original, kernel, tc, cfg.InterpSteps)
		got := RunFPGA(candidate, cfg, tc)
		if interp.IsBudget(ref.Err) || interp.IsBudget(got.Err) {
			// A step-budget exhaustion is a verdict about the budget, not
			// the behaviour: the run was cut short, so agreement is
			// unknowable. Never report it as a mismatch.
			rep.Inconclusive++
			if len(rep.Timeouts) < 16 {
				rep.Timeouts = append(rep.Timeouts, i)
			}
			if rep.FirstDiff == "" {
				side := "CPU"
				if !interp.IsBudget(ref.Err) {
					side = "FPGA"
				}
				rep.FirstDiff = timeoutDiff(i, side)
			}
			continue
		}
		if Agree(ref, got) {
			rep.Passed++
			if ref.Err == nil && got.Err == nil {
				cpuSum += float64(ref.Cost)
				fpgaSum += float64(got.Cost)
				measured++
			}
			continue
		}
		if len(rep.Mismatches) < 16 {
			rep.Mismatches = append(rep.Mismatches, i)
		}
		if rep.FirstDiff == "" || len(rep.Mismatches) == 1 {
			rep.FirstDiff = describeDiff(i, ref, got)
		}
	}
	if measured > 0 {
		rep.CPUMeanCost = cpuSum / float64(measured)
		rep.FPGAMeanCycles = fpgaSum / float64(measured)
	}
	return rep
}

func timeoutDiff(i int, side string) string {
	return fmt.Sprintf("inconclusive(timeout): test %d: %s side exhausted its step budget", i, side)
}

func describeDiff(i int, ref, got Outcome) string {
	switch {
	case ref.Err == nil && got.Err != nil:
		return fmt.Sprintf("test %d: FPGA faulted: %v", i, got.Err)
	case ref.Err != nil && got.Err == nil:
		return fmt.Sprintf("test %d: CPU faulted but FPGA did not: %v", i, ref.Err)
	case !interp.Equal(ref.Ret, got.Ret, FloatTolerance):
		return fmt.Sprintf("test %d: return %s (CPU) vs %s (FPGA)", i, ref.Ret, got.Ret)
	default:
		return fmt.Sprintf("test %d: output arrays differ", i)
	}
}
