package difftest

import (
	"sync"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/sim"
	"github.com/hetero/heterogen/internal/interp"
)

// Runner amortizes differential testing over many candidates of one
// repair search against a fixed (original, kernel, config, tests)
// quadruple. Three costs disappear relative to calling Run per
// candidate:
//
//   - the CPU reference outcomes are computed once, lazily, and reused —
//     they depend only on the original program and the suite, never on
//     the candidate;
//   - the FPGA side runs with a shared compiled-code cache, so
//     candidates that share unedited function declarations (by pointer,
//     via structure-sharing clones) execute pre-compiled bodies, and
//     with content fingerprints as code keys even a regenerated
//     identical candidate reuses its edited function's compiled body;
//   - whole Reports are memoized by candidate fingerprint: outcomes are
//     deterministic, so a content-identical candidate revisited in a
//     later search iteration is served its memoized verdict outright.
//
// Run on a Runner returns a Report byte-identical to the package-level
// Run for the same inputs: outcomes are deterministic, the reference
// outcomes are immutable once computed (Agree and the describers only
// read them), and the compiled fast path reproduces tree-walker results
// exactly. Safe for concurrent use by evaluation workers.
type Runner struct {
	original *cast.Unit
	kernel   string
	cfg      hls.Config
	tests    []fuzz.TestCase
	code     *interp.Codebase
	fps      *cast.Fingerprints

	refOnce sync.Once
	refs    []Outcome

	mu      sync.Mutex
	reports map[string]Report
}

// reportMemoCap bounds the per-search report memo (a Report is a few
// ints and short strings; the cap is generous for any real candidate
// space and resets harmlessly if exceeded).
const reportMemoCap = 4096

// NewRunner prepares a reusable differential tester. code may be nil
// (the FPGA side then walks trees like Run does). fps may be nil; when
// both code and fps are set, each candidate's content fingerprint keys
// the compiled-code cache, so a candidate regenerated with identical
// content in a later search iteration reuses compiled bodies instead of
// recompiling its edited functions (the fingerprint memo is shared with
// the search's cache-key computation, so the fingerprint is effectively
// free here).
func NewRunner(original *cast.Unit, kernel string, cfg hls.Config, tests []fuzz.TestCase, code *interp.Codebase, fps *cast.Fingerprints) *Runner {
	return &Runner{original: original, kernel: kernel, cfg: cfg, tests: tests, code: code, fps: fps}
}

// references computes the per-test CPU reference outcomes once.
func (r *Runner) references() []Outcome {
	r.refOnce.Do(func() {
		r.refs = make([]Outcome, len(r.tests))
		for i, tc := range r.tests {
			r.refs[i] = runCPU(r.original, r.kernel, tc, r.cfg.InterpSteps)
		}
	})
	return r.refs
}

// runFPGA executes the candidate's kernel on the FPGA simulator with the
// shared compiled-code cache.
func (r *Runner) runFPGA(candidate *cast.Unit, tc fuzz.TestCase, codeKey string) Outcome {
	s, err := sim.NewWithCode(candidate, r.cfg, r.code, codeKey)
	if err != nil {
		return Outcome{Err: err}
	}
	return runWith(tc, func(args []interp.Value) (interp.Value, int64, string, error) {
		res, err := s.Run(args)
		return res.Ret, res.Cycles, res.Output, err
	})
}

// Run differential-tests candidate against the runner's original over
// its suite, exactly like the package-level Run.
func (r *Runner) Run(candidate *cast.Unit) Report {
	refs := r.references()
	var codeKey string
	if r.code != nil && r.fps != nil {
		codeKey = r.fps.Unit(candidate)
		// Outcomes are deterministic functions of (original, candidate,
		// config, tests), so a candidate regenerated with identical
		// content — the dominant pattern in random-mode search, which
		// re-instantiates the same template set every iteration — can be
		// served its memoized Report without running anything. Callers
		// treat Reports as read-only values.
		r.mu.Lock()
		if rep, ok := r.reports[codeKey]; ok {
			r.mu.Unlock()
			return rep
		}
		r.mu.Unlock()
	}
	rep := Report{Total: len(r.tests)}
	var cpuSum, fpgaSum float64
	measured := 0
	for i, tc := range r.tests {
		ref := refs[i]
		got := r.runFPGA(candidate, tc, codeKey)
		if interp.IsBudget(ref.Err) || interp.IsBudget(got.Err) {
			rep.Inconclusive++
			if len(rep.Timeouts) < 16 {
				rep.Timeouts = append(rep.Timeouts, i)
			}
			if rep.FirstDiff == "" {
				side := "CPU"
				if !interp.IsBudget(ref.Err) {
					side = "FPGA"
				}
				rep.FirstDiff = timeoutDiff(i, side)
			}
			continue
		}
		if Agree(ref, got) {
			rep.Passed++
			if ref.Err == nil && got.Err == nil {
				cpuSum += float64(ref.Cost)
				fpgaSum += float64(got.Cost)
				measured++
			}
			continue
		}
		if len(rep.Mismatches) < 16 {
			rep.Mismatches = append(rep.Mismatches, i)
		}
		if rep.FirstDiff == "" || len(rep.Mismatches) == 1 {
			rep.FirstDiff = describeDiff(i, ref, got)
		}
	}
	if measured > 0 {
		rep.CPUMeanCost = cpuSum / float64(measured)
		rep.FPGAMeanCycles = fpgaSum / float64(measured)
	}
	if codeKey != "" {
		r.mu.Lock()
		if r.reports == nil || len(r.reports) >= reportMemoCap {
			r.reports = make(map[string]Report)
		}
		r.reports[codeKey] = rep
		r.mu.Unlock()
	}
	return rep
}
