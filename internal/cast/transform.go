package cast

// MapExprs rewrites every expression under n bottom-up: children are
// transformed before f sees their parent, and whatever f returns
// replaces the expression in its parent slot. Returning the argument
// unchanged leaves the tree alone. Statements and declarations are
// mutated in place; the walk covers the same shapes as Inspect.
//
// It exists for tools that restructure expressions wholesale — the
// conformance reducer replaces subexpressions with their operands while
// shrinking a failing program (internal/progen) — where Inspect's
// read-only visit is not enough and hand-written per-field recursion
// would have to be repeated in every client.
func MapExprs(n Node, f func(Expr) Expr) {
	if n == nil {
		return
	}
	var expr func(e Expr) Expr
	expr = func(e Expr) Expr {
		if e == nil {
			return nil
		}
		switch x := e.(type) {
		case *Unary:
			x.X = expr(x.X)
		case *Postfix:
			x.X = expr(x.X)
		case *Binary:
			x.L, x.R = expr(x.L), expr(x.R)
		case *Assign:
			x.L, x.R = expr(x.L), expr(x.R)
		case *Cond:
			x.C, x.T, x.F = expr(x.C), expr(x.T), expr(x.F)
		case *Call:
			x.Fun = expr(x.Fun)
			for i := range x.Args {
				x.Args[i] = expr(x.Args[i])
			}
		case *Index:
			x.X, x.Idx = expr(x.X), expr(x.Idx)
		case *Member:
			x.X = expr(x.X)
		case *Cast:
			x.X = expr(x.X)
		case *SizeofExpr:
			x.X = expr(x.X)
		case *InitList:
			for i := range x.Elems {
				x.Elems[i] = expr(x.Elems[i])
			}
		}
		return f(e)
	}
	var stmt func(s Stmt)
	stmt = func(s Stmt) {
		switch x := s.(type) {
		case *ExprStmt:
			x.X = expr(x.X)
		case *DeclStmt:
			if x.Init != nil {
				x.Init = expr(x.Init)
			}
			for i := range x.VLADims {
				x.VLADims[i] = expr(x.VLADims[i])
			}
		case *Block:
			for _, s := range x.Stmts {
				stmt(s)
			}
		case *If:
			x.Cond = expr(x.Cond)
			stmt(x.Then)
			if x.Else != nil {
				stmt(x.Else)
			}
		case *For:
			if x.Init != nil {
				stmt(x.Init)
			}
			if x.Cond != nil {
				x.Cond = expr(x.Cond)
			}
			if x.Post != nil {
				x.Post = expr(x.Post)
			}
			stmt(x.Body)
		case *While:
			x.Cond = expr(x.Cond)
			stmt(x.Body)
		case *Return:
			if x.X != nil {
				x.X = expr(x.X)
			}
		case *Switch:
			x.X = expr(x.X)
			for _, c := range x.Cases {
				if c.Value != nil {
					c.Value = expr(c.Value)
				}
				for _, s := range c.Body {
					stmt(s)
				}
			}
		}
	}
	switch x := n.(type) {
	case Expr:
		// A bare expression root: rewrite children only (the caller
		// holds the root slot and can apply f itself).
		expr(x)
	case Stmt:
		stmt(x)
	case *FuncDecl:
		if x.Body != nil {
			stmt(x.Body)
		}
	case *VarDecl:
		if x.Init != nil {
			x.Init = expr(x.Init)
		}
	case *StructDecl:
		for _, m := range x.Methods {
			if m.Body != nil {
				stmt(m.Body)
			}
		}
	case *Unit:
		for _, d := range x.Decls {
			MapExprs(d, f)
		}
	}
}
