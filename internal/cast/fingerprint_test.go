package cast_test

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/progen"
)

// mutateFunc applies one deterministic random edit to fn's body — the
// kinds of change a repair edit makes (tweak a literal, insert a pragma,
// drop a statement). Reports false when the function offers nothing to
// edit.
func mutateFunc(fn *cast.FuncDecl, rng *rand.Rand) bool {
	if fn.Body == nil {
		return false
	}
	switch rng.Intn(3) {
	case 0:
		var lits []*cast.IntLit
		cast.Inspect(fn, func(n cast.Node) bool {
			if lit, ok := n.(*cast.IntLit); ok {
				lits = append(lits, lit)
			}
			return true
		})
		if len(lits) == 0 {
			return false
		}
		lit := lits[rng.Intn(len(lits))]
		lit.Value++
		lit.Text = strconv.FormatInt(lit.Value, 10)
		return true
	case 1:
		fn.Body.Stmts = append(fn.Body.Stmts,
			&cast.Pragma{Text: fmt.Sprintf("HLS PIPELINE II=%d", 1+rng.Intn(4))})
		return true
	default:
		if len(fn.Body.Stmts) < 2 {
			return false
		}
		fn.Body.Stmts = fn.Body.Stmts[:len(fn.Body.Stmts)-1]
		return true
	}
}

// TestFingerprintRecombinesAfterEdits is the core property: over random
// edit sequences applied through structure-sharing clones, the memoized
// fingerprint (which recomputes only the edited declaration and reuses
// cached hashes for every untouched one) equals the from-scratch
// fingerprint of the whole unit, and every effective edit changes it.
func TestFingerprintRecombinesAfterEdits(t *testing.T) {
	for seed := 0; seed < 40; seed++ {
		prog := progen.MustGenerate(progen.Options{Seed: int64(seed), Clean: seed%2 == 0})
		memo := cast.NewFingerprints()
		rng := rand.New(rand.NewSource(int64(seed) + 1))

		cur := prog.Unit
		curFP := memo.Unit(cur)
		if want := cast.FingerprintUnit(cur); curFP != want {
			t.Fatalf("seed %d: memoized %s != scratch %s on unedited unit", seed, curFP, want)
		}

		var names []string
		for _, fn := range cur.Funcs() {
			if fn.Body != nil {
				names = append(names, fn.Name)
			}
		}
		if len(names) == 0 {
			t.Fatalf("seed %d: no function bodies", seed)
		}

		for step := 0; step < 10; step++ {
			name := names[rng.Intn(len(names))]
			clone := cast.CloneUnitScoped(cur, []string{name})
			if !mutateFunc(clone.Func(name), rng) {
				continue
			}
			got := memo.Unit(clone)
			want := cast.FingerprintUnit(clone)
			if got != want {
				t.Fatalf("seed %d step %d (%s): recombined %s != scratch %s",
					seed, step, name, got, want)
			}
			if got == curFP {
				t.Fatalf("seed %d step %d (%s): edit did not change the fingerprint",
					seed, step, name)
			}
			cur, curFP = clone, got
		}
	}
}

// TestFingerprintNoCollisions checks that distinct units — distinct by
// canonical printed text — never share a fingerprint, across generated
// programs and their edit derivatives.
func TestFingerprintNoCollisions(t *testing.T) {
	byFP := map[string]string{}
	note := func(u *cast.Unit) {
		fp := cast.FingerprintUnit(u)
		text := cast.Print(u)
		if prev, ok := byFP[fp]; ok && prev != text {
			t.Fatalf("fingerprint collision %s between distinct units", fp)
		}
		byFP[fp] = text
	}
	rng := rand.New(rand.NewSource(42))
	for seed := 0; seed < 120; seed++ {
		prog := progen.MustGenerate(progen.Options{Seed: int64(seed), Clean: seed%3 == 0})
		note(prog.Unit)
		for _, fn := range prog.Unit.Funcs() {
			if fn.Body == nil {
				continue
			}
			clone := cast.CloneUnitScoped(prog.Unit, []string{fn.Name})
			if mutateFunc(clone.Func(fn.Name), rng) {
				note(clone)
			}
		}
	}
	if len(byFP) < 200 {
		t.Fatalf("only %d distinct units generated, want a denser corpus", len(byFP))
	}
}

// TestFingerprintRegressionCorpus pins fingerprints of a fixed program
// set. The committed golden file catches accidental changes to the hash
// composition or the printer: either would silently invalidate every
// persisted cache entry without the schema-version bump that is supposed
// to accompany such changes. Regenerate with UPDATE_FINGERPRINTS=1.
func TestFingerprintRegressionCorpus(t *testing.T) {
	golden := filepath.Join("testdata", "fingerprint_corpus.txt")
	var sb strings.Builder
	sb.WriteString("# seed clean unit-fingerprint — regenerate with UPDATE_FINGERPRINTS=1\n")
	for seed := 0; seed < 24; seed++ {
		clean := seed%2 == 0
		prog := progen.MustGenerate(progen.Options{Seed: int64(seed), Clean: clean})
		fmt.Fprintf(&sb, "%d %v %s\n", seed, clean, cast.FingerprintUnit(prog.Unit))
	}
	if os.Getenv("UPDATE_FINGERPRINTS") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(sb.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Skip("golden file updated")
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with UPDATE_FINGERPRINTS=1): %v", err)
	}
	if string(want) != sb.String() {
		t.Fatalf("fingerprint corpus drifted from %s:\n--- got ---\n%s--- want ---\n%s",
			golden, sb.String(), want)
	}
}
