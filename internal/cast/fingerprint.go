package cast

// Incremental content fingerprints.
//
// The repair search derives cache keys from the candidate's canonical
// text. Printing a whole unit per candidate is O(unit), which dominates
// candidate construction once evaluation itself is fast. Fingerprints
// make that cost proportional to the edit instead: the unit hash is
// composed from per-declaration hashes, and a Fingerprints memo keyed by
// *FuncDecl identity caches the expensive leaves. Structure-sharing
// clones (CloneUnitScoped) keep the identity of every unedited function,
// so after an edit only the edited declaration is reprinted and the unit
// hash is recombined from memoized parts in O(edited decl).
//
// The hash is length-prefixed SHA-256 over the printed form of each
// declaration plus the branch-site count, so two structurally distinct
// units cannot collide without a SHA-256 collision, and the composed
// value is a pure function of the unit — memoized and from-scratch
// computations agree by construction (fingerprint_test.go proves it over
// random generated programs and a committed regression corpus).

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"strconv"
	"sync"
)

// fingerprintMemoCap bounds the per-search memo. The stable residents
// are the parent unit's declarations; every evaluated candidate also
// deposits its (ephemeral) edited declaration, and a large cap would
// pin thousands of dead candidate ASTs for the garbage collector to
// scan. A small cap keeps the live set near the working set — on reset
// the stable declarations re-hash once, which is noise.
const fingerprintMemoCap = 512

// Fingerprints memoizes per-declaration hashes across the candidates of
// one repair search. The zero value and nil are both usable (every
// lookup misses); methods are safe for concurrent use.
type Fingerprints struct {
	mu sync.Mutex
	m  map[Decl]string
}

// NewFingerprints returns an empty memo.
func NewFingerprints() *Fingerprints {
	return &Fingerprints{m: make(map[Decl]string)}
}

// Unit composes the content fingerprint of u from per-declaration
// hashes, reusing memoized hashes for function declarations already
// seen (by pointer identity).
func (f *Fingerprints) Unit(u *Unit) string {
	h := sha256.New()
	hashPart(h, "unit")
	hashPart(h, strconv.Itoa(u.NumBranches))
	for _, d := range u.Decls {
		hashPart(h, f.decl(d))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// decl returns the hash of one declaration, memoized by pointer
// identity. Structure-sharing candidates keep the identity of every
// unedited declaration (functions, structs, globals alike), so after an
// edit only the edited declaration is rehashed.
func (f *Fingerprints) decl(d Decl) string {
	if f == nil {
		return hashDecl(d)
	}
	f.mu.Lock()
	if fp, ok := f.m[d]; ok {
		f.mu.Unlock()
		return fp
	}
	f.mu.Unlock()
	fp := hashDecl(d)
	f.mu.Lock()
	if f.m == nil || len(f.m) >= fingerprintMemoCap {
		f.m = make(map[Decl]string)
	}
	f.m[d] = fp
	f.mu.Unlock()
	return fp
}

// FingerprintUnit computes the unit fingerprint from scratch, with no
// memo. Defined to agree exactly with Fingerprints.Unit.
func FingerprintUnit(u *Unit) string {
	return (*Fingerprints)(nil).Unit(u)
}

func hashDecl(d Decl) string {
	h := sha256.New()
	hashPart(h, "decl")
	hashPart(h, PrintDecl(d))
	return hex.EncodeToString(h.Sum(nil))
}

func hashPart(h interface{ Write([]byte) (int, error) }, p string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(p)))
	h.Write(n[:])
	h.Write([]byte(p))
}
