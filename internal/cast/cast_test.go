package cast

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// buildTreeUnit constructs a small unit programmatically: a struct with a
// self-referential pointer field, a global, and a function.
func buildTreeUnit() *Unit {
	node := &ctypes.Struct{Tag: "Node"}
	node.Fields = []ctypes.Field{
		{Name: "val", Type: ctypes.IntT},
		{Name: "next", Type: ctypes.Pointer{Elem: node}},
	}
	fn := &FuncDecl{
		Name:   "walk",
		Ret:    ctypes.IntT,
		Params: []Param{{Name: "p", Type: ctypes.Pointer{Elem: node}}},
		Body: &Block{Stmts: []Stmt{
			&If{
				Cond:     &Binary{Op: ctoken.EQL, L: &Ident{Name: "p"}, R: &IntLit{Value: 0, Text: "0"}},
				Then:     &Return{X: &IntLit{Value: 0, Text: "0"}},
				BranchID: -1,
			},
			&Return{X: &Member{X: &Ident{Name: "p"}, Field: "val", Arrow: true}},
		}},
	}
	u := &Unit{
		Typedefs: map[string]ctypes.Type{},
		Structs:  map[string]*ctypes.Struct{"Node": node},
		Decls: []Decl{
			&StructDecl{Type: node},
			&VarDecl{Name: "head", Type: ctypes.Pointer{Elem: node}},
			fn,
		},
	}
	NumberBranches(u)
	return u
}

// Regression test for the clone-aliasing bug: retyping a struct field in
// a clone must not corrupt the original unit's struct (the search applies
// destructive edits to clones and compares against the original).
func TestCloneUnitIsolatesStructTypes(t *testing.T) {
	orig := buildTreeUnit()
	clone := CloneUnit(orig)

	cs := clone.Structs["Node"]
	if cs == orig.Structs["Node"] {
		t.Fatal("clone shares the struct type object with the original")
	}
	// Mutate the clone's field type (what pointer removal does).
	cs.Fields[1].Type = ctypes.Named{Name: "Node_ptr", Underlying: ctypes.IntT}
	if _, stillPtr := orig.Structs["Node"].Fields[1].Type.(ctypes.Pointer); !stillPtr {
		t.Fatal("mutating the clone's struct field leaked into the original")
	}
	// The clone's self-referential pointer must point at the clone's
	// struct, not the original's.
	sd := clone.Decls[0].(*StructDecl)
	if sd.Type != cs {
		t.Error("clone's StructDecl does not reference the cloned struct")
	}
}

func TestCloneUnitRemapsDeclSites(t *testing.T) {
	orig := buildTreeUnit()
	clone := CloneUnit(orig)
	cs := clone.Structs["Node"]

	v := clone.Var("head")
	p, ok := v.Type.(ctypes.Pointer)
	if !ok {
		t.Fatalf("head type %T", v.Type)
	}
	if p.Elem != ctypes.Type(cs) {
		t.Error("global's pointer element not remapped to the cloned struct")
	}
	fn := clone.Func("walk")
	pp, ok := fn.Params[0].Type.(ctypes.Pointer)
	if !ok || pp.Elem != ctypes.Type(cs) {
		t.Error("parameter type not remapped to the cloned struct")
	}
}

func TestUnitHelpers(t *testing.T) {
	u := buildTreeUnit()
	if u.Func("walk") == nil || u.Func("missing") != nil {
		t.Error("Func lookup")
	}
	if u.Var("head") == nil || u.Var("nope") != nil {
		t.Error("Var lookup")
	}
	if u.StructOf("Node") == nil || u.StructOf("Nope") != nil {
		t.Error("StructOf lookup")
	}
	if len(u.Funcs()) != 1 {
		t.Error("Funcs")
	}

	extra := &VarDecl{Name: "x", Type: ctypes.IntT}
	u.InsertDeclBefore(extra, u.Decls[2])
	if u.Decls[2] != Decl(extra) {
		t.Error("InsertDeclBefore position")
	}
	u.RemoveDecl(extra)
	if u.Var("x") != nil {
		t.Error("RemoveDecl")
	}
	// Insert before a missing target appends.
	tail := &VarDecl{Name: "y", Type: ctypes.IntT}
	u.InsertDeclBefore(tail, &VarDecl{Name: "ghost"})
	if u.Decls[len(u.Decls)-1] != Decl(tail) {
		t.Error("InsertDeclBefore fallback append")
	}
}

func TestNumberBranchesCountsAllSites(t *testing.T) {
	u := &Unit{Decls: []Decl{
		&FuncDecl{Name: "f", Ret: ctypes.Void{}, Body: &Block{Stmts: []Stmt{
			&If{Cond: &IntLit{Value: 1}, Then: &Block{}, BranchID: -1},
			&For{Body: &Block{}, BranchID: -1},
			&While{Cond: &IntLit{Value: 0}, Body: &Block{}, BranchID: -1},
			&ExprStmt{X: &Cond{C: &IntLit{Value: 1}, T: &IntLit{Value: 2},
				F: &IntLit{Value: 3}, BranchID: -1}},
			&Switch{X: &IntLit{Value: 1}, BranchID: -1, Cases: []*SwitchCase{
				{Value: &IntLit{Value: 0}}, {IsDefault: true},
			}},
		}}},
	}}
	NumberBranches(u)
	// if + for + while + cond = 4 sites, switch contributes 2 (one per arm).
	if u.NumBranches != 6 {
		t.Errorf("NumBranches = %d, want 6", u.NumBranches)
	}
}

func TestCountNodesAndCallsTo(t *testing.T) {
	u := buildTreeUnit()
	if CountNodes(u) < 10 {
		t.Errorf("CountNodes too small: %d", CountNodes(u))
	}
	fn := u.Func("walk")
	if len(CallsTo(fn, "walk")) != 0 {
		t.Error("walk is not recursive here")
	}
}

func TestPrintStmtAndExpr(t *testing.T) {
	s := &If{
		Cond: &Binary{Op: ctoken.GTR, L: &Ident{Name: "x"}, R: &IntLit{Value: 0, Text: "0"}},
		Then: &Return{X: &Ident{Name: "x"}},
	}
	got := PrintStmt(s)
	if !strings.Contains(got, "if (x > 0)") || !strings.Contains(got, "return x;") {
		t.Errorf("PrintStmt:\n%s", got)
	}
	e := &Binary{Op: ctoken.MUL,
		L: &Binary{Op: ctoken.ADD, L: &Ident{Name: "a"}, R: &Ident{Name: "b"}},
		R: &Ident{Name: "c"}}
	if PrintExpr(e) != "(a + b) * c" {
		t.Errorf("precedence parens: %q", PrintExpr(e))
	}
}

func TestPrintPreservesLiteralText(t *testing.T) {
	e := &IntLit{Value: 127, Text: "0x7f"}
	if PrintExpr(e) != "0x7f" {
		t.Errorf("literal spelling lost: %q", PrintExpr(e))
	}
	f := &FloatLit{Value: 2.5, Text: "2.50f"}
	if PrintExpr(f) != "2.50f" {
		t.Errorf("float spelling lost: %q", PrintExpr(f))
	}
}

func TestCloneStmtDeep(t *testing.T) {
	orig := &Block{Stmts: []Stmt{
		&DeclStmt{Name: "i", Type: ctypes.IntT, Init: &IntLit{Value: 1, Text: "1"}},
		&While{Cond: &Ident{Name: "i"}, Body: &Block{Stmts: []Stmt{
			&ExprStmt{X: &Postfix{Op: ctoken.INC, X: &Ident{Name: "i"}}},
		}}},
	}}
	clone := CloneStmt(orig).(*Block)
	clone.Stmts[0].(*DeclStmt).Name = "j"
	if orig.Stmts[0].(*DeclStmt).Name != "i" {
		t.Error("CloneStmt shares DeclStmt")
	}
	innerOrig := orig.Stmts[1].(*While).Body.(*Block)
	innerClone := clone.Stmts[1].(*While).Body.(*Block)
	if innerOrig == innerClone {
		t.Error("CloneStmt shares nested blocks")
	}
}

func TestInspectSkipsChildrenOnFalse(t *testing.T) {
	u := buildTreeUnit()
	sawIdent := false
	Inspect(u, func(n Node) bool {
		if _, ok := n.(*FuncDecl); ok {
			return false // do not descend into the body
		}
		if _, ok := n.(*Ident); ok {
			sawIdent = true
		}
		return true
	})
	if sawIdent {
		t.Error("Inspect descended into pruned subtree")
	}
}
