package cast

import "github.com/hetero/heterogen/internal/ctypes"

// CloneUnit deep-copies a translation unit, including its struct types.
// The repair search clones the current program before applying each
// candidate edit; edits retype struct fields in place, so sharing
// *ctypes.Struct values between clone and parent would corrupt the
// parent. Every struct gets a fresh copy and every type reference in the
// clone is remapped onto the copies.
func CloneUnit(u *Unit) *Unit {
	out := &Unit{
		Typedefs:    make(map[string]ctypes.Type, len(u.Typedefs)),
		Structs:     make(map[string]*ctypes.Struct, len(u.Structs)),
		NumBranches: u.NumBranches,
	}
	structMap := make(map[*ctypes.Struct]*ctypes.Struct, len(u.Structs))
	for tag, st := range u.Structs {
		ns := &ctypes.Struct{Tag: st.Tag, IsUnion: st.IsUnion,
			Fields: append([]ctypes.Field{}, st.Fields...)}
		structMap[st] = ns
		out.Structs[tag] = ns
	}
	// Struct declarations occasionally carry types absent from the map
	// (e.g. generated context structs); clone those too.
	for _, d := range u.Decls {
		if sd, ok := d.(*StructDecl); ok {
			if _, seen := structMap[sd.Type]; !seen {
				ns := &ctypes.Struct{Tag: sd.Type.Tag, IsUnion: sd.Type.IsUnion,
					Fields: append([]ctypes.Field{}, sd.Type.Fields...)}
				structMap[sd.Type] = ns
			}
		}
	}
	remap := func(t ctypes.Type) ctypes.Type { return mapStructs(t, structMap) }
	for _, ns := range structMap {
		for i := range ns.Fields {
			ns.Fields[i].Type = remap(ns.Fields[i].Type)
		}
	}
	for k, v := range u.Typedefs {
		out.Typedefs[k] = remap(v)
	}
	out.Decls = make([]Decl, len(u.Decls))
	for i, d := range u.Decls {
		out.Decls[i] = CloneDecl(d)
	}
	retypeUnit(out, remap, structMap)
	return out
}

// CloneUnitScoped is the structure-sharing (path-copying) counterpart
// of CloneUnit for edits confined to the bodies or pragmas of known
// functions. It copies only the spine from the edited functions to the
// root: a fresh Unit with a fresh Decls slice, deep copies of the
// functions named in scope, and every other declaration, the type maps,
// and every *ctypes.Struct shared with the parent by pointer.
//
// The sharing is only sound for edits that (a) mutate nothing outside
// the scoped functions' bodies and pragma lists, (b) never retype struct
// fields, and (c) never renumber branch sites unit-wide. Edits that
// violate any of those (segment buffering, index retyping, top-level
// pragma renames) must keep using CloneUnit; repair's edit templates
// declare their scope explicitly and default to the full clone.
func CloneUnitScoped(u *Unit, scope []string) *Unit {
	if len(scope) == 0 {
		return CloneUnit(u)
	}
	scoped := make(map[string]bool, len(scope))
	for _, name := range scope {
		scoped[name] = true
	}
	out := &Unit{
		Typedefs:    u.Typedefs,
		Structs:     u.Structs,
		NumBranches: u.NumBranches,
	}
	out.Decls = make([]Decl, len(u.Decls))
	for i, d := range u.Decls {
		// Prototypes are cloned too: pragma-stripping edits filter the
		// pragma list of every declaration bearing the name.
		if fn, ok := d.(*FuncDecl); ok && scoped[fn.Name] {
			out.Decls[i] = CloneFunc(fn)
			continue
		}
		out.Decls[i] = d
	}
	return out
}

// mapStructs rewrites struct references inside a type onto their clones.
func mapStructs(t ctypes.Type, m map[*ctypes.Struct]*ctypes.Struct) ctypes.Type {
	switch x := t.(type) {
	case *ctypes.Struct:
		if n, ok := m[x]; ok {
			return n
		}
		return x
	case ctypes.Pointer:
		return ctypes.Pointer{Elem: mapStructs(x.Elem, m)}
	case ctypes.Array:
		return ctypes.Array{Elem: mapStructs(x.Elem, m), Len: x.Len}
	case ctypes.Ref:
		return ctypes.Ref{Elem: mapStructs(x.Elem, m)}
	case ctypes.Stream:
		return ctypes.Stream{Elem: mapStructs(x.Elem, m)}
	case ctypes.Named:
		return ctypes.Named{Name: x.Name, Underlying: mapStructs(x.Underlying, m)}
	}
	return t
}

// retypeUnit applies remap to every type reference in the unit.
func retypeUnit(u *Unit, remap func(ctypes.Type) ctypes.Type, structMap map[*ctypes.Struct]*ctypes.Struct) {
	var fixFn func(f *FuncDecl)
	fixFn = func(f *FuncDecl) {
		f.Ret = remap(f.Ret)
		for i := range f.Params {
			f.Params[i].Type = remap(f.Params[i].Type)
		}
		Inspect(f, func(n Node) bool {
			switch x := n.(type) {
			case *DeclStmt:
				x.Type = remap(x.Type)
			case *Cast:
				x.To = remap(x.To)
			case *SizeofType:
				x.T = remap(x.T)
			case *InitList:
				if x.Type != nil {
					x.Type = remap(x.Type)
				}
			}
			return true
		})
	}
	for _, d := range u.Decls {
		switch x := d.(type) {
		case *VarDecl:
			x.Type = remap(x.Type)
			Inspect(x, func(n Node) bool {
				if il, ok := n.(*InitList); ok && il.Type != nil {
					il.Type = remap(il.Type)
				}
				return true
			})
		case *FuncDecl:
			fixFn(x)
		case *TypedefDecl:
			x.Type = remap(x.Type)
		case *StructDecl:
			if ns, ok := structMap[x.Type]; ok {
				x.Type = ns
			}
			for _, m := range x.Methods {
				fixFn(m)
			}
		}
	}
}

// CloneDecl deep-copies a declaration.
func CloneDecl(d Decl) Decl {
	switch x := d.(type) {
	case *FuncDecl:
		return CloneFunc(x)
	case *VarDecl:
		return &VarDecl{P: x.P, Name: x.Name, Type: x.Type,
			Init: CloneExpr(x.Init), Static: x.Static, Const: x.Const}
	case *StructDecl:
		out := &StructDecl{P: x.P, Type: x.Type, HasCtor: x.HasCtor}
		out.Methods = make([]*FuncDecl, len(x.Methods))
		for i, m := range x.Methods {
			out.Methods[i] = CloneFunc(m)
		}
		return out
	case *TypedefDecl:
		return &TypedefDecl{P: x.P, Name: x.Name, Type: x.Type}
	case *PragmaDecl:
		return &PragmaDecl{P: x.P, Text: x.Text}
	}
	return d
}

// CloneFunc deep-copies a function declaration.
func CloneFunc(f *FuncDecl) *FuncDecl {
	out := &FuncDecl{P: f.P, Name: f.Name, Ret: f.Ret, Static: f.Static}
	out.Params = make([]Param, len(f.Params))
	copy(out.Params, f.Params)
	out.Pragmas = make([]*Pragma, len(f.Pragmas))
	for i, p := range f.Pragmas {
		out.Pragmas[i] = &Pragma{P: p.P, Text: p.Text}
	}
	if f.Body != nil {
		out.Body = CloneStmt(f.Body).(*Block)
	}
	return out
}

// CloneStmt deep-copies a statement.
func CloneStmt(s Stmt) Stmt {
	if s == nil {
		return nil
	}
	switch x := s.(type) {
	case *ExprStmt:
		return &ExprStmt{P: x.P, X: CloneExpr(x.X)}
	case *DeclStmt:
		out := &DeclStmt{P: x.P, Name: x.Name, Type: x.Type,
			Init: CloneExpr(x.Init), Static: x.Static, Const: x.Const}
		for _, d := range x.VLADims {
			out.VLADims = append(out.VLADims, CloneExpr(d))
		}
		return out
	case *Block:
		out := &Block{P: x.P, Stmts: make([]Stmt, len(x.Stmts))}
		for i, st := range x.Stmts {
			out.Stmts[i] = CloneStmt(st)
		}
		return out
	case *If:
		return &If{P: x.P, Cond: CloneExpr(x.Cond), Then: CloneStmt(x.Then),
			Else: CloneStmt(x.Else), BranchID: x.BranchID}
	case *For:
		out := &For{P: x.P, Init: CloneStmt(x.Init), Cond: CloneExpr(x.Cond),
			Post: CloneExpr(x.Post), Body: CloneStmt(x.Body), BranchID: x.BranchID}
		out.Pragmas = clonePragmas(x.Pragmas)
		return out
	case *While:
		out := &While{P: x.P, Cond: CloneExpr(x.Cond), Body: CloneStmt(x.Body),
			DoWhile: x.DoWhile, BranchID: x.BranchID}
		out.Pragmas = clonePragmas(x.Pragmas)
		return out
	case *Return:
		return &Return{P: x.P, X: CloneExpr(x.X)}
	case *Break:
		return &Break{P: x.P}
	case *Continue:
		return &Continue{P: x.P}
	case *Switch:
		out := &Switch{P: x.P, X: CloneExpr(x.X), BranchID: x.BranchID}
		out.Cases = make([]*SwitchCase, len(x.Cases))
		for i, c := range x.Cases {
			nc := &SwitchCase{P: c.P, Value: CloneExpr(c.Value), IsDefault: c.IsDefault}
			nc.Body = make([]Stmt, len(c.Body))
			for j, st := range c.Body {
				nc.Body[j] = CloneStmt(st)
			}
			out.Cases[i] = nc
		}
		return out
	case *Pragma:
		return &Pragma{P: x.P, Text: x.Text}
	case *Label:
		return &Label{P: x.P, Name: x.Name}
	case *Goto:
		return &Goto{P: x.P, Name: x.Name}
	}
	return s
}

// CloneExpr deep-copies an expression. Cloning a nil expression yields nil.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *IntLit:
		c := *x
		return &c
	case *FloatLit:
		c := *x
		return &c
	case *StrLit:
		c := *x
		return &c
	case *CharLit:
		c := *x
		return &c
	case *BoolLit:
		c := *x
		return &c
	case *Ident:
		c := *x
		return &c
	case *Unary:
		return &Unary{P: x.P, Op: x.Op, X: CloneExpr(x.X)}
	case *Postfix:
		return &Postfix{P: x.P, Op: x.Op, X: CloneExpr(x.X)}
	case *Binary:
		return &Binary{P: x.P, Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Assign:
		return &Assign{P: x.P, Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *Cond:
		return &Cond{P: x.P, C: CloneExpr(x.C), T: CloneExpr(x.T),
			F: CloneExpr(x.F), BranchID: x.BranchID}
	case *Call:
		out := &Call{P: x.P, Fun: CloneExpr(x.Fun)}
		out.Args = make([]Expr, len(x.Args))
		for i, a := range x.Args {
			out.Args[i] = CloneExpr(a)
		}
		return out
	case *Index:
		return &Index{P: x.P, X: CloneExpr(x.X), Idx: CloneExpr(x.Idx)}
	case *Member:
		return &Member{P: x.P, X: CloneExpr(x.X), Field: x.Field, Arrow: x.Arrow}
	case *Cast:
		return &Cast{P: x.P, To: x.To, X: CloneExpr(x.X)}
	case *SizeofType:
		c := *x
		return &c
	case *SizeofExpr:
		return &SizeofExpr{P: x.P, X: CloneExpr(x.X)}
	case *InitList:
		out := &InitList{P: x.P, Type: x.Type}
		out.Elems = make([]Expr, len(x.Elems))
		for i, el := range x.Elems {
			out.Elems[i] = CloneExpr(el)
		}
		return out
	}
	return e
}

func clonePragmas(ps []*Pragma) []*Pragma {
	if ps == nil {
		return nil
	}
	out := make([]*Pragma, len(ps))
	for i, p := range ps {
		out[i] = &Pragma{P: p.P, Text: p.Text}
	}
	return out
}
