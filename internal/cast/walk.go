package cast

// Inspect traverses the AST rooted at n in depth-first order, calling f for
// each node. If f returns false for a node, its children are skipped.
// Nil children are not visited.
func Inspect(n Node, f func(Node) bool) {
	if n == nil || !f(n) {
		return
	}
	switch x := n.(type) {
	// Expressions
	case *IntLit, *FloatLit, *StrLit, *CharLit, *BoolLit, *Ident,
		*SizeofType, *Break, *Continue, *Pragma, *PragmaDecl,
		*TypedefDecl, *Label, *Goto:
		// leaves
	case *Unary:
		Inspect(x.X, f)
	case *Postfix:
		Inspect(x.X, f)
	case *Binary:
		Inspect(x.L, f)
		Inspect(x.R, f)
	case *Assign:
		Inspect(x.L, f)
		Inspect(x.R, f)
	case *Cond:
		Inspect(x.C, f)
		Inspect(x.T, f)
		Inspect(x.F, f)
	case *Call:
		Inspect(x.Fun, f)
		for _, a := range x.Args {
			Inspect(a, f)
		}
	case *Index:
		Inspect(x.X, f)
		Inspect(x.Idx, f)
	case *Member:
		Inspect(x.X, f)
	case *Cast:
		Inspect(x.X, f)
	case *SizeofExpr:
		Inspect(x.X, f)
	case *InitList:
		for _, e := range x.Elems {
			Inspect(e, f)
		}

	// Statements
	case *ExprStmt:
		Inspect(x.X, f)
	case *DeclStmt:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
	case *Block:
		for _, s := range x.Stmts {
			Inspect(s, f)
		}
	case *If:
		Inspect(x.Cond, f)
		Inspect(x.Then, f)
		if x.Else != nil {
			Inspect(x.Else, f)
		}
	case *For:
		for _, p := range x.Pragmas {
			Inspect(p, f)
		}
		if x.Init != nil {
			Inspect(x.Init, f)
		}
		if x.Cond != nil {
			Inspect(x.Cond, f)
		}
		if x.Post != nil {
			Inspect(x.Post, f)
		}
		Inspect(x.Body, f)
	case *While:
		for _, p := range x.Pragmas {
			Inspect(p, f)
		}
		Inspect(x.Cond, f)
		Inspect(x.Body, f)
	case *Return:
		if x.X != nil {
			Inspect(x.X, f)
		}
	case *Switch:
		Inspect(x.X, f)
		for _, c := range x.Cases {
			if c.Value != nil {
				Inspect(c.Value, f)
			}
			for _, s := range c.Body {
				Inspect(s, f)
			}
		}

	// Declarations
	case *FuncDecl:
		for _, p := range x.Pragmas {
			Inspect(p, f)
		}
		if x.Body != nil {
			Inspect(x.Body, f)
		}
	case *VarDecl:
		if x.Init != nil {
			Inspect(x.Init, f)
		}
	case *StructDecl:
		for _, m := range x.Methods {
			Inspect(m, f)
		}
	case *Unit:
		for _, d := range x.Decls {
			Inspect(d, f)
		}
	}
}

// CountNodes returns the number of nodes under n (inclusive).
func CountNodes(n Node) int {
	count := 0
	Inspect(n, func(Node) bool { count++; return true })
	return count
}

// CallsTo returns all call expressions under n whose callee is the plain
// identifier name.
func CallsTo(n Node, name string) []*Call {
	var calls []*Call
	Inspect(n, func(m Node) bool {
		if c, ok := m.(*Call); ok {
			if id, ok := c.Fun.(*Ident); ok && id.Name == name {
				calls = append(calls, c)
			}
		}
		return true
	})
	return calls
}

// NumberBranches assigns sequential branch IDs to every coverage site in
// the unit (if/else, loops, ternaries, switch) and records the total. The
// interpreter reports coverage against these IDs: an if contributes two
// outcomes (taken/not taken) under a single site ID; the fuzzer tracks
// (site, outcome) pairs.
func NumberBranches(u *Unit) {
	id := 0
	Inspect(u, func(n Node) bool {
		switch x := n.(type) {
		case *If:
			x.BranchID = id
			id++
		case *For:
			x.BranchID = id
			id++
		case *While:
			x.BranchID = id
			id++
		case *Cond:
			x.BranchID = id
			id++
		case *Switch:
			x.BranchID = id
			// one site per case arm
			id += len(x.Cases)
		}
		return true
	})
	u.NumBranches = id
}
