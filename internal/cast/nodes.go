// Package cast defines the abstract syntax tree for the C subset that the
// HeteroGen frontend parses, the repair engine edits, and the interpreter
// and HLS simulator execute.
//
// The repair engine works by structural edits on this tree — parameterized
// templates clone subtrees, splice statements, retype declarations, and
// insert pragmas — so the package also provides deep cloning (Clone), a
// generic walker (Walk/Inspect), and a stable printer (Print) that renders
// the tree back to C/HLS-C source.
package cast

import (
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// Node is the interface implemented by every AST node.
type Node interface {
	Pos() ctoken.Pos
}

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// Decl is a top-level declaration node.
type Decl interface {
	Node
	declNode()
}

// ---------------------------------------------------------------------------
// Expressions

// IntLit is an integer literal.
type IntLit struct {
	P     ctoken.Pos
	Value int64
	Text  string // original spelling, kept for faithful printing
}

// FloatLit is a floating literal.
type FloatLit struct {
	P     ctoken.Pos
	Value float64
	Text  string
}

// StrLit is a string literal.
type StrLit struct {
	P     ctoken.Pos
	Value string
}

// CharLit is a character literal.
type CharLit struct {
	P     ctoken.Pos
	Value byte
}

// BoolLit is true/false.
type BoolLit struct {
	P     ctoken.Pos
	Value bool
}

// Ident is a name reference.
type Ident struct {
	P    ctoken.Pos
	Name string
}

// Unary is a prefix unary expression: -x, !x, ~x, *p, &x, ++x, --x.
type Unary struct {
	P  ctoken.Pos
	Op ctoken.Kind
	X  Expr
}

// Postfix is x++ or x--.
type Postfix struct {
	P  ctoken.Pos
	Op ctoken.Kind // INC or DEC
	X  Expr
}

// Binary is a binary expression.
type Binary struct {
	P    ctoken.Pos
	Op   ctoken.Kind
	L, R Expr
}

// Assign is an assignment, including compound assignments.
type Assign struct {
	P    ctoken.Pos
	Op   ctoken.Kind // ASSIGN, ADDASSIGN, ...
	L, R Expr
}

// Cond is the ternary operator c ? t : f.
type Cond struct {
	P       ctoken.Pos
	C, T, F Expr
	// BranchID is assigned during coverage numbering; -1 if unassigned.
	BranchID int
}

// Call is a function call. Method calls (s.pop(), q.read()) are
// represented with a Member callee.
type Call struct {
	P    ctoken.Pos
	Fun  Expr
	Args []Expr
}

// Index is a[i].
type Index struct {
	P      ctoken.Pos
	X, Idx Expr
}

// Member is x.f or p->f.
type Member struct {
	P     ctoken.Pos
	X     Expr
	Field string
	Arrow bool // true for ->
}

// Cast is (T)x.
type Cast struct {
	P  ctoken.Pos
	To ctypes.Type
	X  Expr
}

// SizeofType is sizeof(T).
type SizeofType struct {
	P ctoken.Pos
	T ctypes.Type
}

// SizeofExpr is sizeof(x).
type SizeofExpr struct {
	P ctoken.Pos
	X Expr
}

// InitList is a brace initializer {a, b, c}, also used for struct
// temporaries like If2{in, tmp}.
type InitList struct {
	P     ctoken.Pos
	Type  ctypes.Type // optional: named struct temporaries
	Elems []Expr
}

func (e *IntLit) Pos() ctoken.Pos     { return e.P }
func (e *FloatLit) Pos() ctoken.Pos   { return e.P }
func (e *StrLit) Pos() ctoken.Pos     { return e.P }
func (e *CharLit) Pos() ctoken.Pos    { return e.P }
func (e *BoolLit) Pos() ctoken.Pos    { return e.P }
func (e *Ident) Pos() ctoken.Pos      { return e.P }
func (e *Unary) Pos() ctoken.Pos      { return e.P }
func (e *Postfix) Pos() ctoken.Pos    { return e.P }
func (e *Binary) Pos() ctoken.Pos     { return e.P }
func (e *Assign) Pos() ctoken.Pos     { return e.P }
func (e *Cond) Pos() ctoken.Pos       { return e.P }
func (e *Call) Pos() ctoken.Pos       { return e.P }
func (e *Index) Pos() ctoken.Pos      { return e.P }
func (e *Member) Pos() ctoken.Pos     { return e.P }
func (e *Cast) Pos() ctoken.Pos       { return e.P }
func (e *SizeofType) Pos() ctoken.Pos { return e.P }
func (e *SizeofExpr) Pos() ctoken.Pos { return e.P }
func (e *InitList) Pos() ctoken.Pos   { return e.P }

func (*IntLit) exprNode()     {}
func (*FloatLit) exprNode()   {}
func (*StrLit) exprNode()     {}
func (*CharLit) exprNode()    {}
func (*BoolLit) exprNode()    {}
func (*Ident) exprNode()      {}
func (*Unary) exprNode()      {}
func (*Postfix) exprNode()    {}
func (*Binary) exprNode()     {}
func (*Assign) exprNode()     {}
func (*Cond) exprNode()       {}
func (*Call) exprNode()       {}
func (*Index) exprNode()      {}
func (*Member) exprNode()     {}
func (*Cast) exprNode()       {}
func (*SizeofType) exprNode() {}
func (*SizeofExpr) exprNode() {}
func (*InitList) exprNode()   {}

// ---------------------------------------------------------------------------
// Statements

// ExprStmt is an expression used as a statement.
type ExprStmt struct {
	P ctoken.Pos
	X Expr
}

// DeclStmt is a local variable declaration.
type DeclStmt struct {
	P      ctoken.Pos
	Name   string
	Type   ctypes.Type
	Init   Expr // may be nil
	Static bool
	Const  bool
	// VLADims holds the runtime dimension expressions of a
	// variable-length array declaration (one per unknown dimension, outer
	// first). The CPU interpreter evaluates them; the HLS checker rejects
	// the declaration; the array_static repair replaces them with
	// constants.
	VLADims []Expr
}

// Block is { ... }.
type Block struct {
	P     ctoken.Pos
	Stmts []Stmt
}

// If is if/else.
type If struct {
	P          ctoken.Pos
	Cond       Expr
	Then, Else Stmt // Else may be nil
	BranchID   int  // coverage site id; -1 if unassigned
}

// For is for(init; cond; post) body. Init may be a DeclStmt or ExprStmt.
type For struct {
	P        ctoken.Pos
	Init     Stmt // may be nil
	Cond     Expr // may be nil
	Post     Expr // may be nil
	Body     Stmt
	BranchID int
	Pragmas  []*Pragma // HLS pragmas attached inside the loop body head
}

// While is while(cond) body or do body while(cond).
type While struct {
	P        ctoken.Pos
	Cond     Expr
	Body     Stmt
	DoWhile  bool
	BranchID int
	Pragmas  []*Pragma
}

// Return is return [expr].
type Return struct {
	P ctoken.Pos
	X Expr // may be nil
}

// Break / Continue.
type Break struct{ P ctoken.Pos }

// Continue is the continue statement.
type Continue struct{ P ctoken.Pos }

// Switch is switch(x) { cases }.
type Switch struct {
	P        ctoken.Pos
	X        Expr
	Cases    []*SwitchCase
	BranchID int
}

// SwitchCase is one case (or default when IsDefault) arm.
type SwitchCase struct {
	P         ctoken.Pos
	Value     Expr // nil for default
	IsDefault bool
	Body      []Stmt
}

// Pragma is a #pragma directive appearing in statement position. The text
// excludes the leading "#pragma" (e.g. "HLS unroll factor=4").
type Pragma struct {
	P    ctoken.Pos
	Text string
}

// Label is a goto target.
type Label struct {
	P    ctoken.Pos
	Name string
}

// Goto transfers control to a label.
type Goto struct {
	P    ctoken.Pos
	Name string
}

func (s *ExprStmt) Pos() ctoken.Pos { return s.P }
func (s *DeclStmt) Pos() ctoken.Pos { return s.P }
func (s *Block) Pos() ctoken.Pos    { return s.P }
func (s *If) Pos() ctoken.Pos       { return s.P }
func (s *For) Pos() ctoken.Pos      { return s.P }
func (s *While) Pos() ctoken.Pos    { return s.P }
func (s *Return) Pos() ctoken.Pos   { return s.P }
func (s *Break) Pos() ctoken.Pos    { return s.P }
func (s *Continue) Pos() ctoken.Pos { return s.P }
func (s *Switch) Pos() ctoken.Pos   { return s.P }
func (s *Pragma) Pos() ctoken.Pos   { return s.P }
func (s *Label) Pos() ctoken.Pos    { return s.P }
func (s *Goto) Pos() ctoken.Pos     { return s.P }

func (*ExprStmt) stmtNode() {}
func (*DeclStmt) stmtNode() {}
func (*Block) stmtNode()    {}
func (*If) stmtNode()       {}
func (*For) stmtNode()      {}
func (*While) stmtNode()    {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Switch) stmtNode()   {}
func (*Pragma) stmtNode()   {}
func (*Label) stmtNode()    {}
func (*Goto) stmtNode()     {}

// ---------------------------------------------------------------------------
// Declarations

// Param is a function parameter.
type Param struct {
	Name string
	Type ctypes.Type
}

// FuncDecl is a function definition.
type FuncDecl struct {
	P       ctoken.Pos
	Name    string
	Ret     ctypes.Type
	Params  []Param
	Body    *Block // nil for prototypes
	Static  bool
	Pragmas []*Pragma // pragmas at function head (e.g. HLS dataflow, interface)
}

// VarDecl is a global variable declaration.
type VarDecl struct {
	P      ctoken.Pos
	Name   string
	Type   ctypes.Type
	Init   Expr
	Static bool
	Const  bool
}

// StructDecl defines a struct or union type, possibly with methods
// (HLS-C structs may carry member functions, as in the paper's If2).
type StructDecl struct {
	P       ctoken.Pos
	Type    *ctypes.Struct
	Methods []*FuncDecl // member functions; receiver fields resolve to the instance
	// HasCtor notes an explicit constructor among Methods (name == struct tag).
	HasCtor bool
}

// TypedefDecl introduces a type alias.
type TypedefDecl struct {
	P    ctoken.Pos
	Name string
	Type ctypes.Type
}

// PragmaDecl is a file-scope pragma.
type PragmaDecl struct {
	P    ctoken.Pos
	Text string
}

func (d *FuncDecl) Pos() ctoken.Pos    { return d.P }
func (d *VarDecl) Pos() ctoken.Pos     { return d.P }
func (d *StructDecl) Pos() ctoken.Pos  { return d.P }
func (d *TypedefDecl) Pos() ctoken.Pos { return d.P }
func (d *PragmaDecl) Pos() ctoken.Pos  { return d.P }

func (*FuncDecl) declNode()    {}
func (*VarDecl) declNode()     {}
func (*StructDecl) declNode()  {}
func (*TypedefDecl) declNode() {}
func (*PragmaDecl) declNode()  {}

// ---------------------------------------------------------------------------
// Translation unit

// Unit is a parsed translation unit. It implements Node (position of its
// first declaration) so Inspect can start from the whole unit.
type Unit struct {
	Decls []Decl
	// Typedefs and Structs index the unit's named types.
	Typedefs map[string]ctypes.Type
	Structs  map[string]*ctypes.Struct
	// NumBranches is the number of coverage sites assigned by
	// NumberBranches; 0 until numbering runs.
	NumBranches int
}

// Pos returns the position of the unit's first declaration.
func (u *Unit) Pos() ctoken.Pos {
	if len(u.Decls) > 0 {
		return u.Decls[0].Pos()
	}
	return ctoken.Pos{}
}

// Func returns the named function declaration, preferring a definition
// (with a body) over a prototype; nil when the name is unknown.
func (u *Unit) Func(name string) *FuncDecl {
	var proto *FuncDecl
	for _, d := range u.Decls {
		if f, ok := d.(*FuncDecl); ok && f.Name == name {
			if f.Body != nil {
				return f
			}
			if proto == nil {
				proto = f
			}
		}
	}
	// Struct methods are reachable too.
	for _, d := range u.Decls {
		if sd, ok := d.(*StructDecl); ok {
			for _, m := range sd.Methods {
				if m.Name == name {
					return m
				}
			}
		}
	}
	return proto
}

// Var returns the named global variable declaration, or nil.
func (u *Unit) Var(name string) *VarDecl {
	for _, d := range u.Decls {
		if v, ok := d.(*VarDecl); ok && v.Name == name {
			return v
		}
	}
	return nil
}

// StructOf returns the declaration of the named struct, or nil.
func (u *Unit) StructOf(tag string) *StructDecl {
	for _, d := range u.Decls {
		if s, ok := d.(*StructDecl); ok && s.Type.Tag == tag {
			return s
		}
	}
	return nil
}

// Funcs returns all function declarations in order, excluding methods.
func (u *Unit) Funcs() []*FuncDecl {
	var fs []*FuncDecl
	for _, d := range u.Decls {
		if f, ok := d.(*FuncDecl); ok {
			fs = append(fs, f)
		}
	}
	return fs
}

// RemoveDecl deletes the given declaration from the unit.
func (u *Unit) RemoveDecl(target Decl) {
	for i, d := range u.Decls {
		if d == target {
			u.Decls = append(u.Decls[:i], u.Decls[i+1:]...)
			return
		}
	}
}

// InsertDeclBefore inserts d immediately before target (or appends if the
// target is not found).
func (u *Unit) InsertDeclBefore(d, target Decl) {
	for i, x := range u.Decls {
		if x == target {
			u.Decls = append(u.Decls[:i], append([]Decl{d}, u.Decls[i:]...)...)
			return
		}
	}
	u.Decls = append(u.Decls, d)
}
