package cast

import (
	"fmt"
	"strings"

	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// Print renders a translation unit back to C/HLS-C source. The output is
// stable: printing, reparsing, and printing again yields identical text,
// which the property-based tests rely on. LOC deltas in the evaluation
// (Table 5) are computed over this rendering.
func Print(u *Unit) string {
	var p printer
	for i, d := range u.Decls {
		if i > 0 {
			p.nl()
		}
		p.decl(d)
	}
	return p.sb.String()
}

// PrintDecl renders a single top-level declaration. The per-declaration
// fingerprints (fingerprint.go) hash this rendering, so a unit's
// composed fingerprint can be recombined from cached declaration hashes
// after an edit instead of reprinting the whole unit.
func PrintDecl(d Decl) string {
	var p printer
	p.decl(d)
	return p.sb.String()
}

// PrintStmt renders a single statement (used in diagnostics and tests).
func PrintStmt(s Stmt) string {
	var p printer
	p.stmt(s)
	return strings.TrimRight(p.sb.String(), "\n")
}

// PrintExpr renders a single expression.
func PrintExpr(e Expr) string {
	var p printer
	p.expr(e, 0)
	return p.sb.String()
}

// CountLines returns the number of non-blank source lines in the printed
// form of u — the unit of measure for the paper's LOC comparisons.
func CountLines(u *Unit) int {
	n := 0
	for _, line := range strings.Split(Print(u), "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) ws() {
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("    ")
	}
}

func (p *printer) nl() { p.sb.WriteByte('\n') }

func (p *printer) printf(format string, args ...any) {
	fmt.Fprintf(&p.sb, format, args...)
}

// ---------------------------------------------------------------------------
// Declarations

func (p *printer) decl(d Decl) {
	switch x := d.(type) {
	case *FuncDecl:
		p.funcDecl(x)
	case *VarDecl:
		p.ws()
		if x.Static {
			p.printf("static ")
		}
		if x.Const {
			p.printf("const ")
		}
		p.printf("%s", x.Type.C(x.Name))
		if x.Init != nil {
			p.printf(" = ")
			p.expr(x.Init, 0)
		}
		p.printf(";\n")
	case *StructDecl:
		kw := "struct"
		if x.Type.IsUnion {
			kw = "union"
		}
		p.ws()
		p.printf("%s %s {\n", kw, x.Type.Tag)
		p.indent++
		for _, f := range x.Type.Fields {
			p.ws()
			p.printf("%s;\n", f.Type.C(f.Name))
		}
		for _, m := range x.Methods {
			p.funcDecl(m)
		}
		p.indent--
		p.ws()
		p.printf("};\n")
	case *TypedefDecl:
		p.ws()
		p.printf("typedef %s;\n", x.Type.C(x.Name))
	case *PragmaDecl:
		p.ws()
		p.printf("#pragma %s\n", x.Text)
	}
}

func (p *printer) funcDecl(f *FuncDecl) {
	p.ws()
	if f.Static {
		p.printf("static ")
	}
	params := make([]string, len(f.Params))
	for i, prm := range f.Params {
		params[i] = prm.Type.C(prm.Name)
	}
	p.printf("%s(%s)", f.Ret.C(f.Name), strings.Join(params, ", "))
	if f.Body == nil {
		p.printf(";\n")
		return
	}
	p.printf(" {\n")
	p.indent++
	for _, pr := range f.Pragmas {
		p.ws()
		p.printf("#pragma %s\n", pr.Text)
	}
	for _, s := range f.Body.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.ws()
	p.printf("}\n")
}

// ---------------------------------------------------------------------------
// Statements

func (p *printer) stmt(s Stmt) {
	switch x := s.(type) {
	case *ExprStmt:
		p.ws()
		p.expr(x.X, 0)
		p.printf(";\n")
	case *DeclStmt:
		p.ws()
		if x.Static {
			p.printf("static ")
		}
		if x.Const {
			p.printf("const ")
		}
		if len(x.VLADims) > 0 {
			// Variable-length array: render the runtime dimensions.
			elem := x.Type
			depth := 0
			for {
				a, ok := elem.(ctypes.Array)
				if !ok {
					break
				}
				elem = a.Elem
				depth++
			}
			p.printf("%s %s", elem.C(""), x.Name)
			for i := 0; i < depth; i++ {
				p.printf("[")
				if i < len(x.VLADims) {
					p.expr(x.VLADims[i], 0)
				}
				p.printf("]")
			}
		} else {
			p.printf("%s", x.Type.C(x.Name))
		}
		if x.Init != nil {
			p.printf(" = ")
			p.expr(x.Init, 0)
		}
		p.printf(";\n")
	case *Block:
		p.ws()
		p.printf("{\n")
		p.indent++
		for _, st := range x.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.ws()
		p.printf("}\n")
	case *If:
		p.ws()
		p.printf("if (")
		p.expr(x.Cond, 0)
		p.printf(")")
		p.body(x.Then)
		if x.Else != nil {
			p.ws()
			p.printf("else")
			p.body(x.Else)
		}
	case *For:
		p.ws()
		p.printf("for (")
		switch init := x.Init.(type) {
		case nil:
		case *DeclStmt:
			p.printf("%s", init.Type.C(init.Name))
			if init.Init != nil {
				p.printf(" = ")
				p.expr(init.Init, 0)
			}
		case *ExprStmt:
			p.expr(init.X, 0)
		}
		p.printf("; ")
		if x.Cond != nil {
			p.expr(x.Cond, 0)
		}
		p.printf("; ")
		if x.Post != nil {
			p.expr(x.Post, 0)
		}
		p.printf(")")
		p.loopBody(x.Body, x.Pragmas)
	case *While:
		if x.DoWhile {
			p.ws()
			p.printf("do")
			p.loopBody(x.Body, x.Pragmas)
			p.ws()
			p.printf("while (")
			p.expr(x.Cond, 0)
			p.printf(");\n")
			return
		}
		p.ws()
		p.printf("while (")
		p.expr(x.Cond, 0)
		p.printf(")")
		p.loopBody(x.Body, x.Pragmas)
	case *Return:
		p.ws()
		p.printf("return")
		if x.X != nil {
			p.printf(" ")
			p.expr(x.X, 0)
		}
		p.printf(";\n")
	case *Break:
		p.ws()
		p.printf("break;\n")
	case *Continue:
		p.ws()
		p.printf("continue;\n")
	case *Switch:
		p.ws()
		p.printf("switch (")
		p.expr(x.X, 0)
		p.printf(") {\n")
		for _, c := range x.Cases {
			p.ws()
			if c.IsDefault {
				p.printf("default:\n")
			} else {
				p.printf("case ")
				p.expr(c.Value, 0)
				p.printf(":\n")
			}
			p.indent++
			for _, st := range c.Body {
				p.stmt(st)
			}
			p.indent--
		}
		p.ws()
		p.printf("}\n")
	case *Pragma:
		p.ws()
		p.printf("#pragma %s\n", x.Text)
	case *Label:
		p.printf("%s:\n", x.Name)
	case *Goto:
		p.ws()
		p.printf("goto %s;\n", x.Name)
	}
}

// body prints a statement as the body of an if/else, forcing block form.
func (p *printer) body(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.printf(" {\n")
		p.indent++
		for _, st := range b.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.ws()
		p.printf("}\n")
		return
	}
	p.printf("\n")
	p.indent++
	p.stmt(s)
	p.indent--
}

// loopBody prints a loop body with its HLS pragmas at the head, the form
// Vivado requires.
func (p *printer) loopBody(s Stmt, pragmas []*Pragma) {
	p.printf(" {\n")
	p.indent++
	for _, pr := range pragmas {
		p.ws()
		p.printf("#pragma %s\n", pr.Text)
	}
	if b, ok := s.(*Block); ok {
		for _, st := range b.Stmts {
			p.stmt(st)
		}
	} else if s != nil {
		p.stmt(s)
	}
	p.indent--
	p.ws()
	p.printf("}\n")
}

// ---------------------------------------------------------------------------
// Expressions

// Operator precedence (higher binds tighter), mirroring C.
func precOf(op ctoken.Kind) int {
	switch op {
	case ctoken.MUL, ctoken.QUO, ctoken.REM:
		return 10
	case ctoken.ADD, ctoken.SUB:
		return 9
	case ctoken.SHL, ctoken.SHR:
		return 8
	case ctoken.LSS, ctoken.GTR, ctoken.LEQ, ctoken.GEQ:
		return 7
	case ctoken.EQL, ctoken.NEQ:
		return 6
	case ctoken.AND:
		return 5
	case ctoken.XOR:
		return 4
	case ctoken.OR:
		return 3
	case ctoken.LAND:
		return 2
	case ctoken.LOR:
		return 1
	}
	return 0
}

func (p *printer) expr(e Expr, parentPrec int) {
	switch x := e.(type) {
	case *IntLit:
		if x.Text != "" {
			p.printf("%s", x.Text)
		} else {
			p.printf("%d", x.Value)
		}
	case *FloatLit:
		if x.Text != "" {
			p.printf("%s", x.Text)
		} else {
			p.printf("%g", x.Value)
		}
	case *StrLit:
		p.printf("%q", x.Value)
	case *CharLit:
		switch {
		case x.Value == '\n':
			p.printf(`'\n'`)
		case x.Value == '\t':
			p.printf(`'\t'`)
		case x.Value == 0:
			p.printf(`'\0'`)
		case x.Value == '\'':
			p.printf(`'\''`)
		case x.Value == '\\':
			p.printf(`'\\'`)
		case x.Value >= 32 && x.Value < 127:
			p.printf("'%c'", x.Value)
		default:
			// Non-printable or non-ASCII bytes print as their integer
			// value (same C semantics, lossless round trip).
			p.printf("%d", x.Value)
		}
	case *BoolLit:
		p.printf("%t", x.Value)
	case *Ident:
		p.printf("%s", x.Name)
	case *Unary:
		p.printf("%s", x.Op)
		// Parenthesize compound operands to keep round-tripping stable.
		p.exprChild(x.X)
	case *Postfix:
		p.exprChild(x.X)
		p.printf("%s", x.Op)
	case *Binary:
		prec := precOf(x.Op)
		if prec <= parentPrec {
			p.printf("(")
		}
		p.expr(x.L, prec-1)
		p.printf(" %s ", x.Op)
		p.expr(x.R, prec)
		if prec <= parentPrec {
			p.printf(")")
		}
	case *Assign:
		if parentPrec > 0 {
			p.printf("(")
		}
		p.expr(x.L, 11)
		p.printf(" %s ", x.Op)
		p.expr(x.R, 0)
		if parentPrec > 0 {
			p.printf(")")
		}
	case *Cond:
		if parentPrec > 0 {
			p.printf("(")
		}
		p.expr(x.C, 2)
		p.printf(" ? ")
		p.expr(x.T, 0)
		p.printf(" : ")
		p.expr(x.F, 0)
		if parentPrec > 0 {
			p.printf(")")
		}
	case *Call:
		p.exprChild(x.Fun)
		p.printf("(")
		for i, a := range x.Args {
			if i > 0 {
				p.printf(", ")
			}
			p.expr(a, 0)
		}
		p.printf(")")
	case *Index:
		p.exprChild(x.X)
		p.printf("[")
		p.expr(x.Idx, 0)
		p.printf("]")
	case *Member:
		p.exprChild(x.X)
		if x.Arrow {
			p.printf("->%s", x.Field)
		} else {
			p.printf(".%s", x.Field)
		}
	case *Cast:
		p.printf("(%s)", x.To.C(""))
		p.exprChild(x.X)
	case *SizeofType:
		p.printf("sizeof(%s)", x.T.C(""))
	case *SizeofExpr:
		p.printf("sizeof(")
		p.expr(x.X, 0)
		p.printf(")")
	case *InitList:
		if x.Type != nil {
			if st, ok := x.Type.(*ctypes.Struct); ok {
				p.printf("%s", st.Tag)
			} else {
				p.printf("%s", x.Type.C(""))
			}
		}
		p.printf("{")
		for i, el := range x.Elems {
			if i > 0 {
				p.printf(", ")
			}
			p.expr(el, 0)
		}
		p.printf("}")
	}
}

// exprChild prints a child of a postfix/unary context, parenthesizing any
// operator expression so precedence never changes across a round trip.
func (p *printer) exprChild(e Expr) {
	switch e.(type) {
	case *IntLit, *FloatLit, *StrLit, *CharLit, *BoolLit, *Ident, *Call,
		*Index, *Member, *SizeofType, *SizeofExpr, *InitList, *Postfix:
		p.expr(e, 0)
	default:
		p.printf("(")
		p.expr(e, 0)
		p.printf(")")
	}
}
