package profile

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/fuzz"
)

func scalarTests(vals ...int64) []fuzz.TestCase {
	var out []fuzz.TestCase
	for _, v := range vals {
		out = append(out, fuzz.TestCase{Args: []fuzz.Arg{
			{Scalar: true, Ints: []int64{v}, Width: 32},
		}})
	}
	return out
}

func TestBitwidthNarrowing(t *testing.T) {
	// The paper's working example: ret peaks at 83, fitting fpga_uint<7>
	// (plus the safety margin bit -> 8).
	u := cparser.MustParse(`
int visit(int v) { int ret = v * 2 + 3; return ret; }
int kernel(int n) {
    int total = 0;
    for (int i = 0; i < n; i++) { total += visit(i); }
    return total;
}`)
	res, err := Generate(u, "kernel", scalarTests(41))
	if err != nil {
		t.Fatal(err)
	}
	var retDecl *cast.DeclStmt
	cast.Inspect(res.Unit.Func("visit"), func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok && d.Name == "ret" {
			retDecl = d
		}
		return true
	})
	if retDecl == nil {
		t.Fatal("ret declaration missing")
	}
	ft, ok := retDecl.Type.(ctypes.FPGAInt)
	if !ok {
		t.Fatalf("ret not retyped: %s", retDecl.Type.C(""))
	}
	if !ft.Unsigned || ft.Width != 7+SafetyMarginBits {
		t.Errorf("ret type %s, want fpga_uint<%d>", ft.C(""), 7+SafetyMarginBits)
	}
	if len(res.Retyped) == 0 || !strings.Contains(res.Retyped[0], "ret") {
		t.Errorf("retype log %v", res.Retyped)
	}
}

func TestOriginalUnitUntouched(t *testing.T) {
	u := cparser.MustParse(`
int kernel(int n) { int small = n % 4; return small; }`)
	before := cast.Print(u)
	if _, err := Generate(u, "kernel", scalarTests(3, 2, 1)); err != nil {
		t.Fatal(err)
	}
	if cast.Print(u) != before {
		t.Error("Generate mutated its input unit")
	}
}

func TestLongDoubleRetyped(t *testing.T) {
	u := cparser.MustParse(`
int kernel(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`)
	res, err := Generate(u, "kernel", scalarTests(5))
	if err != nil {
		t.Fatal(err)
	}
	var decl *cast.DeclStmt
	cast.Inspect(res.Unit, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok && d.Name == "in_ld" {
			decl = d
		}
		return true
	})
	if decl == nil {
		t.Fatal("in_ld missing")
	}
	if !decl.Type.Equal(ctypes.DefaultFPGAFloat) {
		t.Errorf("in_ld type %s, want fpga_float<8,71>", decl.Type.C(""))
	}
}

func TestNegativeRangesGetSignedTypes(t *testing.T) {
	u := cparser.MustParse(`
int kernel(int n) {
    int delta = -n;
    return delta;
}`)
	res, err := Generate(u, "kernel", scalarTests(100, 50))
	if err != nil {
		t.Fatal(err)
	}
	var decl *cast.DeclStmt
	cast.Inspect(res.Unit, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok && d.Name == "delta" {
			decl = d
		}
		return true
	})
	ft, ok := decl.Type.(ctypes.FPGAInt)
	if !ok {
		t.Fatalf("delta not retyped: %s", decl.Type.C(""))
	}
	if ft.Unsigned {
		t.Errorf("delta saw negative values, must be signed: %s", ft.C(""))
	}
}

func TestWideRangesKeepOriginalType(t *testing.T) {
	u := cparser.MustParse(`
int kernel(int n) {
    int big = n * 1000000;
    return big;
}`)
	res, err := Generate(u, "kernel", scalarTests(2000))
	if err != nil {
		t.Fatal(err)
	}
	var decl *cast.DeclStmt
	cast.Inspect(res.Unit, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok && d.Name == "big" {
			decl = d
		}
		return true
	})
	if _, ok := decl.Type.(ctypes.FPGAInt); ok {
		if decl.Type.Bits() >= 32 {
			return // retype with no saving did not happen, fine
		}
		t.Errorf("big (range ~2e9) narrowed to %s", decl.Type.C(""))
	}
}

func TestCrashingTestsSkipped(t *testing.T) {
	u := cparser.MustParse(`
int kernel(int n) {
    int q = 100 / n;
    return q;
}`)
	// First test divides by zero; profiling should still succeed from the
	// second.
	res, err := Generate(u, "kernel", scalarTests(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranges["kernel.q"] == nil {
		t.Error("range for q missing despite one clean test")
	}
}
