// Package profile implements HeteroGen's initial HLS version generation:
// it profiles the original C program under the generated tests to learn
// the value range of every integer variable, then rewrites declarations to
// the tightest HLS types (fpga_uint<N>/fpga_int<N>), and replaces
// unsynthesizable long double declarations with fpga_float<8,71>.
//
// The output is the paper's P_broken: behaviourally identical on the CPU,
// typed for the fabric, and usually still failing synthesizability checks
// that the repair engine then fixes.
package profile

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/interp"
)

// Result describes the generated initial version.
type Result struct {
	Unit *cast.Unit
	// Retyped lists "func.var: old -> new" rewrites for reporting.
	Retyped []string
	// Ranges holds the observed profile.
	Ranges map[string]*interp.Range
}

// SafetyMarginBits widens every estimated bitwidth: the generated tests
// reflect observed ranges, and the paper notes HeteroGen deliberately
// over-estimates rather than truncate unseen values.
const SafetyMarginBits = 1

// Generate profiles the kernel of u over the test suite and returns the
// initial HLS version (a deep copy; u is untouched).
func Generate(u *cast.Unit, kernel string, tests []fuzz.TestCase) (Result, error) {
	in, err := interp.New(u, interp.Options{Profile: true})
	if err != nil {
		return Result{}, err
	}
	ran := 0
	for _, tc := range tests {
		if err := in.Reset(); err != nil {
			return Result{}, err
		}
		if _, err := in.CallKernel(kernel, tc.Values()); err != nil {
			continue // crashing tests contribute nothing to ranges
		}
		ran++
	}
	if ran == 0 && len(tests) > 0 {
		return Result{}, fmt.Errorf("profile: no test executed successfully")
	}

	out := cast.CloneUnit(u)
	res := Result{Unit: out, Ranges: in.Profiles}

	for _, d := range out.Decls {
		fn, ok := d.(*cast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		retypeFunc(fn, in.Profiles, &res)
	}
	// Long double globals are retyped unconditionally (no profile needed).
	for _, d := range out.Decls {
		if v, ok := d.(*cast.VarDecl); ok {
			if nt, changed := retypeLongDouble(v.Type); changed {
				res.Retyped = append(res.Retyped,
					fmt.Sprintf("%s: %s -> %s", v.Name, v.Type.C(""), nt.C("")))
				v.Type = nt
			}
		}
	}
	return res, nil
}

func retypeFunc(fn *cast.FuncDecl, profiles map[string]*interp.Range, res *Result) {
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		d, ok := n.(*cast.DeclStmt)
		if !ok {
			return true
		}
		// long double -> fpga_float<8,71> regardless of profile.
		if nt, changed := retypeLongDouble(d.Type); changed {
			res.Retyped = append(res.Retyped,
				fmt.Sprintf("%s.%s: %s -> %s", fn.Name, d.Name, d.Type.C(""), nt.C("")))
			d.Type = nt
			return true
		}
		// Integer narrowing from profile.
		it, ok := ctypes.Resolve(d.Type).(ctypes.Int)
		if !ok {
			return true
		}
		r, ok := profiles[fn.Name+"."+d.Name]
		if !ok || !r.Seen {
			return true
		}
		ft := ctypes.FitInteger(r.Min, r.Max)
		ft.Width += SafetyMarginBits
		if ft.Width >= it.Width {
			return true // no saving
		}
		res.Retyped = append(res.Retyped,
			fmt.Sprintf("%s.%s: %s -> %s (range [%d,%d])",
				fn.Name, d.Name, d.Type.C(""), ft.C(""), r.Min, r.Max))
		d.Type = ft
		return true
	})
}

// retypeLongDouble maps long double (possibly nested in arrays) to the
// default custom float.
func retypeLongDouble(t ctypes.Type) (ctypes.Type, bool) {
	switch u := t.(type) {
	case ctypes.Float:
		if u.FK == ctypes.F80 {
			return ctypes.DefaultFPGAFloat, true
		}
	case ctypes.Array:
		if elem, changed := retypeLongDouble(u.Elem); changed {
			return ctypes.Array{Elem: elem, Len: u.Len}, true
		}
	case ctypes.Pointer:
		if elem, changed := retypeLongDouble(u.Elem); changed {
			return ctypes.Pointer{Elem: elem}, true
		}
	}
	return t, false
}
