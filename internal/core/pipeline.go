// Package core orchestrates the five-stage HeteroGen pipeline of Figure 1:
//
//  1. test input generation (coverage-guided fuzzing of the kernel),
//  2. initial HLS version generation (bitwidth profiling -> P_broken),
//  3. repair localization (HLS diagnostics -> error classes),
//  4. repair-space exploration (dependence-guided edit chains), and
//  5. fitness evaluation (differential testing + simulated latency),
//
// iterating 3-5 under a virtual time budget.
package core

import (
	"context"
	"fmt"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/difftest"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
	"github.com/hetero/heterogen/internal/hls/sim"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/profile"
	"github.com/hetero/heterogen/internal/repair"
)

// Options configures a pipeline run.
type Options struct {
	// Kernel names the function to transpile (the design's top function).
	Kernel string
	// HostMain optionally names a host entry point used to capture
	// kernel-entry seed inputs.
	HostMain string
	// Fuzz configures test generation; zero means fuzz.DefaultOptions.
	Fuzz fuzz.Options
	// Repair configures the search; zero means repair.DefaultOptions.
	Repair repair.Options
	// SkipProfile disables bitwidth finitization (ablation).
	SkipProfile bool
	// Targets names the (backend, device) set the design must fit — the
	// target-set API. Empty means the implicit default target (the
	// paper's evaluation platform) with legacy single-target behavior
	// and byte-identical traces. With targets set, the repair search
	// runs in multi-target mode (per-device fitness vectors, Pareto
	// archive — see repair.Options.Targets), Check/Simulate resolve
	// their config and capacity table from Targets[0]'s profile, and
	// unknown backend or device names fail fast with an explicit error.
	// It is passed down to Repair.Targets unless that is already set.
	Targets []hls.Target
	// Workers bounds concurrent candidate evaluation in the repair
	// search (see repair.Options.Workers). Results are bit-identical
	// for any value; 0 leaves the Repair configuration untouched.
	Workers int
	// ExtraTests are appended to the generated suite (e.g. a subject's
	// pre-existing tests).
	ExtraTests []fuzz.TestCase
	// Obs receives structured events for the whole run: pipeline phase
	// brackets plus everything the fuzzer and the repair search emit
	// (see internal/obs). It is passed down to Fuzz.Obs / Repair.Obs
	// unless those are already set. Nil disables observation.
	Obs obs.Observer
	// Cache, when non-nil, memoizes the expensive toolchain verdicts —
	// fuzz campaigns, synthesizability checks, resource estimates,
	// differential tests — across candidates and across runs (see
	// internal/evalcache). It is passed down to Fuzz.Cache /
	// Repair.Cache unless those are already set. Hits skip real
	// recomputation but charge identical virtual costs in identical
	// order, so Result (bar CacheStats) and traces are byte-identical
	// whether the cache is disabled, cold, or warm. Nil disables
	// caching.
	Cache *evalcache.Cache
	// Guard is the failure-containment layer wrapped around every
	// expensive stage call (parse, final print, synthesizability checks,
	// resource estimation, kernel executions, differential tests). It is
	// passed down to Fuzz.Guard / Repair.Guard unless those are already
	// set, and its InterpSteps budget seeds the fuzzer's per-exec step
	// bound and the repair search's difftest budget when the caller left
	// them unset. Nil still contains panics (guard.Do is nil-safe) but
	// has no deadlines, injection, or quarantine.
	Guard *guard.Guard
	// RepairCheckpoint, when non-empty, names the repair search's
	// write-ahead outcome log (see repair.Options.CheckpointPath): an
	// interrupted run resumed against the same file yields a Result and
	// trace byte-identical to an uninterrupted run. It is passed down to
	// Repair.CheckpointPath unless that is already set. Empty disables
	// checkpointing.
	RepairCheckpoint string
}

// Result is the full pipeline outcome.
type Result struct {
	// Original is the parsed input program.
	Original *cast.Unit
	// Initial is the bitwidth-profiled starting version (P_broken).
	Initial *cast.Unit
	// Final is the repaired HLS-C version.
	Final *cast.Unit
	// HLS source text of the final version.
	Source string

	Campaign fuzz.Campaign
	Profiled profile.Result
	Repair   repair.Result

	// Compatible / BehaviorOK / Improved summarize §6.1's three criteria.
	Compatible bool
	BehaviorOK bool
	Improved   bool
	// DeltaLOC is the paper's edit-size metric.
	DeltaLOC int
	// OriginalLOC counts the input program.
	OriginalLOC int
	// CPUMeanMS / FPGAMeanMS are the Table 5 runtime columns.
	CPUMeanMS  float64
	FPGAMeanMS float64
	// Resources estimates fabric utilization of the final design.
	Resources sim.Resources
	// PerTarget is the final design's per-device verdict table and
	// Pareto the search's latency/resource archive (multi-target runs
	// only; both nil on the legacy single-target path).
	PerTarget []repair.TargetVerdict
	Pareto    []repair.ParetoPoint
	// CacheStats is the evaluation-cache activity attributable to this
	// run (all zero when Options.Cache was nil). It is reported out of
	// band — never in traces, and excluded from the cache-parity
	// contract: hit counts legitimately vary with Workers because
	// speculative evaluations consult the cache too.
	CacheStats evalcache.Stats
}

// Run executes the pipeline over C source text.
func Run(src string, opts Options) (Result, error) {
	return RunContext(context.Background(), src, opts)
}

// RunContext is Run with cooperative cancellation — see RunUnitContext
// for the partial-result semantics.
func RunContext(ctx context.Context, src string, opts Options) (Result, error) {
	// The parser is guarded on the source text itself (there is no unit
	// yet to quarantine; a contained parser panic surfaces as a typed
	// *guard.StageFailure error instead of killing the process).
	orig, err := guard.Do(opts.Guard, guard.Invocation{Stage: guard.StageParse, Key: src},
		func(*cast.Unit) (*cast.Unit, error) {
			return cparser.Parse(src)
		})
	if err != nil {
		return Result{}, fmt.Errorf("heterogen: parse: %w", err)
	}
	return RunUnitContext(ctx, orig, opts)
}

// RunUnit executes the pipeline over a parsed unit.
func RunUnit(orig *cast.Unit, opts Options) (Result, error) {
	return RunUnitContext(context.Background(), orig, opts)
}

// RunUnitContext is RunUnit with cooperative cancellation. The context
// is checked at phase boundaries here and at commit points inside the
// fuzzer and the repair search (between executions and candidate
// evaluations, never mid-verdict). On cancellation the returned Result
// is the best-so-far partial outcome — the corpus gathered, the most
// advanced program version reached, its repair log — alongside an
// error wrapping ctx.Err(), so errors.Is(err, context.Canceled)
// distinguishes cancellation from real failures.
func RunUnitContext(ctx context.Context, orig *cast.Unit, opts Options) (Result, error) {
	if opts.Kernel == "" {
		return Result{}, fmt.Errorf("heterogen: no kernel specified")
	}
	if orig.Func(opts.Kernel) == nil {
		return Result{}, fmt.Errorf("heterogen: kernel %q not found", opts.Kernel)
	}
	if err := hls.ResolveTargets(opts.Targets); err != nil {
		return Result{}, fmt.Errorf("heterogen: %w", err)
	}
	res := Result{Original: orig, OriginalLOC: cast.CountLines(orig)}
	cacheStart := opts.Cache.Stats()
	finish := func() { res.CacheStats = opts.Cache.Stats().Sub(cacheStart) }
	o := obs.OrNop(opts.Obs)
	tracing := obs.Enabled(opts.Obs)
	pipelineVirtual := 0.0
	phase := func(name string) func(virtualDelta float64) {
		if !tracing {
			return func(float64) {}
		}
		o.Emit(obs.Event{Type: obs.EvPhaseStart, Virtual: pipelineVirtual,
			Phase: &obs.PhaseEvent{Name: name}})
		t0 := time.Now()
		return func(virtualDelta float64) {
			pipelineVirtual += virtualDelta
			o.Emit(obs.Event{Type: obs.EvPhaseEnd, Virtual: pipelineVirtual,
				Phase: &obs.PhaseEvent{Name: name, VirtualDelta: virtualDelta,
					WallNS: time.Since(t0).Nanoseconds()}})
		}
	}

	// Stage 1: test input generation.
	userSteps := opts.Fuzz.MaxStepsPerExec != 0
	fopts := opts.Fuzz
	if fopts.MaxExecs == 0 {
		fopts = fuzz.DefaultOptions()
	}
	if opts.HostMain != "" {
		fopts.HostMain = opts.HostMain
	}
	if fopts.Obs == nil {
		fopts.Obs = opts.Obs
	}
	if fopts.Cache == nil {
		fopts.Cache = opts.Cache
	}
	if fopts.Guard == nil {
		fopts.Guard = opts.Guard
	}
	if steps := opts.Guard.InterpSteps(); steps != 0 && !userSteps {
		fopts.MaxStepsPerExec = steps
	}
	endFuzz := phase("fuzz")
	camp, err := fuzz.RunContext(ctx, orig, opts.Kernel, fopts)
	if err != nil {
		finish()
		return res, fmt.Errorf("heterogen: test generation: %w", err)
	}
	endFuzz(camp.VirtualSeconds)
	res.Campaign = camp
	tests := append([]fuzz.TestCase{}, camp.Tests...)
	tests = append(tests, opts.ExtraTests...)
	if err := ctx.Err(); err != nil {
		res.Final = orig
		res.Source = cast.Print(orig)
		finish()
		return res, fmt.Errorf("heterogen: cancelled during test generation: %w", err)
	}

	// Stage 2: initial HLS version with estimated types.
	initial := cast.CloneUnit(orig)
	endProfile := phase("profile")
	if !opts.SkipProfile {
		prof, err := profile.Generate(orig, opts.Kernel, tests)
		if err == nil {
			res.Profiled = prof
			initial = prof.Unit
		}
	}
	endProfile(0) // bitwidth profiling is free in the virtual-cost model
	res.Initial = initial
	if err := ctx.Err(); err != nil {
		res.Final = initial
		res.Source = cast.Print(initial)
		finish()
		return res, fmt.Errorf("heterogen: cancelled before repair: %w", err)
	}

	// Stages 3-5: iterative repair.
	ropts := opts.Repair
	if ropts.Budget == 0 && ropts.MaxIterations == 0 {
		ropts = repair.DefaultOptions()
	}
	if opts.Workers != 0 {
		ropts.Workers = opts.Workers
	}
	if ropts.Obs == nil {
		ropts.Obs = opts.Obs
	}
	if ropts.Cache == nil {
		ropts.Cache = opts.Cache
	}
	if ropts.Guard == nil {
		ropts.Guard = opts.Guard
	}
	if ropts.InterpSteps == 0 {
		ropts.InterpSteps = opts.Guard.InterpSteps()
	}
	if ropts.Targets == nil {
		ropts.Targets = opts.Targets
	}
	if ropts.CheckpointPath == "" {
		ropts.CheckpointPath = opts.RepairCheckpoint
	}
	endRepair := phase("repair")
	rr := repair.SearchContext(ctx, orig, initial, opts.Kernel, tests, ropts)
	endRepair(rr.Stats.VirtualSeconds)
	res.Repair = rr
	res.Final = rr.Unit
	res.Compatible = rr.Compatible
	res.BehaviorOK = rr.BehaviorOK
	res.Improved = rr.Improved
	res.PerTarget = rr.PerTarget
	res.Pareto = rr.Pareto
	res.DeltaLOC = repair.EditedLines(orig, rr.Unit)
	res.CPUMeanMS = rr.Report.CPUMeanMS()
	res.FPGAMeanMS = rr.Report.FPGAMeanMS()
	// The final print is guarded: a printer panic on the repaired design
	// is a hard failure (there is no HLS source to hand back), reported
	// as a typed error instead of a crash.
	src, perr := guard.Do(opts.Guard,
		guard.Invocation{Stage: guard.StagePrint, Key: "print|" + opts.Kernel, Unit: rr.Unit},
		func(cu *cast.Unit) (string, error) {
			return cast.Print(cu), nil
		})
	if perr != nil {
		finish()
		return res, fmt.Errorf("heterogen: print: %w", perr)
	}
	res.Source = src
	est, eerr := estimateResources(opts.Cache, opts.Guard, rr.Unit)
	if eerr != nil {
		// Estimation is reporting-only at this point: degrade to a zero
		// estimate with a warning instead of discarding the repair.
		if tracing {
			o.Emit(obs.Event{Type: obs.EvWarning, Virtual: pipelineVirtual,
				Warn: fmt.Sprintf("resource estimation failed: %v", eerr)})
		}
	}
	res.Resources = est
	finish()
	if err := ctx.Err(); err != nil {
		return res, fmt.Errorf("heterogen: cancelled during repair: %w", err)
	}
	return res, nil
}

// estimateResources is sim.Estimate through the cache and the guard.
// The key scheme is shared with the repair search's device-capacity
// gate, so the final design's estimate is often already present. The
// only possible error is a contained *guard.StageFailure.
func estimateResources(c *evalcache.Cache, g *guard.Guard, u *cast.Unit) (sim.Resources, error) {
	var key string
	if c != nil {
		key = evalcache.ResourceKey(cast.Print(u))
		var r sim.Resources
		if c.Get(evalcache.StageSim, key, &r) {
			return r, nil
		}
	}
	r, err := guard.Do(g, guard.Invocation{Stage: guard.StageEstimate, Key: key, Unit: u},
		func(cu *cast.Unit) (sim.Resources, error) {
			return sim.Estimate(cu), nil
		})
	if err != nil {
		return sim.Resources{}, err
	}
	if c != nil {
		c.Put(evalcache.StageSim, key, r)
	}
	return r, nil
}

// Check exposes the full synthesizability checker for a source text.
func Check(src, top string) (hls.Report, error) {
	return CheckWith(src, Options{Kernel: top})
}

// CheckObserved is Check with a structured hls_check event emitted to o
// (nil disables observation).
func CheckObserved(src, top string, o obs.Observer) (hls.Report, error) {
	return CheckWith(src, Options{Kernel: top, Obs: o})
}

// CheckWith runs only the synthesizability-checker stage, taking the
// same option struct as the other entry points: Kernel names the top
// function, Obs receives the hls_check event, Cache memoizes the
// verdict, Guard contains checker failures; the remaining fields are
// ignored. A cache hit emits the identical event a fresh check would.
// With Targets set, the primary target (Targets[0]) provides the config
// and the diagnostic dialect, and the verdict is cached under a
// target-aware key; unknown target names fail with an explicit error.
// Use CheckSet for the full per-target report vector.
func CheckWith(src string, opts Options) (hls.Report, error) {
	u, err := cparser.Parse(src)
	if err != nil {
		return hls.Report{}, err
	}
	if len(opts.Targets) == 0 {
		cfg := hls.DefaultConfig(opts.Kernel)
		return checkOne(u, cfg, nil, evalcache.CheckSalt(cfg.Top, cfg.Device, cfg.ClockMHz), opts)
	}
	backend, profile, err := hls.ResolveTarget(opts.Targets[0])
	if err != nil {
		return hls.Report{}, fmt.Errorf("heterogen: %w", err)
	}
	cfg := hls.ConfigFor(opts.Kernel, profile)
	salt := evalcache.TargetCheckSalt(backend.Name(), cfg.Top, cfg.Device, cfg.ClockMHz)
	return checkOne(u, cfg, backend, salt, opts)
}

// checkOne is the cached, guarded, observed checker stage for one
// resolved config; backend (nil = reference dialect) translates the
// diagnostics before they are cached and reported.
func checkOne(u *cast.Unit, cfg hls.Config, backend hls.Backend, salt string, opts Options) (hls.Report, error) {
	var key string
	var rep hls.Report
	cached := false
	if opts.Cache != nil {
		key = evalcache.CheckKey(salt, cast.Print(u))
		cached = opts.Cache.Get(evalcache.StageCheck, key, &rep)
	}
	if !cached {
		var err error
		rep, err = guard.Do(opts.Guard, guard.Invocation{Stage: guard.StageCheck, Unit: u},
			func(cu *cast.Unit) (hls.Report, error) {
				r := check.Run(cu, cfg)
				if backend != nil {
					for i := range r.Diags {
						r.Diags[i] = backend.Translate(r.Diags[i])
					}
				}
				return r, nil
			})
		if err != nil {
			return hls.Report{}, err
		}
		if opts.Cache != nil {
			opts.Cache.Put(evalcache.StageCheck, key, rep)
		}
	}
	check.Observe(opts.Obs, cfg, rep)
	return rep, nil
}

// TargetReport pairs one target with its checker verdict.
type TargetReport struct {
	Target string
	Report hls.Report
}

// CheckSet runs the synthesizability checker once per target in
// opts.Targets (the full set when empty resolves to the default
// target), each under its own config, dialect, and cache key.
func CheckSet(src string, opts Options) ([]TargetReport, error) {
	targets := opts.Targets
	if len(targets) == 0 {
		targets = []hls.Target{hls.DefaultTarget()}
	}
	u, err := cparser.Parse(src)
	if err != nil {
		return nil, err
	}
	out := make([]TargetReport, len(targets))
	for i, t := range targets {
		backend, profile, err := hls.ResolveTarget(t)
		if err != nil {
			return nil, fmt.Errorf("heterogen: %w", err)
		}
		cfg := hls.ConfigFor(opts.Kernel, profile)
		salt := evalcache.TargetCheckSalt(backend.Name(), cfg.Top, cfg.Device, cfg.ClockMHz)
		rep, err := checkOne(u, cfg, backend, salt, opts)
		if err != nil {
			return nil, err
		}
		out[i] = TargetReport{
			Target: hls.Target{Backend: backend.Name(), Device: profile.Name}.String(),
			Report: rep,
		}
	}
	return out, nil
}

// SimReport is the outcome of the standalone simulation stage: the
// design's resource estimate and whether it fits the evaluation
// device, alongside the checker verdict for context (estimates are
// meaningful even for non-synthesizable designs; latency is not
// reported here because simulating it requires a test suite — use the
// differential-test stage or the full pipeline for that).
type SimReport struct {
	// Report is the synthesizability verdict of the same design.
	Report hls.Report
	// Resources estimates fabric utilization.
	Resources sim.Resources
	// Device is the capacity profile the estimate was gated against:
	// the primary target's part (the paper's evaluation part when no
	// targets were set).
	Device sim.Device
	// Fits reports the estimate within device capacity; Over lists the
	// over-utilized resources otherwise. Both mirror PerTarget[0].
	Fits bool
	Over []string
	// PerTarget is the capacity verdict for every requested target.
	PerTarget []TargetFit
}

// TargetFit is one target's capacity verdict in a SimReport.
type TargetFit struct {
	// Target is the canonical "backend:device" name.
	Target string
	// Device is the profile's capacity table.
	Device sim.Device
	// Fits / Over is the gate outcome; Utilization renders the estimate
	// against this device.
	Fits        bool
	Over        []string
	Utilization string
}

// Simulate runs only the FPGA-simulator stage: estimate the design's
// fabric resources and gate them against every requested target's
// device profile (the default evaluation part when opts.Targets is
// empty). The capacity table comes from the named profile — an unknown
// backend or device name is an explicit error, never a silent fall-back
// to the default part. Kernel, Targets, Obs, and Cache are honoured
// from opts; the remaining fields are ignored.
func Simulate(src string, opts Options) (SimReport, error) {
	targets := opts.Targets
	if len(targets) == 0 {
		targets = []hls.Target{hls.DefaultTarget()}
	}
	u, err := cparser.Parse(src)
	if err != nil {
		return SimReport{}, err
	}
	rep, err := CheckWith(src, opts)
	if err != nil {
		return SimReport{}, err
	}
	out := SimReport{Report: rep}
	out.Resources, err = estimateResources(opts.Cache, opts.Guard, u)
	if err != nil {
		return SimReport{}, err
	}
	for _, t := range targets {
		backend, profile, rerr := hls.ResolveTarget(t)
		if rerr != nil {
			return SimReport{}, fmt.Errorf("heterogen: %w", rerr)
		}
		dev := sim.DeviceFor(profile)
		fits, over := sim.CheckCapacity(out.Resources, dev)
		out.PerTarget = append(out.PerTarget, TargetFit{
			Target:      hls.Target{Backend: backend.Name(), Device: profile.Name}.String(),
			Device:      dev,
			Fits:        fits,
			Over:        over,
			Utilization: sim.Utilization(out.Resources, dev),
		})
	}
	out.Device = out.PerTarget[0].Device
	out.Fits = out.PerTarget[0].Fits
	out.Over = out.PerTarget[0].Over
	return out, nil
}

// RepairStage runs only the repair stage: bitwidth-profile the parsed
// program (unless SkipProfile) and search for a compatible HLS version
// against the original as behaviour oracle, with opts.ExtraTests as
// the test suite — the pipeline minus test generation, for callers
// that bring their own tests (an empty suite still repairs toward
// synthesizability; there is just no behaviour signal). Kernel,
// Repair, Workers, Obs, and Cache are honoured; Fuzz and HostMain are
// ignored.
func RepairStage(src string, opts Options) (repair.Result, error) {
	return RepairStageContext(context.Background(), src, opts)
}

// RepairStageContext is RepairStage with cooperative cancellation. The
// context is checked between candidate evaluations, never mid-verdict;
// a cancelled search returns the best version reached so far (the
// repair.Result is always valid) alongside an error wrapping ctx.Err().
func RepairStageContext(ctx context.Context, src string, opts Options) (repair.Result, error) {
	orig, err := guard.Do(opts.Guard, guard.Invocation{Stage: guard.StageParse, Key: src},
		func(*cast.Unit) (*cast.Unit, error) {
			return cparser.Parse(src)
		})
	if err != nil {
		return repair.Result{}, fmt.Errorf("heterogen: parse: %w", err)
	}
	if opts.Kernel == "" {
		return repair.Result{}, fmt.Errorf("heterogen: no kernel specified")
	}
	if orig.Func(opts.Kernel) == nil {
		return repair.Result{}, fmt.Errorf("heterogen: kernel %q not found", opts.Kernel)
	}
	if err := hls.ResolveTargets(opts.Targets); err != nil {
		return repair.Result{}, fmt.Errorf("heterogen: %w", err)
	}
	tests := opts.ExtraTests
	initial := cast.CloneUnit(orig)
	if !opts.SkipProfile {
		if prof, err := profile.Generate(orig, opts.Kernel, tests); err == nil {
			initial = prof.Unit
		}
	}
	ropts := opts.Repair
	if ropts.Budget == 0 && ropts.MaxIterations == 0 {
		ropts = repair.DefaultOptions()
	}
	if opts.Workers != 0 {
		ropts.Workers = opts.Workers
	}
	if ropts.Obs == nil {
		ropts.Obs = opts.Obs
	}
	if ropts.Cache == nil {
		ropts.Cache = opts.Cache
	}
	if ropts.Guard == nil {
		ropts.Guard = opts.Guard
	}
	if ropts.InterpSteps == 0 {
		ropts.InterpSteps = opts.Guard.InterpSteps()
	}
	if ropts.Targets == nil {
		ropts.Targets = opts.Targets
	}
	if ropts.CheckpointPath == "" {
		ropts.CheckpointPath = opts.RepairCheckpoint
	}
	rr := repair.SearchContext(ctx, orig, initial, opts.Kernel, tests, ropts)
	if err := ctx.Err(); err != nil {
		return rr, fmt.Errorf("heterogen: cancelled during repair: %w", err)
	}
	return rr, nil
}

// Validate differential-tests an already-produced HLS version against the
// original over a test suite.
func Validate(original, candidate *cast.Unit, kernel string, tests []fuzz.TestCase) difftest.Report {
	return difftest.Run(original, candidate, kernel, hls.DefaultConfig(kernel), tests)
}

// Summary renders the §6.1-style one-line verdict.
func (r Result) Summary() string {
	comp := "✗"
	if r.Compatible && r.BehaviorOK {
		comp = "✓"
	}
	perf := "✗"
	if r.Improved {
		perf = "✓"
	}
	s := fmt.Sprintf("compat=%s perf=%s tests=%d cov=%.0f%% ΔLOC=%d cpu=%.3fms fpga=%.3fms",
		comp, perf, len(r.Campaign.Tests), 100*r.Campaign.Coverage,
		r.DeltaLOC, r.CPUMeanMS, r.FPGAMeanMS)
	// Cache activity is appended only when a cache was actually
	// consulted, so summaries of uncached runs are unchanged.
	if h, m := r.CacheStats.Hits(), r.CacheStats.Misses(); h+m > 0 {
		s += fmt.Sprintf(" cache=%dh/%dm", h, m)
	}
	return s
}
