// Package core orchestrates the five-stage HeteroGen pipeline of Figure 1:
//
//  1. test input generation (coverage-guided fuzzing of the kernel),
//  2. initial HLS version generation (bitwidth profiling -> P_broken),
//  3. repair localization (HLS diagnostics -> error classes),
//  4. repair-space exploration (dependence-guided edit chains), and
//  5. fitness evaluation (differential testing + simulated latency),
//
// iterating 3-5 under a virtual time budget.
package core

import (
	"fmt"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/difftest"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
	"github.com/hetero/heterogen/internal/hls/sim"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/profile"
	"github.com/hetero/heterogen/internal/repair"
)

// Options configures a pipeline run.
type Options struct {
	// Kernel names the function to transpile (the design's top function).
	Kernel string
	// HostMain optionally names a host entry point used to capture
	// kernel-entry seed inputs.
	HostMain string
	// Fuzz configures test generation; zero means fuzz.DefaultOptions.
	Fuzz fuzz.Options
	// Repair configures the search; zero means repair.DefaultOptions.
	Repair repair.Options
	// SkipProfile disables bitwidth finitization (ablation).
	SkipProfile bool
	// Workers bounds concurrent candidate evaluation in the repair
	// search (see repair.Options.Workers). Results are bit-identical
	// for any value; 0 leaves the Repair configuration untouched.
	Workers int
	// ExtraTests are appended to the generated suite (e.g. a subject's
	// pre-existing tests).
	ExtraTests []fuzz.TestCase
	// Obs receives structured events for the whole run: pipeline phase
	// brackets plus everything the fuzzer and the repair search emit
	// (see internal/obs). It is passed down to Fuzz.Obs / Repair.Obs
	// unless those are already set. Nil disables observation.
	Obs obs.Observer
}

// Result is the full pipeline outcome.
type Result struct {
	// Original is the parsed input program.
	Original *cast.Unit
	// Initial is the bitwidth-profiled starting version (P_broken).
	Initial *cast.Unit
	// Final is the repaired HLS-C version.
	Final *cast.Unit
	// HLS source text of the final version.
	Source string

	Campaign fuzz.Campaign
	Profiled profile.Result
	Repair   repair.Result

	// Compatible / BehaviorOK / Improved summarize §6.1's three criteria.
	Compatible bool
	BehaviorOK bool
	Improved   bool
	// DeltaLOC is the paper's edit-size metric.
	DeltaLOC int
	// OriginalLOC counts the input program.
	OriginalLOC int
	// CPUMeanMS / FPGAMeanMS are the Table 5 runtime columns.
	CPUMeanMS  float64
	FPGAMeanMS float64
	// Resources estimates fabric utilization of the final design.
	Resources sim.Resources
}

// Run executes the pipeline over C source text.
func Run(src string, opts Options) (Result, error) {
	orig, err := cparser.Parse(src)
	if err != nil {
		return Result{}, fmt.Errorf("heterogen: parse: %w", err)
	}
	return RunUnit(orig, opts)
}

// RunUnit executes the pipeline over a parsed unit.
func RunUnit(orig *cast.Unit, opts Options) (Result, error) {
	if opts.Kernel == "" {
		return Result{}, fmt.Errorf("heterogen: no kernel specified")
	}
	if orig.Func(opts.Kernel) == nil {
		return Result{}, fmt.Errorf("heterogen: kernel %q not found", opts.Kernel)
	}
	res := Result{Original: orig, OriginalLOC: cast.CountLines(orig)}
	o := obs.OrNop(opts.Obs)
	tracing := obs.Enabled(opts.Obs)
	pipelineVirtual := 0.0
	phase := func(name string) func(virtualDelta float64) {
		if !tracing {
			return func(float64) {}
		}
		o.Emit(obs.Event{Type: obs.EvPhaseStart, Virtual: pipelineVirtual,
			Phase: &obs.PhaseEvent{Name: name}})
		t0 := time.Now()
		return func(virtualDelta float64) {
			pipelineVirtual += virtualDelta
			o.Emit(obs.Event{Type: obs.EvPhaseEnd, Virtual: pipelineVirtual,
				Phase: &obs.PhaseEvent{Name: name, VirtualDelta: virtualDelta,
					WallNS: time.Since(t0).Nanoseconds()}})
		}
	}

	// Stage 1: test input generation.
	fopts := opts.Fuzz
	if fopts.MaxExecs == 0 {
		fopts = fuzz.DefaultOptions()
	}
	if opts.HostMain != "" {
		fopts.HostMain = opts.HostMain
	}
	if fopts.Obs == nil {
		fopts.Obs = opts.Obs
	}
	endFuzz := phase("fuzz")
	camp, err := fuzz.Run(orig, opts.Kernel, fopts)
	if err != nil {
		return res, fmt.Errorf("heterogen: test generation: %w", err)
	}
	endFuzz(camp.VirtualSeconds)
	res.Campaign = camp
	tests := append([]fuzz.TestCase{}, camp.Tests...)
	tests = append(tests, opts.ExtraTests...)

	// Stage 2: initial HLS version with estimated types.
	initial := cast.CloneUnit(orig)
	endProfile := phase("profile")
	if !opts.SkipProfile {
		prof, err := profile.Generate(orig, opts.Kernel, tests)
		if err == nil {
			res.Profiled = prof
			initial = prof.Unit
		}
	}
	endProfile(0) // bitwidth profiling is free in the virtual-cost model
	res.Initial = initial

	// Stages 3-5: iterative repair.
	ropts := opts.Repair
	if ropts.Budget == 0 && ropts.MaxIterations == 0 {
		ropts = repair.DefaultOptions()
	}
	if opts.Workers != 0 {
		ropts.Workers = opts.Workers
	}
	if ropts.Obs == nil {
		ropts.Obs = opts.Obs
	}
	endRepair := phase("repair")
	rr := repair.Search(orig, initial, opts.Kernel, tests, ropts)
	endRepair(rr.Stats.VirtualSeconds)
	res.Repair = rr
	res.Final = rr.Unit
	res.Source = cast.Print(rr.Unit)
	res.Compatible = rr.Compatible
	res.BehaviorOK = rr.BehaviorOK
	res.Improved = rr.Improved
	res.DeltaLOC = repair.EditedLines(orig, rr.Unit)
	res.CPUMeanMS = rr.Report.CPUMeanMS()
	res.FPGAMeanMS = rr.Report.FPGAMeanMS()
	res.Resources = sim.Estimate(rr.Unit)
	return res, nil
}

// Check exposes the full synthesizability checker for a source text.
func Check(src, top string) (hls.Report, error) {
	return CheckObserved(src, top, nil)
}

// CheckObserved is Check with a structured hls_check event emitted to o
// (nil disables observation).
func CheckObserved(src, top string, o obs.Observer) (hls.Report, error) {
	u, err := cparser.Parse(src)
	if err != nil {
		return hls.Report{}, err
	}
	return check.RunObserved(u, hls.DefaultConfig(top), o), nil
}

// Validate differential-tests an already-produced HLS version against the
// original over a test suite.
func Validate(original, candidate *cast.Unit, kernel string, tests []fuzz.TestCase) difftest.Report {
	return difftest.Run(original, candidate, kernel, hls.DefaultConfig(kernel), tests)
}

// Summary renders the §6.1-style one-line verdict.
func (r Result) Summary() string {
	comp := "✗"
	if r.Compatible && r.BehaviorOK {
		comp = "✓"
	}
	perf := "✗"
	if r.Improved {
		perf = "✓"
	}
	return fmt.Sprintf("compat=%s perf=%s tests=%d cov=%.0f%% ΔLOC=%d cpu=%.3fms fpga=%.3fms",
		comp, perf, len(r.Campaign.Tests), 100*r.Campaign.Coverage,
		r.DeltaLOC, r.CPUMeanMS, r.FPGAMeanMS)
}
