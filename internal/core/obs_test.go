package core

import (
	"bytes"
	"testing"

	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/subjects"
)

// tracedRun executes the full pipeline with a JSONL trace attached and
// returns the result plus the raw trace bytes.
func tracedRun(t *testing.T, id string, workers int) (Result, []byte) {
	t.Helper()
	s, err := subjects.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	opts := Options{Kernel: s.Kernel, Workers: workers, Obs: tw}
	opts.Fuzz = fuzz.DefaultOptions()
	opts.Fuzz.MaxExecs = 150
	opts.Fuzz.Plateau = 60
	opts.Fuzz.Workers = workers
	res, err := RunUnit(s.MustParse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// TestPipelineTraceRoundTrip is the acceptance check for the tracing
// layer: the report hgtrace builds from a pipeline trace must reproduce
// the run's attempts, accepted-edit chain, and virtual clock exactly as
// Result.Stats reported them, and the trace must be byte-identical for
// Workers=1 and Workers=4.
func TestPipelineTraceRoundTrip(t *testing.T) {
	ids := []string{"P2", "P6"}
	if !testing.Short() {
		ids = []string{"P1", "P2", "P3", "P6", "P9"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			res, trace := tracedRun(t, id, 1)
			_, trace4 := tracedRun(t, id, 4)
			if !bytes.Equal(trace, trace4) {
				t.Errorf("traces differ between Workers=1 and Workers=4 (%d vs %d bytes)",
					len(trace), len(trace4))
			}

			events, err := obs.ParseTrace(bytes.NewReader(trace))
			if err != nil {
				t.Fatal(err)
			}
			rep := obs.BuildReport(events)
			if problems := rep.Check(); len(problems) > 0 {
				t.Fatalf("trace fails its own consistency check:\n%v", problems)
			}
			if len(rep.Subjects) != 1 {
				t.Fatalf("expected one subject in the report, got %d", len(rep.Subjects))
			}
			s := rep.Subjects[0]

			stats := res.Repair.Stats
			if s.RepairDone == nil {
				t.Fatal("trace has no repair_done summary")
			}
			if s.CandidateEvents != stats.CandidatesTried {
				t.Errorf("candidate events %d, Stats.CandidatesTried %d",
					s.CandidateEvents, stats.CandidatesTried)
			}
			if s.AcceptedEvents != stats.AcceptedCandidates {
				t.Errorf("accepted events %d, Stats.AcceptedCandidates %d",
					s.AcceptedEvents, stats.AcceptedCandidates)
			}
			if got, want := s.AcceptedEdits, stats.EditLog; len(got) != len(want) {
				t.Errorf("accepted-edit chain %v, Stats.EditLog %v", got, want)
			} else {
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("edit %d: trace %q, stats %q", i, got[i], want[i])
					}
				}
			}
			if s.LastVirtual != stats.VirtualSeconds {
				t.Errorf("trace virtual clock %.6f, Stats.VirtualSeconds %.6f",
					s.LastVirtual, stats.VirtualSeconds)
			}
			if s.RepairDone.HLSInvocations != stats.HLSInvocations {
				t.Errorf("trace HLS invocations %d, Stats %d",
					s.RepairDone.HLSInvocations, stats.HLSInvocations)
			}

			// Phase events must bracket the run: fuzz, profile, repair.
			var phases []string
			for _, p := range s.Phases {
				phases = append(phases, p.Name)
			}
			want := []string{"fuzz", "profile", "repair"}
			if len(phases) != len(want) {
				t.Fatalf("phases %v, want %v", phases, want)
			}
			for i := range want {
				if phases[i] != want[i] {
					t.Fatalf("phases %v, want %v", phases, want)
				}
			}
			if s.Phases[0].VirtualSeconds != res.Campaign.VirtualSeconds {
				t.Errorf("fuzz phase virtual %.3f, campaign %.3f",
					s.Phases[0].VirtualSeconds, res.Campaign.VirtualSeconds)
			}
			if s.Phases[2].VirtualSeconds != stats.VirtualSeconds {
				t.Errorf("repair phase virtual %.3f, stats %.3f",
					s.Phases[2].VirtualSeconds, stats.VirtualSeconds)
			}
		})
	}
}

// TestPipelineTraceDisabledByDefault: a run without an observer must not
// pay for one — and a nop observer must behave exactly like nil.
func TestPipelineTraceDisabledByDefault(t *testing.T) {
	s, err := subjects.ByID("P2")
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Kernel: s.Kernel}
	opts.Fuzz = fuzz.DefaultOptions()
	opts.Fuzz.MaxExecs = 120
	opts.Fuzz.Plateau = 50
	plain, err := RunUnit(s.MustParse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Obs = obs.Nop()
	nop, err := RunUnit(s.MustParse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Summary() != nop.Summary() || plain.Source != nop.Source {
		t.Error("a nop observer changed the pipeline result")
	}
}
