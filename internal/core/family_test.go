package core

import (
	"fmt"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/fuzz"
)

// TestPipelineTreeFamily checks repair generality: a family of dynamic
// tree/list kernels differing in value formulas, guard shapes, and
// traversal order must all come out HLS-compatible and behaviour-
// preserving — not just the single shape the unit tests pin.
func TestPipelineTreeFamily(t *testing.T) {
	if testing.Short() {
		t.Skip("family integration test")
	}
	variants := []struct {
		name  string
		value string // expression over s and i
		visit string // statement over curr->val
		order []string
	}{
		{"sum-lr", "(s * (i + 7)) % 113", "total = total + Xval;", []string{"left", "right"}},
		{"xor-rl", "(s ^ (i * 5)) % 97", "total = total ^ Xval;", []string{"right", "left"}},
		{"count", "(s + i * 3) % 51", "total = total + 1;", []string{"left", "right"}},
		{"weighted", "(s * 2 + i) % 77", "total = total + Xval * 3;", []string{"right", "left"}},
	}
	for _, v := range variants {
		v := v
		t.Run(v.name, func(t *testing.T) {
			visit := strings.ReplaceAll(v.visit, "Xval", "curr->val")
			src := fmt.Sprintf(`
struct Node {
    int val;
    struct Node *left;
    struct Node *right;
};
int total;
void traverse(struct Node *curr) {
    if (curr == 0) { return; }
    %s
    traverse(curr->%s);
    traverse(curr->%s);
}
int kernel(int seed, int n) {
    if (n < 0) { n = 0; }
    if (n > 40) { n = 40; }
    int s = seed %% 997;
    if (s < 0) { s = -s; }
    struct Node *root = 0;
    for (int i = 0; i < n; i++) {
        int v = %s;
        if (v < 0) { v = -v; }
        struct Node *nn = (struct Node *)malloc(sizeof(struct Node));
        nn->val = v;
        nn->left = 0;
        nn->right = 0;
        if (root == 0) { root = nn; }
        else {
            struct Node *p = root;
            while (1) {
                if (v < p->val) {
                    if (p->left == 0) { p->left = nn; break; }
                    p = p->left;
                } else {
                    if (p->right == 0) { p->right = nn; break; }
                    p = p->right;
                }
            }
        }
    }
    total = 0;
    traverse(root);
    return total;
}`, visit, v.order[0], v.order[1], v.value)
			res, err := Run(src, Options{Kernel: "kernel",
				Fuzz: fuzz.Options{Seed: 3, MaxExecs: 150, Plateau: 60, TypedMutation: true}})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Compatible || !res.BehaviorOK {
				t.Errorf("variant %s not repaired: %v\nlog: %v",
					v.name, res.Repair.Remaining, res.Repair.Stats.EditLog)
			}
		})
	}
}
