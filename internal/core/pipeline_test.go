package core

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
)

const longDoubleKernel = `
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`

func quickFuzz() fuzz.Options {
	return fuzz.Options{Seed: 1, MaxExecs: 150, Plateau: 60, TypedMutation: true}
}

func TestPipelineEndToEnd(t *testing.T) {
	res, err := Run(longDoubleKernel, Options{Kernel: "top", Fuzz: quickFuzz()})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compatible || !res.BehaviorOK {
		t.Fatalf("pipeline failed: %+v", res.Repair.Remaining)
	}
	if !strings.Contains(res.Source, "fpga_float<8,71>") {
		t.Errorf("type not transformed:\n%s", res.Source)
	}
	// The produced source is itself clean under the checker.
	rep := check.Run(res.Final, hls.DefaultConfig("top"))
	if !rep.OK {
		t.Errorf("final source still has diagnostics: %v", rep.Diags)
	}
	if res.OriginalLOC == 0 || res.DeltaLOC == 0 {
		t.Errorf("LOC accounting: orig=%d delta=%d", res.OriginalLOC, res.DeltaLOC)
	}
	if res.Campaign.Execs == 0 {
		t.Error("no tests generated")
	}
	if res.Resources.FF == 0 {
		t.Error("no resource estimate")
	}
	if !strings.Contains(res.Summary(), "compat=✓") {
		t.Errorf("summary %q", res.Summary())
	}
}

func TestPipelineErrors(t *testing.T) {
	if _, err := Run("int f(", Options{Kernel: "f"}); err == nil {
		t.Error("parse error must surface")
	}
	if _, err := Run("int f() { return 1; }", Options{}); err == nil {
		t.Error("missing kernel name must surface")
	}
	if _, err := Run("int f() { return 1; }", Options{Kernel: "nope"}); err == nil {
		t.Error("unknown kernel must surface")
	}
}

func TestPipelineIncompleteRepairStillReturns(t *testing.T) {
	// goto is beyond every template's reach; the pipeline must return the
	// best-effort version rather than an error.
	src := `
int kernel(int x) {
    long double d = x;
    if (x > 0) { goto out; }
    d = d + 1;
out:
    return (int)d;
}`
	// goto faults the interpreter during fuzzing, so reduce budgets.
	res, err := Run(src, Options{Kernel: "kernel",
		Fuzz: fuzz.Options{Seed: 1, MaxExecs: 40, Plateau: 20, TypedMutation: true}})
	if err != nil {
		t.Fatalf("pipeline must not error on incomplete repair: %v", err)
	}
	if res.Source == "" {
		t.Error("best-effort source missing")
	}
}

func TestPipelineSkipProfile(t *testing.T) {
	src := `
int kernel(int n) {
    int small = n % 7;
    if (small < 0) { small = -small; }
    return small;
}`
	with, err := Run(src, Options{Kernel: "kernel", Fuzz: quickFuzz()})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(src, Options{Kernel: "kernel", Fuzz: quickFuzz(), SkipProfile: true})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without.Source, "fpga_uint") {
		t.Error("SkipProfile must not narrow types")
	}
	if !strings.Contains(with.Source, "fpga_") {
		t.Errorf("profiling should narrow 'small':\n%s", with.Source)
	}
}

func TestPipelineExtraTests(t *testing.T) {
	src := `int kernel(int x) { return x * 2; }`
	extra := []fuzz.TestCase{{Args: []fuzz.Arg{{Scalar: true, Ints: []int64{123}, Width: 32}}}}
	res, err := Run(src, Options{Kernel: "kernel", Fuzz: quickFuzz(), ExtraTests: extra})
	if err != nil {
		t.Fatal(err)
	}
	if !res.BehaviorOK {
		t.Error("extra tests should pass on an identity-repair kernel")
	}
}

func TestCheckHelper(t *testing.T) {
	rep, err := Check(longDoubleKernel, "top")
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK || !rep.HasClass(hls.ClassUnsupportedType) {
		t.Errorf("check helper: %v", rep.Diags)
	}
}
