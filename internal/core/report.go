package core

import (
	"fmt"
	"strings"

	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
)

// Markdown renders a full transpilation report: the diagnostics the
// original failed with, the generated-test campaign, the accepted edit
// chain, the performance comparison, and the final HLS-C source.
func (r Result) Markdown(kernel string) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "# HeteroGen transpilation report: `%s`\n\n", kernel)

	status := "**incomplete** (best-effort version emitted)"
	if r.Compatible && r.BehaviorOK {
		status = "**success** — HLS-compatible, behaviour preserved"
		if r.Improved {
			status += ", faster than the CPU original"
		}
	}
	fmt.Fprintf(&sb, "Outcome: %s\n\n", status)

	sb.WriteString("## Diagnostics before repair\n\n")
	pre := check.Run(r.Original, hls.DefaultConfig(kernel))
	if pre.OK {
		sb.WriteString("(none — the input was already synthesizable)\n")
	}
	// Render classes in their fixed declaration order: ByClass returns
	// a map, and ranging it directly leaks Go's randomized iteration
	// order into the report (same inputs, shuffled sections).
	by := pre.ByClass()
	for _, class := range append(hls.AllClasses(), hls.ClassNone) {
		diags := by[class]
		if len(diags) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "- **%s** (%d)\n", class, len(diags))
		for _, d := range diags {
			fmt.Fprintf(&sb, "  - `%s`\n", d.Error())
		}
	}

	sb.WriteString("\n## Test generation\n\n")
	fmt.Fprintf(&sb, "- executions: %d (%.0f virtual minutes)\n",
		r.Campaign.Execs, r.Campaign.VirtualMinutes())
	fmt.Fprintf(&sb, "- retained corpus: %d tests\n", len(r.Campaign.Tests))
	fmt.Fprintf(&sb, "- branch coverage: %.0f%% (%d/%d outcomes)\n",
		100*r.Campaign.Coverage, r.Campaign.CoveredOutcomes, r.Campaign.TotalOutcomes)
	if r.Campaign.SeededFromHost {
		sb.WriteString("- seeded from host-program kernel-entry capture\n")
	}

	if len(r.Profiled.Retyped) > 0 {
		sb.WriteString("\n## Bitwidth finitization\n\n")
		for _, line := range r.Profiled.Retyped {
			fmt.Fprintf(&sb, "- %s\n", line)
		}
	}

	sb.WriteString("\n## Repair\n\n")
	fmt.Fprintf(&sb, "- %d accepted edits over %d candidates (%d style-rejected, %d full compilations)\n",
		len(r.Repair.Stats.EditLog), r.Repair.Stats.CandidatesTried,
		r.Repair.Stats.StyleRejections, r.Repair.Stats.HLSInvocations)
	fmt.Fprintf(&sb, "- virtual repair time: %.0f minutes\n", r.Repair.Stats.VirtualMinutes())
	for _, e := range r.Repair.Stats.EditLog {
		fmt.Fprintf(&sb, "1. `%s`\n", e)
	}
	for _, d := range r.Repair.Remaining {
		fmt.Fprintf(&sb, "- remaining: `%s`\n", d.Error())
	}

	if len(r.PerTarget) > 0 {
		sb.WriteString("\n## Per-device verdicts\n\n")
		sb.WriteString("| target | compatible | behavior | fits | latency | utilization |\n")
		sb.WriteString("|---|---|---|---|---|---|\n")
		for _, v := range r.PerTarget {
			fit := "✓"
			if !v.Fits {
				fit = "✗ (" + strings.Join(v.Over, ", ") + ")"
			}
			comp, beh := "✗", "✗"
			if v.Compatible {
				comp = "✓"
			}
			if v.BehaviorOK {
				beh = "✓"
			}
			lat := "—"
			if v.LatencyMS > 0 {
				lat = fmt.Sprintf("%.4f ms", v.LatencyMS)
			}
			fmt.Fprintf(&sb, "| `%s` | %s | %s | %s | %s | %s |\n",
				v.Target, comp, beh, fit, lat, v.Utilization)
		}
		sb.WriteString("\n### Pareto set (latency/resource trade-offs)\n\n")
		if len(r.Pareto) == 0 {
			sb.WriteString("(empty — no program version was compatible on every target)\n")
		}
		for i, p := range r.Pareto {
			fmt.Fprintf(&sb, "%d. %s", i+1, p.Resources)
			for _, v := range p.PerTarget {
				fmt.Fprintf(&sb, " · `%s` %.4f ms", v.Target, v.LatencyMS)
			}
			sb.WriteString("\n")
		}
	}

	sb.WriteString("\n## Performance (simulated)\n\n")
	fmt.Fprintf(&sb, "| | latency |\n|---|---|\n")
	fmt.Fprintf(&sb, "| original on CPU | %.4f ms |\n", r.CPUMeanMS)
	fmt.Fprintf(&sb, "| HLS version on FPGA | %.4f ms |\n", r.FPGAMeanMS)
	if r.Improved && r.FPGAMeanMS > 0 {
		fmt.Fprintf(&sb, "| speedup | %.2fx |\n", r.CPUMeanMS/r.FPGAMeanMS)
	}
	fmt.Fprintf(&sb, "\nResource estimate: %s\n", r.Resources)
	fmt.Fprintf(&sb, "\nΔLOC: %d over an original of %d lines\n", r.DeltaLOC, r.OriginalLOC)

	sb.WriteString("\n## Final HLS-C source\n\n```c\n")
	sb.WriteString(r.Source)
	sb.WriteString("```\n")
	return sb.String()
}
