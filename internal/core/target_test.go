package core

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/hls"
)

// bramHeavy sits between the zc706 and xcvu9p BRAM envelopes:
// 1,200,000 ints is ~2084 18Kb blocks, over the Zynq-7045's 1090 and
// comfortably inside the VU9P's 4320.
const bramHeavy = `
int huge[1200000];
int kernel(int x) {
    huge[0] = x;
    return huge[0];
}`

// TestSimulateHonorsDeviceProfile is the regression test for the
// silently-ignored device bug: the resource-fit gate must pull its
// capacity table from the named profile, so the same design fits the
// default part and overflows the small embedded one.
func TestSimulateHonorsDeviceProfile(t *testing.T) {
	targets, err := hls.ParseTargets([]string{"vivado_hls:xcvu9p", "vivado_hls:zc706"})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Simulate(bramHeavy, Options{Kernel: "kernel", Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.PerTarget) != 2 {
		t.Fatalf("PerTarget has %d entries, want 2", len(rep.PerTarget))
	}
	big, small := rep.PerTarget[0], rep.PerTarget[1]
	if !big.Fits {
		t.Errorf("xcvu9p: design should fit (%s): over %v", big.Utilization, big.Over)
	}
	if small.Fits {
		t.Errorf("zc706: design should over-utilize the part (%s)", small.Utilization)
	}
	found := false
	for _, axis := range small.Over {
		if axis == "BRAM" {
			found = true
		}
	}
	if !found {
		t.Errorf("zc706 overflow axes = %v, want BRAM", small.Over)
	}
	// The scalar fields mirror the primary target, so legacy readers of
	// SimReport see the verdict for the device they asked for.
	if rep.Fits != big.Fits || rep.Device.Name != big.Device.Name {
		t.Errorf("scalar mirror diverged: Fits=%v Device=%s vs primary %v/%s",
			rep.Fits, rep.Device.Name, big.Fits, big.Device.Name)
	}
}

// TestSimulateUnknownDeviceErrors: an unknown backend or device name is
// an explicit configuration error, never a silent fall-back to the
// default capacity table.
func TestSimulateUnknownDeviceErrors(t *testing.T) {
	cases := []hls.Target{
		{Backend: "vivado_hls", Device: "nope"},
		{Backend: "quartus", Device: "xcvu9p"},
	}
	for _, target := range cases {
		_, err := Simulate(bramHeavy, Options{Kernel: "kernel", Targets: []hls.Target{target}})
		if err == nil {
			t.Errorf("Simulate(%s) succeeded, want unknown-target error", target)
			continue
		}
		if !strings.Contains(err.Error(), "unknown") && !strings.Contains(err.Error(), "no device profile") {
			t.Errorf("Simulate(%s) error %q does not name the unknown component", target, err)
		}
	}
}
