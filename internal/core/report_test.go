package core

import (
	"strings"
	"testing"
)

func TestMarkdownReport(t *testing.T) {
	res, err := Run(longDoubleKernel, Options{Kernel: "top", Fuzz: quickFuzz()})
	if err != nil {
		t.Fatal(err)
	}
	md := res.Markdown("top")
	for _, want := range []string{
		"# HeteroGen transpilation report: `top`",
		"**success**",
		"Diagnostics before repair",
		"long double",
		"Bitwidth finitization",
		"fpga_float<8,71>",
		"## Performance (simulated)",
		"## Final HLS-C source",
		"```c",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestMarkdownReportIncomplete(t *testing.T) {
	// goto cannot be repaired by any template: the report must say so.
	src := `
int kernel(int x) {
    if (x > 0) { goto out; }
    x = x + 1;
out:
    return x;
}`
	res, err := Run(src, Options{Kernel: "kernel", Fuzz: quickFuzz()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compatible {
		t.Fatal("goto must remain unsynthesizable")
	}
	md := res.Markdown("kernel")
	if !strings.Contains(md, "**incomplete**") {
		t.Error("report should mark the outcome incomplete")
	}
	if !strings.Contains(md, "goto") {
		t.Error("report should carry the remaining goto diagnostic")
	}
}

// The report is a pure function of the result: diagnostics sections
// must come out in the fixed class order, not Go's randomized map
// iteration order (a multi-class input renders identically on every
// call).
func TestMarkdownReportDeterministic(t *testing.T) {
	src := `
struct Node { int val; struct Node *next; };
int kernel(int n, int out[16]) {
    struct Node *head = (struct Node *)malloc(sizeof(struct Node));
    head->val = n;
    out[0] = head->val;
    free(head);
    return n;
}`
	res, err := Run(src, Options{Kernel: "kernel", Fuzz: quickFuzz()})
	if err != nil {
		t.Fatal(err)
	}
	first := res.Markdown("kernel")
	if !strings.Contains(first, "Dynamic Data Structures") ||
		!strings.Contains(first, "Unsupported Data Types") {
		t.Fatalf("premise broken: want two diagnostic classes in the report:\n%s", first)
	}
	if strings.Index(first, "Dynamic Data Structures") > strings.Index(first, "Unsupported Data Types") {
		t.Error("classes not in declaration order")
	}
	for i := 0; i < 10; i++ {
		if got := res.Markdown("kernel"); got != first {
			t.Fatalf("render %d differs from the first", i)
		}
	}
}
