package core

import (
	"strings"
	"testing"
)

func TestMarkdownReport(t *testing.T) {
	res, err := Run(longDoubleKernel, Options{Kernel: "top", Fuzz: quickFuzz()})
	if err != nil {
		t.Fatal(err)
	}
	md := res.Markdown("top")
	for _, want := range []string{
		"# HeteroGen transpilation report: `top`",
		"**success**",
		"Diagnostics before repair",
		"long double",
		"Bitwidth finitization",
		"fpga_float<8,71>",
		"## Performance (simulated)",
		"## Final HLS-C source",
		"```c",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestMarkdownReportIncomplete(t *testing.T) {
	// goto cannot be repaired by any template: the report must say so.
	src := `
int kernel(int x) {
    if (x > 0) { goto out; }
    x = x + 1;
out:
    return x;
}`
	res, err := Run(src, Options{Kernel: "kernel", Fuzz: quickFuzz()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compatible {
		t.Fatal("goto must remain unsynthesizable")
	}
	md := res.Markdown("kernel")
	if !strings.Contains(md, "**incomplete**") {
		t.Error("report should mark the outcome incomplete")
	}
	if !strings.Contains(md, "goto") {
		t.Error("report should carry the remaining goto diagnostic")
	}
}
