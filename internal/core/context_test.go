package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/repair"
	"github.com/hetero/heterogen/internal/subjects"
)

func smallOptions(t *testing.T, id string) (Options, string) {
	t.Helper()
	s, err := subjects.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Kernel: s.Kernel}
	opts.Fuzz = fuzz.DefaultOptions()
	opts.Fuzz.MaxExecs = 150
	opts.Fuzz.Plateau = 60
	return opts, id
}

// TestRunUnitContextPreCancelled: a context cancelled before the call
// must return promptly with an error wrapping context.Canceled and a
// valid best-so-far Result — here the original program, since no phase
// got to run.
func TestRunUnitContextPreCancelled(t *testing.T) {
	opts, _ := smallOptions(t, "P2")
	s, _ := subjects.ByID("P2")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	start := time.Now()
	res, err := RunUnitContext(ctx, s.MustParse(), opts)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want one wrapping context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("pre-cancelled run took %v, want prompt return", elapsed)
	}
	if res.Final == nil || res.Source == "" {
		t.Error("cancelled run must still carry the best-so-far program")
	}
}

// cancelAfter is an observer that cancels a context once it has seen n
// events of the given type (any type when typ is empty) — a
// deterministic way to interrupt the pipeline mid-phase.
type cancelAfter struct {
	n      int
	typ    obs.Type
	seen   int
	cancel context.CancelFunc
}

func (c *cancelAfter) Emit(e obs.Event) {
	if c.typ != "" && e.Type != c.typ {
		return
	}
	c.seen++
	if c.seen == c.n {
		c.cancel()
	}
}

// TestRunUnitContextMidRunCancel cancels during the fuzzing phase (the
// 20th structured event lands well inside it) and checks the documented
// partial-result semantics: a prompt return, an error wrapping
// context.Canceled, and the best-so-far source in the Result.
func TestRunUnitContextMidRunCancel(t *testing.T) {
	opts, _ := smallOptions(t, "P2")
	s, _ := subjects.ByID("P2")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Obs = &cancelAfter{n: 20, cancel: cancel}

	res, err := RunUnitContext(ctx, s.MustParse(), opts)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want one wrapping context.Canceled", err)
	}
	if res.Final == nil || res.Source == "" {
		t.Error("cancelled run must still carry the best-so-far program")
	}
	// A run cancelled mid-campaign must not have paid the full budget.
	if res.Campaign.Execs >= opts.Fuzz.MaxExecs {
		t.Errorf("campaign ran to its full budget (%d execs) despite cancellation", res.Campaign.Execs)
	}
}

// TestRunUnitContextMidSearchCancel cancels on the third committed
// repair candidate — inside the search proper — and checks that the
// Result carries the most advanced program version reached plus its
// partial repair log, the acceptance bar for TranspileContext's
// best-so-far semantics.
// midSearchKernel carries several error classes at once (dynamic tree:
// malloc, pointer links, recursion, a global), so the random-mode
// search tries tens of candidates — enough room to cancel mid-search.
// The evaluation subjects converge in single-digit candidates and
// cannot be interrupted reliably.
const midSearchKernel = `
struct Node {
    int val;
    struct Node *next;
};
int total;
void walk(struct Node *curr) {
    if (curr == 0) { return; }
    total = total + curr->val;
    walk(curr->next);
}
int kernel(int n) {
    if (n < 0) { n = -n; }
    if (n > 16) { n = 16; }
    struct Node *head = 0;
    for (int i = 0; i < n; i++) {
        struct Node *nn = (struct Node *)malloc(sizeof(struct Node));
        nn->val = (i * 37) % 101;
        nn->next = head;
        head = nn;
    }
    total = 0;
    walk(head);
    return total;
}`

func TestRunUnitContextMidSearchCancel(t *testing.T) {
	u := cparser.MustParse(midSearchKernel)
	opts := Options{Kernel: "kernel"}
	opts.Fuzz = fuzz.DefaultOptions()
	opts.Fuzz.MaxExecs = 150
	opts.Fuzz.Plateau = 60
	opts.Repair = repair.DefaultOptions()
	opts.Repair.UseDependence = false
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	obsCancel := &cancelAfter{n: 3, typ: obs.EvCandidate, cancel: cancel}
	opts.Obs = obsCancel

	full, err := RunUnit(cparser.MustParse(midSearchKernel), Options{Kernel: opts.Kernel, Fuzz: opts.Fuzz, Repair: opts.Repair})
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunUnitContext(ctx, u, opts)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want one wrapping context.Canceled", err)
	}
	if res.Final == nil || res.Source == "" {
		t.Fatal("cancelled run must still carry the best-so-far program")
	}
	if obsCancel.seen < 3 {
		t.Fatalf("search emitted only %d candidate events before returning", obsCancel.seen)
	}
	// The interrupted search must have stopped early, not run to the end.
	if res.Repair.Stats.CandidatesTried >= full.Repair.Stats.CandidatesTried {
		t.Errorf("cancelled search tried %d candidates, full search %d — no early stop",
			res.Repair.Stats.CandidatesTried, full.Repair.Stats.CandidatesTried)
	}
}

// TestRunUnitContextBackground: RunUnitContext with a background
// context must behave exactly like RunUnit.
func TestRunUnitContextBackground(t *testing.T) {
	opts, _ := smallOptions(t, "P2")
	s, _ := subjects.ByID("P2")
	plain, err := RunUnit(s.MustParse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := RunUnitContext(context.Background(), s.MustParse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Source != viaCtx.Source || plain.Summary() != viaCtx.Summary() {
		t.Error("RunUnitContext(Background) diverges from RunUnit")
	}
}
