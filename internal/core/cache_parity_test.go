package core

import (
	"bytes"
	"reflect"
	"testing"

	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/subjects"
)

// cachedRun executes the full pipeline with a JSONL trace attached and
// an optional evaluation cache, returning the result plus the raw trace
// bytes.
func cachedRun(t *testing.T, id string, workers int, cache *evalcache.Cache) (Result, []byte) {
	t.Helper()
	s, err := subjects.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	opts := Options{Kernel: s.Kernel, Workers: workers, Obs: tw, Cache: cache}
	opts.Fuzz = fuzz.DefaultOptions()
	opts.Fuzz.MaxExecs = 150
	opts.Fuzz.Plateau = 60
	opts.Fuzz.Workers = workers
	res, err := RunUnit(s.MustParse(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	return res, buf.Bytes()
}

// assertResultParity compares two pipeline results field by field,
// excluding CacheStats (the one documented out-of-band field: hit/miss
// counts legitimately differ between disabled, cold, and warm runs, and
// with worker speculation). Test suites are compared by their canonical
// fingerprint rather than reflect.DeepEqual so float NaN inputs — which
// the fuzzer does generate — compare by bit pattern.
func assertResultParity(t *testing.T, name string, want, got Result) {
	t.Helper()
	if want.Source != got.Source {
		t.Errorf("%s: final sources differ:\n--- want ---\n%s\n--- got ---\n%s", name, want.Source, got.Source)
	}
	if want.Compatible != got.Compatible || want.BehaviorOK != got.BehaviorOK {
		t.Errorf("%s: verdicts diverge: want %v/%v got %v/%v", name,
			want.Compatible, want.BehaviorOK, got.Compatible, got.BehaviorOK)
	}
	if !reflect.DeepEqual(want.Repair.Stats, got.Repair.Stats) {
		t.Errorf("%s: repair stats diverge:\n  want: %+v\n  got:  %+v", name, want.Repair.Stats, got.Repair.Stats)
	}
	wc, gc := want.Campaign, got.Campaign
	if wc.Coverage != gc.Coverage || wc.Execs != gc.Execs ||
		wc.CoveredOutcomes != gc.CoveredOutcomes || wc.TotalOutcomes != gc.TotalOutcomes ||
		wc.VirtualSeconds != gc.VirtualSeconds || wc.Plateaued != gc.Plateaued ||
		wc.SeededFromHost != gc.SeededFromHost || len(wc.Tests) != len(gc.Tests) {
		t.Errorf("%s: campaigns diverge:\n  want: %s\n  got:  %s", name, wc.Summary(), gc.Summary())
	}
	if fuzz.CorpusFingerprint(wc.Tests) != fuzz.CorpusFingerprint(gc.Tests) {
		t.Errorf("%s: generated test suites diverge", name)
	}
	if want.Resources != got.Resources {
		t.Errorf("%s: resource estimates diverge: want %+v got %+v", name, want.Resources, got.Resources)
	}
}

// TestPipelineCacheParity is the acceptance check for the evaluation
// cache: for every subject and for Workers∈{1,4}, the pipeline result
// and the byte-exact JSONL trace must be identical with the cache
// disabled, cold, and warm — the cache may only change wall-clock,
// never a reported number or an emitted event. The warm run must
// actually hit.
func TestPipelineCacheParity(t *testing.T) {
	ids := []string{"P2", "P6"}
	if !testing.Short() {
		ids = []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				base, baseTrace := cachedRun(t, id, workers, nil)
				if n := base.CacheStats.Hits() + base.CacheStats.Misses(); n != 0 {
					t.Errorf("workers=%d: cache-disabled run reports %d cache lookups", workers, n)
				}
				cache, err := evalcache.New(evalcache.Options{})
				if err != nil {
					t.Fatal(err)
				}
				cold, coldTrace := cachedRun(t, id, workers, cache)
				warm, warmTrace := cachedRun(t, id, workers, cache)

				assertResultParity(t, id+"/cold", base, cold)
				assertResultParity(t, id+"/warm", base, warm)
				if !bytes.Equal(baseTrace, coldTrace) {
					t.Errorf("workers=%d: cold-cache trace differs from cache-disabled trace (%d vs %d bytes)",
						workers, len(coldTrace), len(baseTrace))
				}
				if !bytes.Equal(baseTrace, warmTrace) {
					t.Errorf("workers=%d: warm-cache trace differs from cache-disabled trace (%d vs %d bytes)",
						workers, len(warmTrace), len(baseTrace))
				}
				if warm.CacheStats.Hits() == 0 {
					t.Errorf("workers=%d: warm run never hit the cache: %s", workers, warm.CacheStats)
				}
			}
		})
	}
}

// TestPipelineShardedCacheParity is the acceptance check for cache
// sharding at the pipeline level: with the cache split across N
// independent shards, the Result and the byte-exact JSONL trace must be
// identical to the unsharded cache's, cold and warm — and, for a
// sequential run, even the out-of-band CacheStats must agree, because
// lookup order is deterministic and sharding only changes which lock an
// entry lives behind.
func TestPipelineShardedCacheParity(t *testing.T) {
	flat, err := evalcache.New(evalcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flatCold, flatColdTrace := cachedRun(t, "P2", 1, flat)
	flatWarm, flatWarmTrace := cachedRun(t, "P2", 1, flat)

	sharded, err := evalcache.New(evalcache.Options{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	cold, coldTrace := cachedRun(t, "P2", 1, sharded)
	warm, warmTrace := cachedRun(t, "P2", 1, sharded)

	assertResultParity(t, "sharded/cold", flatCold, cold)
	assertResultParity(t, "sharded/warm", flatWarm, warm)
	if !bytes.Equal(flatColdTrace, coldTrace) {
		t.Errorf("sharded cold trace differs from unsharded (%d vs %d bytes)", len(coldTrace), len(flatColdTrace))
	}
	if !bytes.Equal(flatWarmTrace, warmTrace) {
		t.Errorf("sharded warm trace differs from unsharded (%d vs %d bytes)", len(warmTrace), len(flatWarmTrace))
	}
	if !reflect.DeepEqual(flatCold.CacheStats.Stages, cold.CacheStats.Stages) {
		t.Errorf("sequential cold-run cache stats diverge:\n  flat:    %+v\n  sharded: %+v",
			flatCold.CacheStats.Stages, cold.CacheStats.Stages)
	}
	if !reflect.DeepEqual(flatWarm.CacheStats.Stages, warm.CacheStats.Stages) {
		t.Errorf("sequential warm-run cache stats diverge:\n  flat:    %+v\n  sharded: %+v",
			flatWarm.CacheStats.Stages, warm.CacheStats.Stages)
	}
	if warm.CacheStats.Hits() == 0 {
		t.Errorf("sharded warm run never hit: %s", warm.CacheStats)
	}
}

// TestPipelineCacheDiskWarm exercises the persistent store end to end:
// a cold run populates a directory, a fresh cache opened on the same
// directory serves the warm run from disk, and the result and trace
// stay identical to a cache-free run.
func TestPipelineCacheDiskWarm(t *testing.T) {
	dir := t.TempDir()
	base, baseTrace := cachedRun(t, "P2", 1, nil)

	c1, err := evalcache.New(evalcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold, _ := cachedRun(t, "P2", 1, c1)
	assertResultParity(t, "disk/cold", base, cold)
	if err := c1.Close(); err != nil {
		t.Fatal(err)
	}

	c2, err := evalcache.New(evalcache.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	warm, warmTrace := cachedRun(t, "P2", 1, c2)
	assertResultParity(t, "disk/warm", base, warm)
	if !bytes.Equal(baseTrace, warmTrace) {
		t.Errorf("disk-warm trace differs from cache-disabled trace (%d vs %d bytes)",
			len(warmTrace), len(baseTrace))
	}
	if warm.CacheStats.Hits() == 0 {
		t.Errorf("disk-warm run never hit: %s", warm.CacheStats)
	}
	if got := c2.Stats().DiskLoaded; got == 0 {
		t.Error("reopened cache loaded no entries from disk")
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}

	sum, err := evalcache.SummarizeDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Entries) == 0 {
		t.Error("SummarizeDir found no entries after two persistent runs")
	}
	var stores, hits int64
	for _, st := range sum.Stats.Stages {
		stores += st.Stores
		hits += st.Hits
	}
	if stores == 0 || hits == 0 {
		t.Errorf("cumulative stats.json not merged across runs: stores=%d hits=%d", stores, hits)
	}
}
