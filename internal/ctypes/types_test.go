package ctypes

import (
	"testing"
	"testing/quick"
)

func TestCRendering(t *testing.T) {
	cases := []struct {
		typ  Type
		name string
		want string
	}{
		{IntT, "x", "int x"},
		{UIntT, "x", "unsigned int x"},
		{Char, "c", "char c"},
		{LongLong, "v", "long long v"},
		{FloatT, "f", "float f"},
		{LongDoubleT, "d", "long double d"},
		{Pointer{Elem: IntT}, "p", "int *p"},
		{Pointer{Elem: Pointer{Elem: IntT}}, "pp", "int **pp"},
		{Array{Elem: IntT, Len: 10}, "a", "int a[10]"},
		{Array{Elem: Array{Elem: IntT, Len: 3}, Len: 2}, "m", "int m[2][3]"},
		{Array{Elem: IntT, Len: -1}, "a", "int a[]"},
		{Pointer{Elem: Array{Elem: IntT, Len: 4}}, "pa", "int (*pa)[4]"},
		{FPGAInt{Width: 7, Unsigned: true}, "r", "fpga_uint<7> r"},
		{FPGAInt{Width: 12}, "r", "fpga_int<12> r"},
		{FPGAFloat{Exp: 8, Mant: 71}, "f", "fpga_float<8,71> f"},
		{Stream{Elem: UIntT}, "s", "hls::stream<unsigned int> s"},
		{Ref{Elem: Stream{Elem: UIntT}}, "in", "hls::stream<unsigned int> &in"},
		{Void{}, "", "void"},
		{Bool{}, "b", "bool b"},
	}
	for _, c := range cases {
		if got := c.typ.C(c.name); got != c.want {
			t.Errorf("C(%q): got %q want %q", c.name, got, c.want)
		}
	}
}

func TestStructBits(t *testing.T) {
	s := &Struct{Tag: "S", Fields: []Field{
		{Name: "a", Type: IntT},
		{Name: "b", Type: Char},
	}}
	if got := s.Bits(); got != 40 {
		t.Errorf("struct bits = %d, want 40", got)
	}
	u := &Struct{Tag: "U", IsUnion: true, Fields: s.Fields}
	if got := u.Bits(); got != 32 {
		t.Errorf("union bits = %d, want 32", got)
	}
}

func TestStructFieldIndex(t *testing.T) {
	s := &Struct{Tag: "S", Fields: []Field{{Name: "x", Type: IntT}, {Name: "y", Type: IntT}}}
	if s.FieldIndex("y") != 1 {
		t.Error("FieldIndex(y)")
	}
	if s.FieldIndex("z") != -1 {
		t.Error("FieldIndex(missing) should be -1")
	}
}

func TestEqual(t *testing.T) {
	if !IntT.Equal(Int{Width: 32}) {
		t.Error("int == int")
	}
	if IntT.Equal(UIntT) {
		t.Error("int != unsigned")
	}
	if !(Pointer{Elem: IntT}).Equal(Pointer{Elem: IntT}) {
		t.Error("int* == int*")
	}
	if (Array{Elem: IntT, Len: 3}).Equal(Array{Elem: IntT, Len: 4}) {
		t.Error("array lengths differ")
	}
	s1 := &Struct{Tag: "S"}
	s2 := &Struct{Tag: "S"}
	if !s1.Equal(s2) {
		t.Error("same-tag structs are equal")
	}
	if !(FPGAInt{Width: 7, Unsigned: true}).Equal(FPGAInt{Width: 7, Unsigned: true}) {
		t.Error("fpga_uint<7> equality")
	}
}

func TestResolve(t *testing.T) {
	n := Named{Name: "Node_ptr", Underlying: Named{Name: "idx", Underlying: IntT}}
	if !Resolve(n).Equal(IntT) {
		t.Error("nested typedef resolution")
	}
	r := Ref{Elem: Stream{Elem: IntT}}
	if Resolve(r).Kind() != KindStream {
		t.Error("ref resolution")
	}
	unresolved := Named{Name: "mystery"}
	if Resolve(unresolved).Kind() != KindNamed {
		t.Error("unresolved typedef stays named")
	}
}

func TestIsSynthesizable(t *testing.T) {
	if IsSynthesizable(LongDoubleT) {
		t.Error("long double must be unsynthesizable")
	}
	if IsSynthesizable(Array{Elem: IntT, Len: -1}) {
		t.Error("unknown-size array must be unsynthesizable")
	}
	if !IsSynthesizable(Array{Elem: IntT, Len: 64}) {
		t.Error("sized int array is synthesizable")
	}
	bad := &Struct{Tag: "B", Fields: []Field{{Name: "d", Type: LongDoubleT}}}
	if IsSynthesizable(bad) {
		t.Error("struct with long double field is unsynthesizable")
	}
	if !IsSynthesizable(FPGAFloat{Exp: 8, Mant: 71}) {
		t.Error("fpga_float is synthesizable")
	}
}

func TestMinBitsFor(t *testing.T) {
	cases := []struct {
		lo, hi int64
		want   int
	}{
		{0, 0, 1}, {0, 1, 1}, {0, 2, 2}, {0, 83, 7}, {0, 127, 7},
		{0, 128, 8}, {0, 255, 8}, {0, 256, 9},
		{-1, 0, 2}, {-128, 127, 8}, {-129, 0, 9}, {0, 1 << 40, 41},
	}
	for _, c := range cases {
		if got := MinBitsFor(c.lo, c.hi); got != c.want {
			t.Errorf("MinBitsFor(%d,%d) = %d, want %d", c.lo, c.hi, got, c.want)
		}
	}
}

// Property: MinBitsFor produces a width whose unsigned range actually
// covers hi (for nonnegative ranges) and is minimal.
func TestMinBitsForCoversAndMinimal(t *testing.T) {
	f := func(hi uint32) bool {
		h := int64(hi)
		bits := MinBitsFor(0, h)
		if bits < 1 || bits > 64 {
			return false
		}
		covers := h <= (1<<uint(bits))-1
		minimal := bits == 1 || h > (1<<uint(bits-1))-1
		return covers && minimal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: FitInteger's type always covers the range and signedness.
func TestFitIntegerCovers(t *testing.T) {
	f := func(a, b int32) bool {
		lo, hi := int64(a), int64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		ft := FitInteger(lo, hi)
		if lo >= 0 {
			if !ft.Unsigned {
				return false
			}
			return hi <= (1<<uint(ft.Width))-1
		}
		if ft.Unsigned {
			return false
		}
		min := int64(-1) << uint(ft.Width-1)
		max := -min - 1
		return lo >= min && hi <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFuncType(t *testing.T) {
	ft := &Func{Ret: IntT, Params: []Type{FloatT, Pointer{Elem: Char}}}
	want := "int f(float, char *)"
	if got := ft.C("f"); got != want {
		t.Errorf("func C() = %q want %q", got, want)
	}
	same := &Func{Ret: IntT, Params: []Type{FloatT, Pointer{Elem: Char}}}
	if !ft.Equal(same) {
		t.Error("structurally equal funcs")
	}
	diff := &Func{Ret: IntT, Params: []Type{FloatT}}
	if ft.Equal(diff) {
		t.Error("different arity funcs must differ")
	}
}

func TestIsIntegerFloatArithmetic(t *testing.T) {
	if !IsInteger(IntT) || !IsInteger(FPGAInt{Width: 9}) || !IsInteger(Bool{}) {
		t.Error("IsInteger basics")
	}
	if IsInteger(FloatT) {
		t.Error("float is not integer")
	}
	if !IsFloat(DoubleT) || !IsFloat(FPGAFloat{Exp: 8, Mant: 23}) {
		t.Error("IsFloat basics")
	}
	if !IsArithmetic(Named{Name: "t", Underlying: IntT}) {
		t.Error("typedef of int is arithmetic")
	}
	if IsArithmetic(Pointer{Elem: IntT}) {
		t.Error("pointer is not arithmetic")
	}
}

func TestBitsOfCommonTypes(t *testing.T) {
	cases := []struct {
		typ  Type
		want int
	}{
		{Char, 8}, {Short, 16}, {IntT, 32}, {Long, 64},
		{FloatT, 32}, {DoubleT, 64}, {LongDoubleT, 80},
		{FPGAInt{Width: 7}, 7}, {FPGAFloat{Exp: 8, Mant: 71}, 80},
		{Array{Elem: IntT, Len: 4}, 128}, {Array{Elem: IntT, Len: -1}, 0},
		{Bool{}, 1}, {Void{}, 0},
	}
	for _, c := range cases {
		if got := c.typ.Bits(); got != c.want {
			t.Errorf("%s bits = %d want %d", c.typ.C(""), got, c.want)
		}
	}
}
