// Package ctypes models the type system shared by the C frontend, the CPU
// interpreter, and the simulated HLS toolchain.
//
// It covers the standard C scalar types, pointers, fixed-size and
// unknown-size arrays, structs and unions, plus the HLS vendor types the
// paper's repairs introduce: fpga_uint<N>, fpga_int<N> (arbitrary-bitwidth
// integers) and fpga_float<E,M> (custom-width floats). Each type answers
// the two questions the toolchain asks: how many bits does it occupy on
// the fabric, and is it synthesizable at all.
package ctypes

import (
	"fmt"
	"strings"
)

// Kind discriminates the concrete Type implementations.
type Kind int

// Type kinds.
const (
	KindVoid Kind = iota
	KindBool
	KindInt       // C integer family (char..long long, signed/unsigned)
	KindFloat     // float, double, long double
	KindFPGAInt   // fpga_int<N> / fpga_uint<N>
	KindFPGAFloat // fpga_float<E,M>
	KindPointer
	KindArray
	KindStruct // struct or union
	KindFunc
	KindStream // hls::stream<T>
	KindRef    // C++-style reference T& (HLS-C stream parameters)
	KindNamed  // typedef reference, resolved during checking
)

// Type is the interface implemented by all types.
type Type interface {
	Kind() Kind
	// Bits is the bit width occupied by one value of the type on the
	// fabric (0 for void/function types; arrays multiply element bits).
	Bits() int
	// C renders the type as C/HLS-C source for the given declarator name;
	// name may be empty for abstract types (casts, sizeof).
	C(name string) string
	// Equal reports structural type equality.
	Equal(Type) bool
}

// ---------------------------------------------------------------------------
// Void / Bool

// Void is the C void type.
type Void struct{}

func (Void) Kind() Kind { return KindVoid }
func (Void) Bits() int  { return 0 }
func (Void) C(name string) string {
	return withName("void", name)
}
func (Void) Equal(o Type) bool { _, ok := o.(Void); return ok }

// Bool is the C bool type.
type Bool struct{}

func (Bool) Kind() Kind { return KindBool }
func (Bool) Bits() int  { return 1 }
func (Bool) C(name string) string {
	return withName("bool", name)
}
func (Bool) Equal(o Type) bool { _, ok := o.(Bool); return ok }

// ---------------------------------------------------------------------------
// Integers

// Int is a standard C integer type.
type Int struct {
	Width    int  // 8, 16, 32, 64
	Unsigned bool // true for unsigned variants
}

func (Int) Kind() Kind  { return KindInt }
func (t Int) Bits() int { return t.Width }

// C renders the canonical C spelling.
func (t Int) C(name string) string {
	var base string
	switch t.Width {
	case 8:
		base = "char"
	case 16:
		base = "short"
	case 32:
		base = "int"
	case 64:
		base = "long long"
	default:
		base = fmt.Sprintf("int/*%d*/", t.Width)
	}
	if t.Unsigned {
		base = "unsigned " + base
	}
	return withName(base, name)
}

func (t Int) Equal(o Type) bool {
	u, ok := o.(Int)
	return ok && t == u
}

// Common integer types.
var (
	Char     = Int{Width: 8}
	UChar    = Int{Width: 8, Unsigned: true}
	Short    = Int{Width: 16}
	UShort   = Int{Width: 16, Unsigned: true}
	IntT     = Int{Width: 32}
	UIntT    = Int{Width: 32, Unsigned: true}
	Long     = Int{Width: 64}
	ULong    = Int{Width: 64, Unsigned: true}
	LongLong = Int{Width: 64}
)

// ---------------------------------------------------------------------------
// Floats

// FloatKind distinguishes float sizes.
type FloatKind int

// Float widths.
const (
	F32 FloatKind = iota // float
	F64                  // double
	F80                  // long double — NOT synthesizable
)

// Float is a standard C floating type.
type Float struct{ FK FloatKind }

func (Float) Kind() Kind { return KindFloat }
func (t Float) Bits() int {
	switch t.FK {
	case F32:
		return 32
	case F64:
		return 64
	default:
		return 80
	}
}
func (t Float) C(name string) string {
	switch t.FK {
	case F32:
		return withName("float", name)
	case F64:
		return withName("double", name)
	default:
		return withName("long double", name)
	}
}
func (t Float) Equal(o Type) bool {
	u, ok := o.(Float)
	return ok && t == u
}

// Convenience float types.
var (
	FloatT      = Float{FK: F32}
	DoubleT     = Float{FK: F64}
	LongDoubleT = Float{FK: F80}
)

// ---------------------------------------------------------------------------
// HLS vendor types

// FPGAInt is the arbitrary-precision HLS integer fpga_int<N>/fpga_uint<N>.
type FPGAInt struct {
	Width    int
	Unsigned bool
}

func (FPGAInt) Kind() Kind  { return KindFPGAInt }
func (t FPGAInt) Bits() int { return t.Width }
func (t FPGAInt) C(name string) string {
	base := fmt.Sprintf("fpga_int<%d>", t.Width)
	if t.Unsigned {
		base = fmt.Sprintf("fpga_uint<%d>", t.Width)
	}
	return withName(base, name)
}
func (t FPGAInt) Equal(o Type) bool {
	u, ok := o.(FPGAInt)
	return ok && t == u
}

// FPGAFloat is the custom-width HLS float fpga_float<E,M>.
type FPGAFloat struct {
	Exp  int // exponent bits
	Mant int // mantissa bits
}

func (FPGAFloat) Kind() Kind  { return KindFPGAFloat }
func (t FPGAFloat) Bits() int { return 1 + t.Exp + t.Mant }
func (t FPGAFloat) C(name string) string {
	return withName(fmt.Sprintf("fpga_float<%d,%d>", t.Exp, t.Mant), name)
}
func (t FPGAFloat) Equal(o Type) bool {
	u, ok := o.(FPGAFloat)
	return ok && t == u
}

// DefaultFPGAFloat is the replacement the paper uses for long double.
var DefaultFPGAFloat = FPGAFloat{Exp: 8, Mant: 71}

// ---------------------------------------------------------------------------
// Pointers, arrays

// Pointer is T*.
type Pointer struct{ Elem Type }

func (Pointer) Kind() Kind { return KindPointer }
func (Pointer) Bits() int  { return 64 }
func (t Pointer) C(name string) string {
	inner := "*" + name
	if a, ok := t.Elem.(Array); ok {
		// Pointer to array needs parens: T (*name)[N].
		return a.C("(" + inner + ")")
	}
	return t.Elem.C(inner)
}
func (t Pointer) Equal(o Type) bool {
	u, ok := o.(Pointer)
	return ok && t.Elem.Equal(u.Elem)
}

// Array is T[N]. Len < 0 means the length is unknown at compile time —
// which is precisely the condition the HLS checker rejects with SYNCHK-61.
type Array struct {
	Elem Type
	Len  int // -1 when unknown at compile time
}

func (Array) Kind() Kind { return KindArray }
func (t Array) Bits() int {
	if t.Len < 0 {
		return 0
	}
	return t.Len * t.Elem.Bits()
}
func (t Array) C(name string) string {
	dim := ""
	if t.Len >= 0 {
		dim = fmt.Sprintf("%d", t.Len)
	}
	return t.Elem.C(fmt.Sprintf("%s[%s]", name, dim))
}
func (t Array) Equal(o Type) bool {
	u, ok := o.(Array)
	return ok && t.Len == u.Len && t.Elem.Equal(u.Elem)
}

// ---------------------------------------------------------------------------
// Structs and unions

// Field is a struct or union member.
type Field struct {
	Name string
	Type Type
}

// Struct is a struct or union type. Struct identity is by tag name; two
// structs with the same tag are the same type.
type Struct struct {
	Tag     string
	Fields  []Field
	IsUnion bool
}

func (*Struct) Kind() Kind { return KindStruct }

// Bits sums field widths (or takes the max for unions).
func (t *Struct) Bits() int {
	total := 0
	for _, f := range t.Fields {
		b := f.Type.Bits()
		if t.IsUnion {
			if b > total {
				total = b
			}
		} else {
			total += b
		}
	}
	return total
}

func (t *Struct) C(name string) string {
	kw := "struct"
	if t.IsUnion {
		kw = "union"
	}
	return withName(fmt.Sprintf("%s %s", kw, t.Tag), name)
}

func (t *Struct) Equal(o Type) bool {
	u, ok := o.(*Struct)
	return ok && t.Tag == u.Tag && t.IsUnion == u.IsUnion
}

// FieldIndex returns the index of the named field, or -1.
func (t *Struct) FieldIndex(name string) int {
	for i, f := range t.Fields {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// ---------------------------------------------------------------------------
// Functions

// Func is a function type.
type Func struct {
	Ret    Type
	Params []Type
}

func (*Func) Kind() Kind { return KindFunc }
func (*Func) Bits() int  { return 0 }
func (t *Func) C(name string) string {
	parts := make([]string, len(t.Params))
	for i, p := range t.Params {
		parts[i] = p.C("")
	}
	return fmt.Sprintf("%s %s(%s)", t.Ret.C(""), name, strings.Join(parts, ", "))
}
func (t *Func) Equal(o Type) bool {
	u, ok := o.(*Func)
	if !ok || len(t.Params) != len(u.Params) || !t.Ret.Equal(u.Ret) {
		return false
	}
	for i := range t.Params {
		if !t.Params[i].Equal(u.Params[i]) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Streams (hls::stream<T>) and named types

// Stream is the hls::stream<T> channel type used by dataflow designs.
type Stream struct{ Elem Type }

func (Stream) Kind() Kind { return KindStream }
func (t Stream) Bits() int {
	return t.Elem.Bits()
}
func (t Stream) C(name string) string {
	return withName(fmt.Sprintf("hls::stream<%s>", t.Elem.C("")), name)
}
func (t Stream) Equal(o Type) bool {
	u, ok := o.(Stream)
	return ok && t.Elem.Equal(u.Elem)
}

// Ref is a C++-style reference T&, which HLS-C uses for stream parameters
// and struct members that alias connecting streams. Semantically the
// interpreter treats a Ref binding as an alias of the referenced lvalue.
type Ref struct{ Elem Type }

func (Ref) Kind() Kind  { return KindRef }
func (t Ref) Bits() int { return t.Elem.Bits() }
func (t Ref) C(name string) string {
	return t.Elem.C("&" + name)
}
func (t Ref) Equal(o Type) bool {
	u, ok := o.(Ref)
	return ok && t.Elem.Equal(u.Elem)
}

// Named is a typedef reference by name; it is resolved against the unit's
// typedef table during semantic analysis, but printing preserves the alias.
type Named struct {
	Name       string
	Underlying Type // nil until resolved
}

func (Named) Kind() Kind { return KindNamed }
func (t Named) Bits() int {
	if t.Underlying != nil {
		return t.Underlying.Bits()
	}
	return 0
}
func (t Named) C(name string) string { return withName(t.Name, name) }
func (t Named) Equal(o Type) bool {
	u, ok := o.(Named)
	if ok && t.Name == u.Name {
		return true
	}
	if t.Underlying != nil {
		return t.Underlying.Equal(o)
	}
	return false
}

// ---------------------------------------------------------------------------
// Helpers

func withName(base, name string) string {
	if name == "" {
		return base
	}
	return base + " " + name
}

// Resolve strips Named and Ref wrappers down to the underlying type.
func Resolve(t Type) Type {
	for {
		switch u := t.(type) {
		case Named:
			if u.Underlying == nil {
				return t
			}
			t = u.Underlying
		case Ref:
			t = u.Elem
		default:
			return t
		}
	}
}

// IsInteger reports whether t behaves as an integer (C int family, bool,
// char literals, or an HLS fixed-width integer).
func IsInteger(t Type) bool {
	switch Resolve(t).(type) {
	case Int, FPGAInt, Bool:
		return true
	}
	return false
}

// IsFloat reports whether t is any floating type.
func IsFloat(t Type) bool {
	switch Resolve(t).(type) {
	case Float, FPGAFloat:
		return true
	}
	return false
}

// IsArithmetic reports whether t supports arithmetic operators.
func IsArithmetic(t Type) bool { return IsInteger(t) || IsFloat(t) }

// IsSynthesizable reports whether a value of type t can be realized on the
// fabric. long double and unknown-size arrays are the canonical offenders.
func IsSynthesizable(t Type) bool {
	switch u := Resolve(t).(type) {
	case Float:
		return u.FK != F80
	case Array:
		return u.Len >= 0 && IsSynthesizable(u.Elem)
	case Pointer:
		// Pointers are generally forbidden; interface pointers are handled
		// separately by the checker. The type itself is representable.
		return IsSynthesizable(u.Elem)
	case *Struct:
		for _, f := range u.Fields {
			if !IsSynthesizable(f.Type) {
				return false
			}
		}
		return true
	case Stream:
		return IsSynthesizable(u.Elem)
	}
	return true
}

// MinBitsFor returns the minimum number of bits needed to represent every
// integer in [lo, hi] (two's complement when lo < 0). This is the core of
// the paper's bitwidth finitization: a variable whose profile shows a max
// of 83 needs only fpga_uint<7>.
func MinBitsFor(lo, hi int64) int {
	if lo >= 0 {
		// Unsigned representation.
		bits := 1
		for v := hi; v > 1; v >>= 1 {
			bits++
		}
		if hi <= 1 {
			return 1
		}
		return bits
	}
	// Signed: need to cover both extremes.
	bits := 2
	for {
		min := int64(-1) << (bits - 1)
		max := -min - 1
		if lo >= min && hi <= max {
			return bits
		}
		bits++
		if bits >= 64 {
			return 64
		}
	}
}

// FitInteger returns the tightest FPGAInt covering [lo, hi].
func FitInteger(lo, hi int64) FPGAInt {
	if lo >= 0 {
		return FPGAInt{Width: MinBitsFor(lo, hi), Unsigned: true}
	}
	return FPGAInt{Width: MinBitsFor(lo, hi)}
}
