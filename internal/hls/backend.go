package hls

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
)

// This file is the pluggable-backend layer: the vocabulary for naming a
// synthesis target ("backend:device"), the Backend interface each
// simulated vendor toolchain implements (diagnostic dialect, log
// parsing, style-rule set, compile-cost model, device capacity table),
// and the process-wide registry the rest of the system resolves names
// against. The concrete toolchains registered below — vivado_hls (the
// paper's evaluation flow) and vitis — share the checker and simulator
// subpackages; what differs per backend is the diagnostic dialect, the
// cost model, and which device profiles it can target.

// Target names one (backend, device) pair a design should be built for.
// The zero value is not a valid target; use DefaultTarget.
type Target struct {
	// Backend is a registered backend name, e.g. "vivado_hls".
	Backend string
	// Device is a device profile name the backend ships, e.g. "xcvu9p".
	// Full part names (e.g. "xcvu9p-flgb2104-2-i") are accepted too.
	Device string
}

// String renders the canonical "backend:device" form.
func (t Target) String() string { return t.Backend + ":" + t.Device }

// DefaultBackendName is the backend assumed when a target or device is
// named without one — the paper's evaluation flow.
const DefaultBackendName = "vivado_hls"

// DefaultDeviceName is the profile DefaultConfig targets.
const DefaultDeviceName = "xcvu9p"

// DefaultTarget is the single target every pre-target-set call implies:
// the paper's evaluation platform under the default backend.
func DefaultTarget() Target {
	return Target{Backend: DefaultBackendName, Device: DefaultDeviceName}
}

// ParseTarget parses "backend:device" or a bare device name (which
// implies the backend owning that profile, preferring the default
// backend). The empty string is the default target.
func ParseTarget(s string) (Target, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return DefaultTarget(), nil
	}
	if b, d, ok := strings.Cut(s, ":"); ok {
		t := Target{Backend: strings.TrimSpace(b), Device: strings.TrimSpace(d)}
		if t.Backend == "" {
			t.Backend = DefaultBackendName
		}
		if t.Device == "" {
			t.Device = DefaultDeviceName
		}
		if _, _, err := ResolveTarget(t); err != nil {
			return Target{}, err
		}
		return t, nil
	}
	// Bare name: a backend alone selects its default (first) device; a
	// device alone selects the backend that ships it.
	if be, err := BackendByName(s); err == nil {
		devs := be.Devices()
		return Target{Backend: be.Name(), Device: devs[0].Name}, nil
	}
	be, prof, err := findDevice(s)
	if err != nil {
		return Target{}, err
	}
	return Target{Backend: be.Name(), Device: prof.Name}, nil
}

// ParseTargets parses a list of target specs, dropping duplicates while
// preserving first-occurrence order. An empty list parses to nil (the
// caller's legacy single-target path).
func ParseTargets(specs []string) ([]Target, error) {
	var out []Target
	seen := map[Target]bool{}
	for _, s := range specs {
		t, err := ParseTarget(s)
		if err != nil {
			return nil, err
		}
		if seen[t] {
			continue
		}
		seen[t] = true
		out = append(out, t)
	}
	return out, nil
}

// TargetSetString renders a target set canonically: "+"-joined
// "backend:device" forms in the given order. It is the value stamped
// into trace events (obs.Event.Target) for multi-target runs.
func TargetSetString(ts []Target) string {
	parts := make([]string, len(ts))
	for i, t := range ts {
		parts[i] = t.String()
	}
	return strings.Join(parts, "+")
}

// Capacity is a device's fabric resource envelope. It mirrors the
// simulator's Resources axes (hls cannot import hls/sim; sim.DeviceFor
// converts).
type Capacity struct {
	LUT  int
	FF   int
	DSP  int
	BRAM int // 18Kb blocks
}

// DeviceProfile describes one synthesizable part a backend can target.
type DeviceProfile struct {
	// Name is the short profile name used in targets, e.g. "zc706".
	Name string
	// Part is the full vendor part name, e.g. "xcvu9p-flgb2104-2-i".
	Part string
	// Cap is the fabric capacity the resource-fit gate enforces.
	Cap Capacity
	// ClockMHz is the kernel clock the profile closes timing at; the
	// simulator scales latency from the 250 MHz reference model.
	ClockMHz float64
}

// Backend is one simulated vendor HLS toolchain.
type Backend interface {
	// Name is the registry key, e.g. "vivado_hls".
	Name() string
	// Translate rewrites a diagnostic from the reference (Vivado-style)
	// dialect into this backend's dialect. It must be deterministic and
	// must preserve Class, Pos, and Subject.
	Translate(d Diagnostic) Diagnostic
	// ParseLog extracts diagnostics from toolchain console output in
	// this backend's dialect (the vivadolog-style parser hook).
	ParseLog(log string) []Diagnostic
	// StyleRules lists the pre-compilation style rules the backend's
	// frontend enforces, for reporting.
	StyleRules() []string
	// CompileCost is the backend's virtual cost of one full compilation
	// of a design with the given printed line count.
	CompileCost(lines int) VirtualCost
	// Devices lists the shipped device profiles, default first.
	Devices() []DeviceProfile
	// Device looks up a profile by short name or full part name.
	Device(name string) (DeviceProfile, bool)
}

// ---------------------------------------------------------------------------
// Registry

var backends = map[string]Backend{}

// RegisterBackend adds a backend under its Name; it panics on a
// duplicate (registration is an init-time, programmer-error surface).
func RegisterBackend(b Backend) {
	name := b.Name()
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("hls: backend %q registered twice", name))
	}
	if len(b.Devices()) == 0 {
		panic(fmt.Sprintf("hls: backend %q has no device profiles", name))
	}
	backends[name] = b
}

// BackendNames lists registered backends, sorted.
func BackendNames() []string {
	names := make([]string, 0, len(backends))
	for n := range backends {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// BackendByName resolves a registered backend, with an explicit error
// naming the known backends on a miss.
func BackendByName(name string) (Backend, error) {
	if b, ok := backends[name]; ok {
		return b, nil
	}
	return nil, fmt.Errorf("hls: unknown backend %q (known: %s)",
		name, strings.Join(BackendNames(), ", "))
}

// ResolveTarget resolves a target to its backend and device profile,
// with explicit errors for unknown backend or device names. An empty
// target resolves to DefaultTarget.
func ResolveTarget(t Target) (Backend, DeviceProfile, error) {
	if t == (Target{}) {
		t = DefaultTarget()
	}
	if t.Backend == "" {
		t.Backend = DefaultBackendName
	}
	b, err := BackendByName(t.Backend)
	if err != nil {
		return nil, DeviceProfile{}, err
	}
	if t.Device == "" {
		return b, b.Devices()[0], nil
	}
	p, ok := b.Device(t.Device)
	if !ok {
		known := make([]string, 0, len(b.Devices()))
		for _, d := range b.Devices() {
			known = append(known, d.Name)
		}
		return nil, DeviceProfile{}, fmt.Errorf(
			"hls: backend %q has no device profile %q (known: %s)",
			t.Backend, t.Device, strings.Join(known, ", "))
	}
	return b, p, nil
}

// ResolveTargets resolves every target in the set, failing on the first
// unknown name.
func ResolveTargets(ts []Target) error {
	for _, t := range ts {
		if _, _, err := ResolveTarget(t); err != nil {
			return err
		}
	}
	return nil
}

// DeviceProfileByName resolves a device by short name or full part name
// across all backends (default backend first, then sorted order), with
// an explicit error for unknown names. This is how legacy
// "-device xcvu9p-flgb2104-2-i"-style usage maps onto a profile.
func DeviceProfileByName(name string) (DeviceProfile, error) {
	_, p, err := findDevice(name)
	return p, err
}

// AllTargets enumerates every shipped (backend, device) pair, default
// backend first, then remaining backends sorted — the set `make
// target-smoke` sweeps.
func AllTargets() []Target {
	var out []Target
	for _, bn := range backendOrder() {
		for _, d := range backends[bn].Devices() {
			out = append(out, Target{Backend: bn, Device: d.Name})
		}
	}
	return out
}

// backendOrder is the deterministic lookup order: the default backend,
// then the rest sorted by name.
func backendOrder() []string {
	var order []string
	if _, ok := backends[DefaultBackendName]; ok {
		order = append(order, DefaultBackendName)
	}
	for _, n := range BackendNames() {
		if n != DefaultBackendName {
			order = append(order, n)
		}
	}
	return order
}

func findDevice(name string) (Backend, DeviceProfile, error) {
	for _, bn := range backendOrder() {
		if p, ok := backends[bn].Device(name); ok {
			return backends[bn], p, nil
		}
	}
	var known []string
	for _, bn := range backendOrder() {
		for _, d := range backends[bn].Devices() {
			known = append(known, d.Name)
		}
	}
	sort.Strings(known)
	known = dedupeSorted(known)
	return nil, DeviceProfile{}, fmt.Errorf("hls: unknown device profile %q (known: %s)",
		name, strings.Join(known, ", "))
}

func dedupeSorted(s []string) []string {
	out := s[:0]
	for i, v := range s {
		if i == 0 || v != s[i-1] {
			out = append(out, v)
		}
	}
	return out
}

// ConfigFor builds the toolchain configuration for one resolved target:
// the profile's part name and clock, with the given top function. For
// the default target it is exactly DefaultConfig.
func ConfigFor(top string, p DeviceProfile) Config {
	return Config{Top: top, Device: p.Part, ClockMHz: p.ClockMHz}
}

// ---------------------------------------------------------------------------
// Concrete backends

// baseBackend factors the device table shared by the concrete backends.
type baseBackend struct {
	name    string
	devices []DeviceProfile
}

func (b *baseBackend) Name() string             { return b.name }
func (b *baseBackend) Devices() []DeviceProfile { return append([]DeviceProfile(nil), b.devices...) }

func (b *baseBackend) Device(name string) (DeviceProfile, bool) {
	for _, d := range b.devices {
		if d.Name == name || d.Part == name {
			return d, true
		}
	}
	return DeviceProfile{}, false
}

// vivadoBackend is the reference toolchain: the dialect every internal
// diagnostic is already written in, the paper's cost model, and the
// evaluation parts.
type vivadoBackend struct{ baseBackend }

func (vivadoBackend) Translate(d Diagnostic) Diagnostic { return d }

func (vivadoBackend) ParseLog(log string) []Diagnostic { return ParseVivadoLog(log) }

func (vivadoBackend) StyleRules() []string {
	return []string{
		"no-dynamic-allocation", "no-recursion", "no-function-pointers",
		"no-unbounded-loops", "top-function-present",
	}
}

func (vivadoBackend) CompileCost(lines int) VirtualCost { return CompileCost(lines) }

// vitisBackend models the successor toolchain: same checker semantics,
// but diagnostics carry the unified "HLS" tool tag, and scheduling is
// slower on the larger default flow (a 20% heavier base compile).
type vitisBackend struct{ baseBackend }

// vitisTag rewrites the leading tool tag of a Vivado-dialect code
// ("XFORM 203-103" → "HLS 203-103"): Vitis folded the per-pass tags
// into one namespace while keeping the numeric identifiers.
var vitisTag = regexp.MustCompile(`^[A-Z]+`)

func (vitisBackend) Translate(d Diagnostic) Diagnostic {
	d.Code = vitisTag.ReplaceAllString(d.Code, "HLS")
	return d
}

func (b vitisBackend) ParseLog(log string) []Diagnostic {
	diags := ParseVivadoLog(log)
	for i := range diags {
		diags[i] = b.Translate(diags[i])
	}
	return diags
}

func (vitisBackend) StyleRules() []string {
	return []string{
		"no-dynamic-allocation", "no-recursion", "no-function-pointers",
		"no-unbounded-loops", "top-function-present", "extern-c-linkage",
	}
}

func (vitisBackend) CompileCost(lines int) VirtualCost {
	return CompileBaseSeconds*6/5 + VirtualCost(lines)*CompilePerLineSeconds
}

// xcvu9pCap is the Virtex UltraScale+ VU9P envelope (the paper's
// evaluation part on the VCU1525 board); sim.XCVU9P mirrors it.
var xcvu9pCap = Capacity{LUT: 1182240, FF: 2364480, DSP: 6840, BRAM: 4320}

func init() {
	RegisterBackend(&vivadoBackend{baseBackend{
		name: "vivado_hls",
		devices: []DeviceProfile{
			{Name: "xcvu9p", Part: "xcvu9p-flgb2104-2-i", Cap: xcvu9pCap, ClockMHz: 250},
			// zc706: the Zynq-7045 evaluation board — a small embedded
			// part that turns the capacity gate into a real constraint.
			{Name: "zc706", Part: "xc7z045-ffg900-2",
				Cap: Capacity{LUT: 218600, FF: 437200, DSP: 900, BRAM: 1090}, ClockMHz: 100},
		},
	}})
	RegisterBackend(&vitisBackend{baseBackend{
		name: "vitis",
		devices: []DeviceProfile{
			// aws_f1: the EC2 F1 shell exposes a VU9P-class fabric, minus
			// the shell's own footprint, at the same 250 MHz kernel clock.
			{Name: "aws_f1", Part: "xcvu9p-flgb2104-2-i-es1",
				Cap: Capacity{LUT: 1075200, FF: 2150400, DSP: 6100, BRAM: 3900}, ClockMHz: 250},
			{Name: "xcvu9p", Part: "xcvu9p-flgb2104-2-i", Cap: xcvu9pCap, ClockMHz: 250},
		},
	}})
}
