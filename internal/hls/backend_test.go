package hls

import (
	"strings"
	"testing"
)

func TestBackendRegistry(t *testing.T) {
	names := BackendNames()
	want := []string{"vitis", "vivado_hls"}
	if len(names) != len(want) {
		t.Fatalf("BackendNames = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("BackendNames = %v, want %v", names, want)
		}
	}
	if _, err := BackendByName("sdaccel"); err == nil {
		t.Fatal("unknown backend resolved")
	} else if !strings.Contains(err.Error(), "vivado_hls") {
		t.Errorf("unknown-backend error does not name known backends: %v", err)
	}
}

func TestParseTarget(t *testing.T) {
	cases := []struct {
		in   string
		want Target
	}{
		{"", DefaultTarget()},
		{"vivado_hls:xcvu9p", Target{"vivado_hls", "xcvu9p"}},
		{"vivado_hls:zc706", Target{"vivado_hls", "zc706"}},
		{"vitis:aws_f1", Target{"vitis", "aws_f1"}},
		// Bare device name: owning backend inferred, default backend first.
		{"zc706", Target{"vivado_hls", "zc706"}},
		{"xcvu9p", Target{"vivado_hls", "xcvu9p"}},
		{"aws_f1", Target{"vitis", "aws_f1"}},
		// Legacy full part name.
		{"xcvu9p-flgb2104-2-i", Target{"vivado_hls", "xcvu9p"}},
		// Bare backend name: its default device.
		{"vitis", Target{"vitis", "aws_f1"}},
	}
	for _, c := range cases {
		got, err := ParseTarget(c.in)
		if err != nil {
			t.Fatalf("ParseTarget(%q): %v", c.in, err)
		}
		if got != c.want {
			t.Errorf("ParseTarget(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"nope", "vivado_hls:nope", "sdaccel:aws_f1"} {
		if _, err := ParseTarget(bad); err == nil {
			t.Errorf("ParseTarget(%q) succeeded, want error", bad)
		}
	}
}

func TestParseTargetsDedupes(t *testing.T) {
	ts, err := ParseTargets([]string{"zc706", "vivado_hls:zc706", "vitis:aws_f1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d targets (%v), want 2", len(ts), ts)
	}
	if got := TargetSetString(ts); got != "vivado_hls:zc706+vitis:aws_f1" {
		t.Errorf("TargetSetString = %q", got)
	}
}

func TestResolveTarget(t *testing.T) {
	be, p, err := ResolveTarget(Target{})
	if err != nil {
		t.Fatal(err)
	}
	if be.Name() != DefaultBackendName || p.Name != DefaultDeviceName {
		t.Errorf("zero target resolved to %s:%s", be.Name(), p.Name)
	}
	if p.Part != "xcvu9p-flgb2104-2-i" || p.ClockMHz != 250 {
		t.Errorf("default profile = %+v", p)
	}
	cfg := ConfigFor("kernel", p)
	if cfg != DefaultConfig("kernel") {
		t.Errorf("ConfigFor(default) = %+v, want DefaultConfig", cfg)
	}
	if _, _, err := ResolveTarget(Target{Backend: "vivado_hls", Device: "aws_f1"}); err == nil {
		t.Error("vivado_hls:aws_f1 resolved, want unknown-device error")
	}
	if _, err := DeviceProfileByName("xc7z045-ffg900-2"); err != nil {
		t.Errorf("part-name lookup failed: %v", err)
	}
	if _, err := DeviceProfileByName("u250"); err == nil {
		t.Error("unknown device resolved")
	} else if !strings.Contains(err.Error(), "zc706") {
		t.Errorf("unknown-device error does not list profiles: %v", err)
	}
}

func TestVitisDialect(t *testing.T) {
	be, err := BackendByName("vitis")
	if err != nil {
		t.Fatal(err)
	}
	d := Diagnostic{Code: "XFORM 203-103", Message: "cannot synthesize", Class: ClassDynamicData, Subject: "p"}
	got := be.Translate(d)
	if got.Code != "HLS 203-103" {
		t.Errorf("Translate code = %q", got.Code)
	}
	if got.Class != d.Class || got.Subject != d.Subject || got.Message != d.Message {
		t.Errorf("Translate altered non-dialect fields: %+v", got)
	}
	diags := be.ParseLog("ERROR: [SYNCHK 91-61] unsupported pointer reinterpretation\n")
	if len(diags) != 1 || !strings.HasPrefix(diags[0].Code, "HLS ") {
		t.Errorf("ParseLog = %+v", diags)
	}

	viv, _ := BackendByName("vivado_hls")
	if viv.Translate(d) != d {
		t.Error("vivado_hls dialect must be the identity")
	}
	if viv.CompileCost(10) != CompileCost(10) {
		t.Error("vivado_hls compile cost must match the reference model")
	}
	if be.CompileCost(10) <= viv.CompileCost(10) {
		t.Error("vitis base compile should be heavier than vivado_hls")
	}
}

func TestAllTargets(t *testing.T) {
	ts := AllTargets()
	if len(ts) != 4 {
		t.Fatalf("AllTargets = %v, want 4 entries", ts)
	}
	if ts[0] != DefaultTarget() {
		t.Errorf("AllTargets[0] = %v, want default target first", ts[0])
	}
	if err := ResolveTargets(ts); err != nil {
		t.Fatal(err)
	}
}
