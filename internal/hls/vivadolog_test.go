package hls

import "testing"

const sampleLog = `
INFO: [HLS 200-10] Analyzing design file 'kernel.c' ...
WARNING: [HLS 200-40] Cannot find library.
ERROR: [XFORM 202-876] Synthesizability check failed: recursive functions are not supported ('traverse')
ERROR: [SYNCHK 200-61] unsupported memory access on variable 'curr' which is (or contains) an array with unknown size at compile time
ERROR: [SYNCHK 200-31] dynamic memory allocation/deallocation is not supported
INFO: [HLS 200-111] Finished.
`

func TestParseVivadoLog(t *testing.T) {
	diags := ParseVivadoLog(sampleLog)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	if diags[0].Code != "XFORM 202-876" {
		t.Errorf("code %q", diags[0].Code)
	}
	if diags[0].Subject != "traverse" {
		t.Errorf("subject %q", diags[0].Subject)
	}
	if diags[1].Subject != "curr" || diags[1].Code != "SYNCHK 200-61" {
		t.Errorf("second diag %+v", diags[1])
	}
	if diags[2].Subject != "" {
		t.Errorf("third diag should have no quoted subject: %+v", diags[2])
	}
}

func TestParseVivadoLogEmptyAndMalformed(t *testing.T) {
	if got := ParseVivadoLog(""); len(got) != 0 {
		t.Errorf("empty log: %v", got)
	}
	diags := ParseVivadoLog("ERROR: something unstructured happened")
	if len(diags) != 1 || diags[0].Code != "" {
		t.Errorf("unstructured error: %+v", diags)
	}
	if diags[0].Message != "something unstructured happened" {
		t.Errorf("message %q", diags[0].Message)
	}
}
