package hls

import (
	"strings"
	"testing"
)

const sampleLog = `
INFO: [HLS 200-10] Analyzing design file 'kernel.c' ...
WARNING: [HLS 200-40] Cannot find library.
ERROR: [XFORM 202-876] Synthesizability check failed: recursive functions are not supported ('traverse')
ERROR: [SYNCHK 200-61] unsupported memory access on variable 'curr' which is (or contains) an array with unknown size at compile time
ERROR: [SYNCHK 200-31] dynamic memory allocation/deallocation is not supported
INFO: [HLS 200-111] Finished.
`

func TestParseVivadoLog(t *testing.T) {
	diags := ParseVivadoLog(sampleLog)
	if len(diags) != 3 {
		t.Fatalf("got %d diagnostics, want 3: %v", len(diags), diags)
	}
	if diags[0].Code != "XFORM 202-876" {
		t.Errorf("code %q", diags[0].Code)
	}
	if diags[0].Subject != "traverse" {
		t.Errorf("subject %q", diags[0].Subject)
	}
	if diags[1].Subject != "curr" || diags[1].Code != "SYNCHK 200-61" {
		t.Errorf("second diag %+v", diags[1])
	}
	if diags[2].Subject != "" {
		t.Errorf("third diag should have no quoted subject: %+v", diags[2])
	}
}

func TestParseVivadoLogEmptyAndMalformed(t *testing.T) {
	if got := ParseVivadoLog(""); len(got) != 0 {
		t.Errorf("empty log: %v", got)
	}
	diags := ParseVivadoLog("ERROR: something unstructured happened")
	if len(diags) != 1 || diags[0].Code != "" {
		t.Errorf("unstructured error: %+v", diags)
	}
	if diags[0].Message != "something unstructured happened" {
		t.Errorf("message %q", diags[0].Message)
	}
}

// Malformed and truncated lines are skipped or degraded gracefully —
// never a panic, never an abort of the surrounding parse.
func TestParseVivadoLogTruncatedLines(t *testing.T) {
	cases := []struct {
		name string
		log  string
		want int // diagnostics expected
	}{
		{"bare ERROR prefix", "ERROR:", 0},
		{"ERROR with only spaces", "ERROR:    \n", 0},
		{"truncated mid-code", "ERROR: [XFORM 202-", 1}, // kept: message text, no code
		{"code with no closing bracket", "ERROR: [SYNCHK 200-61 unsupported 'x'", 1},
		{"bracket but non-code text", "ERROR: [hello world] broken", 1},
		{"missing severity", "[XFORM 202-876] recursive call to 'walk'", 0},
		{"lowercase severity", "error: [XFORM 202-876] recursive call", 0},
		{"interleaved binary junk", "ERROR: [SYNCHK 200-31] bad 'm'\n\x00\x01\x02\nERROR: [SYNCHK 200-41] bad 'p'", 2},
		{"windows line endings", "ERROR: [SYNCHK 200-31] alloc on 'm'\r\nERROR: [SYNCHK 200-41] ptr on 'p'\r\n", 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := ParseVivadoLog(tc.log) // must not panic
			if len(diags) != tc.want {
				t.Fatalf("got %d diagnostics, want %d: %+v", len(diags), tc.want, diags)
			}
			for _, d := range diags {
				if d.Message == "" {
					t.Errorf("kept a diagnostic with an empty message: %+v", d)
				}
			}
		})
	}
}

// Unknown codes pass through verbatim when well-shaped, and fold into
// the message when not — downstream classification is keyword-driven,
// not code-table-driven, so nothing is dropped either way.
func TestParseVivadoLogUnknownCode(t *testing.T) {
	diags := ParseVivadoLog("ERROR: [FUTURE 123-456] dynamic memory operation 'malloc'")
	if len(diags) != 1 || diags[0].Code != "FUTURE 123-456" {
		t.Fatalf("unknown-but-well-formed code: %+v", diags)
	}
	if diags[0].Subject != "malloc" {
		t.Errorf("subject = %q, want malloc", diags[0].Subject)
	}

	diags = ParseVivadoLog("ERROR: [NEWTOOL 999-1-alpha] some future diagnostic on 'v'")
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1", len(diags))
	}
	if d := diags[0]; d.Code != "" || !strings.Contains(d.Message, "NEWTOOL") || d.Subject != "v" {
		t.Errorf("odd-shaped tag: %+v", d)
	}
}

// An oversized line (beyond bufio.Scanner's 64K default) must not
// truncate the parse: later diagnostics still come through.
func TestParseVivadoLogLongLine(t *testing.T) {
	long := "INFO: " + strings.Repeat("x", 200*1024)
	log := "ERROR: [SYNCHK 200-31] before 'a'\n" + long + "\nERROR: [SYNCHK 200-41] after 'b'\n"
	diags := ParseVivadoLog(log)
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (long line swallowed the tail?)", len(diags))
	}
	if diags[1].Subject != "b" {
		t.Errorf("tail diagnostic = %+v", diags[1])
	}
}
