// Package stylecheck implements the lightweight coding-style validator —
// HeteroGen's stand-in for the "LLVM frontend for HLS" the paper uses to
// reject repair candidates before paying for a full HLS compilation.
//
// A style check costs hls.StyleCheckSeconds of virtual time versus minutes
// for a full compile, and it catches the structural mistakes candidate
// edits most often make: pragmas with malformed operands, pragmas whose
// referenced variable is not in scope, partition factors that cannot
// divide the array, unroll pragmas outside any loop, and dataflow pragmas
// below function level. Candidates that fail here are rejected without
// invoking the full toolchain (§5.3, "HLS Coding Style Validity").
package stylecheck

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
)

// Run style-checks the unit and returns the violations found.
func Run(u *cast.Unit, cfg hls.Config) hls.Report {
	s := &styler{unit: u, cfg: cfg}
	s.checkUnit()
	return hls.Report{Diags: s.diags, OK: len(s.diags) == 0}
}

type styler struct {
	unit  *cast.Unit
	cfg   hls.Config
	diags []hls.Diagnostic
}

func (s *styler) add(code, msg string, class hls.ErrorClass, subject string) {
	s.diags = append(s.diags, hls.Diagnostic{
		Code: code, Message: msg, Class: class, Subject: subject,
	})
}

func (s *styler) checkUnit() {
	for _, d := range s.unit.Decls {
		switch x := d.(type) {
		case *cast.FuncDecl:
			s.checkFunc(x)
		case *cast.PragmaDecl:
			dir := interp.ParsePragma(x.Text)
			if dir.IsHLS && dir.Kind != interp.PragmaTop {
				s.add("STYLE-1", fmt.Sprintf(
					"HLS pragma %q at file scope: directives must appear inside the function or loop they configure", x.Text),
					hls.ClassLoopParallel, x.Text)
			}
		case *cast.StructDecl:
			for _, m := range x.Methods {
				s.checkFunc(m)
			}
		}
	}
}

func (s *styler) checkFunc(fn *cast.FuncDecl) {
	if fn.Body == nil {
		return
	}
	sizes := s.arraySizes(fn)

	// Function-head pragmas: dataflow, interface, array_partition are
	// legal here; unroll and pipeline are loop-level directives.
	for _, p := range fn.Pragmas {
		d := interp.ParsePragma(p.Text)
		if !d.IsHLS {
			continue
		}
		switch d.Kind {
		case interp.PragmaUnroll:
			s.add("STYLE-2", fmt.Sprintf(
				"'#pragma HLS unroll' must appear within a loop body, not at the head of function '%s'", fn.Name),
				hls.ClassLoopParallel, fn.Name)
		case interp.PragmaPipeline:
			// Pipeline at function level is legal (function pipelining).
		case interp.PragmaArrayPartition:
			s.checkPartitionOperands(d, sizes, fn.Name)
		case interp.PragmaUnknown:
			s.add("STYLE-3", fmt.Sprintf(
				"unknown HLS directive %q in function '%s'", d.Raw, fn.Name),
				hls.ClassLoopParallel, fn.Name)
		}
	}

	// Loop pragmas and misplaced statement-position pragmas. Pragmas
	// attached to a loop (or the function head) are visited as children
	// by the walker too, so collect them first and skip them in the
	// statement-position case.
	attached := map[*cast.Pragma]bool{}
	for _, p := range fn.Pragmas {
		attached[p] = true
	}
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.For:
			for _, p := range x.Pragmas {
				attached[p] = true
			}
		case *cast.While:
			for _, p := range x.Pragmas {
				attached[p] = true
			}
		}
		return true
	})
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.For:
			s.checkLoopPragmas(x.Pragmas, sizes, fn.Name)
		case *cast.While:
			s.checkLoopPragmas(x.Pragmas, sizes, fn.Name)
		case *cast.Pragma:
			if attached[x] {
				return true
			}
			// A pragma surviving in plain statement position was not
			// attached to any loop or function head: misplaced.
			d := interp.ParsePragma(x.Text)
			if d.IsHLS {
				switch d.Kind {
				case interp.PragmaUnroll, interp.PragmaPipeline:
					s.add("STYLE-2", fmt.Sprintf(
						"'#pragma HLS %s' must appear as the first directive of a loop body", kindName(d.Kind)),
						hls.ClassLoopParallel, fn.Name)
				case interp.PragmaDataflow:
					s.add("STYLE-4",
						"'#pragma HLS dataflow' must appear at the head of a function body",
						hls.ClassDataflow, fn.Name)
				case interp.PragmaArrayPartition:
					s.checkPartitionOperands(d, sizes, fn.Name)
				}
			}
		}
		return true
	})
}

func (s *styler) checkLoopPragmas(pragmas []*cast.Pragma, sizes map[string]int, fnName string) {
	seen := map[interp.PragmaKind]bool{}
	for _, p := range pragmas {
		d := interp.ParsePragma(p.Text)
		if !d.IsHLS {
			continue
		}
		if seen[d.Kind] {
			s.add("STYLE-5", fmt.Sprintf(
				"duplicate '#pragma HLS %s' on the same loop", kindName(d.Kind)),
				hls.ClassLoopParallel, fnName)
		}
		seen[d.Kind] = true
		switch d.Kind {
		case interp.PragmaUnroll:
			if d.Factor < 0 {
				s.add("STYLE-6", "unroll factor must be positive",
					hls.ClassLoopParallel, fnName)
			}
		case interp.PragmaPipeline:
			if d.Factor < 0 {
				s.add("STYLE-6", "pipeline II must be positive",
					hls.ClassLoopParallel, fnName)
			}
		case interp.PragmaDataflow:
			s.add("STYLE-4",
				"'#pragma HLS dataflow' applies to function bodies, not loops",
				hls.ClassDataflow, fnName)
		case interp.PragmaArrayPartition:
			s.checkPartitionOperands(d, sizes, fnName)
		}
	}
}

func (s *styler) checkPartitionOperands(d interp.PragmaDirective, sizes map[string]int, fnName string) {
	switch d.PartitionType {
	case "", "cyclic", "block", "complete":
	default:
		s.add("STYLE-10", fmt.Sprintf(
			"array_partition type '%s' is not one of cyclic, block, complete", d.PartitionType),
			hls.ClassLoopParallel, fnName)
		return
	}
	if d.Variable == "" {
		s.add("STYLE-7", "array_partition requires variable=<name>",
			hls.ClassLoopParallel, fnName)
		return
	}
	size, ok := sizes[d.Variable]
	if !ok {
		s.add("STYLE-8", fmt.Sprintf(
			"array_partition names '%s', which is not an array in scope of '%s'", d.Variable, fnName),
			hls.ClassLoopParallel, d.Variable)
		return
	}
	if d.PartitionType == "complete" {
		return // complete partition ignores the factor
	}
	if d.Factor > 0 && size%d.Factor != 0 {
		s.add("STYLE-9", fmt.Sprintf(
			"array '%s' of size %d cannot be partitioned by factor %d", d.Variable, size, d.Factor),
			hls.ClassLoopParallel, d.Variable)
	}
}

func (s *styler) arraySizes(fn *cast.FuncDecl) map[string]int {
	out := map[string]int{}
	record := func(name string, t ctypes.Type) {
		if arr, ok := ctypes.Resolve(t).(ctypes.Array); ok && arr.Len > 0 {
			out[name] = arr.Len
		}
	}
	for _, d := range s.unit.Decls {
		if v, ok := d.(*cast.VarDecl); ok {
			record(v.Name, v.Type)
		}
	}
	for _, p := range fn.Params {
		record(p.Name, p.Type)
	}
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok {
			record(d.Name, d.Type)
		}
		return true
	})
	return out
}

func kindName(k interp.PragmaKind) string {
	switch k {
	case interp.PragmaUnroll:
		return "unroll"
	case interp.PragmaPipeline:
		return "pipeline"
	case interp.PragmaDataflow:
		return "dataflow"
	case interp.PragmaArrayPartition:
		return "array_partition"
	}
	return "directive"
}
