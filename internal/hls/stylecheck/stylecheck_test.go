package stylecheck

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/hls"
)

func runStyle(t *testing.T, src string) hls.Report {
	t.Helper()
	u := cparser.MustParse(src)
	return Run(u, hls.DefaultConfig("kernel"))
}

func TestCleanStylePasses(t *testing.T) {
	r := runStyle(t, `
void kernel(int a[16], int b[16]) {
#pragma HLS array_partition variable=a factor=4
    for (int i = 0; i < 16; i++) {
#pragma HLS unroll factor=4
#pragma HLS pipeline II=1
        b[i] = a[i];
    }
}`)
	if !r.OK {
		t.Errorf("clean style rejected: %v", r.Diags)
	}
}

func TestUnrollAtFunctionHeadRejected(t *testing.T) {
	r := runStyle(t, `
void kernel(int a[16]) {
#pragma HLS unroll factor=4
    a[0] = 1;
}`)
	if r.OK {
		t.Fatal("unroll at function head should fail style check")
	}
	if !strings.Contains(r.Diags[0].Message, "within a loop body") {
		t.Errorf("message %q", r.Diags[0].Message)
	}
}

func TestUnrollInPlainStatementPositionRejected(t *testing.T) {
	r := runStyle(t, `
void kernel(int a[16]) {
    a[0] = 1;
#pragma HLS unroll factor=2
    a[1] = 2;
}`)
	if r.OK {
		t.Fatal("floating unroll pragma should fail style check")
	}
}

func TestDataflowOnLoopRejected(t *testing.T) {
	r := runStyle(t, `
void kernel(int a[8], int b[8]) {
    for (int i = 0; i < 8; i++) {
#pragma HLS dataflow
        b[i] = a[i];
    }
}`)
	if r.OK {
		t.Fatal("dataflow on a loop should fail style check")
	}
}

func TestPartitionUnknownVariableRejected(t *testing.T) {
	r := runStyle(t, `
void kernel(int a[16]) {
#pragma HLS array_partition variable=nosuch factor=2
    a[0] = 1;
}`)
	if r.OK {
		t.Fatal("partition of unknown array should fail")
	}
	if !strings.Contains(r.Diags[0].Message, "nosuch") {
		t.Errorf("message should name the variable: %q", r.Diags[0].Message)
	}
}

func TestPartitionBadFactorRejected(t *testing.T) {
	r := runStyle(t, `
void kernel(int x) {
    int A[13];
#pragma HLS array_partition variable=A factor=4
    A[0] = x;
}`)
	if r.OK {
		t.Fatal("13 % 4 != 0 should fail style check")
	}
}

func TestDuplicateLoopPragmaRejected(t *testing.T) {
	r := runStyle(t, `
void kernel(int a[8], int b[8]) {
    for (int i = 0; i < 8; i++) {
#pragma HLS unroll factor=2
#pragma HLS unroll factor=4
        b[i] = a[i];
    }
}`)
	if r.OK {
		t.Fatal("duplicate unroll should fail style check")
	}
}

func TestUnknownDirectiveRejected(t *testing.T) {
	r := runStyle(t, `
void kernel(int a[8]) {
#pragma HLS frobnicate hard
    a[0] = 1;
}`)
	if r.OK {
		t.Fatal("unknown directive should fail style check")
	}
}

func TestNonHLSPragmasIgnored(t *testing.T) {
	r := runStyle(t, `
void kernel(int a[8]) {
#pragma once
    a[0] = 1;
}`)
	if !r.OK {
		t.Errorf("non-HLS pragma should be ignored: %v", r.Diags)
	}
}

func TestStructMethodsStyled(t *testing.T) {
	r := runStyle(t, `
struct W {
    int buf[8];
    void go() {
#pragma HLS unroll factor=2
        buf[0] = 1;
    }
};
void kernel() { }`)
	if r.OK {
		t.Fatal("unroll at method head should fail style check")
	}
}
