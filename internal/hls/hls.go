// Package hls defines the shared vocabulary of the simulated HLS
// toolchain: diagnostics in the style of Vivado HLS, the six
// compatibility-error classes identified by the paper's forum study
// (§5.1), and the toolchain configuration (top function, target device).
//
// The concrete tools live in subpackages: check (full synthesizability
// checking), stylecheck (the lightweight pre-compilation validator), and
// sim (FPGA-semantics execution with a pragma-aware cycle model).
package hls

import (
	"fmt"

	"github.com/hetero/heterogen/internal/ctoken"
)

// ErrorClass is one of the six HLS compatibility error types of §5.1.
type ErrorClass int

// The six error classes, in the order of the paper's Table 1.
const (
	ClassNone ErrorClass = iota
	ClassDynamicData
	ClassUnsupportedType
	ClassDataflow
	ClassLoopParallel
	ClassStructUnion
	ClassTopFunction
)

var classNames = map[ErrorClass]string{
	ClassNone:            "none",
	ClassDynamicData:     "Dynamic Data Structures",
	ClassUnsupportedType: "Unsupported Data Types",
	ClassDataflow:        "Dataflow Optimization",
	ClassLoopParallel:    "Loop Parallelization",
	ClassStructUnion:     "Struct and Union",
	ClassTopFunction:     "Top Function",
}

// String returns the paper's name for the class.
func (c ErrorClass) String() string {
	if s, ok := classNames[c]; ok {
		return s
	}
	return fmt.Sprintf("ErrorClass(%d)", int(c))
}

// AllClasses lists the six real classes (excluding ClassNone).
func AllClasses() []ErrorClass {
	return []ErrorClass{
		ClassDynamicData, ClassUnsupportedType, ClassDataflow,
		ClassLoopParallel, ClassStructUnion, ClassTopFunction,
	}
}

// Diagnostic is one toolchain message, formatted like Vivado HLS output
// (e.g. "ERROR: [XFORM 202-876] Synthesizability check failed: ...").
type Diagnostic struct {
	Code    string // e.g. "XFORM 202-876"
	Message string
	Pos     ctoken.Pos
	Class   ErrorClass
	// Subject names the offending entity (function, variable, array).
	Subject string
}

// Error renders the diagnostic in Vivado style.
func (d Diagnostic) Error() string {
	return fmt.Sprintf("ERROR: [%s] %s", d.Code, d.Message)
}

// Config is the toolchain configuration.
type Config struct {
	// Top is the design's top function (module entry point).
	Top string
	// Device is the target part name (reporting only).
	Device string
	// ClockMHz is the requested kernel clock.
	ClockMHz float64
	// InterpSteps bounds each interpreter-backed execution (CPU
	// reference runs and FPGA simulations in the differential test); 0
	// keeps the interpreter's default budget. Exhaustion surfaces as an
	// inconclusive(timeout) differential-test verdict, never as a
	// behaviour mismatch.
	InterpSteps int64
}

// DefaultConfig targets the evaluation platform of the paper.
func DefaultConfig(top string) Config {
	return Config{Top: top, Device: "xcvu9p-flgb2104-2-i", ClockMHz: 250}
}

// Report is the result of a toolchain run.
type Report struct {
	Diags []Diagnostic
	// OK reports whether synthesis would proceed (no diagnostics).
	OK bool
}

// ByClass groups diagnostics by error class.
func (r Report) ByClass() map[ErrorClass][]Diagnostic {
	out := map[ErrorClass][]Diagnostic{}
	for _, d := range r.Diags {
		out[d.Class] = append(out[d.Class], d)
	}
	return out
}

// HasClass reports whether any diagnostic has the given class.
func (r Report) HasClass(c ErrorClass) bool {
	for _, d := range r.Diags {
		if d.Class == c {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Simulated toolchain latency
//
// Compiling an HLS design takes minutes to hours; checking coding style
// with an LLVM frontend takes well under a second. The repair engine
// tracks this as virtual time so the ablation experiments (Figure 9)
// reproduce deterministically without actually sleeping.

// VirtualCost is simulated wall-clock seconds for one toolchain action.
type VirtualCost float64

// Virtual latencies, in seconds. Full HLS compilation scales with design
// size; the style check is effectively free by comparison.
const (
	// StyleCheckSeconds is the cost of one lightweight frontend pass.
	StyleCheckSeconds VirtualCost = 0.8
	// CompileBaseSeconds is the fixed cost of HLS scheduling, binding and
	// RTL generation for a trivial design.
	CompileBaseSeconds VirtualCost = 50
	// CompilePerLineSeconds scales compilation with kernel size.
	CompilePerLineSeconds VirtualCost = 0.5
	// SimPerTestSeconds is the cost of simulating one test vector.
	SimPerTestSeconds VirtualCost = 0.05
)

// CompileCost returns the virtual cost of fully compiling a design with
// the given printed line count.
func CompileCost(lines int) VirtualCost {
	return CompileBaseSeconds + VirtualCost(lines)*CompilePerLineSeconds
}
