package sim

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
)

func TestCheckCapacityFitsAndOverflows(t *testing.T) {
	small := Device{Name: "tiny", Cap: Resources{LUT: 100, FF: 100, DSP: 2, BRAM: 2}}
	fits := Resources{LUT: 50, FF: 80, DSP: 1, BRAM: 1}
	ok, over := CheckCapacity(fits, small)
	if !ok || len(over) != 0 {
		t.Errorf("fit: %v %v", ok, over)
	}
	big := Resources{LUT: 500, FF: 80, DSP: 5, BRAM: 1}
	ok, over = CheckCapacity(big, small)
	if ok {
		t.Fatal("overflow not detected")
	}
	joined := strings.Join(over, ",")
	if !strings.Contains(joined, "LUT") || !strings.Contains(joined, "DSP") {
		t.Errorf("over-utilized set %v", over)
	}
}

func TestSubjectsFitTheEvaluationDevice(t *testing.T) {
	u := cparser.MustParse(`
int big[4096];
void kernel(int a[1024], int b[1024]) {
#pragma HLS array_partition variable=a factor=16
    for (int i = 0; i < 1024; i++) {
        b[i] = a[i] * big[i % 4096];
    }
}`)
	r := Estimate(u)
	ok, over := CheckCapacity(r, XCVU9P)
	if !ok {
		t.Errorf("realistic kernel should fit the VU9P: over %v (%s)", over, r)
	}
}

func TestUtilizationRendering(t *testing.T) {
	s := Utilization(Resources{LUT: 118224, FF: 0, DSP: 684, BRAM: 432}, XCVU9P)
	if !strings.Contains(s, "LUT 10.0%") || !strings.Contains(s, "DSP 10.0%") {
		t.Errorf("utilization %q", s)
	}
}
