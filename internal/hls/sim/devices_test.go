package sim

import (
	"math"
	"testing"

	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
)

// The default profile must mirror XCVU9P exactly: legacy single-target
// runs gate against the identical capacity table.
func TestDefaultProfileMirrorsXCVU9P(t *testing.T) {
	_, p, err := hls.ResolveTarget(hls.DefaultTarget())
	if err != nil {
		t.Fatal(err)
	}
	if d := DeviceFor(p); d != XCVU9P {
		t.Errorf("DeviceFor(default) = %+v, want XCVU9P %+v", d, XCVU9P)
	}
}

func TestScaleLatencyMS(t *testing.T) {
	base := interp.FPGATimeMS(250_000) // 1ms fabric + invoke overhead
	_, def, _ := hls.ResolveTarget(hls.DefaultTarget())
	if got := ScaleLatencyMS(base, def); got != base {
		t.Errorf("250MHz scaling must be the identity: %v != %v", got, base)
	}
	_, zc706, err := hls.ResolveTarget(hls.Target{Backend: "vivado_hls", Device: "zc706"})
	if err != nil {
		t.Fatal(err)
	}
	got := ScaleLatencyMS(base, zc706)
	overhead := interp.FPGAInvokeOverheadUS / 1e3
	want := (base-overhead)*2.5 + overhead
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("ScaleLatencyMS(zc706) = %v, want %v", got, want)
	}
	if got <= base {
		t.Error("a 100MHz part must be slower than the 250MHz reference")
	}
}
