package sim

import (
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
)

func TestSimulatorRunsKernel(t *testing.T) {
	u := cparser.MustParse(`
int kernel(int x) { return x * x + 1; }`)
	s, err := New(u, hls.DefaultConfig("kernel"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run([]interp.Value{interp.IntValue(6)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ret.AsInt() != 37 {
		t.Errorf("ret %d", res.Ret.AsInt())
	}
	if res.Cycles <= 0 {
		t.Error("cycles should be positive")
	}
	if res.LatencyMS <= 0 {
		t.Error("latency should be positive")
	}
}

func TestLatencyIncludesInvocationOverhead(t *testing.T) {
	u := cparser.MustParse(`int kernel() { return 1; }`)
	s, _ := New(u, hls.DefaultConfig("kernel"))
	res, err := s.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyMS < interp.FPGAInvokeOverheadUS/1e3 {
		t.Errorf("latency %f ms should include %f us overhead",
			res.LatencyMS, interp.FPGAInvokeOverheadUS)
	}
}

// runLoopKernel runs a two-array loop kernel and reports its cycle count.
func runLoopKernel(t *testing.T, u *cast.Unit) int64 {
	t.Helper()
	s, err := New(u, hls.DefaultConfig("kernel"))
	if err != nil {
		t.Fatal(err)
	}
	a := interp.NewArrayObject("a", ctypes.IntT, make([]interp.Value, 64))
	b := interp.NewArrayObject("b", ctypes.IntT, make([]interp.Value, 64))
	res, err := s.Run([]interp.Value{a, b})
	if err != nil {
		t.Fatal(err)
	}
	return res.Cycles
}

func TestPragmasReduceLatency(t *testing.T) {
	plain := cparser.MustParse(`
void kernel(int a[64], int b[64]) {
    for (int i = 0; i < 64; i++) { b[i] = a[i] * 3; }
}`)
	tuned := cparser.MustParse(`
void kernel(int a[64], int b[64]) {
#pragma HLS array_partition variable=a factor=8
#pragma HLS array_partition variable=b factor=8
    for (int i = 0; i < 64; i++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=8
        b[i] = a[i] * 3;
    }
}`)
	cp := runLoopKernel(t, plain)
	ct := runLoopKernel(t, tuned)
	if ct*4 > cp {
		t.Errorf("tuned kernel should be much faster: plain=%d tuned=%d", cp, ct)
	}
}

func TestUnrollWithoutPartitionIsPortLimited(t *testing.T) {
	unpartitioned := cparser.MustParse(`
void kernel(int a[64], int b[64]) {
    for (int i = 0; i < 64; i++) {
#pragma HLS unroll factor=8
        b[i] = a[i] * 3;
    }
}`)
	partitioned := cparser.MustParse(`
void kernel(int a[64], int b[64]) {
#pragma HLS array_partition variable=a factor=8
#pragma HLS array_partition variable=b factor=8
    for (int i = 0; i < 64; i++) {
#pragma HLS unroll factor=8
        b[i] = a[i] * 3;
    }
}`)
	cu := runLoopKernel(t, unpartitioned)
	cp := runLoopKernel(t, partitioned)
	if cp >= cu {
		t.Errorf("partitioning should unlock unroll speedup: unpart=%d part=%d", cu, cp)
	}
}

func TestResourceEstimateMonotonicInBitwidth(t *testing.T) {
	wide := cparser.MustParse(`
int kernel(int x) {
    int a;
    int b;
    a = x;
    b = a * 2;
    return b;
}`)
	narrow := cparser.MustParse(`
int kernel(int x) {
    fpga_uint<7> a;
    fpga_uint<8> b;
    a = x;
    b = a * 2;
    return b;
}`)
	rw := Estimate(wide)
	rn := Estimate(narrow)
	if rn.FF >= rw.FF {
		t.Errorf("narrow design should use fewer FFs: wide=%d narrow=%d", rw.FF, rn.FF)
	}
}

func TestResourceEstimateCountsArraysAndDSP(t *testing.T) {
	u := cparser.MustParse(`
int big[4096];
int kernel(int x) {
    return x * x;
}`)
	r := Estimate(u)
	if r.BRAM < 4096*32/(18*1024) {
		t.Errorf("BRAM estimate too small: %v", r)
	}
	if r.DSP < 1 {
		t.Errorf("multiplication should cost DSP: %v", r)
	}
}

func TestPartitionMultipliesBRAM(t *testing.T) {
	mono := cparser.MustParse(`
int buf[1024];
void kernel(int x) { buf[0] = x; }`)
	parted := cparser.MustParse(`
int buf[1024];
void kernel(int x) {
#pragma HLS array_partition variable=buf factor=4
    buf[0] = x;
}`)
	rm := Estimate(mono)
	rp := Estimate(parted)
	if rp.BRAM <= rm.BRAM {
		t.Errorf("partitioned array should use more BRAM banks: %d vs %d", rm.BRAM, rp.BRAM)
	}
}

func TestSimulatorFaultsOnMalloc(t *testing.T) {
	u := cparser.MustParse(`
int kernel(int n) {
    int *p = (int *)malloc(n);
    return 0;
}`)
	s, _ := New(u, hls.DefaultConfig("kernel"))
	if _, err := s.Run([]interp.Value{interp.IntValue(8)}); err == nil {
		t.Error("malloc must fault on the fabric")
	}
}

func TestResetClearsGlobals(t *testing.T) {
	u := cparser.MustParse(`
int g;
int kernel() { g++; return g; }`)
	s, _ := New(u, hls.DefaultConfig("kernel"))
	r1, _ := s.Run(nil)
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	r2, _ := s.Run(nil)
	if r1.Ret.AsInt() != 1 || r2.Ret.AsInt() != 1 {
		t.Errorf("reset should clear globals: %d then %d", r1.Ret.AsInt(), r2.Ret.AsInt())
	}
}
