package sim

import (
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
)

// DeviceFor converts a registered device profile into the simulator's
// capacity form, so the resource-fit gate runs against the profile the
// target named instead of a hard-coded part.
func DeviceFor(p hls.DeviceProfile) Device {
	return Device{
		Name: p.Part,
		Cap:  Resources{LUT: p.Cap.LUT, FF: p.Cap.FF, DSP: p.Cap.DSP, BRAM: p.Cap.BRAM},
	}
}

// ScaleLatencyMS retargets a simulated kernel latency from the 250 MHz
// reference clock (interp.FPGATimeMS) to the profile's clock: the cycle
// count is clock-invariant, so the fabric portion scales inversely with
// frequency while the host invocation overhead stays fixed.
func ScaleLatencyMS(baseMS float64, p hls.DeviceProfile) float64 {
	if p.ClockMHz <= 0 || p.ClockMHz == interp.FPGAMHz {
		return baseMS
	}
	overhead := interp.FPGAInvokeOverheadUS / 1e3
	fabric := baseMS - overhead
	if fabric < 0 {
		fabric = 0
	}
	return fabric*(interp.FPGAMHz/p.ClockMHz) + overhead
}
