// Package sim is the FPGA simulator of the toolchain: it executes an
// HLS-C design with fabric semantics (fixed-bitwidth arithmetic, no
// dynamic allocation, bounded call depth), reports simulated kernel
// latency from the interpreter's pragma-aware cycle model, and estimates
// fabric resource usage (LUT/FF/DSP/BRAM) from the design's declarations.
//
// Latency is what the paper's Table 5 "Runtime" columns report, and the
// resource estimate quantifies the benefit of bitwidth finitization.
package sim

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
)

// Simulator runs a compiled design.
type Simulator struct {
	unit *cast.Unit
	cfg  hls.Config
	in   *interp.Interp
}

// New prepares a simulator for the design. The unit should already have
// passed the synthesizability check; runtime faults (allocation, deep
// recursion) still surface as errors.
func New(u *cast.Unit, cfg hls.Config) (*Simulator, error) {
	return NewWithCode(u, cfg, nil, "")
}

// NewWithCode is New with a shared compiled-code cache: function bodies
// execute as direct-threaded bytecode compiled once per *cast.FuncDecl,
// so repeated simulations of candidates that share unedited functions
// (structure-sharing repair clones) skip re-walking their trees. A
// non-empty codeKey additionally enables content-keyed reuse across
// identical candidates regenerated with fresh declarations (see the
// interp.Codebase CodeKey contract). The interpreter guarantees results
// identical to the tree walker; nil code is the plain tree-walking New.
func NewWithCode(u *cast.Unit, cfg hls.Config, code *interp.Codebase, codeKey string) (*Simulator, error) {
	in, err := interp.New(u, interp.Options{Mode: interp.FPGA, MaxSteps: cfg.InterpSteps, Code: code, CodeKey: codeKey})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	return &Simulator{unit: u, cfg: cfg, in: in}, nil
}

// RunResult is one kernel invocation's outcome.
type RunResult struct {
	Ret       interp.Value
	Cycles    int64
	LatencyMS float64
	Output    string
}

// Run invokes the top function with the given arguments.
func (s *Simulator) Run(args []interp.Value) (RunResult, error) {
	res, err := s.in.CallKernel(s.cfg.Top, args)
	if err != nil {
		return RunResult{}, err
	}
	return RunResult{
		Ret:       res.Ret,
		Cycles:    res.Cost,
		LatencyMS: interp.FPGATimeMS(res.Cost),
		Output:    res.Output,
	}, nil
}

// Reset clears globals between independent test vectors.
func (s *Simulator) Reset() error { return s.in.Reset() }

// ---------------------------------------------------------------------------
// Resource estimation

// Resources is a fabric utilization estimate.
type Resources struct {
	LUT  int
	FF   int
	DSP  int
	BRAM int // 18Kb blocks
}

// Add accumulates another estimate.
func (r *Resources) Add(o Resources) {
	r.LUT += o.LUT
	r.FF += o.FF
	r.DSP += o.DSP
	r.BRAM += o.BRAM
}

// String renders the estimate.
func (r Resources) String() string {
	return fmt.Sprintf("LUT=%d FF=%d DSP=%d BRAM=%d", r.LUT, r.FF, r.DSP, r.BRAM)
}

// Device is a fabric capacity profile.
type Device struct {
	Name string
	Cap  Resources
}

// XCVU9P is the evaluation platform's part (Virtex UltraScale+ on the
// VCU1525 board).
var XCVU9P = Device{
	Name: "xcvu9p-flgb2104-2-i",
	Cap:  Resources{LUT: 1182240, FF: 2364480, DSP: 6840, BRAM: 4320},
}

// CheckCapacity reports whether the design's estimate fits the device,
// returning the over-utilized resource names.
func CheckCapacity(r Resources, d Device) (bool, []string) {
	var over []string
	if r.LUT > d.Cap.LUT {
		over = append(over, "LUT")
	}
	if r.FF > d.Cap.FF {
		over = append(over, "FF")
	}
	if r.DSP > d.Cap.DSP {
		over = append(over, "DSP")
	}
	if r.BRAM > d.Cap.BRAM {
		over = append(over, "BRAM")
	}
	return len(over) == 0, over
}

// Utilization renders the estimate as percentages of the device.
func Utilization(r Resources, d Device) string {
	pct := func(used, cap int) float64 {
		if cap == 0 {
			return 0
		}
		return 100 * float64(used) / float64(cap)
	}
	return fmt.Sprintf("LUT %.1f%% FF %.1f%% DSP %.1f%% BRAM %.1f%%",
		pct(r.LUT, d.Cap.LUT), pct(r.FF, d.Cap.FF),
		pct(r.DSP, d.Cap.DSP), pct(r.BRAM, d.Cap.BRAM))
}

// Estimate walks the design and derives a resource estimate:
//
//   - every scalar register costs FF equal to its bit width and LUTs for
//     its datapath (about half the width);
//   - arrays cost BRAM blocks of 18Kb each (partitioning multiplies block
//     count by the factor since each bank needs its own ports);
//   - every multiplication of width >10 bits maps to a DSP48;
//   - floating-point operators cost bundles of LUT+DSP.
//
// The absolute numbers are synthetic, but the estimate is monotonic in
// bitwidths and array sizes, which is the property the bitwidth-
// finitization experiments need.
func Estimate(u *cast.Unit) Resources {
	var r Resources
	addScalar := func(bits int) {
		r.FF += bits
		r.LUT += (bits + 1) / 2
	}
	addArray := func(totalBits, partitions int) {
		if partitions < 1 {
			partitions = 1
		}
		blocks := (totalBits + 18*1024 - 1) / (18 * 1024)
		if blocks < 1 {
			blocks = 1
		}
		r.BRAM += blocks * partitions
	}

	partitions := map[string]int{}
	cast.Inspect(u, func(n cast.Node) bool {
		if p, ok := n.(*cast.Pragma); ok {
			d := interp.ParsePragma(p.Text)
			if d.Kind == interp.PragmaArrayPartition && d.Variable != "" {
				f := d.Factor
				if f <= 0 {
					f = 4
				}
				partitions[d.Variable] = f
			}
		}
		return true
	})
	for _, d := range u.Decls {
		if f, ok := d.(*cast.FuncDecl); ok {
			for _, p := range f.Pragmas {
				dir := interp.ParsePragma(p.Text)
				if dir.Kind == interp.PragmaArrayPartition && dir.Variable != "" {
					fac := dir.Factor
					if fac <= 0 {
						fac = 4
					}
					partitions[dir.Variable] = fac
				}
			}
		}
	}

	seenDecl := func(name string, t ctypes.Type) {
		rt := ctypes.Resolve(t)
		switch x := rt.(type) {
		case ctypes.Array:
			bits := x.Bits()
			if bits <= 0 {
				bits = 32 * 64 // unknown size: charge a default buffer
			}
			addArray(bits, partitions[name])
		case *ctypes.Struct:
			addScalar(x.Bits())
		default:
			b := rt.Bits()
			if b > 0 {
				addScalar(b)
			}
		}
	}

	cast.Inspect(u, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.VarDecl:
			seenDecl(x.Name, x.Type)
		case *cast.DeclStmt:
			seenDecl(x.Name, x.Type)
		case *cast.Binary:
			switch x.Op {
			case ctoken.MUL:
				r.DSP++
			case ctoken.QUO, ctoken.REM:
				r.DSP += 2
				r.LUT += 150
			}
		}
		return true
	})

	// Floating point usage adds operator bundles.
	floats := 0
	cast.Inspect(u, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok {
			if ctypes.IsFloat(d.Type) {
				floats++
			}
		}
		return true
	})
	r.LUT += floats * 120
	r.DSP += floats

	return r
}
