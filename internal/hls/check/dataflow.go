package check

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
)

// ---------------------------------------------------------------------------
// Dataflow optimization
//
// Inside a "#pragma HLS dataflow" region, every buffer must obey the
// single-producer single-consumer rule: the same array argument feeding two
// process calls fails dataflow checking (the paper's post 595161).

func (c *checker) checkDataflow() {
	for _, fn := range c.unit.Funcs() {
		if fn.Body == nil || !hasDataflowPragma(fn) {
			continue
		}
		consumers := map[string]int{}
		for _, s := range fn.Body.Stmts {
			es, ok := s.(*cast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*cast.Call)
			if !ok {
				continue
			}
			for _, a := range call.Args {
				if id, ok := a.(*cast.Ident); ok {
					consumers[id.Name]++
				}
			}
		}
		for name, n := range consumers {
			if n > 1 && c.isBufferName(fn, name) {
				c.add(hls.Diagnostic{
					Code: "XFORM 202-712",
					Message: fmt.Sprintf(
						"Argument '%s' failed dataflow checking: a buffer may only be consumed by one process in a dataflow region (used by %d)", name, n),
					Pos:     fn.P,
					Class:   hls.ClassDataflow,
					Subject: name,
				})
			}
		}
	}
}

// isBufferName reports whether name is an array-typed local or parameter
// of fn (streams are exempt: they are the intended dataflow channels).
func (c *checker) isBufferName(fn *cast.FuncDecl, name string) bool {
	for _, p := range fn.Params {
		if p.Name == name {
			rt := ctypes.Resolve(p.Type)
			switch rt.(type) {
			case ctypes.Array, ctypes.Pointer:
				return true
			}
			return false
		}
	}
	found := false
	cast.Inspect(fn, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok && d.Name == name {
			if _, isArr := ctypes.Resolve(d.Type).(ctypes.Array); isArr {
				found = true
			}
		}
		return true
	})
	return found
}

// ---------------------------------------------------------------------------
// Loop parallelization
//
// array_partition factors must divide the array size (XFORM 202-711,
// post 729976's sibling); an unroll factor of 50+ combined with an
// enclosing dataflow region fails pre-synthesis (post 721719); unroll
// factors must not exceed a knowable trip count.

func (c *checker) checkLoops() {
	for _, fn := range c.unit.Funcs() {
		if fn.Body == nil {
			continue
		}
		dataflow := hasDataflowPragma(fn)
		sizes := c.arraySizes(fn)

		for _, p := range fn.Pragmas {
			d := interp.ParsePragma(p.Text)
			if d.Kind == interp.PragmaArrayPartition {
				c.checkPartition(d, sizes, p)
			}
		}

		// Pragmas attached to loops or the function head reappear as child
		// nodes during the walk; skip them in the statement-position case.
		attached := map[*cast.Pragma]bool{}
		for _, p := range fn.Pragmas {
			attached[p] = true
		}
		cast.Inspect(fn, func(n cast.Node) bool {
			switch l := n.(type) {
			case *cast.For:
				for _, p := range l.Pragmas {
					attached[p] = true
				}
			case *cast.While:
				for _, p := range l.Pragmas {
					attached[p] = true
				}
			}
			return true
		})

		cast.Inspect(fn, func(n cast.Node) bool {
			var pragmas []*cast.Pragma
			var trip int
			switch l := n.(type) {
			case *cast.For:
				pragmas = l.Pragmas
				trip = staticTripCount(l)
			case *cast.While:
				pragmas = l.Pragmas
				trip = -1
			case *cast.Pragma:
				// Statement-position pragmas (e.g. array_partition right
				// after the array declaration) are checked in place.
				if attached[l] {
					return true
				}
				d := interp.ParsePragma(l.Text)
				if d.Kind == interp.PragmaArrayPartition {
					c.checkPartition(d, sizes, l)
				}
				return true
			default:
				return true
			}
			for _, p := range pragmas {
				d := interp.ParsePragma(p.Text)
				switch d.Kind {
				case interp.PragmaUnroll:
					if d.Factor >= 50 && dataflow {
						c.add(hls.Diagnostic{
							Code: "HLS 200-70",
							Message: fmt.Sprintf(
								"Pre-synthesis failed: unroll factor %d interacts with the enclosing dataflow region; set an explicit tripcount and reduce the factor", d.Factor),
							Pos:     p.P,
							Class:   hls.ClassLoopParallel,
							Subject: "unroll",
						})
					}
					if trip > 0 && d.Factor > trip {
						c.add(hls.Diagnostic{
							Code: "XFORM 202-805",
							Message: fmt.Sprintf(
								"unroll factor %d exceeds the loop trip count %d", d.Factor, trip),
							Pos:     p.P,
							Class:   hls.ClassLoopParallel,
							Subject: "unroll",
						})
					}
					if trip > 0 && d.Factor > 0 && trip%d.Factor != 0 {
						c.add(hls.Diagnostic{
							Code: "XFORM 202-806",
							Message: fmt.Sprintf(
								"loop trip count %d is not a multiple of unroll factor %d", trip, d.Factor),
							Pos:     p.P,
							Class:   hls.ClassLoopParallel,
							Subject: "unroll",
						})
					}
				case interp.PragmaArrayPartition:
					c.checkPartition(d, sizes, p)
				}
			}
			return true
		})
	}
}

func (c *checker) checkPartition(d interp.PragmaDirective, sizes map[string]int, p *cast.Pragma) {
	switch d.PartitionType {
	case "", "cyclic", "block":
	case "complete":
		// Complete partition needs no factor; only the variable must exist.
		if d.Variable == "" {
			break
		}
		if _, ok := sizes[d.Variable]; !ok {
			c.add(hls.Diagnostic{
				Code: "XFORM 202-711",
				Message: fmt.Sprintf(
					"Array '%s' failed dataflow checking: no array of that name is visible here", d.Variable),
				Pos:     p.P,
				Class:   hls.ClassLoopParallel,
				Subject: d.Variable,
			})
		}
		return
	default:
		c.add(hls.Diagnostic{
			Code: "XFORM 202-711",
			Message: fmt.Sprintf(
				"array_partition type '%s' is not one of cyclic, block, complete", d.PartitionType),
			Pos:     p.P,
			Class:   hls.ClassLoopParallel,
			Subject: d.Variable,
		})
		return
	}
	if d.Variable == "" {
		c.add(hls.Diagnostic{
			Code:    "XFORM 202-711",
			Message: "array_partition requires a variable= operand",
			Pos:     p.P,
			Class:   hls.ClassLoopParallel,
			Subject: "array_partition",
		})
		return
	}
	size, ok := sizes[d.Variable]
	if !ok {
		c.add(hls.Diagnostic{
			Code: "XFORM 202-711",
			Message: fmt.Sprintf(
				"Array '%s' failed dataflow checking: no array of that name is visible here", d.Variable),
			Pos:     p.P,
			Class:   hls.ClassLoopParallel,
			Subject: d.Variable,
		})
		return
	}
	if d.Factor > 0 && size%d.Factor != 0 {
		c.add(hls.Diagnostic{
			Code: "XFORM 202-711",
			Message: fmt.Sprintf(
				"Array '%s' failed dataflow checking: size %d is not a multiple of partition factor %d", d.Variable, size, d.Factor),
			Pos:     p.P,
			Class:   hls.ClassLoopParallel,
			Subject: d.Variable,
		})
	}
}

// arraySizes maps array names visible in fn (params, locals, globals) to
// their flattened outer dimension.
func (c *checker) arraySizes(fn *cast.FuncDecl) map[string]int {
	out := map[string]int{}
	record := func(name string, t ctypes.Type) {
		if arr, ok := ctypes.Resolve(t).(ctypes.Array); ok && arr.Len > 0 {
			out[name] = arr.Len
		}
	}
	for _, d := range c.unit.Decls {
		if v, ok := d.(*cast.VarDecl); ok {
			record(v.Name, v.Type)
		}
	}
	for _, p := range fn.Params {
		record(p.Name, p.Type)
	}
	cast.Inspect(fn, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok {
			record(d.Name, d.Type)
		}
		return true
	})
	return out
}

// staticTripCount extracts the trip count of the canonical counted loop
// "for (i = 0; i < N; i++)", returning -1 when it cannot be determined.
func staticTripCount(f *cast.For) int {
	cond, ok := f.Cond.(*cast.Binary)
	if !ok {
		return -1
	}
	lit, ok := cond.R.(*cast.IntLit)
	if !ok {
		return -1
	}
	start := int64(0)
	switch init := f.Init.(type) {
	case *cast.DeclStmt:
		if il, ok := init.Init.(*cast.IntLit); ok {
			start = il.Value
		} else if init.Init != nil {
			return -1
		}
	case *cast.ExprStmt:
		if as, ok := init.X.(*cast.Assign); ok {
			if il, ok := as.R.(*cast.IntLit); ok {
				start = il.Value
			} else {
				return -1
			}
		}
	}
	switch cond.Op.String() {
	case "<":
		return int(lit.Value - start)
	case "<=":
		return int(lit.Value - start + 1)
	}
	return -1
}
