// Package check implements the full synthesizability checker of the
// simulated HLS toolchain. It reproduces the diagnostic surface that
// HeteroGen's repair engine consumes: each check emits a Vivado-HLS-style
// error whose wording carries the keywords ("recursive", "dynamic memory",
// "dataflow", "struct", ...) that repair localization keys on.
//
// The checks cover the six §5.1 error classes:
//
//   - Dynamic data structures: malloc/free, recursion (direct and mutual),
//     arrays with sizes unknown at compile time.
//   - Unsupported data types: long double anywhere; pointer declarations
//     outside top-function interfaces.
//   - Dataflow optimization: a buffer consumed by more than one process in
//     a #pragma HLS dataflow region.
//   - Loop parallelization: array_partition factors that do not divide the
//     array size; unroll/dataflow interactions with excessive factors.
//   - Struct and union: struct temporaries without an explicit
//     constructor; non-static streams connecting struct instances inside a
//     dataflow region.
//   - Top function: configuration naming a function absent from the design.
package check

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
	"github.com/hetero/heterogen/internal/obs"
)

// Run performs the full synthesizability check of unit u under cfg.
func Run(u *cast.Unit, cfg hls.Config) hls.Report {
	c := &checker{unit: u, cfg: cfg}
	c.checkTopFunction()
	c.checkDynamicData()
	c.checkTypes()
	c.checkStructs()
	c.checkDataflow()
	c.checkLoops()
	return hls.Report{Diags: c.diags, OK: len(c.diags) == 0}
}

// RunObserved is Run plus one structured hls_check event carrying the
// diagnostic counts by error class — the standalone-checker
// instrumentation point (cmd/hlscheck, core.Check). The repair search
// does not use it: its checker runs happen on worker goroutines, whose
// verdicts are buffered in the candidate outcome and emitted as
// repair_candidate events at commit time instead (see internal/obs).
func RunObserved(u *cast.Unit, cfg hls.Config, o obs.Observer) hls.Report {
	rep := Run(u, cfg)
	Observe(o, cfg, rep)
	return rep
}

// Observe emits the structured hls_check event for an already-computed
// report. The evaluation cache's hit path goes through it (core), so a
// memoized verdict produces the identical event a fresh check would —
// the trace cannot tell the difference.
func Observe(o obs.Observer, cfg hls.Config, rep hls.Report) {
	if !obs.Enabled(o) {
		return
	}
	byClass := map[string]int{}
	for _, d := range rep.Diags {
		byClass[d.Class.String()]++
	}
	o.Emit(obs.Event{Type: obs.EvCheck, Check: &obs.CheckEvent{
		Top: cfg.Top, Errors: len(rep.Diags), ByClass: byClass,
	}})
}

type checker struct {
	unit  *cast.Unit
	cfg   hls.Config
	diags []hls.Diagnostic
}

func (c *checker) add(d hls.Diagnostic) { c.diags = append(c.diags, d) }

// ---------------------------------------------------------------------------
// Top function

func (c *checker) checkTopFunction() {
	if c.cfg.Top == "" {
		c.add(hls.Diagnostic{
			Code:    "HLS 200-1",
			Message: "Cannot find the top function in the design: no top function configured",
			Class:   hls.ClassTopFunction,
		})
		return
	}
	if c.unit.Func(c.cfg.Top) == nil {
		c.add(hls.Diagnostic{
			Code: "HLS 200-1",
			Message: fmt.Sprintf(
				"Cannot find the top function '%s' in the design", c.cfg.Top),
			Class:   hls.ClassTopFunction,
			Subject: c.cfg.Top,
		})
	}
	// Conflicting "#pragma HLS top name=X" directives must agree with the
	// configured top. Such pragmas may survive at file scope or attached
	// to a function head.
	checkTopDirective := func(text string, pos ctoken.Pos) {
		dir := interp.ParsePragma(text)
		if dir.Kind == interp.PragmaTop && dir.Name != "" && dir.Name != c.cfg.Top {
			c.add(hls.Diagnostic{
				Code: "HLS 200-1",
				Message: fmt.Sprintf(
					"Cannot find the top function '%s' in the design: configuration names '%s'",
					dir.Name, c.cfg.Top),
				Pos:     pos,
				Class:   hls.ClassTopFunction,
				Subject: dir.Name,
			})
		}
	}
	for _, d := range c.unit.Decls {
		switch x := d.(type) {
		case *cast.PragmaDecl:
			checkTopDirective(x.Text, x.P)
		case *cast.FuncDecl:
			for _, p := range x.Pragmas {
				checkTopDirective(p.Text, p.P)
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Dynamic data structures

func (c *checker) checkDynamicData() {
	// malloc / free anywhere in the design.
	cast.Inspect(c.unit, func(n cast.Node) bool {
		call, ok := n.(*cast.Call)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*cast.Ident); ok {
			switch id.Name {
			case "malloc", "calloc", "realloc":
				c.add(hls.Diagnostic{
					Code: "SYNCHK 200-31",
					Message: fmt.Sprintf(
						"dynamic memory allocation/deallocation is not supported: call to '%s'", id.Name),
					Pos:     call.P,
					Class:   hls.ClassDynamicData,
					Subject: id.Name,
				})
			case "free":
				c.add(hls.Diagnostic{
					Code:    "SYNCHK 200-31",
					Message: "dynamic memory allocation/deallocation is not supported: call to 'free'",
					Pos:     call.P,
					Class:   hls.ClassDynamicData,
					Subject: "free",
				})
			}
		}
		return true
	})

	// Recursion: direct or mutual, via call-graph cycle detection.
	for _, fname := range recursiveFunctions(c.unit) {
		fn := c.unit.Func(fname)
		pos := fn.P
		c.add(hls.Diagnostic{
			Code: "XFORM 202-876",
			Message: fmt.Sprintf(
				"Synthesizability check failed: recursive functions are not supported ('%s')", fname),
			Pos:     pos,
			Class:   hls.ClassDynamicData,
			Subject: fname,
		})
	}

	// goto requires control-flow restructuring the fabric cannot express
	// directly — like recursion, it belongs to the "restructure your
	// logic" family of dynamic-control errors.
	cast.Inspect(c.unit, func(n cast.Node) bool {
		if g, ok := n.(*cast.Goto); ok {
			c.add(hls.Diagnostic{
				Code: "SYNCHK 200-62",
				Message: fmt.Sprintf(
					"goto '%s' is not synthesizable: restructure the control flow with loops and conditionals", g.Name),
				Pos:     g.P,
				Class:   hls.ClassDynamicData,
				Subject: g.Name,
			})
		}
		return true
	})

	// Arrays of unknown size (locals and globals). Parameters are checked
	// as interfaces under type rules.
	cast.Inspect(c.unit, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.DeclStmt:
			if arr, ok := ctypes.Resolve(x.Type).(ctypes.Array); ok && hasUnknownDim(arr) {
				c.add(hls.Diagnostic{
					Code: "SYNCHK 200-61",
					Message: fmt.Sprintf(
						"unsupported memory access on variable '%s' which is (or contains) an array with unknown size at compile time", x.Name),
					Pos:     x.P,
					Class:   hls.ClassDynamicData,
					Subject: x.Name,
				})
			}
		case *cast.VarDecl:
			if arr, ok := ctypes.Resolve(x.Type).(ctypes.Array); ok && hasUnknownDim(arr) {
				c.add(hls.Diagnostic{
					Code: "SYNCHK 200-61",
					Message: fmt.Sprintf(
						"unsupported memory access on variable '%s' which is (or contains) an array with unknown size at compile time", x.Name),
					Pos:     x.P,
					Class:   hls.ClassDynamicData,
					Subject: x.Name,
				})
			}
		}
		return true
	})
}

func hasUnknownDim(a ctypes.Array) bool {
	if a.Len < 0 {
		return true
	}
	if inner, ok := ctypes.Resolve(a.Elem).(ctypes.Array); ok {
		return hasUnknownDim(inner)
	}
	return false
}

// recursiveFunctions returns names of functions on call-graph cycles, in
// declaration order.
func recursiveFunctions(u *cast.Unit) []string {
	graph := map[string][]string{}
	var order []string
	addFn := func(f *cast.FuncDecl) {
		order = append(order, f.Name)
		var callees []string
		cast.Inspect(f, func(n cast.Node) bool {
			if call, ok := n.(*cast.Call); ok {
				if id, ok := call.Fun.(*cast.Ident); ok {
					callees = append(callees, id.Name)
				}
			}
			return true
		})
		graph[f.Name] = callees
	}
	for _, d := range u.Decls {
		switch x := d.(type) {
		case *cast.FuncDecl:
			if x.Body != nil {
				addFn(x)
			}
		case *cast.StructDecl:
			for _, m := range x.Methods {
				if m.Body != nil {
					addFn(m)
				}
			}
		}
	}
	// A function is recursive if it can reach itself.
	reaches := func(from, target string) bool {
		seen := map[string]bool{}
		stack := append([]string{}, graph[from]...)
		for len(stack) > 0 {
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if f == target {
				return true
			}
			if seen[f] {
				continue
			}
			seen[f] = true
			stack = append(stack, graph[f]...)
		}
		return false
	}
	var out []string
	for _, f := range order {
		if reaches(f, f) {
			out = append(out, f)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Unsupported data types

func (c *checker) checkTypes() {
	top := c.unit.Func(c.cfg.Top)

	checkType := func(t ctypes.Type, name string, pos cast.Node, isTopParam bool) {
		rt := ctypes.Resolve(t)
		if f, ok := rt.(ctypes.Float); ok && f.FK == ctypes.F80 {
			c.add(hls.Diagnostic{
				Code: "SYNCHK 200-11",
				Message: fmt.Sprintf(
					"type 'long double' of '%s' is not synthesizable: call of overloaded arithmetic is ambiguous", name),
				Pos:     pos.Pos(),
				Class:   hls.ClassUnsupportedType,
				Subject: name,
			})
		}
		if _, ok := rt.(ctypes.Pointer); ok && !isTopParam {
			c.add(hls.Diagnostic{
				Code: "SYNCHK 200-41",
				Message: fmt.Sprintf(
					"pointer '%s' is not supported: pointers are only allowed on top-level interface ports", name),
				Pos:     pos.Pos(),
				Class:   hls.ClassUnsupportedType,
				Subject: name,
			})
		}
	}

	for _, d := range c.unit.Decls {
		switch x := d.(type) {
		case *cast.VarDecl:
			checkType(x.Type, x.Name, x, false)
		case *cast.FuncDecl:
			c.checkFuncTypes(x, x == top, checkType)
		case *cast.StructDecl:
			for _, f := range x.Type.Fields {
				rt := ctypes.Resolve(f.Type)
				if fl, ok := rt.(ctypes.Float); ok && fl.FK == ctypes.F80 {
					c.add(hls.Diagnostic{
						Code: "SYNCHK 200-11",
						Message: fmt.Sprintf(
							"type 'long double' of field '%s.%s' is not synthesizable", x.Type.Tag, f.Name),
						Pos:     x.P,
						Class:   hls.ClassUnsupportedType,
						Subject: f.Name,
					})
				}
				if _, ok := rt.(ctypes.Pointer); ok {
					c.add(hls.Diagnostic{
						Code: "SYNCHK 200-41",
						Message: fmt.Sprintf(
							"pointer field '%s.%s' is not supported in a synthesizable struct", x.Type.Tag, f.Name),
						Pos:     x.P,
						Class:   hls.ClassUnsupportedType,
						Subject: f.Name,
					})
				}
			}
			for _, m := range x.Methods {
				c.checkFuncTypes(m, false, checkType)
			}
		}
	}
}

func (c *checker) checkFuncTypes(fn *cast.FuncDecl, isTop bool,
	checkType func(ctypes.Type, string, cast.Node, bool)) {
	for _, p := range fn.Params {
		checkType(p.Type, p.Name, fn, isTop)
	}
	checkType(fn.Ret, fn.Name+"() return", fn, false)
	cast.Inspect(fn, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok {
			checkType(d.Type, d.Name, d, false)
		}
		return true
	})
}

// ---------------------------------------------------------------------------
// Struct and union

func (c *checker) checkStructs() {
	// Unions map poorly to fabric storage: their overlapping fields need
	// an explicit hardware-level representation, so any union-typed
	// declaration is flagged (the paper's "Struct and Union" class covers
	// both; see Table 1's post 1117215 discussion).
	flagUnion := func(t ctypes.Type, name string, pos ctoken.Pos) {
		if st, ok := ctypes.Resolve(t).(*ctypes.Struct); ok && st.IsUnion {
			c.add(hls.Diagnostic{
				Code: "SYNCHK 200-93",
				Message: fmt.Sprintf(
					"union '%s' of variable '%s' is not synthesizable without an explicit hardware-level implementation", st.Tag, name),
				Pos:     pos,
				Class:   hls.ClassStructUnion,
				Subject: st.Tag,
			})
		}
	}
	cast.Inspect(c.unit, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.DeclStmt:
			flagUnion(x.Type, x.Name, x.P)
		case *cast.VarDecl:
			flagUnion(x.Type, x.Name, x.P)
		}
		return true
	})

	// Struct temporaries (Tag{...}) require an explicit constructor.
	cast.Inspect(c.unit, func(n cast.Node) bool {
		il, ok := n.(*cast.InitList)
		if !ok || il.Type == nil {
			return true
		}
		st, ok := il.Type.(*ctypes.Struct)
		if !ok {
			return true
		}
		sd := c.unit.StructOf(st.Tag)
		if sd == nil || !sd.HasCtor {
			c.add(hls.Diagnostic{
				Code: "SYNCHK 200-91",
				Message: fmt.Sprintf(
					"Argument 'this' has an unsynthesizable struct type '%s': no explicit constructor for hardware instantiation", st.Tag),
				Pos:     il.P,
				Class:   hls.ClassStructUnion,
				Subject: st.Tag,
			})
		}
		return true
	})

	// Streams connecting struct instances in a dataflow region must be
	// declared static (Figure 5's second repair).
	for _, fn := range c.unit.Funcs() {
		if fn.Body == nil || !hasDataflowPragma(fn) {
			continue
		}
		usesStructInstances := false
		cast.Inspect(fn, func(n cast.Node) bool {
			if il, ok := n.(*cast.InitList); ok && il.Type != nil {
				if _, isStruct := il.Type.(*ctypes.Struct); isStruct {
					usesStructInstances = true
				}
			}
			return true
		})
		if !usesStructInstances {
			continue
		}
		cast.Inspect(fn, func(n cast.Node) bool {
			d, ok := n.(*cast.DeclStmt)
			if !ok {
				return true
			}
			if _, isStream := ctypes.Resolve(d.Type).(ctypes.Stream); isStream && !d.Static {
				c.add(hls.Diagnostic{
					Code: "SYNCHK 200-92",
					Message: fmt.Sprintf(
						"the connecting stream '%s' between struct instances in a dataflow region must be static", d.Name),
					Pos:     d.P,
					Class:   hls.ClassStructUnion,
					Subject: d.Name,
				})
			}
			return true
		})
	}
}

func hasDataflowPragma(fn *cast.FuncDecl) bool {
	for _, p := range fn.Pragmas {
		if interp.ParsePragma(p.Text).Kind == interp.PragmaDataflow {
			return true
		}
	}
	return false
}
