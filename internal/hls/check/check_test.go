package check

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/hls"
)

func runCheck(t *testing.T, src, top string) hls.Report {
	t.Helper()
	u := cparser.MustParse(src)
	return Run(u, hls.DefaultConfig(top))
}

func wantClass(t *testing.T, r hls.Report, c hls.ErrorClass, keyword string) {
	t.Helper()
	if !r.HasClass(c) {
		t.Fatalf("expected %s diagnostic, got %v", c, r.Diags)
	}
	for _, d := range r.ByClass()[c] {
		if strings.Contains(d.Message, keyword) {
			return
		}
	}
	t.Errorf("no %s diagnostic mentions %q: %v", c, keyword, r.ByClass()[c])
}

func TestCleanDesignPasses(t *testing.T) {
	r := runCheck(t, `
void kernel(int in[16], int out[16]) {
    for (int i = 0; i < 16; i++) {
        out[i] = in[i] * 2;
    }
}`, "kernel")
	if !r.OK {
		t.Errorf("clean design should pass, got %v", r.Diags)
	}
}

func TestMallocDetected(t *testing.T) {
	r := runCheck(t, `
void kernel(int n) {
    int *p = (int *)malloc(n * sizeof(int));
    free(p);
}`, "kernel")
	wantClass(t, r, hls.ClassDynamicData, "dynamic memory allocation")
	// Both malloc and free are flagged.
	if got := len(r.ByClass()[hls.ClassDynamicData]); got < 2 {
		t.Errorf("want >=2 dynamic-data diags, got %d", got)
	}
}

func TestDirectRecursionDetected(t *testing.T) {
	r := runCheck(t, `
void traverse(int n) {
    if (n <= 0) { return; }
    traverse(n - 1);
}
void kernel(int n) { traverse(n); }`, "kernel")
	wantClass(t, r, hls.ClassDynamicData, "recursive functions are not supported")
	found := false
	for _, d := range r.Diags {
		if d.Subject == "traverse" && d.Code == "XFORM 202-876" {
			found = true
		}
	}
	if !found {
		t.Errorf("recursion diagnostic should name traverse with XFORM 202-876: %v", r.Diags)
	}
}

func TestMutualRecursionDetected(t *testing.T) {
	r := runCheck(t, `
void even(int n);
void odd(int n) { if (n > 0) { even(n - 1); } }
void even(int n) { if (n > 0) { odd(n - 1); } }
void kernel(int n) { even(n); }`, "kernel")
	diags := r.ByClass()[hls.ClassDynamicData]
	if len(diags) < 2 {
		t.Errorf("both mutually recursive functions should be flagged: %v", diags)
	}
}

func TestNonRecursiveHelperNotFlagged(t *testing.T) {
	r := runCheck(t, `
int helper(int x) { return x * 2; }
void kernel(int in[8], int out[8]) {
    for (int i = 0; i < 8; i++) { out[i] = helper(in[i]); }
}`, "kernel")
	if r.HasClass(hls.ClassDynamicData) {
		t.Errorf("false recursion positive: %v", r.Diags)
	}
}

func TestUnknownSizeArray(t *testing.T) {
	r := runCheck(t, `
void kernel(int cols) {
    int line_buf_a[cols];
    line_buf_a[0] = 1;
}`, "kernel")
	wantClass(t, r, hls.ClassDynamicData, "unknown size")
	found := false
	for _, d := range r.Diags {
		if d.Code == "SYNCHK 200-61" && d.Subject == "line_buf_a" {
			found = true
		}
	}
	if !found {
		t.Errorf("SYNCHK 200-61 for line_buf_a expected: %v", r.Diags)
	}
}

func TestLongDoubleDetected(t *testing.T) {
	r := runCheck(t, `
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`, "top")
	wantClass(t, r, hls.ClassUnsupportedType, "long double")
}

func TestPointerLocalsFlagged(t *testing.T) {
	r := runCheck(t, `
struct Node { int v; };
struct Node pool[16];
void kernel(int idx) {
    struct Node *p = &pool[0];
    p->v = idx;
}`, "kernel")
	wantClass(t, r, hls.ClassUnsupportedType, "pointer")
}

func TestTopParamPointersAllowed(t *testing.T) {
	r := runCheck(t, `
void kernel(float *in, float *out) {
    out[0] = in[0] * 2;
}`, "kernel")
	if r.HasClass(hls.ClassUnsupportedType) {
		t.Errorf("interface pointers on the top function are allowed: %v", r.Diags)
	}
}

func TestPointerStructFieldFlagged(t *testing.T) {
	r := runCheck(t, `
struct Node { int val; struct Node *left; };
struct Node pool[8];
void kernel(int i) { pool[i].val = i; }`, "kernel")
	wantClass(t, r, hls.ClassUnsupportedType, "pointer field")
}

func TestMissingTopFunction(t *testing.T) {
	r := runCheck(t, `void other() { }`, "kernel")
	wantClass(t, r, hls.ClassTopFunction, "Cannot find the top function")
}

func TestTopPragmaMismatch(t *testing.T) {
	r := runCheck(t, `
#pragma HLS top name=kern
void kernel(int in[4], int out[4]) {
    for (int i = 0; i < 4; i++) { out[i] = in[i]; }
}`, "kernel")
	wantClass(t, r, hls.ClassTopFunction, "kern")
}

func TestDataflowDoubleConsumer(t *testing.T) {
	r := runCheck(t, `
void my_func(char data[128], char out[128]) {
    for (int i = 0; i < 128; i++) { out[i] = data[i]; }
}
void top_function(char data[128], char a[128], char b[128]) {
#pragma HLS dataflow
    my_func(data, a);
    my_func(data, b);
}`, "top_function")
	wantClass(t, r, hls.ClassDataflow, "failed dataflow checking")
}

func TestDataflowSegmentedDataPasses(t *testing.T) {
	r := runCheck(t, `
void my_func(char data[64], char out[64]) {
    for (int i = 0; i < 64; i++) { out[i] = data[i]; }
}
void top_function(char d1[64], char d2[64], char a[64], char b[64]) {
#pragma HLS dataflow
    my_func(d1, a);
    my_func(d2, b);
}`, "top_function")
	if r.HasClass(hls.ClassDataflow) {
		t.Errorf("segmented buffers should pass dataflow checking: %v", r.Diags)
	}
}

func TestPartitionFactorMustDivide(t *testing.T) {
	// The paper's example: 13 elements with factor 4.
	r := runCheck(t, `
void kernel(int x) {
    int A[13];
#pragma HLS array_partition variable=A factor=4
    for (int i = 0; i < 13; i++) { A[i] = x; }
}`, "kernel")
	wantClass(t, r, hls.ClassLoopParallel, "not a multiple")
}

func TestPartitionFactorDividesPasses(t *testing.T) {
	r := runCheck(t, `
void kernel(int A[16]) {
#pragma HLS array_partition variable=A factor=4
    for (int i = 0; i < 16; i++) { A[i] = i; }
}`, "kernel")
	if !r.OK {
		t.Errorf("divisible partition should pass: %v", r.Diags)
	}
}

func TestUnrollFiftyWithDataflowFails(t *testing.T) {
	// Post 721719: unroll factor >= 50 under dataflow fails pre-synthesis.
	r := runCheck(t, `
void kernel(int a[100], int b[100]) {
#pragma HLS dataflow
    for (int i = 0; i < 100; i++) {
#pragma HLS unroll factor=50
        b[i] = a[i];
    }
}`, "kernel")
	wantClass(t, r, hls.ClassLoopParallel, "Pre-synthesis failed")
}

func TestUnrollSmallFactorPasses(t *testing.T) {
	r := runCheck(t, `
void kernel(int a[100], int b[100]) {
    for (int i = 0; i < 100; i++) {
#pragma HLS unroll factor=4
        b[i] = a[i];
    }
}`, "kernel")
	if !r.OK {
		t.Errorf("unroll 4 over 100 iterations should pass: %v", r.Diags)
	}
}

func TestUnrollExceedsTripCount(t *testing.T) {
	r := runCheck(t, `
void kernel(int a[8], int b[8]) {
    for (int i = 0; i < 8; i++) {
#pragma HLS unroll factor=16
        b[i] = a[i];
    }
}`, "kernel")
	wantClass(t, r, hls.ClassLoopParallel, "exceeds the loop trip count")
}

func TestStructTemporaryNeedsCtor(t *testing.T) {
	src := `
struct If2 {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    void do1() { out.write(in.read()); }
};
void top(hls::stream<unsigned> &in, hls::stream<unsigned> &out) {
#pragma HLS dataflow
    hls::stream<unsigned> tmp;
    If2{ in, tmp }.do1();
    If2{ tmp, out }.do1();
}`
	r := runCheck(t, src, "top")
	wantClass(t, r, hls.ClassStructUnion, "unsynthesizable struct type")
	wantClass(t, r, hls.ClassStructUnion, "must be static")
}

func TestRepairedStructPasses(t *testing.T) {
	// Figure 5b: constructor added, stream made static.
	src := `
struct If2 {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    If2(hls::stream<unsigned> &i, hls::stream<unsigned> &o) : in(i), out(o) {}
    void do1() { out.write(in.read()); }
};
void top(hls::stream<unsigned> &in, hls::stream<unsigned> &out) {
#pragma HLS dataflow
    static hls::stream<unsigned> tmp;
    If2{ in, tmp }.do1();
    If2{ tmp, out }.do1();
}`
	r := runCheck(t, src, "top")
	if r.HasClass(hls.ClassStructUnion) {
		t.Errorf("repaired struct should pass: %v", r.ByClass()[hls.ClassStructUnion])
	}
}

func TestDiagnosticFormat(t *testing.T) {
	d := hls.Diagnostic{Code: "XFORM 202-876", Message: "Synthesizability check failed"}
	if got := d.Error(); got != "ERROR: [XFORM 202-876] Synthesizability check failed" {
		t.Errorf("format %q", got)
	}
}

func TestReportGrouping(t *testing.T) {
	r := runCheck(t, `
void traverse(int n) { if (n > 0) { traverse(n - 1); } }
void kernel(int n) {
    long double d = n;
    traverse((int)d);
}`, "kernel")
	by := r.ByClass()
	if len(by[hls.ClassDynamicData]) == 0 || len(by[hls.ClassUnsupportedType]) == 0 {
		t.Errorf("expected two classes, got %v", by)
	}
}
