package check

import (
	"testing"

	"github.com/hetero/heterogen/internal/hls"
)

func TestCompletePartitionIgnoresFactor(t *testing.T) {
	// 13 elements cannot be partitioned cyclically by 4, but complete
	// partitioning registers every element and needs no factor.
	r := runCheck(t, `
void kernel(int x) {
    int A[13];
#pragma HLS array_partition variable=A type=complete
    for (int i = 0; i < 13; i++) { A[i] = x; }
}`, "kernel")
	if r.HasClass(hls.ClassLoopParallel) {
		t.Errorf("complete partition should pass: %v", r.Diags)
	}
}

func TestPartitionTypeOperandValidated(t *testing.T) {
	r := runCheck(t, `
void kernel(int A[16]) {
#pragma HLS array_partition variable=A type=diagonal factor=4
    for (int i = 0; i < 16; i++) { A[i] = i; }
}`, "kernel")
	wantClass(t, r, hls.ClassLoopParallel, "not one of cyclic, block, complete")
}

func TestBlockPartitionAccepted(t *testing.T) {
	r := runCheck(t, `
void kernel(int A[16]) {
#pragma HLS array_partition variable=A type=block factor=4
    for (int i = 0; i < 16; i++) { A[i] = i; }
}`, "kernel")
	if !r.OK {
		t.Errorf("block partition with dividing factor should pass: %v", r.Diags)
	}
}

func TestUnionFlagged(t *testing.T) {
	r := runCheck(t, `
union Pack {
    int word;
    float real;
};
int kernel(int x) {
    union Pack p;
    p.word = x;
    return p.word;
}`, "kernel")
	wantClass(t, r, hls.ClassStructUnion, "union 'Pack'")
}

func TestPlainStructNotFlaggedAsUnion(t *testing.T) {
	r := runCheck(t, `
struct Pair { int a; int b; };
int kernel(int x) {
    struct Pair p;
    p.a = x;
    p.b = x + 1;
    return p.a + p.b;
}`, "kernel")
	if r.HasClass(hls.ClassStructUnion) {
		t.Errorf("plain struct wrongly flagged: %v", r.Diags)
	}
}

func TestCompletePartitionSpeedsUnrollFurther(t *testing.T) {
	// Covered behaviourally in interp tests; here just confirm the
	// checker accepts the pragma combination used there.
	r := runCheck(t, `
void kernel(int a[16], int b[16]) {
#pragma HLS array_partition variable=a type=complete
#pragma HLS array_partition variable=b type=complete
    for (int i = 0; i < 16; i++) {
#pragma HLS unroll factor=16
#pragma HLS pipeline II=1
        b[i] = a[i] * 2;
    }
}`, "kernel")
	if !r.OK {
		t.Errorf("complete partition + full unroll should pass: %v", r.Diags)
	}
}
