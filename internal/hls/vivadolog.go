package hls

import (
	"bufio"
	"regexp"
	"strings"
)

// ParseVivadoLog extracts diagnostics from a real Vivado HLS log. The
// simulated toolchain emits structured diagnostics directly, but the
// repair engine consumes only (code, message) pairs and classifies by
// keywords — so a log parsed here plugs into the same search, which is
// the migration path from the simulator to a vendor toolchain.
//
// Recognized line shape (as in the paper's examples):
//
//	ERROR: [XFORM 202-876] Synthesizability check failed: ...
//	ERROR: [SYNCHK 200-61] unsupported memory access on variable 'curr' ...
//	WARNING: [...] ...        (ignored)
func ParseVivadoLog(log string) []Diagnostic {
	var out []Diagnostic
	sc := bufio.NewScanner(strings.NewReader(log))
	// Real logs can carry pathologically long lines (a dumped pragma or
	// path list); grow past the scanner's 64K default instead of
	// silently truncating the parse at the first oversized line.
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "ERROR:") {
			continue
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, "ERROR:"))
		if rest == "" {
			// A bare "ERROR:" (truncated log) carries nothing the
			// repair engine could act on.
			continue
		}
		d := Diagnostic{Message: rest}
		if m := codeRe.FindStringSubmatch(rest); m != nil {
			d.Code = m[1]
			d.Message = strings.TrimSpace(rest[len(m[0]):])
		}
		if m := subjectRe.FindStringSubmatch(d.Message); m != nil {
			d.Subject = m[1]
		}
		out = append(out, d)
	}
	return out
}

var (
	codeRe    = regexp.MustCompile(`^\[([A-Z]+[ -][0-9]+-[0-9]+)\]`)
	subjectRe = regexp.MustCompile(`'([A-Za-z_][A-Za-z0-9_]*)'`)
)
