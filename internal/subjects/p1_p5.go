package subjects

import (
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
)

// ---------------------------------------------------------------------------
// P1 — signal transmission: 3-dimensional RGB -> YUV conversion via basic
// arithmetic. No loops or arrays to parallelize, so the FPGA version is
// never faster (Table 3's one ✗). Error class: unsupported data types
// (long double intermediates).

func P1() Subject {
	return Subject{
		ID:     "P1",
		Name:   "signal transmission",
		Kernel: "rgb2yuv",
		Source: `
void rgb2yuv(int r, int g, int b, int yuv[3]) {
    long double y = 0.299 * r + 0.587 * g + 0.114 * b;
    long double u = 0.436 * b - 0.147 * r - 0.289 * g;
    long double v = 0.615 * r - 0.515 * g - 0.100 * b;
    yuv[0] = (int)y;
    yuv[1] = (int)u;
    yuv[2] = (int)v;
}`,
		ExpectedClasses: []hls.ErrorClass{hls.ClassUnsupportedType},
		ExpectImproved:  false,
		HRSupported:     false,
		ExpectedEdits:   []string{},
		ManualSource: `
void rgb2yuv(int r, int g, int b, int yuv[3]) {
    fpga_float<8,23> y = 0.299 * r + 0.587 * g + 0.114 * b;
    fpga_float<8,23> u = 0.436 * b - 0.147 * r - 0.289 * g;
    fpga_float<8,23> v = 0.615 * r - 0.515 * g - 0.100 * b;
    yuv[0] = (int)y;
    yuv[1] = (int)u;
    yuv[2] = (int)v;
}`,
	}
}

// ---------------------------------------------------------------------------
// P2 — arithmetic computation: fixed-coefficient polynomial evaluation
// (Horner) over a block of samples, accumulating in long double. Error
// class: unsupported data types. The counted loop makes the FPGA version
// faster once pragmas land.

func P2() Subject {
	return Subject{
		ID:     "P2",
		Name:   "arithmetic computation",
		Kernel: "poly",
		Source: `
float coef0;
void poly(float in[1024], float out[1024]) {
    for (int i = 0; i < 1024; i++) {
        long double acc = 0.0031;
        long double x = in[i];
        acc = acc * x + 0.0625;
        acc = acc * x + 0.1250;
        acc = acc * x + 0.2500;
        acc = acc * x + 0.5000;
        acc = acc * x + 1.0000;
        acc = acc * x + 2.0000;
        acc = acc * x + 4.0000;
        acc = acc * x + 0.7500;
        out[i] = (float)acc;
    }
}`,
		ExpectedClasses: []hls.ErrorClass{hls.ClassUnsupportedType},
		ExpectImproved:  true,
		HRSupported:     false,
		ExpectedEdits:   []string{"explore"},
		ManualSource: `
void poly(float in[1024], float out[1024]) {
#pragma HLS array_partition variable=in factor=16
#pragma HLS array_partition variable=out factor=16
    for (int i = 0; i < 1024; i++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=16
        fpga_float<8,47> acc = 0.0031;
        fpga_float<8,47> x = in[i];
        acc = acc * x + 0.0625;
        acc = acc * x + 0.1250;
        acc = acc * x + 0.2500;
        acc = acc * x + 0.5000;
        acc = acc * x + 1.0000;
        acc = acc * x + 2.0000;
        acc = acc * x + 4.0000;
        acc = acc * x + 0.7500;
        out[i] = (float)acc;
    }
}`,
	}
}

// ---------------------------------------------------------------------------
// P3 — merge sort: recursive divide-and-conquer over a global buffer.
// Error class: dynamic data structures (recursion), HeteroRefactor's home
// turf (Table 5 shows HR succeeding here). Ships with ten weak tests that
// reach only part of the branches (Table 4's 25%).

const p3Source = `
int data[512];
void msort(int lo, int hi) {
    if (hi - lo < 2) { return; }
    int mid = (lo + hi) / 2;
    msort(lo, mid);
    msort(mid, hi);
    int tmp[512];
    int i = lo;
    int j = mid;
    int k = 0;
    while (i < mid && j < hi) {
        if (data[i] <= data[j]) { tmp[k] = data[i]; i++; }
        else { tmp[k] = data[j]; j++; }
        k++;
    }
    while (i < mid) { tmp[k] = data[i]; i++; k++; }
    while (j < hi) { tmp[k] = data[j]; j++; k++; }
    for (int m = 0; m < k; m++) { data[lo + m] = tmp[m]; }
}
int kernel(int seed, int n) {
    if (n < 0) { n = 0; }
    if (n > 512) { n = 512; }
    int s = seed % 9973;
    if (s < 0) { s = -s; }
    int mode = s % 4;
    for (int i = 0; i < n; i++) {
        if (mode == 0) { data[i] = (s * (i + 3)) % 97; }
        else if (mode == 1) { data[i] = n - i; }
        else if (mode == 2) { data[i] = i % 7; }
        else { data[i] = (s ^ i) % 251; }
    }
    msort(0, n);
    int checksum = 0;
    for (int i = 0; i < n; i++) {
        checksum = checksum * 3 + data[i];
        if (i > 0 && data[i] < data[i - 1]) { checksum = -1; }
    }
    return checksum;
}`

func P3() Subject {
	return Subject{
		ID:              "P3",
		Name:            "merge sort",
		Kernel:          "kernel",
		Source:          p3Source,
		ExpectedClasses: []hls.ErrorClass{hls.ClassDynamicData},
		ExpectImproved:  true,
		HRSupported:     true,
		ExpectedEdits:   []string{"stack_trans"},
		ExistingTests: func() []fuzz.TestCase {
			// Ten near-identical tiny tests: mode 1 only, small n.
			var out []fuzz.TestCase
			for i := int64(0); i < 10; i++ {
				out = append(out, intCase(1, 4+i))
			}
			return out
		},
		ManualSource: `
int data[512];
int tmp[512];
void msort_iter(int n) {
#pragma HLS array_partition variable=data factor=8
#pragma HLS array_partition variable=tmp factor=8
    for (int width = 1; width < n; width = width * 2) {
        for (int lo = 0; lo < n; lo = lo + 2 * width) {
            int mid = lo + width;
            int hi = lo + 2 * width;
            if (mid > n) { mid = n; }
            if (hi > n) { hi = n; }
            int i = lo;
            int j = mid;
            int k = lo;
            while (i < mid && j < hi) {
#pragma HLS pipeline II=1
                if (data[i] <= data[j]) { tmp[k] = data[i]; i++; }
                else { tmp[k] = data[j]; j++; }
                k++;
            }
            while (i < mid) {
#pragma HLS pipeline II=1
                tmp[k] = data[i]; i++; k++;
            }
            while (j < hi) {
#pragma HLS pipeline II=1
                tmp[k] = data[j]; j++; k++;
            }
            for (int m = lo; m < hi; m++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=8
                data[m] = tmp[m];
            }
        }
    }
}
int kernel(int seed, int n) {
    if (n < 0) { n = 0; }
    if (n > 512) { n = 512; }
    int s = seed % 9973;
    if (s < 0) { s = -s; }
    int mode = s % 4;
    for (int i = 0; i < n; i++) {
#pragma HLS pipeline II=1
        if (mode == 0) { data[i] = (s * (i + 3)) % 97; }
        else if (mode == 1) { data[i] = n - i; }
        else if (mode == 2) { data[i] = i % 7; }
        else { data[i] = (s ^ i) % 251; }
    }
    msort_iter(n);
    int checksum = 0;
    for (int i = 0; i < n; i++) {
#pragma HLS pipeline II=1
        checksum = checksum * 3 + data[i];
        if (i > 0 && data[i] < data[i - 1]) { checksum = -1; }
    }
    return checksum;
}`,
	}
}

// ---------------------------------------------------------------------------
// P4 — image processing: 3x3 box-blur convolution over a 64x64 frame with
// a variable-length line buffer (the forum's SYNCHK-61 case). Error class:
// dynamic data structures (unknown-size array).

const p4Source = `
void blur(int img[4096], int out[4096], int cols) {
    if (cols < 3) { cols = 3; }
    if (cols > 64) { cols = 64; }
    int line_buf[cols];
    for (int y = 0; y < 64; y++) {
        for (int x = 0; x < 64; x++) {
            int acc = 0;
            int cnt = 0;
            for (int dy = 0; dy < 3; dy++) {
                for (int dx = 0; dx < 3; dx++) {
                    int yy = y + dy - 1;
                    int xx = x + dx - 1;
                    if (yy >= 0 && yy < 64 && xx >= 0 && xx < cols) {
                        acc += img[yy * 64 + xx];
                        cnt++;
                    }
                }
            }
            if (cnt == 0) { cnt = 1; }
            if (x < cols) { line_buf[x] = acc / cnt; }
            if (x < cols) { out[y * 64 + x] = line_buf[x]; }
            else { out[y * 64 + x] = img[y * 64 + x]; }
        }
    }
}`

func P4() Subject {
	return Subject{
		ID:              "P4",
		Name:            "image processing",
		Kernel:          "blur",
		Source:          p4Source,
		ExpectedClasses: []hls.ErrorClass{hls.ClassDynamicData},
		ExpectImproved:  true,
		HRSupported:     false, // unknown-size stack arrays are beyond HR's pointer/recursion scope here
		ExpectedEdits:   []string{"array_static"},
		ManualSource: `
void blur(int img[4096], int out[4096], int cols) {
#pragma HLS array_partition variable=img factor=16
#pragma HLS array_partition variable=out factor=16
    if (cols < 3) { cols = 3; }
    if (cols > 64) { cols = 64; }
    int line_buf[64];
    for (int y = 0; y < 64; y++) {
        for (int x = 0; x < 64; x++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=16
            int acc = 0;
            int cnt = 0;
            for (int dy = 0; dy < 3; dy++) {
                for (int dx = 0; dx < 3; dx++) {
                    int yy = y + dy - 1;
                    int xx = x + dx - 1;
                    if (yy >= 0 && yy < 64 && xx >= 0 && xx < cols) {
                        acc += img[yy * 64 + xx];
                        cnt++;
                    }
                }
            }
            if (cnt == 0) { cnt = 1; }
            if (x < cols) { line_buf[x] = acc / cnt; }
            if (x < cols) { out[y * 64 + x] = line_buf[x]; }
            else { out[y * 64 + x] = img[y * 64 + x]; }
        }
    }
}`,
	}
}

// ---------------------------------------------------------------------------
// P5 — graph traversal: the paper's Figure 2 working example shape — a
// binary search tree built with malloc/pointers and a recursive pre-order
// traversal, plus a long double accumulator so the subject also carries a
// type error (which keeps it out of HeteroRefactor's dynamic-data-only
// scope, matching Table 5). Ships with ten shallow tests (Table 4's 40%).

const p5Source = `
struct Node {
    int val;
    struct Node *left;
    struct Node *right;
};
int order[250];
int visited;
long double weight;
void traverse(struct Node *curr) {
    if (curr == 0) { return; }
    if (visited < 250) { order[visited] = curr->val; }
    visited = visited + 1;
    weight = weight + 0.5 * curr->val;
    traverse(curr->left);
    traverse(curr->right);
}
int kernel(int seed, int n) {
    if (n < 0) { n = -n; }
    if (n > 96) { n = 96; }
    int s = seed % 997;
    if (s < 0) { s = -s; }
    struct Node *root = 0;
    for (int i = 0; i < n; i++) {
        int v = (s * (i + 7)) % 113;
        if (v < 0) { v = -v; }
        struct Node *nn = (struct Node *)malloc(sizeof(struct Node));
        nn->val = v;
        nn->left = 0;
        nn->right = 0;
        if (root == 0) { root = nn; }
        else {
            struct Node *p = root;
            while (1) {
                if (v < p->val) {
                    if (p->left == 0) { p->left = nn; break; }
                    p = p->left;
                } else {
                    if (p->right == 0) { p->right = nn; break; }
                    p = p->right;
                }
            }
        }
    }
    visited = 0;
    weight = 0.0;
    traverse(root);
    int checksum = (int)weight;
    for (int i = 0; i < 250; i++) {
        checksum = checksum + order[i] * (i % 5);
    }
    return checksum;
}`

func P5() Subject {
	return Subject{
		ID:     "P5",
		Name:   "graph traversal",
		Kernel: "kernel",
		Source: p5Source,
		ExpectedClasses: []hls.ErrorClass{
			hls.ClassDynamicData, hls.ClassUnsupportedType},
		ExpectImproved: true,
		HRSupported:    false,
		ExpectedEdits:  []string{"insert", "pointer", "stack_trans"},
		ExistingTests: func() []fuzz.TestCase {
			var out []fuzz.TestCase
			for i := int64(0); i < 10; i++ {
				out = append(out, intCase(3, i%3))
			}
			return out
		},
		ManualSource: `
struct Node {
    int val;
    int left;
    int right;
};
struct Node pool[128];
int pool_next;
int order[250];
int visited;
float weight;
int stack_arr[128];
void traverse_iter(int root) {
#pragma HLS array_partition variable=order factor=5
    int top = 0;
    if (root != 0) { stack_arr[top] = root; top = top + 1; }
    while (top > 0) {
#pragma HLS pipeline II=1
        top = top - 1;
        int cur = stack_arr[top];
        if (visited < 250) { order[visited] = pool[cur].val; }
        visited = visited + 1;
        weight = weight + 0.5 * pool[cur].val;
        if (pool[cur].right != 0) { stack_arr[top] = pool[cur].right; top = top + 1; }
        if (pool[cur].left != 0) { stack_arr[top] = pool[cur].left; top = top + 1; }
    }
}
int kernel(int seed, int n) {
    if (n < 0) { n = -n; }
    if (n > 96) { n = 96; }
    int s = seed % 997;
    if (s < 0) { s = -s; }
    pool_next = 1;
    int root = 0;
    for (int i = 0; i < n; i++) {
#pragma HLS pipeline II=1
        int v = (s * (i + 7)) % 113;
        if (v < 0) { v = -v; }
        int nn = pool_next;
        pool_next = pool_next + 1;
        pool[nn].val = v;
        pool[nn].left = 0;
        pool[nn].right = 0;
        if (root == 0) { root = nn; }
        else {
            int p = root;
            while (1) {
                if (v < pool[p].val) {
                    if (pool[p].left == 0) { pool[p].left = nn; break; }
                    p = pool[p].left;
                } else {
                    if (pool[p].right == 0) { pool[p].right = nn; break; }
                    p = pool[p].right;
                }
            }
        }
    }
    visited = 0;
    weight = 0.0;
    for (int i = 0; i < 250; i++) { order[i] = 0; }
    traverse_iter(root);
    int checksum = (int)weight;
    for (int i = 0; i < 250; i++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=5
        checksum = checksum + order[i] * (i % 5);
    }
    return checksum;
}`,
	}
}
