// Package subjects provides the ten evaluation programs of the paper's
// §6 (Table 3): eight microbenchmarks and two Rosetta-style applications,
// re-authored to the paper's descriptions with the same HLS compatibility
// error mix per subject. Each subject carries its C source, kernel name,
// optional host entry point (for seed capture), any pre-existing tests
// (Table 4's "Existing" column), and a hand-tuned manual HLS version
// (Table 5's "Manual" column).
package subjects

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
)

// Subject is one evaluation program.
type Subject struct {
	ID   string // P1..P10
	Name string // the paper's Table 3 name
	// Source is the original C program.
	Source string
	// Kernel is the top function to transpile.
	Kernel string
	// HostMain optionally names a host function for seed capture.
	HostMain string
	// ExpectedClasses are the HLS error classes the original exhibits.
	ExpectedClasses []hls.ErrorClass
	// ExpectImproved mirrors Table 3's "Improved Performance?" column
	// (everything but P1).
	ExpectImproved bool
	// ManualSource is the hand-written expert HLS version (Table 5).
	ManualSource string
	// ExistingTests builds the subject's pre-existing test suite (nil
	// when the subject ships without tests, per Table 4).
	ExistingTests func() []fuzz.TestCase
	// HRSupported mirrors Table 5: HeteroRefactor succeeds only when the
	// subject's errors are all dynamic-data-structure errors.
	HRSupported bool
	// ExpectedEdits are template names that must appear in the repair
	// edit log (a shape regression for the search).
	ExpectedEdits []string
}

// All returns the ten subjects in order.
func All() []Subject {
	return []Subject{P1(), P2(), P3(), P4(), P5(), P6(), P7(), P8(), P9(), P10()}
}

// ByID returns a subject by its ID.
func ByID(id string) (Subject, error) {
	for _, s := range All() {
		if s.ID == id {
			return s, nil
		}
	}
	return Subject{}, fmt.Errorf("subjects: no subject %q", id)
}

// MustParse panics if the subject source does not parse — used by tests
// and the benchmark harness, where a non-parsing subject is a bug.
func (s Subject) MustParse() *cast.Unit {
	return cparser.MustParse(s.Source)
}

// MustParseManual parses the manual version.
func (s Subject) MustParseManual() *cast.Unit {
	return cparser.MustParse(s.ManualSource)
}

// ExistingTestsOrNil returns the subject's pre-existing suite, or nil when
// it ships without tests.
func (s Subject) ExistingTestsOrNil() []fuzz.TestCase {
	if s.ExistingTests == nil {
		return nil
	}
	return s.ExistingTests()
}

// intCase builds a scalar-int test case.
func intCase(vals ...int64) fuzz.TestCase {
	tc := fuzz.TestCase{}
	for _, v := range vals {
		tc.Args = append(tc.Args, fuzz.Arg{Scalar: true, Ints: []int64{v}, Width: 32})
	}
	return tc
}

// arrayCase appends an int-array argument of the given length filled by f.
func arrayArg(n int, width int, f func(i int) int64) fuzz.Arg {
	a := fuzz.Arg{Ints: make([]int64, n), Width: width}
	for i := range a.Ints {
		a.Ints[i] = f(i)
	}
	return a
}

// floatArrayArg appends a float-array argument.
func floatArrayArg(n int, f func(i int) float64) fuzz.Arg {
	a := fuzz.Arg{IsFloat: true, Floats: make([]float64, n)}
	for i := range a.Floats {
		a.Floats[i] = f(i)
	}
	return a
}
