package subjects

import (
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
)

// ---------------------------------------------------------------------------
// P6 — matrix multiplication: a 32x32 integer matmul whose author left a
// bad unroll pragma (factor 3 does not divide the 32-trip loop) — the
// loop-parallelization error class. Ships with four tests (Table 4's 33%).

const p6Source = `
void matmul(int a[1024], int b[1024], int c[1024]) {
    for (int i = 0; i < 32; i++) {
        for (int j = 0; j < 32; j++) {
#pragma HLS unroll factor=3
            int acc = 0;
            for (int k = 0; k < 32; k++) {
                acc += a[i * 32 + k] * b[k * 32 + j];
            }
            if (acc > 1000000) { acc = 1000000; }
            if (acc < -1000000) { acc = -1000000; }
            c[i * 32 + j] = acc;
        }
    }
}`

func P6() Subject {
	return Subject{
		ID:              "P6",
		Name:            "matrix multiplication",
		Kernel:          "matmul",
		Source:          p6Source,
		ExpectedClasses: []hls.ErrorClass{hls.ClassLoopParallel},
		ExpectImproved:  true,
		HRSupported:     false,
		ExpectedEdits:   []string{"explore"},
		ExistingTests: func() []fuzz.TestCase {
			var out []fuzz.TestCase
			for t := 0; t < 4; t++ {
				out = append(out, fuzz.TestCase{Args: []fuzz.Arg{
					arrayArg(1024, 32, func(i int) int64 { return int64(i % 3) }),
					arrayArg(1024, 32, func(i int) int64 { return int64(i % 2) }),
					arrayArg(1024, 32, func(i int) int64 { return 0 }),
				}})
			}
			return out
		},
		ManualSource: `
void matmul(int a[1024], int b[1024], int c[1024]) {
#pragma HLS array_partition variable=a factor=16
#pragma HLS array_partition variable=b factor=16
#pragma HLS array_partition variable=c factor=16
    for (int i = 0; i < 32; i++) {
        for (int j = 0; j < 32; j++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=16
            int acc = 0;
            for (int k = 0; k < 32; k++) {
                acc += a[i * 32 + k] * b[k * 32 + j];
            }
            if (acc > 1000000) { acc = 1000000; }
            if (acc < -1000000) { acc = -1000000; }
            c[i * 32 + j] = acc;
        }
    }
}`,
	}
}

// ---------------------------------------------------------------------------
// P7 — bubble sort: the classic pointer-swap idiom (int *p cursor into
// the array) — unsupported-type (pointer) error class.

const p7Source = `
void bsort(int a[120]) {
    for (int i = 0; i < 120; i++) {
        for (int j = 0; j + 1 < 120; j++) {
            int *p = &a[j];
            if (p[0] > p[1]) {
                int t = p[0];
                p[0] = p[1];
                p[1] = t;
            }
        }
    }
}`

func P7() Subject {
	return Subject{
		ID:              "P7",
		Name:            "bubble sort",
		Kernel:          "bsort",
		Source:          p7Source,
		ExpectedClasses: []hls.ErrorClass{hls.ClassUnsupportedType},
		ExpectImproved:  true,
		HRSupported:     false,
		ExpectedEdits:   []string{"pointer_var"},
		ManualSource: `
void bsort(int a[120]) {
#pragma HLS array_partition variable=a factor=8
    for (int i = 0; i < 120; i++) {
        for (int j = 0; j + 1 < 120; j++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=8
            if (a[j] > a[j + 1]) {
                int t = a[j];
                a[j] = a[j + 1];
                a[j + 1] = t;
            }
        }
    }
}`,
	}
}

// ---------------------------------------------------------------------------
// P8 — linked list: malloc/free-driven list construction, filtering, and
// a histogram pass. Pure dynamic-data errors (malloc, free, pointers) —
// HeteroRefactor's other success (Table 5).

const p8Source = `
struct Cell {
    int key;
    struct Cell *next;
};
int hist[64];
int kernel(int seed, int n) {
    if (n < 0) { n = -n; }
    if (n > 200) { n = 200; }
    struct Cell *head = 0;
    for (int i = 0; i < n; i++) {
        int k = (seed * (i + 11)) % 256;
        if (k < 0) { k = -k; }
        struct Cell *c = (struct Cell *)malloc(sizeof(struct Cell));
        c->key = k;
        c->next = head;
        head = c;
    }
    struct Cell *p = head;
    struct Cell *prev = 0;
    while (p != 0) {
        if (p->key % 3 == 0) {
            struct Cell *dead = p;
            if (prev == 0) { head = p->next; }
            else { prev->next = p->next; }
            p = p->next;
            free(dead);
        } else {
            prev = p;
            p = p->next;
        }
    }
    for (int i = 0; i < 64; i++) { hist[i] = 0; }
    p = head;
    while (p != 0) {
        hist[p->key % 64] = hist[p->key % 64] + 1;
        p = p->next;
    }
    int checksum = 0;
    for (int i = 0; i < 64; i++) {
        checksum = checksum * 7 + hist[i] * (i + 1);
    }
    return checksum;
}`

func P8() Subject {
	return Subject{
		ID:              "P8",
		Name:            "linked list",
		Kernel:          "kernel",
		Source:          p8Source,
		ExpectedClasses: []hls.ErrorClass{hls.ClassDynamicData, hls.ClassUnsupportedType},
		ExpectImproved:  true,
		HRSupported:     true,
		ExpectedEdits:   []string{"insert", "pointer"},
		ManualSource: `
struct Cell {
    int key;
    int next;
};
struct Cell pool[256];
int pool_next;
int hist[64];
int kernel(int seed, int n) {
#pragma HLS array_partition variable=hist factor=8
    if (n < 0) { n = -n; }
    if (n > 200) { n = 200; }
    pool_next = 1;
    int head = 0;
    for (int i = 0; i < n; i++) {
#pragma HLS pipeline II=1
        int k = (seed * (i + 11)) % 256;
        if (k < 0) { k = -k; }
        int c = pool_next;
        pool_next = pool_next + 1;
        pool[c].key = k;
        pool[c].next = head;
        head = c;
    }
    int p = head;
    int prev = 0;
    while (p != 0) {
#pragma HLS pipeline II=1
        if (pool[p].key % 3 == 0) {
            if (prev == 0) { head = pool[p].next; }
            else { pool[prev].next = pool[p].next; }
            p = pool[p].next;
        } else {
            prev = p;
            p = pool[p].next;
        }
    }
    for (int i = 0; i < 64; i++) { hist[i] = 0; }
    p = head;
    while (p != 0) {
#pragma HLS pipeline II=1
        hist[pool[p].key % 64] = hist[pool[p].key % 64] + 1;
        p = pool[p].next;
    }
    int checksum = 0;
    for (int i = 0; i < 64; i++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=8
        checksum = checksum * 7 + hist[i] * (i + 1);
    }
    return checksum;
}`,
	}
}

// ---------------------------------------------------------------------------
// P9 — face detection: a Viola-Jones-style cascade — integral image,
// sliding-window scan, staged weak classifiers held in structs with
// member functions, and a dataflow region whose intermediate buffer is
// consumed by two processes. The richest error mix: struct/union,
// dataflow, and dynamic data (a scale-dependent window buffer). Ships
// with a single test (Table 4's 15%).

const p9Source = `
int ii[4356];
int st1_hits[4096];
int st2_hits[4096];
struct Stage {
    int threshold;
    int weight;
    int evalWindow(int x, int y) {
        int s = ii[(y + 8) * 66 + (x + 8)] - ii[y * 66 + (x + 8)]
              - ii[(y + 8) * 66 + x] + ii[y * 66 + x];
        int top = ii[(y + 4) * 66 + (x + 8)] - ii[y * 66 + (x + 8)]
                - ii[(y + 4) * 66 + x] + ii[y * 66 + x];
        int feat = 2 * top - s;
        if (feat * weight > threshold * 64) { return 1; }
        return 0;
    }
};
void integral(int img[4096]) {
    for (int i = 0; i < 4356; i++) { ii[i] = 0; }
    for (int y = 1; y <= 64; y++) {
        int row = 0;
        for (int x = 1; x <= 64; x++) {
            row += img[(y - 1) * 64 + (x - 1)] & 255;
            ii[y * 66 + x] = ii[(y - 1) * 66 + x] + row;
        }
    }
}
void stage1(int img[4096], int hits[4096]) {
    for (int y = 0; y < 56; y++) {
        for (int x = 0; x < 56; x++) {
            hits[y * 64 + x] = Stage{ 40, 3 }.evalWindow(x, y);
        }
    }
}
void stage2(int img[4096], int hits[4096]) {
    for (int y = 0; y < 56; y++) {
        for (int x = 0; x < 56; x++) {
            hits[y * 64 + x] = Stage{ 90, 5 }.evalWindow(x, y);
        }
    }
}
int detect(int img[4096], int scale) {
#pragma HLS dataflow
    integral(img);
    stage1(img, st1_hits);
    stage2(img, st2_hits);
    if (scale < 1) { scale = 1; }
    if (scale > 8) { scale = 8; }
    int win[scale];
    for (int s = 0; s < scale; s++) { win[s] = 0; }
    int faces = 0;
    for (int y = 0; y < 56; y++) {
        for (int x = 0; x < 56; x++) {
            if (st1_hits[y * 64 + x] == 1 && st2_hits[y * 64 + x] == 1) {
                faces++;
                win[(y * 56 + x) % scale] = win[(y * 56 + x) % scale] + 1;
            }
        }
    }
    int spread = 0;
    for (int s = 0; s < scale; s++) { spread = spread * 5 + win[s]; }
    return faces * 1000 + spread % 997;
}`

func P9() Subject {
	return Subject{
		ID:     "P9",
		Name:   "face detection",
		Kernel: "detect",
		Source: p9Source,
		ExpectedClasses: []hls.ErrorClass{
			hls.ClassStructUnion, hls.ClassDataflow, hls.ClassDynamicData},
		ExpectImproved: true,
		HRSupported:    false,
		ExpectedEdits:  []string{"constructor", "segment", "array_static"},
		ExistingTests: func() []fuzz.TestCase {
			return []fuzz.TestCase{{Args: []fuzz.Arg{
				arrayArg(4096, 32, func(i int) int64 { return 0 }),
				{Scalar: true, Ints: []int64{1}, Width: 32},
			}}}
		},
		ManualSource: p9Manual,
	}
}

const p9Manual = `
int ii[4356];
int st1_hits[4096];
int st2_hits[4096];
int evalWindow(int x, int y, int threshold, int weight) {
    int s = ii[(y + 8) * 66 + (x + 8)] - ii[y * 66 + (x + 8)]
          - ii[(y + 8) * 66 + x] + ii[y * 66 + x];
    int top = ii[(y + 4) * 66 + (x + 8)] - ii[y * 66 + (x + 8)]
            - ii[(y + 4) * 66 + x] + ii[y * 66 + x];
    int feat = 2 * top - s;
    if (feat * weight > threshold * 64) { return 1; }
    return 0;
}
void integral(int img[4096]) {
    for (int i = 0; i < 4356; i++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=6
        ii[i] = 0;
    }
    for (int y = 1; y <= 64; y++) {
        int row = 0;
        for (int x = 1; x <= 64; x++) {
#pragma HLS pipeline II=1
            row += img[(y - 1) * 64 + (x - 1)] & 255;
            ii[y * 66 + x] = ii[(y - 1) * 66 + x] + row;
        }
    }
}
void stage1(int hits[4096]) {
#pragma HLS array_partition variable=st1_hits factor=16
    for (int y = 0; y < 56; y++) {
        for (int x = 0; x < 56; x++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=8
            hits[y * 64 + x] = evalWindow(x, y, 40, 3);
        }
    }
}
void stage2(int hits[4096]) {
#pragma HLS array_partition variable=st2_hits factor=16
    for (int y = 0; y < 56; y++) {
        for (int x = 0; x < 56; x++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=8
            hits[y * 64 + x] = evalWindow(x, y, 90, 5);
        }
    }
}
int detect(int img[4096], int scale) {
#pragma HLS dataflow
    integral(img);
    stage1(st1_hits);
    stage2(st2_hits);
    if (scale < 1) { scale = 1; }
    if (scale > 8) { scale = 8; }
    int win[8];
    for (int s = 0; s < 8; s++) { win[s] = 0; }
    int faces = 0;
    for (int y = 0; y < 56; y++) {
        for (int x = 0; x < 56; x++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=8
            if (st1_hits[y * 64 + x] == 1 && st2_hits[y * 64 + x] == 1) {
                faces++;
                win[(y * 56 + x) % scale] = win[(y * 56 + x) % scale] + 1;
            }
        }
    }
    int spread = 0;
    for (int s = 0; s < scale; s++) { spread = spread * 5 + win[s]; }
    return faces * 1000 + spread % 997;
}`

// ---------------------------------------------------------------------------
// P10 — digit recognition: KNN over bit-packed digit templates with
// Hamming distance, carrying the forum's post-721719 error — a dataflow
// region whose loop is unrolled by 50. Error class: loop parallelization.
// Ships with eleven tests (Table 4's 70%).

const p10Source = `
int train[150];
void seedTrain(int seed) {
    for (int i = 0; i < 150; i++) {
        train[i] = (seed * (i + 13)) ^ (i * 2654435761);
    }
}
int hamming(int a, int b) {
    int x = a ^ b;
    int cnt = 0;
    for (int bit = 0; bit < 32; bit++) {
        cnt += (x >> bit) & 1;
    }
    return cnt;
}
int classify(int sample) {
#pragma HLS dataflow
    int best0 = 33;
    int best1 = 33;
    int best2 = 33;
    int lab0 = 0;
    int lab1 = 0;
    int lab2 = 0;
    for (int i = 0; i < 150; i++) {
#pragma HLS unroll factor=50
        int d = hamming(sample, train[i]);
        int label = i / 15;
        if (d < best0) {
            best2 = best1; lab2 = lab1;
            best1 = best0; lab1 = lab0;
            best0 = d; lab0 = label;
        } else if (d < best1) {
            best2 = best1; lab2 = lab1;
            best1 = d; lab1 = label;
        } else if (d < best2) {
            best2 = d; lab2 = label;
        }
    }
    if (lab0 == lab1 || lab0 == lab2) { return lab0; }
    if (lab1 == lab2) { return lab1; }
    return lab0;
}
int kernel(int seed, int sample) {
    seedTrain(seed);
    return classify(sample);
}`

func P10() Subject {
	return Subject{
		ID:              "P10",
		Name:            "digit recognition",
		Kernel:          "kernel",
		Source:          p10Source,
		ExpectedClasses: []hls.ErrorClass{hls.ClassLoopParallel},
		ExpectImproved:  true,
		HRSupported:     false,
		ExpectedEdits:   []string{},
		ExistingTests: func() []fuzz.TestCase {
			var out []fuzz.TestCase
			for i := int64(0); i < 11; i++ {
				out = append(out, intCase(7, i*31))
			}
			return out
		},
		ManualSource: `
int train[150];
void seedTrain(int seed) {
#pragma HLS array_partition variable=train factor=6
    for (int i = 0; i < 150; i++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=6
        train[i] = (seed * (i + 13)) ^ (i * 2654435761);
    }
}
int hamming(int a, int b) {
    int x = a ^ b;
    int cnt = 0;
    for (int bit = 0; bit < 32; bit++) {
#pragma HLS unroll factor=16
        cnt += (x >> bit) & 1;
    }
    return cnt;
}
int classify(int sample) {
    int best0 = 33;
    int best1 = 33;
    int best2 = 33;
    int lab0 = 0;
    int lab1 = 0;
    int lab2 = 0;
    for (int i = 0; i < 150; i++) {
#pragma HLS pipeline II=1
#pragma HLS unroll factor=6
        int d = hamming(sample, train[i]);
        int label = i / 15;
        if (d < best0) {
            best2 = best1; lab2 = lab1;
            best1 = best0; lab1 = lab0;
            best0 = d; lab0 = label;
        } else if (d < best1) {
            best2 = best1; lab2 = lab1;
            best1 = d; lab1 = label;
        } else if (d < best2) {
            best2 = d; lab2 = label;
        }
    }
    if (lab0 == lab1 || lab0 == lab2) { return lab0; }
    if (lab1 == lab2) { return lab1; }
    return lab0;
}
int kernel(int seed, int sample) {
    seedTrain(seed);
    return classify(sample);
}`,
	}
}
