package subjects

import (
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
	"github.com/hetero/heterogen/internal/interp"
)

func TestAllSubjectsParse(t *testing.T) {
	for _, s := range All() {
		if _, err := cparser.Parse(s.Source); err != nil {
			t.Errorf("%s (%s): source does not parse: %v", s.ID, s.Name, err)
		}
		if s.ManualSource == "" {
			t.Errorf("%s: manual version missing", s.ID)
			continue
		}
		if _, err := cparser.Parse(s.ManualSource); err != nil {
			t.Errorf("%s: manual version does not parse: %v", s.ID, err)
		}
	}
}

func TestSubjectIDsAndLookup(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("want 10 subjects, got %d", len(all))
	}
	for i, s := range all {
		wantID := "P" + string(rune('1'+i))
		if i == 9 {
			wantID = "P10"
		}
		if s.ID != wantID {
			t.Errorf("subject %d has ID %s, want %s", i, s.ID, wantID)
		}
		got, err := ByID(s.ID)
		if err != nil || got.Name != s.Name {
			t.Errorf("ByID(%s) failed: %v", s.ID, err)
		}
	}
	if _, err := ByID("P99"); err == nil {
		t.Error("ByID(P99) should fail")
	}
}

// TestSubjectErrorClasses verifies each subject starts with exactly the
// designed error-class mix (superset check: every expected class present,
// no unexpected classes beyond the expected set).
func TestSubjectErrorClasses(t *testing.T) {
	for _, s := range All() {
		u := s.MustParse()
		rep := check.Run(u, hls.DefaultConfig(s.Kernel))
		if rep.OK {
			t.Errorf("%s: original should fail the HLS check", s.ID)
			continue
		}
		got := map[hls.ErrorClass]bool{}
		for _, d := range rep.Diags {
			got[d.Class] = true
		}
		want := map[hls.ErrorClass]bool{}
		for _, c := range s.ExpectedClasses {
			want[c] = true
		}
		for c := range want {
			if !got[c] {
				t.Errorf("%s: expected class %s absent; diags: %v", s.ID, c, rep.Diags)
			}
		}
		for c := range got {
			if !want[c] {
				t.Errorf("%s: unexpected error class %s; diags: %v", s.ID, c, rep.ByClass()[c])
			}
		}
	}
}

// TestManualVersionsCompile verifies every hand-written version passes the
// synthesizability check outright.
func TestManualVersionsCompile(t *testing.T) {
	for _, s := range All() {
		u := s.MustParseManual()
		// The manual kernel keeps the same top name except P3/P5-style
		// restructures, which keep "kernel".
		rep := check.Run(u, hls.DefaultConfig(s.Kernel))
		if !rep.OK {
			t.Errorf("%s: manual version fails the check: %v", s.ID, rep.Diags)
		}
	}
}

// TestSubjectsRunOnCPU executes every subject's kernel on the interpreter
// with a generated seed input.
func TestSubjectsRunOnCPU(t *testing.T) {
	for _, s := range All() {
		sp, err := fuzz.SpecOf(s.MustParse(), s.Kernel)
		if err != nil {
			t.Errorf("%s: spec: %v", s.ID, err)
			continue
		}
		tc := fuzz.TestCase{}
		for _, p := range sp.Params {
			a := p.Clone()
			if a.Scalar && !a.IsFloat {
				a.Ints[0] = 5
			}
			if !a.Scalar && !a.IsFloat {
				for i := range a.Ints {
					a.Ints[i] = int64(i % 19)
				}
			}
			if !a.Scalar && a.IsFloat {
				for i := range a.Floats {
					a.Floats[i] = float64(i) * 0.5
				}
			}
			tc.Args = append(tc.Args, a)
		}
		in, err := interp.New(s.MustParse(), interp.Options{})
		if err != nil {
			t.Errorf("%s: init: %v", s.ID, err)
			continue
		}
		if _, err := in.CallKernel(s.Kernel, tc.Values()); err != nil {
			t.Errorf("%s: CPU run failed: %v", s.ID, err)
		}
	}
}

// TestManualMatchesOriginalBehaviour spot-checks that each manual version
// computes the same function as the original (they are the human-written
// ground truth of Table 5).
func TestManualMatchesOriginalBehaviour(t *testing.T) {
	for _, s := range All() {
		sp, err := fuzz.SpecOf(s.MustParse(), s.Kernel)
		if err != nil {
			t.Fatalf("%s: %v", s.ID, err)
		}
		for trial := int64(1); trial <= 3; trial++ {
			tc := fuzz.TestCase{}
			for _, p := range sp.Params {
				a := p.Clone()
				if a.Scalar && !a.IsFloat {
					a.Ints[0] = trial * 7
				}
				if !a.Scalar && !a.IsFloat {
					for i := range a.Ints {
						a.Ints[i] = int64((i*int(trial) + 3) % 23)
					}
				}
				if !a.Scalar && a.IsFloat {
					for i := range a.Floats {
						a.Floats[i] = float64(i%13) * 0.25 * float64(trial)
					}
				}
				tc.Args = append(tc.Args, a)
			}
			origIn, _ := interp.New(s.MustParse(), interp.Options{})
			manIn, err := interp.New(s.MustParseManual(), interp.Options{})
			if err != nil {
				t.Fatalf("%s: manual init: %v", s.ID, err)
			}
			origArgs := tc.Values()
			manArgs := tc.Values()
			want, err := origIn.CallKernel(s.Kernel, origArgs)
			if err != nil {
				t.Fatalf("%s: original run: %v", s.ID, err)
			}
			got, err := manIn.CallKernel(s.Kernel, manArgs)
			if err != nil {
				t.Fatalf("%s: manual run: %v", s.ID, err)
			}
			if !interp.Equal(want.Ret, got.Ret, 1e-3) {
				t.Errorf("%s trial %d: manual %s != original %s",
					s.ID, trial, got.Ret, want.Ret)
			}
			// Output arrays must agree as well.
			for ai := range origArgs {
				if origArgs[ai].Kind != interp.VPtr || origArgs[ai].Obj == nil {
					continue
				}
				oe, me := origArgs[ai].Obj.Elems, manArgs[ai].Obj.Elems
				for i := range oe {
					if !interp.Equal(oe[i], me[i], 1e-3) {
						t.Errorf("%s trial %d: arg %d element %d: manual %s != original %s",
							s.ID, trial, ai, i, me[i], oe[i])
						break
					}
				}
			}
		}
	}
}

func TestExistingTestsReplayable(t *testing.T) {
	for _, s := range All() {
		if s.ExistingTests == nil {
			continue
		}
		tests := s.ExistingTests()
		if len(tests) == 0 {
			t.Errorf("%s: ExistingTests returned empty suite", s.ID)
			continue
		}
		cov, err := fuzz.Replay(s.MustParse(), s.Kernel, tests)
		if err != nil {
			t.Errorf("%s: replay: %v", s.ID, err)
			continue
		}
		if cov <= 0 || cov >= 0.95 {
			t.Errorf("%s: existing tests cover %.0f%%, want partial coverage", s.ID, 100*cov)
		}
	}
}

func TestHRSupportMatchesTable5(t *testing.T) {
	want := map[string]bool{"P3": true, "P8": true}
	for _, s := range All() {
		if s.HRSupported != want[s.ID] {
			t.Errorf("%s: HRSupported=%v, Table 5 says %v", s.ID, s.HRSupported, want[s.ID])
		}
	}
}
