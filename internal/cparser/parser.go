// Package cparser implements a recursive-descent parser for the C/HLS-C
// subset used throughout HeteroGen: functions, struct/union definitions
// (including HLS-C member functions and constructors), typedefs, global and
// local declarations, pointers and references, fixed- and unknown-size
// arrays, the full C expression grammar, control flow, and #pragma HLS
// directives, which attach to the loop or function they precede.
package cparser

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// Parse parses a translation unit from source text.
func Parse(src string) (*cast.Unit, error) {
	toks, lexErrs := ctoken.Tokenize(src)
	p := &parser{
		toks:     toks,
		unit:     &cast.Unit{Typedefs: map[string]ctypes.Type{}, Structs: map[string]*ctypes.Struct{}},
		typedefs: map[string]ctypes.Type{},
	}
	for _, e := range lexErrs {
		p.errs = append(p.errs, e.Error())
	}
	p.parseUnit()
	if len(p.errs) > 0 {
		return p.unit, fmt.Errorf("parse: %s", strings.Join(p.errs, "; "))
	}
	cast.NumberBranches(p.unit)
	return p.unit, nil
}

// MustParse parses src and panics on error; for tests and embedded subjects.
func MustParse(src string) *cast.Unit {
	u, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return u
}

type parser struct {
	toks     []ctoken.Token
	pos      int
	unit     *cast.Unit
	typedefs map[string]ctypes.Type
	errs     []string
	// lastVLADims holds runtime dimension expressions captured by the
	// most recent parseDeclarator call.
	lastVLADims []cast.Expr
	// curStruct is the struct currently being parsed (methods may refer
	// to its own tag as a constructor name).
	curStruct *ctypes.Struct
}

func (p *parser) cur() ctoken.Token  { return p.toks[p.pos] }
func (p *parser) peek() ctoken.Token { return p.at(1) }

func (p *parser) at(n int) ctoken.Token {
	if p.pos+n >= len(p.toks) {
		return p.toks[len(p.toks)-1] // EOF
	}
	return p.toks[p.pos+n]
}

func (p *parser) next() ctoken.Token {
	t := p.cur()
	if t.Kind != ctoken.EOF {
		p.pos++
	}
	return t
}

func (p *parser) accept(k ctoken.Kind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k ctoken.Kind) ctoken.Token {
	if p.cur().Kind == k {
		return p.next()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return ctoken.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *parser) errorf(format string, args ...any) {
	if len(p.errs) <= 40 { // avoid error floods on badly broken input
		p.errs = append(p.errs, fmt.Sprintf("%s: %s", p.cur().Pos, fmt.Sprintf(format, args...)))
	}
	// Recovery: always skip one token so loops make progress, even when
	// the message itself is suppressed.
	if p.cur().Kind != ctoken.EOF {
		p.pos++
	}
}

// ---------------------------------------------------------------------------
// Unit

func (p *parser) parseUnit() {
	var pendingPragmas []*cast.Pragma
	for p.cur().Kind != ctoken.EOF {
		if p.cur().Kind == ctoken.PRAGMA {
			t := p.next()
			pendingPragmas = append(pendingPragmas, &cast.Pragma{P: t.Pos, Text: t.Lit})
			continue
		}
		d := p.parseDecl()
		if d == nil {
			continue
		}
		if f, ok := d.(*cast.FuncDecl); ok && len(pendingPragmas) > 0 {
			f.Pragmas = append(pendingPragmas, f.Pragmas...)
			pendingPragmas = nil
		} else if len(pendingPragmas) > 0 {
			for _, pr := range pendingPragmas {
				p.unit.Decls = append(p.unit.Decls, &cast.PragmaDecl{P: pr.P, Text: pr.Text})
			}
			pendingPragmas = nil
		}
		p.unit.Decls = append(p.unit.Decls, d)
	}
	for _, pr := range pendingPragmas {
		p.unit.Decls = append(p.unit.Decls, &cast.PragmaDecl{P: pr.P, Text: pr.Text})
	}
}

// parseDecl parses one top-level declaration.
func (p *parser) parseDecl() cast.Decl {
	start := p.cur().Pos
	switch p.cur().Kind {
	case ctoken.KwTypedef:
		p.next()
		base := p.parseTypeSpec()
		if base == nil {
			p.errorf("expected type after 'typedef', found %s", p.cur())
			return nil
		}
		typ, name := p.parseDeclarator(base)
		if name == "" {
			p.errorf("typedef needs a name")
			return nil
		}
		p.expect(ctoken.SEMI)
		p.typedefs[name] = typ
		p.unit.Typedefs[name] = typ
		return &cast.TypedefDecl{P: start, Name: name, Type: typ}

	case ctoken.KwStruct, ctoken.KwUnion:
		// Distinguish "struct S { ... };" (definition) from
		// "struct S name;" (variable of struct type).
		if p.peek().Kind == ctoken.IDENT && p.at(2).Kind == ctoken.LBRACE {
			return p.parseStructDecl()
		}
	}

	// General declaration: specifiers, declarator, then either a function
	// body or a variable initializer.
	static, constQ := false, false
	for {
		switch p.cur().Kind {
		case ctoken.KwStatic:
			static = true
			p.next()
			continue
		case ctoken.KwConst:
			constQ = true
			p.next()
			continue
		case ctoken.KwExtern, ctoken.KwInline:
			p.next()
			continue
		}
		break
	}
	base := p.parseTypeSpec()
	if base == nil {
		p.errorf("expected declaration, found %s", p.cur())
		return nil
	}
	typ, name := p.parseDeclarator(base)
	if p.cur().Kind == ctoken.LPAREN {
		return p.parseFuncRest(start, typ, name, static)
	}
	v := &cast.VarDecl{P: start, Name: name, Type: typ, Static: static, Const: constQ}
	if p.accept(ctoken.ASSIGN) {
		v.Init = p.parseInitializer()
	}
	// Comma-separated additional declarators become separate decls; the
	// first is returned, the rest appended directly.
	for p.accept(ctoken.COMMA) {
		typ2, name2 := p.parseDeclarator(base)
		v2 := &cast.VarDecl{P: p.cur().Pos, Name: name2, Type: typ2, Static: static, Const: constQ}
		if p.accept(ctoken.ASSIGN) {
			v2.Init = p.parseInitializer()
		}
		p.unit.Decls = append(p.unit.Decls, v2)
	}
	p.expect(ctoken.SEMI)
	return v
}

// parseStructDecl parses "struct Tag { fields... methods... };".
func (p *parser) parseStructDecl() cast.Decl {
	start := p.cur().Pos
	isUnion := p.cur().Kind == ctoken.KwUnion
	p.next() // struct/union
	tag := p.expect(ctoken.IDENT).Lit
	st := &ctypes.Struct{Tag: tag, IsUnion: isUnion}
	p.unit.Structs[tag] = st
	decl := &cast.StructDecl{P: start, Type: st}
	prev := p.curStruct
	p.curStruct = st
	defer func() { p.curStruct = prev }()

	p.expect(ctoken.LBRACE)
	for p.cur().Kind != ctoken.RBRACE && p.cur().Kind != ctoken.EOF {
		// Constructor: Tag ( params ) [: init-list] { body }
		if p.cur().Kind == ctoken.IDENT && p.cur().Lit == tag && p.peek().Kind == ctoken.LPAREN {
			m := p.parseCtor(st)
			decl.Methods = append(decl.Methods, m)
			decl.HasCtor = true
			continue
		}
		base := p.parseTypeSpec()
		if base == nil {
			p.errorf("expected struct member, found %s", p.cur())
			continue
		}
		typ, name := p.parseDeclarator(base)
		if p.cur().Kind == ctoken.LPAREN {
			// Member function.
			m := p.parseFuncRest(p.cur().Pos, typ, name, false).(*cast.FuncDecl)
			decl.Methods = append(decl.Methods, m)
			continue
		}
		st.Fields = append(st.Fields, ctypes.Field{Name: name, Type: typ})
		for p.accept(ctoken.COMMA) {
			typ2, name2 := p.parseDeclarator(base)
			st.Fields = append(st.Fields, ctypes.Field{Name: name2, Type: typ2})
		}
		p.expect(ctoken.SEMI)
	}
	p.expect(ctoken.RBRACE)
	p.accept(ctoken.SEMI)
	return decl
}

// parseCtor parses a C++-style constructor, desugaring the member
// initializer list into leading assignments of the body.
func (p *parser) parseCtor(st *ctypes.Struct) *cast.FuncDecl {
	start := p.cur().Pos
	name := p.next().Lit // tag
	f := &cast.FuncDecl{P: start, Name: name, Ret: ctypes.Void{}}
	p.expect(ctoken.LPAREN)
	f.Params = p.parseParams()
	p.expect(ctoken.RPAREN)
	var inits []cast.Stmt
	if p.accept(ctoken.COLON) {
		for {
			fieldTok := p.expect(ctoken.IDENT)
			p.expect(ctoken.LPAREN)
			val := p.parseExpr()
			p.expect(ctoken.RPAREN)
			inits = append(inits, &cast.ExprStmt{P: fieldTok.Pos, X: &cast.Assign{
				P:  fieldTok.Pos,
				Op: ctoken.ASSIGN,
				L:  &cast.Ident{P: fieldTok.Pos, Name: fieldTok.Lit},
				R:  val,
			}})
			if !p.accept(ctoken.COMMA) {
				break
			}
		}
	}
	body := p.parseBlock()
	body.Stmts = append(inits, body.Stmts...)
	f.Body = body
	return f
}

// parseFuncRest parses the remainder of a function definition after its
// return type and name.
func (p *parser) parseFuncRest(start ctoken.Pos, ret ctypes.Type, name string, static bool) cast.Decl {
	f := &cast.FuncDecl{P: start, Name: name, Ret: ret, Static: static}
	p.expect(ctoken.LPAREN)
	f.Params = p.parseParams()
	p.expect(ctoken.RPAREN)
	p.accept(ctoken.KwConst) // trailing const on methods
	if p.accept(ctoken.SEMI) {
		return f // prototype
	}
	body := p.parseBlock()
	// Hoist leading pragmas of the body to the function head.
	for len(body.Stmts) > 0 {
		pr, ok := body.Stmts[0].(*cast.Pragma)
		if !ok {
			break
		}
		f.Pragmas = append(f.Pragmas, pr)
		body.Stmts = body.Stmts[1:]
	}
	f.Body = body
	return f
}

func (p *parser) parseParams() []cast.Param {
	var params []cast.Param
	if p.cur().Kind == ctoken.RPAREN {
		return params
	}
	if p.cur().Kind == ctoken.KwVoid && p.peek().Kind == ctoken.RPAREN {
		p.next()
		return params
	}
	for {
		base := p.parseTypeSpec()
		if base == nil {
			p.errorf("expected parameter type, found %s", p.cur())
			return params
		}
		typ, name := p.parseDeclarator(base)
		params = append(params, cast.Param{Name: name, Type: typ})
		if !p.accept(ctoken.COMMA) {
			break
		}
	}
	return params
}

// ---------------------------------------------------------------------------
// Types

// parseTypeSpec parses a type specifier (without declarator parts), or nil
// if the current token cannot start a type.
func (p *parser) parseTypeSpec() ctypes.Type {
	for p.cur().Kind == ctoken.KwConst || p.cur().Kind == ctoken.KwStatic {
		p.next()
	}
	t := p.cur()
	switch t.Kind {
	case ctoken.KwVoid:
		p.next()
		return ctypes.Void{}
	case ctoken.KwBool:
		p.next()
		return ctypes.Bool{}
	case ctoken.KwChar:
		p.next()
		return ctypes.Char
	case ctoken.KwFloat:
		p.next()
		return ctypes.FloatT
	case ctoken.KwDouble:
		p.next()
		return ctypes.DoubleT
	case ctoken.KwShort:
		p.next()
		p.accept(ctoken.KwInt)
		return ctypes.Short
	case ctoken.KwInt:
		p.next()
		return ctypes.IntT
	case ctoken.KwLong:
		p.next()
		switch p.cur().Kind {
		case ctoken.KwDouble:
			p.next()
			return ctypes.LongDoubleT
		case ctoken.KwLong:
			p.next()
			p.accept(ctoken.KwInt)
			return ctypes.LongLong
		case ctoken.KwInt:
			p.next()
		}
		return ctypes.Long
	case ctoken.KwSigned, ctoken.KwUnsigned:
		unsigned := t.Kind == ctoken.KwUnsigned
		p.next()
		base := ctypes.IntT
		switch p.cur().Kind {
		case ctoken.KwChar:
			p.next()
			base = ctypes.Char
		case ctoken.KwShort:
			p.next()
			p.accept(ctoken.KwInt)
			base = ctypes.Short
		case ctoken.KwInt:
			p.next()
		case ctoken.KwLong:
			p.next()
			p.accept(ctoken.KwLong)
			p.accept(ctoken.KwInt)
			base = ctypes.Long
		}
		base.Unsigned = unsigned
		return base
	case ctoken.KwStruct, ctoken.KwUnion:
		isUnion := t.Kind == ctoken.KwUnion
		p.next()
		tag := p.expect(ctoken.IDENT).Lit
		if st, ok := p.unit.Structs[tag]; ok {
			return st
		}
		// Forward reference: create the shell now; the definition fills it.
		st := &ctypes.Struct{Tag: tag, IsUnion: isUnion}
		p.unit.Structs[tag] = st
		return st
	case ctoken.IDENT:
		switch t.Lit {
		case "fpga_uint", "fpga_int":
			p.next()
			p.expect(ctoken.LSS)
			w := p.parseConstInt()
			p.expect(ctoken.GTR)
			return ctypes.FPGAInt{Width: w, Unsigned: t.Lit == "fpga_uint"}
		case "fpga_float":
			p.next()
			p.expect(ctoken.LSS)
			e := p.parseConstInt()
			p.expect(ctoken.COMMA)
			m := p.parseConstInt()
			p.expect(ctoken.GTR)
			return ctypes.FPGAFloat{Exp: e, Mant: m}
		case "hls":
			if p.peek().Kind == ctoken.COLONCOLON {
				p.next() // hls
				p.next() // ::
				kw := p.expect(ctoken.IDENT).Lit
				if kw != "stream" {
					p.errorf("unsupported hls:: type %q", kw)
				}
				p.expect(ctoken.LSS)
				elem := p.parseTypeSpec()
				if elem == nil {
					p.errorf("expected stream element type")
					elem = ctypes.IntT
				}
				p.expect(ctoken.GTR)
				return ctypes.Stream{Elem: elem}
			}
		case "size_t", "uint32_t":
			p.next()
			return ctypes.UIntT
		case "int32_t":
			p.next()
			return ctypes.IntT
		case "uint8_t":
			p.next()
			return ctypes.UChar
		case "int8_t":
			p.next()
			return ctypes.Char
		case "uint16_t":
			p.next()
			return ctypes.UShort
		case "int64_t":
			p.next()
			return ctypes.Long
		case "uint64_t":
			p.next()
			return ctypes.ULong
		}
		if td, ok := p.typedefs[t.Lit]; ok {
			p.next()
			return ctypes.Named{Name: t.Lit, Underlying: td}
		}
		if st, ok := p.unit.Structs[t.Lit]; ok {
			// HLS-C allows bare struct tags as type names.
			p.next()
			return st
		}
		return nil
	}
	return nil
}

func (p *parser) parseConstInt() int {
	neg := p.accept(ctoken.SUB)
	tok := p.expect(ctoken.INTLIT)
	v, _ := strconv.ParseInt(strings.TrimRight(tok.Lit, "uUlL"), 0, 64)
	if neg {
		v = -v
	}
	return int(v)
}

// parseDeclarator parses pointer stars, optional reference, the declared
// name, and array suffixes, returning the full type and the name. An empty
// name results for abstract declarators (casts). Runtime (VLA) dimension
// expressions are recorded in p.lastVLADims for the declaration parser.
func (p *parser) parseDeclarator(base ctypes.Type) (ctypes.Type, string) {
	typ := base
	for p.accept(ctoken.MUL) {
		typ = ctypes.Pointer{Elem: typ}
	}
	if p.accept(ctoken.AND) {
		typ = ctypes.Ref{Elem: typ}
	}
	name := ""
	if p.cur().Kind == ctoken.IDENT {
		name = p.next().Lit
	}
	// Array suffixes: build outermost-first so int a[2][3] is
	// Array(len=2, Array(len=3, int)).
	var dims []int
	p.lastVLADims = nil
	for p.accept(ctoken.LBRACKET) {
		if p.cur().Kind == ctoken.RBRACKET {
			dims = append(dims, -1)
		} else if p.cur().Kind == ctoken.INTLIT {
			dims = append(dims, p.parseConstInt())
		} else {
			// Unknown-size (expression) dimension: the canonical
			// SYNCHK-61 trigger. Keep the expression so the CPU
			// interpreter can still run the original program.
			p.lastVLADims = append(p.lastVLADims, p.parseExpr())
			dims = append(dims, -1)
		}
		p.expect(ctoken.RBRACKET)
	}
	for i := len(dims) - 1; i >= 0; i-- {
		typ = ctypes.Array{Elem: typ, Len: dims[i]}
	}
	return typ, name
}

// tryType attempts to parse a full abstract type (for casts and sizeof);
// it returns nil and restores the position on failure.
func (p *parser) tryType() ctypes.Type {
	save := p.pos
	base := p.parseTypeSpec()
	if base == nil {
		p.pos = save
		return nil
	}
	typ, name := p.parseDeclarator(base)
	if name != "" {
		p.pos = save
		return nil
	}
	return typ
}

// isTypeAhead reports whether a declaration (not an expression) starts at
// the current token, used to disambiguate statements.
func (p *parser) isTypeAhead() bool {
	switch p.cur().Kind {
	case ctoken.KwVoid, ctoken.KwChar, ctoken.KwShort, ctoken.KwInt,
		ctoken.KwLong, ctoken.KwFloat, ctoken.KwDouble, ctoken.KwSigned,
		ctoken.KwUnsigned, ctoken.KwBool, ctoken.KwStruct, ctoken.KwUnion,
		ctoken.KwConst, ctoken.KwStatic:
		return true
	case ctoken.IDENT:
		lit := p.cur().Lit
		switch lit {
		case "fpga_uint", "fpga_int", "fpga_float":
			return p.peek().Kind == ctoken.LSS
		case "hls":
			return p.peek().Kind == ctoken.COLONCOLON
		case "size_t", "uint8_t", "int8_t", "uint16_t", "uint32_t",
			"int32_t", "uint64_t", "int64_t":
			return true
		}
		_, isTypedef := p.typedefs[lit]
		_, isStruct := p.unit.Structs[lit]
		if !isTypedef && !isStruct {
			return false
		}
		// "T x", "T *x", "T &x" are declarations; "T(...)" or "T {" are
		// expressions (ctor temporaries).
		switch p.peek().Kind {
		case ctoken.IDENT, ctoken.MUL, ctoken.AND:
			return true
		}
		return false
	}
	return false
}
