package cparser

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctypes"
)

func TestParseCommaDeclaratorsFileScope(t *testing.T) {
	u := MustParse(`int a = 1, b = 2, c;`)
	for _, name := range []string{"a", "b", "c"} {
		if u.Var(name) == nil {
			t.Errorf("declarator %q lost", name)
		}
	}
	if u.Var("b").Init.(*cast.IntLit).Value != 2 {
		t.Error("b initializer lost")
	}
}

func TestParseCommaDeclaratorsLocal(t *testing.T) {
	u := MustParse(`
int f() {
    int x = 1, y = 2;
    return x + y;
}`)
	names := map[string]bool{}
	cast.Inspect(u, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok {
			names[d.Name] = true
		}
		return true
	})
	if !names["x"] || !names["y"] {
		t.Errorf("local declarators: %v", names)
	}
}

func TestParseDoWhilePragmaHoist(t *testing.T) {
	u := MustParse(`
void f(int a[8]) {
    int i = 0;
    do {
#pragma HLS pipeline II=1
        a[i] = i;
        i++;
    } while (i < 8);
}`)
	var w *cast.While
	cast.Inspect(u, func(n cast.Node) bool {
		if x, ok := n.(*cast.While); ok {
			w = x
		}
		return true
	})
	if w == nil || !w.DoWhile {
		t.Fatal("do-while missing")
	}
	if len(w.Pragmas) != 1 {
		t.Errorf("do-while pragma not hoisted: %v", w.Pragmas)
	}
}

func TestParsePrototypeAndDefinition(t *testing.T) {
	u := MustParse(`
int helper(int x);
int caller(int y) { return helper(y); }
int helper(int x) { return x * 2; }
`)
	// Func returns the first match (the prototype); execution needs the
	// definition, which the interpreter resolves the same way — make sure
	// the defined body is reachable.
	defs := 0
	for _, d := range u.Decls {
		if f, ok := d.(*cast.FuncDecl); ok && f.Name == "helper" && f.Body != nil {
			defs++
		}
	}
	if defs != 1 {
		t.Errorf("helper definitions = %d", defs)
	}
}

func TestParseUnsupportedHLSType(t *testing.T) {
	_, err := Parse(`void f(hls::vector<int> v) { }`)
	if err == nil || !strings.Contains(err.Error(), "unsupported hls:: type") {
		t.Errorf("want unsupported-type error, got %v", err)
	}
}

func TestParseStdintAliases(t *testing.T) {
	u := MustParse(`
uint8_t a;
int8_t b;
uint16_t c;
uint32_t d;
int32_t e;
uint64_t f;
int64_t g;
size_t h;
`)
	want := map[string]ctypes.Type{
		"a": ctypes.UChar, "b": ctypes.Char, "c": ctypes.UShort,
		"d": ctypes.UIntT, "e": ctypes.IntT, "f": ctypes.ULong,
		"g": ctypes.Long, "h": ctypes.UIntT,
	}
	for name, typ := range want {
		v := u.Var(name)
		if v == nil || !v.Type.Equal(typ) {
			t.Errorf("%s: got %v want %v", name, v.Type, typ)
		}
	}
}

func TestParseDeepNesting(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("int f(int x) {\n")
	depth := 40
	for i := 0; i < depth; i++ {
		sb.WriteString("if (x > 0) {\n")
	}
	sb.WriteString("x = x + 1;\n")
	for i := 0; i < depth; i++ {
		sb.WriteString("}\n")
	}
	sb.WriteString("return x;\n}\n")
	u, err := Parse(sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if u.NumBranches != depth {
		t.Errorf("branches = %d, want %d", u.NumBranches, depth)
	}
}

func TestParseMethodTrailingConst(t *testing.T) {
	u := MustParse(`
struct S {
    int v;
    int get() const {
        return v;
    }
};
void f() { }`)
	sd := u.StructOf("S")
	if sd == nil || len(sd.Methods) != 1 || sd.Methods[0].Name != "get" {
		t.Fatalf("method with trailing const lost: %+v", sd)
	}
}

func TestParseNegativeArrayDim(t *testing.T) {
	// A negative dimension parses as an expression dimension (unknown
	// size) and gets flagged by the checker rather than crashing.
	u := MustParse(`
void f() {
    int a[8];
    a[0] = 1;
}`)
	if u.Func("f") == nil {
		t.Fatal("f missing")
	}
}

func TestParseCharAndStringEscapes(t *testing.T) {
	u := MustParse(`
void f() {
    char nl = '\n';
    char tab = '\t';
    char zero = '\0';
    printf("a\tb\n");
}`)
	printed := cast.Print(u)
	if !strings.Contains(printed, `'\n'`) || !strings.Contains(printed, `'\0'`) {
		t.Errorf("char escapes lost:\n%s", printed)
	}
	u2 := MustParse(printed)
	if cast.Print(u2) != printed {
		t.Error("escape round trip broken")
	}
}

func TestParseErrorsHaveRecovery(t *testing.T) {
	// Many errors, but the parser must terminate and report.
	_, err := Parse(`
int f( {
int g() { return 1; }
void h( ] ;
`)
	if err == nil {
		t.Fatal("expected errors")
	}
	if !strings.Contains(err.Error(), "parse:") {
		t.Errorf("error shape: %v", err)
	}
}
