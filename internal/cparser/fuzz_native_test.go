package cparser

import (
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
)

// FuzzParse drives the lexer+parser+printer with arbitrary inputs: no
// input may panic, and any input that parses must round-trip through the
// printer to a fixed point. Run with `go test -fuzz=FuzzParse` for a real
// campaign; the seeds below run in every normal `go test`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"int f() { return 1; }",
		"struct S { int x; };",
		"#pragma HLS unroll factor=4",
		`void k(int a[8]) { for (int i = 0; i < 8; i++) { a[i] = i; } }`,
		"int f( {",
		"typedef int T; T x;",
		`int f(fpga_uint<7> x) { return x > 100 ? 1 : 0; }`,
		"long double d;",
		`struct N { int v; struct N *n; }; struct N *h;`,
		"int a[/*]*/3];",
		"\"unterminated",
		"int x = 'c' + 0x7f;",
		"void g() { goto end; end: return; }",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		u, err := Parse(src)
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		p1 := cast.Print(u)
		u2, err := Parse(p1)
		if err != nil {
			t.Fatalf("printed form does not reparse: %v\nsource: %q\nprinted:\n%s", err, src, p1)
		}
		p2 := cast.Print(u2)
		if p1 != p2 {
			t.Fatalf("print not a fixed point for %q\nfirst:\n%s\nsecond:\n%s", src, p1, p2)
		}
		// The checker must never panic on a parsed unit.
		check.Run(u, hls.DefaultConfig("kernel"))
		// Cloning preserves the printed form.
		if cast.Print(cast.CloneUnit(u)) != p1 {
			t.Fatalf("clone print differs for %q", src)
		}
	})
}
