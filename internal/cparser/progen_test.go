package cparser

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/interp"
)

// progen generates random-but-valid C programs: declared-before-use int
// variables, bounded loops, safe arithmetic (no division), a kernel(int)
// entry point. It drives the cross-cutting properties: print/parse fixed
// point, clone fidelity, and deterministic interpretation.
type progen struct {
	rng  *rand.Rand
	vars []string
	sb   strings.Builder
	ind  int
}

func (g *progen) w(format string, args ...any) {
	for i := 0; i < g.ind; i++ {
		g.sb.WriteString("    ")
	}
	fmt.Fprintf(&g.sb, format, args...)
	g.sb.WriteByte('\n')
}

func (g *progen) expr(depth int) string {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		if len(g.vars) > 0 && g.rng.Intn(2) == 0 {
			return g.vars[g.rng.Intn(len(g.vars))]
		}
		return fmt.Sprintf("%d", g.rng.Intn(100)-50)
	}
	ops := []string{"+", "-", "*", "^", "&", "|"}
	op := ops[g.rng.Intn(len(ops))]
	return fmt.Sprintf("(%s %s %s)", g.expr(depth-1), op, g.expr(depth-1))
}

func (g *progen) cond() string {
	rel := []string{"<", ">", "<=", ">=", "==", "!="}[g.rng.Intn(6)]
	return fmt.Sprintf("%s %s %s", g.expr(1), rel, g.expr(1))
}

func (g *progen) stmt(depth int) {
	switch g.rng.Intn(5) {
	case 0:
		name := fmt.Sprintf("v%d", len(g.vars))
		g.w("int %s = %s;", name, g.expr(2))
		g.vars = append(g.vars, name)
	case 1:
		if len(g.vars) == 0 {
			g.stmt(depth)
			return
		}
		v := g.vars[g.rng.Intn(len(g.vars))]
		op := []string{"=", "+=", "-=", "*=", "^="}[g.rng.Intn(5)]
		g.w("%s %s %s;", v, op, g.expr(2))
	case 2:
		if depth <= 0 {
			g.stmt(0)
			return
		}
		g.w("if (%s) {", g.cond())
		g.ind++
		g.stmt(depth - 1)
		g.ind--
		if g.rng.Intn(2) == 0 {
			g.w("} else {")
			g.ind++
			g.stmt(depth - 1)
			g.ind--
		}
		g.w("}")
	case 3:
		if depth <= 0 {
			g.stmt(0)
			return
		}
		iv := fmt.Sprintf("i%d", g.rng.Intn(1000))
		g.w("for (int %s = 0; %s < %d; %s++) {", iv, iv, 1+g.rng.Intn(8), iv)
		g.ind++
		saved := g.vars
		g.vars = append(append([]string{}, g.vars...), iv)
		g.stmt(depth - 1)
		g.vars = saved
		g.ind--
		g.w("}")
	case 4:
		if len(g.vars) == 0 {
			g.stmt(depth)
			return
		}
		v := g.vars[g.rng.Intn(len(g.vars))]
		g.w("%s = %s > 0 ? %s : %s;", v, v, g.expr(1), g.expr(1))
	}
}

func generateProgram(seed int64) string {
	g := &progen{rng: rand.New(rand.NewSource(seed))}
	g.w("int kernel(int x) {")
	g.ind++
	g.vars = []string{"x"}
	n := 3 + g.rng.Intn(6)
	for i := 0; i < n; i++ {
		g.stmt(2)
	}
	g.w("return %s;", g.expr(2))
	g.ind--
	g.w("}")
	return g.sb.String()
}

// Property: every generated program parses, and printing is a fixed point.
func TestGeneratedProgramsPrintParseFixedPoint(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		src := generateProgram(seed)
		u1, err := Parse(src)
		if err != nil {
			t.Fatalf("seed %d: parse: %v\n%s", seed, err, src)
		}
		p1 := cast.Print(u1)
		u2, err := Parse(p1)
		if err != nil {
			t.Fatalf("seed %d: reparse: %v\n%s", seed, err, p1)
		}
		p2 := cast.Print(u2)
		if p1 != p2 {
			t.Fatalf("seed %d: print not a fixed point\n--- first\n%s\n--- second\n%s", seed, p1, p2)
		}
	}
}

// Property: cloning preserves the printed form exactly.
func TestGeneratedProgramsCloneFidelity(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		u := MustParse(generateProgram(seed))
		if cast.Print(u) != cast.Print(cast.CloneUnit(u)) {
			t.Fatalf("seed %d: clone prints differently", seed)
		}
	}
}

// Property: interpretation is deterministic and never panics; when it
// succeeds the result matches across two fresh interpreter instances, and
// the reparsed program computes the same value (parser/printer/interp
// agreement).
func TestGeneratedProgramsDeterministicExecution(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		src := generateProgram(seed)
		u := MustParse(src)
		run := func(unit *cast.Unit, arg int64) (int64, error) {
			in, err := interp.New(unit, interp.Options{MaxSteps: 300000})
			if err != nil {
				return 0, err
			}
			res, err := in.CallKernel("kernel", []interp.Value{interp.IntValue(arg)})
			if err != nil {
				return 0, err
			}
			return res.Ret.AsInt(), nil
		}
		for _, arg := range []int64{0, 7, -13} {
			r1, e1 := run(u, arg)
			r2, e2 := run(u, arg)
			if (e1 == nil) != (e2 == nil) || r1 != r2 {
				t.Fatalf("seed %d arg %d: nondeterministic: (%d,%v) vs (%d,%v)",
					seed, arg, r1, e1, r2, e2)
			}
			if e1 != nil {
				continue
			}
			u2 := MustParse(cast.Print(u))
			r3, e3 := run(u2, arg)
			if e3 != nil || r3 != r1 {
				t.Fatalf("seed %d arg %d: reparsed program diverges: %d vs %d (%v)\n%s",
					seed, arg, r1, r3, e3, src)
			}
		}
	}
}
