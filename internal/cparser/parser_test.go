package cparser

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctypes"
)

func TestParseSimpleFunction(t *testing.T) {
	u := MustParse(`
int add(int a, int b) {
    return a + b;
}`)
	f := u.Func("add")
	if f == nil {
		t.Fatal("function add not found")
	}
	if len(f.Params) != 2 {
		t.Fatalf("params = %d", len(f.Params))
	}
	if !f.Ret.Equal(ctypes.IntT) {
		t.Errorf("return type %v", f.Ret)
	}
	if len(f.Body.Stmts) != 1 {
		t.Errorf("body statements = %d", len(f.Body.Stmts))
	}
	if _, ok := f.Body.Stmts[0].(*cast.Return); !ok {
		t.Errorf("expected return, got %T", f.Body.Stmts[0])
	}
}

func TestParseGlobalsAndTypedefs(t *testing.T) {
	u := MustParse(`
typedef int Node_ptr;
static const int N = 64;
Node_ptr root;
int table[64];
`)
	if _, ok := u.Typedefs["Node_ptr"]; !ok {
		t.Error("typedef Node_ptr missing")
	}
	n := u.Var("N")
	if n == nil || !n.Static || !n.Const {
		t.Errorf("N qualifiers wrong: %+v", n)
	}
	root := u.Var("root")
	if root == nil {
		t.Fatal("root missing")
	}
	if root.Type.C("") != "Node_ptr" {
		t.Errorf("root type %q", root.Type.C(""))
	}
	tab := u.Var("table")
	arr, ok := tab.Type.(ctypes.Array)
	if !ok || arr.Len != 64 {
		t.Errorf("table type %v", tab.Type)
	}
}

func TestParseStructWithPointers(t *testing.T) {
	u := MustParse(`
struct Node {
    float val;
    struct Node *left;
    struct Node *right;
};
struct Node *root;
`)
	st, ok := u.Structs["Node"]
	if !ok {
		t.Fatal("struct Node missing")
	}
	if len(st.Fields) != 3 {
		t.Fatalf("fields = %d", len(st.Fields))
	}
	ptr, ok := st.Fields[1].Type.(ctypes.Pointer)
	if !ok {
		t.Fatalf("left is %T", st.Fields[1].Type)
	}
	inner, ok := ptr.Elem.(*ctypes.Struct)
	if !ok || inner.Tag != "Node" {
		t.Errorf("self-referential pointer resolves to %v", ptr.Elem)
	}
}

func TestParseRecursionAndMalloc(t *testing.T) {
	u := MustParse(`
struct Node { int val; struct Node *left; struct Node *right; };
void init(struct Node **root) {
    *root = (struct Node *)malloc(sizeof(struct Node));
}
void traverse(struct Node *curr) {
    if (curr == 0) { return; }
    traverse(curr->left);
    traverse(curr->right);
}
`)
	tr := u.Func("traverse")
	if tr == nil {
		t.Fatal("traverse missing")
	}
	calls := cast.CallsTo(tr, "traverse")
	if len(calls) != 2 {
		t.Errorf("recursive calls found = %d, want 2", len(calls))
	}
	init := u.Func("init")
	mallocs := cast.CallsTo(init, "malloc")
	if len(mallocs) != 1 {
		t.Errorf("malloc calls = %d", len(mallocs))
	}
}

func TestParseControlFlow(t *testing.T) {
	u := MustParse(`
int f(int n) {
    int s = 0;
    for (int i = 0; i < n; i++) {
        if (i % 2 == 0) { s += i; } else { s -= i; }
    }
    while (s > 100) { s /= 2; }
    do { s++; } while (s < 0);
    switch (s) {
    case 0:
        return 1;
    case 1:
    default:
        break;
    }
    return s > 0 ? s : -s;
}
`)
	f := u.Func("f")
	if f == nil {
		t.Fatal("f missing")
	}
	var fors, whiles, ifs, switches, conds int
	cast.Inspect(f, func(n cast.Node) bool {
		switch n.(type) {
		case *cast.For:
			fors++
		case *cast.While:
			whiles++
		case *cast.If:
			ifs++
		case *cast.Switch:
			switches++
		case *cast.Cond:
			conds++
		}
		return true
	})
	if fors != 1 || whiles != 2 || ifs != 1 || switches != 1 || conds != 1 {
		t.Errorf("counts: for=%d while=%d if=%d switch=%d cond=%d",
			fors, whiles, ifs, switches, conds)
	}
	if u.NumBranches == 0 {
		t.Error("branches not numbered")
	}
}

func TestParseHLSTypes(t *testing.T) {
	u := MustParse(`
fpga_uint<7> ret;
fpga_int<12> x;
fpga_float<8,71> f;
`)
	if !u.Var("ret").Type.Equal(ctypes.FPGAInt{Width: 7, Unsigned: true}) {
		t.Errorf("ret type %v", u.Var("ret").Type)
	}
	if !u.Var("x").Type.Equal(ctypes.FPGAInt{Width: 12}) {
		t.Errorf("x type %v", u.Var("x").Type)
	}
	if !u.Var("f").Type.Equal(ctypes.FPGAFloat{Exp: 8, Mant: 71}) {
		t.Errorf("f type %v", u.Var("f").Type)
	}
}

func TestParseStreamsAndStructMethods(t *testing.T) {
	u := MustParse(`
#include <hls_stream.h>
struct If2 {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    If2(hls::stream<unsigned> &i, hls::stream<unsigned> &o) : in(i), out(o) {}
    unsigned doRead() {
        return in.read();
    }
    void do1() {
        out.write(doRead() + 1);
    }
};
void top(hls::stream<unsigned> &in, hls::stream<unsigned> &out) {
#pragma HLS DATAFLOW
    hls::stream<unsigned> tmp;
    If2{ in, tmp }.do1();
    If2{ tmp, out }.do1();
}
`)
	sd := u.StructOf("If2")
	if sd == nil {
		t.Fatal("struct If2 missing")
	}
	if !sd.HasCtor {
		t.Error("constructor not detected")
	}
	if len(sd.Methods) != 3 {
		t.Errorf("methods = %d, want 3 (ctor, doRead, do1)", len(sd.Methods))
	}
	top := u.Func("top")
	if top == nil {
		t.Fatal("top missing")
	}
	if len(top.Pragmas) != 1 || !strings.Contains(top.Pragmas[0].Text, "DATAFLOW") {
		t.Errorf("top pragmas %v", top.Pragmas)
	}
	// Constructor initializer list desugars to assignments.
	ctor := sd.Methods[0]
	if len(ctor.Body.Stmts) != 2 {
		t.Errorf("ctor body stmts = %d", len(ctor.Body.Stmts))
	}
}

func TestParseLoopPragmaAttachment(t *testing.T) {
	u := MustParse(`
void k(int a[16]) {
    for (int i = 0; i < 16; i++) {
#pragma HLS unroll factor=4
        a[i] = a[i] * 2;
    }
}
`)
	var loop *cast.For
	cast.Inspect(u, func(n cast.Node) bool {
		if f, ok := n.(*cast.For); ok {
			loop = f
		}
		return true
	})
	if loop == nil {
		t.Fatal("loop missing")
	}
	if len(loop.Pragmas) != 1 || !strings.Contains(loop.Pragmas[0].Text, "unroll") {
		t.Fatalf("loop pragmas %v", loop.Pragmas)
	}
}

func TestParseUnknownSizeArray(t *testing.T) {
	u := MustParse(`
void f(int cols) {
    int line_buf[cols];
    line_buf[0] = 1;
}
`)
	var decl *cast.DeclStmt
	cast.Inspect(u, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok && d.Name == "line_buf" {
			decl = d
		}
		return true
	})
	if decl == nil {
		t.Fatal("line_buf missing")
	}
	arr, ok := decl.Type.(ctypes.Array)
	if !ok || arr.Len != -1 {
		t.Errorf("line_buf type %v; want unknown-size array", decl.Type)
	}
}

func TestParseLongDouble(t *testing.T) {
	u := MustParse(`
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}
`)
	var decl *cast.DeclStmt
	cast.Inspect(u, func(n cast.Node) bool {
		if d, ok := n.(*cast.DeclStmt); ok && d.Name == "in_ld" {
			decl = d
		}
		return true
	})
	if decl == nil || !decl.Type.Equal(ctypes.LongDoubleT) {
		t.Fatalf("in_ld type: %+v", decl)
	}
}

func TestParseErrorsReported(t *testing.T) {
	_, err := Parse("int f( {")
	if err == nil {
		t.Error("expected parse error")
	}
	_, err = Parse("@@@")
	if err == nil {
		t.Error("expected lex error surfaced")
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	u := MustParse(`int f() { return 1 + 2 * 3 - 4 / 2; }`)
	ret := u.Func("f").Body.Stmts[0].(*cast.Return)
	// ((1 + (2*3)) - (4/2))
	top, ok := ret.X.(*cast.Binary)
	if !ok {
		t.Fatalf("top %T", ret.X)
	}
	if top.Op.String() != "-" {
		t.Errorf("top op %s", top.Op)
	}
	l := top.L.(*cast.Binary)
	if l.Op.String() != "+" {
		t.Errorf("left op %s", l.Op)
	}
	if lr := l.R.(*cast.Binary); lr.Op.String() != "*" {
		t.Errorf("mul term %s", lr.Op)
	}
}

func TestParseCastAndSizeof(t *testing.T) {
	u := MustParse(`
struct Node { int v; };
void f() {
    struct Node *p = (struct Node *)malloc(sizeof(struct Node));
    int n = sizeof(p);
    float g = (float)n;
    p->v = n;
}
`)
	f := u.Func("f")
	var casts, sizeofTypes, sizeofExprs int
	cast.Inspect(f, func(n cast.Node) bool {
		switch n.(type) {
		case *cast.Cast:
			casts++
		case *cast.SizeofType:
			sizeofTypes++
		case *cast.SizeofExpr:
			sizeofExprs++
		}
		return true
	})
	if casts != 2 || sizeofTypes != 1 || sizeofExprs != 1 {
		t.Errorf("casts=%d sizeofT=%d sizeofE=%d", casts, sizeofTypes, sizeofExprs)
	}
}

// Round trip: print(parse(print(parse(src)))) == print(parse(src)).
func TestPrintParseFixedPoint(t *testing.T) {
	srcs := []string{
		`int add(int a, int b) { return a + b; }`,
		`
struct Node { int val; struct Node *next; };
struct Node *head;
void push(int v) {
    struct Node *n = (struct Node *)malloc(sizeof(struct Node));
    n->val = v;
    n->next = head;
    head = n;
}`,
		`
void kernel(float in[64], float out[64]) {
    for (int i = 0; i < 64; i++) {
#pragma HLS pipeline II=1
        out[i] = in[i] * 2.5 + 1.0;
    }
}`,
		`
int f(int x) {
    switch (x) {
    case 0:
        return 1;
    default:
        return x > 0 ? x : -x;
    }
}`,
		`
typedef unsigned int Node_ptr;
fpga_uint<7> g;
static fpga_float<8,71> h;
`,
	}
	for i, src := range srcs {
		u1, err := Parse(src)
		if err != nil {
			t.Fatalf("case %d: parse 1: %v", i, err)
		}
		p1 := cast.Print(u1)
		u2, err := Parse(p1)
		if err != nil {
			t.Fatalf("case %d: parse 2: %v\nprinted:\n%s", i, err, p1)
		}
		p2 := cast.Print(u2)
		if p1 != p2 {
			t.Errorf("case %d: print not a fixed point\nfirst:\n%s\nsecond:\n%s", i, p1, p2)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	u := MustParse(`
int g;
int f(int x) {
    if (x > 0) { g = x; }
    return g;
}`)
	clone := cast.CloneUnit(u)
	// Mutate the clone: rename the function.
	clone.Func("f").Name = "renamed"
	if u.Func("f") == nil {
		t.Error("original mutated through clone")
	}
	if clone.Func("renamed") == nil {
		t.Error("clone edit lost")
	}
	if cast.Print(u) == cast.Print(clone) {
		t.Error("prints should differ after clone edit")
	}
}

func TestCountLines(t *testing.T) {
	u := MustParse(`int f() { return 1; }`)
	if n := cast.CountLines(u); n != 3 { // signature, return, closing brace
		t.Errorf("CountLines = %d", n)
	}
}
