package cparser

import (
	"strconv"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// parseExpr parses a full expression (assignment level; the comma operator
// is not part of the subset — argument lists use explicit grammar).
func (p *parser) parseExpr() cast.Expr { return p.parseAssignExpr() }

func (p *parser) parseAssignExpr() cast.Expr {
	l := p.parseCondExpr()
	if p.cur().Kind.IsAssignOp() {
		op := p.next().Kind
		r := p.parseAssignExpr()
		return &cast.Assign{P: l.Pos(), Op: op, L: l, R: r}
	}
	return l
}

func (p *parser) parseCondExpr() cast.Expr {
	c := p.parseBinaryExpr(1)
	if p.accept(ctoken.QUESTION) {
		t := p.parseAssignExpr()
		p.expect(ctoken.COLON)
		f := p.parseCondExpr()
		return &cast.Cond{P: c.Pos(), C: c, T: t, F: f, BranchID: -1}
	}
	return c
}

// binPrec mirrors cast.precOf: higher binds tighter.
func binPrec(k ctoken.Kind) int {
	switch k {
	case ctoken.MUL, ctoken.QUO, ctoken.REM:
		return 10
	case ctoken.ADD, ctoken.SUB:
		return 9
	case ctoken.SHL, ctoken.SHR:
		return 8
	case ctoken.LSS, ctoken.GTR, ctoken.LEQ, ctoken.GEQ:
		return 7
	case ctoken.EQL, ctoken.NEQ:
		return 6
	case ctoken.AND:
		return 5
	case ctoken.XOR:
		return 4
	case ctoken.OR:
		return 3
	case ctoken.LAND:
		return 2
	case ctoken.LOR:
		return 1
	}
	return 0
}

func (p *parser) parseBinaryExpr(minPrec int) cast.Expr {
	l := p.parseUnaryExpr()
	for {
		prec := binPrec(p.cur().Kind)
		if prec < minPrec || prec == 0 {
			return l
		}
		op := p.next().Kind
		r := p.parseBinaryExpr(prec + 1)
		l = &cast.Binary{P: l.Pos(), Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnaryExpr() cast.Expr {
	t := p.cur()
	switch t.Kind {
	case ctoken.ADD:
		p.next()
		return p.parseUnaryExpr()
	case ctoken.SUB, ctoken.NOT, ctoken.TILD, ctoken.MUL, ctoken.AND:
		p.next()
		x := p.parseUnaryExpr()
		return &cast.Unary{P: t.Pos, Op: t.Kind, X: x}
	case ctoken.INC, ctoken.DEC:
		p.next()
		x := p.parseUnaryExpr()
		return &cast.Unary{P: t.Pos, Op: t.Kind, X: x}
	case ctoken.KwSizeof:
		p.next()
		p.expect(ctoken.LPAREN)
		if typ := p.tryType(); typ != nil && p.cur().Kind == ctoken.RPAREN {
			p.next()
			return &cast.SizeofType{P: t.Pos, T: typ}
		}
		x := p.parseExpr()
		p.expect(ctoken.RPAREN)
		return &cast.SizeofExpr{P: t.Pos, X: x}
	case ctoken.LPAREN:
		// Either a cast "(T)expr" or a parenthesized expression.
		save := p.pos
		p.next()
		if typ := p.tryType(); typ != nil && p.cur().Kind == ctoken.RPAREN {
			p.next()
			// Cast only when followed by something that can start a
			// unary expression; otherwise it was "(ident)".
			switch p.cur().Kind {
			case ctoken.IDENT, ctoken.INTLIT, ctoken.FLOATLIT, ctoken.STRLIT,
				ctoken.CHARLIT, ctoken.LPAREN, ctoken.SUB, ctoken.NOT,
				ctoken.TILD, ctoken.MUL, ctoken.AND, ctoken.INC, ctoken.DEC,
				ctoken.KwSizeof, ctoken.KwTrue, ctoken.KwFalse:
				x := p.parseUnaryExpr()
				return &cast.Cast{P: t.Pos, To: typ, X: x}
			}
		}
		p.pos = save
		p.next() // (
		x := p.parseExpr()
		p.expect(ctoken.RPAREN)
		return p.parsePostfixOps(x)
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() cast.Expr {
	t := p.cur()
	var x cast.Expr
	switch t.Kind {
	case ctoken.INTLIT:
		p.next()
		x = &cast.IntLit{P: t.Pos, Value: parseIntLit(t.Lit), Text: t.Lit}
	case ctoken.FLOATLIT:
		p.next()
		v, _ := strconv.ParseFloat(trimFloatSuffix(t.Lit), 64)
		x = &cast.FloatLit{P: t.Pos, Value: v, Text: t.Lit}
	case ctoken.STRLIT:
		p.next()
		x = &cast.StrLit{P: t.Pos, Value: t.Lit}
	case ctoken.CHARLIT:
		p.next()
		var b byte
		if len(t.Lit) > 0 {
			b = t.Lit[0]
		}
		x = &cast.CharLit{P: t.Pos, Value: b}
	case ctoken.KwTrue:
		p.next()
		x = &cast.BoolLit{P: t.Pos, Value: true}
	case ctoken.KwFalse:
		p.next()
		x = &cast.BoolLit{P: t.Pos, Value: false}
	case ctoken.IDENT:
		// Struct temporary "Tag{a, b}".
		if st, ok := p.unit.Structs[t.Lit]; ok && p.peek().Kind == ctoken.LBRACE {
			p.next() // tag
			p.next() // {
			il := &cast.InitList{P: t.Pos, Type: st}
			for p.cur().Kind != ctoken.RBRACE && p.cur().Kind != ctoken.EOF {
				il.Elems = append(il.Elems, p.parseAssignExpr())
				if !p.accept(ctoken.COMMA) {
					break
				}
			}
			p.expect(ctoken.RBRACE)
			x = il
			break
		}
		p.next()
		x = &cast.Ident{P: t.Pos, Name: t.Lit}
	default:
		p.errorf("expected expression, found %s", t)
		return &cast.IntLit{P: t.Pos}
	}
	return p.parsePostfixOps(x)
}

func (p *parser) parsePostfixOps(x cast.Expr) cast.Expr {
	for {
		t := p.cur()
		switch t.Kind {
		case ctoken.LPAREN:
			p.next()
			call := &cast.Call{P: x.Pos(), Fun: x}
			for p.cur().Kind != ctoken.RPAREN && p.cur().Kind != ctoken.EOF {
				call.Args = append(call.Args, p.parseAssignExpr())
				if !p.accept(ctoken.COMMA) {
					break
				}
			}
			p.expect(ctoken.RPAREN)
			x = call
		case ctoken.LBRACKET:
			p.next()
			idx := p.parseExpr()
			p.expect(ctoken.RBRACKET)
			x = &cast.Index{P: x.Pos(), X: x, Idx: idx}
		case ctoken.DOT:
			p.next()
			f := p.expect(ctoken.IDENT).Lit
			x = &cast.Member{P: x.Pos(), X: x, Field: f}
		case ctoken.ARROW:
			p.next()
			f := p.expect(ctoken.IDENT).Lit
			x = &cast.Member{P: x.Pos(), X: x, Field: f, Arrow: true}
		case ctoken.INC, ctoken.DEC:
			p.next()
			x = &cast.Postfix{P: x.Pos(), Op: t.Kind, X: x}
		default:
			return x
		}
	}
}

func trimFloatSuffix(s string) string {
	for len(s) > 0 {
		last := s[len(s)-1]
		if last == 'f' || last == 'F' || last == 'l' || last == 'L' {
			s = s[:len(s)-1]
			continue
		}
		break
	}
	return s
}

// Ensure ctypes is referenced (used by expr casts through tryType).
var _ ctypes.Type = ctypes.IntT
