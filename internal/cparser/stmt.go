package cparser

import (
	"strconv"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
)

// parseBlock parses "{ stmts }".
func (p *parser) parseBlock() *cast.Block {
	start := p.cur().Pos
	p.expect(ctoken.LBRACE)
	b := &cast.Block{P: start}
	for p.cur().Kind != ctoken.RBRACE && p.cur().Kind != ctoken.EOF {
		s := p.parseStmt()
		if s != nil {
			b.Stmts = append(b.Stmts, s)
		}
	}
	p.expect(ctoken.RBRACE)
	return b
}

// parseStmt parses one statement.
func (p *parser) parseStmt() cast.Stmt {
	t := p.cur()
	switch t.Kind {
	case ctoken.PRAGMA:
		p.next()
		return &cast.Pragma{P: t.Pos, Text: t.Lit}
	case ctoken.LBRACE:
		return p.parseBlock()
	case ctoken.SEMI:
		p.next()
		return &cast.Block{P: t.Pos} // empty statement
	case ctoken.KwIf:
		return p.parseIf()
	case ctoken.KwFor:
		return p.parseFor()
	case ctoken.KwWhile:
		return p.parseWhile()
	case ctoken.KwDo:
		return p.parseDoWhile()
	case ctoken.KwReturn:
		p.next()
		r := &cast.Return{P: t.Pos}
		if p.cur().Kind != ctoken.SEMI {
			r.X = p.parseExpr()
		}
		p.expect(ctoken.SEMI)
		return r
	case ctoken.KwBreak:
		p.next()
		p.expect(ctoken.SEMI)
		return &cast.Break{P: t.Pos}
	case ctoken.KwContinue:
		p.next()
		p.expect(ctoken.SEMI)
		return &cast.Continue{P: t.Pos}
	case ctoken.KwSwitch:
		return p.parseSwitch()
	case ctoken.KwGoto:
		p.next()
		name := p.expect(ctoken.IDENT).Lit
		p.expect(ctoken.SEMI)
		return &cast.Goto{P: t.Pos, Name: name}
	case ctoken.IDENT:
		// Label: "name:" not followed by another colon (::).
		if p.peek().Kind == ctoken.COLON && p.at(2).Kind != ctoken.COLON {
			name := p.next().Lit
			p.next() // :
			return &cast.Label{P: t.Pos, Name: name}
		}
	}

	if p.isTypeAhead() {
		return p.parseDeclStmt()
	}

	e := p.parseExpr()
	p.expect(ctoken.SEMI)
	return &cast.ExprStmt{P: t.Pos, X: e}
}

// parseDeclStmt parses a local declaration statement. Multiple declarators
// become a Block of DeclStmts so every declaration node stays simple.
func (p *parser) parseDeclStmt() cast.Stmt {
	start := p.cur().Pos
	static, constQ := false, false
	for {
		if p.accept(ctoken.KwStatic) {
			static = true
			continue
		}
		if p.accept(ctoken.KwConst) {
			constQ = true
			continue
		}
		break
	}
	base := p.parseTypeSpec()
	typ, name := p.parseDeclarator(base)
	first := &cast.DeclStmt{P: start, Name: name, Type: typ, Static: static, Const: constQ,
		VLADims: p.lastVLADims}
	if p.accept(ctoken.ASSIGN) {
		first.Init = p.parseInitializer()
	} else if p.cur().Kind == ctoken.LPAREN {
		// Constructor-style initialization: stack<context> s(1024);
		p.next()
		var args []cast.Expr
		for p.cur().Kind != ctoken.RPAREN && p.cur().Kind != ctoken.EOF {
			args = append(args, p.parseAssignExpr())
			if !p.accept(ctoken.COMMA) {
				break
			}
		}
		p.expect(ctoken.RPAREN)
		first.Init = &cast.InitList{P: start, Type: typ, Elems: args}
	}
	if p.cur().Kind != ctoken.COMMA {
		p.expect(ctoken.SEMI)
		return first
	}
	group := &cast.Block{P: start, Stmts: []cast.Stmt{first}}
	for p.accept(ctoken.COMMA) {
		typ2, name2 := p.parseDeclarator(base)
		d := &cast.DeclStmt{P: p.cur().Pos, Name: name2, Type: typ2, Static: static, Const: constQ}
		if p.accept(ctoken.ASSIGN) {
			d.Init = p.parseInitializer()
		}
		group.Stmts = append(group.Stmts, d)
	}
	p.expect(ctoken.SEMI)
	return group
}

func (p *parser) parseIf() cast.Stmt {
	start := p.cur().Pos
	p.next() // if
	p.expect(ctoken.LPAREN)
	cond := p.parseExpr()
	p.expect(ctoken.RPAREN)
	s := &cast.If{P: start, Cond: cond, BranchID: -1}
	s.Then = p.parseStmt()
	if p.accept(ctoken.KwElse) {
		s.Else = p.parseStmt()
	}
	return s
}

func (p *parser) parseFor() cast.Stmt {
	start := p.cur().Pos
	p.next() // for
	p.expect(ctoken.LPAREN)
	s := &cast.For{P: start, BranchID: -1}
	if !p.accept(ctoken.SEMI) {
		if p.isTypeAhead() {
			s.Init = p.parseDeclStmt() // consumes the ';'
		} else {
			e := p.parseExpr()
			p.expect(ctoken.SEMI)
			s.Init = &cast.ExprStmt{P: start, X: e}
		}
	}
	if p.cur().Kind != ctoken.SEMI {
		s.Cond = p.parseExpr()
	}
	p.expect(ctoken.SEMI)
	if p.cur().Kind != ctoken.RPAREN {
		s.Post = p.parseExpr()
	}
	p.expect(ctoken.RPAREN)
	s.Body = p.parseStmt()
	hoistLoopPragmas(&s.Pragmas, &s.Body)
	return s
}

func (p *parser) parseWhile() cast.Stmt {
	start := p.cur().Pos
	p.next() // while
	p.expect(ctoken.LPAREN)
	cond := p.parseExpr()
	p.expect(ctoken.RPAREN)
	s := &cast.While{P: start, Cond: cond, BranchID: -1}
	s.Body = p.parseStmt()
	hoistLoopPragmas(&s.Pragmas, &s.Body)
	return s
}

func (p *parser) parseDoWhile() cast.Stmt {
	start := p.cur().Pos
	p.next() // do
	body := p.parseStmt()
	p.expect(ctoken.KwWhile)
	p.expect(ctoken.LPAREN)
	cond := p.parseExpr()
	p.expect(ctoken.RPAREN)
	p.expect(ctoken.SEMI)
	s := &cast.While{P: start, Cond: cond, Body: body, DoWhile: true, BranchID: -1}
	hoistLoopPragmas(&s.Pragmas, &s.Body)
	return s
}

// hoistLoopPragmas moves leading #pragma statements of a loop body into
// the loop node itself, where the HLS toolchain models them.
func hoistLoopPragmas(dst *[]*cast.Pragma, body *cast.Stmt) {
	b, ok := (*body).(*cast.Block)
	if !ok {
		return
	}
	for len(b.Stmts) > 0 {
		pr, ok := b.Stmts[0].(*cast.Pragma)
		if !ok {
			break
		}
		*dst = append(*dst, pr)
		b.Stmts = b.Stmts[1:]
	}
}

func (p *parser) parseSwitch() cast.Stmt {
	start := p.cur().Pos
	p.next() // switch
	p.expect(ctoken.LPAREN)
	x := p.parseExpr()
	p.expect(ctoken.RPAREN)
	p.expect(ctoken.LBRACE)
	s := &cast.Switch{P: start, X: x, BranchID: -1}
	for p.cur().Kind != ctoken.RBRACE && p.cur().Kind != ctoken.EOF {
		c := &cast.SwitchCase{P: p.cur().Pos}
		if p.accept(ctoken.KwDefault) {
			c.IsDefault = true
		} else {
			p.expect(ctoken.KwCase)
			c.Value = p.parseExpr()
		}
		p.expect(ctoken.COLON)
		for {
			k := p.cur().Kind
			if k == ctoken.KwCase || k == ctoken.KwDefault || k == ctoken.RBRACE || k == ctoken.EOF {
				break
			}
			c.Body = append(c.Body, p.parseStmt())
		}
		s.Cases = append(s.Cases, c)
	}
	p.expect(ctoken.RBRACE)
	return s
}

// parseInitializer parses either a brace initializer or an assignment
// expression.
func (p *parser) parseInitializer() cast.Expr {
	if p.cur().Kind == ctoken.LBRACE {
		start := p.cur().Pos
		p.next()
		il := &cast.InitList{P: start}
		for p.cur().Kind != ctoken.RBRACE && p.cur().Kind != ctoken.EOF {
			il.Elems = append(il.Elems, p.parseInitializer())
			if !p.accept(ctoken.COMMA) {
				break
			}
		}
		p.expect(ctoken.RBRACE)
		return il
	}
	return p.parseAssignExpr()
}

// parseIntLit converts an INTLIT token to a value.
func parseIntLit(lit string) int64 {
	trimmed := strings.TrimRight(lit, "uUlL")
	v, err := strconv.ParseInt(trimmed, 0, 64)
	if err != nil {
		// Out-of-range unsigned literal; wrap like C does.
		u, _ := strconv.ParseUint(trimmed, 0, 64)
		return int64(u)
	}
	return v
}
