// Package crashpoint provides deterministic, environment-armed crash
// injection for crash-recovery testing: a process started with
//
//	HETEROGEN_CRASHPOINT=<site>[:N]
//
// SIGKILLs itself the Nth time execution reaches the named site
// (N defaults to 1). Sites are plain string labels compiled into the
// durability-critical write paths (journal appends, checkpoint
// appends, cache appends, compaction, drain); with the variable unset
// every site is a no-op, so production binaries carry the hooks at
// zero behavioral cost.
//
// The kill is a real SIGKILL to self — no deferred functions, no
// buffer flushes, no atexit — so a fired crash point exercises exactly
// the torn state an external `kill -9` would leave. Callers that want
// to simulate a *mid-write* crash split the write around Hit:
//
//	if crashpoint.Hit("store.append") {
//	    w.Write(line[:len(line)/2]) // torn final line
//	    w.Flush()
//	    crashpoint.Kill()
//	}
package crashpoint

import (
	"os"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// EnvVar arms one crash site for the process: "<site>" or "<site>:N"
// (fire on the Nth hit, 1-based).
const EnvVar = "HETEROGEN_CRASHPOINT"

var (
	mu        sync.Mutex
	armedSite string
	remaining int
	loaded    bool
)

// loadLocked parses EnvVar once. Called with mu held.
func loadLocked() {
	if loaded {
		return
	}
	loaded = true
	v := os.Getenv(EnvVar)
	if v == "" {
		return
	}
	armedSite, remaining = v, 1
	if i := strings.LastIndex(v, ":"); i >= 0 {
		if n, err := strconv.Atoi(v[i+1:]); err == nil && n > 0 {
			armedSite, remaining = v[:i], n
		}
	}
}

// Hit reports whether the named site is armed and this is the fatal
// hit. A true return means the caller should finish staging its torn
// state and call Kill; most sites use Here instead.
func Hit(name string) bool {
	mu.Lock()
	defer mu.Unlock()
	loadLocked()
	if armedSite == "" || armedSite != name {
		return false
	}
	remaining--
	return remaining == 0
}

// Here kills the process at the named site when armed — the standard
// one-line hook for sites with no torn-write staging.
func Here(name string) {
	if Hit(name) {
		Kill()
	}
}

// Kill terminates the process the way a crash would: SIGKILL to self.
// The os.Exit fallback (unreachable on platforms where the self-signal
// works) still skips all deferred cleanup.
func Kill() {
	_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137)
}

// Armed reports whether any crash site is armed in this process —
// used by tests to guard helper processes.
func Armed() bool {
	mu.Lock()
	defer mu.Unlock()
	loadLocked()
	return armedSite != ""
}
