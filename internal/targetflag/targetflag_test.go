package targetflag

import (
	"flag"
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/hls"
)

// parse registers a Flags on a fresh FlagSet and parses args.
func parse(t *testing.T, args ...string) *Flags {
	t.Helper()
	var f Flags
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	f.Register(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("Parse(%v): %v", args, err)
	}
	return &f
}

func TestNoFlagsYieldsEmptySet(t *testing.T) {
	ts, err := parse(t).Targets()
	if err != nil {
		t.Fatalf("Targets: %v", err)
	}
	if ts != nil {
		t.Fatalf("no flags resolved to %v, want nil (legacy path)", ts)
	}
}

func TestFlagForms(t *testing.T) {
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-device", "zc706"}, "vivado_hls:zc706"},
		{[]string{"-device", "xcvu9p-flgb2104-2-i"}, "vivado_hls:xcvu9p"},
		{[]string{"-backend", "vitis"}, "vitis:aws_f1"},
		{[]string{"-backend", "vitis", "-device", "xcvu9p"}, "vitis:xcvu9p"},
		{[]string{"-target", "vivado_hls:zc706", "-target", "vitis:aws_f1"},
			"vivado_hls:zc706+vitis:aws_f1"},
		// Repeated specs dedupe, order preserved.
		{[]string{"-target", "zc706", "-target", "zc706", "-target", "vitis"},
			"vivado_hls:zc706+vitis:aws_f1"},
	}
	for _, c := range cases {
		ts, err := parse(t, c.args...).Targets()
		if err != nil {
			t.Fatalf("Targets(%v): %v", c.args, err)
		}
		if got := hls.TargetSetString(ts); got != c.want {
			t.Errorf("Targets(%v) = %q, want %q", c.args, got, c.want)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, err := parse(t, "-device", "nope").Targets(); err == nil {
		t.Error("unknown device accepted")
	}
	_, err := parse(t, "-backend", "vivado_hls", "-target", "zc706").Targets()
	if err == nil || !strings.Contains(err.Error(), "cannot be combined") {
		t.Errorf("mixing -backend with -target: err = %v, want combination error", err)
	}
}
