// Package targetflag is the shared CLI surface for selecting HLS
// targets. Every HeteroGen binary registers the same three flags —
// -backend, -device, and a repeatable -target — so a target set is
// spelled identically across the toolchain:
//
//	-device zc706                    one target, default backend
//	-backend vitis                   one target, the backend's first device
//	-backend vitis -device aws_f1    one fully-spelled target
//	-target vivado_hls:zc706 -target vitis:aws_f1
//	                                 a multi-target set (Pareto repair)
//
// Bare device names, full part names, and "backend:device" specs are
// all accepted (see hls.ParseTarget). No flag given resolves to an
// empty set, which keeps the legacy single-default-target code paths —
// results and traces stay byte-identical with the flags absent.
package targetflag

import (
	"flag"
	"fmt"
	"strings"

	"github.com/hetero/heterogen/internal/hls"
)

// Flags holds the parsed target-selection flags. Register wires them
// into a FlagSet; Targets resolves them after parsing.
type Flags struct {
	backend string
	device  string
	specs   specList
}

// specList collects repeated -target occurrences.
type specList []string

func (l *specList) String() string     { return strings.Join(*l, ",") }
func (l *specList) Set(v string) error { *l = append(*l, v); return nil }

// Register installs the shared target flags on fs.
func (f *Flags) Register(fs *flag.FlagSet) {
	fs.StringVar(&f.backend, "backend", "",
		"HLS backend to target (one of: "+strings.Join(hls.BackendNames(), ", ")+")")
	fs.StringVar(&f.device, "device", "",
		"device profile to target (e.g. xcvu9p, zc706, aws_f1; full part names accepted)")
	fs.Var(&f.specs, "target",
		"backend:device target, repeatable; two or more enable multi-target Pareto repair")
}

// Targets resolves the flags into a canonical, deduplicated target
// set. A nil set with a nil error means no flag was given — callers
// keep the legacy single-target behavior.
func (f *Flags) Targets() ([]hls.Target, error) {
	specs := append([]string(nil), f.specs...)
	if f.backend != "" || f.device != "" {
		if len(specs) > 0 {
			return nil, fmt.Errorf("targetflag: -backend/-device cannot be combined with -target (spell every target as -target backend:device)")
		}
		switch {
		case f.backend != "" && f.device != "":
			specs = []string{f.backend + ":" + f.device}
		case f.backend != "":
			specs = []string{f.backend}
		default:
			specs = []string{f.device}
		}
	}
	ts, err := hls.ParseTargets(specs)
	if err != nil {
		return nil, fmt.Errorf("targetflag: %w", err)
	}
	return ts, nil
}
