// Concurrent candidate evaluation for the repair search.
//
// The paper's repair loop (§5.3–5.4) spends nearly all of its time in
// fitness evaluation: every candidate pays a style check, a full HLS
// compatibility check, latency simulation, and differential testing
// against the CPU execution. Those evaluations are independent across
// candidates — each runs on its own clone of the program against the
// immutable original and test suite — so this file fans them out over a
// bounded worker pool.
//
// Determinism contract: results are bit-identical to the sequential
// search for the same Options.Seed, whatever Workers is set to. The
// pool only ever *computes* outcomes (computeOutcome, pure); it never
// touches searcher state. The search goroutine then *commits* outcomes
// strictly in candidate enumeration order: budget checks, virtual-cost
// accounting (one toolchain license ⇒ one ordered cost stream), dedupe
// bookkeeping, and the accept-first-improvement rule all replay exactly
// the sequence the sequential loop performs. Speculative evaluations
// past the accepted candidate are discarded — they cost real CPU, not
// virtual time.
package repair

import (
	"sync"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/obs"
)

// speculationFactor sizes evaluation batches relative to the worker
// count: large enough to keep workers busy across style-rejected
// candidates, small enough to bound wasted work when an early candidate
// is accepted.
const speculationFactor = 2

// evalPool is a bounded pool of evaluation workers shared by all steps
// of one search.
type evalPool struct {
	workers int
	jobs    chan evalJob

	// mu guards committedVirtual, the virtual seconds committed so far
	// by the search goroutine. Workers consult it before starting a
	// speculative evaluation: once the shared budget is exhausted no
	// later candidate can ever be charged (virtual time only grows and
	// commits happen in order), so computing it would be pure waste.
	mu               sync.Mutex
	committedVirtual float64
	budget           float64
}

// evalJob asks a worker to compute the outcome of one candidate unit.
type evalJob struct {
	s    *searcher
	unit *cast.Unit
	out  *evalOutcome
	wg   *sync.WaitGroup
}

// newEvalPool starts workers goroutines feeding on a shared job queue.
func newEvalPool(workers int, budget float64) *evalPool {
	p := &evalPool{
		workers: workers,
		jobs:    make(chan evalJob, workers*speculationFactor),
		budget:  budget,
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *evalPool) worker() {
	for job := range p.jobs {
		if !p.budgetExhausted() {
			*job.out = job.s.safeOutcome(job.unit)
		}
		job.wg.Done()
	}
}

// safeOutcome is computeOutcome with a last-resort recover. The stage
// bodies are individually contained by guard.Do, but the glue between
// them (printing for cache keys, line counting) runs unguarded, and a
// panic on a worker goroutine would kill the whole process. The
// backstop converts it into a contained failure under the synthetic
// "eval" stage label.
func (s *searcher) safeOutcome(u *cast.Unit) (out evalOutcome) {
	defer func() {
		if r := recover(); r != nil {
			out = evalOutcome{computed: true, failure: guard.PanicFailure(guard.StageEval, r)}
		}
	}()
	return s.computeOutcome(u)
}

// close shuts the workers down; the pool must not be used afterwards.
func (p *evalPool) close() { close(p.jobs) }

// commit records virtual seconds the search goroutine has charged, so
// workers can stop speculating once the budget is gone.
func (p *evalPool) commit(virtualSeconds float64) {
	p.mu.Lock()
	p.committedVirtual = virtualSeconds
	p.mu.Unlock()
}

func (p *evalPool) budgetExhausted() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.committedVirtual >= p.budget
}

// chunkSize is how many candidates are speculatively evaluated per
// batch.
func (p *evalPool) chunkSize() int { return p.workers * speculationFactor }

// evaluateBatch computes outcomes for a batch concurrently. predictSkip
// (optional, called in order on the calling goroutine) previews commit-
// time dedupe so known-skipped candidates are not scheduled. nextIdx is
// the commit index the batch's first non-skipped candidate will get;
// candidates whose predicted index the checkpoint log already covers
// are not scheduled either — the commit loop will replay them. Both
// predictions are only schedule hints: a misprediction wastes or saves
// speculative work, never changes what the commit loop decides.
// Outcomes of unscheduled candidates stay zero-valued (computed ==
// false).
func (p *evalPool) evaluateBatch(s *searcher, batch []Candidate, predictSkip func(Candidate) bool, nextIdx int) []evalOutcome {
	outcomes := make([]evalOutcome, len(batch))
	var wg sync.WaitGroup
	idx := nextIdx
	for i, cand := range batch {
		if predictSkip != nil && predictSkip(cand) {
			continue
		}
		if s.ckpt.has(idx, cand) {
			idx++
			continue
		}
		idx++
		wg.Add(1)
		p.jobs <- evalJob{s: s, unit: cand.Unit, out: &outcomes[i], wg: &wg}
	}
	wg.Wait()
	return outcomes
}

// evalCandidates is the shared candidate-trial engine behind
// tryCandidates, the WithoutDependence attempt loop, and perfStep. It
// walks candidates in enumeration order and accepts the first one whose
// score improves on *curScore, charging virtual costs as it goes.
//
// skip, when non-nil, is the commit-time dedupe: consulted in order on
// the search goroutine, free to mutate searcher bookkeeping, and a
// skipped candidate pays no cost. predictSkip, when non-nil, must
// preview skip's decisions without side effects on searcher state (used
// only to avoid scheduling doomed speculative work).
//
// With no pool (Workers <= 1) candidates are computed inline, one at a
// time — the classic sequential search. With a pool, batches of
// chunkSize are computed concurrently and then committed in order;
// either way every candidate passes through the same budget check,
// chargeOutcome call, and acceptance rule, in the same sequence.
func (s *searcher) evalCandidates(cands []Candidate, skip, predictSkip func(Candidate) bool, cur **cast.Unit, curScore *score) bool {
	if s.pool == nil {
		for _, cand := range cands {
			if s.stats.VirtualSeconds >= float64(s.opts.Budget) || s.ctx.Err() != nil {
				return false
			}
			if skip != nil && skip(cand) {
				continue
			}
			o, replayed := s.ckpt.replay(s.commitIdx, cand)
			if !replayed {
				o = s.safeOutcome(cand.Unit)
			}
			if s.commitOutcome(cand, o, cur, curScore) {
				return true
			}
		}
		return false
	}

	chunk := s.pool.chunkSize()
	for start := 0; start < len(cands); start += chunk {
		end := min(start+chunk, len(cands))
		batch := cands[start:end]
		if s.stats.VirtualSeconds >= float64(s.opts.Budget) || s.ctx.Err() != nil {
			return false
		}
		outcomes := s.pool.evaluateBatch(s, batch, predictSkip, s.commitIdx)
		for i, cand := range batch {
			if s.stats.VirtualSeconds >= float64(s.opts.Budget) || s.ctx.Err() != nil {
				return false
			}
			if skip != nil && skip(cand) {
				continue
			}
			o := outcomes[i]
			// The checkpoint log is authoritative at the actual commit
			// index: a replay hit discards any speculative computation of
			// the same candidate.
			if ro, replayed := s.ckpt.replay(s.commitIdx, cand); replayed {
				o = ro
			} else if !o.computed {
				// The worker declined the job (budget raced exhausted)
				// or predictSkip mispredicted; fall back to computing
				// here so commit semantics never depend on speculation.
				o = s.safeOutcome(cand.Unit)
			}
			if s.commitOutcome(cand, o, cur, curScore) {
				return true
			}
		}
	}
	return false
}

// commitOutcome charges one tried candidate and applies the acceptance
// rule, keeping the pool's shared budget view current. Returns true
// when the candidate was accepted. The candidate's structured event is
// emitted here — on the search goroutine, after the charge — which is
// what makes traces byte-identical for any Workers value: workers only
// buffer outcome data (evalOutcome), never emit.
func (s *searcher) commitOutcome(cand Candidate, o evalOutcome, cur **cast.Unit, curScore *score) bool {
	// The outcome becomes durable at the same moment it becomes
	// accountable (a no-op for replayed indices, which are already on
	// disk); commitIdx is the log's commit-order cursor.
	s.ckpt.record(s.commitIdx, cand, o)
	s.commitIdx++
	cb := s.chargeOutcome(o)
	if s.pool != nil {
		s.pool.commit(s.stats.VirtualSeconds)
	}
	// Every fully-evaluated candidate — accepted or not — is offered to
	// the multi-target Pareto archive here, on the search goroutine in
	// enumeration order: a candidate the scalar objective rejects can
	// still be a non-dominated latency/resource trade-off.
	if o.failure == nil && o.evaluated {
		s.considerPareto(cand.Unit, o.sc)
	}
	accepted := o.failure == nil && o.evaluated && o.sc.better(*curScore)
	if accepted {
		s.accept(cand)
		*cur = cand.Unit
		*curScore = o.sc
		s.stats.AcceptedCandidates++
	} else {
		s.stats.RejectedCandidates++
		if o.failure != nil {
			s.stats.StageFailures++
		}
	}
	if s.tracing {
		s.emitCandidate(cand, o, accepted, cb)
	}
	return accepted
}

// emitCandidate renders one tried candidate as a structured event.
func (s *searcher) emitCandidate(cand Candidate, o evalOutcome, accepted bool, cb costBreakdown) {
	edits := make([]string, len(cand.Edits))
	class := ""
	for i, e := range cand.Edits {
		edits[i] = e.String()
		if i == 0 {
			class = e.Class.String()
		}
	}
	re := &obs.RepairEvent{
		Step: s.step, Iter: s.stats.Iterations,
		Edits: edits, Class: class,
		Accepted:     accepted,
		VirtualDelta: cb.total(),
		CostStyle:    cb.style, CostCompile: cb.compile, CostSim: cb.sim,
	}
	switch {
	case o.failure != nil:
		re.Reason = "stage-failure"
		re.Failure = o.failure.Label()
	case o.styleRan && !o.styleOK:
		re.Style, re.Reason = "reject", "style-reject"
	case accepted:
		re.Reason = "accepted"
	default:
		re.Reason = "no-improvement"
	}
	if o.styleRan && o.styleOK {
		re.Style = "ok"
	}
	if o.evaluated && o.failure == nil {
		re.Evaluated = true
		re.Errors = o.sc.errors
		re.PassRatio = o.sc.passRatio
		re.BehaviorOK = o.sc.behaviorOK
		if o.sc.errors == 0 && o.simRan {
			re.LatencyMS = o.sc.latencyMS
		}
	}
	s.obs.Emit(obs.Event{Type: obs.EvCandidate, Virtual: s.stats.VirtualSeconds, Repair: re})
}
