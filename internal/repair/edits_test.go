package repair

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/difftest"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
	"github.com/hetero/heterogen/internal/interp"
)

func intTC(vals ...int64) fuzz.TestCase {
	tc := fuzz.TestCase{}
	for _, v := range vals {
		tc.Args = append(tc.Args, fuzz.Arg{Scalar: true, Ints: []int64{v}, Width: 32})
	}
	return tc
}

// applyNamed instantiates template id against the first matching
// diagnostic of the given unit and applies its first edit in place.
func applyNamed(t *testing.T, u *cast.Unit, id string, d hls.Diagnostic, st *State) {
	t.Helper()
	tmpl, ok := TemplateByID(id)
	if !ok {
		t.Fatalf("no template %q", id)
	}
	edits := tmpl.Instantiate(u, d, st)
	if len(edits) == 0 {
		t.Fatalf("%s produced no edits for %+v", id, d)
	}
	if err := edits[0].Apply(u); err != nil {
		t.Fatalf("%s apply: %v", id, err)
	}
	st.MarkApplied(edits[0])
	if edits[0].OnAccept != nil {
		edits[0].OnAccept(st)
	}
}

func TestClassifyMessage(t *testing.T) {
	cases := map[string]hls.ErrorClass{
		"Synthesizability check failed: recursive functions are not supported": hls.ClassDynamicData,
		"dynamic memory allocation/deallocation is not supported":              hls.ClassDynamicData,
		"unsupported memory access on variable with unknown size":              hls.ClassDynamicData,
		"type 'long double' is not synthesizable":                              hls.ClassUnsupportedType,
		"Call of overloaded 'pow()' is ambiguous":                              hls.ClassUnsupportedType,
		"pointer 'p' is not supported":                                         hls.ClassUnsupportedType,
		"Argument 'data' failed dataflow checking":                             hls.ClassDataflow,
		"Pre-synthesis failed: unroll factor":                                  hls.ClassLoopParallel,
		"size 13 is not a multiple of partition factor 4":                      hls.ClassLoopParallel,
		"Argument 'this' has an unsynthesizable struct type":                   hls.ClassStructUnion,
		"the connecting stream 'tmp' must be static":                           hls.ClassStructUnion,
		"Cannot find the top function 'kern' in the design":                    hls.ClassTopFunction,
	}
	for msg, want := range cases {
		if got := ClassifyMessage(msg); got != want {
			t.Errorf("ClassifyMessage(%q) = %s, want %s", msg, got, want)
		}
	}
}

func TestArrayStaticEdit(t *testing.T) {
	u := cparser.MustParse(`
void kernel(int cols, int out[8]) {
    int line_buf[cols];
    if (cols > 8) { cols = 8; }
    for (int i = 0; i < cols; i++) { line_buf[i] = i * 2; }
    for (int i = 0; i < cols; i++) { out[i] = line_buf[i]; }
}`)
	st := NewState()
	d := hls.Diagnostic{Subject: "line_buf", Class: hls.ClassDynamicData,
		Message: "unsupported memory access on variable 'line_buf' which is (or contains) an array with unknown size"}
	applyNamed(t, u, "array_static", d, st)
	rep := check.Run(u, hls.DefaultConfig("kernel"))
	for _, dg := range rep.Diags {
		if strings.Contains(dg.Message, "unknown size") {
			t.Errorf("unknown-size error persists: %v", dg)
		}
	}
	if st.Sizes["array:line_buf"] != initialArraySize {
		t.Errorf("size not recorded: %v", st.Sizes)
	}
	// Behaviour preserved: the static version agrees with the original.
	orig := cparser.MustParse(`
void kernel(int cols, int out[8]) {
    int line_buf[cols];
    if (cols > 8) { cols = 8; }
    for (int i = 0; i < cols; i++) { line_buf[i] = i * 2; }
    for (int i = 0; i < cols; i++) { out[i] = line_buf[i]; }
}`)
	tc := fuzz.TestCase{Args: []fuzz.Arg{
		{Scalar: true, Ints: []int64{5}, Width: 32},
		{Ints: make([]int64, 8), Width: 32},
	}}
	dt := difftest.Run(orig, u, "kernel", hls.DefaultConfig("kernel"), []fuzz.TestCase{tc})
	if !dt.AllPass() {
		t.Errorf("array_static broke behaviour: %s", dt.FirstDiff)
	}
}

func TestResizeEdit(t *testing.T) {
	u := cparser.MustParse(`
int buf[64];
void kernel(int n) { buf[0] = n; }`)
	st := NewState()
	st.Sizes["array:buf"] = 64
	d := hls.Diagnostic{Class: hls.ClassDynamicData, Message: "behavior divergence"}
	applyNamed(t, u, "resize", d, st)
	v := u.Var("buf")
	if v.Type.Bits() != 128*32 {
		t.Errorf("buf not doubled: %s", v.Type.C(""))
	}
	if st.Sizes["array:buf"] != 128 {
		t.Errorf("size book-keeping: %v", st.Sizes)
	}
}

const binaryTreeSrc = `
struct Node {
    int val;
    struct Node *left;
    struct Node *right;
};
struct Node *insert(struct Node *root, int v) {
    if (root == 0) {
        struct Node *n = (struct Node *)malloc(sizeof(struct Node));
        n->val = v;
        n->left = 0;
        n->right = 0;
        return n;
    }
    if (v < root->val) { root->left = insert(root->left, v); }
    else { root->right = insert(root->right, v); }
    return root;
}
int total;
void traverse(struct Node *curr) {
    if (curr == 0) { return; }
    total = total + curr->val;
    traverse(curr->left);
    traverse(curr->right);
}
int kernel(int n) {
    if (n < 0) { n = -n; }
    if (n > 24) { n = 24; }
    struct Node *root = 0;
    for (int i = 0; i < n; i++) {
        root = insert(root, (i * 37) % 101);
    }
    total = 0;
    traverse(root);
    return total;
}`

func TestPoolInsertAndPointerRemoval(t *testing.T) {
	u := cparser.MustParse(binaryTreeSrc)
	st := NewState()
	d := hls.Diagnostic{Subject: "malloc", Class: hls.ClassDynamicData,
		Message: "dynamic memory allocation/deallocation is not supported"}
	applyNamed(t, u, "insert", d, st)

	// Pool artifacts exist.
	if u.Var("Node_arr") == nil || u.Func("Node_malloc") == nil {
		t.Fatal("pool artifacts missing after insert")
	}
	if _, ok := u.Typedefs["Node_ptr"]; !ok {
		t.Fatal("Node_ptr typedef missing")
	}
	// malloc is gone.
	if calls := cast.CallsTo(u, "malloc"); len(calls) != 0 {
		t.Fatalf("malloc calls remain: %d", len(calls))
	}

	applyNamed(t, u, "pointer", hls.Diagnostic{Class: hls.ClassDynamicData}, st)

	// No pointer-to-Node types remain.
	if hasPointerTo(u, "Node") {
		t.Error("Node pointers remain after pointer removal")
	}
	printed := cast.Print(u)
	if !strings.Contains(printed, "Node_arr[") {
		t.Error("expected pool-indexed accesses in output")
	}

	// The pooled version still behaves identically (CPU semantics).
	orig := cparser.MustParse(binaryTreeSrc)
	in, err := interp.New(u, interp.Options{})
	if err != nil {
		t.Fatalf("pooled version init: %v\n%s", err, printed)
	}
	ino, _ := interp.New(orig, interp.Options{})
	for _, n := range []int64{0, 1, 5, 24} {
		want, err := ino.CallKernel("kernel", []interp.Value{interp.IntValue(n)})
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Reset(); err != nil {
			t.Fatal(err)
		}
		got, err := in.CallKernel("kernel", []interp.Value{interp.IntValue(n)})
		if err != nil {
			t.Fatalf("pooled kernel(%d): %v", n, err)
		}
		if got.Ret.AsInt() != want.Ret.AsInt() {
			t.Errorf("kernel(%d): pooled %d, original %d", n, got.Ret.AsInt(), want.Ret.AsInt())
		}
		if err := ino.Reset(); err != nil {
			t.Fatal(err)
		}
	}
	// The printed pooled version must re-parse (printable, valid C).
	if _, err := cparser.Parse(printed); err != nil {
		t.Errorf("pooled version does not reparse: %v", err)
	}
}

func TestStackTransPreOrderTraversal(t *testing.T) {
	u := cparser.MustParse(binaryTreeSrc)
	st := NewState()
	// Chain: pool, pointer removal, then both recursive functions.
	applyNamed(t, u, "insert", hls.Diagnostic{Subject: "malloc"}, st)
	applyNamed(t, u, "pointer", hls.Diagnostic{}, st)

	d := hls.Diagnostic{Subject: "traverse", Class: hls.ClassDynamicData,
		Message: "recursive functions are not supported"}
	tmpl, _ := TemplateByID("stack_trans")
	edits := tmpl.Instantiate(u, d, st)
	if len(edits) == 0 {
		t.Fatal("stack_trans not applicable to traverse")
	}
	if err := edits[0].Apply(u); err != nil {
		t.Fatalf("stack_trans: %v", err)
	}

	if len(cast.CallsTo(u.Func("traverse"), "traverse")) != 0 {
		t.Fatal("traverse still recursive")
	}
	printed := cast.Print(u)
	if !strings.Contains(printed, "traverse_stack") || !strings.Contains(printed, "switch") {
		t.Errorf("expected stack-machine shape:\n%s", printed)
	}

	// Semantics: compare sums for several sizes (traverse converted;
	// insert remains recursive, which the CPU interpreter handles).
	orig := cparser.MustParse(binaryTreeSrc)
	ino, _ := interp.New(orig, interp.Options{})
	inn, err := interp.New(u, interp.Options{})
	if err != nil {
		t.Fatalf("converted init: %v", err)
	}
	for _, n := range []int64{0, 1, 7, 13} {
		want, _ := ino.CallKernel("kernel", []interp.Value{interp.IntValue(n)})
		got, err := inn.CallKernel("kernel", []interp.Value{interp.IntValue(n)})
		if err != nil {
			t.Fatalf("converted kernel(%d): %v\n%s", n, err, printed)
		}
		if got.Ret.AsInt() != want.Ret.AsInt() {
			t.Errorf("kernel(%d): converted %d, original %d", n, got.Ret.AsInt(), want.Ret.AsInt())
		}
		ino.Reset()
		inn.Reset()
	}
	if _, err := cparser.Parse(printed); err != nil {
		t.Errorf("converted version does not reparse: %v", err)
	}
}

func TestStackTransMergeSortShape(t *testing.T) {
	src := `
int data[64];
void msort(int lo, int hi) {
    if (hi - lo < 2) { return; }
    int mid = (lo + hi) / 2;
    msort(lo, mid);
    msort(mid, hi);
    int tmp[64];
    int i = lo;
    int j = mid;
    int k = 0;
    while (i < mid && j < hi) {
        if (data[i] <= data[j]) { tmp[k] = data[i]; i++; }
        else { tmp[k] = data[j]; j++; }
        k++;
    }
    while (i < mid) { tmp[k] = data[i]; i++; k++; }
    while (j < hi) { tmp[k] = data[j]; j++; k++; }
    for (int m = 0; m < k; m++) { data[lo + m] = tmp[m]; }
}
int kernel(int seed) {
    for (int i = 0; i < 64; i++) {
        data[i] = (seed * (i + 3)) % 97;
    }
    msort(0, 64);
    int checksum = 0;
    for (int i = 0; i < 64; i++) { checksum = checksum * 3 + data[i]; }
    return checksum;
}`
	u := cparser.MustParse(src)
	st := NewState()
	d := hls.Diagnostic{Subject: "msort", Message: "recursive functions are not supported"}
	applyNamed(t, u, "stack_trans", d, st)

	if len(cast.CallsTo(u.Func("msort"), "msort")) != 0 {
		t.Fatal("msort still recursive")
	}
	orig := cparser.MustParse(src)
	ino, _ := interp.New(orig, interp.Options{})
	inn, err := interp.New(u, interp.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{1, 17, 400} {
		want, _ := ino.CallKernel("kernel", []interp.Value{interp.IntValue(seed)})
		got, err := inn.CallKernel("kernel", []interp.Value{interp.IntValue(seed)})
		if err != nil {
			t.Fatalf("converted msort kernel(%d): %v", seed, err)
		}
		if got.Ret.AsInt() != want.Ret.AsInt() {
			t.Errorf("kernel(%d): converted %d, original %d", seed, got.Ret.AsInt(), want.Ret.AsInt())
		}
		ino.Reset()
		inn.Reset()
	}
}

func TestStackTransUndersizedStackFaults(t *testing.T) {
	// With a tiny stack the converted traversal overflows at runtime —
	// the signal that drives the resize loop (the paper's P3 story).
	u := cparser.MustParse(binaryTreeSrc)
	st := NewState()
	applyNamed(t, u, "insert", hls.Diagnostic{Subject: "malloc"}, st)
	applyNamed(t, u, "pointer", hls.Diagnostic{}, st)
	if err := applyStackTrans(u, "traverse", 2); err != nil {
		t.Fatal(err)
	}
	in, _ := interp.New(u, interp.Options{})
	_, err := in.CallKernel("kernel", []interp.Value{interp.IntValue(20)})
	if err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("undersized stack should fault, got %v", err)
	}
}

func TestTypeTransEdit(t *testing.T) {
	u := cparser.MustParse(`
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`)
	st := NewState()
	applyNamed(t, u, "type_trans", hls.Diagnostic{Message: "long double"}, st)
	if hasLongDouble(u) {
		t.Error("long double persists")
	}
	if !strings.Contains(cast.Print(u), "fpga_float<8,71>") {
		t.Errorf("expected fpga_float in output:\n%s", cast.Print(u))
	}
	// Behaviour identical on the FPGA simulator.
	orig := cparser.MustParse(`
int top(int in) {
    long double in_ld = in;
    in_ld = in_ld + 1;
    return (int)in_ld;
}`)
	dt := difftest.Run(orig, u, "top", hls.DefaultConfig("top"), []fuzz.TestCase{intTC(41)})
	if !dt.AllPass() {
		t.Errorf("type_trans broke behaviour: %s", dt.FirstDiff)
	}
}

func TestConstructorAndStreamStatic(t *testing.T) {
	src := `
struct If2 {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    void do1() {
        while (!in.empty()) { out.write(in.read() + 1); }
    }
};
unsigned top(unsigned v) {
#pragma HLS dataflow
    hls::stream<unsigned> a;
    hls::stream<unsigned> tmp;
    hls::stream<unsigned> b;
    a.write(v);
    If2{ a, tmp }.do1();
    If2{ tmp, b }.do1();
    return b.read();
}`
	u := cparser.MustParse(src)
	st := NewState()
	cfg := hls.DefaultConfig("top")
	pre := check.Run(u, cfg)
	if !pre.HasClass(hls.ClassStructUnion) {
		t.Fatalf("expected struct errors first: %v", pre.Diags)
	}
	applyNamed(t, u, "constructor", hls.Diagnostic{Subject: "If2", Message: "unsynthesizable struct"}, st)
	for _, name := range []string{"a", "tmp", "b"} {
		applyNamed(t, u, "stream_static",
			hls.Diagnostic{Subject: name, Message: "stream must be static"}, st)
	}
	post := check.Run(u, cfg)
	if post.HasClass(hls.ClassStructUnion) {
		t.Errorf("struct errors persist: %v", post.ByClass()[hls.ClassStructUnion])
	}
	// Behaviour check through the simulator.
	orig := cparser.MustParse(src)
	tc := fuzz.TestCase{Args: []fuzz.Arg{{Scalar: true, Ints: []int64{5}, Width: 32, Unsigned: true}}}
	dt := difftest.Run(orig, u, "top", cfg, []fuzz.TestCase{tc})
	if !dt.AllPass() {
		t.Errorf("struct repairs broke behaviour: %s", dt.FirstDiff)
	}
}

func TestFlattenAndInstUpdate(t *testing.T) {
	src := `
struct Adder {
    hls::stream<unsigned> &in;
    hls::stream<unsigned> &out;
    unsigned doRead() {
        return in.read();
    }
    void do1() {
        while (!in.empty()) { out.write(doRead() + 1); }
    }
};
unsigned top(unsigned v) {
    hls::stream<unsigned> a;
    hls::stream<unsigned> b;
    a.write(v);
    Adder{ a, b }.do1();
    return b.read();
}`
	u := cparser.MustParse(src)
	st := NewState()
	applyNamed(t, u, "flatten", hls.Diagnostic{Subject: "Adder", Message: "unsynthesizable struct"}, st)
	applyNamed(t, u, "inst_update", hls.Diagnostic{Subject: "Adder"}, st)

	if u.Func("Adder_do1") == nil || u.Func("Adder_doRead") == nil {
		t.Fatalf("lifted functions missing:\n%s", cast.Print(u))
	}
	if u.StructOf("Adder") != nil {
		t.Error("struct should be removed once unused")
	}
	rep := check.Run(u, hls.DefaultConfig("top"))
	if rep.HasClass(hls.ClassStructUnion) {
		t.Errorf("struct errors persist after flatten path: %v", rep.Diags)
	}
	orig := cparser.MustParse(src)
	tc := fuzz.TestCase{Args: []fuzz.Arg{{Scalar: true, Ints: []int64{9}, Width: 32, Unsigned: true}}}
	dt := difftest.Run(orig, u, "top", hls.DefaultConfig("top"), []fuzz.TestCase{tc})
	if !dt.AllPass() {
		t.Errorf("flatten path broke behaviour: %s", dt.FirstDiff)
	}
}

func TestSegmentBufferEdit(t *testing.T) {
	src := `
void my_func(char data[32], char out[32]) {
    for (int i = 0; i < 32; i++) { out[i] = data[i] + 1; }
}
void top_function(char data[32], char a[32], char b[32]) {
#pragma HLS dataflow
    my_func(data, a);
    my_func(data, b);
}`
	u := cparser.MustParse(src)
	st := NewState()
	applyNamed(t, u, "segment", hls.Diagnostic{Subject: "data", Message: "failed dataflow checking"}, st)
	rep := check.Run(u, hls.DefaultConfig("top_function"))
	if rep.HasClass(hls.ClassDataflow) {
		t.Errorf("dataflow error persists: %v", rep.Diags)
	}
	orig := cparser.MustParse(src)
	mk := func() fuzz.TestCase {
		data := fuzz.Arg{Ints: make([]int64, 32), Width: 8}
		for i := range data.Ints {
			data.Ints[i] = int64(i % 100)
		}
		return fuzz.TestCase{Args: []fuzz.Arg{data,
			{Ints: make([]int64, 32), Width: 8}, {Ints: make([]int64, 32), Width: 8}}}
	}
	dt := difftest.Run(orig, u, "top_function", hls.DefaultConfig("top_function"),
		[]fuzz.TestCase{mk()})
	if !dt.AllPass() {
		t.Errorf("segment broke behaviour: %s", dt.FirstDiff)
	}
}

func TestTopRenameEdit(t *testing.T) {
	u := cparser.MustParse(`
#pragma HLS top name=kern
void kernel(int a[4], int b[4]) {
    for (int i = 0; i < 4; i++) { b[i] = a[i]; }
}`)
	st := NewState()
	applyNamed(t, u, "top_rename", hls.Diagnostic{Subject: "kern", Message: "Cannot find the top function"}, st)
	rep := check.Run(u, hls.DefaultConfig("kernel"))
	if rep.HasClass(hls.ClassTopFunction) {
		t.Errorf("top error persists: %v", rep.Diags)
	}
}

func TestExploreImprovesLatency(t *testing.T) {
	src := `
void kernel(int a[64], int b[64]) {
    for (int i = 0; i < 64; i++) {
        b[i] = a[i] * 3 + 1;
    }
}`
	u := cparser.MustParse(src)
	st := NewState()
	cands := PerfCandidates(u, st)
	if len(cands) == 0 {
		t.Fatal("no performance candidates for a counted loop")
	}
	mk := func() fuzz.TestCase {
		return fuzz.TestCase{Args: []fuzz.Arg{
			{Ints: make([]int64, 64), Width: 32}, {Ints: make([]int64, 64), Width: 32}}}
	}
	orig := cparser.MustParse(src)
	base := difftest.Run(orig, u, "kernel", hls.DefaultConfig("kernel"), []fuzz.TestCase{mk()})
	improved := false
	for _, c := range cands {
		dt := difftest.Run(orig, c.Unit, "kernel", hls.DefaultConfig("kernel"), []fuzz.TestCase{mk()})
		if dt.AllPass() && dt.FPGAMeanCycles < base.FPGAMeanCycles {
			improved = true
			break
		}
	}
	if !improved {
		t.Error("no explore candidate reduced cycles")
	}
}

func TestDependenceEnumerationOrder(t *testing.T) {
	// For the struct class, chain heads must be constructor and flatten,
	// with stream_static only reachable after constructor — the Figure 7c
	// structure.
	ctor, _ := TemplateByID("constructor")
	if len(ctor.Requires) != 0 {
		t.Error("constructor is a chain head")
	}
	ss, _ := TemplateByID("stream_static")
	if len(ss.Requires) != 1 || ss.Requires[0] != "constructor" {
		t.Errorf("stream_static must require constructor: %v", ss.Requires)
	}
	iu, _ := TemplateByID("inst_update")
	if len(iu.Requires) != 1 || iu.Requires[0] != "flatten" {
		t.Errorf("inst_update must require flatten: %v", iu.Requires)
	}
	fl, _ := TemplateByID("flatten")
	if len(fl.Alternatives) == 0 {
		t.Error("flatten and constructor are alternative branches")
	}
	ptr, _ := TemplateByID("pointer")
	if len(ptr.Requires) != 1 || ptr.Requires[0] != "insert" {
		t.Errorf("pointer must require insert: %v", ptr.Requires)
	}
}

func TestCandidatesForOrdersByChainLength(t *testing.T) {
	u := cparser.MustParse(binaryTreeSrc)
	st := NewState()
	d := hls.Diagnostic{Subject: "malloc", Class: hls.ClassDynamicData,
		Message: "dynamic memory allocation is not supported"}
	cands := CandidatesFor(u, d, st)
	if len(cands) == 0 {
		t.Fatal("no candidates for malloc diagnostic")
	}
	for i := 1; i < len(cands); i++ {
		if len(cands[i].Edits) < len(cands[i-1].Edits) {
			t.Fatal("candidates not ordered by chain length")
		}
	}
	// The chain {insert, pointer} must be present.
	found := false
	for _, c := range cands {
		if len(c.Edits) == 2 && c.Edits[0].Template == "insert" && c.Edits[1].Template == "pointer" {
			found = true
		}
	}
	if !found {
		t.Error("dependence chain insert->pointer not enumerated")
	}
}
