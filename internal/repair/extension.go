package repair

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"github.com/hetero/heterogen/internal/hls"
)

// The paper emphasizes extensibility (§5.2): "this repair localization
// module is designed for extensibility — for a new HLS error type, a user
// can add a new corresponding repair localization module." This file is
// that surface: downstream users register custom keyword classifiers and
// custom edit templates without touching the built-in registry.

var (
	extMu          sync.RWMutex
	extClassifiers []func(msg string) hls.ErrorClass
	extTemplates   []Template
)

// RegisterClassifier adds a keyword classifier consulted before the
// built-in one; returning hls.ClassNone passes to the next classifier.
func RegisterClassifier(f func(msg string) hls.ErrorClass) {
	extMu.Lock()
	defer extMu.Unlock()
	extClassifiers = append(extClassifiers, f)
}

// RegisterTemplate adds a custom edit template to the search. The
// template's Class may be one of the six built-in classes or any value a
// registered classifier produces. Returns an error when the ID collides
// with an existing template.
func RegisterTemplate(t Template) error {
	if t.ID == "" || t.Instantiate == nil {
		return fmt.Errorf("repair: template needs an ID and an Instantiate function")
	}
	extMu.Lock()
	defer extMu.Unlock()
	for _, existing := range builtinRegistry() {
		if existing.ID == t.ID {
			return fmt.Errorf("repair: template %q already registered (built-in)", t.ID)
		}
	}
	for _, existing := range extTemplates {
		if existing.ID == t.ID {
			return fmt.Errorf("repair: template %q already registered", t.ID)
		}
	}
	for _, req := range t.Requires {
		if _, ok := templateByIDLocked(req); !ok {
			return fmt.Errorf("repair: template %q requires unknown template %q", t.ID, req)
		}
	}
	extTemplates = append(extTemplates, t)
	return nil
}

// UnregisterTemplate removes a previously registered custom template
// (built-ins cannot be removed). Mainly for tests.
func UnregisterTemplate(id string) {
	extMu.Lock()
	defer extMu.Unlock()
	for i, t := range extTemplates {
		if t.ID == id {
			extTemplates = append(extTemplates[:i], extTemplates[i+1:]...)
			return
		}
	}
}

// ResetExtensions drops all custom classifiers and templates.
func ResetExtensions() {
	extMu.Lock()
	defer extMu.Unlock()
	extClassifiers = nil
	extTemplates = nil
}

func templateByIDLocked(id string) (Template, bool) {
	for _, t := range builtinRegistry() {
		if t.ID == id {
			return t, true
		}
	}
	for _, t := range extTemplates {
		if t.ID == id {
			return t, true
		}
	}
	return Template{}, false
}

// classifyExtended runs registered classifiers before the built-in one.
func classifyExtended(msg string) hls.ErrorClass {
	extMu.RLock()
	classifiers := append([]func(string) hls.ErrorClass{}, extClassifiers...)
	extMu.RUnlock()
	for _, f := range classifiers {
		if c := f(msg); c != hls.ClassNone {
			return c
		}
	}
	return builtinClassify(msg)
}

// extendedTemplates appends registered templates to the built-in catalog.
func extendedTemplates() []Template {
	extMu.RLock()
	defer extMu.RUnlock()
	if len(extTemplates) == 0 {
		return builtinRegistry()
	}
	out := append([]Template{}, builtinRegistry()...)
	out = append(out, extTemplates...)
	return out
}

// DescribeRegistry renders the active template catalog (built-in plus
// extensions) grouped by class — the Table 2 view of the running system.
func DescribeRegistry() string {
	byClass := map[hls.ErrorClass][]Template{}
	for _, t := range extendedTemplates() {
		byClass[t.Class] = append(byClass[t.Class], t)
	}
	var classes []hls.ErrorClass
	for c := range byClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(i, j int) bool { return classes[i] < classes[j] })
	var sb strings.Builder
	for _, c := range classes {
		fmt.Fprintf(&sb, "%s:\n", c)
		for _, t := range byClass[c] {
			fmt.Fprintf(&sb, "  %s", t.ID)
			if len(t.Requires) > 0 {
				fmt.Fprintf(&sb, " (after %s)", strings.Join(t.Requires, ", "))
			}
			if len(t.Alternatives) > 0 {
				fmt.Fprintf(&sb, " (alternative to %s)", strings.Join(t.Alternatives, ", "))
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}
