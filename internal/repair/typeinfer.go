// Package repair implements HeteroGen's search-based repair engine: error
// classification and localization from HLS diagnostics (§5.2),
// parameterized edit templates for the six error classes (Table 2), the
// dependence/precedence structure among those edits (Figure 7c), and the
// dependence-guided evolutionary search with early candidate rejection via
// the coding-style checker (§5.3).
//
// Candidate fitness evaluations can run concurrently (Options.Workers) on
// the worker pool in parallel.go; results stay bit-identical to the
// sequential search because all acceptance and virtual-cost decisions are
// committed in enumeration order on the search goroutine.
package repair

import (
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
)

// typeEnv performs best-effort static typing of expressions inside one
// function, from declarations alone (no execution). The pointer-removal
// and stack transforms use it to decide which expressions denote values of
// the struct type being rewritten.
type typeEnv struct {
	unit    *cast.Unit
	globals map[string]ctypes.Type
	scopes  []map[string]ctypes.Type
}

func newTypeEnv(u *cast.Unit) *typeEnv {
	env := &typeEnv{unit: u, globals: map[string]ctypes.Type{}}
	for _, d := range u.Decls {
		if v, ok := d.(*cast.VarDecl); ok {
			env.globals[v.Name] = v.Type
		}
	}
	return env
}

func (e *typeEnv) push() { e.scopes = append(e.scopes, map[string]ctypes.Type{}) }
func (e *typeEnv) pop()  { e.scopes = e.scopes[:len(e.scopes)-1] }

func (e *typeEnv) define(name string, t ctypes.Type) {
	if len(e.scopes) > 0 {
		e.scopes[len(e.scopes)-1][name] = t
	}
}

func (e *typeEnv) lookup(name string) ctypes.Type {
	for i := len(e.scopes) - 1; i >= 0; i-- {
		if t, ok := e.scopes[i][name]; ok {
			return t
		}
	}
	if t, ok := e.globals[name]; ok {
		return t
	}
	return nil
}

// typeOf infers the static type of an expression, or nil when unknown.
func (e *typeEnv) typeOf(x cast.Expr) ctypes.Type {
	switch n := x.(type) {
	case *cast.IntLit:
		return ctypes.IntT
	case *cast.FloatLit:
		return ctypes.DoubleT
	case *cast.CharLit:
		return ctypes.Char
	case *cast.BoolLit:
		return ctypes.Bool{}
	case *cast.Ident:
		return e.lookup(n.Name)
	case *cast.Unary:
		switch n.Op {
		case ctoken.MUL:
			if p, ok := ctypes.Resolve(e.typeOf(n.X)).(ctypes.Pointer); ok {
				return p.Elem
			}
			return nil
		case ctoken.AND:
			t := e.typeOf(n.X)
			if t == nil {
				return nil
			}
			return ctypes.Pointer{Elem: t}
		case ctoken.NOT:
			return ctypes.IntT
		}
		return e.typeOf(n.X)
	case *cast.Postfix:
		return e.typeOf(n.X)
	case *cast.Binary:
		lt, rt := e.typeOf(n.L), e.typeOf(n.R)
		switch n.Op {
		case ctoken.LSS, ctoken.GTR, ctoken.LEQ, ctoken.GEQ,
			ctoken.EQL, ctoken.NEQ, ctoken.LAND, ctoken.LOR:
			return ctypes.IntT
		}
		if lt != nil {
			if _, ok := ctypes.Resolve(lt).(ctypes.Pointer); ok {
				return lt
			}
		}
		if rt != nil {
			if _, ok := ctypes.Resolve(rt).(ctypes.Pointer); ok {
				return rt
			}
		}
		if lt != nil && ctypes.IsFloat(lt) {
			return lt
		}
		if rt != nil && ctypes.IsFloat(rt) {
			return rt
		}
		if lt != nil {
			return lt
		}
		return rt
	case *cast.Assign:
		return e.typeOf(n.L)
	case *cast.Cond:
		if t := e.typeOf(n.T); t != nil {
			return t
		}
		return e.typeOf(n.F)
	case *cast.Index:
		switch u := ctypes.Resolve(e.typeOf(n.X)).(type) {
		case ctypes.Array:
			return u.Elem
		case ctypes.Pointer:
			return u.Elem
		}
		return nil
	case *cast.Member:
		bt := ctypes.Resolve(e.typeOf(n.X))
		if p, ok := bt.(ctypes.Pointer); ok && n.Arrow {
			bt = ctypes.Resolve(p.Elem)
		}
		if st, ok := bt.(*ctypes.Struct); ok {
			if i := st.FieldIndex(n.Field); i >= 0 {
				return st.Fields[i].Type
			}
		}
		return nil
	case *cast.Cast:
		return n.To
	case *cast.SizeofExpr, *cast.SizeofType:
		return ctypes.UIntT
	case *cast.Call:
		if id, ok := n.Fun.(*cast.Ident); ok {
			if fn := e.unit.Func(id.Name); fn != nil {
				return fn.Ret
			}
			if id.Name == "malloc" {
				return ctypes.Pointer{Elem: ctypes.Char}
			}
		}
		return nil
	case *cast.InitList:
		return n.Type
	}
	return nil
}

// walkFuncTyped walks fn's body maintaining scope bindings so the visitor
// can query expression types with correct shadowing. The visitor may
// mutate the nodes it sees (the rewriters do).
func walkFuncTyped(u *cast.Unit, fn *cast.FuncDecl, visit func(env *typeEnv, n cast.Node)) {
	env := newTypeEnv(u)
	env.push()
	for _, p := range fn.Params {
		env.define(p.Name, p.Type)
	}
	var walkStmt func(s cast.Stmt)
	var walkExpr func(x cast.Expr)

	walkExpr = func(x cast.Expr) {
		if x == nil {
			return
		}
		visit(env, x)
		switch n := x.(type) {
		case *cast.Unary:
			walkExpr(n.X)
		case *cast.Postfix:
			walkExpr(n.X)
		case *cast.Binary:
			walkExpr(n.L)
			walkExpr(n.R)
		case *cast.Assign:
			walkExpr(n.L)
			walkExpr(n.R)
		case *cast.Cond:
			walkExpr(n.C)
			walkExpr(n.T)
			walkExpr(n.F)
		case *cast.Call:
			walkExpr(n.Fun)
			for _, a := range n.Args {
				walkExpr(a)
			}
		case *cast.Index:
			walkExpr(n.X)
			walkExpr(n.Idx)
		case *cast.Member:
			walkExpr(n.X)
		case *cast.Cast:
			walkExpr(n.X)
		case *cast.SizeofExpr:
			walkExpr(n.X)
		case *cast.InitList:
			for _, el := range n.Elems {
				walkExpr(el)
			}
		}
	}

	walkStmt = func(s cast.Stmt) {
		if s == nil {
			return
		}
		visit(env, s)
		switch n := s.(type) {
		case *cast.ExprStmt:
			walkExpr(n.X)
		case *cast.DeclStmt:
			walkExpr(n.Init)
			env.define(n.Name, n.Type)
		case *cast.Block:
			env.push()
			for _, st := range n.Stmts {
				walkStmt(st)
			}
			env.pop()
		case *cast.If:
			walkExpr(n.Cond)
			walkStmt(n.Then)
			walkStmt(n.Else)
		case *cast.For:
			env.push()
			walkStmt(n.Init)
			walkExpr(n.Cond)
			walkExpr(n.Post)
			walkStmt(n.Body)
			env.pop()
		case *cast.While:
			walkExpr(n.Cond)
			walkStmt(n.Body)
		case *cast.Return:
			walkExpr(n.X)
		case *cast.Switch:
			walkExpr(n.X)
			for _, c := range n.Cases {
				walkExpr(c.Value)
				for _, st := range c.Body {
					walkStmt(st)
				}
			}
		}
	}
	if fn.Body != nil {
		env.push()
		for _, s := range fn.Body.Stmts {
			walkStmt(s)
		}
		env.pop()
	}
}
