package repair

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/evalcache"
)

// slowOptions is DefaultOptions with the fast evaluation path switched
// off: full clones, printed-text cache keys, per-candidate tree-walking
// difftest — the exact pre-FastEval pipeline.
func slowOptions() Options {
	opts := DefaultOptions()
	opts.FastEval = false
	return opts
}

// TestFastEvalParity is the central contract of the fast evaluation
// path: for every evaluation subject, the FastEval search returns a
// Result bit-identical to the slow path — accepted edit sequence,
// printed program, the whole Stats struct down to the virtual clock —
// and a byte-identical JSONL trace, for both the sequential and the
// speculative (Workers=4) search.
func TestFastEvalParity(t *testing.T) {
	for _, id := range paritySubjects() {
		t.Run(id, func(t *testing.T) {
			orig, initial, kernel, tests := subjectInputs(t, id)

			slow, slowTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, slowOptions())

			fast, fastTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, DefaultOptions())
			assertIdentical(t, id+"/seq", slow, fast)
			assertTracesIdentical(t, id+"/seq", slowTrace, fastTrace)

			parOpts := DefaultOptions()
			parOpts.Workers = 4
			par, parTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, parOpts)
			assertIdentical(t, id+"/par", slow, par)
			assertTracesIdentical(t, id+"/par", slowTrace, parTrace)
		})
	}
}

// TestFastEvalTargetsParity extends the parity contract to multi-target
// mode: verdict table and Pareto set included.
func TestFastEvalTargetsParity(t *testing.T) {
	targets := mustTargets(t, "vivado_hls:xcvu9p", "vivado_hls:zc706", "vitis:aws_f1")
	for _, id := range []string{"P2", "P6"} {
		t.Run(id, func(t *testing.T) {
			orig, initial, kernel, tests := subjectInputs(t, id)

			slowOpts := slowOptions()
			slowOpts.Targets = targets
			slow, slowTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, slowOpts)

			fastOpts := DefaultOptions()
			fastOpts.Targets = targets
			fast, fastTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, fastOpts)

			assertIdentical(t, id, slow, fast)
			assertTracesIdentical(t, id, slowTrace, fastTrace)
			if !reflect.DeepEqual(slow.PerTarget, fast.PerTarget) {
				t.Errorf("verdict tables diverge:\n  slow: %+v\n  fast: %+v", slow.PerTarget, fast.PerTarget)
			}
			if !reflect.DeepEqual(slow.Pareto, fast.Pareto) {
				t.Errorf("pareto sets diverge: %d vs %d points", len(slow.Pareto), len(fast.Pareto))
			}
		})
	}
}

// TestFastEvalCacheParity: the fast path keys the eval cache by content
// fingerprint instead of printed text, so a fresh cache misses cleanly
// and a warm cache serves the same verdicts. Disabled, cold, and warm
// runs all match the slow path bit-for-bit, and the warm run must
// actually hit.
func TestFastEvalCacheParity(t *testing.T) {
	for _, id := range []string{"P2", "P6"} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", id, workers), func(t *testing.T) {
				orig, initial, kernel, tests := subjectInputs(t, id)

				slowOpts := slowOptions()
				slowOpts.Workers = workers
				slow, slowTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, slowOpts)

				fastOpts := DefaultOptions()
				fastOpts.Workers = workers
				plain, plainTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, fastOpts)

				cache, err := evalcache.New(evalcache.Options{})
				if err != nil {
					t.Fatal(err)
				}
				fastOpts.Cache = cache
				cold, coldTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, fastOpts)
				before := cache.Stats()
				warm, warmTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, fastOpts)
				if cache.Stats().Sub(before).Hits() == 0 {
					t.Error("warm fast-path run never hit the cache")
				}

				assertIdentical(t, "plain", slow, plain)
				assertIdentical(t, "cold", slow, cold)
				assertIdentical(t, "warm", slow, warm)
				assertTracesIdentical(t, "plain", slowTrace, plainTrace)
				assertTracesIdentical(t, "cold", slowTrace, coldTrace)
				assertTracesIdentical(t, "warm", slowTrace, warmTrace)
			})
		}
	}
}

// aliasSrc has several functions, pragmas on declarations and in
// bodies, and pragma-targetable loops, so the registry produces scoped
// (structure-sharing) candidates from several templates.
const aliasSrc = `
#pragma HLS top name=kernel
void helper(int a[16], int b[16]) {
#pragma HLS inline
    for (int i = 0; i < 16; i++) {
#pragma HLS pipeline
        b[i] = a[i] * 3;
    }
}
int other(int x) {
    int acc = 0;
    for (int i = 0; i < 8; i++) { acc = acc + x; }
    return acc;
}
int kernel(int a[16], int b[16]) {
#pragma HLS dataflow
    helper(a, b);
    int s = 0;
    for (int i = 0; i < 16; i++) { s = s + b[i]; }
    return s + other(3);
}`

// sharesFuncDecl reports whether a and b contain the same *cast.FuncDecl
// pointer — the signature of a structure-sharing clone.
func sharesFuncDecl(a, b *cast.Unit) bool {
	ptrs := map[*cast.FuncDecl]bool{}
	for _, d := range a.Decls {
		if f, ok := d.(*cast.FuncDecl); ok {
			ptrs[f] = true
		}
	}
	for _, d := range b.Decls {
		if f, ok := d.(*cast.FuncDecl); ok && ptrs[f] {
			return true
		}
	}
	return false
}

// TestScopedCloneAliasing is the aliasing-safety contract of
// structure-sharing candidate construction: generating candidates with
// FastClone never mutates the parent unit, and generating a second
// generation of candidates from each candidate never mutates the parent
// or any sibling — even though all of them share unedited FuncDecl
// pointers.
func TestScopedCloneAliasing(t *testing.T) {
	u := cparser.MustParse(aliasSrc)
	parentBefore := cast.Print(u)

	st := NewState()
	st.FastClone = true
	cands := append(RandomCandidates(u, nil, st), PerfCandidates(u, st)...)
	if len(cands) == 0 {
		t.Fatal("no candidates generated")
	}
	if got := cast.Print(u); got != parentBefore {
		t.Fatalf("candidate generation mutated the parent unit:\n--- before ---\n%s\n--- after ---\n%s", parentBefore, got)
	}

	shared := 0
	for _, c := range cands {
		if sharesFuncDecl(u, c.Unit) {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("no candidate shares a FuncDecl with the parent — structure sharing is not engaged")
	}
	t.Logf("%d/%d candidates share structure with the parent", shared, len(cands))

	snaps := make([]string, len(cands))
	for i, c := range cands {
		snaps[i] = cast.Print(c.Unit)
	}

	// Second generation: grow candidates from every first-generation
	// candidate. Scoped applies on a child must never write through the
	// shared decls into the parent or a sibling.
	for _, c := range cands {
		st2 := NewState()
		st2.FastClone = true
		for _, e := range c.Edits {
			st2.MarkApplied(e)
		}
		RandomCandidates(c.Unit, nil, st2)
		PerfCandidates(c.Unit, st2)
	}
	if got := cast.Print(u); got != parentBefore {
		t.Fatal("second-generation candidate construction mutated the grandparent unit")
	}
	for i, c := range cands {
		if got := cast.Print(c.Unit); got != snaps[i] {
			t.Errorf("candidate %d (%v) mutated by a sibling's candidate generation:\n--- before ---\n%s\n--- after ---\n%s",
				i, c.Edits, snaps[i], got)
		}
	}
}

// TestLineCounterPinsReport pins the ΔLOC numbers the evaluation report
// renders: the reusable LineCounter agrees with the one-shot
// EditedLines on known edits, repeated calls do not consume the base
// multiset, and the exact counts are pinned so a change to line
// accounting shows up as a diff here, not as silently shifted tables.
func TestLineCounterPinsReport(t *testing.T) {
	orig := cparser.MustParse(aliasSrc)
	lc := NewLineCounter(orig)

	if got := lc.EditedLines(orig); got != 0 {
		t.Errorf("unedited unit reports %d edited lines, want 0", got)
	}

	st := NewState()
	st.FastClone = true
	cands := RandomCandidates(orig, nil, st)
	if len(cands) == 0 {
		t.Fatal("no candidates")
	}
	for i, c := range cands {
		want := EditedLines(orig, c.Unit)
		if got := lc.EditedLines(c.Unit); got != want {
			t.Errorf("candidate %d: LineCounter=%d, EditedLines=%d", i, got, want)
		}
		// Reuse must be non-destructive: same answer twice.
		if got := lc.EditedLines(c.Unit); got != want {
			t.Errorf("candidate %d: second call diverged: %d vs %d", i, got, want)
		}
	}

	// Pin exact counts for two hand-made edits.
	ins := cast.CloneUnit(orig)
	for _, d := range ins.Decls {
		if f, ok := d.(*cast.FuncDecl); ok && f.Name == "other" {
			f.Pragmas = append(f.Pragmas, &cast.Pragma{Text: "HLS INLINE"})
		}
	}
	if got := lc.EditedLines(ins); got != 1 {
		t.Errorf("one inserted pragma: %d edited lines, want 1", got)
	}
	if got := EditedLines(orig, ins); got != 1 {
		t.Errorf("one inserted pragma (one-shot): %d edited lines, want 1", got)
	}
}
