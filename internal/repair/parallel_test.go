package repair

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/obs"
	"github.com/hetero/heterogen/internal/subjects"
)

// tracedSearch runs Search with a JSONL trace writer attached and
// returns the result plus the raw trace bytes.
func tracedSearch(orig, initial *cast.Unit, kernel string, tests []fuzz.TestCase, opts Options) (Result, []byte) {
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	opts.Obs = tw
	res := Search(orig, initial, kernel, tests, opts)
	if err := tw.Flush(); err != nil {
		panic(err)
	}
	return res, buf.Bytes()
}

// assertTracesIdentical is the observability half of the Workers
// contract: events are emitted at commit time on the commit goroutine,
// so the JSONL trace must be byte-identical for any worker count.
func assertTracesIdentical(t *testing.T, name string, seq, par []byte) {
	t.Helper()
	if len(seq) == 0 {
		t.Fatalf("%s: sequential trace is empty", name)
	}
	if !bytes.Equal(seq, par) {
		sl, pl := bytes.Split(seq, []byte("\n")), bytes.Split(par, []byte("\n"))
		for i := 0; i < len(sl) && i < len(pl); i++ {
			if !bytes.Equal(sl[i], pl[i]) {
				t.Fatalf("%s: traces diverge at line %d:\n  seq: %s\n  par: %s",
					name, i+1, sl[i], pl[i])
			}
		}
		t.Fatalf("%s: traces differ in length: %d vs %d lines", name, len(sl), len(pl))
	}
}

// searchSubjects are the determinism-test inputs: real evaluation
// subjects with multiple error classes, driven by small deterministic
// fuzzing campaigns.
func subjectInputs(t *testing.T, id string) (orig, initial *cast.Unit, kernel string, tests []fuzz.TestCase) {
	t.Helper()
	s, err := subjects.ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	orig = s.MustParse()
	fopts := fuzz.DefaultOptions()
	fopts.MaxExecs = 150
	fopts.Plateau = 60
	camp, err := fuzz.Run(orig, s.Kernel, fopts)
	if err != nil {
		t.Fatal(err)
	}
	suite := camp.Tests
	if len(suite) > 8 {
		suite = suite[:8]
	}
	return orig, s.MustParse(), s.Kernel, suite
}

// assertIdentical compares two search results bit-for-bit: accepted
// edit sequence, final printed program, and the complete Stats struct
// (iterations, candidate counts, and the virtual clock down to the last
// float addition).
func assertIdentical(t *testing.T, name string, seq, par Result) {
	t.Helper()
	if !reflect.DeepEqual(seq.Stats.EditLog, par.Stats.EditLog) {
		t.Errorf("%s: accepted edits diverge:\n  seq: %v\n  par: %v", name, seq.Stats.EditLog, par.Stats.EditLog)
	}
	if sp, pp := cast.Print(seq.Unit), cast.Print(par.Unit); sp != pp {
		t.Errorf("%s: final programs differ:\n--- sequential ---\n%s\n--- parallel ---\n%s", name, sp, pp)
	}
	if seq.Stats.Iterations != par.Stats.Iterations {
		t.Errorf("%s: iterations %d (seq) vs %d (par)", name, seq.Stats.Iterations, par.Stats.Iterations)
	}
	if !reflect.DeepEqual(seq.Stats, par.Stats) {
		t.Errorf("%s: stats diverge:\n  seq: %+v\n  par: %+v", name, seq.Stats, par.Stats)
	}
	if seq.Compatible != par.Compatible || seq.BehaviorOK != par.BehaviorOK || seq.Improved != par.Improved {
		t.Errorf("%s: verdicts diverge: seq=%v/%v/%v par=%v/%v/%v", name,
			seq.Compatible, seq.BehaviorOK, seq.Improved,
			par.Compatible, par.BehaviorOK, par.Improved)
	}
}

// TestParallelSearchDeterminism runs the sequential and the Workers=4
// searches over every evaluation subject and asserts bit-identical
// outcomes — the contract documented on Options.Workers — and
// byte-identical JSONL traces.
func TestParallelSearchDeterminism(t *testing.T) {
	ids := []string{"P1", "P2", "P3", "P6"}
	if !testing.Short() {
		ids = []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10"}
	}
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			orig, initial, kernel, tests := subjectInputs(t, id)
			opts := DefaultOptions()
			opts.Workers = 1
			seq, seqTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)
			opts.Workers = 4
			par, parTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)
			assertIdentical(t, id, seq, par)
			assertTracesIdentical(t, id, seqTrace, parTrace)
		})
	}
}

// TestParallelSearchDeterminismWithoutDependence exercises the random
// (WithoutDependence) mode, whose candidate picks come from the seeded
// rng: the pre-drawn pick stream must make Workers irrelevant there
// too.
func TestParallelSearchDeterminismWithoutDependence(t *testing.T) {
	orig := cparser.MustParse(treeKernel)
	opts := DefaultOptions()
	opts.UseDependence = false
	opts.Budget = 12 * 3600
	opts.MaxIterations = 96
	opts.Workers = 1
	seq := Search(orig, cparser.MustParse(treeKernel), "kernel", treeTests(), opts)
	opts.Workers = 4
	par := Search(orig, cparser.MustParse(treeKernel), "kernel", treeTests(), opts)
	assertIdentical(t, "tree/WithoutDependence", seq, par)
}

// TestParallelSearchDeterminismTightBudget stops the search mid-step by
// budget exhaustion, the trickiest commit path: the worker pool's
// speculative outcomes past the stop point must be discarded without a
// trace in the accounting.
func TestParallelSearchDeterminismTightBudget(t *testing.T) {
	orig := cparser.MustParse(treeKernel)
	for _, budget := range []hls.VirtualCost{120, 400, 900} {
		opts := DefaultOptions()
		opts.Budget = budget
		opts.Workers = 1
		seq, seqTrace := tracedSearch(orig, cparser.MustParse(treeKernel), "kernel", treeTests(), opts)
		opts.Workers = 4
		par, parTrace := tracedSearch(orig, cparser.MustParse(treeKernel), "kernel", treeTests(), opts)
		assertIdentical(t, "tree/tight-budget", seq, par)
		assertTracesIdentical(t, "tree/tight-budget", seqTrace, parTrace)
	}
}

// TestParallelPoolContention drives the worker pool well past the CPU
// count and from several concurrent searches at once; run under
// `go test -race` (the Makefile's race target) this is the data-race
// proof for the shared-budget mutex and the outcome slices.
func TestParallelPoolContention(t *testing.T) {
	orig := cparser.MustParse(treeKernel)
	var wg sync.WaitGroup
	results := make([]Result, 3)
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opts := DefaultOptions()
			opts.Workers = 8
			results[i] = Search(orig, cparser.MustParse(treeKernel), "kernel", treeTests(), opts)
		}(i)
	}
	wg.Wait()
	for i, r := range results {
		if !r.Compatible || !r.BehaviorOK {
			t.Fatalf("search %d failed under contention: %v", i, r.Stats.EditLog)
		}
		assertIdentical(t, "contention", results[0], r)
	}
}
