package repair

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
)

// treeKernel is the paper's Figure 2 working example shape: dynamic tree
// construction (malloc + pointers) with a recursive traversal. Insertion
// is iterative, as kernels ported to accelerators typically are.
const treeKernel = `
struct Node {
    int val;
    struct Node *left;
    struct Node *right;
};
int total;
void traverse(struct Node *curr) {
    if (curr == 0) { return; }
    total = total + curr->val;
    traverse(curr->left);
    traverse(curr->right);
}
int kernel(int n) {
    if (n < 0) { n = -n; }
    if (n > 24) { n = 24; }
    struct Node *root = 0;
    for (int i = 0; i < n; i++) {
        int v = (i * 37) % 101;
        struct Node *nn = (struct Node *)malloc(sizeof(struct Node));
        nn->val = v;
        nn->left = 0;
        nn->right = 0;
        if (root == 0) { root = nn; }
        else {
            struct Node *p = root;
            while (1) {
                if (v < p->val) {
                    if (p->left == 0) { p->left = nn; break; }
                    p = p->left;
                } else {
                    if (p->right == 0) { p->right = nn; break; }
                    p = p->right;
                }
            }
        }
    }
    total = 0;
    traverse(root);
    return total;
}`

func treeTests() []fuzz.TestCase {
	var out []fuzz.TestCase
	for _, n := range []int64{0, 1, 3, 8, 24, 17} {
		out = append(out, intTC(n))
	}
	return out
}

func TestSearchRepairsTreeKernel(t *testing.T) {
	orig := cparser.MustParse(treeKernel)
	initial := cparser.MustParse(treeKernel)

	pre := check.Run(initial, hls.DefaultConfig("kernel"))
	if pre.OK {
		t.Fatal("tree kernel should start broken")
	}

	res := Search(orig, initial, "kernel", treeTests(), DefaultOptions())
	if !res.Compatible {
		t.Fatalf("search did not reach compatibility; remaining: %v\nlog: %v",
			res.Remaining, res.Stats.EditLog)
	}
	if !res.BehaviorOK {
		t.Fatalf("behaviour not preserved: %s\nlog: %v",
			res.Report.FirstDiff, res.Stats.EditLog)
	}
	// The repaired design passes an independent full check.
	rep := check.Run(res.Unit, hls.DefaultConfig("kernel"))
	if !rep.OK {
		t.Errorf("final unit fails independent check: %v", rep.Diags)
	}
	// The expected templates all fired.
	log := strings.Join(res.Stats.EditLog, " ")
	for _, want := range []string{"insert", "pointer", "stack_trans"} {
		if !strings.Contains(log, want) {
			t.Errorf("edit log missing %q: %v", want, res.Stats.EditLog)
		}
	}
	if res.Stats.HLSInvocations == 0 || res.Stats.VirtualSeconds == 0 {
		t.Error("virtual accounting missing")
	}
	// The repaired source is printable and reparses.
	printed := cast.Print(res.Unit)
	if _, err := cparser.Parse(printed); err != nil {
		t.Errorf("final unit does not reparse: %v", err)
	}
	// Edits added lines (ΔLOC > 0).
	if EditedLines(orig, res.Unit) == 0 {
		t.Error("ΔLOC should be positive")
	}
}

func TestSearchWithoutDependenceIsSlower(t *testing.T) {
	orig := cparser.MustParse(treeKernel)
	mkInitial := func() *cast.Unit { return cparser.MustParse(treeKernel) }

	fast := Search(orig, mkInitial(), "kernel", treeTests(), DefaultOptions())
	if !fast.Compatible || !fast.BehaviorOK {
		t.Fatalf("dependence-guided search must succeed: %v", fast.Stats.EditLog)
	}

	slowOpts := DefaultOptions()
	slowOpts.UseDependence = false
	slowOpts.Budget = 12 * 3600
	slowOpts.MaxIterations = 256
	slow := Search(orig, mkInitial(), "kernel", treeTests(), slowOpts)

	if slow.Compatible && slow.Stats.VirtualSeconds <= fast.Stats.VirtualSeconds {
		t.Errorf("random order should cost more virtual time: dep=%.0fs random=%.0fs",
			fast.Stats.VirtualSeconds, slow.Stats.VirtualSeconds)
	}
	if slow.Stats.CandidatesTried <= fast.Stats.CandidatesTried {
		t.Errorf("random order should try more candidates: dep=%d random=%d",
			fast.Stats.CandidatesTried, slow.Stats.CandidatesTried)
	}
}

func TestSearchWithoutCheckerCompilesMore(t *testing.T) {
	orig := cparser.MustParse(treeKernel)
	mkInitial := func() *cast.Unit { return cparser.MustParse(treeKernel) }

	withOpts := DefaultOptions()
	with := Search(orig, mkInitial(), "kernel", treeTests(), withOpts)

	withoutOpts := DefaultOptions()
	withoutOpts.UseStyleChecker = false
	without := Search(orig, mkInitial(), "kernel", treeTests(), withoutOpts)

	if !with.Compatible || !without.Compatible {
		t.Fatal("both configurations must succeed on the tree kernel")
	}
	// Without the style checker every tried candidate pays a compile.
	if without.Stats.HLSInvocations < with.Stats.HLSInvocations {
		t.Errorf("WithoutChecker should compile at least as many candidates: with=%d without=%d",
			with.Stats.HLSInvocations, without.Stats.HLSInvocations)
	}
}

func TestSearchBudgetExhaustion(t *testing.T) {
	orig := cparser.MustParse(treeKernel)
	initial := cparser.MustParse(treeKernel)
	opts := DefaultOptions()
	opts.Budget = 1 // one virtual second: cannot even compile once more
	res := Search(orig, initial, "kernel", treeTests(), opts)
	if res.Compatible && res.BehaviorOK {
		t.Error("a one-second budget cannot finish the repair")
	}
	if res.Stats.VirtualSeconds <= 0 {
		t.Error("virtual time not accounted")
	}
}

func TestSearchAlreadyCleanProgramImproves(t *testing.T) {
	src := `
void kernel(int a[64], int b[64]) {
    for (int i = 0; i < 64; i++) {
        b[i] = a[i] * 3 + 1;
    }
}`
	orig := cparser.MustParse(src)
	initial := cparser.MustParse(src)
	mk := func() fuzz.TestCase {
		in := fuzz.Arg{Ints: make([]int64, 64), Width: 32}
		for i := range in.Ints {
			in.Ints[i] = int64(i * 7 % 50)
		}
		return fuzz.TestCase{Args: []fuzz.Arg{in, {Ints: make([]int64, 64), Width: 32}}}
	}
	res := Search(orig, initial, "kernel", []fuzz.TestCase{mk()}, DefaultOptions())
	if !res.Compatible || !res.BehaviorOK {
		t.Fatalf("clean program must stay correct: %v", res.Report.FirstDiff)
	}
	// Performance exploration should have added pragmas.
	printed := cast.Print(res.Unit)
	if !strings.Contains(printed, "#pragma HLS") {
		t.Errorf("no pragmas applied during performance exploration:\n%s", printed)
	}
}

func TestSearchResizeLoopConverges(t *testing.T) {
	// A recursion whose stack need (≈2×depth) exceeds the initial guess,
	// forcing at least one resize before behaviour passes.
	src := `
int acc;
void walk(int depth) {
    if (depth <= 0) { return; }
    acc = acc + depth;
    walk(depth - 1);
}
int kernel(int n) {
    if (n < 0) { n = 0; }
    if (n > 60) { n = 60; }
    acc = 0;
    walk(n);
    return acc;
}`
	orig := cparser.MustParse(src)
	initial := cparser.MustParse(src)
	tests := []fuzz.TestCase{intTC(0), intTC(5), intTC(60)}
	res := Search(orig, initial, "kernel", tests, DefaultOptions())
	if !res.Compatible || !res.BehaviorOK {
		t.Fatalf("resize loop did not converge: %v / %v", res.Remaining, res.Stats.EditLog)
	}
	log := strings.Join(res.Stats.EditLog, " ")
	if !strings.Contains(log, "resize") {
		t.Errorf("expected a resize edit in the log: %v", res.Stats.EditLog)
	}
}

// Two dynamically allocated struct types in one program: the pool and
// pointer templates must convert each independently.
func TestSearchRepairsTwoPooledStructs(t *testing.T) {
	src := `
struct A { int v; struct A *next; };
struct B { int w; struct B *next; };
int kernel(int n) {
    if (n < 0) { n = 0; }
    if (n > 20) { n = 20; }
    struct A *as = 0;
    struct B *bs = 0;
    for (int i = 0; i < n; i++) {
        struct A *a = (struct A *)malloc(sizeof(struct A));
        a->v = i * 2;
        a->next = as;
        as = a;
        struct B *b = (struct B *)malloc(sizeof(struct B));
        b->w = i * 3;
        b->next = bs;
        bs = b;
    }
    int s = 0;
    struct A *pa = as;
    while (pa != 0) { s += pa->v; pa = pa->next; }
    struct B *pb = bs;
    while (pb != 0) { s -= pb->w; pb = pb->next; }
    return s;
}`
	orig := cparser.MustParse(src)
	initial := cparser.MustParse(src)
	tests := []fuzz.TestCase{intTC(0), intTC(5), intTC(20)}
	res := Search(orig, initial, "kernel", tests, DefaultOptions())
	if !res.Compatible || !res.BehaviorOK {
		t.Fatalf("two-struct repair failed: %v\nlog: %v", res.Remaining, res.Stats.EditLog)
	}
	log := strings.Join(res.Stats.EditLog, " ")
	for _, want := range []string{"insert(A", "insert(B", "pointer(A", "pointer(B"} {
		if !strings.Contains(log, want) {
			t.Errorf("edit log missing %q: %v", want, res.Stats.EditLog)
		}
	}
}
