// Multi-target fitness for the repair search.
//
// With Options.Targets set, the search looks for one program that fits
// a *set* of (backend, device) targets at once: the synthesizability
// check and the differential test run once per candidate (their
// verdicts are target-independent up to diagnostic dialect), while the
// capacity gate and the latency model evaluate per target, making
// candidate fitness a per-device vector. The scalar search objective
// aggregates that vector conservatively — error counts sum over
// targets, latency is the worst (slowest) target — and, orthogonally to
// the accept-first-improvement rule, every fully-evaluated candidate
// that is compatible on all targets feeds a latency/resource Pareto
// archive, so the result is a set of non-dominated trade-off programs
// with per-device verdicts rather than a single pass/fail.
//
// Determinism: per-target computation happens inside computeScore
// (pure, worker-safe); the Pareto archive is updated only on the search
// goroutine at commit time, in candidate enumeration order, so results
// and traces stay bit-identical for any Workers value. An empty target
// set leaves every legacy code path untouched.
package repair

import (
	"fmt"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/sim"
)

// resolvedTarget caches one target's registry lookups for the search.
type resolvedTarget struct {
	t       hls.Target
	backend hls.Backend
	profile hls.DeviceProfile
	// device is the profile in the simulator's capacity form.
	device sim.Device
}

// resolveAll resolves the option set, failing on the first unknown name.
func resolveAll(ts []hls.Target) ([]resolvedTarget, error) {
	out := make([]resolvedTarget, len(ts))
	for i, t := range ts {
		b, p, err := hls.ResolveTarget(t)
		if err != nil {
			return nil, err
		}
		out[i] = resolvedTarget{t: hls.Target{Backend: b.Name(), Device: p.Name},
			backend: b, profile: p, device: sim.DeviceFor(p)}
	}
	return out, nil
}

// targetFit is one target's slice of a candidate's fitness vector.
type targetFit struct {
	errors    int
	fits      bool
	over      []string
	latencyMS float64
}

// TargetVerdict is one target's verdict on a program version — the rows
// of core.Result's per-device verdict table.
type TargetVerdict struct {
	// Target is the canonical "backend:device" name.
	Target string
	// Compatible reports zero diagnostics for this target (synthesizable
	// and within the device's capacity).
	Compatible bool
	// BehaviorOK is the shared differential-test verdict (behaviour is
	// target-independent; it rides along per row for table rendering).
	BehaviorOK bool
	// Fits / Over is the capacity-gate outcome against this device.
	Fits bool
	Over []string
	// Errors counts this target's diagnostics.
	Errors int
	// LatencyMS is the simulated kernel latency under this profile's
	// clock (0 when the design never reached simulation).
	LatencyMS float64
	// Utilization renders the resource estimate against this device.
	Utilization string
}

// ParetoPoint is one non-dominated program of a multi-target search:
// no other archived program is at least as good on every per-target
// latency and every resource axis and strictly better on one.
type ParetoPoint struct {
	// Source is the program's printed HLS-C text.
	Source string
	// PerTarget holds the per-device verdicts (all compatible).
	PerTarget []TargetVerdict
	// Resources is the design's fabric estimate.
	Resources sim.Resources
}

// scoreTargets is the per-target part of a fitness evaluation: the
// capacity gate against every device and, when all fit, the per-target
// latency vector derived from the shared 250 MHz reference simulation.
// It mutates sc in place and reports whether the differential test
// should run. Pure: safe on worker goroutines.
func (s *searcher) scoreTargets(u *cast.Unit, printed string, sc *score) (runDifftest bool, failure error) {
	sc.perTarget = make([]targetFit, len(s.targets))
	if sc.errors > 0 {
		// Compile errors apply to every target; surface the primary
		// backend's dialect in the aggregate diagnostics.
		for i := range sc.perTarget {
			sc.perTarget[i].errors = sc.errors
		}
		sc.diags = translateDiags(s.targets[0].backend, sc.diags)
		return false, nil
	}
	est, err := s.estimate(u, printed)
	if err != nil {
		return false, err
	}
	sc.res = est
	sc.resOK = true
	var diags []hls.Diagnostic
	for i, rt := range s.targets {
		ok, over := sim.CheckCapacity(est, rt.device)
		sc.perTarget[i].fits = ok
		sc.perTarget[i].over = over
		if !ok {
			sc.perTarget[i].errors = 1
			diags = append(diags, rt.backend.Translate(hls.Diagnostic{
				Code: "IMPL 200-1",
				Message: fmt.Sprintf(
					"implementation failed: design over-utilizes %s on %s (%s)",
					strings.Join(over, ", "), rt.profile.Part, rt.t),
				Class: hls.ClassLoopParallel,
			}))
		}
	}
	if len(diags) > 0 {
		sc.errors = len(diags)
		sc.diags = diags
		return false, nil
	}
	return true, nil
}

// finishTargets derives the per-target latency vector once the shared
// differential test produced the 250 MHz reference latency, and folds
// the worst target into the scalar objective.
func (s *searcher) finishTargets(sc *score) {
	base := sc.report.FPGAMeanMS()
	worst := 0.0
	for i, rt := range s.targets {
		l := sim.ScaleLatencyMS(base, rt.profile)
		sc.perTarget[i].latencyMS = l
		if l > worst {
			worst = l
		}
	}
	sc.latencyMS = worst
}

// verdicts renders a score's fitness vector as the exported per-device
// verdict table.
func (s *searcher) verdicts(sc score) []TargetVerdict {
	out := make([]TargetVerdict, len(s.targets))
	for i, rt := range s.targets {
		v := TargetVerdict{Target: rt.t.String(), BehaviorOK: sc.behaviorOK}
		if i < len(sc.perTarget) {
			f := sc.perTarget[i]
			v.Errors = f.errors
			v.Fits = f.fits
			v.Over = append([]string(nil), f.over...)
			v.LatencyMS = f.latencyMS
			v.Compatible = f.errors == 0
		}
		if sc.resOK {
			v.Utilization = sim.Utilization(sc.res, rt.device)
		}
		out[i] = v
	}
	return out
}

// translateDiags maps diagnostics into a backend's dialect.
func translateDiags(b hls.Backend, ds []hls.Diagnostic) []hls.Diagnostic {
	out := make([]hls.Diagnostic, len(ds))
	for i, d := range ds {
		out[i] = b.Translate(d)
	}
	return out
}

// paretoCap bounds the archive; beyond it new non-dominated points are
// dropped (deterministically — commit order decides who got in first).
const paretoCap = 64

// considerPareto offers one fully-evaluated candidate to the Pareto
// archive. Called only on the search goroutine, in enumeration order.
// Rejected candidates are offered too: a program the scalar objective
// passed over (slower overall) can still be the archive's cheapest
// design on a small part.
func (s *searcher) considerPareto(u *cast.Unit, sc score) {
	if len(s.targets) == 0 || sc.errors != 0 || !sc.behaviorOK || !sc.resOK {
		return
	}
	src := cast.Print(u)
	if s.paretoSeen[src] {
		return
	}
	s.paretoSeen[src] = true
	vec := paretoVector(sc)
	// The archive is mutually non-dominated, so (by transitivity) a
	// newcomer dominated by any archived point dominates none of them:
	// check for a dominator first, then evict what the newcomer beats.
	for _, p := range s.pareto {
		if dominates(p.vec, vec) {
			return
		}
	}
	kept := s.pareto[:0]
	for _, p := range s.pareto {
		if !dominates(vec, p.vec) {
			kept = append(kept, p)
		}
	}
	s.pareto = kept
	if len(s.pareto) >= paretoCap {
		return
	}
	s.pareto = append(s.pareto, paretoEntry{
		vec: vec,
		pt:  ParetoPoint{Source: src, PerTarget: s.verdicts(sc), Resources: sc.res},
	})
}

// paretoEntry pairs an archived point with its objective vector.
type paretoEntry struct {
	vec []float64
	pt  ParetoPoint
}

// paretoVector is the dominance objective: every per-target latency,
// then the four resource axes. Lower is better on every component.
func paretoVector(sc score) []float64 {
	vec := make([]float64, 0, len(sc.perTarget)+4)
	for _, f := range sc.perTarget {
		vec = append(vec, f.latencyMS)
	}
	return append(vec,
		float64(sc.res.LUT), float64(sc.res.FF),
		float64(sc.res.DSP), float64(sc.res.BRAM))
}

// dominates reports a <= b on every component with a < b on at least one.
func dominates(a, b []float64) bool {
	strict := false
	for i := range a {
		if a[i] > b[i] {
			return false
		}
		if a[i] < b[i] {
			strict = true
		}
	}
	return strict
}

// paretoPoints extracts the archived points in commit order.
func (s *searcher) paretoPoints() []ParetoPoint {
	if len(s.pareto) == 0 {
		return nil
	}
	out := make([]ParetoPoint, len(s.pareto))
	for i, p := range s.pareto {
		out[i] = p.pt
	}
	return out
}

// targetNames lists the resolved set canonically for the done event.
func (s *searcher) targetNames() []string {
	out := make([]string, len(s.targets))
	for i, rt := range s.targets {
		out[i] = rt.t.String()
	}
	return out
}
