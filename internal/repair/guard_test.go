package repair

import (
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/chaos"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/guard"
)

// TestSearchSurvivesCrashingCandidates is the degraded-mode contract: a
// candidate whose stage evaluation crashes (here: probabilistic chaos
// panics and deadline faults in the checker and differential test) must
// become a rejected candidate with a recorded reason — the search runs
// to completion, and because failure decisions are content-keyed, the
// Result and trace stay bit-identical for any Workers value.
func TestSearchSurvivesCrashingCandidates(t *testing.T) {
	newGuard := func() *guard.Guard {
		return guard.New(guard.Options{
			Injector: chaos.New(chaos.Options{
				Seed:   5,
				Rate:   0.3,
				Stages: []guard.Stage{guard.StageCheck, guard.StageDifftest},
				Kinds:  []guard.Class{guard.ClassPanic, guard.ClassDeadline},
			}),
		})
	}
	orig := cparser.MustParse(treeKernel)
	run := func(workers int) (Result, []byte) {
		opts := DefaultOptions()
		opts.Workers = workers
		// One guard per run: its once-per-(stage,class) bookkeeping is
		// instance state, and sharing it across runs would be fine but
		// makes failure attribution in this test murkier.
		opts.Guard = newGuard()
		return tracedSearch(orig, cparser.MustParse(treeKernel), "kernel", treeTests(), opts)
	}

	seq, seqTrace := run(1)
	if seq.Stats.StageFailures == 0 {
		t.Fatal("chaos at rate 0.3 contained no stage failures — the test exercises nothing")
	}
	for _, workers := range []int{4, 8} {
		par, parTrace := run(workers)
		assertIdentical(t, "chaos/workers", seq, par)
		assertTracesIdentical(t, "chaos/workers", seqTrace, parTrace)
		if par.Stats.StageFailures != seq.Stats.StageFailures {
			t.Errorf("workers=%d: %d stage failures vs %d sequential",
				workers, par.Stats.StageFailures, seq.Stats.StageFailures)
		}
	}
}

// TestSearchAllCandidatesCrashingStillReturns pins the worst case: with
// every checker invocation panicking, the search must finish, reject
// everything with a stage-failure reason, and hand back the initial
// version rather than abort.
func TestSearchAllCandidatesCrashingStillReturns(t *testing.T) {
	opts := DefaultOptions()
	opts.MaxIterations = 6
	opts.Guard = guard.New(guard.Options{Injector: chaos.Always(guard.StageCheck, guard.ClassPanic)})
	orig := cparser.MustParse(treeKernel)
	initial := cparser.MustParse(treeKernel)
	res := Search(orig, initial, "kernel", treeTests(), opts)
	if res.Compatible {
		t.Error("nothing can pass a crashing checker")
	}
	if res.Stats.StageFailures == 0 {
		t.Error("no stage failures recorded")
	}
	if res.Stats.AcceptedCandidates != 0 {
		t.Errorf("%d candidates accepted under a crashing checker", res.Stats.AcceptedCandidates)
	}
	if cast.Print(res.Unit) != cast.Print(initial) {
		t.Error("best version should remain the initial program")
	}
}
