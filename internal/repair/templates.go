package repair

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/hls"
)

// Template is one parameterized edit family from Table 2 — e.g.
// array_static($a1:arr, $i1:int) or constructor($s1:struct). A template is
// instantiated against a concrete program and diagnostic to produce
// applicable Edits.
type Template struct {
	// ID is the template name as the paper writes it.
	ID string
	// Class is the error class the template belongs to.
	Class hls.ErrorClass
	// Requires lists template IDs that must already have been applied to
	// the same target before this template is applicable — the Figure 7c
	// dependence relation.
	Requires []string
	// Alternatives lists template IDs this template conflicts with: once
	// one of them was applied to a target, this one no longer applies
	// (e.g. flatten vs constructor are two repair branches for a struct).
	Alternatives []string
	// PerfGain marks templates whose application tends to improve
	// performance (five of the six classes per §5.1's takeaway).
	PerfGain bool
	// Instantiate binds the template to concrete targets in u, guided by
	// the diagnostic. Each returned Edit must be independently
	// applicable to a fresh clone of u.
	Instantiate func(u *cast.Unit, d hls.Diagnostic, st *State) []Edit
}

// Edit is one concrete, applicable program edit.
type Edit struct {
	Template string
	Class    hls.ErrorClass
	// Target identifies the entity edited (function, variable, struct
	// tag); dependence bookkeeping is per (template, target).
	Target string
	// Note describes the parameterization, e.g. "size=1024".
	Note string
	// Apply mutates the unit in place. It must return an error (leaving
	// the unit possibly half-edited — callers apply to clones) when the
	// shape it expects is absent.
	Apply func(u *cast.Unit) error
	// Scope, when non-empty, declares that Apply mutates nothing outside
	// the bodies and pragma lists of the named functions — no retyping,
	// no unit-wide branch renumbering, no struct or typedef changes.
	// Scoped edits qualify for structure-sharing candidate construction
	// (cast.CloneUnitScoped): the candidate deep-copies only the named
	// functions and shares every other declaration with its parent by
	// pointer, which is what lets the compiled-code and fingerprint
	// caches carry over. Empty means "unknown": the candidate gets a
	// full deep clone.
	Scope []string
	// OnAccept, when non-nil, updates the search state after this edit is
	// accepted into the current program (e.g. recording chosen sizes so
	// resize can grow them later).
	OnAccept func(st *State)
}

// String renders the edit like the paper: template(target, note).
func (e Edit) String() string {
	if e.Note != "" {
		return fmt.Sprintf("%s(%s, %s)", e.Template, e.Target, e.Note)
	}
	return fmt.Sprintf("%s(%s)", e.Template, e.Target)
}

// Key identifies the (template, target) pair for dependence tracking.
func (e Edit) Key() string { return e.Template + "@" + e.Target }

// State carries per-search bookkeeping that templates consult: which
// (template, target) pairs have been applied on the current program path,
// and tunable parameters being explored (array sizes, factors).
type State struct {
	Applied map[string]bool
	// Sizes remembers the current size choice per resizable entity, so
	// the resize template can grow it geometrically.
	Sizes map[string]int
	// TestCount scales simulated validation cost.
	TestCount int
	// FastClone enables structure-sharing candidate construction for
	// edits that declare a Scope (set from Options.FastEval; candidate
	// generators consult it at their clone sites).
	FastClone bool
}

// NewState returns empty bookkeeping.
func NewState() *State {
	return &State{Applied: map[string]bool{}, Sizes: map[string]int{}}
}

// MarkApplied records an applied edit.
func (s *State) MarkApplied(e Edit) { s.Applied[e.Template+"@"+e.Target] = true }

// applied reports whether template tid was applied to target.
func (s *State) applied(tid, target string) bool {
	return s.Applied[tid+"@"+target]
}

// DepsSatisfied reports whether every prerequisite of t has been applied
// to the target and no alternative branch has claimed it.
func (s *State) DepsSatisfied(t Template, target string) bool {
	for _, req := range t.Requires {
		if !s.applied(req, target) {
			return false
		}
	}
	for _, alt := range t.Alternatives {
		if s.applied(alt, target) {
			return false
		}
	}
	return true
}

// Registry returns the active template catalog: the built-in Table 2
// templates followed by any registered extensions.
func Registry() []Template { return extendedTemplates() }

// builtinRegistry returns the built-in catalog, keyed in the order of
// Table 2. The dependence edges mirror Figure 7c for the struct/union
// class and §5.3's array_static -> resize example for dynamic data.
func builtinRegistry() []Template {
	return []Template{
		// --- Dynamic Data Structures -----------------------------------
		{
			ID:          "array_static",
			Class:       hls.ClassDynamicData,
			PerfGain:    true,
			Instantiate: instArrayStatic,
		},
		{
			ID:          "insert",
			Class:       hls.ClassDynamicData,
			PerfGain:    true,
			Instantiate: instPoolInsert, // insert($a1:arr,$d1:dyn): static pool for dynamic allocs
		},
		{
			ID:          "pointer",
			Class:       hls.ClassDynamicData,
			Requires:    []string{"insert"},
			PerfGain:    true,
			Instantiate: instPointerRemoval,
		},
		{
			ID:          "stack_trans",
			Class:       hls.ClassDynamicData,
			PerfGain:    true,
			Instantiate: instStackTrans,
		},
		{
			ID:          "resize",
			Class:       hls.ClassDynamicData,
			Requires:    []string{}, // applicable after any sizing edit; see Instantiate
			PerfGain:    false,
			Instantiate: instResize,
		},

		// --- Unsupported Data Types -------------------------------------
		{
			ID:          "type_trans",
			Class:       hls.ClassUnsupportedType,
			PerfGain:    true,
			Instantiate: instTypeTrans,
		},
		{
			ID:          "type_casting",
			Class:       hls.ClassUnsupportedType,
			Requires:    []string{"type_trans"},
			PerfGain:    true,
			Instantiate: instTypeCasting,
		},
		{
			ID:          "pointer_var",
			Class:       hls.ClassUnsupportedType,
			PerfGain:    true,
			Instantiate: instPointerVarRemoval,
		},
		{
			// Table 2 lists pointer($v1:ptr) under Unsupported Data Types
			// too: struct pointers flagged as type errors resolve to the
			// same pool-index rewrite (self-gated on the pool existing).
			ID:          "pointer_pool",
			Class:       hls.ClassUnsupportedType,
			PerfGain:    true,
			Instantiate: instPointerRemoval,
		},

		// --- Dataflow Optimization ---------------------------------------
		{
			ID:          "segment",
			Class:       hls.ClassDataflow,
			PerfGain:    true,
			Instantiate: instSegmentBuffer,
		},
		{
			ID:          "delete_pragma",
			Class:       hls.ClassDataflow,
			PerfGain:    false,
			Instantiate: instDeleteDataflow,
		},
		{
			ID:          "insert_pragma",
			Class:       hls.ClassDataflow,
			PerfGain:    true,
			Instantiate: instInsertDataflow,
		},

		// --- Loop Parallelization ----------------------------------------
		{
			ID:          "index_static",
			Class:       hls.ClassLoopParallel,
			PerfGain:    true,
			Instantiate: instIndexStatic,
		},
		{
			ID:          "explore_all",
			Class:       hls.ClassLoopParallel,
			PerfGain:    true,
			Instantiate: instExploreAll,
		},
		{
			ID:          "explore",
			Class:       hls.ClassLoopParallel,
			PerfGain:    true,
			Instantiate: instExplorePragmas,
		},
		{
			ID:          "delete_loop_pragma",
			Class:       hls.ClassLoopParallel,
			PerfGain:    false,
			Instantiate: instDeleteLoopPragma,
		},

		// --- Struct and Union (Figure 7c) --------------------------------
		{
			ID:           "constructor",
			Class:        hls.ClassStructUnion,
			Alternatives: []string{"flatten"},
			PerfGain:     true,
			Instantiate:  instConstructor,
		},
		{
			ID:           "flatten",
			Class:        hls.ClassStructUnion,
			Alternatives: []string{"constructor"},
			PerfGain:     true,
			Instantiate:  instFlatten,
		},
		{
			ID:          "stream_static",
			Class:       hls.ClassStructUnion,
			Requires:    []string{"constructor"},
			PerfGain:    true,
			Instantiate: instStreamStatic,
		},
		{
			ID:          "inst_update",
			Class:       hls.ClassStructUnion,
			Requires:    []string{"flatten"},
			PerfGain:    true,
			Instantiate: instInstUpdate,
		},
		{
			ID:          "inst_static",
			Class:       hls.ClassStructUnion,
			Requires:    []string{"constructor"},
			PerfGain:    false,
			Instantiate: instInstStatic,
		},

		// --- Top Function -------------------------------------------------
		{
			ID:          "top_rename",
			Class:       hls.ClassTopFunction,
			PerfGain:    false,
			Instantiate: instTopRename,
		},
		{
			ID:          "top_delete_pragma",
			Class:       hls.ClassTopFunction,
			PerfGain:    false,
			Instantiate: instTopDeletePragma,
		},
	}
}

// TemplatesFor returns the registry templates of one class, in order.
func TemplatesFor(c hls.ErrorClass) []Template {
	var out []Template
	for _, t := range Registry() {
		if t.Class == c {
			out = append(out, t)
		}
	}
	return out
}

// TemplateByID looks up a registry entry.
func TemplateByID(id string) (Template, bool) {
	for _, t := range Registry() {
		if t.ID == id {
			return t, true
		}
	}
	return Template{}, false
}
