package repair

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/hls/sim"
)

// With a capacity-gated device, the search must back off from resource-
// hungry pragma configurations instead of accepting the fastest one.
func TestSearchRespectsDeviceCapacity(t *testing.T) {
	src := `
void kernel(int a[64], int b[64]) {
    for (int i = 0; i < 64; i++) {
        b[i] = a[i] * 3 + 1;
    }
}`
	mk := func() fuzz.TestCase {
		in := fuzz.Arg{Ints: make([]int64, 64), Width: 32}
		for i := range in.Ints {
			in.Ints[i] = int64(i % 9)
		}
		return fuzz.TestCase{Args: []fuzz.Arg{in, {Ints: make([]int64, 64), Width: 32}}}
	}
	tests := []fuzz.TestCase{mk()}

	// Unconstrained: partitions freely.
	free := Search(cparser.MustParse(src), cparser.MustParse(src), "kernel", tests, DefaultOptions())
	if !free.Compatible || !free.BehaviorOK {
		t.Fatalf("unconstrained search failed: %v", free.Remaining)
	}
	freeRes := sim.Estimate(free.Unit)

	// Tiny device: whatever the search accepts must fit.
	tiny := sim.Device{Name: "tiny", Cap: sim.Resources{LUT: 5000, FF: 20000, DSP: 64, BRAM: 12}}
	opts := DefaultOptions()
	opts.Device = tiny
	gated := Search(cparser.MustParse(src), cparser.MustParse(src), "kernel", tests, opts)
	if !gated.Compatible || !gated.BehaviorOK {
		t.Fatalf("gated search failed: %v / %v", gated.Remaining, gated.Stats.EditLog)
	}
	gatedRes := sim.Estimate(gated.Unit)
	if ok, over := sim.CheckCapacity(gatedRes, tiny); !ok {
		t.Errorf("accepted design over-utilizes the device: %v (%s)", over, gatedRes)
	}
	if gatedRes.BRAM > freeRes.BRAM {
		t.Errorf("gated design should not use more BRAM than the free one: %d vs %d",
			gatedRes.BRAM, freeRes.BRAM)
	}
}

// An initial design that already exceeds the device fails with the
// implementation diagnostic.
func TestCapacityDiagnosticSurfaces(t *testing.T) {
	src := `
int huge[1000000];
int kernel(int x) {
    huge[0] = x;
    return huge[0];
}`
	tiny := sim.Device{Name: "tiny", Cap: sim.Resources{LUT: 5000, FF: 20000, DSP: 64, BRAM: 12}}
	opts := DefaultOptions()
	opts.Device = tiny
	opts.MaxIterations = 4
	res := Search(cparser.MustParse(src), cparser.MustParse(src), "kernel",
		[]fuzz.TestCase{{Args: []fuzz.Arg{{Scalar: true, Ints: []int64{1}, Width: 32}}}}, opts)
	if res.Compatible {
		t.Fatal("a megaword array cannot fit the tiny device")
	}
	found := false
	for _, d := range res.Remaining {
		if strings.Contains(d.Message, "over-utilizes") {
			found = true
		}
	}
	if !found {
		t.Errorf("implementation diagnostic missing: %v", res.Remaining)
	}
}
