package repair

import (
	"fmt"
	"sort"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
)

// Initial size guesses for finitization edits. Deliberately small: the
// resize template grows them geometrically until differential testing
// passes, reproducing the paper's "experimentation with different array
// sizes" (and its P3 stack-size story).
const (
	initialArraySize = 64
	initialPoolSize  = 256
	initialStackSize = 32
	maxFinitizedSize = 1 << 20
)

// ---------------------------------------------------------------------------
// array_static($a1:arr, $i1:int): give an unknown-size array a constant size.

func instArrayStatic(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	if d.Subject == "" {
		return nil
	}
	name := d.Subject
	if !hasUnknownArray(u, name) {
		return nil
	}
	size := st.Sizes["array:"+name]
	if size == 0 {
		size = initialArraySize
	}
	key := "array:" + name
	return []Edit{{
		Template: "array_static",
		Class:    hls.ClassDynamicData,
		Target:   name,
		Note:     fmt.Sprintf("size=%d", size),
		Apply: func(u *cast.Unit) error {
			if !setArraySize(u, name, size) {
				return fmt.Errorf("array_static: no unknown-size array %q", name)
			}
			return nil
		},
		OnAccept: func(s *State) { s.Sizes[key] = size },
	}}
}

func hasUnknownArray(u *cast.Unit, name string) bool {
	found := false
	cast.Inspect(u, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.DeclStmt:
			if x.Name == name {
				if a, ok := ctypes.Resolve(x.Type).(ctypes.Array); ok && unknownDim(a) {
					found = true
				}
			}
		case *cast.VarDecl:
			if x.Name == name {
				if a, ok := ctypes.Resolve(x.Type).(ctypes.Array); ok && unknownDim(a) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func unknownDim(a ctypes.Array) bool {
	if a.Len < 0 {
		return true
	}
	if inner, ok := ctypes.Resolve(a.Elem).(ctypes.Array); ok {
		return unknownDim(inner)
	}
	return false
}

// setArraySize rewrites all unknown dimensions of the named array to size
// and clears any VLA dimension expressions.
func setArraySize(u *cast.Unit, name string, size int) bool {
	done := false
	var fix func(t ctypes.Type) ctypes.Type
	fix = func(t ctypes.Type) ctypes.Type {
		a, ok := t.(ctypes.Array)
		if !ok {
			return t
		}
		ln := a.Len
		if ln < 0 {
			ln = size
		}
		return ctypes.Array{Elem: fix(a.Elem), Len: ln}
	}
	cast.Inspect(u, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.DeclStmt:
			if x.Name == name {
				if a, ok := ctypes.Resolve(x.Type).(ctypes.Array); ok && unknownDim(a) {
					x.Type = fix(a)
					x.VLADims = nil
					done = true
				}
			}
		case *cast.VarDecl:
			if x.Name == name {
				if a, ok := ctypes.Resolve(x.Type).(ctypes.Array); ok && unknownDim(a) {
					x.Type = fix(a)
					done = true
				}
			}
		}
		return true
	})
	return done
}

// ---------------------------------------------------------------------------
// resize($a1:arr): grow a previously finitized array geometrically.

func instResize(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	var keys []string
	for k := range st.Sizes {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var out []Edit
	// Geometric size exploration: a single doubling may not flip any test
	// (a deep recursion can need 8x the current stack), so each resizable
	// entity gets several growth factors as independent candidates.
	for _, key := range keys {
		key := key
		old := st.Sizes[key]
		name := arrayNameForSizeKey(key)
		for _, mult := range []int{2, 4, 8, 16} {
			size := old * mult
			if size > maxFinitizedSize {
				continue
			}
			out = append(out, Edit{
				Template: "resize",
				Class:    hls.ClassDynamicData,
				Target:   name,
				Note:     fmt.Sprintf("size=%d", size),
				Apply: func(u *cast.Unit) error {
					if !resizeNamedArray(u, name, size) {
						return fmt.Errorf("resize: no sized array %q", name)
					}
					return nil
				},
				OnAccept: func(s *State) { s.Sizes[key] = size },
			})
		}
	}
	return out
}

// arrayNameForSizeKey maps a size-bookkeeping key to the declared array
// it controls: "stack:traverse" sizes traverse_stack, "pool:Node" sizes
// Node_arr, "array:buf" sizes buf itself.
func arrayNameForSizeKey(key string) string {
	for i := 0; i < len(key); i++ {
		if key[i] == ':' {
			prefix, name := key[:i], key[i+1:]
			switch prefix {
			case "stack":
				return name + "_stack"
			case "pool":
				return name + "_arr"
			}
			return name
		}
	}
	return key
}

// resizeNamedArray sets the outer dimension of every array declaration
// with the given name.
func resizeNamedArray(u *cast.Unit, name string, size int) bool {
	done := false
	cast.Inspect(u, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.DeclStmt:
			if x.Name == name {
				if a, ok := ctypes.Resolve(x.Type).(ctypes.Array); ok {
					x.Type = ctypes.Array{Elem: a.Elem, Len: size}
					done = true
				}
			}
		case *cast.VarDecl:
			if x.Name == name {
				if a, ok := ctypes.Resolve(x.Type).(ctypes.Array); ok {
					x.Type = ctypes.Array{Elem: a.Elem, Len: size}
					done = true
				}
			}
		}
		return true
	})
	return done
}

// ---------------------------------------------------------------------------
// insert($a1:arr, $d1:dyn): replace dynamic allocation of a struct with a
// static pool + index allocator (Figure 2b's Node_arr / Node_malloc).

func instPoolInsert(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	tags := mallocTags(u)
	var out []Edit
	for _, tag := range tags {
		tag := tag
		if st.applied("insert", tag) {
			continue
		}
		size := st.Sizes["pool:"+tag]
		if size == 0 {
			size = initialPoolSize
		}
		key := "pool:" + tag
		out = append(out, Edit{
			Template: "insert",
			Class:    hls.ClassDynamicData,
			Target:   tag,
			Note:     fmt.Sprintf("%s_arr size=%d", tag, size),
			Apply:    func(u *cast.Unit) error { return applyPoolInsert(u, tag, size) },
			OnAccept: func(s *State) { s.Sizes[key] = size },
		})
	}
	return out
}

// mallocTags returns struct tags allocated via (struct T*)malloc casts,
// in deterministic order.
func mallocTags(u *cast.Unit) []string {
	seen := map[string]bool{}
	var tags []string
	cast.Inspect(u, func(n cast.Node) bool {
		c, ok := n.(*cast.Cast)
		if !ok {
			return true
		}
		call, ok := c.X.(*cast.Call)
		if !ok {
			return true
		}
		id, ok := call.Fun.(*cast.Ident)
		if !ok || id.Name != "malloc" {
			return true
		}
		if p, ok := ctypes.Resolve(c.To).(ctypes.Pointer); ok {
			if stct, ok := ctypes.Resolve(p.Elem).(*ctypes.Struct); ok && !seen[stct.Tag] {
				seen[stct.Tag] = true
				tags = append(tags, stct.Tag)
			}
		}
		return true
	})
	return tags
}

func applyPoolInsert(u *cast.Unit, tag string, size int) error {
	sd := u.StructOf(tag)
	if sd == nil {
		return fmt.Errorf("insert: struct %q not found", tag)
	}
	stct := sd.Type
	ptrName := tag + "_ptr"
	arrName := tag + "_arr"
	nextName := tag + "_next"

	ptrType := ctypes.Named{Name: ptrName, Underlying: ctypes.IntT}

	// typedef int T_ptr;
	td := &cast.TypedefDecl{Name: ptrName, Type: ctypes.IntT}
	u.Typedefs[ptrName] = ctypes.IntT

	// struct T T_arr[size]; int T_next = 1; (index 0 is the null element)
	arr := &cast.VarDecl{Name: arrName, Type: ctypes.Array{Elem: stct, Len: size}}
	next := &cast.VarDecl{Name: nextName, Type: ctypes.IntT, Init: &cast.IntLit{Value: 1, Text: "1"}}

	// T_ptr T_malloc(int sz) { T_ptr p = T_next; T_next = T_next + 1; return p; }
	mallocFn := &cast.FuncDecl{
		Name:   tag + "_malloc",
		Ret:    ptrType,
		Params: []cast.Param{{Name: "sz", Type: ctypes.IntT}},
		Body: &cast.Block{Stmts: []cast.Stmt{
			&cast.DeclStmt{Name: "p", Type: ptrType, Init: &cast.Ident{Name: nextName}},
			&cast.ExprStmt{X: &cast.Assign{Op: ctoken.ASSIGN,
				L: &cast.Ident{Name: nextName},
				R: &cast.Binary{Op: ctoken.ADD, L: &cast.Ident{Name: nextName},
					R: &cast.IntLit{Value: 1, Text: "1"}}}},
			&cast.Return{X: &cast.Ident{Name: "p"}},
		}},
	}
	// void T_free(T_ptr p) { } — pool storage is static; free is a no-op.
	freeFn := &cast.FuncDecl{
		Name:   tag + "_free",
		Ret:    ctypes.Void{},
		Params: []cast.Param{{Name: "p", Type: ptrType}},
		Body:   &cast.Block{},
	}

	// The typedef precedes the struct (its fields will refer to T_ptr
	// after pointer removal); the pool and allocator follow the struct.
	u.InsertDeclBefore(td, sd)
	idx := -1
	for i, d := range u.Decls {
		if d == cast.Decl(sd) {
			idx = i
			break
		}
	}
	newDecls := []cast.Decl{arr, next, mallocFn, freeFn}
	if idx < 0 {
		u.Decls = append(newDecls, u.Decls...)
	} else {
		rest := append([]cast.Decl{}, u.Decls[idx+1:]...)
		u.Decls = append(append(u.Decls[:idx+1], newDecls...), rest...)
	}

	// Rewrite (struct T*)malloc(...) -> T_malloc(...) and free(p) ->
	// T_free(p) for pointers to T.
	eachFunction(u, func(fn *cast.FuncDecl) {
		if fn == mallocFn || fn == freeFn {
			return
		}
		rewriteExprsTyped(u, fn, func(env *typeEnv, e cast.Expr) cast.Expr {
			switch x := e.(type) {
			case *cast.Cast:
				if call, ok := x.X.(*cast.Call); ok {
					if id, ok := call.Fun.(*cast.Ident); ok && id.Name == "malloc" && isPointerTo(x.To, tag) {
						return &cast.Call{P: x.P, Fun: &cast.Ident{P: x.P, Name: tag + "_malloc"}, Args: call.Args}
					}
				}
			case *cast.Call:
				if id, ok := x.Fun.(*cast.Ident); ok && id.Name == "free" && len(x.Args) == 1 {
					at := env.typeOf(x.Args[0])
					if at != nil && (isPointerTo(at, tag) || isNamed(at, ptrName)) {
						return &cast.Call{P: x.P, Fun: &cast.Ident{P: x.P, Name: tag + "_free"}, Args: x.Args}
					}
				}
			}
			return e
		})
	})
	return nil
}

func isNamed(t ctypes.Type, name string) bool {
	n, ok := t.(ctypes.Named)
	return ok && n.Name == name
}

// ---------------------------------------------------------------------------
// pointer($v1:ptr): replace struct pointers with pool indices
// (Figure 2b's Node* -> Node_ptr).

func instPointerRemoval(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	// Applicable to every pooled struct (insert applied) that still has
	// pointer uses.
	var out []Edit
	for _, sd := range structDecls(u) {
		tag := sd.Type.Tag
		if _, ok := u.Typedefs[tag+"_ptr"]; !ok {
			continue // pool not inserted yet (dependence unmet)
		}
		if !hasPointerTo(u, tag) {
			continue
		}
		out = append(out, Edit{
			Template: "pointer",
			Class:    hls.ClassDynamicData,
			Target:   tag,
			Note:     tag + "* -> " + tag + "_ptr",
			Apply:    func(u *cast.Unit) error { return applyPointerRemoval(u, tag) },
		})
	}
	return out
}

func structDecls(u *cast.Unit) []*cast.StructDecl {
	var out []*cast.StructDecl
	for _, d := range u.Decls {
		if sd, ok := d.(*cast.StructDecl); ok {
			out = append(out, sd)
		}
	}
	return out
}

func hasPointerTo(u *cast.Unit, tag string) bool {
	found := false
	check := func(t ctypes.Type) {
		if t == nil {
			return
		}
		for {
			switch x := t.(type) {
			case ctypes.Pointer:
				if st, ok := ctypes.Resolve(x.Elem).(*ctypes.Struct); ok && st.Tag == tag {
					found = true
					return
				}
				t = x.Elem
			case ctypes.Array:
				t = x.Elem
			case ctypes.Ref:
				t = x.Elem
			default:
				return
			}
		}
	}
	cast.Inspect(u, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.DeclStmt:
			check(x.Type)
		case *cast.VarDecl:
			check(x.Type)
		case *cast.Cast:
			check(x.To)
		case *cast.FuncDecl:
			check(x.Ret)
			for _, p := range x.Params {
				check(p.Type)
			}
		case *cast.StructDecl:
			for _, f := range x.Type.Fields {
				check(f.Type)
			}
		}
		return true
	})
	return found
}

func applyPointerRemoval(u *cast.Unit, tag string) error {
	ptrName := tag + "_ptr"
	arrName := tag + "_arr"
	under, ok := u.Typedefs[ptrName]
	if !ok {
		return fmt.Errorf("pointer: pool typedef %s missing (apply insert first)", ptrName)
	}
	ptrType := ctypes.Named{Name: ptrName, Underlying: under}

	// Expression rewrites first (they rely on the original pointer types).
	var rewriteErr error
	eachFunction(u, func(fn *cast.FuncDecl) {
		rewriteExprsTyped(u, fn, func(env *typeEnv, e cast.Expr) cast.Expr {
			switch x := e.(type) {
			case *cast.Member:
				if x.Arrow {
					bt := env.typeOf(x.X)
					if bt != nil && isPointerTo(bt, tag) {
						return &cast.Member{P: x.P, Field: x.Field, X: &cast.Index{
							P: x.P, X: &cast.Ident{P: x.P, Name: arrName}, Idx: x.X}}
					}
				}
			case *cast.Unary:
				switch x.Op {
				case ctoken.MUL:
					bt := env.typeOf(x.X)
					if bt != nil && isPointerTo(bt, tag) {
						return &cast.Index{P: x.P, X: &cast.Ident{P: x.P, Name: arrName}, Idx: x.X}
					}
				case ctoken.AND:
					xt := env.typeOf(x.X)
					if st, ok := ctypes.Resolve(orNil(xt)).(*ctypes.Struct); ok && st.Tag == tag {
						// &T_arr[i] -> i; anything else is out of scope.
						if ix, ok := x.X.(*cast.Index); ok {
							if id, ok := ix.X.(*cast.Ident); ok && id.Name == arrName {
								return ix.Idx
							}
						}
						rewriteErr = fmt.Errorf("pointer: unsupported address-of struct %s", tag)
					}
				}
			}
			return e
		})
	})
	if rewriteErr != nil {
		return rewriteErr
	}

	// Then retype every Pointer{struct T} declaration site to T_ptr.
	rewriteTypes(u, func(t ctypes.Type) (ctypes.Type, bool) {
		if p, ok := t.(ctypes.Pointer); ok {
			if st, ok := ctypes.Resolve(p.Elem).(*ctypes.Struct); ok && st.Tag == tag {
				return ptrType, true
			}
		}
		return t, false
	})
	return nil
}

func orNil(t ctypes.Type) ctypes.Type {
	if t == nil {
		return ctypes.Void{}
	}
	return t
}
