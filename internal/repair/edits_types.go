package repair

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
)

// ---------------------------------------------------------------------------
// type_trans($v1:var): replace an unsupported type (long double) with a
// custom-width HLS float — the Figure 4 repair.

func instTypeTrans(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	if !hasLongDouble(u) {
		return nil
	}
	return []Edit{{
		Template: "type_trans",
		Class:    hls.ClassUnsupportedType,
		Target:   "long double",
		Note:     "-> " + ctypes.DefaultFPGAFloat.C(""),
		Apply: func(u *cast.Unit) error {
			if !hasLongDouble(u) {
				return fmt.Errorf("type_trans: no long double left")
			}
			rewriteTypes(u, func(t ctypes.Type) (ctypes.Type, bool) {
				if f, ok := t.(ctypes.Float); ok && f.FK == ctypes.F80 {
					return ctypes.DefaultFPGAFloat, true
				}
				return t, false
			})
			return nil
		},
	}}
}

func hasLongDouble(u *cast.Unit) bool {
	found := false
	check := func(t ctypes.Type) {
		for t != nil {
			if f, ok := t.(ctypes.Float); ok && f.FK == ctypes.F80 {
				found = true
				return
			}
			switch x := t.(type) {
			case ctypes.Pointer:
				t = x.Elem
			case ctypes.Array:
				t = x.Elem
			case ctypes.Ref:
				t = x.Elem
			default:
				return
			}
		}
	}
	cast.Inspect(u, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.DeclStmt:
			check(x.Type)
		case *cast.VarDecl:
			check(x.Type)
		case *cast.Cast:
			check(x.To)
		case *cast.FuncDecl:
			check(x.Ret)
			for _, p := range x.Params {
				check(p.Type)
			}
		case *cast.StructDecl:
			for _, f := range x.Type.Fields {
				check(f.Type)
			}
		}
		return true
	})
	return found
}

// type_casting($v1:var): insert explicit casts on mixed fpga_float /
// integer arithmetic — implicit conversion is poorly supported in HLS
// (Figure 4b line 6). Depends on type_trans having introduced the custom
// float type.
func instTypeCasting(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	return []Edit{{
		Template: "type_casting",
		Class:    hls.ClassUnsupportedType,
		Target:   "mixed arithmetic",
		Note:     "explicit casts on fpga_float operands",
		Apply: func(u *cast.Unit) error {
			changed := 0
			eachFunction(u, func(fn *cast.FuncDecl) {
				rewriteExprsTyped(u, fn, func(env *typeEnv, e cast.Expr) cast.Expr {
					b, ok := e.(*cast.Binary)
					if !ok || !isArith(b.Op) {
						return e
					}
					lt, rt := env.typeOf(b.L), env.typeOf(b.R)
					lf := isFPGAFloat(lt)
					rf := isFPGAFloat(rt)
					if lf && !rf && rt != nil && ctypes.IsInteger(rt) {
						if _, already := b.R.(*cast.Cast); !already {
							b.R = &cast.Cast{P: b.P, To: ctypes.Resolve(lt), X: b.R}
							changed++
						}
					}
					if rf && !lf && lt != nil && ctypes.IsInteger(lt) {
						if _, already := b.L.(*cast.Cast); !already {
							b.L = &cast.Cast{P: b.P, To: ctypes.Resolve(rt), X: b.L}
							changed++
						}
					}
					return e
				})
			})
			if changed == 0 {
				return fmt.Errorf("type_casting: no mixed fpga_float arithmetic found")
			}
			return nil
		},
	}}
}

func isFPGAFloat(t ctypes.Type) bool {
	if t == nil {
		return false
	}
	_, ok := ctypes.Resolve(t).(ctypes.FPGAFloat)
	return ok
}

func isArith(op ctoken.Kind) bool {
	switch op {
	case ctoken.ADD, ctoken.SUB, ctoken.MUL, ctoken.QUO:
		return true
	}
	return false
}

// pointer_var($v1:ptr): remove a scalar pointer local by inlining it as a
// direct alias of its (array-element or variable) target. Handles the
// common "cursor" idiom:  int *p = &a[k]; ... *p ... p[i] ...
func instPointerVarRemoval(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	name := d.Subject
	if name == "" {
		return nil
	}
	return []Edit{{
		Template: "pointer_var",
		Class:    hls.ClassUnsupportedType,
		Target:   name,
		Note:     "inline pointer alias",
		Apply:    func(u *cast.Unit) error { return applyPointerVarRemoval(u, name) },
	}}
}

// applyPointerVarRemoval removes a local of pointer type initialized to
// &expr (or an array name) by substituting its uses.
func applyPointerVarRemoval(u *cast.Unit, name string) error {
	applied := false
	var applyErr error
	eachFunction(u, func(fn *cast.FuncDecl) {
		if applied || fn.Body == nil {
			return
		}
		// Locate the declaration at any block level.
		var target cast.Expr // the aliased lvalue expression
		var declBlock *cast.Block
		var declIdx int
		var find func(b *cast.Block) bool
		var findIn func(s cast.Stmt) bool
		findIn = func(s cast.Stmt) bool {
			switch x := s.(type) {
			case *cast.Block:
				return find(x)
			case *cast.For:
				return findIn(x.Body)
			case *cast.While:
				return findIn(x.Body)
			case *cast.If:
				if findIn(x.Then) {
					return true
				}
				return x.Else != nil && findIn(x.Else)
			}
			return false
		}
		find = func(b *cast.Block) bool {
			for i, s := range b.Stmts {
				if ds, ok := s.(*cast.DeclStmt); ok && ds.Name == name {
					if _, isPtr := ctypes.Resolve(ds.Type).(ctypes.Pointer); !isPtr {
						continue
					}
					switch init := ds.Init.(type) {
					case *cast.Unary:
						if init.Op == ctoken.AND {
							target = init.X
						}
					case *cast.Ident:
						target = &cast.Index{X: init, Idx: &cast.IntLit{Value: 0, Text: "0"}}
					}
					if target == nil {
						applyErr = fmt.Errorf("pointer_var: %q has no inlinable initializer", name)
						return true
					}
					declBlock, declIdx = b, i
					return true
				}
				if findIn(s) {
					return true
				}
			}
			return false
		}
		if !find(fn.Body) {
			return
		}
		if applyErr != nil || declBlock == nil {
			return
		}
		// Reject reassignment of the pointer itself.
		bad := false
		cast.Inspect(fn, func(n cast.Node) bool {
			if as, ok := n.(*cast.Assign); ok {
				if id, ok := as.L.(*cast.Ident); ok && id.Name == name {
					bad = true
				}
			}
			return true
		})
		if bad {
			applyErr = fmt.Errorf("pointer_var: %q is reassigned; cannot inline", name)
			return
		}
		// Substitute uses: *p -> target, p[i] -> (&target)[i] flattened to
		// index arithmetic when target is itself an index expression.
		rewriteExprsTyped(u, fn, func(env *typeEnv, e cast.Expr) cast.Expr {
			switch x := e.(type) {
			case *cast.Unary:
				if x.Op == ctoken.MUL {
					if id, ok := x.X.(*cast.Ident); ok && id.Name == name {
						return cast.CloneExpr(target)
					}
				}
			case *cast.Index:
				if id, ok := x.X.(*cast.Ident); ok && id.Name == name {
					if ti, ok := target.(*cast.Index); ok {
						return &cast.Index{P: x.P, X: cast.CloneExpr(ti.X),
							Idx: &cast.Binary{Op: ctoken.ADD,
								L: cast.CloneExpr(ti.Idx), R: x.Idx}}
					}
				}
			}
			return e
		})
		// The inlining is only sound if every use was rewritten: a bare
		// reference left behind (e.g. free(p)) would dangle once the
		// declaration is gone.
		remaining := 0
		cast.Inspect(fn, func(n cast.Node) bool {
			if d, ok := n.(*cast.DeclStmt); ok && d.Name == name {
				return false // the declaration itself
			}
			if id, ok := n.(*cast.Ident); ok && id.Name == name {
				remaining++
			}
			return true
		})
		if remaining > 0 {
			applyErr = fmt.Errorf("pointer_var: %d unrewritable uses of %q remain", remaining, name)
			return
		}
		declBlock.Stmts = append(declBlock.Stmts[:declIdx], declBlock.Stmts[declIdx+1:]...)
		applied = true
	})
	if applyErr != nil {
		return applyErr
	}
	if !applied {
		return fmt.Errorf("pointer_var: no inlinable pointer %q", name)
	}
	return nil
}
