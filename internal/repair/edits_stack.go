package repair

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
)

// stack_trans($d1:dyn): convert a self-recursive void function into an
// iterative state machine driven by an explicit context stack — the
// general form of the paper's Figure 2c (we emit a switch-based
// continuation dispatch instead of computed gotos, which is both valid C
// and synthesizable).
//
// Supported shape:
//
//   - the function returns void and only calls itself via top-level
//     statements of its body (guard ifs with early returns are fine);
//   - array parameters are passed through unchanged to recursive calls
//     (they become shared state rather than per-frame context);
//   - no return statement appears inside a loop or switch (a frame-exit
//     return compiles to a `break` out of the dispatch switch).
//
// The body is segmented at its recursive call statements. Each segment
// becomes one `case` of the dispatch; a recursive call pushes the current
// frame's continuation and then the callee frame.
func instStackTrans(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	name := d.Subject
	fn := u.Func(name)
	if fn == nil || fn.Body == nil {
		return nil
	}
	size := st.Sizes["stack:"+name]
	if size == 0 {
		size = initialStackSize
	}
	key := "stack:" + name
	return []Edit{{
		Template: "stack_trans",
		Class:    hls.ClassDynamicData,
		Target:   name,
		Note:     fmt.Sprintf("stack size=%d", size),
		Apply:    func(u *cast.Unit) error { return applyStackTrans(u, name, size) },
		OnAccept: func(s *State) { s.Sizes[key] = size },
	}}
}

func applyStackTrans(u *cast.Unit, name string, size int) error {
	fn := u.Func(name)
	if fn == nil || fn.Body == nil {
		return fmt.Errorf("stack_trans: function %q not found", name)
	}
	if _, isVoid := ctypes.Resolve(fn.Ret).(ctypes.Void); !isVoid {
		return fmt.Errorf("stack_trans: %q returns a value; only void recursion is supported", name)
	}

	// Segment the body at top-level self-call statements.
	var segments [][]cast.Stmt
	var calls []*cast.Call
	current := []cast.Stmt{}
	topLevelCalls := 0
	for _, s := range fn.Body.Stmts {
		if es, ok := s.(*cast.ExprStmt); ok {
			if c, ok := es.X.(*cast.Call); ok {
				if id, ok := c.Fun.(*cast.Ident); ok && id.Name == name {
					segments = append(segments, current)
					calls = append(calls, c)
					current = []cast.Stmt{}
					topLevelCalls++
					continue
				}
			}
		}
		current = append(current, s)
	}
	segments = append(segments, current)
	if topLevelCalls == 0 {
		return fmt.Errorf("stack_trans: %q has no top-level recursive call", name)
	}
	if total := len(cast.CallsTo(fn, name)); total != topLevelCalls {
		return fmt.Errorf("stack_trans: %q has nested recursive calls (%d of %d are top-level)",
			name, topLevelCalls, total)
	}
	for _, seg := range segments {
		for _, s := range seg {
			if returnInsideLoop(s, false) {
				return fmt.Errorf("stack_trans: %q returns from inside a loop", name)
			}
		}
	}

	// Split parameters: scalars go into the frame context; arrays and
	// pointers-to-arrays are shared state and must be passed through
	// unchanged in every recursive call.
	var ctxParams []cast.Param
	shared := map[string]bool{}
	for _, p := range fn.Params {
		switch ctypes.Resolve(p.Type).(type) {
		case ctypes.Array, ctypes.Pointer, ctypes.Ref, ctypes.Stream:
			shared[p.Name] = true
		default:
			ctxParams = append(ctxParams, p)
		}
	}
	for _, c := range calls {
		ai := 0
		for _, p := range fn.Params {
			if ai >= len(c.Args) {
				return fmt.Errorf("stack_trans: arity mismatch in recursive call of %q", name)
			}
			if shared[p.Name] {
				id, ok := c.Args[ai].(*cast.Ident)
				if !ok || id.Name != p.Name {
					return fmt.Errorf("stack_trans: array parameter %q is not passed through unchanged", p.Name)
				}
			}
			ai++
		}
	}

	// Top-level locals that are live across segments join the context and
	// their declarations become plain assignments. Locals referenced by a
	// single segment stay local declarations (arrays like a merge buffer
	// must stay local — they cannot live in the frame context).
	var ctxLocals []cast.Param
	for si, seg := range segments {
		for sj, s := range seg {
			ds, ok := s.(*cast.DeclStmt)
			if !ok {
				continue
			}
			// Cross-segment iff referenced by this segment's recursive
			// call or anywhere after this segment.
			crossSegment := (si < len(calls) && usedByCall(calls[si], ds.Name)) ||
				usedAfter(segments, calls, si, ds.Name)
			if !crossSegment {
				continue // stays a local declaration inside its case body
			}
			switch ctypes.Resolve(ds.Type).(type) {
			case ctypes.Int, ctypes.FPGAInt, ctypes.Float, ctypes.FPGAFloat, ctypes.Bool:
				ctxLocals = append(ctxLocals, cast.Param{Name: ds.Name, Type: ds.Type})
				if ds.Init != nil {
					segments[si][sj] = &cast.ExprStmt{P: ds.P, X: &cast.Assign{
						P: ds.P, Op: ctoken.ASSIGN,
						L: &cast.Ident{P: ds.P, Name: ds.Name}, R: ds.Init}}
				} else {
					segments[si][sj] = &cast.Block{P: ds.P}
				}
			default:
				return fmt.Errorf("stack_trans: non-scalar local %q of %q is live across recursive calls", ds.Name, name)
			}
		}
	}

	// Build the context struct:  struct f_ctx { scalars...; int loc; };
	ctxTag := name + "_ctx"
	stackName := name + "_stack"
	topName := name + "_top"
	ctxStruct := &ctypes.Struct{Tag: ctxTag}
	for _, p := range ctxParams {
		ctxStruct.Fields = append(ctxStruct.Fields, ctypes.Field{Name: p.Name, Type: p.Type})
	}
	for _, l := range ctxLocals {
		ctxStruct.Fields = append(ctxStruct.Fields, ctypes.Field{Name: l.Name, Type: l.Type})
	}
	ctxStruct.Fields = append(ctxStruct.Fields, ctypes.Field{Name: "loc", Type: ctypes.IntT})
	u.Structs[ctxTag] = ctxStruct

	ident := func(n string) *cast.Ident { return &cast.Ident{Name: n} }
	intLit := func(v int) *cast.IntLit { return &cast.IntLit{Value: int64(v), Text: fmt.Sprintf("%d", v)} }
	assign := func(l, r cast.Expr) cast.Stmt {
		return &cast.ExprStmt{X: &cast.Assign{Op: ctoken.ASSIGN, L: l, R: r}}
	}
	topSlot := func(field string) cast.Expr {
		return &cast.Member{X: &cast.Index{X: ident(stackName), Idx: ident(topName)}, Field: field}
	}
	incTop := assign(ident(topName), &cast.Binary{Op: ctoken.ADD, L: ident(topName), R: intLit(1)})
	decTop := assign(ident(topName), &cast.Binary{Op: ctoken.SUB, L: ident(topName), R: intLit(1)})

	// pushFrame emits "stack[top].<f> = <val>...; stack[top].loc = loc; top++".
	pushFrame := func(fields map[string]cast.Expr, loc int) []cast.Stmt {
		var out []cast.Stmt
		for _, f := range ctxStruct.Fields {
			if f.Name == "loc" {
				continue
			}
			if v, ok := fields[f.Name]; ok {
				out = append(out, assign(topSlot(f.Name), v))
			}
		}
		out = append(out, assign(topSlot("loc"), intLit(loc)))
		out = append(out, incTop)
		return out
	}

	// Dispatch cases. Each non-final segment ends by pushing its
	// continuation (all context vars written back) then the callee frame.
	var cases []*cast.SwitchCase
	for si, seg := range segments {
		body := make([]cast.Stmt, 0, len(seg)+8)
		for _, s := range seg {
			body = append(body, replaceReturnsWithBreak(s))
		}
		if si < len(calls) {
			// Continuation: copy every context variable back.
			cont := map[string]cast.Expr{}
			for _, f := range ctxStruct.Fields {
				if f.Name != "loc" {
					cont[f.Name] = ident(f.Name)
				}
			}
			body = append(body, pushFrame(cont, si+1)...)
			// Callee frame: bind scalar parameters to the call arguments.
			callee := map[string]cast.Expr{}
			ai := 0
			for _, p := range fn.Params {
				if !shared[p.Name] {
					callee[p.Name] = calls[si].Args[ai]
				}
				ai++
			}
			body = append(body, pushFrame(callee, 0)...)
		}
		body = append(body, &cast.Break{})
		cases = append(cases, &cast.SwitchCase{Value: intLit(si), Body: body})
	}

	// While-loop driver.
	loopBody := []cast.Stmt{decTop}
	// Load the frame into plain locals named like the original variables.
	for _, f := range ctxStruct.Fields {
		if f.Name == "loc" {
			continue
		}
		loopBody = append(loopBody, &cast.DeclStmt{Name: f.Name, Type: f.Type,
			Init: &cast.Member{X: &cast.Index{X: ident(stackName), Idx: ident(topName)}, Field: f.Name}})
	}
	dispatch := &cast.Switch{
		X:        &cast.Member{X: &cast.Index{X: ident(stackName), Idx: ident(topName)}, Field: "loc"},
		BranchID: -1, Cases: cases,
	}
	loopBody = append(loopBody, dispatch)

	newBody := []cast.Stmt{assign(ident(topName), intLit(0))}
	initFields := map[string]cast.Expr{}
	for _, p := range ctxParams {
		initFields[p.Name] = ident(p.Name)
	}
	newBody = append(newBody, pushFrame(initFields, 0)...)
	newBody = append(newBody, &cast.While{
		Cond:     &cast.Binary{Op: ctoken.GTR, L: ident(topName), R: intLit(0)},
		Body:     &cast.Block{Stmts: loopBody},
		BranchID: -1,
	})

	// Install: context struct + stack globals before the function, new body.
	sdecl := &cast.StructDecl{Type: ctxStruct}
	stackVar := &cast.VarDecl{Name: stackName, Type: ctypes.Array{Elem: ctxStruct, Len: size}}
	topVar := &cast.VarDecl{Name: topName, Type: ctypes.IntT}
	u.InsertDeclBefore(sdecl, fn)
	u.InsertDeclBefore(stackVar, fn)
	u.InsertDeclBefore(topVar, fn)
	fn.Body = &cast.Block{Stmts: newBody}

	cast.NumberBranches(u)
	return nil
}

// usedByCall reports whether the call's arguments reference name.
func usedByCall(c *cast.Call, name string) bool {
	used := false
	for _, a := range c.Args {
		cast.Inspect(a, func(n cast.Node) bool {
			if id, ok := n.(*cast.Ident); ok && id.Name == name {
				used = true
			}
			return true
		})
	}
	return used
}

// usedAfter reports whether name is referenced by any segment (or call)
// after index si.
func usedAfter(segments [][]cast.Stmt, calls []*cast.Call, si int, name string) bool {
	check := func(n cast.Node) bool {
		found := false
		cast.Inspect(n, func(m cast.Node) bool {
			if id, ok := m.(*cast.Ident); ok && id.Name == name {
				found = true
			}
			return true
		})
		return found
	}
	for k := si + 1; k < len(segments); k++ {
		for _, s := range segments[k] {
			if check(s) {
				return true
			}
		}
	}
	for k := si + 1; k < len(calls); k++ {
		if usedByCall(calls[k], name) {
			return true
		}
	}
	return false
}

// replaceReturnsWithBreak maps frame-exit returns to switch breaks (valid
// because stack_trans rejects returns nested in loops/switches).
func replaceReturnsWithBreak(s cast.Stmt) cast.Stmt {
	switch x := s.(type) {
	case *cast.Return:
		return &cast.Break{P: x.P}
	case *cast.Block:
		out := &cast.Block{P: x.P, Stmts: make([]cast.Stmt, len(x.Stmts))}
		for i, st := range x.Stmts {
			out.Stmts[i] = replaceReturnsWithBreak(st)
		}
		return out
	case *cast.If:
		return &cast.If{P: x.P, Cond: x.Cond, BranchID: x.BranchID,
			Then: replaceReturnsWithBreak(x.Then),
			Else: replaceReturnsWithBreak(x.Else)}
	}
	return s
}

// returnInsideLoop reports whether any return statement is nested inside
// a loop or switch under s.
func returnInsideLoop(s cast.Stmt, inLoop bool) bool {
	switch x := s.(type) {
	case nil:
		return false
	case *cast.Return:
		return inLoop
	case *cast.Block:
		for _, st := range x.Stmts {
			if returnInsideLoop(st, inLoop) {
				return true
			}
		}
	case *cast.If:
		return returnInsideLoop(x.Then, inLoop) || returnInsideLoop(x.Else, inLoop)
	case *cast.For:
		return returnInsideLoop(x.Body, true)
	case *cast.While:
		return returnInsideLoop(x.Body, true)
	case *cast.Switch:
		for _, c := range x.Cases {
			for _, st := range c.Body {
				if returnInsideLoop(st, true) {
					return true
				}
			}
		}
	}
	return false
}
