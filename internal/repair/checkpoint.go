// Durable checkpointing for the repair search.
//
// The search is deterministic by contract: for a fixed (options,
// program, tests) triple, candidates are enumerated in a fixed order
// and every piece of accounting — virtual clock, counters, Pareto
// archive, trace events — commits on the search goroutine in that
// order. That makes crash recovery cheap and byte-exact without
// serializing any live search state: a checkpoint is just the
// commit-ordered log of evaluated outcomes. A resumed search re-runs
// the same enumeration from zero and, for every commit index the log
// already covers, replays the stored outcome instead of recomputing
// it. All commit-time logic (budget checks, cost charging, the
// accept-first-improvement rule, Pareto consideration, event emission)
// executes again identically, so the resumed run's Result, Stats, and
// trace are byte-identical to an uninterrupted run's — the same
// argument that makes Workers, FastEval, and cache temperature
// invisible.
//
// The file is append-only JSONL, crash-tolerant like evalcache's
// persistent tier: a header line binds the log to a fingerprint of
// every determinism-relevant input (a mismatched header discards the
// file), then one line for the initial evaluation and one per
// committed candidate. A truncated or corrupt tail is dropped and the
// file is rewritten to its valid prefix on open. Workers and FastEval
// are deliberately excluded from the fingerprint: both are
// parity-proven to leave results and traces byte-identical, so a
// search may resume under a different worker count or evaluation path
// than the one that wrote the log.
package repair

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/crashpoint"
	"github.com/hetero/heterogen/internal/difftest"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/sim"
)

// ckptVersion is the on-disk format version; it joins the key
// fingerprint, so any format change invalidates old logs wholesale.
const ckptVersion = 1

// ckptSyncEvery bounds how many appended records may be buffered in
// the OS page cache before an fsync. Appends always flush to the
// kernel per record (surviving a process kill); the periodic fsync
// bounds loss to power failure.
const ckptSyncEvery = 8

// savedTargetFit is targetFit's serialized form (its fields are
// unexported to the package API).
type savedTargetFit struct {
	Errors    int      `json:"errors"`
	Fits      bool     `json:"fits"`
	Over      []string `json:"over"`
	LatencyMS float64  `json:"latency_ms"`
}

// savedScore is score's serialized form. Slice fields carry no
// omitempty so nil-ness round-trips exactly (null ↔ nil, [] ↔ empty):
// a replayed score must be indistinguishable from a computed one under
// reflect.DeepEqual, not just semantically equal.
type savedScore struct {
	Errors     int              `json:"errors"`
	BehaviorOK bool             `json:"behavior_ok"`
	PassRatio  float64          `json:"pass_ratio"`
	LatencyMS  float64          `json:"latency_ms"`
	Diags      []hls.Diagnostic `json:"diags"`
	Report     difftest.Report  `json:"report"`
	PerTarget  []savedTargetFit `json:"per_target"`
	Res        sim.Resources    `json:"res"`
	ResOK      bool             `json:"res_ok"`
}

func saveScore(sc score) savedScore {
	out := savedScore{
		Errors:     sc.errors,
		BehaviorOK: sc.behaviorOK,
		PassRatio:  sc.passRatio,
		LatencyMS:  sc.latencyMS,
		Diags:      sc.diags,
		Report:     sc.report,
		Res:        sc.res,
		ResOK:      sc.resOK,
	}
	if sc.perTarget != nil {
		out.PerTarget = make([]savedTargetFit, len(sc.perTarget))
		for i, f := range sc.perTarget {
			out.PerTarget[i] = savedTargetFit{Errors: f.errors, Fits: f.fits, Over: f.over, LatencyMS: f.latencyMS}
		}
	}
	return out
}

func (ss savedScore) restore() score {
	sc := score{
		errors:     ss.Errors,
		behaviorOK: ss.BehaviorOK,
		passRatio:  ss.PassRatio,
		latencyMS:  ss.LatencyMS,
		diags:      ss.Diags,
		report:     ss.Report,
		res:        ss.Res,
		resOK:      ss.ResOK,
	}
	if ss.PerTarget != nil {
		sc.perTarget = make([]targetFit, len(ss.PerTarget))
		for i, f := range ss.PerTarget {
			sc.perTarget[i] = targetFit{errors: f.Errors, fits: f.Fits, over: f.Over, latencyMS: f.LatencyMS}
		}
	}
	return sc
}

// savedOutcome is evalOutcome's serialized form (the initial
// evaluation reuses it with only the score-path fields set).
type savedOutcome struct {
	StyleRan  bool                `json:"style_ran,omitempty"`
	StyleOK   bool                `json:"style_ok,omitempty"`
	Evaluated bool                `json:"evaluated,omitempty"`
	Lines     int                 `json:"lines,omitempty"`
	SimRan    bool                `json:"sim_ran,omitempty"`
	Score     savedScore          `json:"score"`
	Failure   *guard.StageFailure `json:"failure,omitempty"`
}

func saveOutcome(o evalOutcome) savedOutcome {
	return savedOutcome{
		StyleRan:  o.styleRan,
		StyleOK:   o.styleOK,
		Evaluated: o.evaluated,
		Lines:     o.lines,
		SimRan:    o.simRan,
		Score:     saveScore(o.sc),
		Failure:   o.failure,
	}
}

func (so savedOutcome) restore() evalOutcome {
	return evalOutcome{
		computed:  true,
		styleRan:  so.StyleRan,
		styleOK:   so.StyleOK,
		evaluated: so.Evaluated,
		lines:     so.Lines,
		simRan:    so.SimRan,
		sc:        so.Score.restore(),
		failure:   so.Failure,
	}
}

// ckptLine is one JSONL line; T selects the kind.
type ckptLine struct {
	T string `json:"t"` // "hdr" | "init" | "cand"
	// Header fields.
	V   int    `json:"v,omitempty"`
	Key string `json:"key,omitempty"`
	// Candidate fields (init lines carry only O).
	I   int           `json:"i"`
	Sig string        `json:"sig,omitempty"`
	O   *savedOutcome `json:"o,omitempty"`
}

// candSig fingerprints one candidate's identity for replay matching.
// Describe() is the candidate's canonical edit description — the same
// key perfStep's dedupe uses — so a signature mismatch means the
// resumed enumeration diverged and the log tail is stale.
func candSig(c Candidate) string {
	return evalcache.Fingerprint("cand", c.Describe())[:16]
}

// checkpointKey fingerprints every input the enumeration and the
// outcomes depend on. Workers, FastEval, Cache, and EvalDelay are
// excluded on purpose: all are parity-proven byte-identical.
func checkpointKey(opts Options, original, initial *cast.Unit, kernel string, tests []fuzz.TestCase) string {
	classes := make([]string, 0, len(opts.ClassFilter))
	for c, ok := range opts.ClassFilter {
		if ok {
			classes = append(classes, c.String())
		}
	}
	sort.Strings(classes)
	targets := make([]string, len(opts.Targets))
	for i, t := range opts.Targets {
		targets[i] = t.String()
	}
	return evalcache.Fingerprint(
		fmt.Sprintf("repair-ckpt-v%d", ckptVersion),
		fmt.Sprintf("budget=%v style=%t dep=%t perf=%t seed=%d maxiter=%d isteps=%d",
			opts.Budget, opts.UseStyleChecker, opts.UseDependence, opts.PerfExploration,
			opts.Seed, opts.MaxIterations, opts.InterpSteps),
		fmt.Sprintf("device=%+v", opts.Device),
		strings.Join(classes, ","),
		strings.Join(targets, ","),
		kernel,
		cast.Print(original),
		cast.Print(initial),
		fuzz.CorpusFingerprint(tests),
	)
}

// checkpoint is the open commit log. All methods are nil-safe (a nil
// checkpoint is "checkpointing off") and are called only from the
// search goroutine.
type checkpoint struct {
	path string
	key  string

	init    *savedOutcome
	records []ckptLine // cand lines, records[k] covers commit index k

	f        *os.File
	w        *bufio.Writer
	appended int // records durable in the file (suffix of records is in-memory-only on failure)
	unsynced int
	broken   bool // a write failed: stop persisting, keep searching
}

// openCheckpoint loads (or creates) the log at path for the given key.
// A header mismatch, corrupt tail, or out-of-order record drops the
// invalid suffix (or the whole file) and rewrites the valid prefix, so
// the append handle always extends a well-formed log.
func openCheckpoint(path, key string) (*checkpoint, error) {
	c := &checkpoint{path: path, key: key}
	data, err := os.ReadFile(path)
	valid := false // file exists and holds exactly header + valid prefix
	if err == nil {
		valid = c.parse(data)
	}
	if valid {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		c.f, c.w = f, bufio.NewWriter(f)
		c.appended = len(c.records)
		return c, nil
	}
	// Fresh file (or salvage rewrite of the valid prefix).
	if err := c.rewrite(); err != nil {
		return nil, err
	}
	return c, nil
}

// parse loads header + init + candidate records from data, keeping the
// longest valid prefix. Returns true when the whole file was valid
// (nothing needs rewriting).
func (c *checkpoint) parse(data []byte) bool {
	lines := strings.Split(string(data), "\n")
	sawHdr := false
	clean := true
	for _, raw := range lines {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		var l ckptLine
		if json.Unmarshal([]byte(raw), &l) != nil {
			clean = false
			break
		}
		switch {
		case !sawHdr:
			if l.T != "hdr" || l.V != ckptVersion || l.Key != c.key {
				return false // foreign or stale log: discard wholesale
			}
			sawHdr = true
		case l.T == "init" && c.init == nil && len(c.records) == 0 && l.O != nil:
			c.init = l.O
		case l.T == "cand" && l.O != nil && l.I == len(c.records) && l.Sig != "":
			c.records = append(c.records, l)
		default:
			clean = false
		}
		if !clean {
			break
		}
	}
	return sawHdr && clean
}

// rewrite atomically replaces the file with header + valid prefix and
// reopens it for append.
func (c *checkpoint) rewrite() error {
	if c.f != nil {
		_ = c.f.Close()
		c.f, c.w = nil, nil
	}
	tmp := c.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	writeLine := func(l ckptLine) {
		b, _ := json.Marshal(l)
		w.Write(b)
		w.WriteByte('\n')
	}
	writeLine(ckptLine{T: "hdr", V: ckptVersion, Key: c.key})
	if c.init != nil {
		writeLine(ckptLine{T: "init", O: c.init})
	}
	for _, r := range c.records {
		writeLine(r)
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, c.path); err != nil {
		return err
	}
	af, err := os.OpenFile(c.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	c.f, c.w = af, bufio.NewWriter(af)
	c.appended = len(c.records)
	c.unsynced = 0
	return nil
}

// replayInit returns the stored initial evaluation, if any.
func (c *checkpoint) replayInit() (evalOutcome, bool) {
	if c == nil || c.init == nil {
		return evalOutcome{}, false
	}
	return c.init.restore(), true
}

// recordInit persists the initial evaluation (no-op when already
// stored — a replayed init is never re-recorded).
func (c *checkpoint) recordInit(o evalOutcome) {
	if c == nil || c.broken || c.init != nil {
		return
	}
	so := saveOutcome(o)
	c.init = &so
	c.appendLine(ckptLine{T: "init", O: &so})
}

// has reports whether commit index i will replay for cand — a pure
// peek used to avoid scheduling speculative work the commit loop will
// discard.
func (c *checkpoint) has(i int, cand Candidate) bool {
	return c != nil && i < len(c.records) && c.records[i].Sig == candSig(cand)
}

// replay returns the stored outcome for commit index i when the log
// covers it and the candidate signature matches. A mismatch means the
// tail is stale: it is dropped (and the file rewritten to the valid
// prefix) so the search recomputes from here on.
func (c *checkpoint) replay(i int, cand Candidate) (evalOutcome, bool) {
	if c == nil || i >= len(c.records) {
		return evalOutcome{}, false
	}
	r := c.records[i]
	if r.Sig != candSig(cand) {
		c.records = c.records[:i]
		if err := c.rewrite(); err != nil {
			c.broken = true
		}
		return evalOutcome{}, false
	}
	if r.O == nil {
		return evalOutcome{}, false
	}
	return r.O.restore(), true
}

// record persists commit index i's outcome. Indices at or below the
// durable high-water mark are already stored (replayed) and skipped.
func (c *checkpoint) record(i int, cand Candidate, o evalOutcome) {
	if c == nil || c.broken || i < len(c.records) {
		return
	}
	if i != len(c.records) {
		// A gap can only mean a bookkeeping bug; refuse to persist a log
		// that would replay out of order.
		c.broken = true
		return
	}
	so := saveOutcome(o)
	l := ckptLine{T: "cand", I: i, Sig: candSig(cand), O: &so}
	c.records = append(c.records, l)
	c.appendLine(l)
}

// appendLine writes one line to the log, flushing to the kernel per
// record and fsyncing every ckptSyncEvery records. Write failures
// degrade the checkpoint to in-memory-only: the search continues, it
// just stops persisting.
func (c *checkpoint) appendLine(l ckptLine) {
	if c.broken || c.w == nil {
		return
	}
	b, err := json.Marshal(l)
	if err != nil {
		c.broken = true
		return
	}
	if crashpoint.Hit("repair.checkpoint.append") {
		// Torn append: half a line reaches the disk, then the process
		// dies. The loader must drop it and resume from the prefix.
		_, _ = c.w.Write(b[:len(b)/2])
		_ = c.w.Flush()
		_ = c.f.Sync()
		crashpoint.Kill()
	}
	if _, err := c.w.Write(append(b, '\n')); err != nil {
		c.broken = true
		return
	}
	if err := c.w.Flush(); err != nil {
		c.broken = true
		return
	}
	c.appended++
	c.unsynced++
	if c.unsynced >= ckptSyncEvery {
		if err := c.f.Sync(); err != nil {
			c.broken = true
			return
		}
		c.unsynced = 0
	}
}

// close flushes, fsyncs, and releases the file handle.
func (c *checkpoint) close() {
	if c == nil || c.f == nil {
		return
	}
	if c.w != nil {
		_ = c.w.Flush()
	}
	_ = c.f.Sync()
	_ = c.f.Close()
	c.f, c.w = nil, nil
}
