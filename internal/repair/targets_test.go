package repair

import (
	"reflect"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/hls"
)

// The target-set determinism suite: multi-target mode must inherit
// every determinism contract the legacy search ships with — explicit
// single default target is byte-identical to no target at all, results
// and traces are Workers-invariant, and the cache changes wall-clock
// only. These are the parity halves of the api_redesign acceptance.

func mustTargets(t *testing.T, specs ...string) []hls.Target {
	t.Helper()
	targets, err := hls.ParseTargets(specs)
	if err != nil {
		t.Fatal(err)
	}
	return targets
}

// paritySubjects mirrors TestParallelSearchDeterminism's coverage:
// a fast subset under -short, all ten evaluation subjects otherwise.
func paritySubjects() []string {
	if testing.Short() {
		return []string{"P1", "P2", "P3", "P6"}
	}
	return []string{"P1", "P2", "P3", "P4", "P5", "P6", "P7", "P8", "P9", "P10"}
}

// TestSingleDefaultTargetParity: spelling out Options.Targets =
// [default target] is the same search as leaving Targets empty — same
// accepted edits, same Stats down to the virtual clock, byte-identical
// trace. The only additions are the verdict table and Pareto fields.
func TestSingleDefaultTargetParity(t *testing.T) {
	for _, id := range paritySubjects() {
		t.Run(id, func(t *testing.T) {
			orig, initial, kernel, tests := subjectInputs(t, id)

			legacy, legacyTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, DefaultOptions())

			opts := DefaultOptions()
			opts.Targets = []hls.Target{hls.DefaultTarget()}
			targeted, targetedTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)

			assertIdentical(t, id, legacy, targeted)
			assertTracesIdentical(t, id, legacyTrace, targetedTrace)
			if len(legacy.PerTarget) != 0 {
				t.Errorf("legacy search grew a verdict table: %+v", legacy.PerTarget)
			}
			if len(targeted.PerTarget) != 1 {
				t.Fatalf("targeted search has %d verdicts, want 1", len(targeted.PerTarget))
			}
			v := targeted.PerTarget[0]
			if v.Target != hls.DefaultTarget().String() {
				t.Errorf("verdict target = %q, want the default target", v.Target)
			}
			if v.Compatible != targeted.Compatible || v.BehaviorOK != targeted.BehaviorOK {
				t.Errorf("verdict %+v disagrees with the scalar result %v/%v",
					v, targeted.Compatible, targeted.BehaviorOK)
			}
		})
	}
}

// TestMultiTargetWorkersParity extends the Workers determinism
// contract to multi-target mode: result, verdict table, Pareto set,
// and trace are all bit-identical for any worker count.
func TestMultiTargetWorkersParity(t *testing.T) {
	targets := mustTargets(t, "vivado_hls:xcvu9p", "vivado_hls:zc706", "vitis:aws_f1")
	for _, id := range paritySubjects() {
		t.Run(id, func(t *testing.T) {
			orig, initial, kernel, tests := subjectInputs(t, id)

			seqOpts := DefaultOptions()
			seqOpts.Targets = targets
			seq, seqTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, seqOpts)

			parOpts := DefaultOptions()
			parOpts.Targets = targets
			parOpts.Workers = 4
			par, parTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, parOpts)

			assertIdentical(t, id, seq, par)
			assertTracesIdentical(t, id, seqTrace, parTrace)
			if !reflect.DeepEqual(seq.PerTarget, par.PerTarget) {
				t.Errorf("verdict tables diverge:\n  seq: %+v\n  par: %+v", seq.PerTarget, par.PerTarget)
			}
			if !reflect.DeepEqual(seq.Pareto, par.Pareto) {
				t.Errorf("pareto sets diverge: %d vs %d points", len(seq.Pareto), len(par.Pareto))
			}
		})
	}
}

// TestMultiTargetCacheParity: disabled, cold, and warm cache runs of
// the same multi-target search produce bit-identical results and
// traces — the cache can only change wall-clock, never a verdict.
func TestMultiTargetCacheParity(t *testing.T) {
	targets := mustTargets(t, "vivado_hls:xcvu9p", "vitis:aws_f1")
	for _, id := range paritySubjects() {
		t.Run(id, func(t *testing.T) {
			orig, initial, kernel, tests := subjectInputs(t, id)

			base := DefaultOptions()
			base.Targets = targets
			plain, plainTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, base)

			cache, err := evalcache.New(evalcache.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cached := base
			cached.Cache = cache
			cold, coldTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, cached)
			before := cache.Stats()
			warm, warmTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, cached)
			if cache.Stats().Sub(before).Hits() == 0 {
				t.Fatal("warm multi-target run never hit the cache")
			}

			assertIdentical(t, "cold", plain, cold)
			assertIdentical(t, "warm", plain, warm)
			assertTracesIdentical(t, "cold", plainTrace, coldTrace)
			assertTracesIdentical(t, "warm", plainTrace, warmTrace)
			if !reflect.DeepEqual(plain.PerTarget, cold.PerTarget) || !reflect.DeepEqual(plain.PerTarget, warm.PerTarget) {
				t.Error("verdict tables diverge across cache modes")
			}
			if !reflect.DeepEqual(plain.Pareto, cold.Pareto) || !reflect.DeepEqual(plain.Pareto, warm.Pareto) {
				t.Error("pareto sets diverge across cache modes")
			}
		})
	}
}
