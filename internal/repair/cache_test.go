package repair

import (
	"fmt"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/evalcache"
)

// TestSearchCacheParity is the repair-level half of the cache contract:
// running the same search twice against one shared cache must return a
// bit-identical Result (edit log, printed program, the whole Stats
// struct including the virtual clock) and a byte-identical trace, for
// both the sequential and the speculative search — and the second run
// must be served from the cache.
func TestSearchCacheParity(t *testing.T) {
	for _, id := range []string{"P2", "P6"} {
		orig, initial, kernel, tests := subjectInputs(t, id)
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", id, workers), func(t *testing.T) {
				opts := DefaultOptions()
				opts.Workers = workers
				base, baseTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)

				cache, err := evalcache.New(evalcache.Options{})
				if err != nil {
					t.Fatal(err)
				}
				opts.Cache = cache
				cold, coldTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)
				before := cache.Stats()
				warm, warmTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)

				assertIdentical(t, "cold", base, cold)
				assertIdentical(t, "warm", base, warm)
				assertTracesIdentical(t, "cold", baseTrace, coldTrace)
				assertTracesIdentical(t, "warm", baseTrace, warmTrace)
				if d := cache.Stats().Sub(before); d.Hits() == 0 {
					t.Errorf("second search never hit the shared cache: %s", d)
				}
			})
		}
	}
}
