package repair

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/cparser"
	"github.com/hetero/heterogen/internal/hls"
)

func TestRegisterTemplateValidation(t *testing.T) {
	defer ResetExtensions()
	if err := RegisterTemplate(Template{}); err == nil {
		t.Error("empty template must be rejected")
	}
	if err := RegisterTemplate(Template{ID: "constructor",
		Instantiate: func(*cast.Unit, hls.Diagnostic, *State) []Edit { return nil }}); err == nil {
		t.Error("collision with built-in must be rejected")
	}
	if err := RegisterTemplate(Template{ID: "custom1", Requires: []string{"nope"},
		Instantiate: func(*cast.Unit, hls.Diagnostic, *State) []Edit { return nil }}); err == nil {
		t.Error("unknown prerequisite must be rejected")
	}
	ok := Template{ID: "custom1", Class: hls.ClassLoopParallel,
		Instantiate: func(*cast.Unit, hls.Diagnostic, *State) []Edit { return nil }}
	if err := RegisterTemplate(ok); err != nil {
		t.Fatal(err)
	}
	if err := RegisterTemplate(ok); err == nil {
		t.Error("duplicate registration must be rejected")
	}
	if _, found := TemplateByID("custom1"); !found {
		t.Error("registered template not visible in registry")
	}
	UnregisterTemplate("custom1")
	if _, found := TemplateByID("custom1"); found {
		t.Error("unregister failed")
	}
}

func TestRegisterClassifierPrecedence(t *testing.T) {
	defer ResetExtensions()
	RegisterClassifier(func(msg string) hls.ErrorClass {
		if strings.Contains(msg, "FROBNICATION") {
			return hls.ClassTopFunction
		}
		return hls.ClassNone
	})
	if got := ClassifyMessage("FROBNICATION failed"); got != hls.ClassTopFunction {
		t.Errorf("extension classifier ignored: %s", got)
	}
	// Built-ins still work for everything else.
	if got := ClassifyMessage("recursive functions are not supported"); got != hls.ClassDynamicData {
		t.Errorf("built-in classifier broken: %s", got)
	}
}

// TestCustomTemplateParticipatesInSearch registers a template that fixes
// an error class no built-in handles the same way, and verifies the
// search uses it — the paper's "add a new repair localization module"
// scenario end to end.
func TestCustomTemplateParticipatesInSearch(t *testing.T) {
	defer ResetExtensions()

	// The "error": a design convention requiring kernels to carry an
	// interface pragma. We model it as a custom classifier + template
	// that adds the pragma when a (synthetic) diagnostic demands it.
	err := RegisterTemplate(Template{
		ID:    "iface_insert",
		Class: hls.ClassTopFunction,
		Instantiate: func(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
			fn := u.Func("kernel")
			if fn == nil {
				return nil
			}
			return []Edit{{
				Template: "iface_insert",
				Class:    hls.ClassTopFunction,
				Target:   "kernel",
				Apply: func(u *cast.Unit) error {
					fn := u.Func("kernel")
					fn.Pragmas = append(fn.Pragmas,
						&cast.Pragma{Text: "HLS interface mode=s_axilite"})
					return nil
				},
			}}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	u := cparser.MustParse(`int kernel(int x) { return x + 1; }`)
	d := hls.Diagnostic{Class: hls.ClassTopFunction, Subject: "kernel",
		Message: "missing interface pragma on the top function"}
	cands := CandidatesFor(u, d, NewState())
	found := false
	for _, c := range cands {
		if c.Edits[0].Template == "iface_insert" {
			found = true
			if !strings.Contains(cast.Print(c.Unit), "interface mode=s_axilite") {
				t.Error("custom edit did not apply")
			}
		}
	}
	if !found {
		t.Fatalf("custom template not instantiated; candidates: %v", cands)
	}
}

func TestDescribeRegistry(t *testing.T) {
	out := DescribeRegistry()
	for _, want := range []string{
		"Dynamic Data Structures", "stack_trans", "pointer (after insert)",
		"stream_static (after constructor)", "flatten (alternative to constructor)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("registry description missing %q:\n%s", want, out)
		}
	}
}
