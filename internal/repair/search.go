package repair

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/difftest"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/check"
	"github.com/hetero/heterogen/internal/hls/sim"
	"github.com/hetero/heterogen/internal/hls/stylecheck"
	"github.com/hetero/heterogen/internal/interp"
	"github.com/hetero/heterogen/internal/obs"
)

// Options configures the repair search.
type Options struct {
	// Budget is the virtual wall-clock limit in seconds (the paper uses a
	// three-hour limit; WithoutDependence gets twelve before it is
	// declared failed).
	Budget hls.VirtualCost
	// UseStyleChecker enables early rejection via the lightweight
	// frontend (§5.3). Disabling it is the WithoutChecker ablation.
	UseStyleChecker bool
	// UseDependence enables dependence-ordered chain enumeration.
	// Disabling it is the WithoutDependence ablation (random order).
	UseDependence bool
	// PerfExploration keeps searching for performance edits after all
	// compatibility errors are fixed.
	PerfExploration bool
	// Seed seeds all randomness in the search, so a run is bit-for-bit
	// reproducible for a given (options, program, tests) triple.
	//
	// The dependence-guided path consults no randomness at all: chains
	// are enumerated in registry order, so its results depend only on
	// the inputs. The WithoutDependence ablation draws its candidate
	// picks from a rand.Rand seeded here; all draws for one repair step
	// are made up front, so the portion of the stream consumed is a
	// function of the pool size alone, never of where the step stopped
	// (budget exhaustion, early acceptance). This keeps runs with
	// different Workers values — and reruns after behaviour-neutral
	// refactors of the step loop — on the same random sequence.
	Seed int64
	// Workers bounds how many candidate fitness evaluations may run
	// concurrently (§5.4's evaluation step dominates wall-clock; the
	// style check, full compatibility check, latency simulation, and
	// differential test of distinct candidates are independent).
	// 0 or 1 evaluates sequentially. Any value produces bit-identical
	// results for the same Seed: candidates keep their enumeration
	// order, the first improving candidate in that order is accepted,
	// and the virtual clock — which models a single toolchain license —
	// is committed in that same order, so accepted edits, final program,
	// and Stats do not depend on Workers.
	Workers int
	// EvalDelay adds a real-time pause to every full fitness evaluation,
	// emulating the blocking invocation of an external HLS toolchain
	// process (the deployment this engine is built for). It never
	// touches the virtual clock; benchmarks use it to measure how much
	// of that latency the worker pool can overlap.
	EvalDelay time.Duration
	// MaxIterations is a safety bound on accepted edits.
	MaxIterations int
	// ClassFilter, when non-nil, restricts the search to templates of the
	// allowed error classes — how the HeteroRefactor baseline's
	// dynamic-data-only scope is modelled.
	ClassFilter map[hls.ErrorClass]bool
	// Device, when set, gates candidates on fabric capacity: a candidate
	// whose resource estimate over-utilizes the device fails evaluation
	// like any other diagnostic (so the search backs off to cheaper
	// partition factors). Zero value disables the gate. Ignored when
	// Targets is set — each target's profile brings its own capacity.
	Device sim.Device
	// Targets, when non-empty, switches the search to multi-target mode:
	// candidate fitness becomes a per-device vector over the resolved
	// (backend, device) set (see targets.go), the capacity gate runs
	// against every profile, compile cost is charged per target, and the
	// result carries a per-device verdict table plus a latency/resource
	// Pareto archive. Targets[0] is the primary target: it provides the
	// toolchain config, the diagnostic dialect of Remaining, and the
	// cache salts. Empty keeps the legacy single-target behavior
	// byte-identical, and a single explicit default target produces the
	// same results and traces as the legacy path (given the design fits
	// the device, which legacy runs never checked — that silent skip is
	// the Config.Device bug this field fixes).
	Targets []hls.Target
	// Obs receives structured events — one per tried candidate, plus
	// init/done snapshots. Events are emitted on the search goroutine in
	// candidate enumeration order, so a trace is byte-identical for any
	// Workers value. Nil disables observation.
	Obs obs.Observer
	// Cache, when non-nil, memoizes the expensive per-candidate
	// verdicts on content-addressed fingerprints: the synthesizability
	// Report (keyed on config + printed candidate), the resource
	// estimate (printed candidate), and the differential-test outcome
	// (config + kernel + printed oracle + corpus hash + printed
	// candidate). A hit skips the recomputation and any EvalDelay
	// pause, but is charged exactly the same virtual toolchain cost in
	// the same commit order as a cold evaluation — the cost inputs
	// (line count, whether simulation ran) are deterministic — so
	// Result, Stats, and traces are byte-identical whether the cache is
	// disabled, cold, or warm, for any Workers value. Nil disables
	// memoization.
	Cache *evalcache.Cache
	// Guard contains stage failures: a candidate whose style check,
	// compatibility check, resource estimate, or differential test
	// panics (or overruns Guard's deadline) becomes a rejected candidate
	// with a recorded reason instead of crashing the search. A nil guard
	// still contains panics (guard.Do is nil-safe) but has no deadlines,
	// injection, or quarantine. Failure decisions are content-keyed, so
	// they are identical for any Workers value.
	Guard *guard.Guard
	// InterpSteps bounds each interpreter execution inside the
	// differential test (both CPU reference and FPGA simulation); 0
	// keeps package defaults. Exhaustion yields inconclusive(timeout)
	// verdicts, never behaviour mismatches.
	InterpSteps int64
	// FastEval enables the high-throughput candidate evaluation path:
	//
	//   - candidates whose edits declare a mutation Scope are built as
	//     structure-sharing clones (cast.CloneUnitScoped) instead of
	//     full deep clones, so construction costs O(edit);
	//   - the differential test runs through a per-search Runner that
	//     computes the CPU reference outcomes once and executes the
	//     FPGA side on direct-threaded compiled code shared across
	//     candidates (interp.Codebase, keyed by *cast.FuncDecl
	//     identity — shared declarations reuse compiled bodies);
	//   - cache keys derive from incremental content fingerprints
	//     (cast.Fingerprints) recombined per edit instead of printing
	//     the whole candidate.
	//
	// Results, Stats, and traces are byte-identical to the slow path
	// for any Workers value, cache temperature, and target set — the
	// compiled interpreter reproduces tree-walker behaviour exactly
	// (held to that by the differential belt in internal/interp), the
	// reference outcomes are deterministic, and fingerprint cache keys
	// are content-addressed just like printed-text keys. The zero value
	// keeps the pre-existing evaluation path untouched.
	FastEval bool
	// CheckpointPath, when non-empty, makes the search durable: every
	// committed candidate outcome is appended to a crash-tolerant JSONL
	// log at this path (see checkpoint.go), and a search started
	// against an existing log whose inputs match re-derives the
	// enumeration from zero while replaying the stored outcomes for the
	// already-committed prefix — skipping their expensive recomputation
	// but re-running every piece of commit-time accounting, so the
	// resumed Result, Stats, and trace are byte-identical to an
	// uninterrupted run's, for any Workers value, cache temperature,
	// and evaluation path. A log written under different inputs (seed,
	// budget, program, tests, targets, …) is discarded, never replayed.
	// Empty disables checkpointing and leaves every code path
	// byte-identical to before the feature existed.
	CheckpointPath string
}

// allows reports whether the options permit templates of class c.
func (o Options) allows(c hls.ErrorClass) bool {
	return o.ClassFilter == nil || o.ClassFilter[c]
}

// DefaultOptions is the full HeteroGen configuration.
func DefaultOptions() Options {
	return Options{
		Budget:          3 * 3600,
		UseStyleChecker: true,
		UseDependence:   true,
		PerfExploration: true,
		Seed:            1,
		MaxIterations:   64,
		Workers:         1,
		FastEval:        true,
	}
}

// Stats records search effort, in both attempts and virtual time.
type Stats struct {
	VirtualSeconds float64
	// SecondsToCompatible is the virtual time at which the search first
	// reached a compilable, behaviour-preserving version (0 when never) —
	// the repair-task wall-clock Figure 9 compares.
	SecondsToCompatible float64
	HLSInvocations      int // full compile+simulate invocations
	StyleChecks         int
	StyleRejections     int
	CandidatesTried     int
	// AcceptedCandidates / RejectedCandidates partition CandidatesTried
	// by the search decision (style rejections count as rejected and are
	// also broken out in StyleRejections). Both are committed in
	// enumeration order, so sequential and parallel runs agree.
	AcceptedCandidates int
	RejectedCandidates int
	Iterations         int
	// StageFailures counts candidates rejected because a toolchain stage
	// crashed or overran its budget (contained by Options.Guard). They
	// are included in RejectedCandidates.
	StageFailures int
	EditLog       []string
}

// VirtualMinutes converts the virtual time for reporting.
func (s Stats) VirtualMinutes() float64 { return s.VirtualSeconds / 60 }

// Result is the search outcome.
type Result struct {
	Unit *cast.Unit
	// Compatible reports zero HLS errors.
	Compatible bool
	// BehaviorOK reports that all tests agree with the original program.
	BehaviorOK bool
	// Improved reports simulated FPGA latency below the original CPU time.
	Improved bool
	// Report is the final differential-test report (when run).
	Report difftest.Report
	Stats  Stats
	// Remaining lists unfixed diagnostics when the search failed (in the
	// primary target's dialect when Targets was set).
	Remaining []hls.Diagnostic
	// PerTarget is the final program's per-device verdict table
	// (multi-target mode only; nil otherwise).
	PerTarget []TargetVerdict
	// Pareto is the latency/resource Pareto archive of every fully
	// evaluated, all-targets-compatible program the search committed, in
	// commit order (multi-target mode only; nil otherwise). The final
	// program is not necessarily a member: the scalar objective chases
	// the worst-target latency, while the archive keeps every
	// non-dominated trade-off.
	Pareto []ParetoPoint
}

// EditedLines counts the lines of the repaired program that do not appear
// in the original (a line-multiset difference) — the paper's ΔLOC metric.
// In-place retypings count (the line changed) as well as insertions.
// Callers rendering several ΔLOC figures against one original should use
// a LineCounter, which prints and splits the original once.
func EditedLines(original, repaired *cast.Unit) int {
	return NewLineCounter(original).EditedLines(repaired)
}

// LineCounter precomputes one program's line multiset so repeated ΔLOC
// renders against the same original do not re-print and re-split it per
// call. The base multiset is immutable after construction; EditedLines
// is safe for concurrent use.
type LineCounter struct {
	base map[string]int
}

// NewLineCounter prints the original once and indexes its lines.
func NewLineCounter(original *cast.Unit) *LineCounter {
	base := map[string]int{}
	for _, l := range strings.Split(cast.Print(original), "\n") {
		l = strings.TrimSpace(l)
		if l != "" {
			base[l]++
		}
	}
	return &LineCounter{base: base}
}

// EditedLines counts repaired lines absent from the original multiset.
func (c *LineCounter) EditedLines(repaired *cast.Unit) int {
	used := map[string]int{}
	delta := 0
	for _, l := range strings.Split(cast.Print(repaired), "\n") {
		l = strings.TrimSpace(l)
		if l == "" {
			continue
		}
		if used[l] < c.base[l] {
			used[l]++
			continue
		}
		delta++
	}
	return delta
}

// searcher carries the loop state.
type searcher struct {
	original *cast.Unit
	kernel   string
	cfg      hls.Config
	tests    []fuzz.TestCase
	opts     Options
	rng      *rand.Rand
	stats    Stats
	state    *State
	// obs is the normalized event sink; tracing gates payload
	// construction on the per-candidate hot path.
	obs     obs.Observer
	tracing bool
	// step labels emitted candidate events: "repair" or "perf".
	step string
	// pool, when non-nil, evaluates candidate batches concurrently.
	// All accounting still happens on the search goroutine, in
	// enumeration order (see parallel.go).
	pool *evalPool
	// triedPerf remembers performance candidates already evaluated and
	// rejected, so successive perfSteps do not pay repeated compilations
	// for the same configuration.
	triedPerf map[string]bool
	// ctx is checked at commit points: the search stops between
	// candidates (never mid-verdict) and returns its best-so-far state.
	ctx context.Context
	// cache memoizes check/sim/difftest verdicts; nil disables. The
	// salts fold in everything a verdict depends on besides the
	// candidate itself, computed once per search (see
	// internal/evalcache key derivation).
	cache     *evalcache.Cache
	checkSalt string
	diffSalt  string
	// targets is the resolved multi-target set (nil in legacy mode); the
	// Pareto archive and its dedupe set live on the search goroutine.
	targets    []resolvedTarget
	pareto     []paretoEntry
	paretoSeen map[string]bool
	// Fast-evaluation state (Options.FastEval; all nil otherwise):
	// code is the shared compiled-function cache, fps the per-search
	// fingerprint memo, runner the reference-caching differential
	// tester. All three are safe for concurrent worker use.
	code   *interp.Codebase
	fps    *cast.Fingerprints
	runner *difftest.Runner
	// ckpt is the durable commit log (Options.CheckpointPath; nil
	// otherwise) and commitIdx the global commit counter that indexes
	// it. Both live on the search goroutine only.
	ckpt      *checkpoint
	commitIdx int
}

// Search runs HeteroGen's iterative repair from the initial version
// (normally the bitwidth-profiled P_broken) against the original program
// as behaviour oracle.
func Search(original, initial *cast.Unit, kernel string, tests []fuzz.TestCase, opts Options) Result {
	return SearchContext(context.Background(), original, initial, kernel, tests, opts)
}

// SearchContext is Search with cooperative cancellation. The context
// is checked at commit points — between candidate evaluations and
// between iterations, never mid-verdict — so cancellation stops the
// search promptly and returns the best version found so far, exactly
// as a budget exhaustion would (nil error semantics: a partial repair
// is still a result; callers that must distinguish inspect ctx.Err).
func SearchContext(ctx context.Context, original, initial *cast.Unit, kernel string, tests []fuzz.TestCase, opts Options) Result {
	if opts.MaxIterations == 0 {
		opts.MaxIterations = 64
	}
	if opts.Budget == 0 {
		opts.Budget = 3 * 3600
	}
	var targets []resolvedTarget
	cfg := hls.DefaultConfig(kernel)
	if len(opts.Targets) > 0 {
		var err error
		targets, err = resolveAll(opts.Targets)
		if err != nil {
			// SearchContext has no error return; an unresolvable target
			// set surfaces as a configuration diagnostic (core validates
			// targets up front, so this path serves direct callers only).
			return Result{
				Unit: cast.CloneUnit(initial),
				Remaining: []hls.Diagnostic{{
					Code:    "CFG 100-1",
					Message: fmt.Sprintf("target resolution failed: %v", err),
				}},
			}
		}
		cfg = hls.ConfigFor(kernel, targets[0].profile)
	}
	cfg.InterpSteps = opts.InterpSteps
	s := &searcher{
		original:  original,
		kernel:    kernel,
		cfg:       cfg,
		tests:     tests,
		opts:      opts,
		rng:       rand.New(rand.NewSource(opts.Seed)),
		state:     NewState(),
		obs:       obs.OrNop(opts.Obs),
		tracing:   obs.Enabled(opts.Obs),
		triedPerf: map[string]bool{},
		ctx:       ctx,
		cache:     opts.Cache,
		targets:   targets,
	}
	if len(targets) > 0 {
		s.paretoSeen = map[string]bool{}
	}
	if opts.FastEval {
		s.code = interp.NewCodebase()
		s.fps = cast.NewFingerprints()
		s.runner = difftest.NewRunner(original, kernel, cfg, tests, s.code, s.fps)
		s.state.FastClone = true
	}
	if s.cache != nil {
		if len(targets) > 0 {
			// Per-target salts: the primary backend name joins the
			// fingerprint so verdicts for different toolchains (dialect
			// translation included) never collide across devices.
			be := targets[0].backend.Name()
			s.checkSalt = evalcache.TargetCheckSalt(be, s.cfg.Top, s.cfg.Device, s.cfg.ClockMHz)
			s.diffSalt = evalcache.TargetDifftestSalt(be, s.cfg.Top, s.cfg.Device, s.cfg.ClockMHz,
				s.cfg.InterpSteps, kernel, cast.Print(original), fuzz.CorpusFingerprint(tests))
		} else {
			s.checkSalt = evalcache.CheckSalt(s.cfg.Top, s.cfg.Device, s.cfg.ClockMHz)
			s.diffSalt = evalcache.DifftestSalt(s.cfg.Top, s.cfg.Device, s.cfg.ClockMHz,
				s.cfg.InterpSteps, kernel, cast.Print(original), fuzz.CorpusFingerprint(tests))
		}
	}
	s.state.TestCount = len(tests)
	if opts.CheckpointPath != "" {
		// An unopenable log degrades to checkpointing-off: durability is
		// an overlay, never a reason a search cannot run.
		if ck, err := openCheckpoint(opts.CheckpointPath, checkpointKey(opts, original, initial, kernel, tests)); err == nil {
			s.ckpt = ck
			defer ck.close()
		}
	}
	if opts.Workers > 1 {
		s.pool = newEvalPool(opts.Workers, float64(opts.Budget))
		defer s.pool.close()
	}

	cur := cast.CloneUnit(initial)
	curScore := s.evaluate(cur)

	for s.stats.VirtualSeconds < float64(opts.Budget) && s.stats.Iterations < opts.MaxIterations {
		if s.ctx.Err() != nil {
			break
		}
		s.stats.Iterations++

		if curScore.errors == 0 && curScore.behaviorOK {
			if s.stats.SecondsToCompatible == 0 {
				s.stats.SecondsToCompatible = s.stats.VirtualSeconds
			}
			if !opts.PerfExploration {
				break
			}
			// Performance phase: accept only strict latency improvements.
			improved := s.perfStep(&cur, &curScore)
			if !improved {
				break
			}
			continue
		}

		accepted := s.repairStep(&cur, &curScore)
		if !accepted {
			break // no candidate improves the current program
		}
	}

	if curScore.errors == 0 && curScore.behaviorOK && s.stats.SecondsToCompatible == 0 {
		s.stats.SecondsToCompatible = s.stats.VirtualSeconds
	}
	res := Result{
		Unit:       cur,
		Compatible: curScore.errors == 0,
		BehaviorOK: curScore.behaviorOK,
		Report:     curScore.report,
		Stats:      s.stats,
		Remaining:  curScore.diags,
	}
	if curScore.errors == 0 && curScore.behaviorOK {
		res.Improved = curScore.report.FPGAMeanMS() < curScore.report.CPUMeanMS()
	}
	if len(s.targets) > 0 {
		res.PerTarget = s.verdicts(curScore)
		res.Pareto = s.paretoPoints()
	}
	if s.tracing {
		de := &obs.DoneEvent{
			Attempts:            s.stats.CandidatesTried,
			Accepted:            s.stats.AcceptedCandidates,
			Rejected:            s.stats.RejectedCandidates,
			StyleChecks:         s.stats.StyleChecks,
			StyleRejections:     s.stats.StyleRejections,
			HLSInvocations:      s.stats.HLSInvocations,
			Iterations:          s.stats.Iterations,
			VirtualSeconds:      s.stats.VirtualSeconds,
			SecondsToCompatible: s.stats.SecondsToCompatible,
			EditLog:             append([]string(nil), s.stats.EditLog...),
			Compatible:          res.Compatible,
			BehaviorOK:          res.BehaviorOK,
			Improved:            res.Improved,
			StageFailures:       s.stats.StageFailures,
		}
		// The target set rides in the done event only when there is more
		// than one target: a single-target run is the same search with a
		// verdict table, and keeping its trace byte-identical to the
		// legacy path is the API-redesign parity contract.
		if len(s.targets) > 1 {
			de.Targets = s.targetNames()
			de.ParetoSize = len(s.pareto)
		}
		s.obs.Emit(obs.Event{Type: obs.EvRepairDone, Virtual: s.stats.VirtualSeconds, Done: de})
	}
	return res
}

// score is the lexicographic fitness of a program version. In
// multi-target mode the scalar fields aggregate the per-target vector:
// errors sum over targets and latencyMS is the slowest target.
type score struct {
	errors     int
	behaviorOK bool
	passRatio  float64
	latencyMS  float64
	diags      []hls.Diagnostic
	report     difftest.Report
	// perTarget is the fitness vector (multi-target mode only).
	perTarget []targetFit
	// res / resOK carry the resource estimate when one was computed
	// (multi-target mode), feeding utilization rows and the Pareto
	// archive.
	res   sim.Resources
	resOK bool
}

// better implements the unified objective: compatibility is the hard
// constraint (error count), behaviour preservation next, latency last.
func (a score) better(b score) bool {
	if a.errors != b.errors {
		return a.errors < b.errors
	}
	if a.errors > 0 {
		return false // same error count and still broken: no progress
	}
	if a.passRatio != b.passRatio {
		return a.passRatio > b.passRatio
	}
	if !a.behaviorOK || !b.behaviorOK {
		return false
	}
	return a.latencyMS < b.latencyMS-1e-12
}

// evalOutcome is the side-effect-free result of trying one candidate:
// what the style checker said and, when it passed, the full fitness.
// The deterministic cost inputs (printed line count, whether simulation
// ran) ride along so the accounting can be replayed on the search
// goroutine in enumeration order — see chargeOutcome.
type evalOutcome struct {
	// computed is false when a speculative worker skipped the job
	// (shared virtual budget already exhausted); the commit loop never
	// reaches such a candidate, but recomputes inline if it somehow
	// does.
	computed bool
	// styleRan reports the style checker was consulted (UseStyleChecker).
	styleRan bool
	styleOK  bool
	// evaluated reports the full compile+test evaluation ran.
	evaluated bool
	// lines is the candidate's printed line count (compile-cost input).
	lines int
	// simRan reports the design compiled cleanly and fit the device, so
	// the per-test simulation cost applies.
	simRan bool
	sc     score
	// failure, when non-nil, records a contained stage failure: the
	// candidate never produced a verdict and is rejected with this
	// reason. The score fields are meaningless when set.
	failure *guard.StageFailure
}

// computeOutcome runs the style check and (when it passes) the full
// fitness evaluation of u without touching any searcher state. It is
// safe to call from multiple goroutines concurrently: it reads only the
// immutable search inputs (original program, tests, config) and the
// candidate's own clone.
func (s *searcher) computeOutcome(u *cast.Unit) evalOutcome {
	out := evalOutcome{computed: true}
	if s.opts.UseStyleChecker {
		out.styleRan = true
		ok, err := guard.Do(s.opts.Guard, guard.Invocation{Stage: guard.StageStyle, Unit: u},
			func(cu *cast.Unit) (bool, error) {
				return stylecheck.Run(cu, s.cfg).OK, nil
			})
		if out.failure = guard.AsFailure(err); out.failure != nil {
			return out
		}
		out.styleOK = ok
		if !out.styleOK {
			return out
		}
	} else {
		out.styleOK = true
	}
	out.evaluated = true
	out.lines, out.simRan, out.sc, out.failure = s.computeScore(u)
	return out
}

// computeScore is the pure part of a fitness evaluation: a full HLS
// compatibility check, the device-capacity gate, and differential
// testing with latency simulation. It returns the deterministic cost
// inputs alongside the score.
func (s *searcher) computeScore(u *cast.Unit) (lines int, simRan bool, sc score, failure *guard.StageFailure) {
	lines = cast.CountLines(u)
	// EvalDelay emulates the blocking invocation of one external
	// toolchain process per evaluation; it is paid at most once, and
	// only when some stage actually computes — a fully cache-served
	// evaluation invokes no toolchain, which is the wall-clock saving
	// the cache exists for. The virtual clock is untouched either way.
	delayed := false
	delay := func() {
		if !delayed && s.opts.EvalDelay > 0 {
			time.Sleep(s.opts.EvalDelay)
		}
		delayed = true
	}
	// printed is the candidate's content key for cache lookups and
	// guard invocations: its canonical text, or — under FastEval — its
	// incremental fingerprint, recombined from memoized per-declaration
	// hashes in O(edit) for structure-sharing clones. Both are pure
	// functions of the candidate's content, so memoization behaves
	// identically; the evalcache schema version separates the key
	// domains across persisted stores.
	var printed string
	if s.cache != nil {
		if s.fps != nil {
			printed = s.fps.Unit(u)
		} else {
			printed = cast.Print(u)
		}
	}

	sc = score{latencyMS: 1e18}
	// Cache lookups happen outside the guard on purpose: only complete,
	// successful verdicts are ever stored, so a hit can never replay a
	// contained failure, and a hit legitimately skips injection — the
	// stage it would have faulted never runs.
	var rep hls.Report
	cached := false
	var checkKey string
	if s.cache != nil {
		checkKey = evalcache.CheckKey(s.checkSalt, printed)
		cached = s.cache.Get(evalcache.StageCheck, checkKey, &rep)
	}
	if !cached {
		delay()
		var err error
		rep, err = guard.Do(s.opts.Guard, guard.Invocation{Stage: guard.StageCheck, Key: printed, Unit: u},
			func(cu *cast.Unit) (hls.Report, error) {
				return check.Run(cu, s.cfg), nil
			})
		if sf := guard.AsFailure(err); sf != nil {
			return lines, false, sc, sf
		}
		if s.cache != nil {
			s.cache.Put(evalcache.StageCheck, checkKey, rep)
		}
	}
	sc = score{errors: len(rep.Diags), diags: rep.Diags, latencyMS: 1e18}
	if len(s.targets) > 0 {
		// Multi-target mode: the capacity gate runs per device and the
		// latency model per clock; the differential test below stays
		// shared (behaviour is target-independent).
		runDT, terr := s.scoreTargets(u, printed, &sc)
		if sf := guard.AsFailure(terr); sf != nil {
			return lines, false, sc, sf
		}
		if !runDT {
			return lines, false, sc, nil
		}
	} else if sc.errors > 0 {
		return lines, false, sc, nil
	}
	if len(s.targets) == 0 && s.opts.Device.Name != "" {
		est, err := s.estimate(u, printed)
		if sf := guard.AsFailure(err); sf != nil {
			return lines, false, sc, sf
		}
		if ok, over := sim.CheckCapacity(est, s.opts.Device); !ok {
			d := hls.Diagnostic{
				Code: "IMPL 200-1",
				Message: fmt.Sprintf(
					"implementation failed: design over-utilizes %s on %s",
					strings.Join(over, ", "), s.opts.Device.Name),
				Class: hls.ClassLoopParallel,
			}
			sc.errors = 1
			sc.diags = []hls.Diagnostic{d}
			return lines, false, sc, nil
		}
	}
	var dt difftest.Report
	cached = false
	var diffKey string
	if s.cache != nil {
		diffKey = evalcache.DifftestKey(s.diffSalt, printed)
		cached = s.cache.Get(evalcache.StageDifftest, diffKey, &dt)
	}
	if !cached {
		delay()
		var err error
		dt, err = guard.Do(s.opts.Guard, guard.Invocation{Stage: guard.StageDifftest, Key: printed, Unit: u},
			func(cu *cast.Unit) (difftest.Report, error) {
				if s.runner != nil {
					return s.runner.Run(cu), nil
				}
				return difftest.Run(s.original, cu, s.kernel, s.cfg, s.tests), nil
			})
		if sf := guard.AsFailure(err); sf != nil {
			return lines, false, sc, sf
		}
		if s.cache != nil {
			s.cache.Put(evalcache.StageDifftest, diffKey, dt)
		}
	}
	sc.report = dt
	sc.passRatio = dt.PassRatio()
	sc.behaviorOK = dt.AllPass()
	sc.latencyMS = dt.FPGAMeanMS()
	if len(s.targets) > 0 {
		s.finishTargets(&sc)
	}
	return lines, true, sc, nil
}

// estimate is the resource-estimation stage with memoization; printed
// is the candidate's canonical text (empty when the cache is off). The
// only possible error is a contained *guard.StageFailure.
func (s *searcher) estimate(u *cast.Unit, printed string) (sim.Resources, error) {
	var r sim.Resources
	var key string
	if s.cache != nil {
		key = evalcache.ResourceKey(printed)
		if s.cache.Get(evalcache.StageSim, key, &r) {
			return r, nil
		}
	}
	r, err := guard.Do(s.opts.Guard, guard.Invocation{Stage: guard.StageEstimate, Key: printed, Unit: u},
		func(cu *cast.Unit) (sim.Resources, error) {
			return sim.Estimate(cu), nil
		})
	if err != nil {
		return sim.Resources{}, err
	}
	if s.cache != nil {
		s.cache.Put(evalcache.StageSim, key, r)
	}
	return r, nil
}

// costBreakdown itemizes the virtual seconds charged for one trial, so
// candidate events (and hgtrace's budget breakdown) can attribute spend
// to the style check, the HLS compilation, and the simulation.
type costBreakdown struct {
	style, compile, sim float64
}

func (c costBreakdown) total() float64 { return c.style + c.compile + c.sim }

// compileCost is the virtual cost of one full compilation of a design
// across the active target set: each target pays its backend's cost
// model (one compile per device). Legacy mode and a single default
// target charge the identical reference cost.
func (s *searcher) compileCost(lines int) float64 {
	if len(s.targets) == 0 {
		return float64(hls.CompileCost(lines))
	}
	total := 0.0
	for _, rt := range s.targets {
		total += float64(rt.backend.CompileCost(lines))
	}
	return total
}

// invocations is how many toolchain invocations one evaluation spends.
func (s *searcher) invocations() int {
	if len(s.targets) == 0 {
		return 1
	}
	return len(s.targets)
}

// chargeOutcome replays the virtual-cost accounting of one tried
// candidate. The virtual clock models a single HLS toolchain license,
// so costs are summed here — on the search goroutine, in enumeration
// order — regardless of how many workers computed outcomes: the
// floating-point additions happen in exactly the sequence the
// sequential search performs, keeping Stats bit-identical.
func (s *searcher) chargeOutcome(o evalOutcome) costBreakdown {
	var cb costBreakdown
	s.stats.CandidatesTried++
	if o.styleRan {
		s.stats.StyleChecks++
		cb.style = float64(hls.StyleCheckSeconds)
		s.stats.VirtualSeconds += cb.style
		if o.failure != nil && o.failure.Stage == guard.StageStyle {
			// The style check crashed: its cost was spent, but it neither
			// accepted nor rejected, so StyleRejections stays honest.
			return cb
		}
		if !o.styleOK {
			s.stats.StyleRejections++
			return cb
		}
	}
	if !o.evaluated {
		return cb
	}
	if o.failure != nil {
		// A later stage crashed mid-evaluation: the compilation was
		// invoked (and is charged) but simulation never completed.
		cb.compile = s.compileCost(o.lines)
		s.stats.VirtualSeconds += cb.compile
		s.stats.HLSInvocations += s.invocations()
		return cb
	}
	cb.compile = s.compileCost(o.lines)
	s.stats.VirtualSeconds += cb.compile
	s.stats.HLSInvocations += s.invocations()
	if o.simRan {
		cb.sim = float64(hls.SimPerTestSeconds) * float64(len(s.tests))
		s.stats.VirtualSeconds += cb.sim
	}
	return cb
}

// evaluate pays for a full HLS compilation (and simulation when
// compilable) of u and returns its fitness — the sequential compute +
// charge pair, used for the initial program version. It emits the
// repair_init event, the t=0 point of Figure 2's trajectory.
func (s *searcher) evaluate(u *cast.Unit) score {
	var lines int
	var simRan bool
	var sc score
	var failure *guard.StageFailure
	if o, ok := s.ckpt.replayInit(); ok {
		lines, simRan, sc, failure = o.lines, o.simRan, o.sc, o.failure
	} else {
		lines, simRan, sc, failure = s.computeScore(u)
		s.ckpt.recordInit(evalOutcome{computed: true, evaluated: true,
			lines: lines, simRan: simRan, sc: sc, failure: failure})
	}
	if failure != nil {
		// The initial version itself crashed a stage: give it the worst
		// possible fitness so any candidate that evaluates at all is an
		// improvement, and let the search continue instead of aborting.
		sc = score{errors: 1 << 20, latencyMS: 1e18}
		s.stats.StageFailures++
	} else {
		// The unrepaired initial version may already be the cheapest
		// all-targets-compatible design; archive it like any candidate.
		s.considerPareto(u, sc)
	}
	var cb costBreakdown
	cb.compile = s.compileCost(lines)
	s.stats.VirtualSeconds += cb.compile
	s.stats.HLSInvocations += s.invocations()
	if simRan {
		cb.sim = float64(hls.SimPerTestSeconds) * float64(len(s.tests))
		s.stats.VirtualSeconds += cb.sim
	}
	if s.tracing {
		re := &obs.RepairEvent{
			Step: "init", Evaluated: true,
			Errors: sc.errors, PassRatio: sc.passRatio, BehaviorOK: sc.behaviorOK,
			VirtualDelta: cb.total(), CostCompile: cb.compile, CostSim: cb.sim,
		}
		if failure != nil {
			re.Failure = failure.Label()
		}
		if sc.errors == 0 && simRan {
			re.LatencyMS = sc.latencyMS
		}
		s.obs.Emit(obs.Event{Type: obs.EvRepairInit, Virtual: s.stats.VirtualSeconds, Repair: re})
	}
	return sc
}

// repairStep tries candidates for the current diagnostics and accepts the
// first one that improves the score. Returns false when stuck.
func (s *searcher) repairStep(cur **cast.Unit, curScore *score) bool {
	s.step = "repair"
	diags := curScore.diags
	if len(diags) == 0 && !curScore.behaviorOK {
		// Compilable but behaviour-diverging: the finitization sizes are
		// wrong. Synthesize a dynamic-data diagnostic so sizing templates
		// (resize) instantiate.
		diags = []hls.Diagnostic{{
			Code:    "DIFF-1",
			Message: fmt.Sprintf("behavior divergence: %d of %d tests disagree (%s): dynamic memory finitization suspected", curScore.report.Total-curScore.report.Passed, curScore.report.Total, curScore.report.FirstDiff),
			Class:   hls.ClassDynamicData,
		}}
	}

	var candidates []Candidate
	if s.opts.UseDependence {
		// Dependence-guided: chains per diagnostic, in diagnostic order.
		for _, d := range diags {
			candidates = append(candidates, CandidatesFor(*cur, d, s.state)...)
		}
		candidates = dedupeCandidates(candidates)
	} else {
		// WithoutDependence: each attempt picks any applicable edit at
		// random, with replacement — re-trying a configuration pays for
		// its compilation again, which is exactly what the dependence
		// structure exists to avoid (the paper's "naive probability of
		// selecting ➌ given ➊ is 10%" argument). All picks are drawn up
		// front so the rng stream consumed per step depends only on the
		// pool size (see Options.Seed), then evaluated like any other
		// ordered candidate list — budget checks still gate every
		// attempt at commit time.
		pool := s.filterByClass(RandomCandidates(*cur, diags, s.state))
		if len(pool) == 0 {
			return false
		}
		picks := make([]Candidate, 6*len(pool))
		for a := range picks {
			picks[a] = pool[s.rng.Intn(len(pool))]
		}
		return s.evalCandidates(picks, nil, nil, cur, curScore)
	}

	if s.tryCandidates(s.filterByClass(candidates), cur, curScore) {
		return true
	}
	// Cross-class repairs (e.g. a recursion fix blocked until struct
	// pointers become pool indices) are reached by widening to the
	// whole registry once per-class chains are exhausted.
	fallback := s.filterByClass(RandomCandidates(*cur, diags, s.state))
	return s.tryCandidates(fallback, cur, curScore)
}

// filterByClass drops candidates containing edits outside the configured
// class filter.
func (s *searcher) filterByClass(cands []Candidate) []Candidate {
	if s.opts.ClassFilter == nil {
		return cands
	}
	var out []Candidate
	for _, c := range cands {
		ok := true
		for _, e := range c.Edits {
			if !s.opts.allows(e.Class) {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, c)
		}
	}
	return out
}

// tryCandidates evaluates candidates in order, accepting the first
// improvement.
func (s *searcher) tryCandidates(candidates []Candidate, cur **cast.Unit, curScore *score) bool {
	return s.evalCandidates(candidates, nil, nil, cur, curScore)
}

// perfStep explores performance edits on an already-correct program.
// Rejected configurations are remembered so each costs one compilation
// over the whole search.
func (s *searcher) perfStep(cur **cast.Unit, curScore *score) bool {
	s.step = "perf"
	cands := PerfCandidates(*cur, s.state)
	// skip consults and updates the real dedupe set; it runs on the
	// search goroutine at commit time, in enumeration order, and stops
	// being called the moment the step accepts or exhausts its budget —
	// exactly like the sequential loop, so triedPerf ends identical.
	skip := func(c Candidate) bool {
		key := c.Describe()
		if s.triedPerf[key] {
			return true
		}
		s.triedPerf[key] = true
		return false
	}
	// predictSkip previews the same decisions against a scratch copy so
	// the worker pool does not schedule duplicate configurations; a
	// misprediction only wastes or saves speculative work, never
	// changes what skip decides.
	predicted := make(map[string]bool, len(s.triedPerf))
	for k := range s.triedPerf {
		predicted[k] = true
	}
	predictSkip := func(c Candidate) bool {
		key := c.Describe()
		if predicted[key] {
			return true
		}
		predicted[key] = true
		return false
	}
	return s.evalCandidates(cands, skip, predictSkip, cur, curScore)
}

func (s *searcher) accept(cand Candidate) {
	for _, e := range cand.Edits {
		s.state.MarkApplied(e)
		if e.OnAccept != nil {
			e.OnAccept(s.state)
		}
		s.stats.EditLog = append(s.stats.EditLog, e.String())
	}
}

// Summary renders a human-readable result line, including how many
// candidates the search rejected on the way (broken out from the same
// commit-ordered counters the metrics layer reports, so sequential and
// parallel runs print the same line).
func (r Result) Summary() string {
	status := "incomplete"
	if r.Compatible && r.BehaviorOK {
		status = "compatible"
	}
	failures := ""
	if r.Stats.StageFailures > 0 {
		failures = fmt.Sprintf(", %d stage failures contained", r.Stats.StageFailures)
	}
	return fmt.Sprintf("%s: %d edits (%d/%d candidates accepted, %d rejected: %d style, %d fitness%s), %d HLS invocations, %.0f virtual min [%s]",
		status, len(r.Stats.EditLog),
		r.Stats.AcceptedCandidates, r.Stats.CandidatesTried,
		r.Stats.RejectedCandidates, r.Stats.StyleRejections,
		r.Stats.RejectedCandidates-r.Stats.StyleRejections,
		failures,
		r.Stats.HLSInvocations,
		r.Stats.VirtualMinutes(), strings.Join(r.Stats.EditLog, "; "))
}
