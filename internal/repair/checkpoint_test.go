package repair

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/obs"
)

// candCanceller cancels a context after the Nth committed candidate
// event — a deterministic interrupt at a real commit point, exactly
// where cooperative cancellation (and a drain) stops a search.
type candCanceller struct {
	remaining int
	cancel    context.CancelFunc
}

func (c *candCanceller) Emit(e obs.Event) {
	if e.Type != obs.EvCandidate {
		return
	}
	c.remaining--
	if c.remaining == 0 {
		c.cancel()
	}
}

// tracedSearchCtx is tracedSearch with a caller context.
func tracedSearchCtx(ctx context.Context, orig, initial *cast.Unit, kernel string, tests []fuzz.TestCase, opts Options, extra obs.Observer) (Result, []byte) {
	var buf bytes.Buffer
	tw := obs.NewTraceWriter(&buf)
	if extra != nil {
		opts.Obs = obs.Multi(tw, extra)
	} else {
		opts.Obs = tw
	}
	res := SearchContext(ctx, orig, initial, kernel, tests, opts)
	if err := tw.Flush(); err != nil {
		panic(err)
	}
	return res, buf.Bytes()
}

// assertRemainingIdentical extends assertIdentical to the Remaining
// diagnostics, which ride through checkpoint serialization.
func assertRemainingIdentical(t *testing.T, name string, want, got Result) {
	t.Helper()
	if !reflect.DeepEqual(want.Remaining, got.Remaining) {
		t.Errorf("%s: remaining diagnostics diverge:\n  want: %+v\n  got:  %+v", name, want.Remaining, got.Remaining)
	}
	if !reflect.DeepEqual(want.PerTarget, got.PerTarget) {
		t.Errorf("%s: verdict tables diverge:\n  want: %+v\n  got:  %+v", name, want.PerTarget, got.PerTarget)
	}
	if !reflect.DeepEqual(want.Pareto, got.Pareto) {
		t.Errorf("%s: pareto sets diverge: %d vs %d points", name, len(want.Pareto), len(got.Pareto))
	}
	if !reflect.DeepEqual(want.Report, got.Report) {
		t.Errorf("%s: reports diverge:\n  want: %+v\n  got:  %+v", name, want.Report, got.Report)
	}
}

// TestCheckpointColdParity: turning checkpointing on against a fresh
// log changes nothing — the run that *writes* a checkpoint is
// byte-identical to a run without one, sequential and parallel.
func TestCheckpointColdParity(t *testing.T) {
	for _, id := range paritySubjects() {
		t.Run(id, func(t *testing.T) {
			orig, initial, kernel, tests := subjectInputs(t, id)
			plain, plainTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, DefaultOptions())

			for _, workers := range []int{1, 4} {
				opts := DefaultOptions()
				opts.Workers = workers
				opts.CheckpointPath = filepath.Join(t.TempDir(), "search.ckpt")
				ck, ckTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)
				name := fmt.Sprintf("%s/workers=%d", id, workers)
				assertIdentical(t, name, plain, ck)
				assertTracesIdentical(t, name, plainTrace, ckTrace)
				assertRemainingIdentical(t, name, plain, ck)
			}
		})
	}
}

// TestCheckpointResumeParity is the crash-recovery contract: interrupt
// a checkpointed search after N committed candidates, then resume it
// from the log with a fresh context — the resumed run's Result AND
// trace must be byte-identical to an uninterrupted run's, across
// worker counts and interrupt depths.
func TestCheckpointResumeParity(t *testing.T) {
	stops := []int{1, 3, 7}
	for _, id := range paritySubjects() {
		t.Run(id, func(t *testing.T) {
			orig, initial, kernel, tests := subjectInputs(t, id)
			control, controlTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, DefaultOptions())

			for _, workers := range []int{1, 4} {
				for _, stop := range stops {
					name := fmt.Sprintf("workers=%d/stop=%d", workers, stop)
					opts := DefaultOptions()
					opts.Workers = workers
					opts.CheckpointPath = filepath.Join(t.TempDir(), "search.ckpt")

					ctx, cancel := context.WithCancel(context.Background())
					interrupted, _ := tracedSearchCtx(ctx, orig, cast.CloneUnit(initial), kernel, tests, opts,
						&candCanceller{remaining: stop, cancel: cancel})
					cancel()
					if interrupted.Stats.CandidatesTried >= control.Stats.CandidatesTried &&
						control.Stats.CandidatesTried > stop {
						t.Fatalf("%s: interrupt did not stop the search early (%d vs %d candidates)",
							name, interrupted.Stats.CandidatesTried, control.Stats.CandidatesTried)
					}

					resumed, resumedTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)
					assertIdentical(t, name, control, resumed)
					assertTracesIdentical(t, name, controlTrace, resumedTrace)
					assertRemainingIdentical(t, name, control, resumed)
				}
			}
		})
	}
}

// TestCheckpointResumeCacheAndTargets extends resume parity to a warm
// shared cache and a multi-device target set — the hgserve deployment
// shape (P2 and P6 are the multi-target parity subjects).
func TestCheckpointResumeCacheAndTargets(t *testing.T) {
	targets := mustTargets(t, "vivado_hls:xcvu9p", "vivado_hls:zc706", "vitis:aws_f1")
	for _, id := range []string{"P2", "P6"} {
		t.Run(id, func(t *testing.T) {
			orig, initial, kernel, tests := subjectInputs(t, id)

			base := DefaultOptions()
			base.Targets = targets
			base.Workers = 4
			control, controlTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, base)

			cache, err := evalcache.New(evalcache.Options{})
			if err != nil {
				t.Fatal(err)
			}
			opts := base
			opts.Cache = cache
			opts.CheckpointPath = filepath.Join(t.TempDir(), "search.ckpt")

			ctx, cancel := context.WithCancel(context.Background())
			tracedSearchCtx(ctx, orig, cast.CloneUnit(initial), kernel, tests, opts,
				&candCanceller{remaining: 4, cancel: cancel})
			cancel()

			// Resume under a different worker count than the interrupted
			// run — the log is worker-agnostic by construction.
			opts.Workers = 1
			resumed, resumedTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)
			assertIdentical(t, id, control, resumed)
			assertTracesIdentical(t, id, controlTrace, resumedTrace)
			assertRemainingIdentical(t, id, control, resumed)
		})
	}
}

// TestCheckpointStaleKeyDiscarded: a log written under different
// search inputs (here: another seed) must be ignored, not replayed —
// the resumed run equals a fresh run of the new configuration.
func TestCheckpointStaleKeyDiscarded(t *testing.T) {
	orig, initial, kernel, tests := subjectInputs(t, "P2")
	path := filepath.Join(t.TempDir(), "search.ckpt")

	optsA := DefaultOptions()
	optsA.UseDependence = false // consults the rng, so Seed matters
	optsA.Seed = 1
	optsA.CheckpointPath = path
	tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, optsA)

	optsB := optsA
	optsB.Seed = 2
	optsB.CheckpointPath = ""
	control, controlTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, optsB)

	optsB.CheckpointPath = path
	got, gotTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, optsB)
	assertIdentical(t, "seed-mismatch", control, got)
	assertTracesIdentical(t, "seed-mismatch", controlTrace, gotTrace)
}

// TestCheckpointCorruptTail: a torn final line (the shape a kill -9
// mid-append leaves) is dropped on open; the valid prefix still
// replays and the resumed run stays byte-identical.
func TestCheckpointCorruptTail(t *testing.T) {
	orig, initial, kernel, tests := subjectInputs(t, "P2")
	control, controlTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, DefaultOptions())

	opts := DefaultOptions()
	opts.CheckpointPath = filepath.Join(t.TempDir(), "search.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	tracedSearchCtx(ctx, orig, cast.CloneUnit(initial), kernel, tests, opts,
		&candCanceller{remaining: 5, cancel: cancel})
	cancel()

	data, err := os.ReadFile(opts.CheckpointPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 30 {
		t.Fatalf("checkpoint suspiciously small: %d bytes", len(data))
	}
	// Tear the last line in half (drop the trailing newline and then
	// some) and append garbage for good measure.
	torn := append(data[:len(data)-17], []byte(`{"t":"cand","i":`)...)
	if err := os.WriteFile(opts.CheckpointPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	resumed, resumedTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)
	assertIdentical(t, "torn-tail", control, resumed)
	assertTracesIdentical(t, "torn-tail", controlTrace, resumedTrace)
}

// TestCheckpointResumeSkipsRecomputation proves a resumed run actually
// replays: resuming a *completed* search recomputes no candidate
// evaluations (the style checker and toolchain never run), which is
// the whole point of persisting outcomes.
func TestCheckpointResumeSkipsRecomputation(t *testing.T) {
	orig, initial, kernel, tests := subjectInputs(t, "P2")
	opts := DefaultOptions()
	opts.CheckpointPath = filepath.Join(t.TempDir(), "search.ckpt")
	first, firstTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)

	// A cache whose misses would count recomputation: on a pure replay
	// the cache is never consulted because computeOutcome never runs.
	cache, err := evalcache.New(evalcache.Options{})
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = cache
	second, secondTrace := tracedSearch(orig, cast.CloneUnit(initial), kernel, tests, opts)
	assertIdentical(t, "full-replay", first, second)
	assertTracesIdentical(t, "full-replay", firstTrace, secondTrace)
	if n := cache.Stats().Misses() + cache.Stats().Hits(); n != 0 {
		t.Errorf("full replay consulted the evaluation cache %d times; want 0 (outcomes must come from the log)", n)
	}
}
