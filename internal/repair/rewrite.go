package repair

import (
	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctypes"
)

// rewriteTypes applies f to every declared type in the unit (globals,
// locals, parameters, returns, struct fields, casts, sizeofs, typedefs),
// mapping through pointer/array/ref wrappers.
func rewriteTypes(u *cast.Unit, f func(ctypes.Type) (ctypes.Type, bool)) {
	var deep func(t ctypes.Type) (ctypes.Type, bool)
	deep = func(t ctypes.Type) (ctypes.Type, bool) {
		if t == nil {
			return t, false
		}
		if nt, ok := f(t); ok {
			return nt, true
		}
		switch x := t.(type) {
		case ctypes.Pointer:
			if e, ok := deep(x.Elem); ok {
				return ctypes.Pointer{Elem: e}, true
			}
		case ctypes.Array:
			if e, ok := deep(x.Elem); ok {
				return ctypes.Array{Elem: e, Len: x.Len}, true
			}
		case ctypes.Ref:
			if e, ok := deep(x.Elem); ok {
				return ctypes.Ref{Elem: e}, true
			}
		case ctypes.Stream:
			if e, ok := deep(x.Elem); ok {
				return ctypes.Stream{Elem: e}, true
			}
		}
		return t, false
	}

	apply := func(t ctypes.Type) ctypes.Type {
		if nt, ok := deep(t); ok {
			return nt
		}
		return t
	}

	rewriteFn := func(fn *cast.FuncDecl) {
		fn.Ret = apply(fn.Ret)
		for i := range fn.Params {
			fn.Params[i].Type = apply(fn.Params[i].Type)
		}
		cast.Inspect(fn, func(n cast.Node) bool {
			switch x := n.(type) {
			case *cast.DeclStmt:
				x.Type = apply(x.Type)
			case *cast.Cast:
				x.To = apply(x.To)
			case *cast.SizeofType:
				x.T = apply(x.T)
			}
			return true
		})
	}

	for _, d := range u.Decls {
		switch x := d.(type) {
		case *cast.VarDecl:
			x.Type = apply(x.Type)
		case *cast.FuncDecl:
			rewriteFn(x)
		case *cast.TypedefDecl:
			x.Type = apply(x.Type)
		case *cast.StructDecl:
			for i := range x.Type.Fields {
				x.Type.Fields[i].Type = apply(x.Type.Fields[i].Type)
			}
			for _, m := range x.Methods {
				rewriteFn(m)
			}
		}
	}
	for k, v := range u.Typedefs {
		u.Typedefs[k] = apply(v)
	}
}

// rewriteExprsTyped rebuilds every expression of fn bottom-up with scope-
// aware typing: visit receives each (already child-rewritten) expression
// together with the type environment at that point and returns its
// replacement (or the node unchanged).
func rewriteExprsTyped(u *cast.Unit, fn *cast.FuncDecl, visit func(env *typeEnv, e cast.Expr) cast.Expr) {
	env := newTypeEnv(u)
	env.push()
	for _, p := range fn.Params {
		env.define(p.Name, p.Type)
	}

	var rewrite func(x cast.Expr) cast.Expr
	rewrite = func(x cast.Expr) cast.Expr {
		if x == nil {
			return nil
		}
		switch n := x.(type) {
		case *cast.Unary:
			n.X = rewrite(n.X)
		case *cast.Postfix:
			n.X = rewrite(n.X)
		case *cast.Binary:
			n.L = rewrite(n.L)
			n.R = rewrite(n.R)
		case *cast.Assign:
			n.L = rewrite(n.L)
			n.R = rewrite(n.R)
		case *cast.Cond:
			n.C = rewrite(n.C)
			n.T = rewrite(n.T)
			n.F = rewrite(n.F)
		case *cast.Call:
			n.Fun = rewrite(n.Fun)
			for i := range n.Args {
				n.Args[i] = rewrite(n.Args[i])
			}
		case *cast.Index:
			n.X = rewrite(n.X)
			n.Idx = rewrite(n.Idx)
		case *cast.Member:
			n.X = rewrite(n.X)
		case *cast.Cast:
			n.X = rewrite(n.X)
		case *cast.SizeofExpr:
			n.X = rewrite(n.X)
		case *cast.InitList:
			for i := range n.Elems {
				n.Elems[i] = rewrite(n.Elems[i])
			}
		}
		return visit(env, x)
	}

	var walkStmt func(s cast.Stmt)
	walkStmt = func(s cast.Stmt) {
		switch n := s.(type) {
		case *cast.ExprStmt:
			n.X = rewrite(n.X)
		case *cast.DeclStmt:
			if n.Init != nil {
				n.Init = rewrite(n.Init)
			}
			for i := range n.VLADims {
				n.VLADims[i] = rewrite(n.VLADims[i])
			}
			env.define(n.Name, n.Type)
		case *cast.Block:
			env.push()
			for _, st := range n.Stmts {
				walkStmt(st)
			}
			env.pop()
		case *cast.If:
			n.Cond = rewrite(n.Cond)
			walkStmt(n.Then)
			if n.Else != nil {
				walkStmt(n.Else)
			}
		case *cast.For:
			env.push()
			if n.Init != nil {
				walkStmt(n.Init)
			}
			if n.Cond != nil {
				n.Cond = rewrite(n.Cond)
			}
			if n.Post != nil {
				n.Post = rewrite(n.Post)
			}
			walkStmt(n.Body)
			env.pop()
		case *cast.While:
			n.Cond = rewrite(n.Cond)
			walkStmt(n.Body)
		case *cast.Return:
			if n.X != nil {
				n.X = rewrite(n.X)
			}
		case *cast.Switch:
			n.X = rewrite(n.X)
			for _, c := range n.Cases {
				if c.Value != nil {
					c.Value = rewrite(c.Value)
				}
				for _, st := range c.Body {
					walkStmt(st)
				}
			}
		}
	}
	if fn.Body != nil {
		env.push()
		for _, s := range fn.Body.Stmts {
			walkStmt(s)
		}
		env.pop()
	}
}

// eachFunction visits every function and struct method with a body.
func eachFunction(u *cast.Unit, f func(*cast.FuncDecl)) {
	for _, d := range u.Decls {
		switch x := d.(type) {
		case *cast.FuncDecl:
			if x.Body != nil {
				f(x)
			}
		case *cast.StructDecl:
			for _, m := range x.Methods {
				if m.Body != nil {
					f(m)
				}
			}
		}
	}
}

// isPointerTo reports whether t is Pointer{struct tag}.
func isPointerTo(t ctypes.Type, tag string) bool {
	p, ok := ctypes.Resolve(t).(ctypes.Pointer)
	if !ok {
		return false
	}
	st, ok := ctypes.Resolve(p.Elem).(*ctypes.Struct)
	return ok && st.Tag == tag
}
