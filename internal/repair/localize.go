package repair

import (
	"sort"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/hls"
)

// ClassifyMessage maps an HLS diagnostic message to an error class by
// keyword extraction, exactly as §5.2 describes ("extracting keywords
// such as recursion, dataflow, or struct"). The repair engine classifies
// from the message text rather than trusting any structured channel, so a
// new checker (or a real Vivado log) can be plugged in. Registered
// extension classifiers run first.
func ClassifyMessage(msg string) hls.ErrorClass {
	return classifyExtended(msg)
}

// builtinClassify is the six-class keyword classifier of §5.2.
func builtinClassify(msg string) hls.ErrorClass {
	m := strings.ToLower(msg)
	switch {
	case strings.Contains(m, "recursive") || strings.Contains(m, "recursion"),
		strings.Contains(m, "dynamic memory"),
		strings.Contains(m, "unknown size"):
		return hls.ClassDynamicData
	case strings.Contains(m, "long double"),
		strings.Contains(m, "overloaded"),
		strings.Contains(m, "pointer"):
		return hls.ClassUnsupportedType
	case strings.Contains(m, "unroll"),
		strings.Contains(m, "partition"),
		strings.Contains(m, "pre-synthesis"),
		strings.Contains(m, "trip count"):
		return hls.ClassLoopParallel
	case strings.Contains(m, "struct"),
		strings.Contains(m, "stream"):
		return hls.ClassStructUnion
	case strings.Contains(m, "dataflow"):
		return hls.ClassDataflow
	case strings.Contains(m, "top function"):
		return hls.ClassTopFunction
	}
	return hls.ClassNone
}

// Candidate is a repair candidate: a dependence-ordered edit sequence
// already applied to its own clone of the program.
type Candidate struct {
	Edits []Edit
	Unit  *cast.Unit
}

// Describe renders the candidate's edit chain.
func (c Candidate) Describe() string {
	parts := make([]string, len(c.Edits))
	for i, e := range c.Edits {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ; ")
}

// maxChainDepth bounds dependence-chain expansion (the paper's chains are
// short: ➊➌➎ style, length <= 3).
const maxChainDepth = 3

// cloneFor builds the candidate unit an edit will be applied to: a
// structure-sharing scoped clone when fast cloning is on and the edit
// declares its mutation scope, the full deep clone otherwise. Sharing
// unedited declarations by pointer is what makes candidate construction
// O(edit) and lets the compiled-code and fingerprint caches reuse work
// across candidates.
func cloneFor(u *cast.Unit, e Edit, st *State) *cast.Unit {
	if st != nil && st.FastClone && len(e.Scope) > 0 {
		return cast.CloneUnitScoped(u, e.Scope)
	}
	return cast.CloneUnit(u)
}

// CandidatesFor generates dependence-ordered candidate chains for one
// diagnostic against the current program: for each entry template of the
// diagnostic's class whose prerequisites are satisfiable, the chain
// {A}, {A,B}, {A,B,D} ... following the Requires edges — the paper's
// enumeration {➊, ➋, ➊➌, ➋➍, ...}.
func CandidatesFor(u *cast.Unit, d hls.Diagnostic, st *State) []Candidate {
	class := ClassifyMessage(d.Message)
	if class == hls.ClassNone {
		class = d.Class
	}
	var out []Candidate
	for _, t := range TemplatesFor(class) {
		if !st.DepsSatisfied(t, d.Subject) && len(t.Requires) > 0 {
			// The prerequisite may be satisfied within a chain started by
			// the entry template; skip as a chain head only.
			continue
		}
		if len(t.Requires) > 0 {
			continue // chain heads have no prerequisites
		}
		out = append(out, expandChains(u, d, st, t, nil, 1)...)
	}
	// Shorter chains first, preserving registry order within a length.
	sort.SliceStable(out, func(i, j int) bool {
		return len(out[i].Edits) < len(out[j].Edits)
	})
	return out
}

// expandChains instantiates t on u, then recursively extends each result
// with templates that depend on t.
func expandChains(u *cast.Unit, d hls.Diagnostic, st *State, t Template, prefix []Edit, depth int) []Candidate {
	var out []Candidate
	for _, e := range t.Instantiate(u, d, st) {
		clone := cloneFor(u, e, st)
		if err := e.Apply(clone); err != nil {
			continue
		}
		chain := append(append([]Edit{}, prefix...), e)
		out = append(out, Candidate{Edits: chain, Unit: clone})
		if depth >= maxChainDepth {
			continue
		}
		// Extend with dependents of t targeted at the same entity.
		childState := st.childWith(e)
		for _, t2 := range Registry() {
			if !requires(t2, t.ID) {
				continue
			}
			if !childState.DepsSatisfied(t2, e.Target) {
				continue
			}
			out = append(out, expandChains(clone, d, childState, t2, chain, depth+1)...)
		}
	}
	return out
}

func requires(t Template, id string) bool {
	for _, r := range t.Requires {
		if r == id {
			return true
		}
	}
	return false
}

// childWith copies the state with one more applied edit (used during
// chain expansion without committing to the real search state).
func (s *State) childWith(e Edit) *State {
	out := &State{
		Applied:   make(map[string]bool, len(s.Applied)+1),
		Sizes:     make(map[string]int, len(s.Sizes)),
		TestCount: s.TestCount,
		FastClone: s.FastClone,
	}
	for k, v := range s.Applied {
		out.Applied[k] = v
	}
	for k, v := range s.Sizes {
		out.Sizes[k] = v
	}
	out.Applied[e.Template+"@"+e.Target] = true
	if e.OnAccept != nil {
		e.OnAccept(out)
	}
	return out
}

// RandomCandidates generates single-edit candidates from the entire
// registry over the entire edit space — every template instantiated
// against every plausible subject in the program, not just the subjects
// the diagnostics name. This is the space the WithoutDependence ablation
// wanders through: with no dependence knowledge, each iteration may pick
// any of these, and most of them change nothing the checker cares about.
func RandomCandidates(u *cast.Unit, diags []hls.Diagnostic, st *State) []Candidate {
	all := append(append([]hls.Diagnostic{}, diags...), syntheticDiags(u)...)
	var out []Candidate
	for _, t := range Registry() {
		for _, d := range all {
			for _, e := range t.Instantiate(u, d, st) {
				clone := cloneFor(u, e, st)
				if err := e.Apply(clone); err != nil {
					continue
				}
				out = append(out, Candidate{Edits: []Edit{e}, Unit: clone})
			}
		}
	}
	return dedupeCandidates(out)
}

// syntheticDiags enumerates every (class, subject) pair a template could
// target in u: each function (recursion targets), each variable and array
// (sizing, pointer, stream targets), each struct tag.
func syntheticDiags(u *cast.Unit) []hls.Diagnostic {
	var out []hls.Diagnostic
	add := func(class hls.ErrorClass, subject string) {
		out = append(out, hls.Diagnostic{Class: class, Subject: subject,
			Message: "exploration target " + subject})
	}
	for _, d := range u.Decls {
		switch x := d.(type) {
		case *cast.FuncDecl:
			add(hls.ClassDynamicData, x.Name)
			cast.Inspect(x, func(n cast.Node) bool {
				if ds, ok := n.(*cast.DeclStmt); ok {
					add(hls.ClassDynamicData, ds.Name)
					add(hls.ClassUnsupportedType, ds.Name)
					add(hls.ClassStructUnion, ds.Name)
					add(hls.ClassDataflow, ds.Name)
				}
				return true
			})
			for _, p := range x.Params {
				add(hls.ClassDataflow, p.Name)
				add(hls.ClassUnsupportedType, p.Name)
			}
		case *cast.VarDecl:
			add(hls.ClassDynamicData, x.Name)
			add(hls.ClassUnsupportedType, x.Name)
		case *cast.StructDecl:
			add(hls.ClassStructUnion, x.Type.Tag)
		}
	}
	add(hls.ClassDynamicData, "malloc")
	add(hls.ClassUnsupportedType, "long double")
	return out
}

func dedupeCandidates(cands []Candidate) []Candidate {
	seen := map[string]bool{}
	var out []Candidate
	for _, c := range cands {
		k := c.Describe()
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, c)
	}
	return out
}

// PerfCandidates generates performance-exploration candidates (PerfGain
// templates) for an already error-free program: pragma exploration,
// dataflow insertion.
func PerfCandidates(u *cast.Unit, st *State) []Candidate {
	synthetic := hls.Diagnostic{Message: "performance exploration", Class: hls.ClassLoopParallel}
	var out []Candidate
	for _, t := range Registry() {
		if !t.PerfGain {
			continue
		}
		switch t.ID {
		case "explore_all", "explore", "insert_pragma":
			for _, e := range t.Instantiate(u, synthetic, st) {
				clone := cloneFor(u, e, st)
				if err := e.Apply(clone); err != nil {
					continue
				}
				out = append(out, Candidate{Edits: []Edit{e}, Unit: clone})
			}
		}
	}
	return out
}
