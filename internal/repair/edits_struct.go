package repair

import (
	"fmt"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
)

// ---------------------------------------------------------------------------
// constructor($s1:struct): insert an explicit constructor (Figure 5b, ➊).

func instConstructor(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	tag := d.Subject
	sd := u.StructOf(tag)
	if sd == nil || sd.HasCtor {
		return nil
	}
	return []Edit{{
		Template: "constructor",
		Class:    hls.ClassStructUnion,
		Target:   tag,
		Note:     "insert explicit constructor",
		Apply:    func(u *cast.Unit) error { return applyConstructor(u, tag) },
	}}
}

func applyConstructor(u *cast.Unit, tag string) error {
	sd := u.StructOf(tag)
	if sd == nil {
		return fmt.Errorf("constructor: struct %q not found", tag)
	}
	if sd.HasCtor {
		return fmt.Errorf("constructor: %q already has one", tag)
	}
	ctor := &cast.FuncDecl{Name: tag, Ret: ctypes.Void{}}
	for i, f := range sd.Type.Fields {
		pname := fmt.Sprintf("a%d", i)
		ptype := f.Type
		// Stream and struct fields are bound by reference.
		switch ctypes.Resolve(f.Type).(type) {
		case ctypes.Stream:
			if _, isRef := f.Type.(ctypes.Ref); !isRef {
				ptype = ctypes.Ref{Elem: f.Type}
			}
		}
		ctor.Params = append(ctor.Params, cast.Param{Name: pname, Type: ptype})
		ctor.Body = ensureBlock(ctor.Body)
		ctor.Body.Stmts = append(ctor.Body.Stmts, &cast.ExprStmt{
			X: &cast.Assign{Op: ctoken.ASSIGN,
				L: &cast.Ident{Name: f.Name},
				R: &cast.Ident{Name: pname}},
		})
	}
	ctor.Body = ensureBlock(ctor.Body)
	sd.Methods = append([]*cast.FuncDecl{ctor}, sd.Methods...)
	sd.HasCtor = true
	return nil
}

func ensureBlock(b *cast.Block) *cast.Block {
	if b == nil {
		return &cast.Block{}
	}
	return b
}

// ---------------------------------------------------------------------------
// stream_static($f1:stream, $s1:struct): make the connecting stream static
// (Figure 5b, ➌). Depends on constructor.

func instStreamStatic(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	name := d.Subject
	if name == "" {
		return nil
	}
	return []Edit{{
		Template: "stream_static",
		Class:    hls.ClassStructUnion,
		Target:   name,
		Note:     "declare stream static",
		Apply: func(u *cast.Unit) error {
			done := false
			cast.Inspect(u, func(n cast.Node) bool {
				ds, ok := n.(*cast.DeclStmt)
				if !ok || ds.Name != name || ds.Static {
					return true
				}
				if _, isStream := ctypes.Resolve(ds.Type).(ctypes.Stream); isStream {
					ds.Static = true
					done = true
				}
				return true
			})
			if !done {
				return fmt.Errorf("stream_static: no non-static stream %q", name)
			}
			return nil
		},
	}}
}

// ---------------------------------------------------------------------------
// flatten($s1:struct): lift methods to standalone functions taking the
// fields as parameters (Figure 7b, ➋).

func instFlatten(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	tag := d.Subject
	sd := u.StructOf(tag)
	if sd == nil || len(sd.Methods) == 0 {
		return nil
	}
	return []Edit{{
		Template: "flatten",
		Class:    hls.ClassStructUnion,
		Target:   tag,
		Note:     "lift methods to standalone functions",
		Apply:    func(u *cast.Unit) error { return applyFlatten(u, tag) },
	}}
}

func applyFlatten(u *cast.Unit, tag string) error {
	sd := u.StructOf(tag)
	if sd == nil {
		return fmt.Errorf("flatten: struct %q not found", tag)
	}
	fields := sd.Type.Fields
	methodNames := map[string]bool{}
	for _, m := range sd.Methods {
		methodNames[m.Name] = true
	}
	var lifted []cast.Decl
	for _, m := range sd.Methods {
		if m.Name == tag {
			continue // constructors dissolve with the struct
		}
		nf := cast.CloneFunc(m)
		nf.Name = tag + "_" + m.Name
		var fieldParams []cast.Param
		for _, f := range fields {
			pt := f.Type
			switch ctypes.Resolve(f.Type).(type) {
			case ctypes.Stream:
				if _, isRef := f.Type.(ctypes.Ref); !isRef {
					pt = ctypes.Ref{Elem: f.Type}
				}
			}
			fieldParams = append(fieldParams, cast.Param{Name: f.Name, Type: pt})
		}
		nf.Params = append(fieldParams, nf.Params...)
		// Rewrite sibling-method calls: doRead() -> S_doRead(fields...).
		cast.Inspect(nf, func(n cast.Node) bool {
			call, ok := n.(*cast.Call)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*cast.Ident); ok && methodNames[id.Name] && id.Name != tag {
				id.Name = tag + "_" + id.Name
				var fieldArgs []cast.Expr
				for _, f := range fields {
					fieldArgs = append(fieldArgs, &cast.Ident{Name: f.Name})
				}
				call.Args = append(fieldArgs, call.Args...)
			}
			return true
		})
		lifted = append(lifted, nf)
	}
	for i := len(lifted) - 1; i >= 0; i-- {
		u.InsertDeclBefore(lifted[i], sd)
	}
	// The struct keeps its fields until inst_update retargets the call
	// sites; mark it method-less so the lifted functions are canonical.
	sd.Methods = nil
	sd.HasCtor = false
	return nil
}

// ---------------------------------------------------------------------------
// inst_update($s1:struct): rewrite instance-method calls to the lifted
// functions and remove the struct (Figure 7b, ➍). Depends on flatten.

func instInstUpdate(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	tag := d.Subject
	if tag == "" {
		return nil
	}
	return []Edit{{
		Template: "inst_update",
		Class:    hls.ClassStructUnion,
		Target:   tag,
		Note:     "retarget instance calls",
		Apply:    func(u *cast.Unit) error { return applyInstUpdate(u, tag) },
	}}
}

func applyInstUpdate(u *cast.Unit, tag string) error {
	sd := u.StructOf(tag)
	if sd == nil {
		return fmt.Errorf("inst_update: struct %q not found", tag)
	}
	updated := 0
	eachFunction(u, func(fn *cast.FuncDecl) {
		rewriteExprsTyped(u, fn, func(env *typeEnv, e cast.Expr) cast.Expr {
			call, ok := e.(*cast.Call)
			if !ok {
				return e
			}
			mem, ok := call.Fun.(*cast.Member)
			if !ok {
				return e
			}
			il, ok := mem.X.(*cast.InitList)
			if !ok || il.Type == nil {
				return e
			}
			stct, ok := il.Type.(*ctypes.Struct)
			if !ok || stct.Tag != tag {
				return e
			}
			updated++
			return &cast.Call{P: call.P,
				Fun:  &cast.Ident{P: call.P, Name: tag + "_" + mem.Field},
				Args: append(append([]cast.Expr{}, il.Elems...), call.Args...)}
		})
	})
	if updated == 0 {
		return fmt.Errorf("inst_update: no %s temporaries to retarget", tag)
	}
	// Remove the struct declaration when nothing references its type.
	if !typeStillUsed(u, tag) {
		u.RemoveDecl(sd)
		delete(u.Structs, tag)
	}
	return nil
}

func typeStillUsed(u *cast.Unit, tag string) bool {
	used := false
	check := func(t ctypes.Type) {
		for t != nil {
			if st, ok := t.(*ctypes.Struct); ok {
				if st.Tag == tag {
					used = true
				}
				return
			}
			switch x := t.(type) {
			case ctypes.Pointer:
				t = x.Elem
			case ctypes.Array:
				t = x.Elem
			case ctypes.Ref:
				t = x.Elem
			case ctypes.Named:
				t = x.Underlying
			default:
				return
			}
		}
	}
	cast.Inspect(u, func(n cast.Node) bool {
		switch x := n.(type) {
		case *cast.DeclStmt:
			check(x.Type)
		case *cast.VarDecl:
			check(x.Type)
		case *cast.Cast:
			check(x.To)
		case *cast.FuncDecl:
			check(x.Ret)
			for _, p := range x.Params {
				check(p.Type)
			}
		case *cast.InitList:
			check(x.Type)
		}
		return true
	})
	return used
}

// ---------------------------------------------------------------------------
// inst_static($s1:struct, $v1:name): replace struct temporaries with named
// static instances. An alternative tail for the constructor branch.

func instInstStatic(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	tag := d.Subject
	sd := u.StructOf(tag)
	if sd == nil || !sd.HasCtor {
		return nil
	}
	return []Edit{{
		Template: "inst_static",
		Class:    hls.ClassStructUnion,
		Target:   tag,
		Note:     "hoist temporaries to static instances",
		Apply:    func(u *cast.Unit) error { return applyInstStatic(u, tag) },
	}}
}

func applyInstStatic(u *cast.Unit, tag string) error {
	sd := u.StructOf(tag)
	if sd == nil {
		return fmt.Errorf("inst_static: struct %q not found", tag)
	}
	count := 0
	eachFunction(u, func(fn *cast.FuncDecl) {
		if fn.Body == nil {
			return
		}
		var rewritten []cast.Stmt
		for _, s := range fn.Body.Stmts {
			es, ok := s.(*cast.ExprStmt)
			if !ok {
				rewritten = append(rewritten, s)
				continue
			}
			call, ok := es.X.(*cast.Call)
			if !ok {
				rewritten = append(rewritten, s)
				continue
			}
			mem, ok := call.Fun.(*cast.Member)
			if !ok {
				rewritten = append(rewritten, s)
				continue
			}
			il, ok := mem.X.(*cast.InitList)
			if !ok || il.Type == nil {
				rewritten = append(rewritten, s)
				continue
			}
			stct, ok := il.Type.(*ctypes.Struct)
			if !ok || stct.Tag != tag {
				rewritten = append(rewritten, s)
				continue
			}
			count++
			instName := fmt.Sprintf("%s_inst%d", tag, count)
			rewritten = append(rewritten,
				&cast.DeclStmt{P: es.P, Name: instName, Type: stct, Init: il, Static: true},
				&cast.ExprStmt{P: es.P, X: &cast.Call{P: call.P,
					Fun:  &cast.Member{P: call.P, X: &cast.Ident{P: call.P, Name: instName}, Field: mem.Field},
					Args: call.Args}})
		}
		fn.Body.Stmts = rewritten
	})
	if count == 0 {
		return fmt.Errorf("inst_static: no %s temporaries found", tag)
	}
	return nil
}
