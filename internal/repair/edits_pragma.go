package repair

import (
	"fmt"
	"sort"
	"strings"

	"github.com/hetero/heterogen/internal/cast"
	"github.com/hetero/heterogen/internal/ctoken"
	"github.com/hetero/heterogen/internal/ctypes"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/interp"
)

// ---------------------------------------------------------------------------
// Dataflow Optimization

// segment($a1:arr): fix a double-consumed buffer in a dataflow region by
// duplicating it — the post-595161 repair of segmenting input data so each
// process owns its buffer.
func instSegmentBuffer(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	name := d.Subject
	if name == "" {
		return nil
	}
	return []Edit{{
		Template: "segment",
		Class:    hls.ClassDataflow,
		Target:   name,
		Note:     "duplicate buffer per consumer",
		Apply:    func(u *cast.Unit) error { return applySegmentBuffer(u, name) },
	}}
}

func applySegmentBuffer(u *cast.Unit, name string) error {
	for _, fn := range u.Funcs() {
		if fn.Body == nil || !fnHasDataflow(fn) {
			continue
		}
		// Find consumer calls using the buffer.
		var uses []*cast.Call
		for _, s := range fn.Body.Stmts {
			es, ok := s.(*cast.ExprStmt)
			if !ok {
				continue
			}
			call, ok := es.X.(*cast.Call)
			if !ok {
				continue
			}
			for _, a := range call.Args {
				if id, ok := a.(*cast.Ident); ok && id.Name == name {
					uses = append(uses, call)
					break
				}
			}
		}
		if len(uses) < 2 {
			continue
		}
		size, elem, ok := bufferShape(u, fn, name)
		if !ok {
			return fmt.Errorf("segment: cannot determine shape of %q", name)
		}
		// For each extra consumer k >= 1: declare name_segK and a copy
		// loop, then retarget that consumer.
		var newStmts []cast.Stmt
		for k := 1; k < len(uses); k++ {
			dup := fmt.Sprintf("%s_seg%d", name, k)
			newStmts = append(newStmts, &cast.DeclStmt{
				Name: dup, Type: ctypes.Array{Elem: elem, Len: size},
			})
			iv := &cast.Ident{Name: "_i_" + dup}
			newStmts = append(newStmts, &cast.For{
				Init: &cast.DeclStmt{Name: iv.Name, Type: ctypes.IntT,
					Init: &cast.IntLit{Value: 0, Text: "0"}},
				Cond: &cast.Binary{Op: ctoken.LSS, L: iv,
					R: &cast.IntLit{Value: int64(size), Text: fmt.Sprintf("%d", size)}},
				Post: &cast.Postfix{Op: ctoken.INC, X: iv},
				Body: &cast.Block{Stmts: []cast.Stmt{
					&cast.ExprStmt{X: &cast.Assign{Op: ctoken.ASSIGN,
						L: &cast.Index{X: &cast.Ident{Name: dup}, Idx: iv},
						R: &cast.Index{X: &cast.Ident{Name: name}, Idx: iv},
					}},
				}},
				BranchID: -1,
			})
			for ai, a := range uses[k].Args {
				if id, ok := a.(*cast.Ident); ok && id.Name == name {
					uses[k].Args[ai] = &cast.Ident{Name: dup}
				}
			}
		}
		// Insert the copies at the head of the body (before the processes).
		fn.Body.Stmts = append(newStmts, fn.Body.Stmts...)
		cast.NumberBranches(u)
		return nil
	}
	return fmt.Errorf("segment: no dataflow region double-consumes %q", name)
}

// bufferShape resolves the element type and size of an array visible in fn.
func bufferShape(u *cast.Unit, fn *cast.FuncDecl, name string) (int, ctypes.Type, bool) {
	var found ctypes.Array
	ok := false
	consider := func(t ctypes.Type) {
		if a, isArr := ctypes.Resolve(t).(ctypes.Array); isArr && a.Len > 0 {
			found, ok = a, true
		}
	}
	for _, p := range fn.Params {
		if p.Name == name {
			consider(p.Type)
		}
	}
	cast.Inspect(fn, func(n cast.Node) bool {
		if d, isDecl := n.(*cast.DeclStmt); isDecl && d.Name == name {
			consider(d.Type)
		}
		return true
	})
	if v := u.Var(name); v != nil {
		consider(v.Type)
	}
	if !ok {
		return 0, nil, false
	}
	return found.Len, found.Elem, true
}

func fnHasDataflow(fn *cast.FuncDecl) bool {
	for _, p := range fn.Pragmas {
		if interp.ParsePragma(p.Text).Kind == interp.PragmaDataflow {
			return true
		}
	}
	return false
}

// delete_pragma: drop the dataflow pragma entirely (fixes the error at the
// cost of the optimization — a valid but lower-fitness repair branch).
func instDeleteDataflow(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	var out []Edit
	for _, fn := range u.Funcs() {
		if !fnHasDataflow(fn) {
			continue
		}
		name := fn.Name
		out = append(out, Edit{
			Template: "delete_pragma",
			Class:    hls.ClassDataflow,
			Target:   name,
			Note:     "remove dataflow",
			Scope:    []string{name},
			Apply: func(u *cast.Unit) error {
				fn := u.Func(name)
				if fn == nil {
					return fmt.Errorf("delete_pragma: %q missing", name)
				}
				kept := fn.Pragmas[:0]
				removed := false
				for _, p := range fn.Pragmas {
					if interp.ParsePragma(p.Text).Kind == interp.PragmaDataflow {
						removed = true
						continue
					}
					kept = append(kept, p)
				}
				fn.Pragmas = kept
				if !removed {
					return fmt.Errorf("delete_pragma: %q has no dataflow pragma", name)
				}
				return nil
			},
		})
	}
	return out
}

// insert_pragma: add a dataflow pragma to the top function when its body
// is a chain of process calls (a performance edit).
func instInsertDataflow(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	var out []Edit
	for _, fn := range u.Funcs() {
		if fn.Body == nil || fnHasDataflow(fn) {
			continue
		}
		calls := 0
		for _, s := range fn.Body.Stmts {
			if es, ok := s.(*cast.ExprStmt); ok {
				if _, ok := es.X.(*cast.Call); ok {
					calls++
				}
			}
		}
		if calls < 2 {
			continue
		}
		name := fn.Name
		out = append(out, Edit{
			Template: "insert_pragma",
			Class:    hls.ClassDataflow,
			Target:   name,
			Note:     "insert dataflow",
			Scope:    []string{name},
			Apply: func(u *cast.Unit) error {
				fn := u.Func(name)
				if fn == nil {
					return fmt.Errorf("insert_pragma: %q missing", name)
				}
				if fnHasDataflow(fn) {
					return fmt.Errorf("insert_pragma: %q already has dataflow", name)
				}
				fn.Pragmas = append(fn.Pragmas, &cast.Pragma{Text: "HLS dataflow"})
				return nil
			},
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Loop Parallelization

// loopSite pairs a loop with its enclosing function for editing. Loops
// are indexed by walk ordinal across both for and while loops.
type loopSite struct {
	fn      string
	idx     int // loop ordinal within the function (walk order)
	trip    int // -1 for data-dependent loops
	isWhile bool
	arrs    []string // arrays indexed in the loop body
}

func loopSites(u *cast.Unit) []loopSite {
	var sites []loopSite
	eachFunction(u, func(fn *cast.FuncDecl) {
		ord := 0
		cast.Inspect(fn.Body, func(n cast.Node) bool {
			switch l := n.(type) {
			case *cast.For:
				site := loopSite{fn: fn.Name, idx: ord, trip: staticTrip(l)}
				site.arrs = arraysIndexed(l.Body)
				sites = append(sites, site)
				ord++
			case *cast.While:
				site := loopSite{fn: fn.Name, idx: ord, trip: -1, isWhile: true}
				site.arrs = arraysIndexed(l.Body)
				sites = append(sites, site)
				ord++
			}
			return true
		})
	})
	return sites
}

// nthLoop returns the n-th loop of a function in walk order: the For
// pointer or the While pointer (exactly one is non-nil).
func nthLoop(u *cast.Unit, fnName string, idx int) (*cast.For, *cast.While) {
	fn := findFunc(u, fnName)
	if fn == nil || fn.Body == nil {
		return nil, nil
	}
	ord := 0
	var forFound *cast.For
	var whileFound *cast.While
	cast.Inspect(fn.Body, func(n cast.Node) bool {
		switch l := n.(type) {
		case *cast.For:
			if ord == idx {
				forFound = l
			}
			ord++
		case *cast.While:
			if ord == idx {
				whileFound = l
			}
			ord++
		}
		return true
	})
	return forFound, whileFound
}

// findFunc resolves plain functions and struct methods by name.
func findFunc(u *cast.Unit, name string) *cast.FuncDecl {
	return u.Func(name)
}

// nthFor returns the n-th loop when it is a for loop.
func nthFor(u *cast.Unit, fnName string, idx int) *cast.For {
	f, _ := nthLoop(u, fnName, idx)
	return f
}

func arraysIndexed(body cast.Stmt) []string {
	seen := map[string]bool{}
	var arrs []string
	cast.Inspect(body, func(n cast.Node) bool {
		if ix, ok := n.(*cast.Index); ok {
			if id, ok := ix.X.(*cast.Ident); ok && !seen[id.Name] {
				seen[id.Name] = true
				arrs = append(arrs, id.Name)
			}
		}
		return true
	})
	sort.Strings(arrs)
	return arrs
}

func staticTrip(f *cast.For) int {
	cond, ok := f.Cond.(*cast.Binary)
	if !ok {
		return -1
	}
	lit, ok := cond.R.(*cast.IntLit)
	if !ok {
		return -1
	}
	if cond.Op == ctoken.LSS {
		return int(lit.Value)
	}
	if cond.Op == ctoken.LEQ {
		return int(lit.Value + 1)
	}
	return -1
}

// explore($p1:pragma, $l1:loop): the pragma-exploration template. For a
// diagnosed loop problem it proposes factor adjustments; as a performance
// edit it proposes pipeline/unroll/array_partition combinations on counted
// loops.
func instExplorePragmas(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	var out []Edit
	for _, site := range loopSites(u) {
		site := site
		if site.trip > 1 {
			// Counted loop: pipeline + unroll + partition. Factors are
			// speculative {8,4,2} plus exact divisors — non-dividing
			// factors are what the style checker exists to reject early.
			for _, f := range exploreFactors(site.trip) {
				f := f
				key := fmt.Sprintf("explore:%s#%d:f%d", site.fn, site.idx, f)
				if st.Applied[key] {
					continue
				}
				out = append(out, Edit{
					Template: "explore",
					Class:    hls.ClassLoopParallel,
					Target:   fmt.Sprintf("%s#%d", site.fn, site.idx),
					Note:     fmt.Sprintf("pipeline+unroll factor=%d, partition arrays", f),
					Scope:    []string{site.fn},
					Apply:    func(u *cast.Unit) error { return applyExplore(u, site, f) },
					OnAccept: func(s *State) { s.Applied[key] = true },
				})
			}
			continue
		}
		// Data-dependent loop (including whiles): pipeline only.
		key := fmt.Sprintf("explore:%s#%d:pipe", site.fn, site.idx)
		if st.Applied[key] {
			continue
		}
		out = append(out, Edit{
			Template: "explore",
			Class:    hls.ClassLoopParallel,
			Target:   fmt.Sprintf("%s#%d", site.fn, site.idx),
			Note:     "pipeline II=1",
			Scope:    []string{site.fn},
			Apply:    func(u *cast.Unit) error { return applyExplore(u, site, 0) },
			OnAccept: func(s *State) { s.Applied[key] = true },
		})
	}
	return out
}

// exploreFactors returns the factors to try for a counted loop: the
// speculative default 8 (which the style checker rejects cheaply when an
// indexed array cannot be partitioned that way) plus the largest exact
// divisor of the trip count up to 8. Keeping the list short keeps the
// per-loop compilation bill bounded.
func exploreFactors(trip int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(f int) {
		if f >= 2 && f <= trip && !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	add(8)
	for f := 8; f >= 2; f-- {
		if trip%f == 0 {
			add(f)
			break
		}
	}
	return out
}

func applyExplore(u *cast.Unit, site loopSite, factor int) error {
	forLoop, whileLoop := nthLoop(u, site.fn, site.idx)
	fn := u.Func(site.fn)
	if fn == nil {
		return fmt.Errorf("explore: function %q missing", site.fn)
	}
	if whileLoop != nil {
		whileLoop.Pragmas = []*cast.Pragma{{Text: "HLS pipeline II=1"}}
		return nil
	}
	if forLoop == nil {
		return fmt.Errorf("explore: loop %s#%d missing", site.fn, site.idx)
	}
	if factor <= 1 {
		forLoop.Pragmas = []*cast.Pragma{{Text: "HLS pipeline II=1"}}
		return nil
	}
	// Replace loop pragmas with the explored configuration.
	forLoop.Pragmas = []*cast.Pragma{
		{Text: "HLS pipeline II=1"},
		{Text: fmt.Sprintf("HLS unroll factor=%d", factor)},
	}
	// Partition every array the loop indexes. Factors that do not divide
	// an array are rejected cheaply by the style checker.
	for _, arr := range site.arrs {
		if _, _, ok := bufferShape(u, fn, arr); !ok {
			continue
		}
		text := fmt.Sprintf("HLS array_partition variable=%s factor=%d", arr, factor)
		if !hasPragmaText(fn, text) {
			fn.Pragmas = append(fn.Pragmas, &cast.Pragma{Text: text})
		}
	}
	return nil
}

// funcNames lists every function declaration's name — the widest valid
// Scope for body/pragma-only edits that sweep the whole program.
func funcNames(u *cast.Unit) []string {
	seen := map[string]bool{}
	var out []string
	for _, d := range u.Decls {
		if fn, ok := d.(*cast.FuncDecl); ok && !seen[fn.Name] {
			seen[fn.Name] = true
			out = append(out, fn.Name)
		}
	}
	return out
}

func hasPragmaText(fn *cast.FuncDecl, text string) bool {
	for _, p := range fn.Pragmas {
		if p.Text == text {
			return true
		}
	}
	return false
}

// instExploreAll emits one candidate that pragmatizes every loop of the
// program at once (the "pragma sweep" an HLS engineer performs). A
// dataflow region's latency is the maximum of its overlapped processes,
// so speeding one process at a time shows no end-to-end gain — the sweep
// lands the improvements jointly. Factors are chosen style-safely: the
// largest divisor of the trip count that also divides every indexed
// array, falling back to pipeline-only.
func instExploreAll(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	sites := loopSites(u)
	if len(sites) == 0 {
		return nil
	}
	if st.Applied["explore_all@program"] {
		return nil
	}
	return []Edit{{
		Template: "explore_all",
		Class:    hls.ClassLoopParallel,
		Target:   "program",
		Note:     "pragma sweep over all loops",
		Scope:    funcNames(u),
		Apply: func(u *cast.Unit) error {
			applied := 0
			for _, site := range loopSites(u) {
				f := safeFactor(u, site)
				if err := applyExplore(u, site, f); err == nil {
					applied++
				}
			}
			if applied == 0 {
				return fmt.Errorf("explore_all: no loops to pragmatize")
			}
			return nil
		},
	}}
}

// safeFactor picks the largest unroll factor (<= 8) that divides the trip
// count and every partitionable array the loop indexes; 0 means
// pipeline-only.
func safeFactor(u *cast.Unit, site loopSite) int {
	if site.isWhile || site.trip <= 1 {
		return 0
	}
	fn := u.Func(site.fn)
	if fn == nil {
		return 0
	}
	for f := 8; f >= 2; f-- {
		if site.trip%f != 0 {
			continue
		}
		ok := true
		for _, arr := range site.arrs {
			if size, _, known := bufferShape(u, fn, arr); known && size%f != 0 {
				ok = false
				break
			}
		}
		if ok {
			return f
		}
	}
	return 0
}

// index_static($l1:loop): give a data-dependent loop an explicit static
// bound: "for (i = 0; i < n; i++)" with n <= N becomes a fixed-trip loop
// guarded by the original condition, which synthesis can schedule.
func instIndexStatic(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	var out []Edit
	for _, site := range loopSites(u) {
		if site.trip > 0 || site.isWhile {
			continue // already static, or not a counted loop at all
		}
		site := site
		bound := boundHint(u, site)
		if bound <= 0 {
			continue
		}
		out = append(out, Edit{
			Template: "index_static",
			Class:    hls.ClassLoopParallel,
			Target:   fmt.Sprintf("%s#%d", site.fn, site.idx),
			Note:     fmt.Sprintf("tripcount=%d with guard", bound),
			Apply:    func(u *cast.Unit) error { return applyIndexStatic(u, site, bound) },
		})
	}
	return out
}

// boundHint guesses a static bound for a data-dependent loop from the
// arrays it indexes.
func boundHint(u *cast.Unit, site loopSite) int {
	fn := u.Func(site.fn)
	if fn == nil {
		return 0
	}
	max := 0
	for _, arr := range site.arrs {
		if size, _, ok := bufferShape(u, fn, arr); ok && size > max {
			max = size
		}
	}
	return max
}

// applyIndexStatic rewrites "for (init; i < n; post) body" into
// "for (init; i < BOUND; post) { if (!(i < n)) break; body }".
func applyIndexStatic(u *cast.Unit, site loopSite, bound int) error {
	loop := nthFor(u, site.fn, site.idx)
	if loop == nil {
		return fmt.Errorf("index_static: loop %s#%d missing", site.fn, site.idx)
	}
	cond, ok := loop.Cond.(*cast.Binary)
	if !ok {
		return fmt.Errorf("index_static: loop %s#%d has no comparable bound", site.fn, site.idx)
	}
	guard := &cast.If{
		Cond:     &cast.Unary{Op: ctoken.NOT, X: cast.CloneExpr(cond)},
		Then:     &cast.Break{},
		BranchID: -1,
	}
	body, ok := loop.Body.(*cast.Block)
	if !ok {
		body = &cast.Block{Stmts: []cast.Stmt{loop.Body}}
	}
	body.Stmts = append([]cast.Stmt{guard}, body.Stmts...)
	loop.Body = body
	loop.Cond = &cast.Binary{Op: ctoken.LSS, L: cast.CloneExpr(cond.L),
		R: &cast.IntLit{Value: int64(bound), Text: fmt.Sprintf("%d", bound)}}
	cast.NumberBranches(u)
	return nil
}

// delete_loop_pragma: strip the offending loop pragmas (repairs the error,
// gives up the optimization).
func instDeleteLoopPragma(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	var out []Edit
	for _, site := range loopSites(u) {
		site := site
		forLoop, whileLoop := nthLoop(u, site.fn, site.idx)
		hasPragmas := (forLoop != nil && len(forLoop.Pragmas) > 0) ||
			(whileLoop != nil && len(whileLoop.Pragmas) > 0)
		if !hasPragmas {
			continue
		}
		out = append(out, Edit{
			Template: "delete_loop_pragma",
			Class:    hls.ClassLoopParallel,
			Target:   fmt.Sprintf("%s#%d", site.fn, site.idx),
			Note:     "remove loop pragmas",
			Scope:    []string{site.fn},
			Apply: func(u *cast.Unit) error {
				f, w := nthLoop(u, site.fn, site.idx)
				switch {
				case f != nil && len(f.Pragmas) > 0:
					f.Pragmas = nil
				case w != nil && len(w.Pragmas) > 0:
					w.Pragmas = nil
				default:
					return fmt.Errorf("delete_loop_pragma: nothing to delete at %s#%d", site.fn, site.idx)
				}
				return nil
			},
		})
	}
	return out
}

// ---------------------------------------------------------------------------
// Top Function

// top_rename: align a mismatching "#pragma HLS top name=X" with the
// configured top function.
func instTopRename(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	if d.Subject == "" {
		return nil
	}
	wrong := d.Subject
	return []Edit{{
		Template: "top_rename",
		Class:    hls.ClassTopFunction,
		Target:   wrong,
		Note:     "fix top name",
		Apply: func(u *cast.Unit) error {
			fixed := false
			fix := func(text string) (string, bool) {
				dir := interp.ParsePragma(text)
				if dir.Kind == interp.PragmaTop && dir.Name == wrong {
					return strings.Replace(text, "name="+wrong, "name="+topOf(u), 1), true
				}
				return text, false
			}
			for _, dd := range u.Decls {
				switch x := dd.(type) {
				case *cast.PragmaDecl:
					if t, ok := fix(x.Text); ok {
						x.Text = t
						fixed = true
					}
				case *cast.FuncDecl:
					for _, p := range x.Pragmas {
						if t, ok := fix(p.Text); ok {
							p.Text = t
							fixed = true
						}
					}
				}
			}
			if !fixed {
				return fmt.Errorf("top_rename: no top pragma names %q", wrong)
			}
			return nil
		},
	}}
}

// topOf guesses the intended top function: the last defined non-helper
// function (designs conventionally put the top last).
func topOf(u *cast.Unit) string {
	fns := u.Funcs()
	if len(fns) == 0 {
		return "top"
	}
	return fns[len(fns)-1].Name
}

// top_delete_pragma: drop the conflicting top directive so the tool
// configuration wins.
func instTopDeletePragma(u *cast.Unit, d hls.Diagnostic, st *State) []Edit {
	if d.Subject == "" {
		return nil
	}
	wrong := d.Subject
	return []Edit{{
		Template: "top_delete_pragma",
		Class:    hls.ClassTopFunction,
		Target:   wrong,
		Note:     "delete top pragma",
		// The edit filters the pragma list of every function declaration
		// (and drops top-level PragmaDecls, which only rebuilds the
		// clone's own Decls slice), so the scope is all functions.
		Scope: funcNames(u),
		Apply: func(u *cast.Unit) error {
			removed := false
			var kept []cast.Decl
			for _, dd := range u.Decls {
				if pd, ok := dd.(*cast.PragmaDecl); ok {
					dir := interp.ParsePragma(pd.Text)
					if dir.Kind == interp.PragmaTop && dir.Name == wrong {
						removed = true
						continue
					}
				}
				kept = append(kept, dd)
			}
			u.Decls = kept
			for _, dd := range u.Decls {
				if fn, ok := dd.(*cast.FuncDecl); ok {
					filtered := fn.Pragmas[:0]
					for _, p := range fn.Pragmas {
						dir := interp.ParsePragma(p.Text)
						if dir.Kind == interp.PragmaTop && dir.Name == wrong {
							removed = true
							continue
						}
						filtered = append(filtered, p)
					}
					fn.Pragmas = filtered
				}
			}
			if !removed {
				return fmt.Errorf("top_delete_pragma: no top pragma names %q", wrong)
			}
			return nil
		},
	}}
}
