package repair

import (
	"strings"
	"testing"

	"github.com/hetero/heterogen/internal/cparser"
)

// The transforms must refuse shapes they cannot handle soundly, returning
// errors (dropped candidates) rather than corrupting programs.

func TestStackTransRejectsValueReturningRecursion(t *testing.T) {
	u := cparser.MustParse(`
int fib(int n) {
    if (n < 2) { return n; }
    return fib(n - 1) + fib(n - 2);
}`)
	err := applyStackTrans(u, "fib", 32)
	if err == nil || !strings.Contains(err.Error(), "void") {
		t.Errorf("want void-only rejection, got %v", err)
	}
}

func TestStackTransRejectsNestedRecursiveCalls(t *testing.T) {
	u := cparser.MustParse(`
int g;
void walk(int n) {
    if (n <= 0) { return; }
    for (int i = 0; i < 2; i++) {
        walk(n - 1);
    }
}`)
	err := applyStackTrans(u, "walk", 32)
	if err == nil || !strings.Contains(err.Error(), "top-level") {
		t.Errorf("want nested-call rejection, got %v", err)
	}
}

func TestStackTransRejectsReturnInsideLoop(t *testing.T) {
	u := cparser.MustParse(`
int g;
void walk(int n) {
    for (int i = 0; i < 3; i++) {
        if (i == n) { return; }
    }
    g = g + 1;
    walk(n - 1);
}`)
	err := applyStackTrans(u, "walk", 32)
	if err == nil || !strings.Contains(err.Error(), "inside a loop") {
		t.Errorf("want return-in-loop rejection, got %v", err)
	}
}

func TestStackTransRejectsMutatedArrayParam(t *testing.T) {
	u := cparser.MustParse(`
void walk(int a[8], int n) {
    if (n <= 0) { return; }
    walk(a, n - 1);
}
void other(int a[8], int b[8], int n) {
    if (n <= 0) { return; }
    other(b, a, n - 1);
}`)
	if err := applyStackTrans(u, "walk", 32); err != nil {
		t.Errorf("pass-through array param should be accepted: %v", err)
	}
	err := applyStackTrans(u, "other", 32)
	if err == nil || !strings.Contains(err.Error(), "passed through unchanged") {
		t.Errorf("want swapped-array rejection, got %v", err)
	}
}

func TestStackTransRejectsNonRecursiveFunction(t *testing.T) {
	u := cparser.MustParse(`void f(int x) { x = x + 1; }`)
	if err := applyStackTrans(u, "f", 32); err == nil {
		t.Error("non-recursive function must be rejected")
	}
	if err := applyStackTrans(u, "missing", 32); err == nil {
		t.Error("unknown function must be rejected")
	}
}

func TestPointerRemovalRequiresPool(t *testing.T) {
	u := cparser.MustParse(`
struct Node { int v; struct Node *next; };
struct Node *head;
void f() { head = 0; }`)
	err := applyPointerRemoval(u, "Node")
	if err == nil || !strings.Contains(err.Error(), "insert first") {
		t.Errorf("want missing-pool rejection, got %v", err)
	}
}

func TestPointerVarRejectsReassignedCursor(t *testing.T) {
	u := cparser.MustParse(`
void f(int a[8]) {
    int *p = &a[0];
    p = &a[4];
    p[0] = 1;
}`)
	err := applyPointerVarRemoval(u, "p")
	if err == nil || !strings.Contains(err.Error(), "reassigned") {
		t.Errorf("want reassignment rejection, got %v", err)
	}
}

func TestPointerVarRejectsEscapingUse(t *testing.T) {
	u := cparser.MustParse(`
void sink(int *q) { q[0] = 1; }
void f(int a[8]) {
    int *p = &a[0];
    sink(p);
}`)
	err := applyPointerVarRemoval(u, "p")
	if err == nil || !strings.Contains(err.Error(), "unrewritable") {
		t.Errorf("want escaping-use rejection, got %v", err)
	}
}

func TestSegmentRequiresDataflowDoubleConsumer(t *testing.T) {
	u := cparser.MustParse(`
void f(int a[8], int b[8]) {
    for (int i = 0; i < 8; i++) { b[i] = a[i]; }
}`)
	err := applySegmentBuffer(u, "a")
	if err == nil || !strings.Contains(err.Error(), "dataflow") {
		t.Errorf("want no-dataflow rejection, got %v", err)
	}
}

func TestConstructorRejectsDuplicate(t *testing.T) {
	u := cparser.MustParse(`
struct S {
    int x;
    S(int a) : x(a) {}
};
void f() { }`)
	err := applyConstructor(u, "S")
	if err == nil || !strings.Contains(err.Error(), "already") {
		t.Errorf("want duplicate-ctor rejection, got %v", err)
	}
}

func TestFlattenUnknownStruct(t *testing.T) {
	u := cparser.MustParse(`void f() { }`)
	if err := applyFlatten(u, "Ghost"); err == nil {
		t.Error("unknown struct must be rejected")
	}
	if err := applyInstUpdate(u, "Ghost"); err == nil {
		t.Error("inst_update on unknown struct must be rejected")
	}
}
