package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"github.com/hetero/heterogen/internal/core"
	"github.com/hetero/heterogen/internal/fuzz"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/hls"
	"github.com/hetero/heterogen/internal/hls/sim"
	"github.com/hetero/heterogen/internal/repair"
)

// Kind selects which pipeline entry point a job runs.
type Kind string

const (
	// KindTranspile runs the full pipeline (core.RunContext): test
	// generation, bitwidth profiling, repair, final HLS source.
	KindTranspile Kind = "transpile"
	// KindCheck runs only the synthesizability checker (core.CheckWith).
	KindCheck Kind = "check"
	// KindRepair runs profiling plus the repair search with no test
	// generation (core.RepairStageContext).
	KindRepair Kind = "repair"
	// KindFuzz runs only test generation (fuzz.RunContext).
	KindFuzz Kind = "fuzz"
)

// Kinds lists every job kind.
func Kinds() []Kind {
	return []Kind{KindTranspile, KindCheck, KindRepair, KindFuzz}
}

// ValidKind reports whether k names a job kind.
func ValidKind(k Kind) bool {
	for _, v := range Kinds() {
		if k == v {
			return true
		}
	}
	return false
}

// Request is the POST /v1/jobs body.
type Request struct {
	// Kind selects the pipeline entry point: transpile | check | repair
	// | fuzz.
	Kind Kind `json:"kind"`
	// Source is the C program text.
	Source string `json:"source"`
	// Kernel names the function to operate on (the design's top
	// function). Required for every kind.
	Kernel string `json:"kernel"`
	// Host optionally names a host entry point whose kernel calls seed
	// the fuzzer (transpile and fuzz kinds).
	Host string `json:"host,omitempty"`
	// Seed overrides the fuzzer's PRNG seed (0 keeps the default).
	Seed int64 `json:"seed,omitempty"`
	// Targets selects the HLS backends/devices the job runs against,
	// as "backend:device" specs (bare backend or device names are also
	// accepted — see hls.ParseTarget). Empty keeps the legacy
	// single-default-target behavior. An unknown spec rejects the
	// submission with 400.
	Targets []string `json:"targets,omitempty"`
	// Budget bounds the job; zero fields take server defaults and every
	// field is clamped by server limits.
	Budget Budget `json:"budget"`
}

// State is a job's lifecycle position: queued → running → one of
// done | failed | cancelled.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Job is one admitted request and everything that happens to it.
type Job struct {
	id     string
	kind   Kind
	client string
	corr   string
	budget Budget
	req    Request
	// targets holds the resolved canonical target set (empty = legacy
	// single-target behavior), validated at submission time.
	targets []hls.Target

	events *eventLog
	ctx    context.Context
	cancel context.CancelFunc

	mu       sync.Mutex
	state    State
	created  time.Time
	started  time.Time
	finished time.Time
	result   *Result
	errMsg   string
	failure  *guard.StageFailure
	// resumed marks a job restored from the write-ahead journal after a
	// restart (terminal re-report or re-enqueued interrupted job).
	resumed bool
	// userCancelled records an explicit DELETE; it outranks a drain
	// stop when deciding the job's journaled fate.
	userCancelled bool
	// drainStop marks a running job the drain deadline stopped: it is
	// journaled "checkpointed" (resumable), not cancelled.
	drainStop bool
}

// ID returns the job's server-assigned identifier.
func (j *Job) ID() string { return j.id }

// Status is the JSON representation of a job returned by the API.
type Status struct {
	ID   string `json:"id"`
	Kind Kind   `json:"kind"`
	// CorrelationID is the caller-supplied request id (X-Correlation-ID)
	// threaded through logs and the retained trace; defaults to ID.
	CorrelationID string `json:"correlation_id,omitempty"`
	State         State  `json:"state"`
	Client        string `json:"client,omitempty"`
	// Targets is the resolved canonical target set the job runs
	// against ("backend:device" per entry); absent for legacy
	// single-target jobs.
	Targets []string `json:"targets,omitempty"`
	// Budget is the effective (clamped) budget the job runs under.
	Budget Budget `json:"budget"`
	// Events is the number of observability events buffered so far
	// (GET /v1/jobs/{id}/events streams them).
	Events int `json:"events"`
	// CreatedMS / StartedMS / FinishedMS are Unix milliseconds.
	CreatedMS  int64 `json:"created_ms"`
	StartedMS  int64 `json:"started_ms,omitempty"`
	FinishedMS int64 `json:"finished_ms,omitempty"`
	// Resumed marks a job restored from the write-ahead journal after a
	// daemon restart — either re-reported terminal history or a
	// re-enqueued interrupted job (whose repair search resumes from its
	// checkpoint with a byte-identical result).
	Resumed bool `json:"resumed,omitempty"`
	// Error is the failure description when State is failed.
	Error string `json:"error,omitempty"`
	// Failure is the typed contained-stage verdict when the failure was
	// a guard containment (panic, deadline, corrupt output, injected
	// fault) rather than a domain error.
	Failure *guard.StageFailure `json:"failure,omitempty"`
	// Result is present once the job is terminal (for cancelled jobs it
	// is the best-so-far partial outcome, marked Partial).
	Result *Result `json:"result,omitempty"`
}

// Status snapshots the job.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:            j.id,
		Kind:          j.kind,
		CorrelationID: j.corr,
		State:         j.state,
		Client:        j.client,
		Targets:       targetNames(j.targets),
		Budget:        j.budget,
		Events:        j.events.Len(),
		CreatedMS:     j.created.UnixMilli(),
		Resumed:       j.resumed,
		Error:         j.errMsg,
		Failure:       j.failure,
		Result:        j.result,
	}
	if !j.started.IsZero() {
		st.StartedMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		st.FinishedMS = j.finished.UnixMilli()
	}
	return st
}

// Result is the kind-specific job outcome. Exactly one payload pointer
// is populated.
type Result struct {
	Transpile *TranspileResult `json:"transpile,omitempty"`
	Check     *CheckResult     `json:"check,omitempty"`
	Repair    *RepairResult    `json:"repair,omitempty"`
	Fuzz      *FuzzResult      `json:"fuzz,omitempty"`
	// Partial marks a best-so-far outcome from a cancelled job.
	Partial bool `json:"partial,omitempty"`
}

// TranspileResult summarizes a full pipeline run.
type TranspileResult struct {
	Source      string        `json:"source"`
	Compatible  bool          `json:"compatible"`
	BehaviorOK  bool          `json:"behavior_ok"`
	Improved    bool          `json:"improved"`
	DeltaLOC    int           `json:"delta_loc"`
	OriginalLOC int           `json:"original_loc"`
	Tests       int           `json:"tests"`
	Coverage    float64       `json:"coverage"`
	CPUMeanMS   float64       `json:"cpu_mean_ms"`
	FPGAMeanMS  float64       `json:"fpga_mean_ms"`
	Resources   sim.Resources `json:"resources"`
	Summary     string        `json:"summary"`
	// PerTarget / Pareto are the multi-target outcome (jobs submitted
	// with a targets field); absent otherwise.
	PerTarget []TargetVerdict `json:"per_target,omitempty"`
	Pareto    []ParetoPoint   `json:"pareto,omitempty"`
}

// CheckResult is the synthesizability verdict.
type CheckResult struct {
	OK          bool         `json:"ok"`
	Errors      int          `json:"errors"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
	// PerTarget holds one verdict per requested target, in the
	// submitted order (jobs submitted with a targets field).
	PerTarget []TargetCheck `json:"per_target,omitempty"`
}

// TargetCheck is one target's synthesizability verdict in its
// backend's diagnostic dialect.
type TargetCheck struct {
	Target      string       `json:"target"`
	OK          bool         `json:"ok"`
	Errors      int          `json:"errors"`
	Diagnostics []Diagnostic `json:"diagnostics,omitempty"`
}

// TargetVerdict is the JSON form of one device's verdict on the final
// program of a multi-target job.
type TargetVerdict struct {
	Target      string   `json:"target"`
	Compatible  bool     `json:"compatible"`
	BehaviorOK  bool     `json:"behavior_ok"`
	Fits        bool     `json:"fits"`
	Over        []string `json:"over,omitempty"`
	Errors      int      `json:"errors"`
	LatencyMS   float64  `json:"latency_ms"`
	Utilization string   `json:"utilization,omitempty"`
}

// ParetoPoint is the JSON form of one non-dominated latency/resource
// trade-off program from a multi-target repair.
type ParetoPoint struct {
	Source    string          `json:"source"`
	Resources sim.Resources   `json:"resources"`
	PerTarget []TargetVerdict `json:"per_target"`
}

// Diagnostic is the JSON form of one checker diagnostic.
type Diagnostic struct {
	Code    string `json:"code"`
	Class   string `json:"class"`
	Message string `json:"message"`
	Subject string `json:"subject,omitempty"`
}

// RepairResult summarizes a repair search.
type RepairResult struct {
	Source         string   `json:"source"`
	Compatible     bool     `json:"compatible"`
	BehaviorOK     bool     `json:"behavior_ok"`
	Improved       bool     `json:"improved"`
	Iterations     int      `json:"iterations"`
	Candidates     int      `json:"candidates"`
	Accepted       int      `json:"accepted"`
	Rejected       int      `json:"rejected"`
	StageFailures  int      `json:"stage_failures"`
	VirtualSeconds float64  `json:"virtual_seconds"`
	EditLog        []string `json:"edit_log,omitempty"`
	Remaining      []string `json:"remaining,omitempty"`
	// PerTarget / Pareto are the multi-target outcome (jobs submitted
	// with a targets field); absent otherwise.
	PerTarget []TargetVerdict `json:"per_target,omitempty"`
	Pareto    []ParetoPoint   `json:"pareto,omitempty"`
}

// FuzzResult summarizes a test-generation campaign.
type FuzzResult struct {
	Tests           int     `json:"tests"`
	Coverage        float64 `json:"coverage"`
	CoveredOutcomes int     `json:"covered_outcomes"`
	TotalOutcomes   int     `json:"total_outcomes"`
	Execs           int     `json:"execs"`
	VirtualSeconds  float64 `json:"virtual_seconds"`
	SeededFromHost  bool    `json:"seeded_from_host"`
	Plateaued       bool    `json:"plateaued"`
	StageFailures   int     `json:"stage_failures"`
}

func transpileResult(r core.Result) *TranspileResult {
	return &TranspileResult{
		Source:      r.Source,
		Compatible:  r.Compatible,
		BehaviorOK:  r.BehaviorOK,
		Improved:    r.Improved,
		DeltaLOC:    r.DeltaLOC,
		OriginalLOC: r.OriginalLOC,
		Tests:       len(r.Campaign.Tests),
		Coverage:    r.Campaign.Coverage,
		CPUMeanMS:   r.CPUMeanMS,
		FPGAMeanMS:  r.FPGAMeanMS,
		Resources:   r.Resources,
		Summary:     r.Summary(),
		PerTarget:   targetVerdicts(r.PerTarget),
		Pareto:      paretoPoints(r.Pareto),
	}
}

// targetNames renders a resolved target set canonically.
func targetNames(ts []hls.Target) []string {
	if len(ts) == 0 {
		return nil
	}
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = t.String()
	}
	return out
}

// targetVerdicts converts the repair layer's verdict table to JSON form.
func targetVerdicts(vs []repair.TargetVerdict) []TargetVerdict {
	if len(vs) == 0 {
		return nil
	}
	out := make([]TargetVerdict, len(vs))
	for i, v := range vs {
		out[i] = TargetVerdict{
			Target:      v.Target,
			Compatible:  v.Compatible,
			BehaviorOK:  v.BehaviorOK,
			Fits:        v.Fits,
			Over:        v.Over,
			Errors:      v.Errors,
			LatencyMS:   v.LatencyMS,
			Utilization: v.Utilization,
		}
	}
	return out
}

// paretoPoints converts the repair layer's Pareto set to JSON form.
func paretoPoints(ps []repair.ParetoPoint) []ParetoPoint {
	if len(ps) == 0 {
		return nil
	}
	out := make([]ParetoPoint, len(ps))
	for i, p := range ps {
		out[i] = ParetoPoint{
			Source:    p.Source,
			Resources: p.Resources,
			PerTarget: targetVerdicts(p.PerTarget),
		}
	}
	return out
}

func checkResult(rep hls.Report) *CheckResult {
	out := &CheckResult{OK: rep.OK, Errors: len(rep.Diags)}
	for _, d := range rep.Diags {
		out.Diagnostics = append(out.Diagnostics, Diagnostic{
			Code:    d.Code,
			Class:   d.Class.String(),
			Message: d.Message,
			Subject: d.Subject,
		})
	}
	return out
}

// checkSetResult renders a per-target check run; the top-level verdict
// aggregates across targets (OK iff every target is clean).
func checkSetResult(reps []core.TargetReport) *CheckResult {
	out := &CheckResult{OK: true}
	for _, tr := range reps {
		tc := TargetCheck{Target: tr.Target, OK: tr.Report.OK, Errors: len(tr.Report.Diags)}
		for _, d := range tr.Report.Diags {
			tc.Diagnostics = append(tc.Diagnostics, Diagnostic{
				Code:    d.Code,
				Class:   d.Class.String(),
				Message: d.Message,
				Subject: d.Subject,
			})
		}
		if !tc.OK {
			out.OK = false
		}
		out.Errors += tc.Errors
		out.PerTarget = append(out.PerTarget, tc)
	}
	return out
}

func repairResult(rr repair.Result, src string) *RepairResult {
	out := &RepairResult{
		Source:         src,
		Compatible:     rr.Compatible,
		BehaviorOK:     rr.BehaviorOK,
		Improved:       rr.Improved,
		Iterations:     rr.Stats.Iterations,
		Candidates:     rr.Stats.CandidatesTried,
		Accepted:       rr.Stats.AcceptedCandidates,
		Rejected:       rr.Stats.RejectedCandidates,
		StageFailures:  rr.Stats.StageFailures,
		VirtualSeconds: rr.Stats.VirtualSeconds,
		EditLog:        rr.Stats.EditLog,
		PerTarget:      targetVerdicts(rr.PerTarget),
		Pareto:         paretoPoints(rr.Pareto),
	}
	for _, d := range rr.Remaining {
		out.Remaining = append(out.Remaining, fmt.Sprintf("[%s] %s", d.Code, d.Message))
	}
	return out
}

func fuzzResult(c fuzz.Campaign) *FuzzResult {
	return &FuzzResult{
		Tests:           len(c.Tests),
		Coverage:        c.Coverage,
		CoveredOutcomes: c.CoveredOutcomes,
		TotalOutcomes:   c.TotalOutcomes,
		Execs:           c.Execs,
		VirtualSeconds:  c.VirtualSeconds,
		SeededFromHost:  c.SeededFromHost,
		Plateaued:       c.Plateaued,
		StageFailures:   c.StageFailures,
	}
}
