package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/hetero/heterogen/internal/chaos"
	"github.com/hetero/heterogen/internal/evalcache"
	"github.com/hetero/heterogen/internal/guard"
	"github.com/hetero/heterogen/internal/subjects"
)

// startServer spins up a Server behind an httptest listener and tears
// both down with the test.
func startServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// postJob submits a job over HTTP and returns the decoded response
// body plus the raw response.
func postJob(t *testing.T, ts *httptest.Server, req Request, client string) (Status, *http.Response) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if client != "" {
		hreq.Header.Set("X-Client-ID", client)
	}
	resp, err := ts.Client().Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decoding submit response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp
}

// getStatus fetches one job status.
func getStatus(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

// awaitTerminal polls a job until it reaches a final state.
func awaitTerminal(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State.Terminal() {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return Status{}
}

// eventBody fetches the full NDJSON event stream of a terminal job.
func eventBody(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET events: status %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func subjectP2(t *testing.T) subjects.Subject {
	t.Helper()
	s, err := subjects.ByID("P2")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// smallBudget keeps e2e jobs fast while exercising every stage.
func smallBudget() Budget {
	return Budget{FuzzExecs: 150, MaxIterations: 32, Workers: 1}
}

// TestJobHappyPath drives one job of every kind over HTTP end to end
// and checks each kind's result payload.
func TestJobHappyPath(t *testing.T) {
	sub := subjectP2(t)
	_, ts := startServer(t, Options{})
	for _, kind := range Kinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			st, resp := postJob(t, ts, Request{
				Kind: kind, Source: sub.Source, Kernel: sub.Kernel, Budget: smallBudget(),
			}, "")
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: status %d", resp.StatusCode)
			}
			if st.State != StateQueued && st.State != StateRunning {
				t.Fatalf("fresh job state = %q", st.State)
			}
			fin := awaitTerminal(t, ts, st.ID)
			if fin.State != StateDone {
				t.Fatalf("state = %q (error %q)", fin.State, fin.Error)
			}
			if fin.Result == nil {
				t.Fatal("terminal job has no result")
			}
			switch kind {
			case KindTranspile:
				r := fin.Result.Transpile
				if r == nil || r.Source == "" || r.Tests == 0 {
					t.Fatalf("transpile result incomplete: %+v", r)
				}
			case KindCheck:
				r := fin.Result.Check
				if r == nil || r.OK || r.Errors == 0 {
					t.Fatalf("check result should report P2's HLS errors: %+v", r)
				}
			case KindRepair:
				r := fin.Result.Repair
				if r == nil || r.Source == "" || r.Candidates == 0 {
					t.Fatalf("repair result incomplete: %+v", r)
				}
			case KindFuzz:
				r := fin.Result.Fuzz
				if r == nil || r.Execs == 0 || r.Tests == 0 {
					t.Fatalf("fuzz result incomplete: %+v", r)
				}
			}
			if fin.Events == 0 && kind != KindCheck {
				t.Errorf("%s job emitted no events", kind)
			}
			if ev := eventBody(t, ts, st.ID); kind != KindCheck && len(ev) == 0 {
				t.Errorf("%s job has an empty event stream", kind)
			}
		})
	}
}

// TestBudgetClampEcho: a request asking beyond the server limits gets
// the clamped effective budget echoed back.
func TestBudgetClampEcho(t *testing.T) {
	sub := subjectP2(t)
	_, ts := startServer(t, Options{
		Limits: Budget{FuzzExecs: 200, MaxIterations: 8, InterpSteps: 1_000_000},
	})
	st, resp := postJob(t, ts, Request{
		Kind: KindFuzz, Source: sub.Source, Kernel: sub.Kernel,
		Budget: Budget{FuzzExecs: 1_000_000_000, MaxIterations: 9999, InterpSteps: 1 << 60},
	}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if st.Budget.FuzzExecs != 200 || st.Budget.MaxIterations != 8 || st.Budget.InterpSteps != 1_000_000 {
		t.Fatalf("budget not clamped: %+v", st.Budget)
	}
	awaitTerminal(t, ts, st.ID)
}

// TestCancelMidRun: cancelling a running job at a commit point leaves
// the best-so-far partial result behind.
func TestCancelMidRun(t *testing.T) {
	sub := subjectP2(t)
	_, ts := startServer(t, Options{})
	st, resp := postJob(t, ts, Request{
		Kind: KindFuzz, Source: sub.Source, Kernel: sub.Kernel,
		Budget: Budget{FuzzExecs: 20_000},
	}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	// Wait until the campaign has demonstrably committed executions,
	// then cancel mid-run.
	deadline := time.Now().Add(60 * time.Second)
	for {
		cur := getStatus(t, ts, st.ID)
		if cur.State == StateRunning && cur.Events >= 5 {
			break
		}
		if cur.State.Terminal() {
			t.Fatalf("job finished before it could be cancelled (state %s)", cur.State)
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started emitting events")
		}
		time.Sleep(2 * time.Millisecond)
	}
	hreq, err := http.NewRequest("DELETE", ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dresp, err := ts.Client().Do(hreq); err != nil {
		t.Fatal(err)
	} else {
		dresp.Body.Close()
		if dresp.StatusCode != http.StatusOK {
			t.Fatalf("DELETE: status %d", dresp.StatusCode)
		}
	}
	fin := awaitTerminal(t, ts, st.ID)
	if fin.State != StateCancelled {
		t.Fatalf("state = %q, want cancelled", fin.State)
	}
	if fin.Result == nil || !fin.Result.Partial || fin.Result.Fuzz == nil {
		t.Fatalf("cancelled job lost its partial result: %+v", fin.Result)
	}
	if fin.Result.Fuzz.Execs == 0 {
		t.Error("partial campaign reports zero executions")
	}
	if fin.Result.Fuzz.Execs >= 20_000 {
		t.Error("campaign ran to completion despite cancellation")
	}
}

// TestQueueFullBackpressure: with the pool gated shut and the queue
// full, the next submission is rejected with 429 + Retry-After instead
// of queueing unboundedly.
func TestQueueFullBackpressure(t *testing.T) {
	sub := subjectP2(t)
	s := newServer(Options{Pool: 1, QueueDepth: 1, PerClient: -1})
	s.gate = make(chan struct{})
	s.start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	req := Request{Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel}

	_, r1 := postJob(t, ts, req, "")
	if r1.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: status %d", r1.StatusCode)
	}
	// Wait for the worker to dequeue job 1 (it parks at the gate), so
	// the single queue slot is free for job 2.
	for i := 0; s.metrics.Counter("serve.queue.depth") != 0; i++ {
		if i > 2000 {
			t.Fatal("worker never dequeued job 1")
		}
		time.Sleep(time.Millisecond)
	}
	_, r2 := postJob(t, ts, req, "")
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: status %d", r2.StatusCode)
	}
	st3, r3 := postJob(t, ts, req, "")
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: status %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}
	if st3.ID != "" {
		t.Error("rejected job got an id")
	}
	if n := s.metrics.Counter("serve.jobs.rejected.queue_full"); n != 1 {
		t.Errorf("serve.jobs.rejected.queue_full = %d, want 1", n)
	}
	close(s.gate)
}

// TestPerClientCap: one client cannot occupy the whole server; a
// second client is still admitted.
func TestPerClientCap(t *testing.T) {
	sub := subjectP2(t)
	s := newServer(Options{Pool: 1, QueueDepth: 8, PerClient: 1})
	s.gate = make(chan struct{})
	s.start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	req := Request{Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel}

	if _, r := postJob(t, ts, req, "alice"); r.StatusCode != http.StatusAccepted {
		t.Fatalf("alice job 1: status %d", r.StatusCode)
	}
	if _, r := postJob(t, ts, req, "alice"); r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("alice job 2: status %d, want 429", r.StatusCode)
	}
	if _, r := postJob(t, ts, req, "bob"); r.StatusCode != http.StatusAccepted {
		t.Fatalf("bob job 1: status %d", r.StatusCode)
	}
	if n := s.metrics.Counter("serve.jobs.rejected.client_cap"); n != 1 {
		t.Errorf("serve.jobs.rejected.client_cap = %d, want 1", n)
	}
	close(s.gate)
}

// TestChaosJobTypedFailure: an injected stage fault fails the one job
// with a typed StageFailure in its status — and the daemon keeps
// serving.
func TestChaosJobTypedFailure(t *testing.T) {
	sub := subjectP2(t)
	_, ts := startServer(t, Options{
		Injector: chaos.Always(guard.StageCheck, guard.ClassPanic),
	})
	st, resp := postJob(t, ts, Request{
		Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel,
	}, "")
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	fin := awaitTerminal(t, ts, st.ID)
	if fin.State != StateFailed {
		t.Fatalf("state = %q, want failed", fin.State)
	}
	if fin.Failure == nil {
		t.Fatalf("no typed failure on chaos-failed job (error %q)", fin.Error)
	}
	if fin.Failure.Stage != guard.StageCheck || fin.Failure.Class != guard.ClassPanic || !fin.Failure.Injected {
		t.Errorf("failure = %+v, want injected check/panic", fin.Failure)
	}
	// The server survived: healthz answers and admits the next job.
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz after chaos job: status %d", hresp.StatusCode)
	}
	if _, r := postJob(t, ts, Request{Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel}, ""); r.StatusCode != http.StatusAccepted {
		t.Fatalf("submit after chaos job: status %d", r.StatusCode)
	}
}

// TestEventStreamWorkerParity: the streamed event log is byte-identical
// for any Workers value (and cache temperature) — the server inherits
// the pipeline's commit-in-order determinism contract.
func TestEventStreamWorkerParity(t *testing.T) {
	sub := subjectP2(t)
	cache, err := evalcache.New(evalcache.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := startServer(t, Options{Cache: cache})
	run := func(workers int) []byte {
		b := smallBudget()
		b.Workers = workers
		st, resp := postJob(t, ts, Request{
			Kind: KindTranspile, Source: sub.Source, Kernel: sub.Kernel, Budget: b,
		}, "")
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit workers=%d: status %d", workers, resp.StatusCode)
		}
		if fin := awaitTerminal(t, ts, st.ID); fin.State != StateDone {
			t.Fatalf("workers=%d: state %q (error %q)", workers, fin.State, fin.Error)
		}
		return eventBody(t, ts, st.ID)
	}
	seq := run(1)
	if len(seq) == 0 {
		t.Fatal("empty event stream")
	}
	if !bytes.HasSuffix(seq, []byte("\n")) {
		t.Error("stream is not newline-terminated NDJSON")
	}
	for _, line := range strings.Split(strings.TrimSuffix(string(seq), "\n"), "\n") {
		if !json.Valid([]byte(line)) {
			t.Fatalf("invalid NDJSON line: %q", line)
		}
	}
	for _, workers := range []int{1, 4} {
		got := run(workers) // warm cache on the second workers=1 run
		if !bytes.Equal(seq, got) {
			t.Errorf("workers=%d event stream differs from sequential baseline (%d vs %d bytes)",
				workers, len(got), len(seq))
		}
	}
}

// TestUnknownJobAndBadRequests pins the API's error envelope.
func TestUnknownJobAndBadRequests(t *testing.T) {
	sub := subjectP2(t)
	_, ts := startServer(t, Options{})
	if resp, err := ts.Client().Get(ts.URL + "/v1/jobs/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
		}
	}
	for name, req := range map[string]Request{
		"bad kind":  {Kind: "explode", Source: sub.Source, Kernel: sub.Kernel},
		"no source": {Kind: KindCheck, Kernel: sub.Kernel},
		"no kernel": {Kind: KindCheck, Source: sub.Source},
	} {
		if _, resp := postJob(t, ts, req, ""); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader("{not json")); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("malformed body: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestMetricsAndHealthz: the registry endpoint serves both formats and
// counts terminal jobs.
func TestMetricsAndHealthz(t *testing.T) {
	sub := subjectP2(t)
	_, ts := startServer(t, Options{})
	st, _ := postJob(t, ts, Request{Kind: KindCheck, Source: sub.Source, Kernel: sub.Kernel}, "")
	awaitTerminal(t, ts, st.ID)

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters map[string]int64 `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if doc.Counters["serve.jobs.submitted"] != 1 || doc.Counters["serve.jobs.done"] != 1 {
		t.Errorf("metrics counters off: %+v", doc.Counters)
	}
	tresp, err := ts.Client().Get(ts.URL + "/metrics?format=text")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(tresp.Body)
	tresp.Body.Close()
	if !strings.Contains(string(text), "serve_jobs_submitted_total 1") {
		t.Errorf("text metrics missing Prometheus serve counter:\n%s", text)
	}
	if !strings.Contains(string(text), "# TYPE serve_jobs_submitted_total counter") {
		t.Error("text metrics missing # TYPE line")
	}
	if !strings.Contains(string(text), "runtime_goroutines") {
		t.Error("text metrics missing runtime gauges")
	}
	presp, err := ts.Client().Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	ptext, _ := io.ReadAll(presp.Body)
	presp.Body.Close()
	if !strings.Contains(string(ptext), "serve_jobs_submitted_total 1") {
		t.Errorf("format=prometheus missing serve counter:\n%s", ptext)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if ok, _ := health["ok"].(bool); !ok {
		t.Errorf("healthz not ok: %v", health)
	}
}
